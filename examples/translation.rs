//! End-to-end "machine translation" on the accelerator: train a small
//! Transformer on a synthetic reversal corpus (the stand-in for the
//! paper's IWSLT'16 task), quantize it with the two-step INT8 recipe,
//! decode a few sentences through the quantized stacks, and report the
//! accelerator latency the encoder layers would take.
//!
//! ```text
//! cargo run --release --example translation
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::{scheduler, AccelConfig, SchedPolicy};
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen, BOS, EOS};
use transformer_accel::transformer::train::{evaluate, study_config, train, TrainSpec};

fn main() {
    let cfg = study_config();
    println!(
        "training a {}-layer Transformer (d_model={}) on the reversal task...",
        cfg.n_layers, cfg.d_model
    );
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 4, 10);
    let spec = TrainSpec {
        steps: 800,
        batch: 8,
        warmup: 120,
        lr_scale: 0.5,
        ..TrainSpec::default()
    };
    let report = train(&mut model, &gen, &spec);
    println!("final training loss: {:.3}", report.final_loss);

    let mut eval_rng = StdRng::seed_from_u64(1);
    let test = gen.corpus(32, &mut eval_rng);
    let calib = gen.corpus(8, &mut eval_rng);
    let fp32 = evaluate(&mut model, &test);
    println!("FP32 BLEU on held-out corpus: {:.1}", fp32.bleu);

    let quant = QuantSeq2Seq::from_trained(&model, &calib, SoftmaxMode::Hardware);
    let q_eval = quant.evaluate(&test);
    println!("INT8 (hardware softmax) BLEU: {:.1}", q_eval.bleu);

    println!("\nsample translations through the INT8 stacks:");
    for (src, tgt) in test.iter().take(4) {
        let hyp = quant.greedy_decode(src, BOS, EOS, cfg.max_len);
        let mark = if hyp == *tgt { "ok " } else { "err" };
        println!("  [{mark}] src {src:?} -> hyp {hyp:?} (ref {tgt:?})");
    }

    // What would the encoder layers cost on the accelerator, per layer?
    let accel_cfg = AccelConfig {
        model: cfg.clone(),
        s: 16,
        sched: SchedPolicy::paper(),
        ..AccelConfig::paper_default()
    };
    let mha = scheduler::schedule_mha_cross(&accel_cfg, 10, 10);
    let ffn = scheduler::schedule_ffn_len(&accel_cfg, 10);
    println!(
        "\nper encoder layer on a {}x64 array @ 200 MHz: MHA {} + FFN {} cycles = {:.2} us",
        accel_cfg.s,
        mha.cycles.get(),
        ffn.cycles.get(),
        mha.latency_us + ffn.latency_us
    );
    println!(
        "whole {}-layer encoder: {:.2} us per sentence",
        cfg.n_layers,
        cfg.n_layers as f64 * (mha.latency_us + ffn.latency_us)
    );
}
