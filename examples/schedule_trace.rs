//! Visualises Algorithm 1: prints proportional Gantt traces of the MHA
//! ResBlock schedule under each policy, making the paper's two overlap
//! optimisations visible.
//!
//! ```text
//! cargo run --example schedule_trace
//! ```

use transformer_accel::accel::{scheduler, AccelConfig, SchedPolicy};

fn show(name: &str, policy: SchedPolicy) {
    let mut cfg = AccelConfig::paper_default();
    // Two heads keep the trace readable; the structure repeats per head.
    cfg.model.h = 2;
    cfg.model.d_model = 128;
    cfg.model.d_ff = 512;
    cfg.sched = policy;
    let rep = scheduler::schedule_mha(&cfg);
    println!(
        "=== {name}: {} cycles, SA utilization {:.1}% ===",
        rep.cycles.get(),
        100.0 * rep.sa_utilization
    );
    println!("{}", rep.timeline.gantt(100));
}

fn main() {
    println!("MHA ResBlock schedule, 2-head / d_model=128 miniature for readability\n");
    show(
        "naive (softmax stalls the array, LayerNorm re-reads G twice)",
        SchedPolicy::naive(),
    );
    show(
        "paper (softmax hidden behind V*W_V, LayerNorm inline, Eq. 9)",
        SchedPolicy::paper(),
    );
    show(
        "aggressive (+ double-buffered drain)",
        SchedPolicy::aggressive(),
    );
    println!(
        "legend: each lane is one hardware unit; characters are the first letter of the op label."
    );
}
