//! The grand tour: every stage of the reproduction in one run.
//!
//! 1. train a small FP32 Transformer on the grammar task;
//! 2. snapshot and restore its parameters (checkpointing);
//! 3. quantize it with the two-step INT8 recipe and score BLEU;
//! 4. pack an encoder layer's weights into a weight-memory image;
//! 5. execute that layer on the register-true systolic array (the
//!    execution engine) and check bit-identity with the datapath;
//! 6. report the layer's cycle-accurate schedule and the full-model
//!    inference projection.
//!
//! ```text
//! cargo run --release --example full_pipeline
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::engine::ArrayEngine;
use transformer_accel::accel::pipeline::{full_inference, PipelineConfig};
use transformer_accel::accel::weights::WeightImage;
use transformer_accel::accel::{scheduler, AccelConfig};
use transformer_accel::quantized::{QuantSeq2Seq, SoftmaxMode};
use transformer_accel::transformer::checkpoint::{load_state_dict, state_dict};
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen};
use transformer_accel::transformer::train::{evaluate, study_config, train, TrainSpec};

fn main() {
    // 1. Train.
    let cfg = study_config();
    println!("[1/6] training on the grammar (SVO->SOV) task...");
    let mut rng = StdRng::seed_from_u64(0x10AD);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Grammar, cfg.vocab, 6, 9);
    let spec = TrainSpec {
        steps: 600,
        batch: 8,
        warmup: 100,
        lr_scale: 0.5,
        ..TrainSpec::default()
    };
    let report = train(&mut model, &gen, &spec);
    println!("      final loss {:.3}", report.final_loss);

    // 2. Checkpoint round-trip.
    println!("[2/6] checkpoint round-trip...");
    let sd = state_dict(&mut model);
    let mut restored = Seq2SeqTransformer::new(&cfg, &mut StdRng::seed_from_u64(999));
    load_state_dict(&mut restored, &sd).expect("restore");
    println!(
        "      {} buffers, {} parameters",
        sd.len(),
        sd.param_count()
    );

    // 3. Quantize and score.
    println!("[3/6] two-step INT8 quantization...");
    let mut eval_rng = StdRng::seed_from_u64(7);
    let test = gen.corpus(24, &mut eval_rng);
    let calib = gen.corpus(8, &mut eval_rng);
    let fp32 = evaluate(&mut restored, &test);
    let quant = QuantSeq2Seq::from_trained(&restored, &calib, SoftmaxMode::Hardware);
    let q_eval = quant.evaluate_parallel(&test, 4);
    println!(
        "      BLEU: FP32 {:.1} -> INT8+HW softmax {:.1}",
        fp32.bleu, q_eval.bleu
    );

    // 4. Weight image of encoder layer 0.
    println!("[4/6] packing the weight-memory image...");
    let layer0 = &quant.encoder_layers()[0];
    let img = WeightImage::from_mha(&layer0.mha);
    println!(
        "      MHA image: {} bytes in {} x 512-bit words, {} panels",
        img.byte_len(),
        img.word_len(),
        img.directory().len()
    );

    // 5. Execute on the PE grid.
    println!("[5/6] executing encoder layer 0 on the systolic array...");
    let (src, _) = &test[0];
    let x = restored.src_embedding().forward_inference(src);
    let xq = layer0.mha.quantize_input_q(&x);
    let mut engine = ArrayEngine::new(cfg.max_len);
    let run = engine.execute_mha(&layer0.mha, &xq, &xq, None);
    let (want, _) = layer0.mha.forward(&xq, &xq, None);
    assert_eq!(
        run.out, want,
        "engine must be bit-identical to the datapath"
    );
    println!(
        "      {} GEMM passes, {} MACs — output bit-identical to the datapath",
        run.stats.gemm_passes, run.stats.macs
    );

    // 6. Timing.
    println!("[6/6] cycle-accurate timing...");
    let accel_cfg = AccelConfig {
        model: cfg.clone(),
        s: cfg.max_len,
        ..AccelConfig::paper_default()
    };
    let mha = scheduler::schedule_mha_cross(&accel_cfg, src.len(), src.len());
    println!(
        "      MHA ResBlock at s={}: {} cycles = {:.2} us, SA {:.0}% busy",
        src.len(),
        mha.cycles.get(),
        mha.latency_us,
        100.0 * mha.sa_utilization
    );
    let inf = full_inference(&accel_cfg, &PipelineConfig::default(), src.len(), src.len());
    println!(
        "      full {}-layer inference of this sentence: {:.1} us",
        cfg.n_layers, inf.total_us
    );
    println!("\ndone — every stage green.");
}
