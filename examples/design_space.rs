//! Design-space exploration: sweep the array height `s` and the target
//! model, and chart latency / resources / power trade-offs — the kind of
//! study the paper's calibrated models enable beyond the single
//! published design point.
//!
//! ```text
//! cargo run --example design_space
//! ```

use transformer_accel::accel::area::{estimate_power, AreaModel};
use transformer_accel::accel::{scheduler, AccelConfig};
use transformer_accel::hwsim::resources::Device;
use transformer_accel::transformer::config::ModelConfig;

fn main() {
    let device = Device::vu13p();
    println!(
        "design space on {} (paper design: s = 64, Transformer-base)\n",
        device.name
    );
    println!(
        "{:>18} {:>5} | {:>9} {:>9} | {:>9} {:>7} {:>7} | {:>6}",
        "model", "s", "MHA us", "FFN us", "LUT", "BRAM", "W", "fits"
    );
    for model in ModelConfig::table1() {
        for s in [32usize, 64, 128, 256] {
            let cfg = AccelConfig {
                model: model.clone(),
                s,
                ..AccelConfig::paper_default()
            };
            let mha = scheduler::schedule_mha(&cfg);
            let ffn = scheduler::schedule_ffn(&cfg);
            let area = AreaModel::new(cfg.clone());
            let top = area.top();
            let power = estimate_power(&area, &cfg);
            println!(
                "{:>18} {:>5} | {:>9.1} {:>9.1} | {:>9.0} {:>7.0} {:>7.1} | {:>6}",
                model.name,
                s,
                mha.latency_us,
                ffn.latency_us,
                top.lut,
                top.bram,
                power.total_w(),
                if area.fits_vu13p() { "yes" } else { "NO" },
            );
        }
        println!();
    }
    println!("notes:");
    println!("- FFN cycles are s-independent (weight panels stream k = d_model / d_ff regardless)");
    println!("- MHA grows with s through QK^T tiling, softmax passes and the PV reduction");
    println!(
        "- beyond s = 128 the softmax can no longer hide behind V*W_V (see softmax_module bin)"
    );
}
