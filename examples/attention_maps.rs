//! Trains a small model on the reversal task and renders its decoder
//! cross-attention as ASCII heatmaps — the learned anti-diagonal is
//! direct evidence the MHA ResBlock (the layer the accelerator serves)
//! is doing position-based routing, not memorisation.
//!
//! ```text
//! cargo run --release --example attention_maps
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::tensor::{gemm, ops, Mat};
use transformer_accel::transformer::functional::softmax_rows;
use transformer_accel::transformer::model::Seq2SeqTransformer;
use transformer_accel::transformer::tasks::{Task, TaskGen, BOS};
use transformer_accel::transformer::train::{study_config, train, TrainSpec};

/// Renders a probability matrix as an ASCII heatmap.
fn heatmap(p: &Mat<f32>) -> String {
    const SHADES: [char; 5] = [' ', '.', ':', '#', '@'];
    let mut out = String::new();
    for r in 0..p.rows() {
        for c in 0..p.cols() {
            let v = p[(r, c)].clamp(0.0, 1.0);
            let idx = ((v * (SHADES.len() as f32 - 1.0)).round() as usize).min(SHADES.len() - 1);
            out.push(SHADES[idx]);
            out.push(' ');
        }
        out.push('\n');
    }
    out
}

fn main() {
    let cfg = study_config();
    println!("training on the reversal task to grow an anti-diagonal attention head...");
    let mut rng = StdRng::seed_from_u64(0xA77E);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 8, 8);
    let spec = TrainSpec {
        steps: 900,
        batch: 8,
        warmup: 120,
        lr_scale: 0.5,
        ..TrainSpec::default()
    };
    let report = train(&mut model, &gen, &spec);
    println!("final loss {:.3}\n", report.final_loss);

    // One evaluation pair; recompute the last decoder layer's
    // cross-attention probabilities by hand from its projections.
    let (src, tgt) = gen.sample(&mut StdRng::seed_from_u64(3));
    println!("src: {src:?}");
    println!("tgt: {tgt:?} (the reverse)\n");

    let memory = model.encode(&src);
    let mut tgt_in = vec![BOS];
    tgt_in.extend_from_slice(&tgt);
    // Run the decoder stack up to the last layer's cross-attention input.
    let logits = model.forward_train(&src, &tgt_in); // populates nothing we can read; recompute below
    drop(logits);

    // Recompute: embed target, run self-attn of layer 0, then inspect
    // the cross-attention scores of layer 0 head by head.
    let y = model.tgt_embedding().forward_inference(&tgt_in);
    let layer = &model.decoder().layers()[0];
    let (self_blk, cross_blk, _) = layer.blocks();
    let mask = ops::causal_mask(tgt_in.len());
    let a = self_blk.forward_inference(&y, &y, &y, Some(&mask));

    let (wq, wk, _, _) = cross_blk.mha().projections();
    let h = cross_blk.mha().heads();
    let d_k = wq.d_in() / h;
    let q = wq.forward_inference(&a);
    let k = wk.forward_inference(&memory);
    for head in 0..h {
        let c0 = head * d_k;
        let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
        let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
        let scores = ops::scale(
            &gemm::matmul_nt(&qi, &ki).unwrap(),
            1.0 / (d_k as f32).sqrt(),
        );
        let probs = softmax_rows(&scores, None);
        println!(
            "decoder layer 0, cross-attention head {head} (rows = target pos, cols = source pos):"
        );
        println!("{}", heatmap(&probs));
    }
    println!("a reversal model attends anti-diagonally: target position t looks at source");
    println!("position s-1-t — visible as the '@' band running from top-right to bottom-left");
    println!("in at least one head.");
}
