//! Runs one full encoder layer *through the accelerator facade* —
//! quantized weights loaded into the weight memory, INT8 activations in,
//! INT8 activations out — and validates the result against the FP32
//! reference block, reporting numeric error and cycle-accurate timing.
//!
//! ```text
//! cargo run --release --example accelerated_encoder
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::{AccelConfig, Accelerator};
use transformer_accel::quantized::{QuantFfnResBlock, QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::ffn::FfnResBlock;
use transformer_accel::transformer::mha::MhaResBlock;

fn main() {
    // A genuinely paper-sized layer: Transformer-base, s = 64.
    let model_cfg = ModelConfig::transformer_base();
    let s = 64;
    let mut rng = StdRng::seed_from_u64(0xE9C0);
    println!("building FP32 Transformer-base encoder layer (this allocates ~3M parameters)...");
    let mut mha_f32 = MhaResBlock::new(&model_cfg, &mut rng);
    let mut ffn_f32 = FfnResBlock::new(&model_cfg, &mut rng);

    let calib: Vec<_> = (0..2)
        .map(|_| tensor::init::normal(&mut rng, s, model_cfg.d_model, 1.0))
        .collect();
    println!("calibrating INT8 scales and loading the weight memory...");
    let qmha = QuantMhaResBlock::from_f32(&mha_f32, &calib, &calib, SoftmaxMode::Hardware);
    let qffn = {
        let mha_outs: Vec<_> = calib
            .iter()
            .map(|x| mha_f32.forward(x, x, x, None))
            .collect();
        QuantFfnResBlock::from_f32(&ffn_f32, &mha_outs)
    };

    let mut accel = Accelerator::new(AccelConfig::paper_default());
    accel.load_mha(qmha);
    accel.load_ffn(qffn);

    // Drive the layer: x -> MHA ResBlock -> FFN ResBlock.
    let x = &calib[0];
    let xq = accel.mha_block().unwrap().quantize_input_q(x);
    let (mha_out, mha_report) = accel.run_mha(&xq, &xq, None).expect("mha run");
    let (ffn_out, ffn_report) = accel.run_ffn(&mha_out).expect("ffn run");

    // FP32 reference for the same layer.
    let ref_mha = mha_f32.forward(x, x, x, None);
    let ref_ffn = ffn_f32.forward(&ref_mha);
    let got = accel.ffn_block().unwrap().dequantize_output(&ffn_out);
    let max_err = got
        .as_slice()
        .iter()
        .zip(ref_ffn.as_slice())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f32, f32::max);

    println!(
        "\nlayer output: {}x{} INT8 codes",
        ffn_out.rows(),
        ffn_out.cols()
    );
    println!("max abs error vs FP32 reference (LayerNorm-domain values): {max_err:.3}");
    println!(
        "MHA ResBlock: {} cycles ({:.1} us), SA utilization {:.1}%",
        mha_report.schedule.cycles.get(),
        mha_report.schedule.latency_us,
        100.0 * mha_report.schedule.sa_utilization
    );
    println!(
        "FFN ResBlock: {} cycles ({:.1} us), SA utilization {:.1}%",
        ffn_report.schedule.cycles.get(),
        ffn_report.schedule.latency_us,
        100.0 * ffn_report.schedule.sa_utilization
    );
    println!(
        "encoder layer total: {:.1} us @ 200 MHz",
        mha_report.schedule.latency_us + ffn_report.schedule.latency_us
    );

    println!("\nMHA schedule (first head), Gantt view:");
    let gantt = mha_report.schedule.timeline.gantt(110);
    println!("{gantt}");
}
