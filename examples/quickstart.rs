//! Quickstart: configure the paper's accelerator, schedule both
//! ResBlocks, and print the headline numbers next to the published ones.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use transformer_accel::accel::{AccelConfig, Accelerator};
use transformer_accel::baseline::gpu::{ffn_trace, mha_trace, GpuModel};

fn main() {
    // The paper's evaluation point: Transformer-base, s = 64, 200 MHz.
    let cfg = AccelConfig::paper_default();
    let accel = Accelerator::new(cfg.clone());

    let mha = accel.schedule_mha();
    let ffn = accel.schedule_ffn();

    println!(
        "accelerator: {} at s = {}, {:.0} MHz",
        cfg.model.name,
        cfg.s,
        cfg.clock.as_mhz()
    );
    println!();
    println!(
        "MHA ResBlock: {:>6} cycles = {:>6.1} us  (paper: 21,344 cycles = 106.7 us)",
        mha.cycles.get(),
        mha.latency_us
    );
    println!(
        "FFN ResBlock: {:>6} cycles = {:>6.1} us  (paper: 42,099 cycles = 210.5 us)",
        ffn.cycles.get(),
        ffn.latency_us
    );
    println!(
        "systolic-array utilization: MHA {:.1}%, FFN {:.1}%",
        100.0 * mha.sa_utilization,
        100.0 * ffn.sa_utilization
    );

    // Compare against the calibrated V100/PyTorch baseline (Table III).
    let gpu = GpuModel::v100_pytorch();
    let gpu_mha = gpu.latency_us(&mha_trace(&cfg.model, cfg.s));
    let gpu_ffn = gpu.latency_us(&ffn_trace(&cfg.model, cfg.s));
    println!();
    println!(
        "speed-up vs V100 @ batch 1: MHA {:.1}x (paper 14.6x), FFN {:.1}x (paper 3.4x)",
        gpu_mha / mha.latency_us,
        gpu_ffn / ffn.latency_us
    );

    // Resources and power (Table II).
    let area = accel.area();
    let top = area.top();
    let power = accel.power();
    println!();
    println!(
        "resources: {:.0} LUT / {:.0} FF / {:.0} BRAM / {:.0} DSP; power {:.1} W",
        top.lut,
        top.ff,
        top.bram,
        top.dsp,
        power.total_w()
    );
}
