//! Prints the accelerator's command stream (the static program a
//! control unit would execute for Algorithm 1) together with each
//! command's cost, and verifies that interpreting the program
//! reproduces both the scheduler's cycle count and the datapath's exact
//! output.
//!
//! ```text
//! cargo run --example isa_trace
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer_accel::accel::isa::{execute_mha, mha_program, schedule_program, Command};
use transformer_accel::accel::{scheduler, AccelConfig};
use transformer_accel::quantized::{QuantMhaResBlock, SoftmaxMode};
use transformer_accel::transformer::config::ModelConfig;
use transformer_accel::transformer::mha::MhaResBlock;

fn describe(cmd: &Command, cfg: &AccelConfig) -> (String, String) {
    let d = cfg.model.d_model;
    let s = cfg.s;
    match cmd {
        Command::ProjectQ { head } => (format!("ProjectQ[h{head}]"), format!("GEMM k={d} +drain")),
        Command::ProjectK { head } => (format!("ProjectK[h{head}]"), format!("GEMM k={d} +drain")),
        Command::ProjectV { head } => (format!("ProjectV[h{head}]"), format!("GEMM k={d} +drain")),
        Command::ScoreTile { head, tile } => (
            format!("ScoreTile[h{head}.{tile}]"),
            format!("GEMM k={} +drain", cfg.model.d_k()),
        ),
        Command::Softmax { head } => (
            format!("Softmax[h{head}]"),
            format!("{} cycles (softmax unit, overlapped)", 2 * s + 4),
        ),
        Command::Context { head } => (format!("Context[h{head}]"), format!("GEMM k={s} +drain")),
        Command::OutputPanel { panel } => (
            format!("OutputPanel[{panel}]"),
            format!("GEMM k={d} +drain"),
        ),
        Command::FfnHidden { panel } => {
            (format!("FfnHidden[{panel}]"), format!("GEMM k={d} +drain"))
        }
        Command::FfnOutput { panel } => (
            format!("FfnOutput[{panel}]"),
            format!("GEMM k={} +drain", cfg.model.d_ff),
        ),
        Command::LayerNorm => ("LayerNorm".into(), "tail + output sweep".into()),
    }
}

fn main() {
    let cfg = AccelConfig::paper_default();
    let program = mha_program(cfg.model.h, cfg.s);
    println!(
        "MHA ResBlock command stream ({} commands, Transformer-base, s = 64):\n",
        program.len()
    );
    for (i, cmd) in program.iter().enumerate() {
        let (name, cost) = describe(cmd, &cfg);
        if i < 14 || i >= program.len() - 3 {
            println!("  {i:>3}: {name:<18} {cost}");
        } else if i == 14 {
            println!("  ...: (heads 2..7 repeat the same six-command pattern)");
        }
    }

    let cycles = schedule_program(&cfg, &program, cfg.s);
    let reference = scheduler::schedule_mha(&cfg).cycles;
    println!(
        "\ntiming interpretation: {} cycles (scheduler: {} — exact match: {})",
        cycles.get(),
        reference.get(),
        cycles == reference
    );

    // And the same program, executed bit-exactly on a real block.
    let model_cfg = ModelConfig::tiny_for_tests();
    let mut rng = StdRng::seed_from_u64(0x15A);
    let mha = MhaResBlock::new(&model_cfg, &mut rng);
    let calib: Vec<_> = (0..3)
        .map(|_| tensor::init::normal(&mut rng, 8, model_cfg.d_model, 1.0))
        .collect();
    let q = QuantMhaResBlock::from_f32(&mha, &calib, &calib, SoftmaxMode::Hardware);
    let xq = q.quantize_input_q(&calib[0]);
    let small_program = mha_program(model_cfg.h, 8);
    let got = execute_mha(&small_program, &q, &xq, &xq, None);
    let (want, _) = q.forward(&xq, &xq, None);
    println!(
        "execution interpretation on a tiny block: bit-identical to the datapath: {}",
        got == want
    );
}
