//! The `x^(-1/2)` lookup table of the LayerNorm module.
//!
//! The paper implements the reciprocal square root with a lookup table
//! ("The `x^(-0.5)` unit is implemented with a lookup table in our
//! experiment"). We model the standard construction: normalise the input
//! to `m · 4^e` with mantissa `m ∈ [1, 4)`, index a 192-entry table with
//! the top mantissa bits, and shift the table value by `e`:
//!
//! `rsqrt(m · 4^e) = rsqrt(m) · 2^(-e)`.
//!
//! A 192 x 16-bit ROM fits in a fraction of one BRAM36; the LayerNorm
//! module's 27.5 BRAMs in Table II are dominated by the γ/β parameter
//! store, which the area model accounts separately.

use std::sync::OnceLock;

use crate::fx::FRAC;

/// Number of mantissa entries in the ROM (mantissa range `[1, 4)` with
/// 6 index bits per octave).
pub const LUT_ENTRIES: usize = 192;

/// Fraction bits of the ROM output (`rsqrt(m) ∈ (0.5, 1]` stored in
/// Q1.15).
pub const LUT_FRAC: u32 = 15;

/// Fraction bits of the [`rsqrt_fx`] result. Wider than the pipeline's
/// `Q.12` because `1/sqrt(var)` can be very small when the variance is
/// large; the hardware keeps the shifter output at full width before the
/// final normalisation multiply.
pub const OUT_FRAC: u32 = 24;

fn lut() -> &'static [u16; LUT_ENTRIES] {
    static LUT: OnceLock<[u16; LUT_ENTRIES]> = OnceLock::new();
    LUT.get_or_init(|| {
        let mut t = [0u16; LUT_ENTRIES];
        for (i, slot) in t.iter_mut().enumerate() {
            // Entry i covers mantissa [1 + i/64, 1 + (i+1)/64); evaluate at
            // the midpoint to halve the worst-case error.
            let m = 1.0 + (i as f64 + 0.5) / 64.0;
            let v = (1.0 / m.sqrt() * (1u32 << LUT_FRAC) as f64).round() as u32;
            *slot = v.min(u16::MAX as u32) as u16;
        }
        t
    })
}

/// Reciprocal square root of a non-negative `Q.FRAC` fixed-point value,
/// returned in `Q.OUT_FRAC` (Q.24) fixed point.
///
/// Zero input returns `i64::from(i32::MAX)` (the caller adds the
/// LayerNorm ε before the lookup, so a true zero never reaches the
/// hardware ROM).
///
/// # Example
///
/// ```
/// use fixedmath::{rsqrt::{rsqrt_fx, OUT_FRAC}, fx};
/// let x = fx::to_fx(4.0, fx::FRAC) as i64;
/// let r = rsqrt_fx(x) as f64 / (1u64 << OUT_FRAC) as f64;
/// assert!((r - 0.5).abs() < 0.01);
/// ```
pub fn rsqrt_fx(x: i64) -> i64 {
    assert!(x >= 0, "rsqrt input must be non-negative, got {x}");
    if x == 0 {
        return i32::MAX as i64;
    }
    // Normalise: x = m * 4^e with m in [1, 4), in units of 2^FRAC.
    let p = 63 - x.leading_zeros() as i32; // MSB position
    let mut e2 = p - FRAC as i32; // power-of-two exponent
    if e2 % 2 != 0 {
        e2 -= 1; // force even so we can halve it
    }
    // mantissa in Q.FRAC, in [ONE, 4*ONE)
    let m = if e2 >= 0 { x >> e2 } else { x << (-e2) };
    let idx = ((m >> (FRAC - 6)) - 64) as usize; // 6 fractional index bits
    let idx = idx.min(LUT_ENTRIES - 1);
    let v = lut()[idx] as i64; // Q1.15 value of rsqrt(m)
                               // result = v * 2^(-e2/2), convert Q1.15 -> Q.OUT_FRAC
    let half_e = e2 / 2;
    let shift = LUT_FRAC as i32 - OUT_FRAC as i32 + half_e; // total right shift
    if shift >= 0 {
        v >> shift
    } else {
        v << (-shift)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::{to_fx, ONE};

    fn check(x: f64, tol_rel: f64) {
        let fx_in = (x * ONE as f64).round() as i64;
        // Compare against the rsqrt of the *quantized* input: input
        // quantization is the caller's concern, the ROM's accuracy is ours.
        let quantized_x = fx_in as f64 / ONE as f64;
        let got = rsqrt_fx(fx_in) as f64 / (1u64 << OUT_FRAC) as f64;
        let want = 1.0 / quantized_x.sqrt();
        let rel = (got - want).abs() / want;
        assert!(rel < tol_rel, "x={x}: got {got}, want {want}, rel {rel}");
    }

    #[test]
    fn exact_powers_of_four() {
        for &x in &[0.25f64, 1.0, 4.0, 16.0, 64.0, 1024.0] {
            check(x, 0.01);
        }
    }

    #[test]
    fn dense_sweep_relative_error_under_one_percent() {
        let mut x = 0.01f64;
        while x < 20_000.0 {
            check(x, 0.012);
            x *= 1.0837;
        }
    }

    #[test]
    fn zero_returns_sentinel() {
        assert_eq!(rsqrt_fx(0), i32::MAX as i64);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_rejected() {
        rsqrt_fx(-1);
    }

    #[test]
    fn monotone_nonincreasing() {
        let mut prev = i64::MAX;
        let mut x = 1i64;
        while x < (1i64 << 40) {
            let r = rsqrt_fx(x);
            assert!(r <= prev, "rsqrt not monotone at {x}");
            prev = r;
            x = x * 21 / 16 + 1;
        }
    }

    #[test]
    fn layernorm_variance_range_is_accurate() {
        // Typical INT8 LayerNorm variances land in [1, 127^2] in the
        // quantized domain.
        check(to_fx(1.0, FRAC) as f64 / ONE as f64, 0.01);
        check(16129.0, 0.01);
    }

    #[test]
    fn lut_size_matches_constant() {
        assert_eq!(lut().len(), LUT_ENTRIES);
    }
}
