//! Fixed-point and INT8 arithmetic substrate for the accelerator datapath.
//!
//! Everything the SOCC'20 accelerator computes outside the systolic array is
//! integer/fixed-point arithmetic built from shifts, adds and small lookup
//! tables. This crate provides those primitives, bit-exactly, so that the
//! quantized model ([`quantized`]) and the cycle-level simulator ([`accel`])
//! share one authoritative implementation:
//!
//! * [`quant`] — symmetric INT8 quantization parameters and the
//!   integer-only requantizer used after every GEMM;
//! * [`fx`] — plain `Qm.n` fixed-point conversion and multiply helpers;
//! * [`fft`] — a small fixed-point radix-2 FFT, the arithmetic core of
//!   the FTRANS-style block-circulant FFN backend;
//! * [`explog`] — the multiplier-free EXP and LN units of the softmax
//!   module (Fig. 6 of the paper, architecture from Wang et al.,
//!   APCCAS 2018);
//! * [`rsqrt`] — the `x^(-1/2)` lookup table of the LayerNorm module
//!   (Fig. 8);
//! * [`sat`] — saturating casts and rounding shifts.
//!
//! [`quantized`]: https://example.invalid/quantized
//! [`accel`]: https://example.invalid/accel
//!
//! # INT8 convention
//!
//! All quantization is *symmetric*: values map to `[-127, 127]` and `-128`
//! is never produced. This halves the PE multiplier corner cases in
//! hardware and keeps `x * y` within 14 bits.
//!
//! # Example
//!
//! ```
//! use fixedmath::quant::QuantParams;
//!
//! let q = QuantParams::from_max_abs(6.35);
//! let x = q.quantize(1.0);
//! assert_eq!(x, 20); // 1.0 / 0.05 = 20
//! assert!((q.dequantize(x) - 1.0).abs() < q.scale() / 2.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod explog;
pub mod fft;
pub mod fx;
pub mod quant;
pub mod rsqrt;
pub mod sat;
