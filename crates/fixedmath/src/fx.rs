//! Plain `Qm.n` fixed-point conversions and arithmetic on `i32` words.
//!
//! The softmax and LayerNorm pipelines run on 32-bit fixed-point words
//! with a crate-wide fraction width of [`FRAC`] bits, giving a resolution
//! of `2^-12 ≈ 2.4e-4` — comfortably finer than INT8 quantization noise.

use crate::sat::rounding_shr;

/// Fraction bits used by the nonlinear-function pipelines (Q19.12).
pub const FRAC: u32 = 12;

/// The value `1.0` in crate fixed-point.
pub const ONE: i32 = 1 << FRAC;

/// Converts an `f32` to fixed-point with `frac` fraction bits
/// (round-to-nearest).
///
/// # Example
///
/// ```
/// use fixedmath::fx;
/// assert_eq!(fx::to_fx(1.5, fx::FRAC), 3 << (fx::FRAC - 1));
/// ```
#[inline]
pub fn to_fx(x: f32, frac: u32) -> i32 {
    let v = (x as f64 * (1i64 << frac) as f64).round();
    v.clamp(i32::MIN as f64, i32::MAX as f64) as i32
}

/// Converts fixed-point back to `f32`.
#[inline]
pub fn to_f32(x: i32, frac: u32) -> f32 {
    x as f32 / (1i64 << frac) as f32
}

/// Fixed-point multiply: `(a * b) >> frac` with round-to-nearest.
/// Both operands and the result share the same fraction width.
#[inline]
pub fn mul(a: i32, b: i32, frac: u32) -> i32 {
    rounding_shr(a as i64 * b as i64, frac) as i32
}

/// Fixed-point multiply of a fixed-point value by an integer.
#[inline]
pub fn mul_int(a: i32, k: i32) -> i32 {
    (a as i64 * k as i64).clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_small_values() {
        for &x in &[0.0f32, 1.0, -1.0, 0.5, -0.25, 3.25, -2.5] {
            let fx = to_fx(x, FRAC);
            let back = to_f32(fx, FRAC);
            assert!((back - x).abs() <= 1.0 / ONE as f32, "{x} -> {back}");
        }
    }

    #[test]
    fn one_constant_matches() {
        assert_eq!(to_fx(1.0, FRAC), ONE);
        assert_eq!(to_f32(ONE, FRAC), 1.0);
    }

    #[test]
    fn mul_is_approximately_real_product() {
        let a = to_fx(1.5, FRAC);
        let b = to_fx(-2.25, FRAC);
        let p = mul(a, b, FRAC);
        assert!((to_f32(p, FRAC) - (-3.375)).abs() < 2.0 / ONE as f32);
    }

    #[test]
    fn mul_int_scales() {
        assert_eq!(mul_int(to_fx(0.5, FRAC), 4), to_fx(2.0, FRAC));
    }

    #[test]
    fn to_fx_saturates_extremes() {
        assert_eq!(to_fx(1e12, FRAC), i32::MAX);
        assert_eq!(to_fx(-1e12, FRAC), i32::MIN);
    }
}
