//! Saturating casts and rounding shifts — the glue arithmetic of every
//! fixed-point datapath stage.

/// Saturates an `i32` into the symmetric INT8 range `[-127, 127]`.
///
/// The accelerator never produces `-128` (symmetric quantization), which
/// keeps INT8 negation closed and the PE multiplier result within 14 bits.
///
/// # Example
///
/// ```
/// assert_eq!(fixedmath::sat::sat_i8(300), 127);
/// assert_eq!(fixedmath::sat::sat_i8(-300), -127);
/// assert_eq!(fixedmath::sat::sat_i8(-5), -5);
/// ```
#[inline]
pub fn sat_i8(x: i32) -> i8 {
    x.clamp(-127, 127) as i8
}

/// Saturates an `i64` into `i32` range.
#[inline]
pub fn sat_i32(x: i64) -> i32 {
    x.clamp(i32::MIN as i64, i32::MAX as i64) as i32
}

/// Arithmetic right shift with round-to-nearest (ties away from zero),
/// matching the behaviour of a hardware rounding shifter.
///
/// `shift == 0` returns `x` unchanged.
///
/// # Panics
///
/// Panics if `shift >= 63`.
///
/// # Example
///
/// ```
/// use fixedmath::sat::rounding_shr;
/// assert_eq!(rounding_shr(5, 1), 3);   // 2.5 rounds away to 3
/// assert_eq!(rounding_shr(-5, 1), -3); // -2.5 rounds away to -3
/// assert_eq!(rounding_shr(4, 1), 2);
/// ```
#[inline]
pub fn rounding_shr(x: i64, shift: u32) -> i64 {
    assert!(shift < 63, "shift {shift} out of range");
    if shift == 0 {
        return x;
    }
    // Branch-free ties-away-from-zero: round the magnitude, restore the
    // sign via XOR/subtract. A data-dependent sign branch here would
    // mispredict ~50% of the time on random-sign accumulators — this
    // sits inside the softmax's per-element requantize loop, where that
    // costs more than the shift itself — and it also blocks the loop
    // from auto-vectorising.
    let bias = 1i64 << (shift - 1);
    let sign = x >> 63; // 0 for x >= 0, -1 for x < 0
    let mag = (x ^ sign) - sign; // |x|
    let r = (mag + bias) >> shift;
    (r ^ sign) - sign
}

/// Truncating arithmetic right shift (the plain `>>` of Verilog on a
/// signed value) — used where the paper's datapath shifts without
/// rounding, e.g. the `>> 3` scale in the softmax input.
#[inline]
pub fn trunc_shr(x: i32, shift: u32) -> i32 {
    x >> shift
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sat_i8_clamps_symmetrically() {
        assert_eq!(sat_i8(i32::MAX), 127);
        assert_eq!(sat_i8(i32::MIN), -127);
        assert_eq!(sat_i8(-128), -127);
        assert_eq!(sat_i8(127), 127);
        assert_eq!(sat_i8(0), 0);
    }

    #[test]
    fn sat_i32_clamps() {
        assert_eq!(sat_i32(i64::MAX), i32::MAX);
        assert_eq!(sat_i32(i64::MIN), i32::MIN);
        assert_eq!(sat_i32(42), 42);
    }

    #[test]
    fn rounding_shr_rounds_to_nearest() {
        assert_eq!(rounding_shr(7, 2), 2); // 1.75 -> 2
        assert_eq!(rounding_shr(6, 2), 2); // 1.5  -> 2 (away)
        assert_eq!(rounding_shr(5, 2), 1); // 1.25 -> 1
        assert_eq!(rounding_shr(-6, 2), -2);
        assert_eq!(rounding_shr(-7, 2), -2);
        assert_eq!(rounding_shr(0, 10), 0);
        assert_eq!(rounding_shr(123, 0), 123);
    }

    #[test]
    fn rounding_shr_symmetry() {
        for x in -1000i64..1000 {
            for s in 1..8 {
                assert_eq!(rounding_shr(-x, s), -rounding_shr(x, s), "x={x} s={s}");
            }
        }
    }

    #[test]
    fn trunc_shr_matches_verilog_semantics() {
        assert_eq!(trunc_shr(-1, 3), -1); // arithmetic shift keeps sign
        assert_eq!(trunc_shr(-8, 3), -1);
        assert_eq!(trunc_shr(7, 3), 0);
    }
}
