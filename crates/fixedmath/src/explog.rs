//! Multiplier-free EXP and LN units (Fig. 6 of the paper; architecture
//! from Wang et al., "A high-speed and low-complexity architecture for
//! softmax function in deep learning", APCCAS 2018).
//!
//! Both units operate on crate fixed-point (`Q19.12`, see [`crate::fx`])
//! and use only shifts, adds and a leading-one detector:
//!
//! * **EXP**: `exp(x) = 2^(x·log2 e)` with
//!   `x·log2 e ≈ x + (x >> 1) - (x >> 4)` (= `x·1.4375`, 0.36% low) and
//!   `2^f ≈ 1 + f` for the fractional part `f ∈ [0, 1)` (exact at both
//!   endpoints, ≤ 6.2% high in between). Valid for `x <= 0`, which the
//!   log-sum-exp trick guarantees.
//! * **LN**: `ln(x) = ln 2 · log2 x`, `log2 x ≈ e + (m - 1)` from the
//!   leading-one position (`x = m·2^e`, `m ∈ [1, 2)`), and the `ln 2`
//!   product realised as `v>>1 + v>>3 + v>>4 + v>>7` (= `v·0.6953`,
//!   0.32% high).
//!
//! The combined softmax built from these units stays within ~2% absolute
//! of the exact softmax — Section V-A of the paper measures the end
//! effect as a BLEU change of +0.09 (23.48 → 23.57), i.e. noise.

use crate::fx::{FRAC, ONE};

/// Hardware EXP unit: `exp(x)` for `x <= 0`, in `Q19.12` fixed point.
///
/// Returns a value in `[0, ONE]`. Inputs `x > 0` are clamped to 0 (the
/// unit is only ever fed `x - max <= 0`); inputs below the underflow
/// threshold return 0, mirroring the hardware's finite shifter.
///
/// # Example
///
/// ```
/// use fixedmath::{explog::exp_unit, fx};
/// assert_eq!(exp_unit(0), fx::ONE); // e^0 == 1 exactly
/// let y = exp_unit(fx::to_fx(-1.0, fx::FRAC));
/// assert!((fx::to_f32(y, fx::FRAC) - 0.3679).abs() < 0.03);
/// ```
#[inline]
pub fn exp_unit(x: i32) -> i32 {
    exp_unit_with_frac(x, FRAC)
}

/// [`exp_unit`] generalised over the fixed-point fraction width — the
/// Q-format ablation (experiment E5 reports softmax error vs `frac`).
///
/// # Panics
///
/// Panics if `frac` is 0 or ≥ 30.
#[inline]
pub fn exp_unit_with_frac(x: i32, frac: u32) -> i32 {
    assert!(frac > 0 && frac < 30, "frac {frac} out of range");
    let one = 1i32 << frac;
    let x = x.min(0);
    // y = x * log2(e), via shift-add: x + x/2 - x/16 = 1.4375 x.
    let y = x + (x >> 1) - (x >> 4);
    // Split y into integer exponent k (<= 0) and fraction f in [0, one).
    let k = y >> frac; // arithmetic shift: floor division
    let f = y - (k << frac);
    debug_assert!((0..one).contains(&f));
    // 2^f ~= 1 + f; then scale by 2^k (a right shift, truncating as the
    // hardware shifter does). Saturating the shift count at 31 models the
    // underflow branch of the hardware's finite shifter without a branch:
    // the mantissa is below 2^(frac+1) <= 2^30, so any shift >= 31
    // produces exactly 0 — and the branch-free body lets the softmax
    // stages auto-vectorise over columns.
    let neg_k = ((-k) as u32).min(31);
    (one + f) >> neg_k
}

/// Hardware LN unit: `ln(x)` for `x > 0`, in `Q19.12` fixed point.
///
/// # Panics
///
/// Panics if `x <= 0` (the softmax sum always contains the `exp(0) = 1`
/// term, so the hardware never sees a non-positive input).
///
/// # Example
///
/// ```
/// use fixedmath::{explog::ln_unit, fx};
/// assert_eq!(ln_unit(fx::ONE), 0); // ln(1) == 0 exactly
/// let y = ln_unit(fx::to_fx(8.0, fx::FRAC));
/// assert!((fx::to_f32(y, fx::FRAC) - 2.079).abs() < 0.05);
/// ```
#[inline]
pub fn ln_unit(x: i32) -> i32 {
    ln_unit_with_frac(x, FRAC)
}

/// [`ln_unit`] generalised over the fixed-point fraction width.
///
/// # Panics
///
/// Panics if `x <= 0` or `frac` is 0 or ≥ 30.
#[inline]
pub fn ln_unit_with_frac(x: i32, frac: u32) -> i32 {
    assert!(frac > 0 && frac < 30, "frac {frac} out of range");
    assert!(x > 0, "ln_unit input must be positive, got {x}");
    let one = 1i32 << frac;
    // Leading-one detection: x = m * 2^e with m in [1, 2).
    let p = 31 - x.leading_zeros() as i32; // MSB position
    let e = p - frac as i32;
    // Normalise mantissa to Q.frac in [one, 2*one).
    let m = if e >= 0 { x >> e } else { x << (-e) };
    debug_assert!((one..2 * one).contains(&m));
    // log2(x) ~= e + (m - 1)
    let log2 = (e << frac) + (m - one);
    // ln(x) = log2(x) * ln(2); ln(2) ~= 1/2 + 1/8 + 1/16 + 1/128 = 0.6953.
    (log2 >> 1) + (log2 >> 3) + (log2 >> 4) + (log2 >> 7)
}

/// Ablation variant of [`exp_unit`] with a **two-segment** piecewise-
/// linear `2^f` (still shift-add only):
///
/// * `f ∈ [0, 1/2)`: `2^f ≈ 1 + f·(1/2 + 1/4 + 1/16)` (= `1 + 0.8125 f`)
/// * `f ∈ [1/2, 1)`: `2^f ≈ 0.8125 + f·(1 + 1/8 + 1/16)` (continuous at
///   `f = 1/2`, exact at `f = 1`)
///
/// Cuts the fractional approximation's worst-case error from 8.6% to
/// about 1.8% for one extra comparator and two extra adders per lane —
/// quantifying how much accuracy headroom the paper's single-segment
/// choice left on the table (it needed none: see experiment E9).
#[inline]
pub fn exp_unit_pwl2(x: i32) -> i32 {
    let x = x.min(0);
    let y = x + (x >> 1) - (x >> 4);
    let k = y >> FRAC;
    let f = y - (k << FRAC);
    debug_assert!((0..ONE).contains(&f));
    let neg_k = (-k) as u32;
    if neg_k >= 31 {
        return 0;
    }
    let half = ONE >> 1;
    let mant = if f < half {
        ONE + (f >> 1) + (f >> 2) + (f >> 4)
    } else {
        (ONE - (ONE >> 3) - (ONE >> 4)) + f + (f >> 3) + (f >> 4)
    };
    mant >> neg_k
}

/// Maximum absolute error of [`exp_unit`] over `x ∈ [-16, 0]`, measured
/// against `f64::exp`. Exposed for accuracy reporting (experiment E5).
pub fn exp_unit_max_abs_error() -> f64 {
    let mut worst = 0.0f64;
    let lo = crate::fx::to_fx(-16.0, FRAC);
    let mut x = lo;
    while x <= 0 {
        let approx = exp_unit(x) as f64 / ONE as f64;
        let exact = (x as f64 / ONE as f64).exp();
        worst = worst.max((approx - exact).abs());
        x += 7; // sample densely but not exhaustively
    }
    worst
}

/// Maximum absolute error of [`exp_unit_pwl2`] over `x ∈ [-16, 0]`.
pub fn exp_unit_pwl2_max_abs_error() -> f64 {
    let mut worst = 0.0f64;
    let lo = crate::fx::to_fx(-16.0, FRAC);
    let mut x = lo;
    while x <= 0 {
        let approx = exp_unit_pwl2(x) as f64 / ONE as f64;
        let exact = (x as f64 / ONE as f64).exp();
        worst = worst.max((approx - exact).abs());
        x += 7;
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::{to_f32, to_fx};

    #[test]
    fn exp_exact_at_zero() {
        assert_eq!(exp_unit(0), ONE);
    }

    #[test]
    fn exp_clamps_positive_inputs() {
        assert_eq!(exp_unit(to_fx(3.0, FRAC)), ONE);
    }

    #[test]
    fn exp_monotone_nonincreasing_as_x_decreases() {
        let mut prev = exp_unit(0);
        for i in 1..200 {
            let x = -i * (ONE / 16);
            let y = exp_unit(x);
            assert!(y <= prev, "exp not monotone at x={x}: {y} > {prev}");
            prev = y;
        }
    }

    #[test]
    fn exp_absolute_error_bounded() {
        // The shift-add EXP approximation stays within 7% absolute of e^x
        // on the range the softmax uses.
        let mut x = to_fx(-12.0, FRAC);
        while x <= 0 {
            let approx = to_f32(exp_unit(x), FRAC) as f64;
            let exact = (x as f64 / ONE as f64).exp();
            assert!(
                (approx - exact).abs() < 0.07,
                "x={} approx={approx} exact={exact}",
                x as f64 / ONE as f64
            );
            x += 13;
        }
    }

    #[test]
    fn exp_underflows_to_zero() {
        assert_eq!(exp_unit(to_fx(-40.0, FRAC)), 0);
        assert_eq!(exp_unit(i32::MIN / 2), 0);
    }

    #[test]
    fn ln_exact_at_one_and_powers_of_two() {
        assert_eq!(ln_unit(ONE), 0);
        // ln(2^k) = k * 0.6953 with the shift-add constant
        let ln2_approx = 0.5 + 0.125 + 0.0625 + 1.0 / 128.0;
        for k in 1..8 {
            let y = to_f32(ln_unit(ONE << k), FRAC) as f64;
            let want = k as f64 * ln2_approx;
            assert!((y - want).abs() < 0.01, "k={k}: {y} vs {want}");
        }
    }

    #[test]
    fn ln_absolute_error_bounded() {
        // The `log2(m) ~= m - 1` approximation has a worst-case error of
        // 0.086 (at m ~= 1.44); through the ln2 constant this bounds the
        // unit's *absolute* error by ~0.061 + 0.4% of ln(x). Over the
        // softmax sum range [1, s] = [1, 512] that is < 0.09. (For the
        // softmax, an absolute ln-error shifts every logit of a row
        // equally, i.e. scales the whole row by a common factor — which is
        // why the paper's BLEU is unaffected.)
        let mut x = ONE;
        while x < 512 * ONE {
            let approx = to_f32(ln_unit(x), FRAC) as f64;
            let exact = (x as f64 / ONE as f64).ln();
            assert!(
                (approx - exact).abs() < 0.09,
                "x={} approx={approx} exact={exact}",
                x as f64 / ONE as f64
            );
            x += ONE / 3 + 1;
        }
    }

    #[test]
    fn ln_handles_subunit_inputs() {
        let y = to_f32(ln_unit(to_fx(0.5, FRAC)), FRAC) as f64;
        assert!((y - (-0.693)).abs() < 0.05, "ln(0.5) ~ {y}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_rejects_zero() {
        ln_unit(0);
    }

    #[test]
    fn exp_ln_roundtrip_error_small() {
        // exp(ln(x)) should recover x within the combined approximation
        // error (~10% relative) — this is the path the softmax takes.
        for &v in &[1.0f32, 1.5, 2.0, 5.0, 17.0, 63.0] {
            let x = to_fx(v, FRAC);
            let ln = ln_unit(x);
            let back = to_f32(exp_unit(-ln), FRAC); // exp(-ln x) = 1/x
            let want = 1.0 / v;
            assert!(
                (back - want).abs() / want < 0.15,
                "v={v}: 1/x approx {back} want {want}"
            );
        }
    }

    #[test]
    fn reported_max_error_is_sane() {
        let e = exp_unit_max_abs_error();
        assert!(e > 0.0 && e < 0.07, "max exp error {e}");
    }

    #[test]
    fn frac_generic_units_match_the_specialised_ones() {
        for x in [-40_000i32, -5000, -1, 0] {
            assert_eq!(exp_unit(x), exp_unit_with_frac(x, FRAC));
        }
        for x in [1i32, 4096, 123_456] {
            assert_eq!(ln_unit(x), ln_unit_with_frac(x, FRAC));
        }
    }

    #[test]
    fn wider_fractions_reduce_exp_error() {
        let err_at = |frac: u32| {
            let one = 1i32 << frac;
            let mut worst = 0.0f64;
            let mut x = -(16 << frac);
            while x <= 0 {
                let approx = exp_unit_with_frac(x, frac) as f64 / one as f64;
                let exact = (x as f64 / one as f64).exp();
                worst = worst.max((approx - exact).abs());
                x += (one >> 4).max(1);
            }
            worst
        };
        // error is dominated by the approximation at frac >= 10, by
        // quantization below it: very coarse formats are strictly worse,
        // and wide formats converge to the analytic PWL bound (~0.044)
        assert!(err_at(6) > err_at(12), "{} vs {}", err_at(6), err_at(12));
        assert!((err_at(16) - 0.044).abs() < 0.01, "{}", err_at(16));
        for f in [8u32, 10, 12, 16] {
            assert!(err_at(f) < 0.1, "frac {f}: {}", err_at(f));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_frac_rejected() {
        let _ = exp_unit_with_frac(-1, 0);
    }

    #[test]
    fn pwl2_is_strictly_more_accurate() {
        let one_seg = exp_unit_max_abs_error();
        let two_seg = exp_unit_pwl2_max_abs_error();
        assert!(
            two_seg < one_seg / 2.0,
            "pwl2 {two_seg} vs single-segment {one_seg}"
        );
        assert!(two_seg < 0.03, "{two_seg}");
    }

    #[test]
    fn pwl2_exact_at_zero_and_monotone() {
        assert_eq!(exp_unit_pwl2(0), ONE);
        let mut prev = exp_unit_pwl2(0);
        for i in 1..200 {
            let y = exp_unit_pwl2(-i * (ONE / 16));
            assert!(y <= prev, "not monotone at step {i}");
            prev = y;
        }
        assert_eq!(exp_unit_pwl2(to_fx(-40.0, FRAC)), 0);
    }

    #[test]
    fn pwl2_segments_are_continuous() {
        // mantissa continuity at f = 1/2: evaluate two x values whose
        // fractional parts straddle the boundary within 1 LSB
        let half = ONE >> 1;
        let seg0 = ONE + ((half - 1) >> 1) + ((half - 1) >> 2) + ((half - 1) >> 4);
        let seg1 = (ONE - (ONE >> 3) - (ONE >> 4)) + half + (half >> 3) + (half >> 4);
        assert!(
            (seg0 - seg1).abs() <= 4,
            "discontinuity {} vs {}",
            seg0,
            seg1
        );
    }
}
