//! Symmetric INT8 quantization parameters and the integer-only
//! requantizer.
//!
//! The paper quantizes every trainable matrix and activation matrix with
//! INT8 (Section V-A, following Bhandare et al. 2019). A GEMM then
//! accumulates `i8 x i8` into `i32`; converting that accumulator into the
//! INT8 scale of the *next* operand requires multiplying by
//! `s_a * s_w / s_out` — a real number the hardware realises as a 32-bit
//! fixed-point multiplier plus a rounding shift ([`Requantizer`]), exactly
//! as in TFLite/gemmlowp-style integer inference.

use serde::{Deserialize, Serialize};

use crate::sat::{rounding_shr, sat_i8};

/// Symmetric per-tensor quantization parameters: `real = scale * q`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QuantParams {
    scale: f32,
}

impl QuantParams {
    /// Creates parameters with an explicit scale.
    ///
    /// # Panics
    ///
    /// Panics if `scale` is not finite and positive.
    pub fn new(scale: f32) -> Self {
        assert!(
            scale.is_finite() && scale > 0.0,
            "quantization scale must be finite and positive, got {scale}"
        );
        Self { scale }
    }

    /// Chooses the scale so that `max_abs` maps to 127. A zero or
    /// non-finite `max_abs` falls back to scale 1.0 (an all-zero tensor).
    pub fn from_max_abs(max_abs: f32) -> Self {
        if !max_abs.is_finite() || max_abs <= 0.0 {
            Self { scale: 1.0 }
        } else {
            Self {
                scale: max_abs / 127.0,
            }
        }
    }

    /// The quantization step (real value of one LSB).
    #[inline]
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Quantizes a real value to INT8 (round-to-nearest, saturate to
    /// `[-127, 127]`).
    #[inline]
    pub fn quantize(&self, x: f32) -> i8 {
        let q = (x / self.scale).round();
        sat_i8(q.clamp(i32::MIN as f32, i32::MAX as f32) as i32)
    }

    /// Recovers the real value of a quantized code.
    #[inline]
    pub fn dequantize(&self, q: i8) -> f32 {
        q as f32 * self.scale
    }

    /// Quantizes a bias term into the `i32` accumulator domain of a GEMM
    /// whose inputs have scales `self` and `w`: `b_q = round(b / (s_a s_w))`.
    pub fn quantize_bias(&self, w: &QuantParams, b: f32) -> i32 {
        let s = self.scale as f64 * w.scale as f64;
        (b as f64 / s)
            .round()
            .clamp(i32::MIN as f64, i32::MAX as f64) as i32
    }
}

/// Integer-only multiplier approximating a positive real ratio `m`, as
/// `m ≈ mult * 2^(-shift)` with `mult < 2^31`.
///
/// Applying it to an `i32` accumulator uses one 64-bit multiply and one
/// rounding shift — the standard hardware requantization stage.
///
/// # Example
///
/// ```
/// use fixedmath::quant::Requantizer;
/// let r = Requantizer::from_ratio(0.5);
/// assert_eq!(r.apply(100), 50);
/// assert_eq!(r.apply_sat_i8(1000), 127); // saturates
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Requantizer {
    mult: i32,
    shift: u32,
}

impl Requantizer {
    /// Builds the fixed-point representation of `ratio`.
    ///
    /// # Panics
    ///
    /// Panics if `ratio` is not finite and positive, or is so large that
    /// it cannot be represented (`>= 2^31`).
    pub fn from_ratio(ratio: f64) -> Self {
        assert!(
            ratio.is_finite() && ratio > 0.0,
            "requantizer ratio must be finite and positive, got {ratio}"
        );
        // Normalise ratio into [0.5, 1) * 2^exp.
        let exp = ratio.log2().ceil() as i32;
        let m0 = ratio / (2f64).powi(exp); // in (0.5, 1]
                                           // mult = round(m0 * 2^31), shift = 31 - exp
        let mut mult = (m0 * (1u64 << 31) as f64).round() as i64;
        let mut shift = 31 - exp;
        if mult == 1i64 << 31 {
            mult >>= 1;
            shift -= 1;
        }
        assert!(shift >= 0, "ratio {ratio} too large to represent");
        assert!(shift <= 62, "ratio {ratio} too small to represent");
        Self {
            mult: mult as i32,
            shift: shift as u32,
        }
    }

    /// The real ratio this requantizer realises.
    pub fn as_f64(&self) -> f64 {
        self.mult as f64 / (1u64 << self.shift) as f64
    }

    /// Applies the multiplier to an accumulator with round-to-nearest.
    #[inline]
    pub fn apply(&self, acc: i32) -> i64 {
        rounding_shr(acc as i64 * self.mult as i64, self.shift)
    }

    /// Applies the multiplier and saturates to symmetric INT8.
    #[inline]
    pub fn apply_sat_i8(&self, acc: i32) -> i8 {
        sat_i8(self.apply(acc).clamp(i32::MIN as i64, i32::MAX as i64) as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_max_abs_maps_extreme_to_127() {
        let q = QuantParams::from_max_abs(12.7);
        assert_eq!(q.quantize(12.7), 127);
        assert_eq!(q.quantize(-12.7), -127);
        assert_eq!(q.quantize(25.0), 127, "saturates beyond calibration");
    }

    #[test]
    fn zero_max_abs_degenerates_gracefully() {
        let q = QuantParams::from_max_abs(0.0);
        assert_eq!(q.quantize(0.0), 0);
        assert_eq!(q.scale(), 1.0);
    }

    #[test]
    fn quantize_dequantize_error_within_half_step() {
        let q = QuantParams::from_max_abs(4.0);
        for i in -100..=100 {
            let x = i as f32 * 0.04;
            let err = (q.dequantize(q.quantize(x)) - x).abs();
            assert!(err <= q.scale() / 2.0 + 1e-6, "x={x} err={err}");
        }
    }

    #[test]
    fn bias_quantization_uses_product_scale() {
        let a = QuantParams::new(0.1);
        let w = QuantParams::new(0.02);
        assert_eq!(a.quantize_bias(&w, 1.0), 500);
        assert_eq!(a.quantize_bias(&w, -0.002), -1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn negative_scale_rejected() {
        QuantParams::new(-1.0);
    }

    #[test]
    fn requantizer_is_accurate_over_ratio_range() {
        for &ratio in &[1e-6, 0.001, 0.5, 1.0, 1.5, 37.0, 60_000.0] {
            let r = Requantizer::from_ratio(ratio);
            let rel = (r.as_f64() - ratio).abs() / ratio;
            assert!(rel < 1e-8, "ratio {ratio}: rel err {rel}");
        }
    }

    #[test]
    fn requantizer_apply_matches_float() {
        let r = Requantizer::from_ratio(0.0375);
        for acc in [-1_000_000, -1234, -1, 0, 1, 999, 1_000_000] {
            let want = (acc as f64 * 0.0375).round() as i64;
            let got = r.apply(acc);
            assert!((got - want).abs() <= 1, "acc={acc}: {got} vs {want}");
        }
    }

    #[test]
    fn requantizer_saturation() {
        let r = Requantizer::from_ratio(1.0);
        assert_eq!(r.apply_sat_i8(200), 127);
        assert_eq!(r.apply_sat_i8(-200), -127);
        assert_eq!(r.apply_sat_i8(13), 13);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn requantizer_rejects_zero() {
        Requantizer::from_ratio(0.0);
    }

    #[test]
    fn requantizer_power_of_two_exact() {
        let r = Requantizer::from_ratio(0.125);
        for acc in -512..=512 {
            assert_eq!(r.apply(acc), rounding_shr(acc as i64, 3));
        }
    }
}
