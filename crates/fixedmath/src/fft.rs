//! A small fixed-point radix-2 complex FFT — the arithmetic core of the
//! FTRANS-style block-circulant FFN backend.
//!
//! FTRANS (arXiv 2007.08563) compresses Transformer weight matrices
//! into `b × b` circulant blocks; a circulant matrix–vector product is a
//! circular convolution, which an FFT unit computes as
//! `y = IFFT(FFT(x) ∘ FFT(c))` in `O(b log b)` multiplies instead of
//! `O(b²)`. The hardware unit is tiny: `b` is 8 or 16, so the whole
//! transform fits a handful of butterfly stages.
//!
//! Everything here runs on `i32` fixed-point words with a caller-chosen
//! fraction width (use [`crate::fx::FRAC`] for the accelerator's Q19.12
//! convention), with round-to-nearest shifts after every multiply —
//! matching what a DSP-slice butterfly datapath would do. The
//! forward/inverse pair is exercised against a naive DFT and the
//! circular-convolution theorem in this module's tests; end-to-end
//! accuracy of the circulant FFN lands in `accel`'s SQNR harness.

use crate::sat::rounding_shr;

/// A fixed-point complex number (both parts share the fraction width).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cpx {
    /// Real part.
    pub re: i32,
    /// Imaginary part.
    pub im: i32,
}

impl Cpx {
    /// The complex zero.
    pub const ZERO: Cpx = Cpx { re: 0, im: 0 };

    /// Builds from fixed-point parts.
    pub fn new(re: i32, im: i32) -> Self {
        Self { re, im }
    }

    /// Builds a purely real value.
    pub fn real(re: i32) -> Self {
        Self { re, im: 0 }
    }

    /// Complex multiply with a rounding `frac`-bit normalisation — one
    /// butterfly's four-multiplier datapath.
    pub fn mul(self, o: Cpx, frac: u32) -> Cpx {
        let re = self.re as i64 * o.re as i64 - self.im as i64 * o.im as i64;
        let im = self.re as i64 * o.im as i64 + self.im as i64 * o.re as i64;
        Cpx::new(rounding_shr(re, frac) as i32, rounding_shr(im, frac) as i32)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Cpx {
        Cpx::new(self.re, -self.im)
    }
}

/// Complex addition (wrapping is a caller bug; ranges here are far
/// inside `i32`).
impl std::ops::Add for Cpx {
    type Output = Cpx;
    fn add(self, o: Cpx) -> Cpx {
        Cpx::new(self.re + o.re, self.im + o.im)
    }
}

/// Complex subtraction.
impl std::ops::Sub for Cpx {
    type Output = Cpx;
    fn sub(self, o: Cpx) -> Cpx {
        Cpx::new(self.re - o.re, self.im - o.im)
    }
}

/// Precomputes the forward twiddle factors `e^{-2πik/n}` for
/// `k = 0..n/2` in fixed point — the unit's ROM contents.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
pub fn twiddles(n: usize, frac: u32) -> Vec<Cpx> {
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    (0..n / 2)
        .map(|k| {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            Cpx::new(
                crate::fx::to_fx(theta.cos() as f32, frac),
                crate::fx::to_fx(theta.sin() as f32, frac),
            )
        })
        .collect()
}

fn bit_reverse_permute(x: &mut [Cpx]) {
    let n = x.len();
    let mut j = 0usize;
    for i in 1..n {
        let mut bit = n >> 1;
        while j & bit != 0 {
            j ^= bit;
            bit >>= 1;
        }
        j |= bit;
        if i < j {
            x.swap(i, j);
        }
    }
}

/// In-place radix-2 decimation-in-time FFT. `tw` must come from
/// [`twiddles`] at the same `n` and `frac`.
///
/// # Panics
///
/// Panics if the length is not a power of two or the twiddle table does
/// not match.
pub fn fft_in_place(x: &mut [Cpx], tw: &[Cpx], frac: u32) {
    let n = x.len();
    assert!(n.is_power_of_two(), "FFT size must be a power of two");
    assert_eq!(tw.len(), n / 2, "twiddle table size mismatch");
    if n <= 1 {
        return;
    }
    bit_reverse_permute(x);
    let mut len = 2;
    while len <= n {
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..len / 2 {
                let w = tw[k * step];
                let a = x[start + k];
                let b = x[start + k + len / 2].mul(w, frac);
                x[start + k] = a + b;
                x[start + k + len / 2] = a - b;
            }
        }
        len <<= 1;
    }
}

/// In-place inverse FFT via the conjugation trick, including the `1/n`
/// normalisation as a rounding right-shift (exact for power-of-two `n`).
///
/// # Panics
///
/// Same conditions as [`fft_in_place`].
pub fn ifft_in_place(x: &mut [Cpx], tw: &[Cpx], frac: u32) {
    let n = x.len();
    for v in x.iter_mut() {
        *v = v.conj();
    }
    fft_in_place(x, tw, frac);
    let shift = n.trailing_zeros();
    for v in x.iter_mut() {
        *v = Cpx::new(
            rounding_shr(v.re as i64, shift) as i32,
            rounding_shr(-v.im as i64, shift) as i32,
        );
    }
}

/// Forward FFT of a real fixed-point signal — the common entry point
/// for activations and circulant kernels.
pub fn fft_real(x: &[i32], tw: &[Cpx], frac: u32) -> Vec<Cpx> {
    let mut buf: Vec<Cpx> = x.iter().map(|&v| Cpx::real(v)).collect();
    fft_in_place(&mut buf, tw, frac);
    buf
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fx::{self, FRAC};

    fn naive_dft(x: &[Cpx]) -> Vec<(f64, f64)> {
        let n = x.len();
        (0..n)
            .map(|k| {
                let mut re = 0.0;
                let mut im = 0.0;
                for (t, v) in x.iter().enumerate() {
                    let theta = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                    let (vr, vi) = (fx::to_f32(v.re, FRAC) as f64, fx::to_f32(v.im, FRAC) as f64);
                    re += vr * theta.cos() - vi * theta.sin();
                    im += vr * theta.sin() + vi * theta.cos();
                }
                (re, im)
            })
            .collect()
    }

    fn fixture(n: usize) -> Vec<Cpx> {
        (0..n)
            .map(|i| {
                Cpx::new(
                    fx::to_fx(((i * 7 + 3) % 11) as f32 / 4.0 - 1.0, FRAC),
                    fx::to_fx(((i * 5 + 1) % 7) as f32 / 8.0 - 0.4, FRAC),
                )
            })
            .collect()
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let tw = twiddles(8, FRAC);
        let mut x = vec![Cpx::ZERO; 8];
        x[0] = Cpx::real(fx::ONE);
        fft_in_place(&mut x, &tw, FRAC);
        for v in &x {
            assert_eq!(v.re, fx::ONE);
            assert!(v.im.abs() <= 1);
        }
    }

    #[test]
    fn matches_naive_dft() {
        for n in [4usize, 8, 16] {
            let tw = twiddles(n, FRAC);
            let mut x = fixture(n);
            let want = naive_dft(&x);
            fft_in_place(&mut x, &tw, FRAC);
            for (got, (wr, wi)) in x.iter().zip(&want) {
                let tol = 8.0 / fx::ONE as f64 * n as f64;
                assert!(
                    (fx::to_f32(got.re, FRAC) as f64 - wr).abs() < tol,
                    "n={n} re {got:?} vs {wr}"
                );
                assert!((fx::to_f32(got.im, FRAC) as f64 - wi).abs() < tol);
            }
        }
    }

    #[test]
    fn round_trip_is_near_identity() {
        let n = 16;
        let tw = twiddles(n, FRAC);
        let orig = fixture(n);
        let mut x = orig.clone();
        fft_in_place(&mut x, &tw, FRAC);
        ifft_in_place(&mut x, &tw, FRAC);
        for (got, want) in x.iter().zip(&orig) {
            assert!((got.re - want.re).abs() <= 16, "{got:?} vs {want:?}");
            assert!((got.im - want.im).abs() <= 16);
        }
    }

    #[test]
    fn circular_convolution_theorem_holds() {
        // y = IFFT(FFT(a) ∘ FFT(b)) must equal the direct O(n²)
        // circular convolution.
        let n = 8usize;
        let tw = twiddles(n, FRAC);
        let a: Vec<i32> = (0..n)
            .map(|i| fx::to_fx((i as f32 - 3.0) / 4.0, FRAC))
            .collect();
        let b: Vec<i32> = (0..n)
            .map(|i| fx::to_fx(((i * 3) % 5) as f32 / 5.0, FRAC))
            .collect();
        let fa = fft_real(&a, &tw, FRAC);
        let fb = fft_real(&b, &tw, FRAC);
        let mut prod: Vec<Cpx> = fa.iter().zip(&fb).map(|(x, y)| x.mul(*y, FRAC)).collect();
        ifft_in_place(&mut prod, &tw, FRAC);
        for t in 0..n {
            let mut want = 0.0f64;
            for d in 0..n {
                want += fx::to_f32(a[d], FRAC) as f64 * fx::to_f32(b[(t + n - d) % n], FRAC) as f64;
            }
            let got = fx::to_f32(prod[t].re, FRAC) as f64;
            assert!(
                (got - want).abs() < 64.0 / fx::ONE as f64,
                "t={t}: {got} vs {want}"
            );
            assert!(prod[t].im.abs() <= 64, "real inputs, real output");
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_rejected() {
        let _ = twiddles(6, FRAC);
    }
}
