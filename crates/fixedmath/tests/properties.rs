//! Property-based tests of the fixed-point substrate: the requantizer,
//! saturating arithmetic and the nonlinear units must satisfy their
//! contracts for arbitrary inputs.

use fixedmath::explog::{exp_unit, ln_unit};
use fixedmath::fx::{FRAC, ONE};
use fixedmath::quant::{QuantParams, Requantizer};
use fixedmath::rsqrt::{rsqrt_fx, OUT_FRAC};
use fixedmath::sat::{rounding_shr, sat_i8};
use proptest::prelude::*;

proptest! {
    #[test]
    fn requantizer_within_one_ulp_of_real_product(
        ratio_mant in 0.1f64..10.0,
        ratio_exp in -20i32..6,
        acc in -2_000_000i32..2_000_000,
    ) {
        let ratio = ratio_mant * (2f64).powi(ratio_exp);
        let r = Requantizer::from_ratio(ratio);
        let want = (acc as f64 * ratio).round() as i64;
        let got = r.apply(acc);
        prop_assert!((got - want).abs() <= 1, "ratio {ratio}, acc {acc}: {got} vs {want}");
    }

    #[test]
    fn requantizer_is_odd(ratio in 0.001f64..100.0, acc in 0i32..1_000_000) {
        let r = Requantizer::from_ratio(ratio);
        prop_assert_eq!(r.apply(acc), -r.apply(-acc));
    }

    #[test]
    fn quantize_dequantize_error_bounded(max_abs in 0.01f32..100.0, frac in -1.0f32..1.0) {
        let q = QuantParams::from_max_abs(max_abs);
        let x = frac * max_abs;
        let err = (q.dequantize(q.quantize(x)) - x).abs();
        prop_assert!(err <= q.scale() / 2.0 + 1e-6);
    }

    #[test]
    fn quantize_saturates_out_of_range(max_abs in 0.01f32..100.0, mult in 1.1f32..10.0) {
        let q = QuantParams::from_max_abs(max_abs);
        prop_assert_eq!(q.quantize(max_abs * mult), 127);
        prop_assert_eq!(q.quantize(-max_abs * mult), -127);
    }

    #[test]
    fn rounding_shr_error_under_half(x in -1_000_000i64..1_000_000, s in 1u32..20) {
        let got = rounding_shr(x, s) as f64;
        let want = x as f64 / (1i64 << s) as f64;
        prop_assert!((got - want).abs() <= 0.5 + 1e-12);
    }

    #[test]
    fn sat_i8_is_clamp(x in i32::MIN..i32::MAX) {
        let y = sat_i8(x) as i32;
        prop_assert!((-127..=127).contains(&y));
        if (-127..=127).contains(&x) {
            prop_assert_eq!(y, x);
        }
    }

    #[test]
    fn exp_unit_bounded_and_monotone_pairs(a in -80_000i32..0, b in -80_000i32..0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        let ya = exp_unit(lo);
        let yb = exp_unit(hi);
        prop_assert!(ya <= yb, "exp not monotone: exp({lo})={ya} > exp({hi})={yb}");
        prop_assert!((0..=ONE).contains(&yb));
    }

    #[test]
    fn ln_unit_monotone_pairs(a in 1i32..10_000_000, b in 1i32..10_000_000) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(ln_unit(lo) <= ln_unit(hi));
    }

    #[test]
    fn ln_unit_tracks_f64_absolutely(x in 1i32..5_000_000) {
        let approx = ln_unit(x) as f64 / ONE as f64;
        let exact = (x as f64 / ONE as f64).ln();
        // absolute bound: linear-mantissa error (0.086·ln2) plus the
        // ln2 shift-add constant error (0.32% of |ln x|)
        prop_assert!(
            (approx - exact).abs() < 0.062 + 0.005 * exact.abs(),
            "x={x}: {approx} vs {exact}"
        );
    }

    #[test]
    fn rsqrt_relative_error_small(x in 1i64..(1i64 << 40)) {
        let got = rsqrt_fx(x) as f64 / (1u64 << OUT_FRAC) as f64;
        let want = 1.0 / (x as f64 / ONE as f64).sqrt();
        let rel = (got - want).abs() / want;
        // 6 mantissa index bits -> <= ~1.2% incl. output quantization
        prop_assert!(rel < 0.015, "x={x}: rel {rel}");
    }

    #[test]
    fn softmax_identity_is_preserved_by_units(shift in 0i32..(12 * ONE)) {
        // exp(ln(x) - ln(x)) must be exactly ONE for any intermediate —
        // i.e. the x - max - ln(sum) path at the maximum element when the
        // row is a singleton.
        let _ = shift;
        prop_assert_eq!(exp_unit(0), ONE);
    }

    #[test]
    fn fx_roundtrip(x in -100_000.0f32..100_000.0) {
        let fx = fixedmath::fx::to_fx(x, FRAC);
        let back = fixedmath::fx::to_f32(fx, FRAC);
        prop_assert!((back - x).abs() <= 0.5 / (1 << FRAC) as f32 * 2.0 + x.abs() * 1e-6);
    }

    // ---- requant-composition properties behind the graph fusion pass ----
    //
    // The fusion legality argument for eliding a dequant→requant pair on
    // a residual edge is that the quantizer emits *shared-scale* edges,
    // where the composed rescale is the identity. These properties pin
    // that bit-for-bit, and pin why a general (non-identity) composition
    // is NOT a legal fusion: it double-rounds.

    #[test]
    fn identity_requantizer_is_exact_on_all_i32(acc in i32::MIN..i32::MAX) {
        // `from_ratio(1.0)` normalizes to (mult = 2^30, shift = 30):
        // `rounding_shr(acc · 2^30, 30)` reproduces every i32 exactly,
        // so the requant-elided edge loses nothing for any accumulator.
        let r = Requantizer::from_ratio(1.0);
        prop_assert_eq!(r.apply(acc), acc as i64);
    }

    #[test]
    fn dequant_requant_at_shared_scale_is_identity_on_codes(
        scale in 0.001f32..100.0,
        code in -127i8..=127,
    ) {
        // A residual edge whose producer and consumer share one
        // QuantParams: dequantizing a code and re-quantizing it at the
        // same scale returns the code — `(c·s)/s` rounds back to `c`
        // for every code the quantizer can emit.
        let q = QuantParams::new(scale);
        prop_assert_eq!(q.quantize(q.dequantize(code)), code);
    }

    #[test]
    fn power_of_two_rescale_is_exactly_rounding_shr(
        shift in 1u32..20,
        acc in -2_000_000i32..2_000_000,
    ) {
        // The requantizer's fixed-point path degenerates to the plain
        // rounding shift for power-of-two ratios — the drain hardware's
        // cheapest case, and the form the folded single rescale takes
        // whenever the composed scales divide exactly.
        let r = Requantizer::from_ratio((2f64).powi(-(shift as i32)));
        prop_assert_eq!(r.apply(acc), rounding_shr(acc as i64, shift));
    }

    #[test]
    fn composing_with_identity_is_bit_identical_either_side(
        ratio_mant in 0.1f64..10.0,
        ratio_exp in -20i32..6,
        acc in -2_000_000i32..2_000_000,
    ) {
        // Folding an identity rescale into a real one — on either side —
        // changes no bits: requant_r(identity(acc)) == requant_r(acc)
        // and identity(requant_r(acc)) == requant_r(acc). This is the
        // single-rescale form the fusion pass relies on for the
        // shared-scale residual edges.
        let ratio = ratio_mant * (2f64).powi(ratio_exp);
        let r = Requantizer::from_ratio(ratio);
        let id = Requantizer::from_ratio(1.0);
        let folded = r.apply(acc);
        let pre = r.apply(id.apply(acc) as i32);
        let post = id.apply(folded as i32);
        prop_assert_eq!(pre, folded);
        prop_assert_eq!(post, folded);
    }

    #[test]
    fn split_rescale_double_rounds_but_stays_within_one_step(
        mant in 0.2f64..5.0,
        acc in -1_000_000i32..1_000_000,
    ) {
        // The illegal fusion: splitting a rescale `m` into `sqrt(m) ∘
        // sqrt(m)` rounds twice. The result can differ from the single
        // rescale (which is why the pass only elides *identity*
        // compositions) — but never by more than one output step, which
        // bounds the error had legacy graphs ever materialized the pair.
        let single = Requantizer::from_ratio(mant);
        let half = Requantizer::from_ratio(mant.sqrt());
        let twice = half.apply(half.apply(acc) as i32);
        let once = single.apply(acc);
        prop_assert!(
            (twice - once).abs() <= 1 + (once.abs() / 2),
            "split rescale drifted: {twice} vs {once}"
        );
    }
}
