//! Trace-export tests: timelines, resources and cycle types serialize
//! to JSON (the experiment harness archives them under `results/`) and
//! deserialize back without loss.

use hwsim::cycles::{Cycle, Frequency};
use hwsim::resources::{Device, Resources};
use hwsim::timeline::Timeline;

#[test]
fn timeline_json_round_trip() {
    let mut tl = Timeline::new();
    let a = tl.add_unit("systolic_array");
    let b = tl.add_unit("softmax");
    let x = tl.schedule(a, "QK^T", Cycle(64), &[]);
    let _ = tl.schedule(b, "softmax", Cycle(132), &[x]);

    let json = serde_json::to_string(&tl).expect("serialize timeline");
    assert!(json.contains("QK^T"));
    let back: Timeline = serde_json::from_str(&json).expect("deserialize timeline");
    assert_eq!(back.makespan(), tl.makespan());
    assert_eq!(back.events().len(), tl.events().len());
    assert_eq!(back.events()[1].start, Cycle(64));
}

#[test]
fn resources_and_device_round_trip() {
    let d = Device::vu13p();
    let json = serde_json::to_string(&d).expect("serialize device");
    let back: Device = serde_json::from_str(&json).expect("deserialize device");
    assert_eq!(back, d);

    let r = Resources::new(1.5, 2.0, 27.5, 129.0);
    let back: Resources =
        serde_json::from_str(&serde_json::to_string(&r).unwrap()).expect("resources");
    assert_eq!(back, r);
}

#[test]
fn cycle_and_frequency_round_trip() {
    let c = Cycle(21_344);
    let back: Cycle = serde_json::from_str(&serde_json::to_string(&c).unwrap()).unwrap();
    assert_eq!(back, c);
    let f = Frequency::paper_clock();
    let back: Frequency = serde_json::from_str(&serde_json::to_string(&f).unwrap()).unwrap();
    assert_eq!(back.as_mhz(), 200.0);
}
