//! Property-based tests of the timeline scheduler: ordering, causality
//! and conservation laws that must hold for any schedule.

use hwsim::cycles::Cycle;
use hwsim::timeline::Timeline;
use proptest::prelude::*;

proptest! {
    #[test]
    fn unit_events_never_overlap(durations in proptest::collection::vec(0u64..50, 1..20)) {
        let mut tl = Timeline::new();
        let u = tl.add_unit("u");
        for (i, &d) in durations.iter().enumerate() {
            tl.schedule(u, format!("e{i}"), Cycle(d), &[]);
        }
        let evs = tl.events();
        for w in evs.windows(2) {
            prop_assert!(w[1].start >= w[0].end, "events overlap on one unit");
        }
        // conservation: busy == sum of durations
        prop_assert_eq!(tl.busy(u), Cycle(durations.iter().sum::<u64>()));
    }

    #[test]
    fn dependencies_are_causal(
        chain in proptest::collection::vec(1u64..40, 2..15),
        cross_unit in proptest::bool::ANY,
    ) {
        let mut tl = Timeline::new();
        let u1 = tl.add_unit("a");
        let u2 = tl.add_unit("b");
        let mut prev = None;
        for (i, &d) in chain.iter().enumerate() {
            let unit = if cross_unit && i % 2 == 1 { u2 } else { u1 };
            let deps: Vec<_> = prev.into_iter().collect();
            let e = tl.schedule(unit, format!("e{i}"), Cycle(d), &deps);
            if let Some(p) = prev {
                prop_assert!(tl.start_of(e) >= tl.end_of(p), "dependency violated");
            }
            prev = Some(e);
        }
        // chained schedule: makespan == sum of durations
        prop_assert_eq!(tl.makespan(), Cycle(chain.iter().sum::<u64>()));
    }

    #[test]
    fn makespan_bounds_every_unit(
        lanes in proptest::collection::vec(proptest::collection::vec(1u64..30, 0..8), 1..5),
    ) {
        let mut tl = Timeline::new();
        let units: Vec<_> = (0..lanes.len()).map(|i| tl.add_unit(format!("u{i}"))).collect();
        for (u, ds) in units.iter().zip(&lanes) {
            for &d in ds {
                tl.schedule(*u, "x", Cycle(d), &[]);
            }
        }
        for &u in &units {
            prop_assert!(tl.busy(u) <= tl.makespan());
            let util = tl.utilization(u);
            prop_assert!((0.0..=1.0).contains(&util));
        }
    }

    #[test]
    fn earliest_start_is_respected(earliest in 0u64..100, dur in 1u64..20) {
        let mut tl = Timeline::new();
        let u = tl.add_unit("u");
        let e = tl.schedule_at(u, "x", Cycle(earliest), Cycle(dur), &[]);
        prop_assert!(tl.start_of(e) >= Cycle(earliest));
        prop_assert_eq!(tl.end_of(e) - tl.start_of(e), Cycle(dur));
    }

    #[test]
    fn independent_units_run_fully_parallel(d1 in 1u64..100, d2 in 1u64..100) {
        let mut tl = Timeline::new();
        let a = tl.add_unit("a");
        let b = tl.add_unit("b");
        tl.schedule(a, "x", Cycle(d1), &[]);
        tl.schedule(b, "y", Cycle(d2), &[]);
        prop_assert_eq!(tl.makespan(), Cycle(d1.max(d2)));
    }

    #[test]
    fn memory_spec_blocks_scale_with_capacity(depth in 1u64..100_000, width in 1u64..256) {
        use hwsim::memory::{MemorySpec, BRAM36_BITS};
        let spec = MemorySpec::new(depth, width);
        let blocks = spec.bram36_blocks();
        prop_assert!(blocks >= 0.5);
        // never less than the raw capacity bound
        let capacity_bound = spec.bits() as f64 / BRAM36_BITS as f64;
        prop_assert!(blocks >= capacity_bound * 0.49, "{blocks} vs cap {capacity_bound}");
    }
}
