//! Cycle-level hardware simulation framework for the accelerator model.
//!
//! The SOCC'20 accelerator is a small set of pipelined modules (systolic
//! array, softmax, LayerNorm, memories) connected by a statically
//! scheduled dataflow (Algorithm 1). That maps naturally onto a
//! **dependency-driven unit timeline** rather than a full event-driven
//! RTL simulation:
//!
//! * every hardware module is a [`timeline::UnitId`] — a non-preemptive,
//!   in-order resource;
//! * every operation (a GEMM pass, a softmax column sweep, a LayerNorm
//!   output sweep) is an event with a cycle duration and explicit data
//!   dependencies;
//! * [`timeline::Timeline::schedule`] resolves `start = max(unit free,
//!   dependency ends)` and records the event, yielding the makespan,
//!   per-unit utilization, and a Gantt trace.
//!
//! The crate also carries the FPGA cost vocabulary: [`resources::Resources`]
//! (LUT/FF/BRAM/DSP vectors), [`resources::Device`] capacities (Xilinx
//! VU13P), and [`memory`] BRAM estimation.
//!
//! # Example
//!
//! ```
//! use hwsim::timeline::Timeline;
//! use hwsim::cycles::Cycle;
//!
//! let mut tl = Timeline::new();
//! let sa = tl.add_unit("systolic_array");
//! let sm = tl.add_unit("softmax");
//! let qk = tl.schedule(sa, "QK^T", Cycle(64), &[]);
//! let smx = tl.schedule(sm, "softmax", Cycle(128), &[qk]);
//! let vw = tl.schedule(sa, "V*Wv", Cycle(512), &[]);
//! let pv = tl.schedule(sa, "P*V", Cycle(64), &[smx, vw]);
//! assert_eq!(tl.end_of(pv), Cycle(640)); // softmax hidden behind V*Wv
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cycles;
pub mod memory;
pub mod resources;
pub mod timeline;
pub mod traffic;

pub use cycles::{Cycle, Frequency};
pub use resources::{Device, Resources};
pub use timeline::Timeline;
