//! Dependency-driven unit timeline — the scheduling core of the
//! cycle-level simulator.

use serde::{Deserialize, Serialize};

use crate::cycles::Cycle;

/// Handle to a hardware unit (a non-preemptive, in-order resource).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct UnitId(usize);

/// Handle to a scheduled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EventId(usize);

/// One scheduled operation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    /// The unit the operation occupies.
    pub unit: UnitId,
    /// Human-readable label (shows up in the Gantt trace).
    pub label: String,
    /// First cycle of the operation.
    pub start: Cycle,
    /// One past the last cycle of the operation.
    pub end: Cycle,
    /// Declared data dependencies (for critical-path extraction).
    pub deps: Vec<EventId>,
}

/// A dependency-driven schedule over a set of hardware units.
///
/// Scheduling resolves each event's start cycle as the maximum of the
/// unit's free time and all dependency end times; units execute events
/// in the order they are scheduled (in-order issue, as static hardware
/// control logic does).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Timeline {
    unit_names: Vec<String>,
    unit_free: Vec<Cycle>,
    unit_busy: Vec<Cycle>,
    events: Vec<Event>,
}

impl Timeline {
    /// Creates an empty timeline.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a hardware unit.
    pub fn add_unit(&mut self, name: impl Into<String>) -> UnitId {
        self.unit_names.push(name.into());
        self.unit_free.push(Cycle::ZERO);
        self.unit_busy.push(Cycle::ZERO);
        UnitId(self.unit_names.len() - 1)
    }

    /// Unit name.
    pub fn unit_name(&self, u: UnitId) -> &str {
        &self.unit_names[u.0]
    }

    /// Schedules `label` on `unit` for `duration` cycles after all
    /// `deps` have finished (and after the unit is free). Zero-duration
    /// events are allowed (pure synchronisation points).
    pub fn schedule(
        &mut self,
        unit: UnitId,
        label: impl Into<String>,
        duration: Cycle,
        deps: &[EventId],
    ) -> EventId {
        self.schedule_at(unit, label, Cycle::ZERO, duration, deps)
    }

    /// Like [`Timeline::schedule`] with an additional earliest-start
    /// constraint.
    pub fn schedule_at(
        &mut self,
        unit: UnitId,
        label: impl Into<String>,
        earliest: Cycle,
        duration: Cycle,
        deps: &[EventId],
    ) -> EventId {
        let mut start = self.unit_free[unit.0].max(earliest);
        for d in deps {
            start = start.max(self.events[d.0].end);
        }
        let end = start + duration;
        self.unit_free[unit.0] = end;
        self.unit_busy[unit.0] += duration;
        self.events.push(Event {
            unit,
            label: label.into(),
            start,
            end,
            deps: deps.to_vec(),
        });
        EventId(self.events.len() - 1)
    }

    /// Borrow of one event.
    pub fn event(&self, e: EventId) -> &Event {
        &self.events[e.0]
    }

    /// End cycle of an event.
    pub fn end_of(&self, e: EventId) -> Cycle {
        self.events[e.0].end
    }

    /// Start cycle of an event.
    pub fn start_of(&self, e: EventId) -> Cycle {
        self.events[e.0].start
    }

    /// Total makespan: the latest event end (zero when empty).
    pub fn makespan(&self) -> Cycle {
        self.events
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(Cycle::ZERO)
    }

    /// Cycles during which `unit` was executing.
    pub fn busy(&self, unit: UnitId) -> Cycle {
        self.unit_busy[unit.0]
    }

    /// Busy fraction of `unit` over the makespan (0 when empty).
    pub fn utilization(&self, unit: UnitId) -> f64 {
        let total = self.makespan().get();
        if total == 0 {
            0.0
        } else {
            self.busy(unit).get() as f64 / total as f64
        }
    }

    /// All scheduled events in schedule order.
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    /// Extracts a critical path ending at the makespan: walks back from
    /// the last-finishing event through whichever constraint bound each
    /// event's start — a data dependency ending exactly at the start, or
    /// the unit's previous event (structural hazard). Returns event ids
    /// in execution order.
    pub fn critical_path(&self) -> Vec<EventId> {
        let Some(last) =
            (0..self.events.len()).max_by_key(|&i| (self.events[i].end, std::cmp::Reverse(i)))
        else {
            return Vec::new();
        };
        let mut path = vec![EventId(last)];
        let mut current = last;
        loop {
            let ev = &self.events[current];
            if ev.start == Cycle::ZERO {
                break;
            }
            // a dependency that pinned the start?
            let dep = ev
                .deps
                .iter()
                .find(|d| self.events[d.0].end == ev.start)
                .copied();
            // or the unit's predecessor finishing exactly at our start
            let pred = (0..current)
                .rev()
                .find(|&i| self.events[i].unit == ev.unit && self.events[i].end == ev.start)
                .map(EventId);
            match dep.or(pred) {
                Some(prev) => {
                    path.push(prev);
                    current = prev.0;
                }
                None => break, // earliest-start constraint: path ends here
            }
        }
        path.reverse();
        path
    }

    /// Renders a proportional text Gantt chart, one unit per line,
    /// `width` characters across the makespan.
    pub fn gantt(&self, width: usize) -> String {
        let total = self.makespan().get().max(1);
        let width = width.max(10);
        let name_w = self
            .unit_names
            .iter()
            .map(|n| n.len())
            .max()
            .unwrap_or(0)
            .max(4);
        let mut out = String::new();
        for (i, name) in self.unit_names.iter().enumerate() {
            let mut lane = vec![' '; width];
            for e in self.events.iter().filter(|e| e.unit.0 == i) {
                let a = (e.start.get() * width as u64 / total) as usize;
                let b = ((e.end.get() * width as u64).div_ceil(total) as usize).min(width);
                let ch = e.label.chars().next().unwrap_or('#');
                for slot in lane.iter_mut().take(b).skip(a) {
                    *slot = ch;
                }
            }
            out.push_str(&format!("{name:>name_w$} |"));
            out.extend(lane);
            out.push_str("|\n");
        }
        out.push_str(&format!(
            "{:>name_w$}  0 .. {} cycles\n",
            "",
            self.makespan().get()
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn independent_events_on_one_unit_serialize() {
        let mut tl = Timeline::new();
        let u = tl.add_unit("sa");
        let a = tl.schedule(u, "a", Cycle(10), &[]);
        let b = tl.schedule(u, "b", Cycle(5), &[]);
        assert_eq!(tl.end_of(a), Cycle(10));
        assert_eq!(tl.start_of(b), Cycle(10));
        assert_eq!(tl.end_of(b), Cycle(15));
        assert_eq!(tl.makespan(), Cycle(15));
    }

    #[test]
    fn dependencies_delay_start() {
        let mut tl = Timeline::new();
        let u1 = tl.add_unit("a");
        let u2 = tl.add_unit("b");
        let x = tl.schedule(u1, "x", Cycle(100), &[]);
        let y = tl.schedule(u2, "y", Cycle(10), &[x]);
        assert_eq!(tl.start_of(y), Cycle(100));
        assert_eq!(tl.makespan(), Cycle(110));
    }

    #[test]
    fn parallel_units_overlap() {
        let mut tl = Timeline::new();
        let sa = tl.add_unit("sa");
        let sm = tl.add_unit("softmax");
        let qk = tl.schedule(sa, "qk", Cycle(64), &[]);
        let smx = tl.schedule(sm, "sm", Cycle(128), &[qk]);
        let vw = tl.schedule(sa, "vw", Cycle(512), &[]);
        // softmax (ends 192) hides behind vw (ends 576)
        let pv = tl.schedule(sa, "pv", Cycle(64), &[smx, vw]);
        assert_eq!(tl.start_of(pv), Cycle(576));
        assert_eq!(tl.end_of(pv), Cycle(640));
    }

    #[test]
    fn earliest_start_constraint() {
        let mut tl = Timeline::new();
        let u = tl.add_unit("u");
        let e = tl.schedule_at(u, "late", Cycle(50), Cycle(10), &[]);
        assert_eq!(tl.start_of(e), Cycle(50));
    }

    #[test]
    fn utilization_accounts_idle_gaps() {
        let mut tl = Timeline::new();
        let a = tl.add_unit("a");
        let b = tl.add_unit("b");
        let x = tl.schedule(a, "x", Cycle(50), &[]);
        let _ = tl.schedule(b, "y", Cycle(50), &[x]);
        assert!((tl.utilization(a) - 0.5).abs() < 1e-9);
        assert!((tl.utilization(b) - 0.5).abs() < 1e-9);
        assert_eq!(tl.busy(a), Cycle(50));
    }

    #[test]
    fn zero_duration_sync_points() {
        let mut tl = Timeline::new();
        let u = tl.add_unit("u");
        let a = tl.schedule(u, "a", Cycle(10), &[]);
        let sync = tl.schedule(u, "sync", Cycle::ZERO, &[a]);
        assert_eq!(tl.end_of(sync), Cycle(10));
        assert_eq!(tl.makespan(), Cycle(10));
    }

    #[test]
    fn critical_path_follows_dependencies() {
        let mut tl = Timeline::new();
        let a = tl.add_unit("a");
        let b = tl.add_unit("b");
        let x = tl.schedule(a, "x", Cycle(10), &[]);
        let _y = tl.schedule(b, "y", Cycle(3), &[]); // off-path
        let z = tl.schedule(b, "z", Cycle(20), &[x]);
        let w = tl.schedule(a, "w", Cycle(5), &[z]);
        let path = tl.critical_path();
        assert_eq!(path, vec![x, z, w]);
    }

    #[test]
    fn critical_path_follows_structural_hazards() {
        let mut tl = Timeline::new();
        let u = tl.add_unit("u");
        let a = tl.schedule(u, "a", Cycle(10), &[]);
        let b = tl.schedule(u, "b", Cycle(10), &[]); // waits on the unit
        let path = tl.critical_path();
        assert_eq!(path, vec![a, b]);
    }

    #[test]
    fn empty_timeline_has_empty_path() {
        assert!(Timeline::new().critical_path().is_empty());
    }

    #[test]
    fn gantt_renders_all_units() {
        let mut tl = Timeline::new();
        let a = tl.add_unit("alpha");
        let b = tl.add_unit("beta");
        let x = tl.schedule(a, "x", Cycle(10), &[]);
        let _ = tl.schedule(b, "y", Cycle(10), &[x]);
        let g = tl.gantt(40);
        assert!(g.contains("alpha"));
        assert!(g.contains("beta"));
        assert!(g.contains("20 cycles"));
    }

    #[test]
    fn empty_timeline_is_sane() {
        let tl = Timeline::new();
        assert_eq!(tl.makespan(), Cycle::ZERO);
    }
}
