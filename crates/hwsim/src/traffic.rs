//! External-memory traffic accounting: who moved how many bytes, and
//! how long that takes at a given link bandwidth.

use serde::{Deserialize, Serialize};

use crate::cycles::Cycle;

/// Direction of a transfer relative to the accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Direction {
    /// Host → device (weights, input activations).
    In,
    /// Device → host (results).
    Out,
}

/// One logical transfer.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Transfer {
    /// What moved (e.g. `"mha weights"`, `"input activations"`).
    pub label: String,
    /// Direction.
    pub direction: Direction,
    /// Payload bytes.
    pub bytes: u64,
}

/// A traffic ledger for one workload phase.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TrafficLedger {
    transfers: Vec<Transfer>,
}

impl TrafficLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a transfer.
    pub fn record(&mut self, label: impl Into<String>, direction: Direction, bytes: u64) {
        self.transfers.push(Transfer {
            label: label.into(),
            direction,
            bytes,
        });
    }

    /// All transfers in record order.
    pub fn transfers(&self) -> &[Transfer] {
        &self.transfers
    }

    /// Total bytes in one direction.
    pub fn bytes(&self, direction: Direction) -> u64 {
        self.transfers
            .iter()
            .filter(|t| t.direction == direction)
            .map(|t| t.bytes)
            .sum()
    }

    /// Total bytes both ways.
    pub fn total_bytes(&self) -> u64 {
        self.transfers.iter().map(|t| t.bytes).sum()
    }

    /// Cycles to move everything over a half-duplex link of
    /// `bytes_per_cycle`.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle == 0`.
    pub fn link_cycles(&self, bytes_per_cycle: u64) -> Cycle {
        assert!(bytes_per_cycle > 0, "bandwidth must be positive");
        Cycle(self.total_bytes().div_ceil(bytes_per_cycle))
    }

    /// Arithmetic intensity of a workload against this ledger:
    /// MACs per byte moved. The classic roofline x-axis.
    pub fn arithmetic_intensity(&self, macs: u64) -> f64 {
        macs as f64 / self.total_bytes().max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ledger() -> TrafficLedger {
        let mut t = TrafficLedger::new();
        t.record("weights", Direction::In, 1_048_576);
        t.record("activations in", Direction::In, 32_768);
        t.record("activations out", Direction::Out, 32_768);
        t
    }

    #[test]
    fn totals_by_direction() {
        let t = ledger();
        assert_eq!(t.bytes(Direction::In), 1_048_576 + 32_768);
        assert_eq!(t.bytes(Direction::Out), 32_768);
        assert_eq!(t.total_bytes(), 1_048_576 + 2 * 32_768);
        assert_eq!(t.transfers().len(), 3);
    }

    #[test]
    fn link_cycles_round_up() {
        let t = ledger();
        let c = t.link_cycles(64);
        assert_eq!(c.get(), t.total_bytes().div_ceil(64));
        assert!(t.link_cycles(1).get() > c.get());
    }

    #[test]
    fn arithmetic_intensity_is_macs_per_byte() {
        let t = ledger();
        let ai = t.arithmetic_intensity(71_303_168);
        assert!((ai - 71_303_168.0 / t.total_bytes() as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bandwidth_rejected() {
        let _ = ledger().link_cycles(0);
    }

    #[test]
    fn empty_ledger_is_safe() {
        let t = TrafficLedger::new();
        assert_eq!(t.total_bytes(), 0);
        assert_eq!(t.link_cycles(64).get(), 0);
        assert_eq!(t.arithmetic_intensity(100), 100.0);
    }
}
