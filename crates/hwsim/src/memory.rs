//! On-chip memory modelling: BRAM36 block estimation for a given
//! depth × width, following Xilinx UltraScale+ BRAM packing rules
//! (36 Kbit per block, maximum port width 72 bits at depth 512).

use serde::{Deserialize, Serialize};

/// Bits per BRAM36 block.
pub const BRAM36_BITS: u64 = 36 * 1024;

/// Maximum single-port width of a BRAM36 (72 bits at depth 512).
pub const BRAM36_MAX_WIDTH: u64 = 72;

/// A synchronous on-chip memory specification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemorySpec {
    /// Number of addressable words.
    pub depth: u64,
    /// Bits per word (the port width the datapath needs every cycle).
    pub width_bits: u64,
}

impl MemorySpec {
    /// Creates a spec.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(depth: u64, width_bits: u64) -> Self {
        assert!(
            depth > 0 && width_bits > 0,
            "memory dimensions must be positive"
        );
        Self { depth, width_bits }
    }

    /// Total bits stored.
    pub fn bits(&self) -> u64 {
        self.depth * self.width_bits
    }

    /// BRAM36 blocks required, honouring both capacity and port width:
    /// the width forces `ceil(width / 72)` parallel blocks; each column
    /// of blocks then provides `36Kbit / min(width_per_block, 72)` words
    /// of depth.
    pub fn bram36_blocks(&self) -> f64 {
        let columns = self.width_bits.div_ceil(BRAM36_MAX_WIDTH);
        let width_per_column = self.width_bits.div_ceil(columns);
        // depth available per column at this width
        let depth_per_block = BRAM36_BITS / width_per_column.next_power_of_two().max(1);
        // Xilinx supports width 1,2,4,9,18,36,72 -> depth 32K..512; model
        // with the power-of-two envelope and the 512-word floor at w=72.
        let depth_per_block = depth_per_block.clamp(512, 32 * 1024);
        let rows = self.depth.div_ceil(depth_per_block);
        // BRAM18 granularity: a memory using at most half a block counts 0.5
        let blocks = (columns * rows) as f64;
        if blocks == 1.0 && self.bits() * 2 <= BRAM36_BITS {
            0.5
        } else {
            blocks
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_memory_uses_half_block() {
        // 512 x 16 bits = 8 Kbit -> one BRAM18 = 0.5 BRAM36
        assert_eq!(MemorySpec::new(512, 16).bram36_blocks(), 0.5);
    }

    #[test]
    fn capacity_bound_dominates_for_deep_memories() {
        // 64K x 8 bits = 512 Kbit -> >= 15 blocks by capacity
        let m = MemorySpec::new(64 * 1024, 8);
        assert!(m.bram36_blocks() >= 14.0, "{}", m.bram36_blocks());
    }

    #[test]
    fn width_bound_dominates_for_wide_memories() {
        // 512 x 512 bits: width forces ceil(512/72) = 8 columns
        let m = MemorySpec::new(512, 512);
        assert!(m.bram36_blocks() >= 8.0, "{}", m.bram36_blocks());
    }

    #[test]
    fn weight_memory_scale_check() {
        // One Transformer-base layer of INT8 weights:
        // 4 * 512 * 512 + 2 * 512 * 2048 = 3.1 MB = 26.2 Mbit
        // needs at least 26.2Mbit / 36Kbit ~= 713 blocks purely by
        // capacity; banked at width 512 it lands in the same order as the
        // paper's 456 blocks for its weight buffer.
        let total_bits: u64 = (4 * 512 * 512 + 2 * 512 * 2048) * 8;
        let by_capacity = total_bits as f64 / BRAM36_BITS as f64;
        assert!(by_capacity > 500.0 && by_capacity < 800.0, "{by_capacity}");
    }

    #[test]
    fn bits_reported() {
        assert_eq!(MemorySpec::new(1024, 8).bits(), 8192);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_depth_rejected() {
        let _ = MemorySpec::new(0, 8);
    }
}
