//! Cycle counts and clock frequency.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A number of clock cycles (or an absolute cycle timestamp).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Cycle(pub u64);

impl Cycle {
    /// Zero cycles.
    pub const ZERO: Cycle = Cycle(0);

    /// The raw count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycle {
    type Output = Cycle;
    fn add(self, rhs: Cycle) -> Cycle {
        Cycle(self.0 + rhs.0)
    }
}

impl AddAssign for Cycle {
    fn add_assign(&mut self, rhs: Cycle) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycle {
    type Output = Cycle;
    fn sub(self, rhs: Cycle) -> Cycle {
        Cycle(self.0.checked_sub(rhs.0).expect("cycle underflow"))
    }
}

impl Mul<u64> for Cycle {
    type Output = Cycle;
    fn mul(self, rhs: u64) -> Cycle {
        Cycle(self.0 * rhs)
    }
}

impl Sum for Cycle {
    fn sum<I: Iterator<Item = Cycle>>(iter: I) -> Cycle {
        Cycle(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

/// A clock frequency, for converting cycle counts into wall time.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Frequency {
    mhz: f64,
}

impl Frequency {
    /// Creates a frequency in MHz.
    ///
    /// # Panics
    ///
    /// Panics if `mhz` is not finite and positive.
    pub fn mhz(mhz: f64) -> Self {
        assert!(
            mhz.is_finite() && mhz > 0.0,
            "frequency must be positive, got {mhz}"
        );
        Self { mhz }
    }

    /// The paper's operating point: 200 MHz on the VU13P.
    pub fn paper_clock() -> Self {
        Self::mhz(200.0)
    }

    /// Frequency in MHz.
    pub fn as_mhz(self) -> f64 {
        self.mhz
    }

    /// Converts a cycle count into microseconds.
    pub fn cycles_to_us(self, c: Cycle) -> f64 {
        c.0 as f64 / self.mhz
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_works() {
        assert_eq!(Cycle(3) + Cycle(4), Cycle(7));
        assert_eq!(Cycle(10) - Cycle(4), Cycle(6));
        assert_eq!(Cycle(3) * 4, Cycle(12));
        assert_eq!(Cycle(10).saturating_sub(Cycle(20)), Cycle::ZERO);
        let total: Cycle = [Cycle(1), Cycle(2), Cycle(3)].into_iter().sum();
        assert_eq!(total, Cycle(6));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn checked_sub_panics_on_underflow() {
        let _ = Cycle(1) - Cycle(2);
    }

    #[test]
    fn paper_latency_conversion() {
        // 21,344 cycles @ 200 MHz = 106.7 us (Table III, MHA row)
        let f = Frequency::paper_clock();
        let us = f.cycles_to_us(Cycle(21_344));
        assert!((us - 106.72).abs() < 0.01, "{us}");
        // 42,099 cycles = 210.5 us (FFN row)
        let us = f.cycles_to_us(Cycle(42_099));
        assert!((us - 210.495).abs() < 0.01, "{us}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_frequency_rejected() {
        let _ = Frequency::mhz(0.0);
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Cycle(5).to_string(), "5 cycles");
    }
}
