//! FPGA resource vectors and device capacities.

use std::iter::Sum;
use std::ops::{Add, Mul};

use serde::{Deserialize, Serialize};

/// A vector of FPGA resources: LUTs, CLB registers (flip-flops), BRAM36
/// blocks (fractional — Xilinx reports half blocks, e.g. the paper's
/// `27.5`), and DSP48 slices.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Resources {
    /// Lookup tables.
    pub lut: f64,
    /// CLB registers (flip-flops).
    pub ff: f64,
    /// BRAM36 blocks (may be fractional: a BRAM18 counts 0.5).
    pub bram: f64,
    /// DSP slices.
    pub dsp: f64,
}

impl Resources {
    /// The zero vector.
    pub const ZERO: Resources = Resources {
        lut: 0.0,
        ff: 0.0,
        bram: 0.0,
        dsp: 0.0,
    };

    /// Creates a resource vector.
    pub fn new(lut: f64, ff: f64, bram: f64, dsp: f64) -> Self {
        Self { lut, ff, bram, dsp }
    }
}

impl Add for Resources {
    type Output = Resources;
    fn add(self, r: Resources) -> Resources {
        Resources {
            lut: self.lut + r.lut,
            ff: self.ff + r.ff,
            bram: self.bram + r.bram,
            dsp: self.dsp + r.dsp,
        }
    }
}

impl Mul<f64> for Resources {
    type Output = Resources;
    fn mul(self, k: f64) -> Resources {
        Resources {
            lut: self.lut * k,
            ff: self.ff * k,
            bram: self.bram * k,
            dsp: self.dsp * k,
        }
    }
}

impl Sum for Resources {
    fn sum<I: Iterator<Item = Resources>>(iter: I) -> Resources {
        iter.fold(Resources::ZERO, |a, b| a + b)
    }
}

/// An FPGA device's available resources.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Part name.
    pub name: String,
    /// Available resources (the "Available" row of Table II).
    pub available: Resources,
}

impl Device {
    /// The paper's device: Xilinx `xcvu13p-fhga2104-3-e` (Virtex
    /// UltraScale+ VU13P) — 1,728,000 LUTs, 3,456,000 CLB registers,
    /// 2,688 BRAM36, 12,288 DSPs (Table II "Available" row).
    ///
    /// # Example
    ///
    /// ```
    /// let d = hwsim::resources::Device::vu13p();
    /// assert_eq!(d.available.lut, 1_728_000.0);
    /// ```
    pub fn vu13p() -> Self {
        Self {
            name: "xcvu13p-fhga2104-3-e".into(),
            available: Resources::new(1_728_000.0, 3_456_000.0, 2_688.0, 12_288.0),
        }
    }

    /// Utilization percentages of `used` on this device, in Table-II
    /// column order `(LUT, FF, BRAM, DSP)`.
    pub fn utilization_pct(&self, used: &Resources) -> (f64, f64, f64, f64) {
        (
            100.0 * used.lut / self.available.lut,
            100.0 * used.ff / self.available.ff,
            100.0 * used.bram / self.available.bram,
            100.0 * used.dsp / self.available.dsp,
        )
    }

    /// Whether a design fits on this device.
    pub fn fits(&self, used: &Resources) -> bool {
        used.lut <= self.available.lut
            && used.ff <= self.available.ff
            && used.bram <= self.available.bram
            && used.dsp <= self.available.dsp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_arithmetic() {
        let a = Resources::new(1.0, 2.0, 3.0, 4.0);
        let b = Resources::new(10.0, 20.0, 30.0, 40.0);
        let s = a + b;
        assert_eq!(s, Resources::new(11.0, 22.0, 33.0, 44.0));
        assert_eq!(a * 2.0, Resources::new(2.0, 4.0, 6.0, 8.0));
        let total: Resources = [a, b].into_iter().sum();
        assert_eq!(total, s);
    }

    #[test]
    fn vu13p_matches_table2_available_row() {
        let d = Device::vu13p();
        assert_eq!(d.available.lut, 1_728_000.0);
        assert_eq!(d.available.bram, 2_688.0);
        assert_eq!(d.available.dsp, 12_288.0);
    }

    #[test]
    fn paper_top_fits_on_vu13p() {
        // Table II "Top" row
        let top = Resources::new(471_563.0, 217_859.0, 498.0, 129.0);
        let d = Device::vu13p();
        assert!(d.fits(&top));
        let (lut_pct, _, bram_pct, dsp_pct) = d.utilization_pct(&top);
        assert!((lut_pct - 27.3).abs() < 0.2, "{lut_pct}");
        assert!((bram_pct - 18.5).abs() < 0.2, "{bram_pct}");
        assert!(dsp_pct < 1.5, "{dsp_pct}");
    }

    #[test]
    fn fits_rejects_oversized() {
        let d = Device::vu13p();
        let huge = Resources::new(2e6, 0.0, 0.0, 0.0);
        assert!(!d.fits(&huge));
    }
}
