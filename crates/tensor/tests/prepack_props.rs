//! Property tests for the weight-stationary path: prepacked GEMM/GEMV
//! entry points, the persistent-pool determinism guarantee, and the
//! SIMD-vs-scalar kernel identity.
//!
//! The invariant under test everywhere is **bit-identity**: packing a
//! weight matrix once ([`tensor::prepack::PackedMat`]), changing the
//! worker count, or swapping the scalar kernels for the AVX2
//! microkernels must never change a single output bit relative to the
//! per-call-packed kernels and the naive references.
//!
//! The override hooks ([`par::set_thread_override`],
//! [`simd::set_simd_override`]) are process-global; the tests that flip
//! them restore the ambient state before returning, and flipping them
//! concurrently with the other tests in this binary is harmless
//! *because* of the very bit-identity they assert.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tensor::prepack::{self, PackedI8, PackedMat};
use tensor::{gemm, init, par, simd, Mat};

fn bits(m: &Mat<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn check_prepacked_f32(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform(&mut rng, m, k, -2.0, 2.0);
    let b = init::uniform(&mut rng, k, n, -2.0, 2.0);
    let packed = PackedMat::from_f32(&b);
    let want = gemm::matmul_ref(&a, &b).unwrap();
    assert_eq!(
        bits(&gemm::matmul(&a, &b).unwrap()),
        bits(&want),
        "matmul ({m},{k},{n})"
    );
    assert_eq!(
        bits(&prepack::matmul_prepacked(&a, &packed).unwrap()),
        bits(&want),
        "prepacked ({m},{k},{n})"
    );
    for t in [1usize, 2, 3, 8] {
        let got = prepack::matmul_prepacked_with_threads(&a, &packed, t).unwrap();
        assert_eq!(bits(&got), bits(&want), "prepacked ({m},{k},{n}) t={t}");
    }
}

fn check_prepacked_i8(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform_i8(&mut rng, m, k);
    let b = init::uniform_i8(&mut rng, k, n);
    let packed = PackedI8::from_i8(&b);
    let want = gemm::matmul_i8_ref(&a, &b).unwrap();
    assert_eq!(
        gemm::matmul_i8(&a, &b).unwrap(),
        want,
        "matmul_i8 ({m},{k},{n})"
    );
    assert_eq!(
        prepack::matmul_i8_prepacked(&a, &packed).unwrap(),
        want,
        "prepacked_i8 ({m},{k},{n})"
    );
    for t in [1usize, 2, 3, 8] {
        let got = prepack::matmul_i8_prepacked_with_threads(&a, &packed, t).unwrap();
        assert_eq!(got, want, "prepacked_i8 ({m},{k},{n}) t={t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn prepacked_f32_bit_identical((m, k, n) in (1usize..24, 1usize..48, 1usize..40), seed in 0u64..1000) {
        check_prepacked_f32(m, k, n, seed);
    }

    #[test]
    fn prepacked_i8_bit_identical((m, k, n) in (1usize..24, 1usize..48, 1usize..40), seed in 0u64..1000) {
        check_prepacked_i8(m, k, n, seed);
    }

    #[test]
    fn prepacked_gemv_bit_identical((k, n) in (1usize..96, 1usize..80), seed in 0u64..1000) {
        // The m = 1 decode shape takes the dedicated GEMV kernel.
        check_prepacked_i8(1, k, n, seed);
        check_prepacked_f32(1, k, n, seed);
    }
}

/// Shapes that straddle the microkernel boundaries: NR = 16 lanes,
/// MR = 4 rows, and the GEMV tile-pair loop (odd/even tile counts).
#[test]
fn prepacked_pinned_boundary_shapes() {
    let shapes = [
        (1usize, 1usize, 1usize),
        (1, 512, 64),   // batch-1 decode projection
        (1, 64, 512),   // wide GEMV, even tile count
        (1, 64, 48),    // odd tile count with full last tile
        (1, 64, 17),    // two tiles, ragged last
        (1, 64, 16),    // exactly one tile
        (1, 64, 15),    // single ragged tile
        (4, 512, 64),   // one full MR quad
        (5, 37, 33),    // quad + remainder row, ragged tiles
        (16, 512, 512), // issue's decode-batch upper shape
    ];
    for (i, &(m, k, n)) in shapes.iter().enumerate() {
        let seed = 100 + i as u64;
        check_prepacked_i8(m, k, n, seed);
        check_prepacked_f32(m, k, n, seed);
    }
}

/// The same workloads, run with the pool pinned to 1, 2 and 7 workers
/// through the `ACCEL_THREADS` override hook, must agree bit for bit —
/// the issue's pool-determinism requirement.
#[test]
fn pool_is_deterministic_across_thread_counts() {
    let mut rng = StdRng::seed_from_u64(42);
    // Big enough to clear SERIAL_CUTOFF_MACS so auto-threaded entry
    // points actually hit the pool.
    let a = init::uniform(&mut rng, 96, 128, -2.0, 2.0);
    let b = init::uniform(&mut rng, 128, 80, -2.0, 2.0);
    let ai = init::uniform_i8(&mut rng, 96, 128);
    let bi = init::uniform_i8(&mut rng, 128, 80);
    let packed_f = PackedMat::from_f32(&b);
    let packed_i = PackedI8::from_i8(&bi);
    let items: Vec<u64> = (0..100).collect();

    let run = || {
        (
            bits(&gemm::matmul(&a, &b).unwrap()),
            gemm::matmul_i8(&ai, &bi).unwrap(),
            bits(&prepack::matmul_prepacked(&a, &packed_f).unwrap()),
            prepack::matmul_i8_prepacked(&ai, &packed_i).unwrap(),
            par::par_map(&items, |x| x.wrapping_mul(0x9e37_79b9).rotate_left(13)),
        )
    };

    par::set_thread_override(Some(1));
    let baseline = run();
    for t in [2usize, 7] {
        par::set_thread_override(Some(t));
        let got = run();
        assert_eq!(got.0, baseline.0, "f32 GEMM diverged at {t} threads");
        assert_eq!(got.1, baseline.1, "i8 GEMM diverged at {t} threads");
        assert_eq!(got.2, baseline.2, "prepacked f32 diverged at {t} threads");
        assert_eq!(got.3, baseline.3, "prepacked i8 diverged at {t} threads");
        assert_eq!(got.4, baseline.4, "par_map diverged at {t} threads");
    }
    par::set_thread_override(None);
}

/// Forcing the scalar kernels and forcing the SIMD kernels (where the
/// hardware has them) must produce bit-identical INT8 results, GEMM and
/// GEMV alike.
#[test]
fn simd_and_scalar_kernels_agree() {
    let mut rng = StdRng::seed_from_u64(77);
    for &(m, k, n) in &[
        (1usize, 512usize, 512usize),
        (1, 33, 17),
        (8, 512, 64),
        (13, 96, 130),
    ] {
        let a = init::uniform_i8(&mut rng, m, k);
        let b = init::uniform_i8(&mut rng, k, n);
        let packed = PackedI8::from_i8(&b);

        simd::set_simd_override(Some(false));
        let scalar_plain = gemm::matmul_i8(&a, &b).unwrap();
        let scalar_packed = prepack::matmul_i8_prepacked(&a, &packed).unwrap();

        simd::set_simd_override(Some(true));
        let simd_plain = gemm::matmul_i8(&a, &b).unwrap();
        let simd_packed = prepack::matmul_i8_prepacked(&a, &packed).unwrap();

        simd::set_simd_override(None);
        let want = gemm::matmul_i8_ref(&a, &b).unwrap();
        assert_eq!(scalar_plain, want, "scalar ({m},{k},{n})");
        assert_eq!(scalar_packed, want, "scalar prepacked ({m},{k},{n})");
        assert_eq!(simd_plain, want, "simd ({m},{k},{n})");
        assert_eq!(simd_packed, want, "simd prepacked ({m},{k},{n})");
    }
}
