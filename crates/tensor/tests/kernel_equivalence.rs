//! Randomized equivalence tests for the blocked/parallel GEMM kernels.
//!
//! Every optimised kernel must be **bit-identical** to its naive
//! reference (`*_ref`) — exact for the integer kernels, and equal down to
//! the `f32` bit pattern for the float kernels, because blocking and
//! row-band parallelism never reorder a single element's accumulation.
//! Shapes deliberately cross the internal block sizes (`BK = 64`,
//! `BN = 128`) and the serial cutoff, and degenerate dims (`m = 1`,
//! `k = 1`, `n = 1`) are pinned explicitly.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use tensor::{gemm, init, Mat};

/// Thread counts exercised for every shape: serial, a couple of
/// odd/even splits, and more threads than rows.
const THREADS: [usize; 4] = [1, 2, 3, 8];

fn bits(m: &Mat<f32>) -> Vec<u32> {
    m.as_slice().iter().map(|v| v.to_bits()).collect()
}

fn check_f32(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform(&mut rng, m, k, -2.0, 2.0);
    let b = init::uniform(&mut rng, k, n, -2.0, 2.0);
    let want = gemm::matmul_ref(&a, &b).unwrap();
    assert_eq!(
        bits(&gemm::matmul(&a, &b).unwrap()),
        bits(&want),
        "matmul ({m},{k},{n})"
    );
    for t in THREADS {
        let got = gemm::matmul_with_threads(&a, &b, t).unwrap();
        assert_eq!(bits(&got), bits(&want), "matmul ({m},{k},{n}) t={t}");
    }

    let bt = init::uniform(&mut rng, n, k, -2.0, 2.0);
    let want_nt = gemm::matmul_nt_ref(&a, &bt).unwrap();
    assert_eq!(
        bits(&gemm::matmul_nt(&a, &bt).unwrap()),
        bits(&want_nt),
        "matmul_nt ({m},{k},{n})"
    );
    for t in THREADS {
        let got = gemm::matmul_nt_with_threads(&a, &bt, t).unwrap();
        assert_eq!(bits(&got), bits(&want_nt), "matmul_nt ({m},{k},{n}) t={t}");
    }
}

fn check_i8(m: usize, k: usize, n: usize, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    let a = init::uniform_i8(&mut rng, m, k);
    let b = init::uniform_i8(&mut rng, k, n);
    let want = gemm::matmul_i8_ref(&a, &b).unwrap();
    assert_eq!(
        gemm::matmul_i8(&a, &b).unwrap(),
        want,
        "matmul_i8 ({m},{k},{n})"
    );
    assert_eq!(
        gemm::matmul_i8_blocked(&a, &b).unwrap(),
        want,
        "blocked ({m},{k},{n})"
    );
    for t in THREADS {
        let got = gemm::matmul_i8_with_threads(&a, &b, t).unwrap();
        assert_eq!(got, want, "matmul_i8 ({m},{k},{n}) t={t}");
    }

    let bt = init::uniform_i8(&mut rng, n, k);
    let want_nt = gemm::matmul_i8_nt_ref(&a, &bt).unwrap();
    assert_eq!(
        gemm::matmul_i8_nt(&a, &bt).unwrap(),
        want_nt,
        "matmul_i8_nt ({m},{k},{n})"
    );
    for t in THREADS {
        let got = gemm::matmul_i8_nt_with_threads(&a, &bt, t).unwrap();
        assert_eq!(got, want_nt, "matmul_i8_nt ({m},{k},{n}) t={t}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random shapes crossing the BK/BN block boundaries.
    #[test]
    fn random_shapes_f32_bit_identical(
        m in 1usize..40,
        k in 1usize..150,
        n in 1usize..150,
        seed in 0u64..1_000_000,
    ) {
        check_f32(m, k, n, seed);
    }

    /// Random shapes crossing the BK/BN block boundaries (integer).
    #[test]
    fn random_shapes_i8_bit_identical(
        m in 1usize..40,
        k in 1usize..150,
        n in 1usize..150,
        seed in 0u64..1_000_000,
    ) {
        check_i8(m, k, n, seed);
    }
}

#[test]
fn degenerate_dims_bit_identical() {
    // Single row / single reduction step / single column, plus
    // non-multiples of the 64/128 block sizes.
    for &(m, k, n) in &[
        (1usize, 1usize, 1usize),
        (1, 512, 64),
        (64, 1, 64),
        (64, 512, 1),
        (1, 1, 200),
        (3, 65, 129),
        (5, 127, 131),
        (2, 66, 258),
    ] {
        check_f32(m, k, n, 0xF00D ^ (m * 31 + k * 7 + n) as u64);
        check_i8(m, k, n, 0xBEEF ^ (m * 31 + k * 7 + n) as u64);
    }
}

#[test]
fn cutoff_boundary_bit_identical() {
    // Shapes straddling SERIAL_CUTOFF_MACS = 2^16: the auto path picks
    // serial just below and parallel just above; both must match the
    // reference (and each other) bit for bit.
    let k = 64;
    let n = 64;
    let rows_at_cutoff = gemm::SERIAL_CUTOFF_MACS / (k * n); // == 16
    for m in [rows_at_cutoff - 1, rows_at_cutoff, rows_at_cutoff + 1] {
        check_f32(m, k, n, 99);
        check_i8(m, k, n, 101);
    }
}

#[test]
fn env_thread_override_does_not_change_results() {
    // `matmul*` reads ACCEL_THREADS via par::threads(); whatever it
    // returns, results must match the single-thread configuration.
    let mut rng = StdRng::seed_from_u64(7);
    let a = init::uniform(&mut rng, 33, 140, -1.0, 1.0);
    let b = init::uniform(&mut rng, 140, 70, -1.0, 1.0);
    let auto = gemm::matmul(&a, &b).unwrap();
    let serial = gemm::matmul_with_threads(&a, &b, 1).unwrap();
    assert_eq!(bits(&auto), bits(&serial));
    assert!(tensor::par::threads() >= 1);
}
