//! Property tests for the paged KV pool's free-list allocator and
//! copy-on-write page sharing.
//!
//! The invariants under test: across arbitrary interleavings of
//! per-sequence appends, chunk rollbacks (truncation across page
//! boundaries), full releases, and **forks** (refcounted page sharing),
//!
//! * the pool never **leaks** (pages in use always equals the number of
//!   *distinct* pages reachable from live sequences, every page's
//!   refcount equals the number of live sequences holding it, and
//!   releasing everything returns the pool to zero resident bytes),
//! * the pool never **double-frees**, cross-links, or lets a write leak
//!   through a fork (every sequence's rows read back bit-identical to a
//!   flat no-sharing shadow maintained in plain `Vec`s, so a page
//!   recycled while still referenced — or mutated while shared — would
//!   be caught immediately),
//! * `gather_panel` stays bit-identical to slicing the flat shadow.

use std::collections::HashMap;

use proptest::prelude::*;
use tensor::kvpool::{KvPool, KvSeq};

/// One step of the random schedule, applied to a sequence index.
#[derive(Debug, Clone)]
enum Op {
    /// Append `n` rows (1..=9) to sequence `seq`.
    Push { seq: usize, n: usize },
    /// Roll back up to `n` rows (chunk retry / speculative rollback).
    Rollback { seq: usize, n: usize },
    /// Retire the sequence, dropping every page reference it holds.
    Release { seq: usize },
    /// Replace sequence `dst` with a fork of `src` (prefix-cache hit).
    Fork { src: usize, dst: usize },
}

/// 4:2:1:2 weighted Push/Rollback/Release/Fork (the vendored proptest
/// has no `prop_oneof`, so a kind index is mapped by hand). Fork picks
/// a destination distinct from the source.
fn op_strategy(n_seqs: usize) -> impl Strategy<Value = Op> {
    (0usize..9, 0..n_seqs, 1usize..=9).prop_map(move |(kind, seq, n)| match kind {
        0..=3 => Op::Push { seq, n },
        4..=5 => Op::Rollback { seq, n },
        6 => Op::Release { seq },
        _ => Op::Fork {
            src: seq,
            dst: (seq + 1 + (n % (n_seqs - 1))) % n_seqs,
        },
    })
}

/// A deterministic, content-unique row: byte `c` of stamp `stamp` of
/// sequence `s` — any page aliasing between sequences (or a write
/// leaking through a shared page) shows up as a byte mismatch against
/// the shadow. The stamp is globally monotone so rows re-pushed after a
/// rollback, and rows pushed onto a fork, always carry fresh content.
fn row_bytes(seq: usize, stamp: usize, cols: usize) -> Vec<i8> {
    (0..cols)
        .map(|c| ((seq * 131 + stamp * 17 + c * 3) % 251) as u8 as i8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_never_leak_or_alias(
        page_rows in 1usize..=7,
        cols in 1usize..=6,
        ops in proptest::collection::vec(op_strategy(4), 1..120),
    ) {
        let n_seqs = 4;
        let mut pool: KvPool<i8> = KvPool::new(page_rows, cols);
        let mut seqs: Vec<KvSeq> = (0..n_seqs).map(|_| KvSeq::new()).collect();
        // Flat no-sharing shadow: the rows each sequence logically
        // holds. Forks deep-copy the shadow, so any write that leaks
        // through a shared page diverges from it instantly.
        let mut shadow: Vec<Vec<Vec<i8>>> = vec![Vec::new(); n_seqs];
        let mut stamp = 0usize;

        for op in &ops {
            match *op {
                Op::Push { seq, n } => {
                    for _ in 0..n {
                        let row = row_bytes(seq, stamp, cols);
                        stamp += 1;
                        pool.push_row(&mut seqs[seq], &row);
                        shadow[seq].push(row);
                    }
                }
                Op::Rollback { seq, n } => {
                    let keep = shadow[seq].len().saturating_sub(n);
                    pool.truncate(&mut seqs[seq], keep);
                    shadow[seq].truncate(keep);
                }
                Op::Release { seq } => {
                    pool.release(&mut seqs[seq]);
                    shadow[seq].clear();
                }
                Op::Fork { src, dst } => {
                    let mut old = std::mem::take(&mut seqs[dst]);
                    pool.release(&mut old);
                    seqs[dst] = pool.fork(&seqs[src]);
                    shadow[dst] = shadow[src].clone();
                }
            }

            // No leak / no double-free: the pool's notion of "in use"
            // must equal the *distinct* pages reachable from live
            // sequences, every page's refcount must equal the number of
            // live sequences holding it, and every sequence holds
            // exactly the pages its row count needs.
            let mut holders: HashMap<usize, u32> = HashMap::new();
            for s in &seqs {
                for &p in s.page_ids() {
                    *holders.entry(p).or_insert(0) += 1;
                }
            }
            prop_assert_eq!(pool.pages_in_use(), holders.len());
            for (&p, &n_holders) in &holders {
                prop_assert_eq!(pool.page_ref(p), n_holders, "page {} refcount", p);
            }
            for (s, sh) in seqs.iter().zip(&shadow) {
                prop_assert_eq!(s.rows(), sh.len());
                prop_assert_eq!(s.pages_held(), sh.len().div_ceil(page_rows));
            }

            // No aliasing, no COW leak: every live row reads back
            // bit-identical to the flat shadow (a recycled-but-still-
            // referenced page, or a sibling's write landing in a shared
            // page, would hold foreign bytes).
            for (si, (s, sh)) in seqs.iter().zip(&shadow).enumerate() {
                for (r, want) in sh.iter().enumerate() {
                    prop_assert_eq!(pool.row(s, r), &want[..], "seq {} row {}", si, r);
                }
            }
        }

        // gather_panel over the full width matches flat slicing.
        for (s, sh) in seqs.iter().zip(&shadow) {
            if sh.is_empty() {
                continue;
            }
            let panel = pool.gather_panel(s, 0, cols);
            for (r, want) in sh.iter().enumerate() {
                prop_assert_eq!(panel.row(r), &want[..]);
            }
        }

        // Releasing everything returns the pool to zero resident bytes
        // — the free list got every page back, shared or not.
        for s in &mut seqs {
            pool.release(s);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.bytes_in_use(), 0);
    }

    #[test]
    fn recycled_pages_serve_new_sequences_without_growth(
        page_rows in 1usize..=5,
        rows in 1usize..=40,
    ) {
        // Fill one sequence, release it, fill another of the same size:
        // the second must be served entirely from recycled pages.
        let mut pool: KvPool<i8> = KvPool::new(page_rows, 3);
        let mut a = KvSeq::new();
        for r in 0..rows {
            pool.push_row(&mut a, &row_bytes(0, r, 3));
        }
        let allocated = pool.bytes_allocated();
        pool.release(&mut a);
        let mut b = KvSeq::new();
        for r in 0..rows {
            pool.push_row(&mut b, &row_bytes(1, r, 3));
        }
        prop_assert_eq!(pool.bytes_allocated(), allocated);
        for r in 0..rows {
            prop_assert_eq!(pool.row(&b, r), &row_bytes(1, r, 3)[..]);
        }
    }

    #[test]
    fn fork_chain_shares_all_full_pages(
        page_rows in 1usize..=6,
        rows in 1usize..=48,
        forks in 1usize..=6,
    ) {
        // N forks of one page-aligned-truncated sequence must cost zero
        // extra full pages: bytes_in_use counts each shared page once.
        let mut pool: KvPool<i8> = KvPool::new(page_rows, 3);
        let mut base = KvSeq::new();
        for r in 0..rows {
            pool.push_row(&mut base, &row_bytes(0, r, 3));
        }
        let aligned = (rows / page_rows) * page_rows;
        pool.truncate(&mut base, aligned);
        let before = pool.bytes_in_use();
        let mut kids = Vec::new();
        for _ in 0..forks {
            kids.push(pool.fork(&base));
        }
        prop_assert_eq!(pool.bytes_in_use(), before, "fork copied a full page");
        for k in &kids {
            for r in 0..aligned {
                prop_assert_eq!(pool.row(k, r), &row_bytes(0, r, 3)[..]);
            }
        }
        // Tear down in mixed order; no page may leak.
        pool.release(&mut base);
        for k in &mut kids {
            pool.release(k);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
    }
}
