//! Property tests for the paged KV pool's free-list allocator.
//!
//! The invariants under test: across arbitrary interleavings of
//! per-sequence appends, chunk rollbacks (truncation across page
//! boundaries), and full releases,
//!
//! * the pool never **leaks** (pages in use always equals the sum of
//!   pages held by live sequences, and releasing everything returns the
//!   pool to zero resident bytes),
//! * the pool never **double-frees** or cross-links (every sequence's
//!   rows read back bit-identical to a flat shadow copy maintained in
//!   plain `Vec`s, so a page recycled while still referenced would be
//!   caught immediately),
//! * `gather_panel` stays bit-identical to slicing the flat shadow.

use proptest::prelude::*;
use tensor::kvpool::{KvPool, KvSeq};

/// One step of the random schedule, applied to a sequence index.
#[derive(Debug, Clone)]
enum Op {
    /// Append `n` rows (1..=9) to sequence `seq`.
    Push { seq: usize, n: usize },
    /// Roll back up to `n` rows (chunk retry / speculative rollback).
    Rollback { seq: usize, n: usize },
    /// Retire the sequence, returning every page to the free list.
    Release { seq: usize },
}

/// 4:2:1 weighted Push/Rollback/Release (the vendored proptest has no
/// `prop_oneof`, so a kind index is mapped by hand).
fn op_strategy(n_seqs: usize) -> impl Strategy<Value = Op> {
    (0usize..7, 0..n_seqs, 1usize..=9).prop_map(|(kind, seq, n)| match kind {
        0..=3 => Op::Push { seq, n },
        4..=5 => Op::Rollback { seq, n },
        _ => Op::Release { seq },
    })
}

/// A deterministic, content-unique row: byte `c` of row `r` of
/// sequence `s` — any page aliasing between sequences shows up as a
/// byte mismatch against the shadow.
fn row_bytes(seq: usize, row: usize, cols: usize) -> Vec<i8> {
    (0..cols)
        .map(|c| ((seq * 131 + row * 17 + c * 3) % 251) as u8 as i8)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_schedules_never_leak_or_alias(
        page_rows in 1usize..=7,
        cols in 1usize..=6,
        ops in proptest::collection::vec(op_strategy(4), 1..120),
    ) {
        let n_seqs = 4;
        let mut pool: KvPool<i8> = KvPool::new(page_rows, cols);
        let mut seqs: Vec<KvSeq> = (0..n_seqs).map(|_| KvSeq::new()).collect();
        // Flat shadow: the rows each sequence logically holds, plus a
        // monotonically growing per-sequence row counter so re-pushed
        // rows after a rollback get fresh content (stresses recycled
        // pages with new bytes).
        let mut shadow: Vec<Vec<Vec<i8>>> = vec![Vec::new(); n_seqs];
        let mut next_row: Vec<usize> = vec![0; n_seqs];

        for op in &ops {
            match *op {
                Op::Push { seq, n } => {
                    for _ in 0..n {
                        let row = row_bytes(seq, next_row[seq], cols);
                        pool.push_row(&mut seqs[seq], &row);
                        shadow[seq].push(row);
                        next_row[seq] += 1;
                    }
                }
                Op::Rollback { seq, n } => {
                    let keep = shadow[seq].len().saturating_sub(n);
                    pool.truncate(&mut seqs[seq], keep);
                    shadow[seq].truncate(keep);
                }
                Op::Release { seq } => {
                    pool.release(&mut seqs[seq]);
                    shadow[seq].clear();
                }
            }

            // No leak / no double-free: the pool's notion of "in use"
            // must equal the pages reachable from live sequences, and
            // every sequence holds exactly the pages its row count
            // needs.
            let held: usize = seqs.iter().map(|s| s.pages_held()).sum();
            prop_assert_eq!(pool.pages_in_use(), held);
            for (s, sh) in seqs.iter().zip(&shadow) {
                prop_assert_eq!(s.rows(), sh.len());
                prop_assert_eq!(s.pages_held(), sh.len().div_ceil(page_rows));
            }

            // No aliasing: every live row reads back bit-identical to
            // the shadow (a recycled-but-still-referenced page would
            // hold another sequence's bytes).
            for (si, (s, sh)) in seqs.iter().zip(&shadow).enumerate() {
                for (r, want) in sh.iter().enumerate() {
                    prop_assert_eq!(pool.row(s, r), &want[..], "seq {} row {}", si, r);
                }
            }
        }

        // gather_panel over a random-ish window matches flat slicing.
        for (s, sh) in seqs.iter().zip(&shadow) {
            if sh.is_empty() {
                continue;
            }
            let c0 = 0;
            let width = cols;
            let panel = pool.gather_panel(s, c0, width);
            for (r, want) in sh.iter().enumerate() {
                prop_assert_eq!(panel.row(r), &want[c0..c0 + width]);
            }
        }

        // Releasing everything returns the pool to zero resident bytes
        // — the free list got every page back.
        for s in &mut seqs {
            pool.release(s);
        }
        prop_assert_eq!(pool.pages_in_use(), 0);
        prop_assert_eq!(pool.bytes_in_use(), 0);
    }

    #[test]
    fn recycled_pages_serve_new_sequences_without_growth(
        page_rows in 1usize..=5,
        rows in 1usize..=40,
    ) {
        // Fill one sequence, release it, fill another of the same size:
        // the second must be served entirely from recycled pages.
        let mut pool: KvPool<i8> = KvPool::new(page_rows, 3);
        let mut a = KvSeq::new();
        for r in 0..rows {
            pool.push_row(&mut a, &row_bytes(0, r, 3));
        }
        let allocated = pool.bytes_allocated();
        pool.release(&mut a);
        let mut b = KvSeq::new();
        for r in 0..rows {
            pool.push_row(&mut b, &row_bytes(1, r, 3));
        }
        prop_assert_eq!(pool.bytes_allocated(), allocated);
        for r in 0..rows {
            prop_assert_eq!(pool.row(&b, r), &row_bytes(1, r, 3)[..]);
        }
    }
}
