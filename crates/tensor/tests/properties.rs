//! Property-based tests for the matrix substrate: algebraic laws that the
//! GEMM kernels and structural operations must satisfy for arbitrary
//! shapes and contents.

use proptest::prelude::*;
use tensor::{gemm, ops, Mat};

fn mat_f32(rows: usize, cols: usize) -> impl Strategy<Value = Mat<f32>> {
    proptest::collection::vec(-8.0f32..8.0, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).expect("len matches"))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #[test]
    fn gemm_distributes_over_addition(
        (m, k, n) in dims(),
        seed in 0u64..1000,
    ) {
        // (A + B) C == AC + BC, exactly in i32 arithmetic.
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor::init::uniform_i8(&mut rng, m, k);
        let b = tensor::init::uniform_i8(&mut rng, m, k);
        let c = tensor::init::uniform_i8(&mut rng, k, n);
        // Sum in i32 to avoid i8 overflow, then compare against the sum of
        // the individual products.
        let ac = gemm::matmul_i8(&a, &c).unwrap();
        let bc = gemm::matmul_i8(&b, &c).unwrap();
        for i in 0..m {
            for j in 0..n {
                let direct: i32 = (0..k)
                    .map(|p| (a[(i, p)] as i32 + b[(i, p)] as i32) * c[(p, j)] as i32)
                    .sum();
                prop_assert_eq!(direct, ac[(i, j)] + bc[(i, j)]);
            }
        }
    }

    #[test]
    fn transpose_reverses_product((m, k, n) in dims(), sa in 0u64..100, sb in 0u64..100) {
        // (A B)^T == B^T A^T in exact integer arithmetic.
        use rand::{rngs::StdRng, SeedableRng};
        let mut ra = StdRng::seed_from_u64(sa);
        let mut rb = StdRng::seed_from_u64(sb ^ 0xdead);
        let a = tensor::init::uniform_i8(&mut ra, m, k);
        let b = tensor::init::uniform_i8(&mut rb, k, n);
        let ab_t = gemm::matmul_i8(&a, &b).unwrap().transposed();
        let bt_at = gemm::matmul_i8(&b.transposed(), &a.transposed()).unwrap();
        prop_assert_eq!(ab_t, bt_at);
    }

    #[test]
    fn nt_gemm_agrees_with_materialized_transpose(m in 1usize..10, k in 1usize..10, n in 1usize..10, seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a = tensor::init::uniform_i8(&mut rng, m, k);
        let b = tensor::init::uniform_i8(&mut rng, n, k);
        prop_assert_eq!(
            gemm::matmul_i8_nt(&a, &b).unwrap(),
            gemm::matmul_i8(&a, &b.transposed()).unwrap()
        );
    }

    #[test]
    fn panels_reassemble(rows in 1usize..8, cols in 1usize..40, width in 1usize..12) {
        let m = Mat::from_fn(rows, cols, |r, c| (r * cols + c) as i32);
        let panels = m.col_panels(width);
        // every panel except possibly the last has the requested width
        for p in &panels[..panels.len() - 1] {
            prop_assert_eq!(p.cols(), width);
        }
        prop_assert_eq!(Mat::hconcat(&panels).unwrap(), m);
    }

    #[test]
    fn padding_preserves_prefix_and_zeroes_rest(
        rows in 1usize..6, cols in 1usize..6, extra_r in 0usize..4, extra_c in 0usize..4
    ) {
        let m = Mat::from_fn(rows, cols, |r, c| (1 + r * cols + c) as i32);
        let p = m.padded(rows + extra_r, cols + extra_c);
        for r in 0..rows + extra_r {
            for c in 0..cols + extra_c {
                let want = if r < rows && c < cols { m[(r, c)] } else { 0 };
                prop_assert_eq!(p[(r, c)], want);
            }
        }
    }

    #[test]
    fn mse_is_symmetric_and_nonnegative((a, b) in (1usize..6, 1usize..6).prop_flat_map(|(r, c)| (mat_f32(r, c), mat_f32(r, c)))) {
        let ab = ops::mse(&a, &b).unwrap();
        let ba = ops::mse(&b, &a).unwrap();
        prop_assert!(ab >= 0.0);
        prop_assert!((ab - ba).abs() < 1e-6);
    }

    #[test]
    fn relu_is_idempotent(rc in (1usize..8, 1usize..8), seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        let (r, c) = rc;
        let mut rng = StdRng::seed_from_u64(seed);
        let m = tensor::init::uniform(&mut rng, r, c, -4.0, 4.0);
        let once = ops::relu(&m);
        let twice = ops::relu(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn mask_zero_rows_survive_i8(rc in (1usize..8, 1usize..8), seed in 0u64..50) {
        use rand::{rngs::StdRng, SeedableRng};
        let (r, c) = rc;
        let mut rng = StdRng::seed_from_u64(seed);
        let scores = tensor::init::uniform(&mut rng, r, c, -3.0, 3.0);
        let mask = Mat::from_fn(r, c, |i, j| (i + j) % 3 == 0);
        let masked = ops::mask_scores(&scores, &mask).unwrap();
        for i in 0..r {
            for j in 0..c {
                if mask[(i, j)] {
                    prop_assert_eq!(masked[(i, j)], f32::NEG_INFINITY);
                } else {
                    prop_assert_eq!(masked[(i, j)], scores[(i, j)]);
                }
            }
        }
    }

    #[test]
    fn hconcat_then_panels_identity(r in 1usize..6, widths in proptest::collection::vec(1usize..5, 1..5)) {
        let parts: Vec<Mat<i32>> = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| Mat::from_fn(r, w, move |rr, cc| (i * 100 + rr * 10 + cc) as i32))
            .collect();
        let joined = Mat::hconcat(&parts).unwrap();
        let total: usize = widths.iter().sum();
        prop_assert_eq!(joined.cols(), total);
    }

    #[test]
    fn i8_gemm_matches_f32_gemm_exactly_in_range((m, k, n) in dims(), seed in 0u64..100) {
        // For small values the f32 GEMM must agree exactly with the i8 GEMM
        // (f32 represents all integers up to 2^24 exactly).
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let a8 = tensor::init::uniform_i8(&mut rng, m, k);
        let b8 = tensor::init::uniform_i8(&mut rng, k, n);
        let af = a8.map(|&x| x as f32);
        let bf = b8.map(|&x| x as f32);
        let exact = gemm::matmul_i8(&a8, &b8).unwrap();
        let float = gemm::matmul(&af, &bf).unwrap();
        for (e, f) in exact.as_slice().iter().zip(float.as_slice()) {
            prop_assert_eq!(*e as f32, *f);
        }
    }
}
