//! Deterministic random initialisation for weights and test inputs.
//!
//! All generators take an explicit `Rng` so callers (tests, benches,
//! training) stay reproducible via seeded [`rand::rngs::StdRng`].

use rand::Rng;

use crate::Mat;

/// Uniform matrix in `[lo, hi)`.
///
/// # Panics
///
/// Panics if `lo >= hi`.
pub fn uniform(rng: &mut impl Rng, rows: usize, cols: usize, lo: f32, hi: f32) -> Mat<f32> {
    assert!(lo < hi, "uniform range must be non-empty: [{lo}, {hi})");
    Mat::from_fn(rows, cols, |_, _| rng.random_range(lo..hi))
}

/// Xavier/Glorot uniform initialisation for a `fan_in x fan_out` weight
/// matrix: `U(-a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier(rng: &mut impl Rng, fan_in: usize, fan_out: usize) -> Mat<f32> {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(rng, fan_in, fan_out, -a, a)
}

/// Standard-normal matrix scaled by `std`, via Box-Muller (keeps us off
/// `rand_distr`, which is outside the approved dependency set).
pub fn normal(rng: &mut impl Rng, rows: usize, cols: usize, std: f32) -> Mat<f32> {
    Mat::from_fn(rows, cols, |_, _| {
        let u1: f32 = rng.random_range(f32::EPSILON..1.0);
        let u2: f32 = rng.random_range(0.0..1.0);
        (-2.0 * u1.ln()).sqrt() * (std::f32::consts::TAU * u2).cos() * std
    })
}

/// Uniformly random INT8 matrix over the full `[-127, 127]` symmetric
/// range (the accelerator never uses `-128`; see `fixedmath`).
pub fn uniform_i8(rng: &mut impl Rng, rows: usize, cols: usize) -> Mat<i8> {
    Mat::from_fn(rows, cols, |_, _| rng.random_range(-127i16..=127) as i8)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds_and_seed() {
        let mut rng = StdRng::seed_from_u64(7);
        let m = uniform(&mut rng, 16, 16, -0.5, 0.5);
        assert!(m.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
        let mut rng2 = StdRng::seed_from_u64(7);
        let m2 = uniform(&mut rng2, 16, 16, -0.5, 0.5);
        assert_eq!(m, m2, "same seed must reproduce the same matrix");
    }

    #[test]
    fn xavier_scale_shrinks_with_fan() {
        let mut rng = StdRng::seed_from_u64(1);
        let wide = xavier(&mut rng, 1024, 1024);
        let bound = (6.0f32 / 2048.0).sqrt();
        assert!(wide.as_slice().iter().all(|&x| x.abs() <= bound));
    }

    #[test]
    fn normal_has_roughly_zero_mean_unit_std() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = normal(&mut rng, 64, 64, 1.0);
        let n = m.len() as f32;
        let mean: f32 = m.as_slice().iter().sum::<f32>() / n;
        let var: f32 = m
            .as_slice()
            .iter()
            .map(|x| (x - mean) * (x - mean))
            .sum::<f32>()
            / n;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn uniform_i8_avoids_minus_128() {
        let mut rng = StdRng::seed_from_u64(11);
        let m = uniform_i8(&mut rng, 64, 64);
        assert!(m.as_slice().iter().all(|&x| x != i8::MIN));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn uniform_rejects_empty_range() {
        let mut rng = StdRng::seed_from_u64(0);
        uniform(&mut rng, 1, 1, 1.0, 1.0);
    }
}
