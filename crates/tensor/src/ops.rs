//! Broadcast and elementwise helpers mirroring the paper's Fig. 3 matrix
//! operations: bias broadcast, residual add, ReLU and additive masking.

use crate::{Mat, ShapeError};

/// Adds `bias` (a length-`cols` vector) to every row of `m`, returning a
/// new matrix. This is the "s adders behind the systolic array" operation
/// in the paper's top-level architecture (Fig. 5).
///
/// # Errors
///
/// Returns [`ShapeError`] if `bias.len() != m.cols()`.
pub fn add_row_bias(m: &Mat<f32>, bias: &[f32]) -> Result<Mat<f32>, ShapeError> {
    if bias.len() != m.cols() {
        return Err(ShapeError::new("add_row_bias", m.shape(), (1, bias.len())));
    }
    let mut out = m.clone();
    for r in 0..out.rows() {
        for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
            *v += b;
        }
    }
    Ok(out)
}

/// Elementwise sum of two equally shaped matrices (the residual add).
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes differ.
pub fn add(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("add", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    for (o, v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += v;
    }
    Ok(out)
}

/// Elementwise difference `a - b`.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes differ.
pub fn sub(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("sub", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    for (o, v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= v;
    }
    Ok(out)
}

/// Elementwise (Hadamard) product.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes differ.
pub fn hadamard(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("hadamard", a.shape(), b.shape()));
    }
    let mut out = a.clone();
    for (o, v) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= v;
    }
    Ok(out)
}

/// Multiplies every element by `k`.
pub fn scale(m: &Mat<f32>, k: f32) -> Mat<f32> {
    m.map(|&x| x * k)
}

/// Rectified linear unit, applied elementwise.
pub fn relu(m: &Mat<f32>) -> Mat<f32> {
    m.map(|&x| x.max(0.0))
}

/// Derivative mask of ReLU at the pre-activation `m` (1 where `m > 0`).
pub fn relu_grad_mask(m: &Mat<f32>) -> Mat<f32> {
    m.map(|&x| if x > 0.0 { 1.0 } else { 0.0 })
}

/// Applies an additive mask: where `mask[(i,j)]` is `true` (an illegal
/// connection in the paper's terminology), the score is replaced by
/// `f32::NEG_INFINITY` so that softmax assigns it zero probability.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes differ.
pub fn mask_scores(scores: &Mat<f32>, mask: &Mat<bool>) -> Result<Mat<f32>, ShapeError> {
    if scores.shape() != mask.shape() {
        return Err(ShapeError::new("mask_scores", scores.shape(), mask.shape()));
    }
    Ok(Mat::from_fn(scores.rows(), scores.cols(), |r, c| {
        if mask[(r, c)] {
            f32::NEG_INFINITY
        } else {
            scores[(r, c)]
        }
    }))
}

/// Index of the maximum element of a non-empty slice (ties break to the
/// last occurrence, matching `Iterator::max_by`) — the greedy-decoding
/// primitive.
///
/// # Panics
///
/// Panics if the slice is empty or contains a NaN.
pub fn argmax(xs: &[f32]) -> usize {
    assert!(!xs.is_empty(), "argmax of an empty slice");
    xs.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).expect("argmax over NaN"))
        .map(|(i, _)| i)
        .expect("non-empty")
}

/// Maximum absolute element; 0 for an empty matrix. Used by quantization
/// calibration.
pub fn max_abs(m: &Mat<f32>) -> f32 {
    m.as_slice().iter().fold(0.0f32, |a, &x| a.max(x.abs()))
}

/// Mean squared error between two equally shaped matrices.
///
/// # Errors
///
/// Returns [`ShapeError`] if shapes differ.
pub fn mse(a: &Mat<f32>, b: &Mat<f32>) -> Result<f32, ShapeError> {
    if a.shape() != b.shape() {
        return Err(ShapeError::new("mse", a.shape(), b.shape()));
    }
    if a.is_empty() {
        return Ok(0.0);
    }
    let sum: f32 = a
        .as_slice()
        .iter()
        .zip(b.as_slice())
        .map(|(x, y)| (x - y) * (x - y))
        .sum();
    Ok(sum / a.len() as f32)
}

/// Frobenius norm.
pub fn fro_norm(m: &Mat<f32>) -> f32 {
    m.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
}

/// Builds the causal (subsequent-position) mask of size `s x s` used by the
/// decoder self-attention: `mask[(i, j)] = true` (illegal) for `j > i`.
pub fn causal_mask(s: usize) -> Mat<bool> {
    Mat::from_fn(s, s, |i, j| j > i)
}

/// Builds a key-padding mask of size `s x s`: column `j` is illegal when
/// `valid[j]` is `false` (the key position is padding).
///
/// # Panics
///
/// Panics if `valid.len() != s`.
pub fn padding_mask(s: usize, valid: &[bool]) -> Mat<bool> {
    assert_eq!(
        valid.len(),
        s,
        "padding mask needs one flag per key position"
    );
    Mat::from_fn(s, s, |_, j| !valid[j])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bias_broadcasts_per_row() {
        let m = Mat::from_fn(2, 3, |r, _| r as f32);
        let out = add_row_bias(&m, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(out.row(0), &[1.0, 2.0, 3.0]);
        assert_eq!(out.row(1), &[2.0, 3.0, 4.0]);
        assert!(add_row_bias(&m, &[1.0]).is_err());
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = Mat::from_fn(2, 2, |r, c| (r + c) as f32);
        let b = Mat::from_fn(2, 2, |r, c| (r * c) as f32 + 1.0);
        let s = add(&a, &b).unwrap();
        let back = sub(&s, &b).unwrap();
        assert_eq!(back, a);
        assert!(add(&a, &Mat::zeros(3, 2)).is_err());
    }

    #[test]
    fn hadamard_multiplies() {
        let a = Mat::from_vec(1, 3, vec![1.0f32, 2.0, 3.0]).unwrap();
        let b = Mat::from_vec(1, 3, vec![4.0f32, 0.5, -1.0]).unwrap();
        assert_eq!(hadamard(&a, &b).unwrap().as_slice(), &[4.0, 1.0, -3.0]);
    }

    #[test]
    fn relu_clamps_negatives() {
        let m = Mat::from_vec(1, 4, vec![-2.0f32, -0.0, 0.5, 3.0]).unwrap();
        assert_eq!(relu(&m).as_slice(), &[0.0, 0.0, 0.5, 3.0]);
        assert_eq!(relu_grad_mask(&m).as_slice(), &[0.0, 0.0, 1.0, 1.0]);
    }

    #[test]
    fn mask_sets_neg_infinity() {
        let scores = Mat::from_fn(2, 2, |r, c| (r + c) as f32);
        let mask = Mat::from_fn(2, 2, |r, c| r == 0 && c == 1);
        let out = mask_scores(&scores, &mask).unwrap();
        assert_eq!(out[(0, 0)], 0.0);
        assert_eq!(out[(0, 1)], f32::NEG_INFINITY);
    }

    #[test]
    fn causal_mask_is_strictly_upper() {
        let m = causal_mask(3);
        assert!(!m[(0, 0)]);
        assert!(m[(0, 2)]);
        assert!(!m[(2, 1)]);
        let illegal: usize = m.as_slice().iter().filter(|&&x| x).count();
        assert_eq!(illegal, 3); // 3*(3-1)/2
    }

    #[test]
    fn padding_mask_blocks_invalid_keys() {
        let m = padding_mask(3, &[true, true, false]);
        assert!(!m[(1, 0)]);
        assert!(m[(0, 2)]);
        assert!(m[(2, 2)]);
    }

    #[test]
    fn max_abs_and_norms() {
        let m = Mat::from_vec(1, 3, vec![-4.0f32, 3.0, 2.0]).unwrap();
        assert_eq!(max_abs(&m), 4.0);
        assert!((fro_norm(&m) - 29.0f32.sqrt()).abs() < 1e-6);
        assert_eq!(max_abs(&Mat::<f32>::zeros(0, 0)), 0.0);
    }

    #[test]
    fn argmax_finds_the_maximum() {
        assert_eq!(argmax(&[1.0, 5.0, 3.0]), 1);
        assert_eq!(argmax(&[2.0, 2.0]), 1, "ties break to the last");
        assert_eq!(argmax(&[-3.0]), 0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn argmax_rejects_empty() {
        let _ = argmax(&[]);
    }

    #[test]
    fn mse_of_identical_is_zero() {
        let m = Mat::from_fn(3, 3, |r, c| (r * c) as f32);
        assert_eq!(mse(&m, &m).unwrap(), 0.0);
        let shifted = m.map(|&x| x + 2.0);
        assert!((mse(&m, &shifted).unwrap() - 4.0).abs() < 1e-6);
    }
}
