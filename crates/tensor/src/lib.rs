//! Dense row-major matrix substrate for the `transformer-accel` workspace.
//!
//! The crate provides a small, dependency-light matrix library tuned for the
//! needs of the SOCC'20 Transformer-accelerator reproduction:
//!
//! * [`Mat<T>`] — an owned, row-major, 2-D array with shape-checked
//!   operations and cheap row access;
//! * floating-point GEMM ([`gemm::matmul`]) and the integer GEMM used by the
//!   INT8 datapath ([`gemm::matmul_i8`], producing `i32` accumulators);
//! * broadcast / elementwise helpers ([`ops`]) mirroring the operations that
//!   appear in the paper's Fig. 3 (bias add, residual add, ReLU, masking);
//! * deterministic random initialisation ([`init`]) for tests, benches and
//!   model construction.
//!
//! # Example
//!
//! ```
//! use tensor::{Mat, gemm};
//!
//! # fn main() -> Result<(), tensor::ShapeError> {
//! let a = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as f32);
//! let b = Mat::from_fn(3, 2, |r, c| (r * 2 + c) as f32);
//! let c = gemm::matmul(&a, &b)?;
//! assert_eq!(c.shape(), (2, 2));
//! assert_eq!(c[(0, 0)], 10.0);
//! # Ok(())
//! # }
//! ```

// `deny` rather than `forbid`: the SIMD microkernels ([`simd`]) and the
// persistent pool ([`par`]: the scoped-lifetime extension and the
// `sched_setaffinity` worker-pinning syscall) carry the only documented
// `#[allow(unsafe_code)]` exemptions; everything else in the crate
// remains safe code.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod envcfg;
mod error;
pub mod gemm;
pub mod init;
pub mod kvpool;
mod mat;
pub mod norm;
pub mod ops;
pub mod par;
pub mod prepack;
pub mod simd;

pub use error::ShapeError;
pub use mat::Mat;

/// Convenience alias for `f32` matrices (activations, weights).
pub type MatF = Mat<f32>;
/// Convenience alias for INT8 matrices (quantized tensors).
pub type MatI8 = Mat<i8>;
/// Convenience alias for INT32 matrices (GEMM accumulators).
pub type MatI32 = Mat<i32>;
