//! General matrix-matrix multiplication kernels.
//!
//! Two numeric domains are needed by the workspace:
//!
//! * `f32 x f32 -> f32` for the reference Transformer ([`matmul`]);
//! * `i8 x i8 -> i32` for the INT8 datapath the accelerator implements
//!   ([`matmul_i8`]). The `i32` accumulator never overflows for the
//!   reduction depths used by the paper (`k <= 4096`): the worst case is
//!   `4096 * 127 * 128 = 66,584,576`, far below `i32::MAX`.

use crate::{Mat, ShapeError};

/// `f32` GEMM: returns `a * b`.
///
/// Uses a cache-friendly ikj loop ordering; adequate for the model sizes in
/// the paper (`d_model <= 1024`, `d_ff <= 4096`).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use tensor::{Mat, gemm};
/// # fn main() -> Result<(), tensor::ShapeError> {
/// let id = Mat::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// let a = Mat::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(gemm::matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0.0 {
                continue;
            }
            let brow = b.row(p);
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
    Ok(out)
}

/// `f32` GEMM against the transpose of `b`: returns `a * b^T`.
///
/// Avoids materialising the transpose for the attention score computation
/// `Q_i K_i^T`.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_nt", a.shape(), b.shape()));
    }
    let m = a.rows();
    let n = b.rows();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[(i, j)] = acc;
        }
    }
    Ok(out)
}

/// INT8 GEMM with `i32` accumulation: returns `a * b` exactly as an INT8
/// MAC array (the paper's systolic array) would compute it.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use tensor::{Mat, gemm};
/// # fn main() -> Result<(), tensor::ShapeError> {
/// let a = Mat::from_vec(1, 2, vec![100i8, -100])?;
/// let b = Mat::from_vec(2, 1, vec![100i8, 100])?;
/// assert_eq!(gemm::matmul_i8(&a, &b)?[(0, 0)], 0);
/// # Ok(())
/// # }
/// ```
pub fn matmul_i8(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_i8", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            if av == 0 {
                continue;
            }
            let av = av as i32;
            let brow = b.row(p);
            for j in 0..n {
                orow[j] += av * brow[j] as i32;
            }
        }
    }
    Ok(out)
}

/// Cache-blocked INT8 GEMM — identical results to [`matmul_i8`]
/// (integer arithmetic is exact, so tiling cannot change the output),
/// noticeably faster on the paper-scale shapes (`k = 512..4096`) because
/// the `B` panel stays in cache across the `i` loop.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_i8_blocked(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_i8_blocked", a.shape(), b.shape()));
    }
    const BK: usize = 64;
    const BN: usize = 64;
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Mat::<i32>::zeros(m, n);
    let mut k0 = 0;
    while k0 < k {
        let kb = BK.min(k - k0);
        let mut n0 = 0;
        while n0 < n {
            let nb = BN.min(n - n0);
            for i in 0..m {
                let arow = &a.row(i)[k0..k0 + kb];
                let orow = &mut out.row_mut(i)[n0..n0 + nb];
                for (p, &av) in arow.iter().enumerate() {
                    if av == 0 {
                        continue;
                    }
                    let av = av as i32;
                    let brow = &b.row(k0 + p)[n0..n0 + nb];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv as i32;
                    }
                }
            }
            n0 += nb;
        }
        k0 += kb;
    }
    Ok(out)
}

/// INT8 GEMM against the transpose of `b`: returns `a * b^T` with `i32`
/// accumulation.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_i8_nt(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_i8_nt", a.shape(), b.shape()));
    }
    let m = a.rows();
    let n = b.rows();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0i32;
            for (x, y) in arow.iter().zip(brow) {
                acc += *x as i32 * *y as i32;
            }
            out[(i, j)] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_f32(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f32> {
        Mat::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|p| a[(i, p)] * b[(p, j)]).sum()
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Mat::from_fn(4, 7, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Mat::from_fn(7, 3, |r, c| (r * c) as f32 * 0.25 - 1.0);
        let got = matmul(&a, &b).unwrap();
        let want = naive_f32(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn matmul_shape_error() {
        let a = Mat::<f32>::zeros(2, 3);
        let b = Mat::<f32>::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_fn(3, 5, |r, c| (r + 2 * c) as f32);
        let b = Mat::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.5);
        let got = matmul_nt(&a, &b).unwrap();
        let want = matmul(&a, &b.transposed()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_i8_exact() {
        let a = Mat::from_vec(2, 2, vec![1i8, -2, 3, 4]).unwrap();
        let b = Mat::from_vec(2, 2, vec![5i8, 6, 7, -8]).unwrap();
        let c = matmul_i8(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[5 - 14, 6 + 16, 15 + 28, 18 - 32]);
    }

    #[test]
    fn matmul_i8_nt_equals_explicit_transpose() {
        let a = Mat::from_fn(3, 4, |r, c| (r as i8) - (c as i8));
        let b = Mat::from_fn(2, 4, |r, c| (r as i8 * 3) + c as i8);
        let got = matmul_i8_nt(&a, &b).unwrap();
        let want = matmul_i8(&a, &b.transposed()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_i8_worst_case_no_overflow() {
        // Deepest reduction in any Table-I config: k = d_ff = 4096.
        let a = Mat::filled(1, 4096, -128i8);
        let b = Mat::filled(4096, 1, -128i8);
        let c = matmul_i8(&a, &b).unwrap();
        assert_eq!(c[(0, 0)], 4096 * 128 * 128);
    }

    #[test]
    fn blocked_i8_gemm_is_bit_identical() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 130, 65),
            (64, 512, 64),
            (3, 64, 200),
        ] {
            let a = crate::init::uniform_i8(&mut rng, m, k);
            let b = crate::init::uniform_i8(&mut rng, k, n);
            assert_eq!(
                matmul_i8_blocked(&a, &b).unwrap(),
                matmul_i8(&a, &b).unwrap(),
                "shape ({m},{k},{n})"
            );
        }
    }

    #[test]
    fn blocked_i8_gemm_shape_error() {
        let a = Mat::<i8>::zeros(2, 3);
        let b = Mat::<i8>::zeros(2, 3);
        assert!(matmul_i8_blocked(&a, &b).is_err());
    }

    #[test]
    fn empty_matmul_is_ok() {
        let a = Mat::<f32>::zeros(0, 3);
        let b = Mat::<f32>::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));
    }
}
