//! General matrix-matrix multiplication kernels.
//!
//! Two numeric domains are needed by the workspace:
//!
//! * `f32 x f32 -> f32` for the reference Transformer ([`matmul`]);
//! * `i8 x i8 -> i32` for the INT8 datapath the accelerator implements
//!   ([`matmul_i8`]). The `i32` accumulator never overflows for the
//!   reduction depths used by the paper (`k <= 4096`): the worst case is
//!   `4096 * 127 * 128 = 66,584,576`, far below `i32::MAX`.
//!
//! # Kernel structure
//!
//! The four public entry points ([`matmul`], [`matmul_nt`], [`matmul_i8`],
//! [`matmul_i8_nt`]) are parallelised over horizontal output bands on the
//! persistent worker pool in [`crate::par`] (worker count from
//! [`crate::par::threads`], i.e. the `ACCEL_THREADS` environment variable
//! or the machine's available parallelism). Small problems below
//! [`SERIAL_CUTOFF_MACS`] run on the calling thread to avoid dispatch
//! overhead. The INT8 kernels dispatch to the AVX-512 VNNI microkernels
//! in [`crate::simd`] when the hardware supports them (bit-identical
//! either way); single-row INT8 GEMMs use a dedicated GEMV kernel.
//! Weight matrices that are multiplied repeatedly should be packed once
//! via [`crate::prepack`] instead of paying the pack per call.
//!
//! The `f32` kernel packs `B` once into `NR`-lane column tiles
//! (`[tile][k][lane]` layout via [`pack_tiles`]) shared read-only by all
//! bands, then runs a register-tiled `MR x NR` microkernel: `MR` rows of
//! `A` against one tile, with the `MR * NR` accumulators living in
//! registers across the whole `k` sweep so each output element is loaded
//! and stored exactly once. The INT8 kernel packs `B` into the
//! `[tile][kq][lane][KQ]` **quad** layout ([`pack_quads`]) that both the
//! scalar kernel and the `vpdpbusd`-based VNNI microkernel consume — one
//! 64-byte load covers a reduction quad of all `NR` lanes, and the i8
//! (not i32-widened) storage keeps the per-token weight traffic of the
//! decode GEMV at 1x the weight bytes. The `*_nt` kernels read `B`'s
//! rows directly (they already are the contiguous panels of `B^T`) with
//! a blocked dot product.
//!
//! Every kernel is **bit-identical** to its naive reference
//! ([`matmul_ref`] etc.) for any thread count: tiling over `n`, register
//! blocking over rows, and splitting rows across threads never reorder
//! the per-element accumulation (each output element still sums its `k`
//! products in ascending-`k` order on a single thread). The integer
//! kernels are exact regardless; for `f32` the unchanged summation order
//! is what preserves bit equality. There is deliberately **no** skip of
//! zero operands — a data-dependent early-out gives data-dependent
//! timing (unlike the fixed-schedule systolic array being modelled) and
//! silently drops `0.0 * NaN` propagation in the float kernel.
//!
//! Explicit-thread-count variants ([`matmul_with_threads`] etc.) bypass
//! both the environment lookup and the serial cutoff; they exist for
//! equivalence tests and benchmarks that pin the worker count.

use crate::{par, simd, Mat, ShapeError};

/// Column-tile width of the register microkernel (one 512-bit vector of
/// `i32`/`f32` lanes; also vectorises as two 256-bit ops on AVX2).
pub(crate) const NR: usize = 16;
/// Rows of `A` processed together by the register microkernel — each
/// packed `B` vector load feeds `MR` rows' accumulators.
pub(crate) const MR: usize = 4;
/// Output-column block size for the `*_nt` dot-product kernels: how many
/// rows of `B` stay hot in cache while a band of `A` rows streams by.
const BJ: usize = 32;

/// Problems with at most this many multiply-accumulates (`m * k * n`)
/// run serially on the calling thread — below this size thread-spawn
/// overhead exceeds the compute being split.
pub const SERIAL_CUTOFF_MACS: usize = 1 << 16;

// ---------------------------------------------------------------------------
// Tile packing
// ---------------------------------------------------------------------------

/// Packs `b` (`k x n`) into `NR`-lane column tiles, widening each
/// element with `widen` (identity for `f32`, `i8 -> i32` for the integer
/// kernel so the inner loop multiplies without per-element conversions).
///
/// Layout: `[tile][p][lane]` — for column tile `t`, the `NR` values of
/// row `p` restricted to columns `t*NR..` are contiguous, so the
/// microkernel's per-`p` tile load is a single vector read. The last
/// tile is zero-padded to `NR`; padded lanes are computed and discarded,
/// which cannot perturb real lanes (lanes are independent). The packed
/// buffer is built once per GEMM and shared read-only by every band.
pub(crate) fn pack_tiles<T: Copy, U: Copy + Default>(b: &Mat<T>, widen: impl Fn(T) -> U) -> Vec<U> {
    let (k, n) = b.shape();
    let tiles = n.div_ceil(NR);
    let mut packed = vec![U::default(); tiles * k * NR];
    for t in 0..tiles {
        let j0 = t * NR;
        let w = NR.min(n - j0);
        for p in 0..k {
            let brow = &b.row(p)[j0..j0 + w];
            let dst = &mut packed[(t * k + p) * NR..(t * k + p) * NR + w];
            for (d, &v) in dst.iter_mut().zip(brow) {
                *d = widen(v);
            }
        }
    }
    packed
}

/// [`pack_tiles`] restricted to column tiles `t0 .. t1`, writing into
/// `chunk` — the sub-slice of the full packed buffer covering exactly
/// those tiles (`(t1 - t0) * k * NR` zero-initialised elements).
/// Byte-identical to the corresponding range of [`pack_tiles`]; used by
/// the prepack layer to parallelise (and first-touch-distribute) the
/// one-time weight pack across pool workers.
pub(crate) fn pack_tiles_f32_range(b: &Mat<f32>, chunk: &mut [f32], t0: usize, t1: usize) {
    let (k, n) = b.shape();
    for t in t0..t1 {
        let j0 = t * NR;
        let w = NR.min(n - j0);
        for p in 0..k {
            let brow = &b.row(p)[j0..j0 + w];
            let base = ((t - t0) * k + p) * NR;
            let dst = &mut chunk[base..base + w];
            dst.copy_from_slice(brow);
        }
    }
}

// ---------------------------------------------------------------------------
// Band kernels (each runs on one worker thread over a row band)
// ---------------------------------------------------------------------------

macro_rules! band_kernel {
    ($name:ident, $ta:ty, $to:ty, $widen:path) => {
        /// Computes `out_band = a[first_row..][..rows] * B` from packed
        /// `B` tiles with a register-tiled `MR x NR` microkernel: the
        /// accumulators stay in registers across the whole `k` sweep and
        /// each output element is written exactly once. The tile loop is
        /// outermost so one packed tile (`k * NR` elements) stays hot in
        /// cache across every row of the band — without this, wide-`n`
        /// GEMMs (the FFN's `n = d_ff`) re-stream the whole packed `B`
        /// per row quad. Per element the `k` products accumulate in
        /// ascending-`k` order from zero, matching the naive reference
        /// bit for bit (the loop nesting never changes what one element
        /// sums, only the visit order across independent elements).
        fn $name(a: &Mat<$ta>, packed: &[$to], first_row: usize, out_band: &mut [$to], n: usize) {
            if n == 0 {
                return;
            }
            let k = a.cols();
            let rows = out_band.len() / n;
            let tiles = n.div_ceil(NR);
            for t in 0..tiles {
                let bt = &packed[t * k * NR..(t + 1) * k * NR];
                let j0 = t * NR;
                let w = NR.min(n - j0);
                let mut r = 0;
                // MR-row register tiles.
                while r + MR <= rows {
                    let (a0, a1, a2, a3) = (
                        a.row(first_row + r),
                        a.row(first_row + r + 1),
                        a.row(first_row + r + 2),
                        a.row(first_row + r + 3),
                    );
                    let mut c0 = [<$to>::default(); NR];
                    let mut c1 = [<$to>::default(); NR];
                    let mut c2 = [<$to>::default(); NR];
                    let mut c3 = [<$to>::default(); NR];
                    for p in 0..k {
                        let bv = &bt[p * NR..(p + 1) * NR];
                        let x0 = $widen(a0[p]);
                        let x1 = $widen(a1[p]);
                        let x2 = $widen(a2[p]);
                        let x3 = $widen(a3[p]);
                        for l in 0..NR {
                            c0[l] += x0 * bv[l];
                            c1[l] += x1 * bv[l];
                            c2[l] += x2 * bv[l];
                            c3[l] += x3 * bv[l];
                        }
                    }
                    for (q, c) in [c0, c1, c2, c3].iter().enumerate() {
                        let at = (r + q) * n + j0;
                        out_band[at..at + w].copy_from_slice(&c[..w]);
                    }
                    r += MR;
                }
                // Remainder rows, one at a time.
                while r < rows {
                    let a0 = a.row(first_row + r);
                    let mut c0 = [<$to>::default(); NR];
                    for p in 0..k {
                        let bv = &bt[p * NR..(p + 1) * NR];
                        let x0 = $widen(a0[p]);
                        for l in 0..NR {
                            c0[l] += x0 * bv[l];
                        }
                    }
                    out_band[r * n + j0..r * n + j0 + w].copy_from_slice(&c0[..w]);
                    r += 1;
                }
            }
        }
    };
}

band_kernel!(band_f32, f32, f32, widen_f32);

// ---------------------------------------------------------------------------
// INT8 quad packing (the VNNI-friendly layout)
// ---------------------------------------------------------------------------

/// Reduction-depth group size of the INT8 packed layout: the four
/// adjacent `k` values one `vpdpbusd` lane consumes.
pub(crate) const KQ: usize = 4;

/// Packs an INT8 `b` (`k x n`) into `[tile][kq][lane][KQ]` quads plus
/// per-`(tile, lane)` column sums.
///
/// Each column tile holds `NR` output lanes; within a tile, the `KQ`
/// values of rows `q*KQ .. q*KQ+4` for one lane are adjacent, so a
/// 64-byte vector load covers one reduction quad of all 16 lanes —
/// exactly the operand shape `vpdpbusd` consumes. Rows beyond `k` and
/// lanes beyond `n` are zero-padded (padded products are exactly zero,
/// so they cannot perturb real lanes).
///
/// The column sums exist for the unsigned-offset trick: the VNNI
/// microkernel feeds activations as `a + 128` (u8) and subtracts
/// `128 * colsum` afterwards, which is exact in `i32` — worst case
/// `|acc| <= 4096 * 255 * 127 + 128 * 4096 * 128 < 2^31`.
pub(crate) fn pack_quads(b: &Mat<i8>) -> (Vec<i8>, Vec<i32>) {
    let (k, n) = b.shape();
    let tiles = n.div_ceil(NR);
    let kq = k.div_ceil(KQ);
    let mut quads = vec![0i8; tiles * kq * NR * KQ];
    let mut colsum = vec![0i32; tiles * NR];
    if !simd::pack_quads_into(b, &mut quads, &mut colsum) {
        pack_quads_scalar_range(b, &mut quads, &mut colsum, 0, tiles);
    }
    (quads, colsum)
}

/// Scalar [`pack_quads`] body over column tiles `t0 .. t1`, writing into
/// caller-provided (zeroed) buffers. The SIMD pack delegates ragged
/// edges here; both producers are byte-identical.
pub(crate) fn pack_quads_scalar_range(
    b: &Mat<i8>,
    quads: &mut [i8],
    colsum: &mut [i32],
    t0: usize,
    t1: usize,
) {
    let (k, n) = b.shape();
    let kq = k.div_ceil(KQ);
    for t in t0..t1 {
        let j0 = t * NR;
        let w = NR.min(n - j0);
        for p in 0..k {
            let brow = &b.row(p)[j0..j0 + w];
            let (q, u) = (p / KQ, p % KQ);
            let base = (t * kq + q) * NR * KQ + u;
            for (l, &v) in brow.iter().enumerate() {
                quads[base + l * KQ] = v;
                colsum[t * NR + l] += i32::from(v);
            }
        }
    }
}

/// [`pack_quads_scalar_range`] writing into tile-relative chunks:
/// `quads_chunk` / `colsum_chunk` are the sub-slices of the full buffers
/// covering exactly tiles `t0 .. t1` (zero-initialised). Byte-identical
/// to the corresponding range of [`pack_quads`]; used by the prepack
/// layer to parallelise (and first-touch-distribute) the one-time
/// weight pack across pool workers.
pub(crate) fn pack_quads_range(
    b: &Mat<i8>,
    quads_chunk: &mut [i8],
    colsum_chunk: &mut [i32],
    t0: usize,
    t1: usize,
) {
    let (k, n) = b.shape();
    let kq = k.div_ceil(KQ);
    for t in t0..t1 {
        let j0 = t * NR;
        let w = NR.min(n - j0);
        for p in 0..k {
            let brow = &b.row(p)[j0..j0 + w];
            let (q, u) = (p / KQ, p % KQ);
            let base = ((t - t0) * kq + q) * NR * KQ + u;
            for (l, &v) in brow.iter().enumerate() {
                quads_chunk[base + l * KQ] = v;
                colsum_chunk[(t - t0) * NR + l] += i32::from(v);
            }
        }
    }
}

/// [`pack_quads`] for a `B` given as its transpose: `bt` is `n x k`
/// row-major (the attention K-cache shape), and the result is the quad
/// layout of `bt^T` — each `bt` row becomes one output lane, read
/// contiguously and scattered into its `KQ`-byte quad slots. Packing
/// per call costs `O(n * k)` byte moves, which the multi-row chunked
/// score GEMM amortises across its rows; the single-row decode shape
/// keeps the direct `*_nt` kernel instead.
pub(crate) fn pack_quads_t(bt: &Mat<i8>) -> (Vec<i8>, Vec<i32>) {
    let (n, k) = bt.shape();
    let tiles = n.div_ceil(NR);
    let kq = k.div_ceil(KQ);
    let mut quads = vec![0i8; tiles * kq * NR * KQ];
    let mut colsum = vec![0i32; tiles * NR];
    if !simd::pack_quads_t_into(bt, &mut quads, &mut colsum) {
        pack_quads_t_scalar_range(bt, &mut quads, &mut colsum, 0, tiles);
    }
    (quads, colsum)
}

/// Scalar [`pack_quads_t`] body over column tiles `t0 .. t1`, writing
/// into caller-provided (zeroed) buffers. The SIMD pack delegates ragged
/// edges here; both producers are byte-identical.
pub(crate) fn pack_quads_t_scalar_range(
    bt: &Mat<i8>,
    quads: &mut [i8],
    colsum: &mut [i32],
    t0: usize,
    t1: usize,
) {
    let (n, k) = bt.shape();
    let kq = k.div_ceil(KQ);
    for t in t0..t1 {
        let j0 = t * NR;
        let w = NR.min(n - j0);
        let tbase = t * kq * NR * KQ;
        for l in 0..w {
            let src = bt.row(j0 + l);
            let mut s = 0i32;
            for (q, chunk) in src.chunks(KQ).enumerate() {
                let dst = tbase + q * NR * KQ + l * KQ;
                for (u, &v) in chunk.iter().enumerate() {
                    quads[dst + u] = v;
                    s += i32::from(v);
                }
            }
            colsum[t * NR + l] += s;
        }
    }
}

/// The activation matrix recoded for the VNNI microkernel: each row of
/// `a` as `a + 128` (u8), zero-padded to a whole number of quads.
/// Padded bytes multiply the packed `B`'s zero padding, contributing
/// exactly nothing.
pub(crate) fn offset_rows(a: &Mat<i8>, threads_hint: usize) -> Vec<u8> {
    let (m, k) = a.shape();
    let kq4 = k.div_ceil(KQ) * KQ;
    let mut au = vec![0u8; m * kq4];
    let fill = |first_row: usize, chunk: &mut [u8]| {
        for (r, dst) in chunk.chunks_mut(kq4).enumerate() {
            for (d, &v) in dst.iter_mut().zip(a.row(first_row + r)) {
                *d = (i32::from(v) + 128) as u8;
            }
        }
    };
    if threads_hint <= 1 || m < 64 {
        fill(0, &mut au);
    } else {
        par::row_bands(&mut au, m, kq4, threads_hint, |first_row, chunk| {
            fill(first_row, chunk)
        });
    }
    au
}

/// Scalar band kernel over the INT8 quad layout: bit-identical to the
/// naive reference (integer accumulation is exact in any order) and to
/// the VNNI microkernel. Reads the original signed activations — the
/// unsigned-offset trick is a VNNI implementation detail.
fn band_i8q(a: &Mat<i8>, quads: &[i8], first_row: usize, out_band: &mut [i32], n: usize) {
    if n == 0 {
        return;
    }
    let k = a.cols();
    let kq = k.div_ceil(KQ);
    let rows = out_band.len() / n;
    let tiles = n.div_ceil(NR);
    for t in 0..tiles {
        let bt = &quads[t * kq * NR * KQ..(t + 1) * kq * NR * KQ];
        let j0 = t * NR;
        let w = NR.min(n - j0);
        for r in 0..rows {
            let arow = a.row(first_row + r);
            let mut c = [0i32; NR];
            for q in 0..kq {
                let p0 = q * KQ;
                let take = KQ.min(k - p0);
                let aq = &arow[p0..p0 + take];
                let bq = &bt[q * NR * KQ..(q + 1) * NR * KQ];
                for (l, cl) in c.iter_mut().enumerate() {
                    let bl = &bq[l * KQ..l * KQ + take];
                    let mut dot = 0i32;
                    for (&x, &y) in aq.iter().zip(bl) {
                        dot += i32::from(x) * i32::from(y);
                    }
                    *cl += dot;
                }
            }
            out_band[r * n + j0..r * n + j0 + w].copy_from_slice(&c[..w]);
        }
    }
}

/// Direct (pack-free) single-row INT8 GEMV: `out = a.row(0) * b`,
/// streaming `b`'s rows once in axpy order. For `m == 1` the quad pack
/// is `O(k * n)` — the same order as the multiply itself — so packing
/// can never pay for itself; this kernel reads `b` in place instead.
/// Each output element accumulates its `k` products in ascending order
/// from zero, so the result is bit-identical to the naive reference
/// (and to the packed kernels — integer accumulation is exact).
fn gemv_i8_direct(a: &Mat<i8>, b: &Mat<i8>, out: &mut [i32]) {
    let arow = a.row(0);
    for (p, &av) in arow.iter().enumerate() {
        let av = i32::from(av);
        for (o, &bv) in out.iter_mut().zip(b.row(p)) {
            *o += av * i32::from(bv);
        }
    }
}

/// Identity widening for the `f32` dot-product kernel.
#[inline]
pub(crate) fn widen_f32(v: f32) -> f32 {
    v
}

/// `i8 -> i32` widening for the integer dot-product kernel.
#[inline]
pub(crate) fn widen_i8(v: i8) -> i32 {
    i32::from(v)
}

/// Runs the `f32` band kernel over prepacked tiles (scalar only — float
/// SIMD would reassociate sums and break bit-identity; the scalar loop
/// auto-vectorises under `target-cpu=native` within those constraints).
#[inline]
pub(crate) fn run_band_f32(
    a: &Mat<f32>,
    packed: &[f32],
    first_row: usize,
    out_band: &mut [f32],
    n: usize,
) {
    band_f32(a, packed, first_row, out_band, n);
}

/// Runs the INT8 band kernel over the quad-packed layout: the VNNI
/// microkernel from [`crate::simd`] when available/enabled (consuming
/// the precomputed unsigned-offset activations `au`), otherwise the
/// scalar quad kernel. Both are bit-identical, so dispatch only affects
/// speed.
#[inline]
pub(crate) fn run_band_i8q(
    a: &Mat<i8>,
    au: &[u8],
    quads: &[i8],
    colsum: &[i32],
    first_row: usize,
    out_band: &mut [i32],
    n: usize,
) {
    if crate::simd::band_i8q(au, a.cols(), quads, colsum, first_row, out_band, n) {
        return;
    }
    band_i8q(a, quads, first_row, out_band, n);
}

/// Runs the single-row INT8 GEMV over the quad-packed layout: the
/// dedicated VNNI kernel when available/enabled, otherwise the scalar
/// quad kernel restricted to one row. Bit-identical either way.
#[inline]
pub(crate) fn run_gemv_i8q(
    a: &Mat<i8>,
    au: &[u8],
    quads: &[i8],
    colsum: &[i32],
    out: &mut [i32],
    n: usize,
) {
    debug_assert_eq!(a.rows(), 1);
    if crate::simd::gemv_i8q(au, a.cols(), quads, colsum, out, n) {
        return;
    }
    band_i8q(a, quads, 0, out, n);
}

macro_rules! band_kernel_nt {
    ($name:ident, $ta:ty, $to:ty, $zero:expr, $widen:path) => {
        /// Computes `out_band = a[first_row..][..rows] * b^T` by blocked
        /// dot products: `BJ` rows of `b` stay in cache while the band's
        /// `a` rows stream past. Each element uses one accumulator over
        /// ascending `k`, matching the naive reference bit for bit.
        fn $name(a: &Mat<$ta>, b: &Mat<$ta>, first_row: usize, out_band: &mut [$to], n: usize) {
            if n == 0 {
                return;
            }
            let rows = out_band.len() / n;
            let mut j0 = 0;
            while j0 < n {
                let jb = BJ.min(n - j0);
                for r in 0..rows {
                    let arow = a.row(first_row + r);
                    let orow = &mut out_band[r * n + j0..r * n + j0 + jb];
                    for (o, j) in orow.iter_mut().zip(j0..) {
                        let brow = b.row(j);
                        let mut acc = $zero;
                        for (&x, &y) in arow.iter().zip(brow) {
                            acc += $widen(x) * $widen(y);
                        }
                        *o = acc;
                    }
                }
                j0 += jb;
            }
        }
    };
}

band_kernel_nt!(band_nt_f32, f32, f32, 0.0f32, widen_f32);
band_kernel_nt!(band_nt_i8, i8, i32, 0i32, widen_i8);

/// Worker count for an `m x k x n` problem: serial below the cutoff,
/// otherwise [`par::threads`].
pub(crate) fn auto_threads(m: usize, k: usize, n: usize) -> usize {
    if m * k * n <= SERIAL_CUTOFF_MACS {
        1
    } else {
        par::threads()
    }
}

// ---------------------------------------------------------------------------
// Public entry points
// ---------------------------------------------------------------------------

/// `f32` GEMM: returns `a * b`.
///
/// Cache-blocked over packed `B` panels and parallelised over output row
/// bands (see the [module docs](self)); bit-identical to [`matmul_ref`]
/// for any thread count.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use tensor::{Mat, gemm};
/// # fn main() -> Result<(), tensor::ShapeError> {
/// let id = Mat::from_fn(2, 2, |r, c| if r == c { 1.0 } else { 0.0 });
/// let a = Mat::from_fn(2, 2, |r, c| (r * 2 + c) as f32);
/// assert_eq!(gemm::matmul(&a, &id)?, a);
/// # Ok(())
/// # }
/// ```
pub fn matmul(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    matmul_with_threads(a, b, auto_threads(a.rows(), a.cols(), b.cols()))
}

/// [`matmul`] with an explicit worker count (no cutoff, no environment
/// lookup). `threads = 1` runs entirely on the calling thread.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_with_threads(
    a: &Mat<f32>,
    b: &Mat<f32>,
    threads: usize,
) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.cols());
    let mut out = Mat::zeros(m, n);
    let packed = pack_tiles(b, widen_f32);
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        run_band_f32(a, &packed, first_row, band, n);
    });
    Ok(out)
}

/// `f32` GEMM against the transpose of `b`: returns `a * b^T`.
///
/// Avoids materialising the transpose for the attention score computation
/// `Q_i K_i^T`; `b`'s rows already are the contiguous panels of `b^T`.
/// Parallelised over output row bands; bit-identical to
/// [`matmul_nt_ref`] for any thread count.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_nt(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    matmul_nt_with_threads(a, b, auto_threads(a.rows(), a.cols(), b.rows()))
}

/// [`matmul_nt`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_nt_with_threads(
    a: &Mat<f32>,
    b: &Mat<f32>,
    threads: usize,
) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_nt", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = Mat::zeros(m, n);
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        band_nt_f32(a, b, first_row, band, n);
    });
    Ok(out)
}

/// INT8 GEMM with `i32` accumulation: returns `a * b` exactly as an INT8
/// MAC array (the paper's systolic array) would compute it.
///
/// Cache-blocked over packed `B` panels with the widening
/// `i8 x i8 -> i32` microkernel and parallelised over output row bands;
/// integer arithmetic is exact, so the result equals [`matmul_i8_ref`]
/// for any blocking or thread count.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
///
/// # Example
///
/// ```
/// use tensor::{Mat, gemm};
/// # fn main() -> Result<(), tensor::ShapeError> {
/// let a = Mat::from_vec(1, 2, vec![100i8, -100])?;
/// let b = Mat::from_vec(2, 1, vec![100i8, 100])?;
/// assert_eq!(gemm::matmul_i8(&a, &b)?[(0, 0)], 0);
/// # Ok(())
/// # }
/// ```
pub fn matmul_i8(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    matmul_i8_with_threads(a, b, auto_threads(a.rows(), a.cols(), b.cols()))
}

/// [`matmul_i8`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_i8_with_threads(
    a: &Mat<i8>,
    b: &Mat<i8>,
    threads: usize,
) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_i8", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.cols());
    let mut out = Mat::<i32>::zeros(m, n);
    if m == 1 {
        // Packing costs as much as the multiply at m = 1; stream `b`
        // directly. (Repeatedly-multiplied weights go through
        // `crate::prepack`, which amortises the pack and keeps the VNNI
        // GEMV.)
        gemv_i8_direct(a, b, out.as_mut_slice());
        return Ok(out);
    }
    let (quads, colsum) = pack_quads(b);
    let au = if crate::simd::int8_simd_active() {
        offset_rows(a, threads)
    } else {
        Vec::new()
    };
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        run_band_i8q(a, &au, &quads, &colsum, first_row, band, n);
    });
    Ok(out)
}

/// Serial cache-blocked INT8 GEMM — the single-thread configuration of
/// [`matmul_i8`], kept as a distinct entry point so benchmarks can
/// isolate blocking gains from parallel speedup.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_i8_blocked(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    matmul_i8_with_threads(a, b, 1)
        .map_err(|_| ShapeError::new("matmul_i8_blocked", a.shape(), b.shape()))
}

/// INT8 GEMM against the transpose of `b`: returns `a * b^T` with `i32`
/// accumulation.
///
/// Parallelised over output row bands with the widening dot-product
/// kernel; exact, so identical to [`matmul_i8_nt_ref`] for any thread
/// count.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_i8_nt(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    matmul_i8_nt_with_threads(a, b, auto_threads(a.rows(), a.cols(), b.rows()))
}

/// [`matmul_i8_nt`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_i8_nt_with_threads(
    a: &Mat<i8>,
    b: &Mat<i8>,
    threads: usize,
) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_i8_nt", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = Mat::zeros(m, n);
    if crate::simd::int8_simd_active() && m >= 8 {
        // Multi-row `a * b^T` (the chunked-prefill attention scores):
        // transpose-pack `b` into the quad layout once and run the far
        // faster register-tiled GEMM microkernel — the `O(n * k)` pack
        // amortises across the chunk's rows.
        let (quads, colsum) = pack_quads_t(b);
        let au = offset_rows(a, threads);
        par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
            run_band_i8q(a, &au, &quads, &colsum, first_row, band, n);
        });
        return Ok(out);
    }
    if crate::simd::int8_simd_active() {
        // The *_nt VNNI kernel reads `b`'s rows directly (no packing),
        // so it only needs the offset activations plus `b`'s row sums
        // for the unsigned-offset compensation.
        let au = offset_rows(a, threads);
        let rowsum: Vec<i32> = (0..n)
            .map(|j| b.row(j).iter().map(|&v| i32::from(v)).sum())
            .collect();
        par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
            if !crate::simd::band_nt_i8q(&au, a.cols(), b, &rowsum, first_row, band, n) {
                band_nt_i8(a, b, first_row, band, n);
            }
        });
        return Ok(out);
    }
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        band_nt_i8(a, b, first_row, band, n);
    });
    Ok(out)
}

// ---------------------------------------------------------------------------
// Naive reference kernels (oracles for the equivalence tests)
// ---------------------------------------------------------------------------

/// Naive triple-loop `f32` GEMM reference (`ikj` order, no blocking, no
/// threads, no zero skipping). The blocked/parallel [`matmul`] must match
/// this bit for bit.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_ref(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_ref", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            let brow = b.row(p);
            for j in 0..n {
                orow[j] += av * brow[j];
            }
        }
    }
    Ok(out)
}

/// Naive `a * b^T` `f32` reference. See [`matmul_ref`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_nt_ref(a: &Mat<f32>, b: &Mat<f32>) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_nt_ref", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0.0f32;
            for (x, y) in arow.iter().zip(brow) {
                acc += x * y;
            }
            out[(i, j)] = acc;
        }
    }
    Ok(out)
}

/// Naive triple-loop INT8 GEMM reference. See [`matmul_ref`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.rows()`.
pub fn matmul_i8_ref(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.rows() {
        return Err(ShapeError::new("matmul_i8_ref", a.shape(), b.shape()));
    }
    let (m, k) = a.shape();
    let n = b.cols();
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        let orow = out.row_mut(i);
        for (p, &av) in arow.iter().enumerate().take(k) {
            let av = i32::from(av);
            let brow = b.row(p);
            for j in 0..n {
                orow[j] += av * i32::from(brow[j]);
            }
        }
    }
    Ok(out)
}

/// Naive `a * b^T` INT8 reference. See [`matmul_ref`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.cols()`.
pub fn matmul_i8_nt_ref(a: &Mat<i8>, b: &Mat<i8>) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.cols() {
        return Err(ShapeError::new("matmul_i8_nt_ref", a.shape(), b.shape()));
    }
    let (m, n) = (a.rows(), b.rows());
    let mut out = Mat::zeros(m, n);
    for i in 0..m {
        let arow = a.row(i);
        for j in 0..n {
            let brow = b.row(j);
            let mut acc = 0i32;
            for (x, y) in arow.iter().zip(brow) {
                acc += i32::from(*x) * i32::from(*y);
            }
            out[(i, j)] = acc;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_f32(a: &Mat<f32>, b: &Mat<f32>) -> Mat<f32> {
        Mat::from_fn(a.rows(), b.cols(), |i, j| {
            (0..a.cols()).map(|p| a[(i, p)] * b[(p, j)]).sum()
        })
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Mat::from_fn(4, 7, |r, c| (r as f32 - c as f32) * 0.5);
        let b = Mat::from_fn(7, 3, |r, c| (r * c) as f32 * 0.25 - 1.0);
        let got = matmul(&a, &b).unwrap();
        let want = naive_f32(&a, &b);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5, "{g} vs {w}");
        }
    }

    #[test]
    fn matmul_shape_error() {
        let a = Mat::<f32>::zeros(2, 3);
        let b = Mat::<f32>::zeros(2, 3);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_ref(&a, &b).is_err());
        assert!(matmul_with_threads(&a, &b, 4).is_err());
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let a = Mat::from_fn(3, 5, |r, c| (r + 2 * c) as f32);
        let b = Mat::from_fn(4, 5, |r, c| (2 * r + c) as f32 * 0.5);
        let got = matmul_nt(&a, &b).unwrap();
        let want = matmul(&a, &b.transposed()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_i8_exact() {
        let a = Mat::from_vec(2, 2, vec![1i8, -2, 3, 4]).unwrap();
        let b = Mat::from_vec(2, 2, vec![5i8, 6, 7, -8]).unwrap();
        let c = matmul_i8(&a, &b).unwrap();
        assert_eq!(c.as_slice(), &[5 - 14, 6 + 16, 15 + 28, 18 - 32]);
    }

    #[test]
    fn matmul_i8_nt_equals_explicit_transpose() {
        let a = Mat::from_fn(3, 4, |r, c| (r as i8) - (c as i8));
        let b = Mat::from_fn(2, 4, |r, c| (r as i8 * 3) + c as i8);
        let got = matmul_i8_nt(&a, &b).unwrap();
        let want = matmul_i8(&a, &b.transposed()).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn matmul_i8_worst_case_no_overflow() {
        // Deepest reduction in any Table-I config: k = d_ff = 4096.
        let a = Mat::filled(1, 4096, -128i8);
        let b = Mat::filled(4096, 1, -128i8);
        let c = matmul_i8(&a, &b).unwrap();
        assert_eq!(c[(0, 0)], 4096 * 128 * 128);
    }

    #[test]
    fn blocked_i8_gemm_is_bit_identical() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (7, 130, 65),
            (64, 512, 64),
            (3, 64, 200),
        ] {
            let a = crate::init::uniform_i8(&mut rng, m, k);
            let b = crate::init::uniform_i8(&mut rng, k, n);
            let want = matmul_i8_ref(&a, &b).unwrap();
            assert_eq!(matmul_i8_blocked(&a, &b).unwrap(), want, "({m},{k},{n})");
            assert_eq!(matmul_i8(&a, &b).unwrap(), want, "({m},{k},{n})");
        }
    }

    #[test]
    fn blocked_i8_gemm_shape_error() {
        let a = Mat::<i8>::zeros(2, 3);
        let b = Mat::<i8>::zeros(2, 3);
        assert!(matmul_i8_blocked(&a, &b).is_err());
    }

    #[test]
    fn empty_matmul_is_ok() {
        let a = Mat::<f32>::zeros(0, 3);
        let b = Mat::<f32>::zeros(3, 2);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), (0, 2));
        let d = matmul(&Mat::<f32>::zeros(2, 0), &Mat::<f32>::zeros(0, 3)).unwrap();
        assert_eq!(d.shape(), (2, 3));
        assert!(d.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn zero_times_nan_propagates() {
        // The old kernel skipped `a` zeros, silently dropping 0.0 * NaN.
        let a = Mat::from_vec(1, 2, vec![0.0f32, 1.0]).unwrap();
        let b = Mat::from_vec(2, 1, vec![f32::NAN, 2.0]).unwrap();
        assert!(matmul(&a, &b).unwrap()[(0, 0)].is_nan());
        assert!(matmul_ref(&a, &b).unwrap()[(0, 0)].is_nan());
        assert!(matmul_nt(&a, &b.transposed()).unwrap()[(0, 0)].is_nan());
    }

    #[test]
    fn pack_dispatch_matches_scalar() {
        use rand::{rngs::StdRng, Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        // Shapes hitting every edge: ragged tiles, ragged quads, shapes
        // below every SIMD block size, and the real serving shapes.
        for &(k, n) in &[
            (1usize, 1usize),
            (3, 16),
            (7, 130),
            (64, 64),
            (65, 63),
            (513, 64),
            (64, 513),
            (100, 200),
        ] {
            let b = Mat::from_fn(k, n, |_, _| rng.random_range(-127i8..=127));
            let (q_fast, c_fast) = pack_quads(&b);
            let tiles = n.div_ceil(NR);
            let kq = k.div_ceil(KQ);
            let mut q_ref = vec![0i8; tiles * kq * NR * KQ];
            let mut c_ref = vec![0i32; tiles * NR];
            pack_quads_scalar_range(&b, &mut q_ref, &mut c_ref, 0, tiles);
            assert_eq!(q_fast, q_ref, "pack_quads quads ({k},{n})");
            assert_eq!(c_fast, c_ref, "pack_quads colsum ({k},{n})");

            // pack_quads_t parity on the transpose-given (n x k) shape.
            let src = Mat::from_fn(n, k, |_, _| rng.random_range(-127i8..=127));
            let (qt2, ct2) = pack_quads_t(&src);
            let t2 = n.div_ceil(NR);
            let kq2 = k.div_ceil(KQ);
            let mut qt_ref = vec![0i8; t2 * kq2 * NR * KQ];
            let mut ct_ref = vec![0i32; t2 * NR];
            pack_quads_t_scalar_range(&src, &mut qt_ref, &mut ct_ref, 0, t2);
            assert_eq!(qt2, qt_ref, "pack_quads_t quads ({n},{k})");
            assert_eq!(ct2, ct_ref, "pack_quads_t colsum ({n},{k})");
        }
    }

    #[test]
    fn f32_parallel_is_bit_identical_to_ref() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(23);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (5, 129, 67), (64, 512, 64)] {
            let a = crate::init::uniform(&mut rng, m, k, -1.0, 1.0);
            let b = crate::init::uniform(&mut rng, k, n, -1.0, 1.0);
            let want = matmul_ref(&a, &b).unwrap();
            for t in [1usize, 2, 5] {
                let got = matmul_with_threads(&a, &b, t).unwrap();
                assert!(
                    got.as_slice()
                        .iter()
                        .zip(want.as_slice())
                        .all(|(g, w)| g.to_bits() == w.to_bits()),
                    "({m},{k},{n}) t={t}"
                );
            }
        }
    }
}
