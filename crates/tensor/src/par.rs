//! Scoped-thread parallel helpers shared by the GEMM kernels and the
//! higher-level crates (per-head attention fan-out, design-space sweeps).
//!
//! Everything here is built on [`std::thread::scope`] — no external
//! thread-pool dependency — and is **deterministic**: results are
//! assembled in input order, so callers observe the same values for any
//! thread count (including 1).
//!
//! The worker count comes from [`threads`], which honours the
//! `ACCEL_THREADS` environment variable and otherwise falls back to
//! [`std::thread::available_parallelism`].

use std::num::NonZeroUsize;

/// Environment variable overriding the worker-thread count.
///
/// Unset, empty, unparsable, or `0` all mean "use the machine's
/// available parallelism". Values are clamped to [`MAX_THREADS`].
pub const ENV_THREADS: &str = "ACCEL_THREADS";

/// Upper bound on the worker-thread count (a safety clamp for absurd
/// `ACCEL_THREADS` values; spawning is per-call, not pooled).
pub const MAX_THREADS: usize = 256;

/// The worker-thread count used by the parallel kernels.
///
/// Reads [`ENV_THREADS`] on every call (cheap, and lets tests or
/// embedding processes retune without restarting), falling back to
/// [`std::thread::available_parallelism`] when the variable is unset or
/// invalid. Always at least 1.
pub fn threads() -> usize {
    match std::env::var(ENV_THREADS) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(t) if t > 0 => t.min(MAX_THREADS),
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

/// Order-preserving parallel map over a slice.
///
/// Splits `items` into at most [`threads`] contiguous chunks, maps each
/// chunk on its own scoped thread, and concatenates the results in input
/// order — so the output is identical to `items.iter().map(f).collect()`
/// for any thread count. Worker panics propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_threads(items, threads(), f)
}

/// [`par_map`] with an explicit worker count (1 means run inline).
pub fn map_with_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let t = threads.min(items.len()).max(1);
    if t <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(t);
    let mut out = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .map(|part| {
                let f = &f;
                scope.spawn(move || part.iter().map(f).collect::<Vec<U>>())
            })
            .collect();
        for handle in handles {
            out.extend(handle.join().expect("parallel map worker panicked"));
        }
    });
    out
}

/// Runs `body` over disjoint horizontal bands of a row-major buffer.
///
/// `buf` holds `rows` rows of `row_stride` elements each; it is split
/// into at most `threads` contiguous bands and `body(first_row, band)`
/// runs on its own scoped thread per band. With `threads <= 1` (or a
/// degenerate shape) the body runs inline over the whole buffer, so
/// serial and parallel execution touch identical data. Worker panics
/// propagate to the caller.
pub fn row_bands<T, F>(buf: &mut [T], rows: usize, row_stride: usize, threads: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_stride);
    let t = threads.min(rows).max(1);
    if t <= 1 || row_stride == 0 {
        body(0, buf);
        return;
    }
    let band = rows.div_ceil(t);
    std::thread::scope(|scope| {
        for (idx, chunk) in buf.chunks_mut(band * row_stride).enumerate() {
            let body = &body;
            scope.spawn(move || body(idx * band, chunk));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for t in [1, 2, 3, 7, 16] {
            assert_eq!(map_with_threads(&items, t, |x| x * x), serial, "t={t}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(map_with_threads(&empty, 8, |x| *x).is_empty());
        assert_eq!(map_with_threads(&[41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn row_bands_covers_every_row_once() {
        for rows in [1usize, 2, 5, 64] {
            for t in [1usize, 2, 3, 8, 100] {
                let stride = 3;
                let mut buf = vec![0u32; rows * stride];
                row_bands(&mut buf, rows, stride, t, |first_row, band| {
                    for (r, row) in band.chunks_mut(stride).enumerate() {
                        for v in row {
                            *v += (first_row + r) as u32 + 1;
                        }
                    }
                });
                let want: Vec<u32> = (0..rows)
                    .flat_map(|r| std::iter::repeat_n(r as u32 + 1, stride))
                    .collect();
                assert_eq!(buf, want, "rows={rows} t={t}");
            }
        }
    }

    #[test]
    fn row_bands_zero_stride_is_inline() {
        let mut buf: Vec<u8> = Vec::new();
        row_bands(&mut buf, 4, 0, 8, |first_row, band| {
            assert_eq!(first_row, 0);
            assert!(band.is_empty());
        });
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
        assert!(threads() <= MAX_THREADS);
    }
}
