//! Parallel helpers shared by the GEMM kernels and the higher-level
//! crates (per-head attention fan-out, design-space sweeps), backed by a
//! **persistent worker pool**.
//!
//! Earlier revisions spawned fresh [`std::thread::scope`] threads on
//! every parallel GEMM; at decode batch sizes that spawn latency rivals
//! the multiply-accumulate work itself. The pool here is spawned lazily
//! on first use, kept warm for the life of the process, and fed through
//! a channel — mirroring how the paper's accelerator keeps its systolic
//! array powered between passes instead of re-configuring it per GEMM.
//!
//! Everything stays **deterministic**: each task writes to a
//! pre-assigned disjoint output region (or slot), so callers observe the
//! same values for any worker count (including 1) regardless of which
//! thread executes which task in what order. Small problems run inline
//! on the calling thread; nested parallel sections executing *inside* a
//! pool worker also run inline, which both avoids oversubscription and
//! makes pool-worker deadlock impossible (no worker ever blocks on
//! another batch).
//!
//! The worker count comes from [`threads`], which reads the
//! `ACCEL_THREADS` environment variable **once** (cached in a
//! [`OnceLock`] — the old implementation issued a `getenv` syscall per
//! matmul) and otherwise falls back to
//! [`std::thread::available_parallelism`]. Tests and benchmarks that
//! need to vary the count in-process use [`set_thread_override`].

use std::cell::Cell;
use std::collections::VecDeque;
use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex, OnceLock};

/// Environment variable overriding the worker-thread count.
///
/// Unset, empty, unparsable, or `0` all mean "use the machine's
/// available parallelism". Values are clamped to [`MAX_THREADS`]. Read
/// once per process; see [`set_thread_override`] for in-process retuning.
pub use crate::envcfg::ENV_THREADS;

/// Upper bound on the worker-thread count (a safety clamp for absurd
/// `ACCEL_THREADS` values and the pool's maximum size).
pub const MAX_THREADS: usize = 256;

/// In-process override installed by [`set_thread_override`]
/// (`0` = no override).
static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// The `ACCEL_THREADS` / `available_parallelism` resolution, computed on
/// first use — no syscalls on the per-GEMM hot path.
static ENV_RESOLVED: OnceLock<usize> = OnceLock::new();

/// The worker-thread count used by the parallel kernels.
///
/// Resolution order: the in-process override ([`set_thread_override`]),
/// then [`ENV_THREADS`] (parsed once via [`crate::envcfg`] and cached),
/// then [`std::thread::available_parallelism`]. Always in
/// `1..=MAX_THREADS`.
pub fn threads() -> usize {
    let ov = THREAD_OVERRIDE.load(Ordering::Relaxed);
    if ov > 0 {
        return ov.min(MAX_THREADS);
    }
    *ENV_RESOLVED.get_or_init(|| {
        crate::envcfg::threads_raw()
            .map(|t| t.min(MAX_THREADS))
            .unwrap_or_else(default_threads)
    })
}

/// Overrides [`threads`] for this process (`None` restores the cached
/// environment resolution). Intended for tests and benchmarks that pin
/// the worker count — e.g. the pool-determinism suite running the same
/// workload at 1, 2 and 7 workers; production embedders should set
/// `ACCEL_THREADS` before the first parallel call instead.
///
/// The override is global and unsynchronized with concurrently running
/// parallel sections; that is safe here only because every kernel in
/// this crate is bit-identical across thread counts.
pub fn set_thread_override(count: Option<usize>) {
    THREAD_OVERRIDE.store(count.unwrap_or(0), Ordering::Relaxed);
}

fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(MAX_THREADS)
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A type-erased task whose borrows have been extended to `'static` by
/// [`scope_run`] (sound because the dispatching call joins the whole
/// batch before returning).
type Job = Box<dyn FnOnce() + Send>;

/// One dispatched batch of tasks: a shared queue the caller *and* any
/// number of workers drain, a remaining-task counter the caller waits
/// on, and the first captured worker panic (re-thrown at the caller).
struct Batch {
    tasks: Mutex<VecDeque<Job>>,
    remaining: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Batch {
    /// Pops and runs one task; returns `false` when the queue is empty.
    /// Panics are captured (first wins) so the queue always drains and
    /// the counter always reaches zero.
    fn run_next(&self) -> bool {
        let job = { self.tasks.lock().expect("pool batch queue").pop_front() };
        let Some(job) = job else { return false };
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        if let Err(payload) = result {
            let mut slot = self.panic.lock().expect("pool panic slot");
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        let mut rem = self.remaining.lock().expect("pool batch counter");
        *rem -= 1;
        if *rem == 0 {
            self.done.notify_all();
        }
        true
    }
}

/// The process-wide pool: an injector channel of batch handles and the
/// count of workers spawned so far (workers are added lazily up to the
/// parallelism a dispatch asks for, never torn down).
struct Pool {
    injector: Mutex<mpsc::Sender<Arc<Batch>>>,
    shared_rx: Arc<Mutex<mpsc::Receiver<Arc<Batch>>>>,
    spawned: Mutex<usize>,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn pool() -> &'static Pool {
    POOL.get_or_init(|| {
        let (tx, rx) = mpsc::channel();
        Pool {
            injector: Mutex::new(tx),
            shared_rx: Arc::new(Mutex::new(rx)),
            spawned: Mutex::new(0),
        }
    })
}

thread_local! {
    /// Set for the lifetime of every pool worker thread: parallel
    /// sections started *from* a worker run inline (no oversubscription,
    /// no possibility of a worker blocking on another batch).
    static IN_POOL_WORKER: Cell<bool> = const { Cell::new(false) };
}

/// Pins the calling thread to one CPU via `sched_setaffinity(2)`.
///
/// Declared directly against glibc (which `std` already links) rather
/// than through a bindings crate, per the offline-deps policy. Failures
/// are ignored: affinity is a performance hint, never a correctness
/// requirement, and restricted environments (containers with a trimmed
/// cpuset, non-root sandboxes) may reject it.
#[cfg(target_os = "linux")]
#[allow(unsafe_code)]
fn pin_to_core(core: usize) {
    /// Mirrors glibc's fixed 1024-bit `cpu_set_t`.
    #[repr(C)]
    struct CpuSet([u64; 16]);
    extern "C" {
        fn sched_setaffinity(pid: i32, cpusetsize: usize, mask: *const CpuSet) -> i32;
    }
    let mut set = CpuSet([0; 16]);
    let bit = core % (16 * 64);
    set.0[bit / 64] |= 1u64 << (bit % 64);
    // SAFETY: `set` is a valid, initialised cpu_set_t-sized mask and
    // pid 0 means "this thread"; the call reads the mask and touches no
    // other memory.
    unsafe {
        sched_setaffinity(0, std::mem::size_of::<CpuSet>(), &set);
    }
}

#[cfg(not(target_os = "linux"))]
fn pin_to_core(_core: usize) {}

impl Pool {
    /// Ensures at least `want` worker threads exist (clamped to
    /// [`MAX_THREADS`]).
    ///
    /// With the `ACCEL_PIN` opt-in ([`crate::envcfg::pin_enabled`]),
    /// each new worker pins itself to core `index % cores` before
    /// serving batches, so a worker's cache- and NUMA-local pages stay
    /// local across GEMMs instead of following the scheduler around.
    /// The dispatching (caller) thread is never pinned — it belongs to
    /// the embedding application.
    fn ensure_workers(&'static self, want: usize) {
        let want = want.min(MAX_THREADS);
        let mut n = self.spawned.lock().expect("pool spawn counter");
        while *n < want {
            let rx = Arc::clone(&self.shared_rx);
            let index = *n;
            std::thread::Builder::new()
                .name(format!("accel-pool-{n}"))
                .spawn(move || {
                    IN_POOL_WORKER.with(|f| f.set(true));
                    if crate::envcfg::pin_enabled() {
                        pin_to_core(index % default_threads());
                    }
                    loop {
                        let batch = {
                            let guard = rx.lock().expect("pool receiver");
                            guard.recv()
                        };
                        match batch {
                            Ok(batch) => while batch.run_next() {},
                            Err(_) => return,
                        }
                    }
                })
                .expect("spawn pool worker");
            *n += 1;
        }
    }
}

/// Runs every task to completion, fanning out across the persistent
/// pool, and returns only when all of them have finished. Tasks may
/// borrow from the caller's stack; determinism is the *caller's*
/// responsibility (each task must own a disjoint output region —
/// [`row_bands`] and [`map_with_threads`] arrange exactly that).
///
/// Single-task batches and batches dispatched from inside a pool worker
/// run inline, in submission order. The first task panic is re-thrown
/// here after the whole batch has drained.
pub(crate) fn scope_run(tasks: Vec<Box<dyn FnOnce() + Send + '_>>) {
    let n = tasks.len();
    if n == 0 {
        return;
    }
    if n == 1 || IN_POOL_WORKER.with(|f| f.get()) {
        for task in tasks {
            task();
        }
        return;
    }
    // SAFETY: the lifetime of each boxed task is extended to `'static`
    // purely so it can cross the channel; this function does not return
    // until `remaining == 0`, i.e. until every task has been consumed
    // (its captured borrows dead), so no task outlives what it borrows.
    #[allow(unsafe_code)]
    let jobs: VecDeque<Job> =
        tasks
            .into_iter()
            .map(|t| unsafe {
                std::mem::transmute::<
                    Box<dyn FnOnce() + Send + '_>,
                    Box<dyn FnOnce() + Send + 'static>,
                >(t)
            })
            .collect();
    let batch = Arc::new(Batch {
        tasks: Mutex::new(jobs),
        remaining: Mutex::new(n),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });
    let p = pool();
    // The caller drains too, so n-1 workers saturate an n-task batch.
    p.ensure_workers(n - 1);
    {
        let tx = p.injector.lock().expect("pool injector");
        for _ in 0..n - 1 {
            tx.send(Arc::clone(&batch)).expect("pool channel open");
        }
    }
    while batch.run_next() {}
    let mut rem = batch.remaining.lock().expect("pool batch counter");
    while *rem > 0 {
        rem = batch.done.wait(rem).expect("pool batch wait");
    }
    drop(rem);
    let payload = batch.panic.lock().expect("pool panic slot").take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}

// ---------------------------------------------------------------------------
// Public parallel combinators
// ---------------------------------------------------------------------------

/// Order-preserving parallel map over a slice.
///
/// Splits `items` into at most [`threads`] contiguous chunks, maps each
/// chunk on the persistent pool, and concatenates the results in input
/// order — so the output is identical to `items.iter().map(f).collect()`
/// for any thread count. Worker panics propagate to the caller.
pub fn par_map<T, U, F>(items: &[T], f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    map_with_threads(items, threads(), f)
}

/// [`par_map`] with an explicit worker count (1 means run inline).
pub fn map_with_threads<T, U, F>(items: &[T], threads: usize, f: F) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync,
{
    let t = threads.min(items.len()).max(1);
    if t <= 1 {
        return items.iter().map(f).collect();
    }
    let chunk = items.len().div_ceil(t);
    let chunks: Vec<&[T]> = items.chunks(chunk).collect();
    let mut parts: Vec<Option<Vec<U>>> = Vec::new();
    parts.resize_with(chunks.len(), || None);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = chunks
        .iter()
        .zip(parts.iter_mut())
        .map(|(part, slot)| {
            let f = &f;
            Box::new(move || {
                *slot = Some(part.iter().map(f).collect::<Vec<U>>());
            }) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    scope_run(tasks);
    parts
        .into_iter()
        .flat_map(|p| p.expect("pool task completed"))
        .collect()
}

/// Runs `body` over disjoint horizontal bands of a row-major buffer.
///
/// `buf` holds `rows` rows of `row_stride` elements each; it is split
/// into at most `threads` contiguous bands and `body(first_row, band)`
/// runs per band on the persistent pool. With `threads <= 1` (or a
/// degenerate shape) the body runs inline over the whole buffer, so
/// serial and parallel execution touch identical data. Worker panics
/// propagate to the caller.
pub fn row_bands<T, F>(buf: &mut [T], rows: usize, row_stride: usize, threads: usize, body: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    debug_assert_eq!(buf.len(), rows * row_stride);
    let t = threads.min(rows).max(1);
    if t <= 1 || row_stride == 0 {
        body(0, buf);
        return;
    }
    let band = rows.div_ceil(t);
    let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = buf
        .chunks_mut(band * row_stride)
        .enumerate()
        .map(|(idx, chunk)| {
            let body = &body;
            Box::new(move || body(idx * band, chunk)) as Box<dyn FnOnce() + Send + '_>
        })
        .collect();
    scope_run(tasks);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_preserves_order() {
        let items: Vec<u64> = (0..1000).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * x).collect();
        for t in [1, 2, 3, 7, 16] {
            assert_eq!(map_with_threads(&items, t, |x| x * x), serial, "t={t}");
        }
    }

    #[test]
    fn par_map_empty_and_single() {
        let empty: Vec<i32> = Vec::new();
        assert!(map_with_threads(&empty, 8, |x| *x).is_empty());
        assert_eq!(map_with_threads(&[41], 8, |x| x + 1), vec![42]);
    }

    #[test]
    fn row_bands_covers_every_row_once() {
        for rows in [1usize, 2, 5, 64] {
            for t in [1usize, 2, 3, 8, 100] {
                let stride = 3;
                let mut buf = vec![0u32; rows * stride];
                row_bands(&mut buf, rows, stride, t, |first_row, band| {
                    for (r, row) in band.chunks_mut(stride).enumerate() {
                        for v in row {
                            *v += (first_row + r) as u32 + 1;
                        }
                    }
                });
                let want: Vec<u32> = (0..rows)
                    .flat_map(|r| std::iter::repeat_n(r as u32 + 1, stride))
                    .collect();
                assert_eq!(buf, want, "rows={rows} t={t}");
            }
        }
    }

    #[test]
    fn row_bands_zero_stride_is_inline() {
        let mut buf: Vec<u8> = Vec::new();
        row_bands(&mut buf, 4, 0, 8, |first_row, band| {
            assert_eq!(first_row, 0);
            assert!(band.is_empty());
        });
    }

    #[test]
    fn threads_is_positive() {
        assert!(threads() >= 1);
        assert!(threads() <= MAX_THREADS);
    }

    #[test]
    fn thread_override_wins_and_clears() {
        let base = threads();
        set_thread_override(Some(3));
        assert_eq!(threads(), 3);
        set_thread_override(None);
        assert_eq!(threads(), base);
    }

    #[test]
    fn nested_parallel_sections_run_inline_and_agree() {
        let items: Vec<u32> = (0..64).collect();
        let serial: Vec<Vec<u32>> = items
            .iter()
            .map(|&x| (0..8).map(|y| x * 100 + y).collect())
            .collect();
        let nested = map_with_threads(&items, 4, |&x| {
            let inner: Vec<u32> = (0..8).collect();
            map_with_threads(&inner, 4, |&y| x * 100 + y)
        });
        assert_eq!(nested, serial);
    }

    #[test]
    fn worker_panic_propagates_and_pool_survives() {
        let items: Vec<u32> = (0..16).collect();
        let caught = std::panic::catch_unwind(|| {
            map_with_threads(&items, 4, |&x| {
                assert!(x != 9, "poisoned item");
                x
            })
        });
        assert!(caught.is_err(), "worker panic must reach the caller");
        // The pool must stay usable after a panicking batch.
        let ok = map_with_threads(&items, 4, |&x| x + 1);
        assert_eq!(ok, (1..17).collect::<Vec<u32>>());
    }

    #[test]
    fn panicking_band_job_does_not_poison_the_pool() {
        // A band body that panics mid-batch must (a) propagate to the
        // caller, (b) leave the shared queue fully drained, and (c)
        // leave the persistent workers healthy — later band dispatches
        // and maps must produce bit-identical results. This is the
        // regression test for the serving layer's shard isolation,
        // which catches panics on pool threads and keeps going.
        let rows = 16usize;
        let stride = 4usize;
        for round in 0..3 {
            let mut buf = vec![0u32; rows * stride];
            let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                row_bands(&mut buf, rows, stride, 4, |first_row, _band| {
                    assert!(first_row != 8, "poisoned band");
                });
            }));
            assert!(caught.is_err(), "band panic must reach the caller");
            // The pool must come back clean in the same round.
            let mut ok = vec![0u32; rows * stride];
            row_bands(&mut ok, rows, stride, 4, |first_row, band| {
                for (r, row) in band.chunks_mut(stride).enumerate() {
                    row.fill((first_row + r) as u32);
                }
            });
            let want: Vec<u32> = (0..rows)
                .flat_map(|r| std::iter::repeat_n(r as u32, stride))
                .collect();
            assert_eq!(ok, want, "round {round}");
            let items: Vec<u32> = (0..32).collect();
            let serial: Vec<u32> = items.iter().map(|x| x + round).collect();
            assert_eq!(map_with_threads(&items, 4, |x| x + round), serial);
        }
    }

    #[test]
    fn pinned_workers_stay_bit_identical() {
        // Pinning is a performance hint: with the opt-in forced on, the
        // pool must keep producing exactly the serial results. (Workers
        // spawned by earlier tests keep their old affinity; this only
        // exercises the pinned spawn path plus determinism.)
        crate::envcfg::set_pin_override(Some(true));
        let items: Vec<u64> = (0..512).collect();
        let serial: Vec<u64> = items.iter().map(|x| x * 7 + 1).collect();
        assert_eq!(map_with_threads(&items, 4, |x| x * 7 + 1), serial);
        crate::envcfg::set_pin_override(None);
    }

    #[test]
    fn pool_reuses_workers_across_calls() {
        // Many small dispatches should never exceed the pool cap and
        // must keep producing deterministic results.
        for round in 0..50u64 {
            let items: Vec<u64> = (0..32).map(|i| i + round).collect();
            let serial: Vec<u64> = items.iter().map(|x| x * 3).collect();
            assert_eq!(map_with_threads(&items, 5, |x| x * 3), serial);
        }
    }
}
