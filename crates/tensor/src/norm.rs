//! Row-wise layer normalization (Eq. (6) of the paper), shared by every
//! consumer in the workspace: the FP32 reference path, the trainable
//! `LayerNorm` module, and the FP32 calibration replay inside the INT8
//! quantizer all call into this one core so their outputs are
//! bit-identical by construction.

use crate::mat::Mat;

/// The LayerNorm ε used throughout the paper (Eq. (6)).
pub const LAYERNORM_EPS: f32 = 1e-8;

/// Mean and reciprocal standard deviation of one row, using the
/// *population* variance (divisor `row.len()`), matching Ba et al. 2016
/// and Eq. (8).
fn row_moments(row: &[f32], eps: f32) -> (f32, f32) {
    let n = row.len() as f32;
    let mean = row.iter().sum::<f32>() / n;
    let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n;
    (mean, 1.0 / (var + eps).sqrt())
}

/// Row-wise layer normalization with affine parameters (Eq. (6)):
/// `y[i][j] = (x[i][j] - mean_i) / sqrt(var_i + eps) * gamma[j] + beta[j]`.
///
/// `var` is the *population* variance over the row (divisor the row
/// width), matching Ba et al. 2016 and Eq. (8).
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `x.cols()`.
pub fn layernorm_rows(x: &Mat<f32>, gamma: &[f32], beta: &[f32], eps: f32) -> Mat<f32> {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let (rows, cols) = x.shape();
    let mut out = Mat::zeros(rows, cols);
    for r in 0..rows {
        let row = x.row(r);
        let (mean, rstd) = row_moments(row, eps);
        for c in 0..cols {
            out[(r, c)] = (row[c] - mean) * rstd * gamma[c] + beta[c];
        }
    }
    out
}

/// [`layernorm_rows`] that additionally returns the normalized
/// activations `x_hat` and per-row `1/std`, the cache a trainable
/// LayerNorm needs for its backward pass. The output is bit-identical
/// to [`layernorm_rows`]: `x̂ * gamma + beta` associates the same way as
/// the fused expression.
///
/// # Panics
///
/// Panics if `gamma`/`beta` lengths differ from `x.cols()`.
pub fn layernorm_rows_stats(
    x: &Mat<f32>,
    gamma: &[f32],
    beta: &[f32],
    eps: f32,
) -> (Mat<f32>, Mat<f32>, Vec<f32>) {
    assert_eq!(gamma.len(), x.cols(), "gamma length mismatch");
    assert_eq!(beta.len(), x.cols(), "beta length mismatch");
    let (rows, cols) = x.shape();
    let mut out = Mat::zeros(rows, cols);
    let mut xhat = Mat::zeros(rows, cols);
    let mut rstds = Vec::with_capacity(rows);
    for r in 0..rows {
        let row = x.row(r);
        let (mean, rstd) = row_moments(row, eps);
        rstds.push(rstd);
        for c in 0..cols {
            let xh = (row[c] - mean) * rstd;
            xhat[(r, c)] = xh;
            out[(r, c)] = xh * gamma[c] + beta[c];
        }
    }
    (out, xhat, rstds)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows_to_zero_mean_unit_variance() {
        let x = Mat::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        let y = layernorm_rows(&x, &[1.0; 8], &[0.0; 8], LAYERNORM_EPS);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn stats_variant_is_bit_identical_to_fused() {
        let x = Mat::from_fn(3, 5, |r, c| (r as f32 + 1.3) * (c as f32 - 2.7));
        let gamma = [1.0, 2.0, 0.5, -1.0, 0.1];
        let beta = [0.1, -0.2, 0.0, 0.3, 1.0];
        let fused = layernorm_rows(&x, &gamma, &beta, LAYERNORM_EPS);
        let (out, xhat, rstds) = layernorm_rows_stats(&x, &gamma, &beta, LAYERNORM_EPS);
        assert_eq!(fused.as_slice(), out.as_slice());
        assert_eq!(rstds.len(), 3);
        assert_eq!(xhat.shape(), x.shape());
    }

    #[test]
    fn matches_preexisting_inline_loop_bitwise() {
        // Frozen copy of the loop this module replaced (formerly
        // duplicated in transformer::functional and
        // transformer::LayerNorm::forward) — pins the refactor to the
        // exact pre-refactor bits.
        let x = Mat::from_fn(4, 7, |r, c| ((r * 31 + c * 17) % 13) as f32 * 0.37 - 2.0);
        let gamma: Vec<f32> = (0..7).map(|c| 1.0 + 0.1 * c as f32).collect();
        let beta: Vec<f32> = (0..7).map(|c| 0.05 * c as f32 - 0.1).collect();
        let (rows, cols) = x.shape();
        let mut want = Mat::zeros(rows, cols);
        for r in 0..rows {
            let row = x.row(r);
            let mean = row.iter().sum::<f32>() / cols as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
            let rstd = 1.0 / (var + LAYERNORM_EPS).sqrt();
            for c in 0..cols {
                want[(r, c)] = (row[c] - mean) * rstd * gamma[c] + beta[c];
            }
        }
        let got = layernorm_rows(&x, &gamma, &beta, LAYERNORM_EPS);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    #[should_panic(expected = "gamma length mismatch")]
    fn rejects_mismatched_gamma() {
        let x = Mat::zeros(1, 4);
        let _ = layernorm_rows(&x, &[1.0; 3], &[0.0; 4], LAYERNORM_EPS);
    }
}
