//! Explicit SIMD microkernels for the INT8 datapath.
//!
//! The scalar band kernel in [`crate::gemm`] already auto-vectorises
//! reasonably under `-C target-cpu=native`, but the decode hot path
//! (`m ∈ [1, batch]` rows against a prepacked weight panel) leaves
//! enough on the table that this module provides hand-written
//! `std::arch` x86_64 AVX2 kernels:
//!
//! * [`band_i8`] — the `MR x NR` register-tiled GEMM microkernel over
//!   prepacked (`i8 -> i32` widened) `B` tiles, eight 256-bit
//!   accumulators per row quad;
//! * [`gemv_i8`] — a dedicated single-row (`m == 1`) kernel that walks
//!   two packed tiles at once, keeping four independent 256-bit
//!   accumulator chains busy per broadcast of the activation element.
//!
//! Both are **exact** drop-in replacements for the scalar kernels: the
//! lanes use `_mm256_mullo_epi32` / `_mm256_add_epi32`, which are
//! bit-exact `i32` operations, and every output element still
//! accumulates its `k` products in ascending-`k` order — so results are
//! bit-identical to the scalar kernels and the naive references for any
//! input. (There are deliberately no `f32` SIMD kernels: float
//! reassociation would break the bit-identity invariant, and the scalar
//! float path already auto-vectorises.)
//!
//! Dispatch is runtime-gated: [`simd_enabled`] checks AVX2 support via
//! `is_x86_64_feature_detected!` (cached) and honours the
//! [`ENV_FORCE_SCALAR`] environment variable, read once per process,
//! plus an in-process override for tests ([`set_simd_override`]). On
//! non-x86_64 targets the entry points report "not handled" and callers
//! fall back to the scalar kernels.
//!
//! All `unsafe` in the `tensor` crate is confined to this module and the
//! lifetime extension in [`crate::par`]; the rest of the crate remains
//! `#![deny(unsafe_code)]`-clean.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

use crate::Mat;

/// Environment variable forcing the scalar kernels (any non-empty value
/// other than `0`). Useful for debugging and for CI legs that pin the
/// fallback path. Read once per process and cached.
pub const ENV_FORCE_SCALAR: &str = "ACCEL_FORCE_SCALAR";

/// In-process override: 0 = follow env + detection, 1 = force scalar,
/// 2 = force SIMD (still requires hardware support).
static SIMD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

static FORCE_SCALAR_ENV: OnceLock<bool> = OnceLock::new();

fn force_scalar_env() -> bool {
    *FORCE_SCALAR_ENV.get_or_init(|| match std::env::var(ENV_FORCE_SCALAR) {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
        Err(_) => false,
    })
}

#[cfg(target_arch = "x86_64")]
fn avx2_available() -> bool {
    static AVX2: OnceLock<bool> = OnceLock::new();
    *AVX2.get_or_init(|| std::arch::is_x86_feature_detected!("avx2"))
}

#[cfg(not(target_arch = "x86_64"))]
fn avx2_available() -> bool {
    false
}

/// Whether the SIMD kernels will be used for the next INT8 GEMM.
///
/// `true` iff the target is x86_64 with AVX2, [`ENV_FORCE_SCALAR`] is
/// not set, and no in-process override forces scalar. Because SIMD and
/// scalar kernels are bit-identical, this only affects speed.
pub fn simd_enabled() -> bool {
    match SIMD_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => avx2_available(),
        _ => !force_scalar_env() && avx2_available(),
    }
}

/// Overrides SIMD dispatch for this process: `Some(false)` forces the
/// scalar kernels, `Some(true)` requests the SIMD kernels (still subject
/// to hardware support), `None` restores env + runtime detection.
/// Intended for the SIMD-vs-scalar identity tests; safe to flip at any
/// time because both paths produce bit-identical results.
pub fn set_simd_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SIMD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// AVX2 band GEMM over prepacked `B` tiles. Returns `false` (without
/// touching `out_band`) when the SIMD path is unavailable or disabled,
/// in which case the caller must run the scalar kernel.
#[inline]
pub(crate) fn band_i8(
    a: &Mat<i8>,
    packed: &[i32],
    first_row: usize,
    out_band: &mut [i32],
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2 was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::band_i8_avx2(a, packed, first_row, out_band, n);
            }
            return true;
        }
    }
    let _ = (a, packed, first_row, out_band, n);
    false
}

/// AVX2 single-row GEMV over prepacked `B` tiles (`out = arow * B`).
/// Returns `false` (without touching `out`) when the SIMD path is
/// unavailable or disabled.
#[inline]
pub(crate) fn gemv_i8(arow: &[i8], packed: &[i32], n: usize, out: &mut [i32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies AVX2 was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::gemv_i8_avx2(arow, packed, n, out);
            }
            return true;
        }
    }
    let _ = (arow, packed, n, out);
    false
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::gemm::{MR, NR};
    use crate::Mat;
    use std::arch::x86_64::{
        __m256i, _mm256_add_epi32, _mm256_loadu_si256, _mm256_mullo_epi32, _mm256_set1_epi32,
        _mm256_setzero_si256, _mm256_storeu_si256,
    };

    /// Spills two 256-bit accumulators (one `NR = 16` lane tile) into
    /// `out[..w]`.
    ///
    /// # Safety
    ///
    /// Requires AVX2.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    #[inline]
    unsafe fn store_tile(lo: __m256i, hi: __m256i, out: &mut [i32], w: usize) {
        let mut lanes = [0i32; NR];
        _mm256_storeu_si256(lanes.as_mut_ptr().cast(), lo);
        _mm256_storeu_si256(lanes.as_mut_ptr().add(8).cast(), hi);
        out[..w].copy_from_slice(&lanes[..w]);
    }

    /// AVX2 twin of the scalar `band_i8` kernel in [`crate::gemm`]: same
    /// `[tile][p][lane]` packed layout, same `MR`-row register quads,
    /// same ascending-`k` per-element accumulation — the eight `ymm`
    /// accumulators are simply the scalar kernel's `c0..c3[NR]` arrays
    /// held in vector registers, updated with bit-exact `i32` lane ops.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn band_i8_avx2(
        a: &Mat<i8>,
        packed: &[i32],
        first_row: usize,
        out_band: &mut [i32],
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let k = a.cols();
        let rows = out_band.len() / n;
        let tiles = n.div_ceil(NR);
        for t in 0..tiles {
            let bt = &packed[t * k * NR..(t + 1) * k * NR];
            let j0 = t * NR;
            let w = NR.min(n - j0);
            let mut r = 0;
            while r + MR <= rows {
                let (a0, a1, a2, a3) = (
                    a.row(first_row + r),
                    a.row(first_row + r + 1),
                    a.row(first_row + r + 2),
                    a.row(first_row + r + 3),
                );
                let mut c0l = _mm256_setzero_si256();
                let mut c0h = _mm256_setzero_si256();
                let mut c1l = _mm256_setzero_si256();
                let mut c1h = _mm256_setzero_si256();
                let mut c2l = _mm256_setzero_si256();
                let mut c2h = _mm256_setzero_si256();
                let mut c3l = _mm256_setzero_si256();
                let mut c3h = _mm256_setzero_si256();
                for p in 0..k {
                    let bp = bt.as_ptr().add(p * NR);
                    let bl = _mm256_loadu_si256(bp.cast());
                    let bh = _mm256_loadu_si256(bp.add(8).cast());
                    let x0 = _mm256_set1_epi32(i32::from(a0[p]));
                    let x1 = _mm256_set1_epi32(i32::from(a1[p]));
                    let x2 = _mm256_set1_epi32(i32::from(a2[p]));
                    let x3 = _mm256_set1_epi32(i32::from(a3[p]));
                    c0l = _mm256_add_epi32(c0l, _mm256_mullo_epi32(x0, bl));
                    c0h = _mm256_add_epi32(c0h, _mm256_mullo_epi32(x0, bh));
                    c1l = _mm256_add_epi32(c1l, _mm256_mullo_epi32(x1, bl));
                    c1h = _mm256_add_epi32(c1h, _mm256_mullo_epi32(x1, bh));
                    c2l = _mm256_add_epi32(c2l, _mm256_mullo_epi32(x2, bl));
                    c2h = _mm256_add_epi32(c2h, _mm256_mullo_epi32(x2, bh));
                    c3l = _mm256_add_epi32(c3l, _mm256_mullo_epi32(x3, bl));
                    c3h = _mm256_add_epi32(c3h, _mm256_mullo_epi32(x3, bh));
                }
                let quads = [(c0l, c0h), (c1l, c1h), (c2l, c2h), (c3l, c3h)];
                for (q, &(lo, hi)) in quads.iter().enumerate() {
                    let at = (r + q) * n + j0;
                    store_tile(lo, hi, &mut out_band[at..at + w], w);
                }
                r += MR;
            }
            while r < rows {
                let a0 = a.row(first_row + r);
                let mut cl = _mm256_setzero_si256();
                let mut ch = _mm256_setzero_si256();
                for (p, &a0p) in a0.iter().enumerate() {
                    let bp = bt.as_ptr().add(p * NR);
                    let bl = _mm256_loadu_si256(bp.cast());
                    let bh = _mm256_loadu_si256(bp.add(8).cast());
                    let x0 = _mm256_set1_epi32(i32::from(a0p));
                    cl = _mm256_add_epi32(cl, _mm256_mullo_epi32(x0, bl));
                    ch = _mm256_add_epi32(ch, _mm256_mullo_epi32(x0, bh));
                }
                let at = r * n + j0;
                store_tile(cl, ch, &mut out_band[at..at + w], w);
                r += 1;
            }
        }
    }

    /// Dedicated single-row GEMV over prepacked tiles: processes two
    /// tiles per pass so each broadcast activation element feeds four
    /// independent accumulator chains (hiding the `mullo` latency that a
    /// single-tile loop would expose). Per output element the sum is
    /// still ascending-`k`, so the result is bit-identical to the scalar
    /// remainder path of the band kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX2 (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gemv_i8_avx2(arow: &[i8], packed: &[i32], n: usize, out: &mut [i32]) {
        if n == 0 {
            return;
        }
        let k = arow.len();
        let tiles = n.div_ceil(NR);
        let mut t = 0;
        // Tile pairs: 4 independent accumulator chains.
        while t + 2 <= tiles {
            let b0 = &packed[t * k * NR..(t + 1) * k * NR];
            let b1 = &packed[(t + 1) * k * NR..(t + 2) * k * NR];
            let mut c0l = _mm256_setzero_si256();
            let mut c0h = _mm256_setzero_si256();
            let mut c1l = _mm256_setzero_si256();
            let mut c1h = _mm256_setzero_si256();
            for (p, &ap) in arow.iter().enumerate() {
                let x = _mm256_set1_epi32(i32::from(ap));
                let p0 = b0.as_ptr().add(p * NR);
                let p1 = b1.as_ptr().add(p * NR);
                c0l = _mm256_add_epi32(c0l, _mm256_mullo_epi32(x, _mm256_loadu_si256(p0.cast())));
                c0h = _mm256_add_epi32(
                    c0h,
                    _mm256_mullo_epi32(x, _mm256_loadu_si256(p0.add(8).cast())),
                );
                c1l = _mm256_add_epi32(c1l, _mm256_mullo_epi32(x, _mm256_loadu_si256(p1.cast())));
                c1h = _mm256_add_epi32(
                    c1h,
                    _mm256_mullo_epi32(x, _mm256_loadu_si256(p1.add(8).cast())),
                );
            }
            let j0 = t * NR;
            store_tile(c0l, c0h, &mut out[j0..j0 + NR], NR);
            let j1 = (t + 1) * NR;
            let w1 = NR.min(n - j1);
            store_tile(c1l, c1h, &mut out[j1..j1 + w1], w1);
            t += 2;
        }
        if t < tiles {
            let bt = &packed[t * k * NR..(t + 1) * k * NR];
            let mut cl = _mm256_setzero_si256();
            let mut ch = _mm256_setzero_si256();
            for (p, &ap) in arow.iter().enumerate() {
                let x = _mm256_set1_epi32(i32::from(ap));
                let bp = bt.as_ptr().add(p * NR);
                cl = _mm256_add_epi32(cl, _mm256_mullo_epi32(x, _mm256_loadu_si256(bp.cast())));
                ch = _mm256_add_epi32(
                    ch,
                    _mm256_mullo_epi32(x, _mm256_loadu_si256(bp.add(8).cast())),
                );
            }
            let j0 = t * NR;
            let w = NR.min(n - j0);
            store_tile(cl, ch, &mut out[j0..j0 + w], w);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_controls_dispatch() {
        let ambient = simd_enabled();
        set_simd_override(Some(false));
        assert!(!simd_enabled());
        set_simd_override(Some(true));
        // Forcing SIMD on still requires hardware support.
        assert_eq!(simd_enabled(), avx2_available());
        set_simd_override(None);
        assert_eq!(simd_enabled(), ambient);
    }
}
