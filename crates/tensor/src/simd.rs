//! Explicit SIMD microkernels for the INT8 datapath.
//!
//! The scalar quad kernels in [`crate::gemm`] already auto-vectorise
//! reasonably under `-C target-cpu=native`, but the INT8 GEMMs sit on
//! the serving hot path (chunked prefill is one multi-row GEMM per
//! weight matrix per chunk), so this module provides hand-written
//! `std::arch` x86_64 **AVX-512 VNNI** kernels built around
//! `vpdpbusd` — four `u8 x i8` products fused into each `i32` lane per
//! instruction, i.e. 64 multiply-accumulates per 512-bit operation:
//!
//! * [`band_i8q`] — the `MR x NR` register-tiled GEMM microkernel over
//!   the quad-packed `B` tiles ([`crate::gemm::pack_quads`]);
//! * [`gemv_i8q`] — a dedicated single-row (`m == 1`) kernel walking
//!   four packed tiles at once to keep independent accumulator chains
//!   busy;
//! * [`band_nt_i8q`] — the `a * b^T` kernel (attention scores), reading
//!   `b`'s rows directly with 64-byte `vpdpbusd` strides.
//!
//! `vpdpbusd`'s first operand is **unsigned**, so activations are fed
//! as `a + 128` (prepared once per GEMM by
//! [`crate::gemm::offset_rows`]) and the kernels subtract
//! `128 * colsum(B)` afterwards. The compensation is exact in `i32`
//! (worst case `4096 * 255 * 127 + 128 * 4096 * 128 < 2^31`), and
//! integer accumulation is order-independent, so results are
//! **bit-identical** to the scalar quad kernels and the naive
//! references for any input.
//!
//! Dispatch is runtime-gated: [`simd_enabled`] checks AVX-512
//! F/BW/VNNI support via `is_x86_feature_detected!` (cached) and
//! honours the [`ENV_FORCE_SCALAR`] environment variable, read once per
//! process, plus an in-process override for tests
//! ([`set_simd_override`]). On hardware without VNNI (or non-x86_64
//! targets) the entry points report "not handled" and callers fall back
//! to the scalar kernels.
//!
//! All `unsafe` in the `tensor` crate is confined to this module and the
//! lifetime extension in [`crate::par`]; the rest of the crate remains
//! `#![deny(unsafe_code)]`-clean.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Environment variable forcing the scalar kernels (any non-empty value
/// other than `0`). Useful for debugging and for CI legs that pin the
/// fallback path. Read once per process and cached (parsing lives in
/// [`crate::envcfg`]).
pub use crate::envcfg::ENV_FORCE_SCALAR;

/// In-process override: 0 = follow env + detection, 1 = force scalar,
/// 2 = force SIMD (still requires hardware support).
static SIMD_OVERRIDE: AtomicU8 = AtomicU8::new(0);

fn force_scalar_env() -> bool {
    crate::envcfg::force_scalar()
}

#[cfg(target_arch = "x86_64")]
fn vnni_available() -> bool {
    static VNNI: OnceLock<bool> = OnceLock::new();
    *VNNI.get_or_init(|| {
        std::arch::is_x86_feature_detected!("avx512f")
            && std::arch::is_x86_feature_detected!("avx512bw")
            && std::arch::is_x86_feature_detected!("avx512vnni")
    })
}

#[cfg(not(target_arch = "x86_64"))]
fn vnni_available() -> bool {
    false
}

/// Whether the SIMD kernels will be used for the next INT8 GEMM.
///
/// `true` iff the target is x86_64 with AVX-512 VNNI,
/// [`ENV_FORCE_SCALAR`] is not set, and no in-process override forces
/// scalar. Because SIMD and scalar kernels are bit-identical, this only
/// affects speed.
pub fn simd_enabled() -> bool {
    match SIMD_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => vnni_available(),
        _ => !force_scalar_env() && vnni_available(),
    }
}

/// Crate-internal alias for [`simd_enabled`] used by the GEMM entry
/// points to decide whether the unsigned-offset activation copy is
/// worth preparing.
#[inline]
pub(crate) fn int8_simd_active() -> bool {
    simd_enabled()
}

/// Overrides SIMD dispatch for this process: `Some(false)` forces the
/// scalar kernels, `Some(true)` requests the SIMD kernels (still subject
/// to hardware support), `None` restores env + runtime detection.
/// Intended for the SIMD-vs-scalar identity tests; safe to flip at any
/// time because both paths produce bit-identical results.
pub fn set_simd_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    SIMD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// VNNI band GEMM over quad-packed `B` tiles. Returns `false` (without
/// touching `out_band`) when the SIMD path is unavailable or disabled,
/// in which case the caller must run the scalar kernel.
#[inline]
pub(crate) fn band_i8q(
    au: &[u8],
    k: usize,
    quads: &[i8],
    colsum: &[i32],
    first_row: usize,
    out_band: &mut [i32],
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() && !au.is_empty() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::band_i8q_vnni(au, k, quads, colsum, first_row, out_band, n);
            }
            return true;
        }
    }
    let _ = (au, k, quads, colsum, first_row, out_band, n);
    false
}

/// VNNI single-row GEMV over quad-packed `B` tiles (`out = arow * B`).
/// Returns `false` (without touching `out`) when the SIMD path is
/// unavailable or disabled.
#[inline]
pub(crate) fn gemv_i8q(
    au: &[u8],
    k: usize,
    quads: &[i8],
    colsum: &[i32],
    out: &mut [i32],
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() && !au.is_empty() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::gemv_i8q_vnni(au, k, quads, colsum, out, n);
            }
            return true;
        }
    }
    let _ = (au, k, quads, colsum, out, n);
    false
}

/// VNNI `a * b^T` band kernel (`b` rows read directly; `rowsum[j]` is
/// the sum of `b.row(j)` for the unsigned-offset compensation). Returns
/// `false` when the SIMD path is unavailable or disabled.
#[inline]
pub(crate) fn band_nt_i8q(
    au: &[u8],
    k: usize,
    b: &crate::Mat<i8>,
    rowsum: &[i32],
    first_row: usize,
    out_band: &mut [i32],
    n: usize,
) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() && !au.is_empty() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::band_nt_i8q_vnni(au, k, b, rowsum, first_row, out_band, n);
            }
            return true;
        }
    }
    let _ = (au, k, b, rowsum, first_row, out_band, n);
    false
}

/// SIMD fast path for [`crate::gemm::pack_quads`]: packs the whole of
/// `b` into `quads`/`colsum` (which must be zeroed and correctly sized)
/// and returns `true`, or returns `false` without touching them when the
/// SIMD path is unavailable — the caller then runs the scalar pack.
/// Byte-identical to the scalar pack either way.
#[inline]
pub(crate) fn pack_quads_into(b: &crate::Mat<i8>, quads: &mut [i8], colsum: &mut [i32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::pack_quads_vnni(b, quads, colsum);
            }
            return true;
        }
    }
    let _ = (b, quads, colsum);
    false
}

/// SIMD fast path for [`crate::gemm::pack_quads_t`] (same contract as
/// [`pack_quads_into`]): packs the transpose-given `bt` or reports
/// `false` for the scalar fallback.
#[inline]
pub(crate) fn pack_quads_t_into(bt: &crate::Mat<i8>, quads: &mut [i8], colsum: &mut [i32]) -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::pack_quads_t_vnni(bt, quads, colsum);
            }
            return true;
        }
    }
    let _ = (bt, quads, colsum);
    false
}

/// Per-head dot products of one activation row against one cache row:
/// `out[i] = sum_j q[i*d_k + j] * krow[i*d_k + j]` for each head `i`.
///
/// This is the score kernel of the fused decode-attention drain: instead
/// of gathering per-head K panels and dispatching one `1 x ctx` GEMV per
/// head, the caller walks the cache rows once and computes every head's
/// score for that row in a single pass. Integer accumulation is exact
/// and order-independent, so the result is bit-identical to the per-head
/// GEMV path regardless of dispatch.
pub fn head_dots_i8(q: &[i8], krow: &[i8], d_k: usize, out: &mut [i32]) {
    assert_eq!(q.len(), krow.len(), "row widths must match");
    assert_eq!(out.len() * d_k, q.len(), "heads * d_k must cover the row");
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() && d_k > 0 && d_k.is_multiple_of(32) {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::head_dots_i8_vnni(q, krow, d_k, out);
            }
            return;
        }
    }
    for (i, o) in out.iter_mut().enumerate() {
        let base = i * d_k;
        let mut acc = 0i32;
        for j in 0..d_k {
            acc += i32::from(q[base + j]) * i32::from(krow[base + j]);
        }
        *o = acc;
    }
}

/// Probability-weighted accumulation `acc[j] += p * v[j]`.
///
/// The P*V kernel of the fused decode-attention drain: each cache V row
/// is folded into the per-head accumulators as soon as it is visited, so
/// no per-head V panel is ever materialised. `|p * v| <= 127 * 127`
/// fits `i16` exactly and the adds are plain `i32`, so SIMD and scalar
/// are bit-identical. `p == 0` (common after the hardware softmax
/// floors small probabilities) is skipped outright — adding zero is a
/// no-op in integer arithmetic.
pub fn scaled_add_i8(acc: &mut [i32], v: &[i8], p: i8) {
    assert_eq!(acc.len(), v.len(), "accumulator and row must match");
    if p == 0 {
        return;
    }
    #[cfg(target_arch = "x86_64")]
    {
        if simd_enabled() {
            // SAFETY: `simd_enabled` implies VNNI was detected at runtime.
            #[allow(unsafe_code)]
            unsafe {
                x86::scaled_add_i8_avx512(acc, v, p);
            }
            return;
        }
    }
    for (a, &x) in acc.iter_mut().zip(v) {
        *a += i32::from(p) * i32::from(x);
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use crate::gemm::{KQ, MR, NR};
    use crate::Mat;
    use std::arch::x86_64::{
        __m512i, _mm256_loadu_si256, _mm512_add_epi32, _mm512_castsi512_si256,
        _mm512_cvtepi16_epi32, _mm512_cvtepi8_epi16, _mm512_dpbusd_epi32, _mm512_dpwssd_epi32,
        _mm512_extracti64x4_epi64, _mm512_loadu_si512, _mm512_maskz_loadu_epi8, _mm512_mullo_epi16,
        _mm512_reduce_add_epi32, _mm512_set1_epi16, _mm512_set1_epi32, _mm512_set1_epi8,
        _mm512_setzero_si512, _mm512_shuffle_i32x4, _mm512_slli_epi32, _mm512_storeu_si512,
        _mm512_sub_epi32, _mm512_unpackhi_epi16, _mm512_unpackhi_epi32, _mm512_unpackhi_epi64,
        _mm512_unpackhi_epi8, _mm512_unpacklo_epi16, _mm512_unpacklo_epi32, _mm512_unpacklo_epi64,
        _mm512_unpacklo_epi8,
    };

    /// Signed per-head dot products via `vpdpwssd`: both operands are
    /// sign-extended to `i16` lanes (so no unsigned-offset compensation
    /// is needed) and pairs of `i16` products accumulate exactly into
    /// `i32` lanes. Caller guarantees `d_k % 32 == 0`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn head_dots_i8_vnni(q: &[i8], krow: &[i8], d_k: usize, out: &mut [i32]) {
        for (i, o) in out.iter_mut().enumerate() {
            let base = i * d_k;
            let mut acc = _mm512_setzero_si512();
            let mut j = 0;
            while j < d_k {
                let qa = _mm512_cvtepi8_epi16(_mm256_loadu_si256(q.as_ptr().add(base + j).cast()));
                let kb =
                    _mm512_cvtepi8_epi16(_mm256_loadu_si256(krow.as_ptr().add(base + j).cast()));
                acc = _mm512_dpwssd_epi32(acc, qa, kb);
                j += 32;
            }
            *o = _mm512_reduce_add_epi32(acc);
        }
    }

    /// Vectorised `acc[j] += p * v[j]`: 32 `i8` values are sign-extended
    /// to `i16`, multiplied by the broadcast scalar with `vpmullw`
    /// (exact: `|p * v| <= 127 * 127 < 2^15`), sign-extended to `i32`
    /// halves, and added into the accumulators. Scalar tail for the
    /// ragged end.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw")]
    pub(super) unsafe fn scaled_add_i8_avx512(acc: &mut [i32], v: &[i8], p: i8) {
        let pv = _mm512_set1_epi16(i16::from(p));
        let n = acc.len();
        let mut j = 0;
        while j + 32 <= n {
            let x = _mm512_cvtepi8_epi16(_mm256_loadu_si256(v.as_ptr().add(j).cast()));
            let prod = _mm512_mullo_epi16(x, pv);
            let lo = _mm512_cvtepi16_epi32(_mm512_castsi512_si256(prod));
            let hi = _mm512_cvtepi16_epi32(_mm512_extracti64x4_epi64::<1>(prod));
            let a0 = _mm512_loadu_si512(acc.as_ptr().add(j).cast());
            _mm512_storeu_si512(acc.as_mut_ptr().add(j).cast(), _mm512_add_epi32(a0, lo));
            let a1 = _mm512_loadu_si512(acc.as_ptr().add(j + 16).cast());
            _mm512_storeu_si512(
                acc.as_mut_ptr().add(j + 16).cast(),
                _mm512_add_epi32(a1, hi),
            );
            j += 32;
        }
        for t in j..n {
            acc[t] += i32::from(p) * i32::from(v[t]);
        }
    }

    /// Spills one 16-lane `i32` accumulator into `out[..w]`.
    ///
    /// # Safety
    ///
    /// Requires AVX-512F.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn store_tile(acc: __m512i, out: &mut [i32], w: usize) {
        let mut lanes = [0i32; NR];
        _mm512_storeu_si512(lanes.as_mut_ptr().cast(), acc);
        out[..w].copy_from_slice(&lanes[..w]);
    }

    /// Reads activation quad `q` of an offset row as the broadcast
    /// 32-bit group `vpdpbusd` expects.
    ///
    /// # Safety
    ///
    /// `row` must hold at least `(q + 1) * KQ` bytes.
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f")]
    #[inline]
    unsafe fn bcast_quad(row: *const u8, q: usize) -> __m512i {
        _mm512_set1_epi32(row.add(q * KQ).cast::<i32>().read_unaligned())
    }

    /// VNNI twin of the scalar `band_i8q` kernel in [`crate::gemm`]:
    /// same `[tile][kq][lane][4]` quad layout, `MR`-row register quads,
    /// one `vpdpbusd` per row per 64-byte tile load (64 MACs), and the
    /// `128 * colsum` compensation subtracted once per output tile.
    /// Integer accumulation is exact, so the result is bit-identical to
    /// the scalar kernel and the naive reference.
    ///
    /// The main loop walks **two** packed tiles per pass (`MR x 2`
    /// register block, eight independent accumulators). With a single
    /// tile the four `vpdpbusd` chains cap throughput at roughly
    /// `MR / latency` ops per cycle — about 0.8 with the ~5-cycle VNNI
    /// latency — leaving the FMA ports half idle; eight chains nearly
    /// double the sustained MAC rate while each activation broadcast is
    /// shared by both tiles.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn band_i8q_vnni(
        au: &[u8],
        k: usize,
        quads: &[i8],
        colsum: &[i32],
        first_row: usize,
        out_band: &mut [i32],
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let kq = k.div_ceil(KQ);
        let stride = kq * KQ;
        let tile_len = kq * NR * KQ;
        let rows = out_band.len() / n;
        let tiles = n.div_ceil(NR);
        let mut t = 0;
        while t + 2 <= tiles {
            let bt0 = quads.as_ptr().add(t * tile_len);
            let bt1 = quads.as_ptr().add((t + 1) * tile_len);
            let comp0 =
                _mm512_slli_epi32(_mm512_loadu_si512(colsum.as_ptr().add(t * NR).cast()), 7);
            let comp1 = _mm512_slli_epi32(
                _mm512_loadu_si512(colsum.as_ptr().add((t + 1) * NR).cast()),
                7,
            );
            let j0 = t * NR;
            // A paired left tile is never the last, so it is always full
            // width; only the right tile can be ragged.
            let w1 = NR.min(n - j0 - NR);
            let mut r = 0;
            while r + MR <= rows {
                let a0 = au.as_ptr().add((first_row + r) * stride);
                let a1 = au.as_ptr().add((first_row + r + 1) * stride);
                let a2 = au.as_ptr().add((first_row + r + 2) * stride);
                let a3 = au.as_ptr().add((first_row + r + 3) * stride);
                let mut c00 = _mm512_setzero_si512();
                let mut c01 = _mm512_setzero_si512();
                let mut c10 = _mm512_setzero_si512();
                let mut c11 = _mm512_setzero_si512();
                let mut c20 = _mm512_setzero_si512();
                let mut c21 = _mm512_setzero_si512();
                let mut c30 = _mm512_setzero_si512();
                let mut c31 = _mm512_setzero_si512();
                for q in 0..kq {
                    let off = q * NR * KQ;
                    let bv0 = _mm512_loadu_si512(bt0.add(off).cast());
                    let bv1 = _mm512_loadu_si512(bt1.add(off).cast());
                    let x0 = bcast_quad(a0, q);
                    c00 = _mm512_dpbusd_epi32(c00, x0, bv0);
                    c01 = _mm512_dpbusd_epi32(c01, x0, bv1);
                    let x1 = bcast_quad(a1, q);
                    c10 = _mm512_dpbusd_epi32(c10, x1, bv0);
                    c11 = _mm512_dpbusd_epi32(c11, x1, bv1);
                    let x2 = bcast_quad(a2, q);
                    c20 = _mm512_dpbusd_epi32(c20, x2, bv0);
                    c21 = _mm512_dpbusd_epi32(c21, x2, bv1);
                    let x3 = bcast_quad(a3, q);
                    c30 = _mm512_dpbusd_epi32(c30, x3, bv0);
                    c31 = _mm512_dpbusd_epi32(c31, x3, bv1);
                }
                let pairs = [(c00, c01), (c10, c11), (c20, c21), (c30, c31)];
                for (i, (cl, cr)) in pairs.iter().copied().enumerate() {
                    let at = (r + i) * n + j0;
                    store_tile(_mm512_sub_epi32(cl, comp0), &mut out_band[at..at + NR], NR);
                    store_tile(
                        _mm512_sub_epi32(cr, comp1),
                        &mut out_band[at + NR..at + NR + w1],
                        w1,
                    );
                }
                r += MR;
            }
            while r < rows {
                let a0 = au.as_ptr().add((first_row + r) * stride);
                let mut c0 = _mm512_setzero_si512();
                let mut c1 = _mm512_setzero_si512();
                for q in 0..kq {
                    let off = q * NR * KQ;
                    let x0 = bcast_quad(a0, q);
                    c0 = _mm512_dpbusd_epi32(c0, x0, _mm512_loadu_si512(bt0.add(off).cast()));
                    c1 = _mm512_dpbusd_epi32(c1, x0, _mm512_loadu_si512(bt1.add(off).cast()));
                }
                let at = r * n + j0;
                store_tile(_mm512_sub_epi32(c0, comp0), &mut out_band[at..at + NR], NR);
                store_tile(
                    _mm512_sub_epi32(c1, comp1),
                    &mut out_band[at + NR..at + NR + w1],
                    w1,
                );
                r += 1;
            }
            t += 2;
        }
        if t < tiles {
            let bt = quads.as_ptr().add(t * tile_len);
            let comp = _mm512_slli_epi32(_mm512_loadu_si512(colsum.as_ptr().add(t * NR).cast()), 7);
            let j0 = t * NR;
            let w = NR.min(n - j0);
            let mut r = 0;
            while r + MR <= rows {
                let a0 = au.as_ptr().add((first_row + r) * stride);
                let a1 = au.as_ptr().add((first_row + r + 1) * stride);
                let a2 = au.as_ptr().add((first_row + r + 2) * stride);
                let a3 = au.as_ptr().add((first_row + r + 3) * stride);
                let mut c0 = _mm512_setzero_si512();
                let mut c1 = _mm512_setzero_si512();
                let mut c2 = _mm512_setzero_si512();
                let mut c3 = _mm512_setzero_si512();
                for q in 0..kq {
                    let bv = _mm512_loadu_si512(bt.add(q * NR * KQ).cast());
                    c0 = _mm512_dpbusd_epi32(c0, bcast_quad(a0, q), bv);
                    c1 = _mm512_dpbusd_epi32(c1, bcast_quad(a1, q), bv);
                    c2 = _mm512_dpbusd_epi32(c2, bcast_quad(a2, q), bv);
                    c3 = _mm512_dpbusd_epi32(c3, bcast_quad(a3, q), bv);
                }
                for (i, c) in [c0, c1, c2, c3].iter().copied().enumerate() {
                    let at = (r + i) * n + j0;
                    store_tile(_mm512_sub_epi32(c, comp), &mut out_band[at..at + w], w);
                }
                r += MR;
            }
            while r < rows {
                let a0 = au.as_ptr().add((first_row + r) * stride);
                let mut c0 = _mm512_setzero_si512();
                for q in 0..kq {
                    let bv = _mm512_loadu_si512(bt.add(q * NR * KQ).cast());
                    c0 = _mm512_dpbusd_epi32(c0, bcast_quad(a0, q), bv);
                }
                let at = r * n + j0;
                store_tile(_mm512_sub_epi32(c0, comp), &mut out_band[at..at + w], w);
                r += 1;
            }
        }
    }

    /// Dedicated single-row GEMV over quad-packed tiles: walks four
    /// tiles per pass so each broadcast activation quad feeds four
    /// independent `vpdpbusd` chains (the chain latency would otherwise
    /// leave the unit idle — the GEMV is bandwidth-bound on `B` either
    /// way). Bit-identical to the scalar quad kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn gemv_i8q_vnni(
        au: &[u8],
        k: usize,
        quads: &[i8],
        colsum: &[i32],
        out: &mut [i32],
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let kq = k.div_ceil(KQ);
        let tile_len = kq * NR * KQ;
        let tiles = n.div_ceil(NR);
        let arow = au.as_ptr();
        let mut t = 0;
        while t + 4 <= tiles {
            let b0 = quads.as_ptr().add(t * tile_len);
            let b1 = quads.as_ptr().add((t + 1) * tile_len);
            let b2 = quads.as_ptr().add((t + 2) * tile_len);
            let b3 = quads.as_ptr().add((t + 3) * tile_len);
            let mut c0 = _mm512_setzero_si512();
            let mut c1 = _mm512_setzero_si512();
            let mut c2 = _mm512_setzero_si512();
            let mut c3 = _mm512_setzero_si512();
            for q in 0..kq {
                let x = bcast_quad(arow, q);
                let off = q * NR * KQ;
                c0 = _mm512_dpbusd_epi32(c0, x, _mm512_loadu_si512(b0.add(off).cast()));
                c1 = _mm512_dpbusd_epi32(c1, x, _mm512_loadu_si512(b1.add(off).cast()));
                c2 = _mm512_dpbusd_epi32(c2, x, _mm512_loadu_si512(b2.add(off).cast()));
                c3 = _mm512_dpbusd_epi32(c3, x, _mm512_loadu_si512(b3.add(off).cast()));
            }
            for (i, c) in [c0, c1, c2, c3].iter().copied().enumerate() {
                let j0 = (t + i) * NR;
                let w = NR.min(n - j0);
                let comp = _mm512_slli_epi32(
                    _mm512_loadu_si512(colsum.as_ptr().add((t + i) * NR).cast()),
                    7,
                );
                store_tile(_mm512_sub_epi32(c, comp), &mut out[j0..j0 + w], w);
            }
            t += 4;
        }
        while t < tiles {
            let bt = quads.as_ptr().add(t * tile_len);
            let mut c0 = _mm512_setzero_si512();
            for q in 0..kq {
                let bv = _mm512_loadu_si512(bt.add(q * NR * KQ).cast());
                c0 = _mm512_dpbusd_epi32(c0, bcast_quad(arow, q), bv);
            }
            let comp = _mm512_slli_epi32(_mm512_loadu_si512(colsum.as_ptr().add(t * NR).cast()), 7);
            let j0 = t * NR;
            let w = NR.min(n - j0);
            store_tile(_mm512_sub_epi32(c0, comp), &mut out[j0..j0 + w], w);
            t += 1;
        }
    }

    /// VNNI `a * b^T` kernel: each output element is a length-`k` dot
    /// product taken in 64-byte `vpdpbusd` strides over `b`'s contiguous
    /// rows, four `b` rows sharing every activation load. The
    /// `128 * rowsum(b_j)` compensation is subtracted after the lane
    /// reduction. Bit-identical to the scalar `band_nt` kernel.
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn band_nt_i8q_vnni(
        au: &[u8],
        k: usize,
        b: &Mat<i8>,
        rowsum: &[i32],
        first_row: usize,
        out_band: &mut [i32],
        n: usize,
    ) {
        if n == 0 {
            return;
        }
        let kq4 = k.div_ceil(KQ) * KQ;
        let rows = out_band.len() / n;
        let kb = k / 64 * 64;
        let tail = k - kb;
        let tail_mask: u64 = if tail == 0 { 0 } else { (1u64 << tail) - 1 };
        for r in 0..rows {
            let arow = au.as_ptr().add((first_row + r) * kq4);
            let orow = &mut out_band[r * n..(r + 1) * n];
            let mut j = 0;
            while j + 4 <= n {
                let mut c0 = _mm512_setzero_si512();
                let mut c1 = _mm512_setzero_si512();
                let mut c2 = _mm512_setzero_si512();
                let mut c3 = _mm512_setzero_si512();
                let b0 = b.row(j).as_ptr();
                let b1 = b.row(j + 1).as_ptr();
                let b2 = b.row(j + 2).as_ptr();
                let b3 = b.row(j + 3).as_ptr();
                let mut p = 0;
                while p < kb {
                    let av = _mm512_loadu_si512(arow.add(p).cast());
                    c0 = _mm512_dpbusd_epi32(c0, av, _mm512_loadu_si512(b0.add(p).cast()));
                    c1 = _mm512_dpbusd_epi32(c1, av, _mm512_loadu_si512(b1.add(p).cast()));
                    c2 = _mm512_dpbusd_epi32(c2, av, _mm512_loadu_si512(b2.add(p).cast()));
                    c3 = _mm512_dpbusd_epi32(c3, av, _mm512_loadu_si512(b3.add(p).cast()));
                    p += 64;
                }
                if tail != 0 {
                    let av = _mm512_maskz_loadu_epi8(tail_mask, arow.add(p).cast());
                    c0 = _mm512_dpbusd_epi32(
                        c0,
                        av,
                        _mm512_maskz_loadu_epi8(tail_mask, b0.add(p).cast()),
                    );
                    c1 = _mm512_dpbusd_epi32(
                        c1,
                        av,
                        _mm512_maskz_loadu_epi8(tail_mask, b1.add(p).cast()),
                    );
                    c2 = _mm512_dpbusd_epi32(
                        c2,
                        av,
                        _mm512_maskz_loadu_epi8(tail_mask, b2.add(p).cast()),
                    );
                    c3 = _mm512_dpbusd_epi32(
                        c3,
                        av,
                        _mm512_maskz_loadu_epi8(tail_mask, b3.add(p).cast()),
                    );
                }
                orow[j] = _mm512_reduce_add_epi32(c0) - 128 * rowsum[j];
                orow[j + 1] = _mm512_reduce_add_epi32(c1) - 128 * rowsum[j + 1];
                orow[j + 2] = _mm512_reduce_add_epi32(c2) - 128 * rowsum[j + 2];
                orow[j + 3] = _mm512_reduce_add_epi32(c3) - 128 * rowsum[j + 3];
                j += 4;
            }
            while j < n {
                let bj = b.row(j).as_ptr();
                let mut c0 = _mm512_setzero_si512();
                let mut p = 0;
                while p < kb {
                    let av = _mm512_loadu_si512(arow.add(p).cast());
                    c0 = _mm512_dpbusd_epi32(c0, av, _mm512_loadu_si512(bj.add(p).cast()));
                    p += 64;
                }
                if tail != 0 {
                    let av = _mm512_maskz_loadu_epi8(tail_mask, arow.add(p).cast());
                    c0 = _mm512_dpbusd_epi32(
                        c0,
                        av,
                        _mm512_maskz_loadu_epi8(tail_mask, bj.add(p).cast()),
                    );
                }
                orow[j] = _mm512_reduce_add_epi32(c0) - 128 * rowsum[j];
                j += 1;
            }
        }
    }

    /// SIMD [`crate::gemm::pack_quads`]: packs `b` (`k x n`, row-major)
    /// into the `[tile][kq][lane][KQ]` quad layout four tiles at a time.
    ///
    /// One pass loads 64 columns of four adjacent `b` rows (one
    /// reduction quad) as four vectors and byte-interleaves them — the
    /// `epi8`/`epi16` unpacks operate per 128-bit lane, which is exactly
    /// per column tile — then regroups the lanes with `shuffle_i32x4` so
    /// each vector holds one tile's finished 64-byte quad group. Column
    /// sums fall out of a `vpdpbusd` against an all-ones u8 vector on
    /// each finished group (each lane's four bytes land in their own
    /// `i32` lane). Ragged `k` tails and tiles beyond the last full
    /// four-tile group are delegated to the scalar pack, so the result
    /// is byte-identical to [`crate::gemm::pack_quads_scalar_range`].
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn pack_quads_vnni(b: &Mat<i8>, quads: &mut [i8], colsum: &mut [i32]) {
        let (k, n) = b.shape();
        let kq = k.div_ceil(KQ);
        let tile_len = kq * NR * KQ;
        let tiles = n.div_ceil(NR);
        let groups = n / (4 * NR);
        let kfull = k / KQ;
        let ones = _mm512_set1_epi8(1);
        for g in 0..groups {
            let j0 = g * 4 * NR;
            let t0 = g * 4;
            let mut acc = [_mm512_setzero_si512(); 4];
            for q in 0..kfull {
                let r0 = _mm512_loadu_si512(b.row(q * KQ).as_ptr().add(j0).cast());
                let r1 = _mm512_loadu_si512(b.row(q * KQ + 1).as_ptr().add(j0).cast());
                let r2 = _mm512_loadu_si512(b.row(q * KQ + 2).as_ptr().add(j0).cast());
                let r3 = _mm512_loadu_si512(b.row(q * KQ + 3).as_ptr().add(j0).cast());
                // Per 128-bit lane L (tile t0 + L): interleave the four
                // rows' bytes into [col][row] quad order.
                let t01l = _mm512_unpacklo_epi8(r0, r1);
                let t01h = _mm512_unpackhi_epi8(r0, r1);
                let t23l = _mm512_unpacklo_epi8(r2, r3);
                let t23h = _mm512_unpackhi_epi8(r2, r3);
                let u0 = _mm512_unpacklo_epi16(t01l, t23l); // lanes 0-3 of each tile
                let u1 = _mm512_unpackhi_epi16(t01l, t23l); // lanes 4-7
                let u2 = _mm512_unpacklo_epi16(t01h, t23h); // lanes 8-11
                let u3 = _mm512_unpackhi_epi16(t01h, t23h); // lanes 12-15
                                                            // Gather each tile's four 128-bit pieces into one vector.
                let w01l = _mm512_shuffle_i32x4::<0x44>(u0, u1);
                let w23l = _mm512_shuffle_i32x4::<0x44>(u2, u3);
                let w01h = _mm512_shuffle_i32x4::<0xee>(u0, u1);
                let w23h = _mm512_shuffle_i32x4::<0xee>(u2, u3);
                let z = [
                    _mm512_shuffle_i32x4::<0x88>(w01l, w23l),
                    _mm512_shuffle_i32x4::<0xdd>(w01l, w23l),
                    _mm512_shuffle_i32x4::<0x88>(w01h, w23h),
                    _mm512_shuffle_i32x4::<0xdd>(w01h, w23h),
                ];
                for (l, &zv) in z.iter().enumerate() {
                    let dst = quads.as_mut_ptr().add((t0 + l) * tile_len + q * NR * KQ);
                    _mm512_storeu_si512(dst.cast(), zv);
                    acc[l] = _mm512_dpbusd_epi32(acc[l], ones, zv);
                }
            }
            for (l, &a) in acc.iter().enumerate() {
                _mm512_storeu_si512(colsum.as_mut_ptr().add((t0 + l) * NR).cast(), a);
            }
            // Ragged k tail (a final partial reduction quad).
            for p in kfull * KQ..k {
                let brow = &b.row(p)[j0..j0 + 4 * NR];
                let (q, u) = (p / KQ, p % KQ);
                for (l, &v) in brow.iter().enumerate() {
                    let t = t0 + l / NR;
                    let lane = l % NR;
                    quads[t * tile_len + q * NR * KQ + lane * KQ + u] = v;
                    colsum[t * NR + lane] += i32::from(v);
                }
            }
        }
        crate::gemm::pack_quads_scalar_range(b, quads, colsum, groups * 4, tiles);
    }

    /// SIMD [`crate::gemm::pack_quads_t`]: packs a transpose-given `bt`
    /// (`n x k` row-major, the K-cache shape) one full tile at a time.
    ///
    /// Viewed as `u32` elements, a tile's quad layout is exactly the
    /// transpose of the 16-row `u32` matrix formed by the tile's `bt`
    /// rows — so the kernel loads 64 bytes from each of the 16 rows and
    /// runs the classic four-stage AVX-512 16x16 `u32` transpose
    /// (`unpack epi32/epi64`, then two `shuffle_i32x4` rounds), storing
    /// 16 finished quad groups per pass. Column sums come from a
    /// `vpdpbusd` against all-ones on each stored group. Ragged `k`
    /// tails and the last partial tile go through the scalar pack;
    /// byte-identical to [`crate::gemm::pack_quads_t_scalar_range`].
    ///
    /// # Safety
    ///
    /// Requires AVX-512 F/BW/VNNI (callers check [`super::simd_enabled`]).
    #[allow(unsafe_code)]
    #[target_feature(enable = "avx512f,avx512bw,avx512vnni")]
    pub(super) unsafe fn pack_quads_t_vnni(bt: &Mat<i8>, quads: &mut [i8], colsum: &mut [i32]) {
        let (n, k) = bt.shape();
        let kq = k.div_ceil(KQ);
        let tile_len = kq * NR * KQ;
        let tiles = n.div_ceil(NR);
        let full_tiles = n / NR;
        let blocks = k / 64; // 16-quad blocks fully covered by 64-byte loads
        let ones = _mm512_set1_epi8(1);
        for t in 0..full_tiles {
            let j0 = t * NR;
            let tbase = t * tile_len;
            let mut acc = _mm512_setzero_si512();
            for blk in 0..blocks {
                let off = blk * 64;
                let mut r = [_mm512_setzero_si512(); 16];
                for (l, rv) in r.iter_mut().enumerate() {
                    *rv = _mm512_loadu_si512(bt.row(j0 + l).as_ptr().add(off).cast());
                }
                // 16x16 u32 transpose: rows l -> columns (quads).
                let mut s = [_mm512_setzero_si512(); 16];
                for i in 0..8 {
                    s[2 * i] = _mm512_unpacklo_epi32(r[2 * i], r[2 * i + 1]);
                    s[2 * i + 1] = _mm512_unpackhi_epi32(r[2 * i], r[2 * i + 1]);
                }
                let mut u = [_mm512_setzero_si512(); 16];
                for gp in 0..4 {
                    u[4 * gp] = _mm512_unpacklo_epi64(s[4 * gp], s[4 * gp + 2]);
                    u[4 * gp + 1] = _mm512_unpackhi_epi64(s[4 * gp], s[4 * gp + 2]);
                    u[4 * gp + 2] = _mm512_unpacklo_epi64(s[4 * gp + 1], s[4 * gp + 3]);
                    u[4 * gp + 3] = _mm512_unpackhi_epi64(s[4 * gp + 1], s[4 * gp + 3]);
                }
                let mut out = [_mm512_setzero_si512(); 16];
                for c in 0..4 {
                    let p0 = _mm512_shuffle_i32x4::<0x88>(u[c], u[4 + c]);
                    let p1 = _mm512_shuffle_i32x4::<0xdd>(u[c], u[4 + c]);
                    let q0 = _mm512_shuffle_i32x4::<0x88>(u[8 + c], u[12 + c]);
                    let q1 = _mm512_shuffle_i32x4::<0xdd>(u[8 + c], u[12 + c]);
                    out[c] = _mm512_shuffle_i32x4::<0x88>(p0, q0);
                    out[c + 8] = _mm512_shuffle_i32x4::<0xdd>(p0, q0);
                    out[c + 4] = _mm512_shuffle_i32x4::<0x88>(p1, q1);
                    out[c + 12] = _mm512_shuffle_i32x4::<0xdd>(p1, q1);
                }
                for (j, &ov) in out.iter().enumerate() {
                    let dst = quads.as_mut_ptr().add(tbase + (blk * NR + j) * NR * KQ);
                    _mm512_storeu_si512(dst.cast(), ov);
                    acc = _mm512_dpbusd_epi32(acc, ones, ov);
                }
            }
            _mm512_storeu_si512(colsum.as_mut_ptr().add(t * NR).cast(), acc);
            // Ragged k tail: the bytes past the last whole 64-byte block.
            for l in 0..NR {
                let src = bt.row(j0 + l);
                let mut s = 0i32;
                for (p, &v) in src.iter().enumerate().skip(blocks * 64) {
                    let (q, u) = (p / KQ, p % KQ);
                    quads[tbase + q * NR * KQ + l * KQ + u] = v;
                    s += i32::from(v);
                }
                colsum[t * NR + l] += s;
            }
        }
        crate::gemm::pack_quads_t_scalar_range(bt, quads, colsum, full_tiles, tiles);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn override_controls_dispatch() {
        let ambient = simd_enabled();
        set_simd_override(Some(false));
        assert!(!simd_enabled());
        set_simd_override(Some(true));
        // Forcing SIMD on still requires hardware support.
        assert_eq!(simd_enabled(), vnni_available());
        set_simd_override(None);
        assert_eq!(simd_enabled(), ambient);
    }

    /// Deterministic pseudo-random i8 stream for the kernel tests.
    fn i8_stream(seed: u64, len: usize) -> Vec<i8> {
        let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).max(1);
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                (state >> 24) as i8
            })
            .collect()
    }

    #[test]
    fn head_dots_match_scalar_reference() {
        // d_k = 64 exercises the VNNI path on capable hardware; d_k = 16
        // always takes the scalar fallback. Either way the entry point
        // must match the plain nested-loop reference bit for bit.
        for (heads, d_k, seed) in [(8usize, 64usize, 1u64), (4, 16, 2), (2, 96, 3), (1, 32, 4)] {
            let q = i8_stream(seed, heads * d_k);
            let krow = i8_stream(seed + 100, heads * d_k);
            let mut got = vec![0i32; heads];
            head_dots_i8(&q, &krow, d_k, &mut got);
            let want: Vec<i32> = (0..heads)
                .map(|i| {
                    (0..d_k)
                        .map(|j| i32::from(q[i * d_k + j]) * i32::from(krow[i * d_k + j]))
                        .sum()
                })
                .collect();
            assert_eq!(got, want, "heads={heads} d_k={d_k}");
        }
    }

    #[test]
    fn scaled_add_matches_scalar_reference() {
        // Lengths straddle the 32-lane vector width to hit the ragged
        // tail; p covers the skip case (0), the negative extreme, and a
        // typical positive probability code.
        for (len, p, seed) in [
            (64usize, 127i8, 5u64),
            (33, -128, 6),
            (31, 0, 7),
            (100, 3, 8),
        ] {
            let v = i8_stream(seed, len);
            let base: Vec<i32> = i8_stream(seed + 200, len)
                .iter()
                .map(|&x| i32::from(x) << 8)
                .collect();
            let mut got = base.clone();
            scaled_add_i8(&mut got, &v, p);
            let want: Vec<i32> = base
                .iter()
                .zip(&v)
                .map(|(&a, &x)| a + i32::from(p) * i32::from(x))
                .collect();
            assert_eq!(got, want, "len={len} p={p}");
        }
    }
}
