//! Paged block storage for incremental-decoding KV caches.
//!
//! The incremental decoders used to give every session a flat
//! [`Mat`] per layer, reserved to the model's `max_len` up front —
//! worst-case provisioning that caps how many sessions fit in a fixed
//! memory budget. [`KvPool`] replaces that with the classic paged
//! layout: storage is a set of fixed-size **pages** (`page_rows × cols`
//! each), a free list recycles pages across sessions, and every
//! sequence is a [`KvSeq`] *block table* — an ordered list of page
//! indices plus a logical row count. Sessions allocate pages on demand
//! as rows are pushed, shrink across page boundaries on rollback, and
//! release every page copy-free on retirement.
//!
//! **Bit-identity:** a page stores exactly the rows that a flat `Mat`
//! would hold, in the same order; [`KvPool::gather_panel`] copies them
//! out row by row, so any kernel consuming a gathered panel sees the
//! same bytes it would have read from the flat cache. (The attention
//! executors already copy per-head panels out of flat caches, so the
//! gather is cost-neutral — one copy either way.)
//!
//! **Sharing:** pages are reference-counted, so a sequence can be
//! [`KvPool::fork`]ed in O(pages) without copying KV bytes: full pages
//! are shared (refcount bumped), only the partially-filled tail page is
//! copied. Writes go through [`KvPool::push_row`], which copies a
//! shared page before mutating it (copy-on-write), so no write is ever
//! visible through a sibling fork; [`KvPool::truncate`] and
//! [`KvPool::release`] decrement refcounts and recycle a page only when
//! the last holder lets go. This is what the serving layer's
//! shared-prefix cache is built on.
//!
//! The page size is tunable via the `ACCEL_KV_PAGE` environment
//! variable (see [`page_rows_from_env`]); CI runs a tiny-page stress
//! matrix so page-boundary paths are exercised on every change.

use crate::Mat;

/// Default page height (rows per page) when `ACCEL_KV_PAGE` is unset.
pub const DEFAULT_PAGE_ROWS: usize = 16;

/// Reads the page height from the `ACCEL_KV_PAGE` environment variable,
/// falling back to `default`. Parsed on every call (cheap — once per
/// arena construction), so tests and CI matrices can vary it without
/// process-global caching. Parsing lives in [`crate::envcfg`].
pub fn page_rows_from_env(default: usize) -> usize {
    crate::envcfg::kv_page_rows(default)
}

/// A sequence's block table: the ordered pages it owns inside one
/// [`KvPool`], plus its logical row count. Create with [`KvSeq::new`],
/// grow with [`KvPool::push_row`], shrink with [`KvPool::truncate`],
/// and hand back with [`KvPool::release`].
///
/// A `KvSeq` is only meaningful against the pool that grew it; the
/// pool's accessors assert index validity in debug builds.
///
/// Deliberately **not** `Clone`: duplicating a block table without
/// touching the pool's refcounts would alias pages invisibly. Use
/// [`KvPool::fork`] to share a sequence.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct KvSeq {
    pages: Vec<usize>,
    rows: usize,
}

impl KvSeq {
    /// An empty sequence holding no pages.
    pub fn new() -> Self {
        Self::default()
    }

    /// Logical rows pushed so far.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Pages currently held (resident, whether full or partial).
    pub fn pages_held(&self) -> usize {
        self.pages.len()
    }

    /// The pool page indices this sequence holds, in logical order.
    /// Exposed so byte accounting can count a page shared by several
    /// sequences exactly once (dedupe on `(pool, page)` identity).
    pub fn page_ids(&self) -> &[usize] {
        &self.pages
    }
}

/// A shared pool of fixed-size `page_rows × cols` pages with free-list
/// recycling. One pool serves every session and layer of a model side
/// (all caches share `cols = d_model`).
#[derive(Debug, Clone)]
pub struct KvPool<T> {
    page_rows: usize,
    cols: usize,
    pages: Vec<Mat<T>>,
    /// Per-page reference count, parallel to `pages`. `0` means the
    /// page sits on the free list; forking a sequence bumps the count
    /// of every shared page.
    refs: Vec<u32>,
    free: Vec<usize>,
    max_pages: Option<usize>,
}

impl<T: Copy + Default> KvPool<T> {
    /// An unbounded pool of `page_rows × cols` pages.
    ///
    /// # Panics
    ///
    /// Panics if `page_rows` or `cols` is zero.
    pub fn new(page_rows: usize, cols: usize) -> Self {
        assert!(page_rows > 0, "page_rows must be positive");
        assert!(cols > 0, "cols must be positive");
        Self {
            page_rows,
            cols,
            pages: Vec::new(),
            refs: Vec::new(),
            free: Vec::new(),
            max_pages: None,
        }
    }

    /// A pool that refuses to allocate more than `max_pages` pages
    /// (the fixed KV memory budget of a serving host).
    pub fn with_max_pages(page_rows: usize, cols: usize, max_pages: usize) -> Self {
        let mut p = Self::new(page_rows, cols);
        p.max_pages = Some(max_pages);
        p
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.page_rows
    }

    /// Columns per row.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Pages handed out to live sequences.
    pub fn pages_in_use(&self) -> usize {
        self.pages.len() - self.free.len()
    }

    /// Pages on the free list, ready for reuse.
    pub fn pages_free(&self) -> usize {
        self.free.len()
    }

    /// Bytes resident in pages currently held by sequences. Free-listed
    /// pages are excluded — they are reusable capacity, not live KV.
    pub fn bytes_in_use(&self) -> usize {
        self.pages_in_use() * self.page_rows * self.cols * std::mem::size_of::<T>()
    }

    /// Bytes ever allocated (live + free-listed pages) — the pool's
    /// high-water footprint.
    pub fn bytes_allocated(&self) -> usize {
        self.pages.len() * self.page_rows * self.cols * std::mem::size_of::<T>()
    }

    /// Rows of page storage resident for `seq` (its logical rows rounded
    /// up to whole pages).
    pub fn resident_rows(&self, seq: &KvSeq) -> usize {
        seq.pages.len() * self.page_rows
    }

    fn acquire_page(&mut self) -> usize {
        if let Some(i) = self.free.pop() {
            debug_assert_eq!(self.refs[i], 0, "free page {i} still referenced");
            self.refs[i] = 1;
            return i;
        }
        if let Some(max) = self.max_pages {
            assert!(
                self.pages.len() < max,
                "KV pool exhausted: {max} pages allocated and none free"
            );
        }
        self.pages.push(Mat::zeros(self.page_rows, self.cols));
        self.refs.push(1);
        self.pages.len() - 1
    }

    /// Reference count of pool page `page` (`0` = on the free list).
    pub fn page_ref(&self, page: usize) -> u32 {
        self.refs[page]
    }

    /// Ensures `seq`'s page `p` is exclusively owned, copying the first
    /// `valid_rows` rows into a fresh page if it is shared — the
    /// copy-on-write step. Returns the (possibly new) pool page index.
    fn ensure_exclusive(&mut self, seq: &mut KvSeq, p: usize, valid_rows: usize) -> usize {
        let old = seq.pages[p];
        if self.refs[old] <= 1 {
            return old;
        }
        let fresh = self.acquire_page();
        for r in 0..valid_rows {
            let row = self.pages[old].row(r).to_vec();
            self.pages[fresh].row_mut(r).copy_from_slice(&row);
        }
        self.refs[old] -= 1;
        seq.pages[p] = fresh;
        fresh
    }

    /// Appends one row to `seq`, allocating a page on demand when the
    /// sequence's last page is full. If the target page is shared with
    /// a fork, it is copied first (copy-on-write) so the write is never
    /// visible through a sibling sequence.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`, or the pool's page budget
    /// ([`KvPool::with_max_pages`]) is exhausted.
    pub fn push_row(&mut self, seq: &mut KvSeq, row: &[T]) {
        assert_eq!(
            row.len(),
            self.cols,
            "push_row width {} != cols {}",
            row.len(),
            self.cols
        );
        if seq.rows == seq.pages.len() * self.page_rows {
            let page = self.acquire_page();
            seq.pages.push(page);
        }
        let p = seq.rows / self.page_rows;
        let r = seq.rows % self.page_rows;
        let page = self.ensure_exclusive(seq, p, r);
        self.pages[page].row_mut(r).copy_from_slice(row);
        seq.rows += 1;
    }

    /// Forks `seq`: the returned sequence sees exactly the same logical
    /// rows, sharing every full page with the parent (refcount bump, no
    /// copy) and copying only the partially-filled tail page. O(pages)
    /// plus at most one page copy, regardless of sequence length.
    ///
    /// Parent and child are symmetric afterwards: either may push,
    /// truncate, or release independently; writes to shared pages go
    /// through copy-on-write in [`KvPool::push_row`].
    pub fn fork(&mut self, seq: &KvSeq) -> KvSeq {
        let full = seq.rows / self.page_rows;
        let tail_rows = seq.rows % self.page_rows;
        let mut pages = Vec::with_capacity(seq.pages.len());
        for &p in &seq.pages[..full] {
            self.refs[p] += 1;
            pages.push(p);
        }
        if tail_rows > 0 {
            let src = seq.pages[full];
            let fresh = self.acquire_page();
            for r in 0..tail_rows {
                let row = self.pages[src].row(r).to_vec();
                self.pages[fresh].row_mut(r).copy_from_slice(&row);
            }
            pages.push(fresh);
        }
        KvSeq {
            pages,
            rows: seq.rows,
        }
    }

    /// Borrow of `seq`'s logical row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r >= seq.rows()`.
    pub fn row<'a>(&'a self, seq: &KvSeq, r: usize) -> &'a [T] {
        assert!(r < seq.rows, "row {r} out of bounds ({})", seq.rows);
        self.pages[seq.pages[r / self.page_rows]].row(r % self.page_rows)
    }

    /// Copies `seq`'s rows, columns `c0 .. c0 + width`, into a dense
    /// matrix — the paged equivalent of `Mat::submatrix` over a flat
    /// cache, and bit-identical to it (same values, same order).
    ///
    /// # Panics
    ///
    /// Panics if the column range exceeds the pool width.
    pub fn gather_panel(&self, seq: &KvSeq, c0: usize, width: usize) -> Mat<T> {
        assert!(
            c0 + width <= self.cols,
            "panel {c0}..{} exceeds cols {}",
            c0 + width,
            self.cols
        );
        let mut out = Mat::zeros(seq.rows, width);
        for r in 0..seq.rows {
            let src = self.row(seq, r);
            out.row_mut(r).copy_from_slice(&src[c0..c0 + width]);
        }
        out
    }

    /// Copies all of `seq`'s rows into a dense `rows × cols` matrix.
    pub fn to_mat(&self, seq: &KvSeq) -> Mat<T> {
        self.gather_panel(seq, 0, self.cols)
    }

    /// Shrinks `seq` to its first `rows` rows, dropping this sequence's
    /// reference on now-unused trailing pages; a page is recycled to
    /// the free list only when the last referencing sequence lets go.
    /// Works across page boundaries — truncating from row 17 to row 15
    /// with 16-row pages drops the second page — which is what the
    /// serving layer's rollback-and-recompute relies on. Truncation
    /// never writes page contents, so rolling back into a shared page
    /// is safe: the subsequent re-push copies-on-write.
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the sequence's current row count.
    pub fn truncate(&mut self, seq: &mut KvSeq, rows: usize) {
        assert!(
            rows <= seq.rows,
            "truncate {rows} exceeds current rows {}",
            seq.rows
        );
        seq.rows = rows;
        let needed = rows.div_ceil(self.page_rows);
        while seq.pages.len() > needed {
            let page = seq.pages.pop().expect("len checked");
            debug_assert!(self.refs[page] > 0, "page {page} double-freed");
            self.refs[page] -= 1;
            if self.refs[page] == 0 {
                self.free.push(page);
            }
        }
    }

    /// Drops every page reference `seq` holds, recycling pages whose
    /// last reference this was (copy-free — the page contents are left
    /// in place and overwritten by the next owner).
    pub fn release(&mut self, seq: &mut KvSeq) {
        self.truncate(seq, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(pool: &mut KvPool<i8>, seq: &mut KvSeq, n: usize, base: i8) {
        for i in 0..n {
            let row = vec![base.wrapping_add(i as i8); pool.cols()];
            pool.push_row(seq, &row);
        }
    }

    #[test]
    fn rows_round_trip_across_pages() {
        let mut pool = KvPool::<i8>::new(4, 3);
        let mut seq = KvSeq::new();
        fill(&mut pool, &mut seq, 10, 1);
        assert_eq!(seq.rows(), 10);
        assert_eq!(seq.pages_held(), 3);
        assert_eq!(pool.resident_rows(&seq), 12);
        for r in 0..10 {
            assert_eq!(pool.row(&seq, r), vec![1 + r as i8; 3].as_slice());
        }
    }

    #[test]
    fn gather_panel_matches_flat_submatrix() {
        let mut pool = KvPool::<i8>::new(3, 8);
        let mut seq = KvSeq::new();
        let mut flat = Mat::zeros(0, 8);
        for r in 0..7 {
            let row: Vec<i8> = (0..8).map(|c| (r * 8 + c) as i8).collect();
            pool.push_row(&mut seq, &row);
            flat.push_row(&row);
        }
        for (c0, w) in [(0usize, 8usize), (2, 4), (6, 2)] {
            assert_eq!(
                pool.gather_panel(&seq, c0, w),
                flat.submatrix(0, c0, 7, w).unwrap()
            );
        }
        assert_eq!(pool.to_mat(&seq), flat);
    }

    #[test]
    fn truncate_frees_pages_across_boundaries() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut seq = KvSeq::new();
        fill(&mut pool, &mut seq, 9, 0); // 3 pages
        pool.truncate(&mut seq, 4); // exactly one page's worth
        assert_eq!(seq.pages_held(), 1);
        assert_eq!(pool.pages_free(), 2);
        // Rollback one row below a boundary from above it.
        fill(&mut pool, &mut seq, 1, 50); // row 4 -> second page
        assert_eq!(seq.pages_held(), 2);
        pool.truncate(&mut seq, 3);
        assert_eq!(seq.pages_held(), 1);
        assert_eq!(pool.row(&seq, 2), &[2, 2]);
    }

    #[test]
    fn release_recycles_pages_to_other_sequences() {
        let mut pool = KvPool::<i8>::new(2, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 6, 1);
        let held = pool.pages_in_use();
        pool.release(&mut a);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(a.rows(), 0);
        let mut b = KvSeq::new();
        fill(&mut pool, &mut b, 6, 9);
        // No fresh allocation was needed.
        assert_eq!(pool.pages_in_use(), held);
        assert_eq!(pool.pages_free(), 0);
        assert_eq!(pool.row(&b, 5), &[14, 14]);
    }

    #[test]
    fn bytes_accounting_tracks_live_pages_only() {
        let mut pool = KvPool::<f32>::new(4, 8);
        assert_eq!(pool.bytes_in_use(), 0);
        let mut seq = KvSeq::new();
        pool.push_row(&mut seq, &[0.0; 8]);
        assert_eq!(pool.bytes_in_use(), 4 * 8 * 4);
        pool.release(&mut seq);
        assert_eq!(pool.bytes_in_use(), 0);
        assert_eq!(pool.bytes_allocated(), 4 * 8 * 4);
    }

    #[test]
    #[should_panic(expected = "KV pool exhausted")]
    fn page_budget_is_enforced() {
        let mut pool = KvPool::<i8>::with_max_pages(2, 2, 1);
        let mut seq = KvSeq::new();
        fill(&mut pool, &mut seq, 3, 0);
    }

    #[test]
    #[should_panic(expected = "push_row width")]
    fn wrong_width_rejected() {
        let mut pool = KvPool::<i8>::new(2, 3);
        let mut seq = KvSeq::new();
        pool.push_row(&mut seq, &[1, 2]);
    }

    #[test]
    fn fork_shares_full_pages_and_copies_tail() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 10, 1); // 2 full pages + 2-row tail
        let used_before = pool.pages_in_use();
        let b = pool.fork(&a);
        // Only the tail page is duplicated.
        assert_eq!(pool.pages_in_use(), used_before + 1);
        assert_eq!(b.rows(), 10);
        assert_eq!(a.page_ids()[..2], b.page_ids()[..2]);
        assert_ne!(a.page_ids()[2], b.page_ids()[2]);
        assert_eq!(pool.page_ref(a.page_ids()[0]), 2);
        assert_eq!(pool.to_mat(&a), pool.to_mat(&b));
    }

    #[test]
    fn fork_of_page_aligned_seq_copies_nothing() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 8, 1);
        let used = pool.pages_in_use();
        let b = pool.fork(&a);
        assert_eq!(pool.pages_in_use(), used);
        assert_eq!(pool.to_mat(&a), pool.to_mat(&b));
    }

    #[test]
    fn writes_after_fork_are_isolated() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 10, 1);
        let mut b = pool.fork(&a);
        let snap_a = pool.to_mat(&a);
        fill(&mut pool, &mut b, 3, 100); // grows b's private tail
        assert_eq!(pool.to_mat(&a), snap_a);
        assert_eq!(b.rows(), 13);
        assert_eq!(pool.row(&b, 10), &[100, 100]);
    }

    #[test]
    fn rollback_into_shared_page_cows_on_repush() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 8, 1); // two full pages
        let mut b = pool.fork(&a); // both pages shared
        assert_eq!(pool.page_ref(a.page_ids()[1]), 2);
        // Roll b back below the page boundary, into the shared page...
        pool.truncate(&mut b, 6);
        let snap_a = pool.to_mat(&a);
        // ...then re-push: the shared page must be copied, not mutated.
        fill(&mut pool, &mut b, 2, 50);
        assert_eq!(pool.to_mat(&a), snap_a, "write leaked through fork");
        assert_eq!(pool.row(&b, 5), &[6, 6]);
        assert_eq!(pool.row(&b, 6), &[50, 50]);
        assert_eq!(pool.page_ref(a.page_ids()[1]), 1);
    }

    #[test]
    fn release_recycles_only_at_refcount_zero() {
        let mut pool = KvPool::<i8>::new(4, 2);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 8, 1);
        let mut b = pool.fork(&a);
        pool.release(&mut a);
        // b still holds both pages; nothing recycled yet.
        assert_eq!(pool.pages_free(), 0);
        assert_eq!(pool.row(&b, 7), &[8, 8]);
        pool.release(&mut b);
        assert_eq!(pool.pages_in_use(), 0);
        assert_eq!(pool.pages_free(), 2);
    }

    #[test]
    fn shared_pages_counted_once_in_bytes_in_use() {
        let mut pool = KvPool::<i8>::new(4, 8);
        let mut a = KvSeq::new();
        fill(&mut pool, &mut a, 8, 1); // 2 pages = 64 bytes
        assert_eq!(pool.bytes_in_use(), 64);
        let _b = pool.fork(&a);
        // Fully page-aligned fork: zero extra bytes.
        assert_eq!(pool.bytes_in_use(), 64);
    }

    #[test]
    fn env_page_rows_parsing() {
        // Only exercises the fallback path (the variable is not set in
        // the test environment unless the CI page-stress matrix sets it,
        // in which case the parsed value must be positive).
        let v = page_rows_from_env(16);
        assert!(v > 0);
        match std::env::var("ACCEL_KV_PAGE") {
            Ok(s) => assert_eq!(v, s.trim().parse::<usize>().unwrap_or(16).max(1)),
            Err(_) => assert_eq!(v, 16),
        }
    }
}
