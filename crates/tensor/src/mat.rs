use std::fmt;
use std::ops::{Index, IndexMut};

use serde::{Deserialize, Serialize};

use crate::ShapeError;

/// An owned, row-major, two-dimensional array.
///
/// `Mat` is deliberately simple: contiguous storage, shape carried at
/// runtime, and shape-checked fallible operations. It is the common
/// currency between the floating-point reference model, the INT8
/// quantized datapath and the cycle-level accelerator simulator.
///
/// # Example
///
/// ```
/// use tensor::Mat;
///
/// let m = Mat::from_fn(2, 2, |r, c| (r + c) as i32);
/// assert_eq!(m[(1, 1)], 2);
/// assert_eq!(m.row(0), &[0, 1]);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat<T> {
    rows: usize,
    cols: usize,
    data: Vec<T>,
}

impl<T: Copy + Default> Mat<T> {
    /// Creates a `rows x cols` matrix filled with `T::default()`.
    ///
    /// # Example
    ///
    /// ```
    /// let z = tensor::Mat::<f32>::zeros(3, 4);
    /// assert_eq!(z.shape(), (3, 4));
    /// assert_eq!(z[(2, 3)], 0.0);
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![T::default(); rows * cols],
        }
    }

    /// Creates a matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: T) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a generator called as `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> T) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Returns a copy of column `c` as a `Vec`.
    ///
    /// # Panics
    ///
    /// Panics if `c >= self.cols()`.
    pub fn col(&self, c: usize) -> Vec<T> {
        assert!(c < self.cols, "column {c} out of bounds ({})", self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Returns the transpose as a new matrix.
    pub fn transposed(&self) -> Self {
        Mat::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Copies the rectangle starting at (`r0`, `c0`) with shape
    /// `rows x cols` into a new matrix.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if the rectangle does not fit.
    pub fn submatrix(
        &self,
        r0: usize,
        c0: usize,
        rows: usize,
        cols: usize,
    ) -> Result<Self, ShapeError> {
        if r0 + rows > self.rows || c0 + cols > self.cols {
            return Err(ShapeError::new(
                "submatrix",
                (self.rows, self.cols),
                (r0 + rows, c0 + cols),
            ));
        }
        Ok(Mat::from_fn(rows, cols, |r, c| self[(r0 + r, c0 + c)]))
    }

    /// Splits the matrix into consecutive column panels of width
    /// `panel_cols`; the final panel may be narrower if the width does not
    /// divide evenly.
    ///
    /// This is the primitive behind the paper's Fig. 4 weight partitioning.
    pub fn col_panels(&self, panel_cols: usize) -> Vec<Self> {
        assert!(panel_cols > 0, "panel width must be positive");
        let mut out = Vec::new();
        let mut c0 = 0;
        while c0 < self.cols {
            let w = panel_cols.min(self.cols - c0);
            out.push(
                self.submatrix(0, c0, self.rows, w)
                    .expect("panel must be in range"),
            );
            c0 += w;
        }
        out
    }

    /// Concatenates matrices left-to-right. All inputs must share a row
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `parts` is empty or row counts differ.
    pub fn hconcat(parts: &[Self]) -> Result<Self, ShapeError> {
        let first = parts
            .first()
            .ok_or(ShapeError::new("hconcat", (0, 0), (0, 0)))?;
        let rows = first.rows;
        let mut cols = 0;
        for p in parts {
            if p.rows != rows {
                return Err(ShapeError::new("hconcat", (rows, first.cols), p.shape()));
            }
            cols += p.cols;
        }
        let mut out = Mat::zeros(rows, cols);
        let mut c0 = 0;
        for p in parts {
            for r in 0..rows {
                for c in 0..p.cols {
                    out[(r, c0 + c)] = p[(r, c)];
                }
            }
            c0 += p.cols;
        }
        Ok(out)
    }

    /// Concatenates matrices top-to-bottom. All inputs must share a column
    /// count.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `parts` is empty or column counts differ.
    pub fn vconcat(parts: &[Self]) -> Result<Self, ShapeError> {
        let first = parts
            .first()
            .ok_or(ShapeError::new("vconcat", (0, 0), (0, 0)))?;
        let cols = first.cols;
        let mut rows = 0;
        for p in parts {
            if p.cols != cols {
                return Err(ShapeError::new("vconcat", (first.rows, cols), p.shape()));
            }
            rows += p.rows;
        }
        let mut out = Mat::zeros(rows, cols);
        let mut r0 = 0;
        for p in parts {
            for r in 0..p.rows {
                out.row_mut(r0 + r).copy_from_slice(p.row(r));
            }
            r0 += p.rows;
        }
        Ok(out)
    }

    /// Appends one row in place (amortized O(cols) — the backing `Vec`
    /// grows geometrically, unlike rebuilding through [`Mat::vconcat`]).
    /// The KV caches of the incremental decoders push one row per token
    /// through this.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != cols`.
    pub fn push_row(&mut self, row: &[T]) {
        assert_eq!(
            row.len(),
            self.cols,
            "push_row width {} != cols {}",
            row.len(),
            self.cols
        );
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// Drops every row past the first `rows`, keeping the backing
    /// capacity — the inverse of [`Mat::push_row`]. The serving layer's
    /// retry-with-recompute policy truncates each KV cache by one row to
    /// roll a decode step back before re-running it.
    ///
    /// # Panics
    ///
    /// Panics if `rows` exceeds the current row count.
    pub fn truncate_rows(&mut self, rows: usize) {
        assert!(
            rows <= self.rows,
            "truncate_rows {rows} exceeds current rows {}",
            self.rows
        );
        self.data.truncate(rows * self.cols);
        self.rows = rows;
    }

    /// Reserves backing storage for at least `additional` more rows, so
    /// subsequent [`Mat::push_row`] calls up to that count never
    /// reallocate. The incremental decoders reserve `max_len` rows per
    /// KV cache at session creation instead of growing geometrically
    /// token by token.
    pub fn reserve_rows(&mut self, additional: usize) {
        self.data.reserve(additional * self.cols);
    }

    /// Number of rows the backing storage can hold without reallocating
    /// (equals [`Mat::rows`] rounded up to the current capacity).
    pub fn row_capacity(&self) -> usize {
        self.data
            .capacity()
            .checked_div(self.cols)
            .unwrap_or(usize::MAX)
    }

    /// Returns a copy zero-padded (with `T::default()`) to `rows x cols`.
    ///
    /// # Panics
    ///
    /// Panics if the target shape is smaller than the current shape.
    pub fn padded(&self, rows: usize, cols: usize) -> Self {
        assert!(
            rows >= self.rows && cols >= self.cols,
            "padded target {rows}x{cols} smaller than {}x{}",
            self.rows,
            self.cols
        );
        let mut out = Mat::zeros(rows, cols);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(r, c)] = self[(r, c)];
            }
        }
        out
    }
}

impl<T> Mat<T> {
    /// Creates a matrix from a row-major `Vec`.
    ///
    /// # Errors
    ///
    /// Returns [`ShapeError`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Result<Self, ShapeError> {
        if data.len() != rows * cols {
            return Err(ShapeError::new("from_vec", (rows, cols), (data.len(), 1)));
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row(&self, r: usize) -> &[T] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.rows()`.
    pub fn row_mut(&mut self, r: usize) -> &mut [T] {
        assert!(r < self.rows, "row {r} out of bounds ({})", self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row-major view of the whole backing storage.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Mutable row-major view of the whole backing storage.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }

    /// Consumes the matrix, returning the backing `Vec` in row-major order.
    pub fn into_vec(self) -> Vec<T> {
        self.data
    }

    /// Iterates over rows as slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[T]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Applies `f` elementwise, producing a new matrix.
    pub fn map<U>(&self, f: impl FnMut(&T) -> U) -> Mat<U> {
        Mat {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(f).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn apply(&mut self, mut f: impl FnMut(&mut T)) {
        for v in &mut self.data {
            f(v);
        }
    }
}

impl<T> Index<(usize, usize)> for Mat<T> {
    type Output = T;

    fn index(&self, (r, c): (usize, usize)) -> &T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl<T> IndexMut<(usize, usize)> for Mat<T> {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut T {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<T: fmt::Debug> fmt::Debug for Mat<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Mat {}x{} [", self.rows, self.cols)?;
        const MAX_SHOWN: usize = 8;
        for r in 0..self.rows.min(MAX_SHOWN) {
            write!(f, "  ")?;
            for c in 0..self.cols.min(MAX_SHOWN) {
                write!(f, "{:?} ", self.data[r * self.cols + c])?;
            }
            if self.cols > MAX_SHOWN {
                write!(f, "...")?;
            }
            writeln!(f)?;
        }
        if self.rows > MAX_SHOWN {
            writeln!(f, "  ...")?;
        }
        write!(f, "]")
    }
}

impl<T: Copy + Default> Default for Mat<T> {
    fn default() -> Self {
        Mat::zeros(0, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_row_matches_vconcat() {
        let mut grown = Mat::<i8>::zeros(0, 3);
        let mut parts: Vec<Mat<i8>> = Vec::new();
        for r in 0..5i8 {
            let row = Mat::from_vec(1, 3, vec![r, r + 1, r + 2]).unwrap();
            grown.push_row(row.row(0));
            parts.push(row);
        }
        assert_eq!(grown, Mat::vconcat(&parts).unwrap());
        assert_eq!(grown.shape(), (5, 3));
    }

    #[test]
    fn reserve_rows_prevents_push_row_reallocation() {
        let mut m = Mat::<i8>::zeros(0, 4);
        m.reserve_rows(16);
        assert!(m.row_capacity() >= 16);
        let before = m.row_capacity();
        for r in 0..16i8 {
            m.push_row(&[r, r, r, r]);
        }
        assert_eq!(m.row_capacity(), before, "push_row must not reallocate");
        assert_eq!(m.rows(), 16);
    }

    #[test]
    #[should_panic(expected = "push_row width")]
    fn push_row_rejects_wrong_width() {
        let mut m = Mat::<i8>::zeros(0, 3);
        m.push_row(&[1, 2]);
    }

    #[test]
    fn zeros_and_shape() {
        let m = Mat::<f32>::zeros(3, 5);
        assert_eq!(m.shape(), (3, 5));
        assert_eq!(m.len(), 15);
        assert!(!m.is_empty());
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn from_fn_layout_is_row_major() {
        let m = Mat::from_fn(2, 3, |r, c| r * 10 + c);
        assert_eq!(m.as_slice(), &[0, 1, 2, 10, 11, 12]);
        assert_eq!(m[(1, 2)], 12);
    }

    #[test]
    fn from_vec_rejects_bad_len() {
        assert!(Mat::from_vec(2, 2, vec![1, 2, 3]).is_err());
        assert!(Mat::from_vec(2, 2, vec![1, 2, 3, 4]).is_ok());
    }

    #[test]
    fn transpose_involution() {
        let m = Mat::from_fn(3, 4, |r, c| (r * 4 + c) as i32);
        assert_eq!(m.transposed().transposed(), m);
        assert_eq!(m.transposed()[(2, 1)], m[(1, 2)]);
    }

    #[test]
    fn row_and_col_access() {
        let m = Mat::from_fn(2, 3, |r, c| (r * 3 + c) as i32);
        assert_eq!(m.row(1), &[3, 4, 5]);
        assert_eq!(m.col(2), vec![2, 5]);
    }

    #[test]
    fn submatrix_extracts_rectangle() {
        let m = Mat::from_fn(4, 4, |r, c| (r * 4 + c) as i32);
        let s = m.submatrix(1, 2, 2, 2).unwrap();
        assert_eq!(s.as_slice(), &[6, 7, 10, 11]);
        assert!(m.submatrix(3, 3, 2, 2).is_err());
    }

    #[test]
    fn col_panels_cover_matrix() {
        let m = Mat::from_fn(2, 10, |r, c| (r * 10 + c) as i32);
        let panels = m.col_panels(4);
        assert_eq!(panels.len(), 3);
        assert_eq!(panels[0].cols(), 4);
        assert_eq!(panels[2].cols(), 2);
        let back = Mat::hconcat(&panels).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn hconcat_checks_rows() {
        let a = Mat::<i32>::zeros(2, 2);
        let b = Mat::<i32>::zeros(3, 2);
        assert!(Mat::hconcat(&[a, b]).is_err());
        assert!(Mat::<i32>::hconcat(&[]).is_err());
    }

    #[test]
    fn vconcat_stacks() {
        let a = Mat::from_fn(1, 3, |_, c| c as i32);
        let b = Mat::from_fn(2, 3, |r, c| 10 + (r * 3 + c) as i32);
        let v = Mat::vconcat(&[a, b]).unwrap();
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v.row(0), &[0, 1, 2]);
        assert_eq!(v.row(2), &[13, 14, 15]);
    }

    #[test]
    fn padded_adds_zeros() {
        let m = Mat::from_fn(2, 2, |r, c| (r + c) as i32 + 1);
        let p = m.padded(3, 4);
        assert_eq!(p.shape(), (3, 4));
        assert_eq!(p[(0, 0)], 1);
        assert_eq!(p[(2, 3)], 0);
    }

    #[test]
    #[should_panic(expected = "smaller")]
    fn padded_panics_when_shrinking() {
        Mat::<i32>::zeros(3, 3).padded(2, 4);
    }

    #[test]
    fn map_and_apply() {
        let m = Mat::from_fn(2, 2, |r, c| (r * 2 + c) as i32);
        let d = m.map(|&x| x * 2);
        assert_eq!(d.as_slice(), &[0, 2, 4, 6]);
        let mut m2 = m.clone();
        m2.apply(|x| *x += 1);
        assert_eq!(m2.as_slice(), &[1, 2, 3, 4]);
    }

    #[test]
    fn rows_iter_yields_each_row() {
        let m = Mat::from_fn(3, 2, |r, c| (r * 2 + c) as i32);
        let rows: Vec<&[i32]> = m.rows_iter().collect();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[2], &[4, 5]);
    }

    #[test]
    fn debug_is_nonempty() {
        let m = Mat::<i32>::zeros(0, 0);
        assert!(!format!("{m:?}").is_empty());
    }

    #[test]
    fn mat_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Mat<f32>>();
        assert_send_sync::<Mat<i8>>();
    }
}
