//! Prepacked weight matrices — the software analogue of the paper's
//! on-chip weight residency.
//!
//! The accelerator keeps each weight matrix resident next to the
//! systolic array and streams only activations through it. The software
//! GEMM in [`crate::gemm`] instead re-packs `B` on **every call**; for
//! the batch-1 decode hot path (`m = 1`, `k = d_model`) that packing is
//! `O(k * n)` work — the same order as the multiply-accumulate itself,
//! i.e. roughly half of every decode GEMM was spent re-deriving a
//! layout that never changes.
//!
//! [`PackedF32`] captures the `f32` `pack_tiles` layout once and
//! [`PackedI8`] the INT8 quad layout ([`crate::gemm::pack_quads`]:
//! `[tile][kq][lane][KQ]` `i8` quads plus the per-lane column sums the
//! VNNI microkernel's unsigned-offset compensation needs). Storing the
//! INT8 pack as `i8` rather than widened `i32` also matters for decode
//! throughput on its own: the GEMV is memory-bound on the weight
//! stream, and the quad layout moves 1x the weight bytes per token
//! instead of 4x.
//!
//! The [`matmul_prepacked`] / [`matmul_i8_prepacked`] entry points run
//! the identical band kernels (including the VNNI microkernels from
//! [`crate::simd`] and the dedicated `m == 1` GEMV) straight from the
//! cached tiles. Results are **bit-identical** to
//! [`crate::gemm::matmul`] / [`crate::gemm::matmul_i8`] and the naive
//! references for any shape and thread count, because the packed layout
//! and the per-element accumulation order are exactly the same — only
//! the packing work moves from per-call to per-weight-lifetime.
//!
//! `quantized::QLinear` packs eagerly at construction (its weights are
//! immutable); `transformer::Linear` caches lazily and invalidates when
//! the optimiser mutates the weights.

use crate::gemm;
use crate::{par, Mat, ShapeError};
use serde::{Deserialize, Serialize};

/// A `k x n` matrix frozen in the register-microkernel's packed-tile
/// layout (`[tile][p][lane]`, `NR` lanes per tile, last tile
/// zero-padded). Build once per weight matrix via
/// [`PackedMat::from_f32`]; multiply via [`matmul_prepacked`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedMat<T> {
    /// Tiles in `[tile][p][lane]` order, `tiles * k * NR` elements.
    packed: Vec<T>,
    /// Reduction depth (rows of the original `B`).
    k: usize,
    /// Output width (columns of the original `B`).
    n: usize,
}

/// Prepacked `f32` weight matrix.
pub type PackedF32 = PackedMat<f32>;

impl<T> PackedMat<T> {
    /// Reduction depth — the `a.cols()` this packed matrix multiplies
    /// against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width — columns of the product.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// Below this many weight elements the one-time pack runs serially —
/// splitting a small pack across the pool costs more in dispatch than
/// the byte moves it saves.
const PARALLEL_PACK_CUTOFF: usize = 1 << 15;

impl PackedMat<f32> {
    /// Packs an `f32` weight matrix once, in the exact layout
    /// [`crate::gemm::matmul`] builds per call.
    ///
    /// Large matrices pack in parallel across the persistent pool
    /// ([`Self::from_f32_with_threads`]): each worker writes — and
    /// therefore **first-touches** — a contiguous range of column
    /// tiles, so the packed pages are faulted in by (and stay local to)
    /// the workers that stream them in the band loop, instead of all
    /// landing on the packing thread's node. The packed bytes are
    /// identical either way.
    pub fn from_f32(b: &Mat<f32>) -> Self {
        Self::from_f32_with_threads(b, par::threads())
    }

    /// [`Self::from_f32`] with an explicit worker count.
    pub fn from_f32_with_threads(b: &Mat<f32>, threads: usize) -> Self {
        let (k, n) = b.shape();
        let tiles = n.div_ceil(gemm::NR);
        let t = threads.min(tiles).max(1);
        if t <= 1 || k * n < PARALLEL_PACK_CUTOFF {
            return Self {
                packed: gemm::pack_tiles(b, gemm::widen_f32),
                k,
                n,
            };
        }
        let stride = k * gemm::NR;
        let mut packed = vec![0f32; tiles * stride];
        par::row_bands(&mut packed, tiles, stride, t, |t0, chunk| {
            gemm::pack_tiles_f32_range(b, chunk, t0, t0 + chunk.len() / stride);
        });
        Self { packed, k, n }
    }
}

/// An INT8 `k x n` weight matrix frozen in the quad-packed layout the
/// INT8 kernels consume (`[tile][kq][lane][KQ]` `i8` quads, see
/// [`crate::gemm::pack_quads`]), together with the per-`(tile, lane)`
/// column sums used by the VNNI unsigned-offset compensation. Build
/// once per weight matrix via [`PackedI8::from_i8`]; multiply via
/// [`matmul_i8_prepacked`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedI8 {
    /// Quad tiles in `[tile][kq][lane][KQ]` order.
    quads: Vec<i8>,
    /// `tiles * NR` column sums (zero for padded lanes).
    colsum: Vec<i32>,
    /// Reduction depth (rows of the original `B`).
    k: usize,
    /// Output width (columns of the original `B`).
    n: usize,
}

impl PackedI8 {
    /// Packs an INT8 weight matrix once into the quad layout
    /// [`crate::gemm::matmul_i8`] builds per call.
    ///
    /// Large matrices pack in parallel across the persistent pool with
    /// per-worker first-touch of the tile ranges (see
    /// [`PackedMat::from_f32`]); the packed bytes are identical either
    /// way.
    pub fn from_i8(b: &Mat<i8>) -> Self {
        Self::from_i8_with_threads(b, par::threads())
    }

    /// [`Self::from_i8`] with an explicit worker count.
    pub fn from_i8_with_threads(b: &Mat<i8>, threads: usize) -> Self {
        let (k, n) = b.shape();
        let tiles = n.div_ceil(gemm::NR);
        let t = threads.min(tiles).max(1);
        if t <= 1 || k * n < PARALLEL_PACK_CUTOFF {
            let (quads, colsum) = gemm::pack_quads(b);
            return Self {
                quads,
                colsum,
                k,
                n,
            };
        }
        let qstride = k.div_ceil(gemm::KQ) * gemm::NR * gemm::KQ;
        let mut quads = vec![0i8; tiles * qstride];
        let mut colsum = vec![0i32; tiles * gemm::NR];
        let tile_chunk = tiles.div_ceil(t);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = quads
            .chunks_mut(tile_chunk * qstride)
            .zip(colsum.chunks_mut(tile_chunk * gemm::NR))
            .enumerate()
            .map(|(idx, (qc, cc))| {
                let t0 = idx * tile_chunk;
                Box::new(move || {
                    gemm::pack_quads_range(b, qc, cc, t0, t0 + cc.len() / gemm::NR);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        par::scope_run(tasks);
        Self {
            quads,
            colsum,
            k,
            n,
        }
    }

    /// Reduction depth — the `a.cols()` this packed matrix multiplies
    /// against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width — columns of the product.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `f32` GEMM against a prepacked `B`: returns `a * B`, bit-identical to
/// [`crate::gemm::matmul`] on the original matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked(a: &Mat<f32>, b: &PackedMat<f32>) -> Result<Mat<f32>, ShapeError> {
    matmul_prepacked_with_threads(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n))
}

/// [`matmul_prepacked`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked_with_threads(
    a: &Mat<f32>,
    b: &PackedMat<f32>,
    threads: usize,
) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.k {
        return Err(ShapeError::new("matmul_prepacked", a.shape(), (b.k, b.n)));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::zeros(m, n);
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        gemm::run_band_f32(a, &b.packed, first_row, band, n);
    });
    Ok(out)
}

/// INT8 GEMM against a prepacked `B`: returns `a * B` with `i32`
/// accumulation, bit-identical to [`crate::gemm::matmul_i8`] on the
/// original matrix. Single-row inputs (`m == 1`, the batch-1 decode
/// shape) take the dedicated GEMV kernel.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked(a: &Mat<i8>, b: &PackedI8) -> Result<Mat<i32>, ShapeError> {
    matmul_i8_prepacked_with_threads(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n))
}

/// [`matmul_i8_prepacked`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked_with_threads(
    a: &Mat<i8>,
    b: &PackedI8,
    threads: usize,
) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.k {
        return Err(ShapeError::new(
            "matmul_i8_prepacked",
            a.shape(),
            (b.k, b.n),
        ));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::<i32>::zeros(m, n);
    let au = if crate::simd::int8_simd_active() {
        gemm::offset_rows(a, threads)
    } else {
        Vec::new()
    };
    if m == 1 {
        gemm::run_gemv_i8q(a, &au, &b.quads, &b.colsum, out.as_mut_slice(), n);
        return Ok(out);
    }
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        gemm::run_band_i8q(a, &au, &b.quads, &b.colsum, first_row, band, n);
    });
    Ok(out)
}

/// [`matmul_prepacked_epilogue`] with the same automatic worker count
/// as [`matmul_prepacked`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked_fused<F>(
    a: &Mat<f32>,
    b: &PackedMat<f32>,
    epi: F,
) -> Result<Mat<f32>, ShapeError>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    matmul_prepacked_epilogue(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n), epi)
}

/// [`matmul_i8_prepacked_epilogue`] with the same automatic worker
/// count as [`matmul_i8_prepacked`].
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked_fused<O, F>(
    a: &Mat<i8>,
    b: &PackedI8,
    epi: F,
) -> Result<Mat<O>, ShapeError>
where
    O: Copy + Default + Send,
    F: Fn(usize, &[i32], &mut [O]) + Sync,
{
    matmul_i8_prepacked_epilogue(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n), epi)
}

/// `f32` GEMM against a prepacked `B` with a **fused epilogue**: after a
/// band's rows are computed, `epi(global_row, row)` rewrites each row in
/// place while it is still cache-hot — bias add, ReLU, residual add —
/// instead of a second full pass over a materialized intermediate.
///
/// The accumulator values handed to `epi` are bit-identical to
/// [`matmul_prepacked_with_threads`] output, and `epi` runs over rows in
/// ascending order within each band, so any per-element epilogue that
/// matches the unfused op sequence element-for-element yields
/// bit-identical results to the unfused pipeline.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked_epilogue<F>(
    a: &Mat<f32>,
    b: &PackedMat<f32>,
    threads: usize,
    epi: F,
) -> Result<Mat<f32>, ShapeError>
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    if a.cols() != b.k {
        return Err(ShapeError::new("matmul_prepacked", a.shape(), (b.k, b.n)));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::zeros(m, n);
    if n == 0 {
        return Ok(out);
    }
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        gemm::run_band_f32(a, &b.packed, first_row, band, n);
        for (r, row) in band.chunks_mut(n).enumerate() {
            epi(first_row + r, row);
        }
    });
    Ok(out)
}

/// INT8 GEMM against a prepacked `B` with a **fused epilogue** draining
/// the `i32` accumulators directly into the output element type: each
/// band accumulates into a band-local `i32` scratch (one row for the
/// `m == 1` decode GEMV) and `epi(global_row, acc_row, out_row)` drains
/// every row — bias add, requantize, ReLU, residual add — while the
/// accumulators are still in cache. The full-tensor `i32` intermediate
/// of the unfused path is never materialized.
///
/// The accumulator rows handed to `epi` are bit-identical to
/// [`matmul_i8_prepacked_with_threads`] output (integer accumulation,
/// same kernels), so any per-element epilogue matching the unfused op
/// sequence yields bit-identical results to the unfused pipeline.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked_epilogue<O, F>(
    a: &Mat<i8>,
    b: &PackedI8,
    threads: usize,
    epi: F,
) -> Result<Mat<O>, ShapeError>
where
    O: Copy + Default + Send,
    F: Fn(usize, &[i32], &mut [O]) + Sync,
{
    if a.cols() != b.k {
        return Err(ShapeError::new(
            "matmul_i8_prepacked",
            a.shape(),
            (b.k, b.n),
        ));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::<O>::zeros(m, n);
    if n == 0 {
        return Ok(out);
    }
    let au = if crate::simd::int8_simd_active() {
        gemm::offset_rows(a, threads)
    } else {
        Vec::new()
    };
    if m == 1 {
        let mut acc = vec![0i32; n];
        gemm::run_gemv_i8q(a, &au, &b.quads, &b.colsum, &mut acc, n);
        epi(0, &acc, out.as_mut_slice());
        return Ok(out);
    }
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        let rows = band.len() / n;
        let mut acc = vec![0i32; rows * n];
        gemm::run_band_i8q(a, &au, &b.quads, &b.colsum, first_row, &mut acc, n);
        for (r, (acc_row, out_row)) in acc.chunks(n).zip(band.chunks_mut(n)).enumerate() {
            epi(first_row + r, acc_row, out_row);
        }
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepacked_matches_unpacked_f32() {
        let a = Mat::from_fn(5, 33, |r, c| (r as f32 - c as f32) * 0.37);
        let b = Mat::from_fn(33, 20, |r, c| (r * c) as f32 * 0.11 - 1.5);
        let packed = PackedMat::from_f32(&b);
        assert_eq!(packed.k(), 33);
        assert_eq!(packed.n(), 20);
        let got = matmul_prepacked(&a, &packed).unwrap();
        let want = gemm::matmul(&a, &b).unwrap();
        assert!(got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .all(|(g, w)| g.to_bits() == w.to_bits()));
    }

    #[test]
    fn prepacked_matches_unpacked_i8_incl_gemv() {
        for m in [1usize, 2, 7] {
            let a = Mat::from_fn(m, 40, |r, c| ((r * 31 + c * 7) % 255) as i8);
            let b = Mat::from_fn(40, 23, |r, c| ((r * 13 + c * 5) % 251) as i8);
            let packed = PackedI8::from_i8(&b);
            assert_eq!(packed.k(), 40);
            assert_eq!(packed.n(), 23);
            let got = matmul_i8_prepacked(&a, &packed).unwrap();
            assert_eq!(got, gemm::matmul_i8(&a, &b).unwrap(), "m={m}");
        }
    }

    #[test]
    fn prepacked_shape_errors() {
        let packed = PackedI8::from_i8(&Mat::<i8>::zeros(4, 4));
        assert!(matmul_i8_prepacked(&Mat::<i8>::zeros(2, 3), &packed).is_err());
        let packed_f = PackedMat::from_f32(&Mat::<f32>::zeros(4, 4));
        assert!(matmul_prepacked(&Mat::<f32>::zeros(2, 3), &packed_f).is_err());
    }

    #[test]
    fn parallel_pack_bytes_match_serial() {
        // Both packers must produce identical packed bytes regardless of
        // worker count (the parallel path is the first-touch pack).
        let bf = Mat::from_fn(96, 384, |r, c| (r as f32 * 0.3 - c as f32 * 0.1).sin());
        let bi = Mat::from_fn(96, 384, |r, c| ((r * 17 + c * 3) % 253) as i8);
        let serial_f = PackedMat::from_f32_with_threads(&bf, 1);
        let serial_i = PackedI8::from_i8_with_threads(&bi, 1);
        for t in [2, 3, 8] {
            assert_eq!(PackedMat::from_f32_with_threads(&bf, t), serial_f, "t={t}");
            assert_eq!(PackedI8::from_i8_with_threads(&bi, t), serial_i, "t={t}");
        }
    }

    #[test]
    fn f32_epilogue_matches_separate_pass() {
        let a = Mat::from_fn(6, 40, |r, c| (r as f32 - c as f32) * 0.21);
        let b = Mat::from_fn(40, 33, |r, c| (r * c) as f32 * 0.07 - 0.9);
        let bias: Vec<f32> = (0..33).map(|c| c as f32 * 0.05 - 0.4).collect();
        let packed = PackedMat::from_f32(&b);
        for t in [1usize, 2, 4] {
            let fused = matmul_prepacked_epilogue(&a, &packed, t, |_r, row| {
                for (v, &bc) in row.iter_mut().zip(&bias) {
                    *v = (*v + bc).max(0.0);
                }
            })
            .unwrap();
            let mut want = matmul_prepacked_with_threads(&a, &packed, t).unwrap();
            for r in 0..want.rows() {
                for c in 0..want.cols() {
                    want[(r, c)] = (want[(r, c)] + bias[c]).max(0.0);
                }
            }
            assert_eq!(
                fused
                    .as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                want.as_slice()
                    .iter()
                    .map(|v| v.to_bits())
                    .collect::<Vec<_>>(),
                "t={t}"
            );
        }
    }

    #[test]
    fn i8_epilogue_matches_separate_pass_incl_gemv() {
        for m in [1usize, 2, 9] {
            let a = Mat::from_fn(m, 36, |r, c| ((r * 29 + c * 11) % 255) as i8);
            let b = Mat::from_fn(36, 21, |r, c| ((r * 7 + c * 13) % 251) as i8);
            let packed = PackedI8::from_i8(&b);
            // Epilogue: add a row-dependent bias, halve with truncation,
            // saturate into i8 — stand-in for bias + requantize + ReLU.
            let fused: Mat<i8> = matmul_i8_prepacked_epilogue(&a, &packed, 3, |r, acc, out| {
                for (o, &v) in out.iter_mut().zip(acc) {
                    *o = ((v + r as i32) / 2).clamp(-127, 127) as i8;
                }
            })
            .unwrap();
            let raw = matmul_i8_prepacked_with_threads(&a, &packed, 3).unwrap();
            let want = Mat::from_fn(m, 21, |r, c| {
                ((raw[(r, c)] + r as i32) / 2).clamp(-127, 127) as i8
            });
            assert_eq!(fused, want, "m={m}");
        }
    }

    #[test]
    fn packed_mat_serde_round_trips() {
        let b = Mat::from_fn(6, 9, |r, c| (r as i8) - 2 * (c as i8));
        let packed = PackedI8::from_i8(&b);
        let json = serde_json::to_string(&packed).unwrap();
        let back: PackedI8 = serde_json::from_str(&json).unwrap();
        assert_eq!(back, packed);
    }
}
