//! Prepacked weight matrices — the software analogue of the paper's
//! on-chip weight residency.
//!
//! The accelerator keeps each weight matrix resident next to the
//! systolic array and streams only activations through it. The software
//! GEMM in [`crate::gemm`] instead re-packs `B` on **every call**; for
//! the batch-1 decode hot path (`m = 1`, `k = d_model`) that packing is
//! `O(k * n)` work — the same order as the multiply-accumulate itself,
//! i.e. roughly half of every decode GEMM was spent re-deriving a
//! layout that never changes.
//!
//! [`PackedF32`] captures the `f32` `pack_tiles` layout once and
//! [`PackedI8`] the INT8 quad layout ([`crate::gemm::pack_quads`]:
//! `[tile][kq][lane][KQ]` `i8` quads plus the per-lane column sums the
//! VNNI microkernel's unsigned-offset compensation needs). Storing the
//! INT8 pack as `i8` rather than widened `i32` also matters for decode
//! throughput on its own: the GEMV is memory-bound on the weight
//! stream, and the quad layout moves 1x the weight bytes per token
//! instead of 4x.
//!
//! The [`matmul_prepacked`] / [`matmul_i8_prepacked`] entry points run
//! the identical band kernels (including the VNNI microkernels from
//! [`crate::simd`] and the dedicated `m == 1` GEMV) straight from the
//! cached tiles. Results are **bit-identical** to
//! [`crate::gemm::matmul`] / [`crate::gemm::matmul_i8`] and the naive
//! references for any shape and thread count, because the packed layout
//! and the per-element accumulation order are exactly the same — only
//! the packing work moves from per-call to per-weight-lifetime.
//!
//! `quantized::QLinear` packs eagerly at construction (its weights are
//! immutable); `transformer::Linear` caches lazily and invalidates when
//! the optimiser mutates the weights.

use crate::gemm;
use crate::{par, Mat, ShapeError};
use serde::{Deserialize, Serialize};

/// A `k x n` matrix frozen in the register-microkernel's packed-tile
/// layout (`[tile][p][lane]`, `NR` lanes per tile, last tile
/// zero-padded). Build once per weight matrix via
/// [`PackedMat::from_f32`]; multiply via [`matmul_prepacked`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedMat<T> {
    /// Tiles in `[tile][p][lane]` order, `tiles * k * NR` elements.
    packed: Vec<T>,
    /// Reduction depth (rows of the original `B`).
    k: usize,
    /// Output width (columns of the original `B`).
    n: usize,
}

/// Prepacked `f32` weight matrix.
pub type PackedF32 = PackedMat<f32>;

impl<T> PackedMat<T> {
    /// Reduction depth — the `a.cols()` this packed matrix multiplies
    /// against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width — columns of the product.
    pub fn n(&self) -> usize {
        self.n
    }
}

impl PackedMat<f32> {
    /// Packs an `f32` weight matrix once, in the exact layout
    /// [`crate::gemm::matmul`] builds per call.
    pub fn from_f32(b: &Mat<f32>) -> Self {
        let (k, n) = b.shape();
        Self {
            packed: gemm::pack_tiles(b, gemm::widen_f32),
            k,
            n,
        }
    }
}

/// An INT8 `k x n` weight matrix frozen in the quad-packed layout the
/// INT8 kernels consume (`[tile][kq][lane][KQ]` `i8` quads, see
/// [`crate::gemm::pack_quads`]), together with the per-`(tile, lane)`
/// column sums used by the VNNI unsigned-offset compensation. Build
/// once per weight matrix via [`PackedI8::from_i8`]; multiply via
/// [`matmul_i8_prepacked`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackedI8 {
    /// Quad tiles in `[tile][kq][lane][KQ]` order.
    quads: Vec<i8>,
    /// `tiles * NR` column sums (zero for padded lanes).
    colsum: Vec<i32>,
    /// Reduction depth (rows of the original `B`).
    k: usize,
    /// Output width (columns of the original `B`).
    n: usize,
}

impl PackedI8 {
    /// Packs an INT8 weight matrix once into the quad layout
    /// [`crate::gemm::matmul_i8`] builds per call.
    pub fn from_i8(b: &Mat<i8>) -> Self {
        let (k, n) = b.shape();
        let (quads, colsum) = gemm::pack_quads(b);
        Self {
            quads,
            colsum,
            k,
            n,
        }
    }

    /// Reduction depth — the `a.cols()` this packed matrix multiplies
    /// against.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Output width — columns of the product.
    pub fn n(&self) -> usize {
        self.n
    }
}

/// `f32` GEMM against a prepacked `B`: returns `a * B`, bit-identical to
/// [`crate::gemm::matmul`] on the original matrix.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked(a: &Mat<f32>, b: &PackedMat<f32>) -> Result<Mat<f32>, ShapeError> {
    matmul_prepacked_with_threads(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n))
}

/// [`matmul_prepacked`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_prepacked_with_threads(
    a: &Mat<f32>,
    b: &PackedMat<f32>,
    threads: usize,
) -> Result<Mat<f32>, ShapeError> {
    if a.cols() != b.k {
        return Err(ShapeError::new("matmul_prepacked", a.shape(), (b.k, b.n)));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::zeros(m, n);
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        gemm::run_band_f32(a, &b.packed, first_row, band, n);
    });
    Ok(out)
}

/// INT8 GEMM against a prepacked `B`: returns `a * B` with `i32`
/// accumulation, bit-identical to [`crate::gemm::matmul_i8`] on the
/// original matrix. Single-row inputs (`m == 1`, the batch-1 decode
/// shape) take the dedicated GEMV kernel.
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked(a: &Mat<i8>, b: &PackedI8) -> Result<Mat<i32>, ShapeError> {
    matmul_i8_prepacked_with_threads(a, b, gemm::auto_threads(a.rows(), a.cols(), b.n))
}

/// [`matmul_i8_prepacked`] with an explicit worker count (no cutoff, no
/// environment lookup).
///
/// # Errors
///
/// Returns [`ShapeError`] if `a.cols() != b.k()`.
pub fn matmul_i8_prepacked_with_threads(
    a: &Mat<i8>,
    b: &PackedI8,
    threads: usize,
) -> Result<Mat<i32>, ShapeError> {
    if a.cols() != b.k {
        return Err(ShapeError::new(
            "matmul_i8_prepacked",
            a.shape(),
            (b.k, b.n),
        ));
    }
    let (m, n) = (a.rows(), b.n);
    let mut out = Mat::<i32>::zeros(m, n);
    let au = if crate::simd::int8_simd_active() {
        gemm::offset_rows(a, threads)
    } else {
        Vec::new()
    };
    if m == 1 {
        gemm::run_gemv_i8q(a, &au, &b.quads, &b.colsum, out.as_mut_slice(), n);
        return Ok(out);
    }
    par::row_bands(out.as_mut_slice(), m, n, threads, |first_row, band| {
        gemm::run_band_i8q(a, &au, &b.quads, &b.colsum, first_row, band, n);
    });
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prepacked_matches_unpacked_f32() {
        let a = Mat::from_fn(5, 33, |r, c| (r as f32 - c as f32) * 0.37);
        let b = Mat::from_fn(33, 20, |r, c| (r * c) as f32 * 0.11 - 1.5);
        let packed = PackedMat::from_f32(&b);
        assert_eq!(packed.k(), 33);
        assert_eq!(packed.n(), 20);
        let got = matmul_prepacked(&a, &packed).unwrap();
        let want = gemm::matmul(&a, &b).unwrap();
        assert!(got
            .as_slice()
            .iter()
            .zip(want.as_slice())
            .all(|(g, w)| g.to_bits() == w.to_bits()));
    }

    #[test]
    fn prepacked_matches_unpacked_i8_incl_gemv() {
        for m in [1usize, 2, 7] {
            let a = Mat::from_fn(m, 40, |r, c| ((r * 31 + c * 7) % 255) as i8);
            let b = Mat::from_fn(40, 23, |r, c| ((r * 13 + c * 5) % 251) as i8);
            let packed = PackedI8::from_i8(&b);
            assert_eq!(packed.k(), 40);
            assert_eq!(packed.n(), 23);
            let got = matmul_i8_prepacked(&a, &packed).unwrap();
            assert_eq!(got, gemm::matmul_i8(&a, &b).unwrap(), "m={m}");
        }
    }

    #[test]
    fn prepacked_shape_errors() {
        let packed = PackedI8::from_i8(&Mat::<i8>::zeros(4, 4));
        assert!(matmul_i8_prepacked(&Mat::<i8>::zeros(2, 3), &packed).is_err());
        let packed_f = PackedMat::from_f32(&Mat::<f32>::zeros(4, 4));
        assert!(matmul_prepacked(&Mat::<f32>::zeros(2, 3), &packed_f).is_err());
    }

    #[test]
    fn packed_mat_serde_round_trips() {
        let b = Mat::from_fn(6, 9, |r, c| (r as i8) - 2 * (c as i8));
        let packed = PackedI8::from_i8(&b);
        let json = serde_json::to_string(&packed).unwrap();
        let back: PackedI8 = serde_json::from_str(&json).unwrap();
        assert_eq!(back, packed);
    }
}
