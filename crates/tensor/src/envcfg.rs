//! Single home for every `ACCEL_*` environment variable.
//!
//! Earlier revisions parsed these in whichever crate first needed them —
//! `ACCEL_THREADS` in [`crate::par`], `ACCEL_FORCE_SCALAR` in
//! [`crate::simd`], `ACCEL_KV_PAGE` in [`crate::kvpool`], and the fault
//! pair (`ACCEL_ABFT`, `ACCEL_FAULT_SEED`) in the `faults` crate — each
//! with its own `OnceLock`. This module consolidates the parsing (and
//! the caching policy, which differs per variable on purpose) so the
//! README table, the CI matrices, and the code agree on exactly one
//! semantics per variable.
//!
//! Caching policy:
//!
//! * `ACCEL_THREADS`, `ACCEL_FORCE_SCALAR`, `ACCEL_ABFT`,
//!   `ACCEL_FAULT_SEED`, `ACCEL_NO_FUSE`, `ACCEL_PIN` — read **once**
//!   per process (these sit on or gate hot paths; a `getenv` per GEMM
//!   is measurable). In-process retuning for tests goes through the
//!   override setters ([`set_fuse_override`], [`set_pin_override`],
//!   [`crate::par::set_thread_override`],
//!   [`crate::simd::set_simd_override`], `faults::set_checker`).
//! * `ACCEL_KV_PAGE`, `ACCEL_PREFIX_CACHE` — parsed on **every** call
//!   (once per arena/engine construction, cheap), so tests and CI
//!   matrices can vary them without process-global caching.

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::OnceLock;

/// Worker-thread count override; unset/empty/`0`/unparsable mean "use
/// the machine's available parallelism". See [`crate::par::threads`].
pub const ENV_THREADS: &str = "ACCEL_THREADS";

/// Forces the scalar INT8 kernels (any non-empty value other than `0`).
/// See [`crate::simd::simd_enabled`].
pub const ENV_FORCE_SCALAR: &str = "ACCEL_FORCE_SCALAR";

/// Paged-KV page height in rows. See [`crate::kvpool::page_rows_from_env`].
pub const ENV_KV_PAGE: &str = "ACCEL_KV_PAGE";

/// Enables the ABFT checker on the serving path (`1`/`true`/`on`,
/// case-insensitive). Consumed by the `faults` crate.
pub const ENV_ABFT: &str = "ACCEL_ABFT";

/// Seed for the env-driven fault-injection campaign (`u64`). Consumed
/// by the `faults` crate.
pub const ENV_FAULT_SEED: &str = "ACCEL_FAULT_SEED";

/// Disables the graph-IR operator fusion pass (any non-empty value
/// other than `0`), restoring the unfused graphs byte-for-byte. Fusion
/// is on by default because fused and unfused execution are
/// bit-identical; this is the escape hatch.
pub const ENV_NO_FUSE: &str = "ACCEL_NO_FUSE";

/// Opts in to pinning pool workers to cores (any non-empty value other
/// than `0`). Off by default: pinning helps dedicated serving boxes and
/// hurts oversubscribed CI runners.
pub const ENV_PIN: &str = "ACCEL_PIN";

/// Byte budget for the serving layer's shared-prefix KV cache (`0` or
/// unset disables it). See [`prefix_cache_bytes`].
pub const ENV_PREFIX_CACHE: &str = "ACCEL_PREFIX_CACHE";

/// Bound on the serving engine's waiting queue (`0` or unset =
/// unbounded). See [`max_queue`].
pub const ENV_MAX_QUEUE: &str = "ACCEL_MAX_QUEUE";

/// "Set and truthy" predicate shared by the boolean flags: any
/// non-empty value other than `0` counts as set.
fn flag(var: &str) -> bool {
    match std::env::var(var) {
        Ok(v) => {
            let v = v.trim();
            !v.is_empty() && v != "0"
        }
        Err(_) => false,
    }
}

/// `ACCEL_THREADS` as parsed from the environment: `Some(t)` for a
/// positive integer, `None` otherwise (caller supplies the default and
/// the clamp). Read once per process.
pub fn threads_raw() -> Option<usize> {
    static CELL: OnceLock<Option<usize>> = OnceLock::new();
    *CELL.get_or_init(|| match std::env::var(ENV_THREADS) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(t) if t > 0 => Some(t),
            _ => None,
        },
        Err(_) => None,
    })
}

/// Whether `ACCEL_FORCE_SCALAR` pins the scalar kernels. Read once per
/// process.
pub fn force_scalar() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    *CELL.get_or_init(|| flag(ENV_FORCE_SCALAR))
}

/// The paged-KV page height from `ACCEL_KV_PAGE`, falling back to
/// `default`. Parsed on every call (see module docs).
pub fn kv_page_rows(default: usize) -> usize {
    match std::env::var(ENV_KV_PAGE) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n > 0 => n,
            _ => default,
        },
        Err(_) => default,
    }
}

/// The shared-prefix KV-cache byte budget from `ACCEL_PREFIX_CACHE`,
/// falling back to `default`; `0` (or an unparsable value) disables the
/// cache. Accepts a plain byte count or a `k`/`m` suffix
/// (case-insensitive, powers of 1024). Parsed on **every** call, like
/// [`kv_page_rows`]: it is read once per engine construction, and CI
/// matrices / tests vary it without process-global caching.
pub fn prefix_cache_bytes(default: usize) -> usize {
    match std::env::var(ENV_PREFIX_CACHE) {
        Ok(v) => {
            let v = v.trim();
            let (digits, mult) = match v.as_bytes().last() {
                Some(b'k') | Some(b'K') => (&v[..v.len() - 1], 1024),
                Some(b'm') | Some(b'M') => (&v[..v.len() - 1], 1024 * 1024),
                _ => (v, 1),
            };
            match digits.parse::<usize>() {
                Ok(n) => n * mult,
                Err(_) => default,
            }
        }
        Err(_) => default,
    }
}

/// The serving engine's waiting-queue bound from `ACCEL_MAX_QUEUE`,
/// falling back to `default`; `0` (or an unparsable value) leaves the
/// queue unbounded. Parsed on **every** call, like [`kv_page_rows`]:
/// it is read once per engine construction, and tests / CI matrices
/// vary it without process-global caching.
pub fn max_queue(default: usize) -> usize {
    match std::env::var(ENV_MAX_QUEUE) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) => n,
            Err(_) => default,
        },
        Err(_) => default,
    }
}

/// Whether `ACCEL_ABFT` asks for the checker (`1`/`true`/`on`,
/// case-insensitive). Read once per process; the `faults` crate layers
/// its in-process `set_checker` override on top.
pub fn abft_env() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var(ENV_ABFT).is_ok_and(|v| {
            let v = v.trim();
            v == "1" || v.eq_ignore_ascii_case("true") || v.eq_ignore_ascii_case("on")
        })
    })
}

/// The seed from `ACCEL_FAULT_SEED`, if set to a parseable `u64`. Read
/// once per process.
pub fn fault_seed() -> Option<u64> {
    static CELL: OnceLock<Option<u64>> = OnceLock::new();
    *CELL.get_or_init(|| {
        std::env::var(ENV_FAULT_SEED)
            .ok()
            .and_then(|v| v.trim().parse().ok())
    })
}

/// In-process override for [`fuse_enabled`]:
/// 0 = follow env, 1 = force off, 2 = force on.
static FUSE_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// In-process override for [`pin_enabled`]: same encoding.
static PIN_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Whether the graph-IR fusion pass should run: an explicit
/// [`set_fuse_override`], else on unless `ACCEL_NO_FUSE` is set.
///
/// Fused and unfused execution are bit-identical (the differential
/// suite pins this), so flipping the gate only affects speed and which
/// graph shape the executors see.
pub fn fuse_enabled() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    match FUSE_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => !*CELL.get_or_init(|| flag(ENV_NO_FUSE)),
    }
}

/// Overrides [`fuse_enabled`] for this process (`None` restores the
/// env resolution). Intended for the fused-vs-unfused differential
/// tests and benchmarks; safe to flip at any time because both graph
/// shapes produce bit-identical results.
pub fn set_fuse_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    FUSE_OVERRIDE.store(v, Ordering::Relaxed);
}

/// Whether pool workers should be pinned to cores: an explicit
/// [`set_pin_override`], else the `ACCEL_PIN` opt-in.
pub fn pin_enabled() -> bool {
    static CELL: OnceLock<bool> = OnceLock::new();
    match PIN_OVERRIDE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => *CELL.get_or_init(|| flag(ENV_PIN)),
    }
}

/// Overrides [`pin_enabled`] for this process (`None` restores the env
/// resolution). Note that workers already spawned keep the affinity
/// they were given; the override affects workers spawned afterwards.
pub fn set_pin_override(enabled: Option<bool>) {
    let v = match enabled {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    PIN_OVERRIDE.store(v, Ordering::Relaxed);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kv_page_rows_falls_back_on_default() {
        // Unset in the plain test environment (the CI page-stress leg
        // sets it process-wide, in which case the parsed value wins —
        // only check the contract that holds either way).
        let got = kv_page_rows(16);
        assert!(got > 0);
    }

    #[test]
    fn fuse_override_wins_and_clears() {
        let base = fuse_enabled();
        set_fuse_override(Some(false));
        assert!(!fuse_enabled());
        set_fuse_override(Some(true));
        assert!(fuse_enabled());
        set_fuse_override(None);
        assert_eq!(fuse_enabled(), base);
    }

    #[test]
    fn pin_override_wins_and_clears() {
        let base = pin_enabled();
        set_pin_override(Some(true));
        assert!(pin_enabled());
        set_pin_override(Some(false));
        assert!(!pin_enabled());
        set_pin_override(None);
        assert_eq!(pin_enabled(), base);
    }
}
