//! Deterministic fault injection and ABFT checking for the accelerator.
//!
//! Real deployments of the paper's accelerator keep weights resident in
//! on-chip SRAM and stream activations through a systolic datapath —
//! exactly the structures single-event upsets corrupt. This crate models
//! that failure mode *deterministically*: a [`FaultPlan`] is a seeded,
//! reproducible list of [`FaultEvent`]s, each addressing a physical
//! [`FaultSite`] (a weight-SRAM word on a given GEMM pass, an
//! accumulator register, a softmax or LayerNorm datapath value, an ISA
//! command-stream slot) with a [`FaultKind`] (single/multi bit flip or
//! stuck-at). Replaying the same plan against the same workload corrupts
//! the same bits — which is what makes fault-tolerance machinery
//! testable at all.
//!
//! Two consumption styles:
//!
//! * **Per-engine** — `accel::ArrayEngine` owns an [`Injector`] directly
//!   and addresses events by its private pass/call counters. Race-free,
//!   used by unit tests and the golden-model cross-check.
//! * **Global** — the serving decode path flows through
//!   `quantized::QLinear`, whose call sites cannot thread an injector
//!   handle; [`install`] publishes a process-wide injector addressed by
//!   a global GEMM-pass counter. The decode loop is deterministic when
//!   `ACCEL_THREADS=1` (all `QLinear` forwards run on the caller
//!   thread), which is how the CI fault matrix pins it.
//!
//! The hooks are **zero-cost when off**: every instrumented hot path
//! gates on [`hooks_active`] (one relaxed atomic load) and the checker
//! never modifies values, so fault-free runs — checker on or off — stay
//! bit-identical to an uninstrumented build.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Mat;

pub mod abft;

/// How a fault corrupts the word at its site.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Flip one bit (`bit` is taken modulo the word width).
    BitFlip {
        /// Bit position to flip.
        bit: u8,
    },
    /// XOR an arbitrary mask into the word (masked to the word width).
    MultiBitFlip {
        /// Bits to flip.
        mask: u32,
    },
    /// Force one bit to a fixed value (`bit` modulo the word width).
    StuckAt {
        /// Bit position to pin.
        bit: u8,
        /// The value the bit is stuck at.
        value: bool,
    },
}

impl FaultKind {
    /// Applies the fault to a `width`-bit word (width ≤ 32).
    pub fn apply_word(self, word: u32, width: u32) -> u32 {
        debug_assert!((1..=32).contains(&width));
        let keep = if width >= 32 {
            u32::MAX
        } else {
            (1u32 << width) - 1
        };
        match self {
            FaultKind::BitFlip { bit } => word ^ (1 << (bit as u32 % width)),
            FaultKind::MultiBitFlip { mask } => word ^ (mask & keep),
            FaultKind::StuckAt { bit, value } => {
                let b = 1u32 << (bit as u32 % width);
                if value {
                    word | b
                } else {
                    word & !b
                }
            }
        }
    }

    /// Applies the fault to an 8-bit storage word (weight SRAM, softmax
    /// probability codes).
    pub fn apply_i8(self, v: i8) -> i8 {
        self.apply_word(v as u8 as u32, 8) as u8 as i8
    }

    /// Applies the fault to a 32-bit register (accumulators, LayerNorm
    /// residual sums).
    pub fn apply_i32(self, v: i32) -> i32 {
        self.apply_word(v as u32, 32) as i32
    }
}

/// The physical location a fault strikes.
///
/// GEMM-adjacent sites are addressed by a monotonically increasing
/// *pass index* (which GEMM pass through the array), softmax/LayerNorm
/// sites by a per-module *call index*, and ISA sites by a *program
/// index* (which lowered command stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// A weight-SRAM word: the resident `B` tile of GEMM pass `pass`,
    /// word `(row, col)`. Out-of-range coordinates are silently inert
    /// (the plan addressed SRAM beyond this tile's extent).
    WeightSram {
        /// GEMM pass index.
        pass: u64,
        /// Weight-tile row (the `k` dimension).
        row: usize,
        /// Weight-tile column.
        col: usize,
    },
    /// A drained accumulator register of GEMM pass `pass`.
    Accumulator {
        /// GEMM pass index.
        pass: u64,
        /// Output row.
        row: usize,
        /// Output column.
        col: usize,
    },
    /// A probability code leaving the softmax module on its `call`-th
    /// invocation.
    SoftmaxValue {
        /// Softmax-module call index.
        call: u64,
        /// Row of the probability tile.
        row: usize,
        /// Column of the probability tile.
        col: usize,
    },
    /// A 32-bit residual-sum word entering the LayerNorm module on its
    /// `call`-th invocation.
    LayerNormValue {
        /// LayerNorm-module call index.
        call: u64,
        /// Row of the residual tile.
        row: usize,
        /// Column of the residual tile.
        col: usize,
    },
    /// A command slot of the `program`-th lowered ISA command stream.
    IsaCommand {
        /// Program (lowering) index.
        program: u64,
        /// Command slot within the program.
        slot: usize,
    },
}

/// One scheduled fault: a site plus the corruption applied there. The
/// event fires every time its site is visited (stuck-at semantics come
/// for free; a `BitFlip` that fires once is the common single-event
/// upset because each pass/call index is visited exactly once).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Where the fault strikes.
    pub site: FaultSite,
    /// How it corrupts the word.
    pub kind: FaultKind,
}

/// Site classes a seeded plan may draw from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteClass {
    /// Weight-SRAM words.
    WeightSram,
    /// Accumulator registers.
    Accumulator,
    /// Softmax output values.
    SoftmaxValue,
    /// LayerNorm input values.
    LayerNormValue,
    /// ISA command slots.
    IsaCommand,
}

/// The sampling space for [`FaultPlan::seeded`].
#[derive(Debug, Clone)]
pub struct FaultSpace {
    /// First pass/call/program index eligible for faults.
    pub index_lo: u64,
    /// One past the last eligible index.
    pub index_hi: u64,
    /// Row extent sampled for matrix sites (and the slot extent for ISA
    /// sites).
    pub rows: usize,
    /// Column extent sampled for matrix sites.
    pub cols: usize,
    /// Which site classes to draw from (must be non-empty).
    pub classes: Vec<SiteClass>,
}

/// A reproducible schedule of fault events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultPlan {
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// A plan with no events: hooks run but nothing is ever corrupted.
    pub fn empty() -> Self {
        Self::default()
    }

    /// A plan from an explicit event list.
    pub fn from_events(events: Vec<FaultEvent>) -> Self {
        Self { events }
    }

    /// Draws `n` single-bit-flip events uniformly from `space` using a
    /// seeded generator. The same `(seed, n, space)` triple always
    /// yields the same plan.
    ///
    /// # Panics
    ///
    /// Panics if `space.classes` is empty or `index_lo >= index_hi`.
    pub fn seeded(seed: u64, n: usize, space: &FaultSpace) -> Self {
        assert!(!space.classes.is_empty(), "fault space has no site classes");
        assert!(space.index_lo < space.index_hi, "empty fault index range");
        let mut rng = StdRng::seed_from_u64(seed);
        let events = (0..n)
            .map(|_| {
                let class = space.classes[rng.random_range(0..space.classes.len())];
                let index = rng.random_range(space.index_lo..space.index_hi);
                let row = rng.random_range(0..space.rows.max(1));
                let col = rng.random_range(0..space.cols.max(1));
                let site = match class {
                    SiteClass::WeightSram => FaultSite::WeightSram {
                        pass: index,
                        row,
                        col,
                    },
                    SiteClass::Accumulator => FaultSite::Accumulator {
                        pass: index,
                        row,
                        col,
                    },
                    SiteClass::SoftmaxValue => FaultSite::SoftmaxValue {
                        call: index,
                        row,
                        col,
                    },
                    SiteClass::LayerNormValue => FaultSite::LayerNormValue {
                        call: index,
                        row,
                        col,
                    },
                    SiteClass::IsaCommand => FaultSite::IsaCommand {
                        program: index,
                        slot: row,
                    },
                };
                let kind = FaultKind::BitFlip {
                    bit: rng.random_range(0u32..32) as u8,
                };
                FaultEvent { site, kind }
            })
            .collect();
        Self { events }
    }

    /// The scheduled events.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.events.len()
    }
}

/// Stateful fault injector: a [`FaultPlan`] plus the pass/call/program
/// counters that resolve its site addresses as execution advances.
#[derive(Debug, Clone)]
pub struct Injector {
    plan: FaultPlan,
    passes: u64,
    softmax_calls: u64,
    layernorm_calls: u64,
    programs: u64,
    injected: u64,
}

impl Injector {
    /// Wraps a plan with zeroed counters.
    pub fn new(plan: FaultPlan) -> Self {
        Self {
            plan,
            passes: 0,
            softmax_calls: 0,
            layernorm_calls: 0,
            programs: 0,
            injected: 0,
        }
    }

    /// The underlying plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Claims the next GEMM pass index.
    pub fn begin_pass(&mut self) -> u64 {
        let p = self.passes;
        self.passes += 1;
        p
    }

    /// GEMM passes counted so far.
    pub fn passes_seen(&self) -> u64 {
        self.passes
    }

    /// Total faults actually injected (in-range events that fired).
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Weight-SRAM events scheduled for `pass` as `(row, col, kind)`.
    /// Read-only: callers that cannot mutate the shared weight tile
    /// apply these as accumulator deltas and then call
    /// [`Injector::note_injected`].
    pub fn weight_events(&self, pass: u64) -> Vec<(usize, usize, FaultKind)> {
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.site {
                FaultSite::WeightSram { pass: p, row, col } if p == pass => {
                    Some((row, col, e.kind))
                }
                _ => None,
            })
            .collect()
    }

    /// Records `n` faults injected by a caller that applied
    /// [`Injector::weight_events`] itself.
    pub fn note_injected(&mut self, n: usize) {
        self.injected += n as u64;
    }

    /// Corrupts the resident weight tile for `pass` in place; returns
    /// the number of faults that landed in range.
    pub fn corrupt_weights(&mut self, pass: u64, tile: &mut Mat<i8>) -> usize {
        let mut hit = 0;
        for (row, col, kind) in self.weight_events(pass) {
            if row < tile.rows() && col < tile.cols() {
                tile[(row, col)] = kind.apply_i8(tile[(row, col)]);
                hit += 1;
            }
        }
        self.injected += hit as u64;
        hit
    }

    /// Corrupts drained accumulator registers for `pass` in place.
    pub fn corrupt_acc(&mut self, pass: u64, acc: &mut Mat<i32>) -> usize {
        let mut hit = 0;
        for e in &self.plan.events {
            if let FaultSite::Accumulator { pass: p, row, col } = e.site {
                if p == pass && row < acc.rows() && col < acc.cols() {
                    acc[(row, col)] = e.kind.apply_i32(acc[(row, col)]);
                    hit += 1;
                }
            }
        }
        self.injected += hit as u64;
        hit
    }

    /// Claims the next softmax-module call and corrupts its output
    /// probability codes in place.
    pub fn corrupt_softmax(&mut self, probs: &mut Mat<i8>) -> usize {
        let call = self.softmax_calls;
        self.softmax_calls += 1;
        let mut hit = 0;
        for e in &self.plan.events {
            if let FaultSite::SoftmaxValue { call: c, row, col } = e.site {
                if c == call && row < probs.rows() && col < probs.cols() {
                    probs[(row, col)] = e.kind.apply_i8(probs[(row, col)]);
                    hit += 1;
                }
            }
        }
        self.injected += hit as u64;
        hit
    }

    /// Claims the next LayerNorm-module call and corrupts its 32-bit
    /// residual-sum inputs in place.
    pub fn corrupt_layernorm(&mut self, g: &mut Mat<i32>) -> usize {
        let call = self.layernorm_calls;
        self.layernorm_calls += 1;
        let mut hit = 0;
        for e in &self.plan.events {
            if let FaultSite::LayerNormValue { call: c, row, col } = e.site {
                if c == call && row < g.rows() && col < g.cols() {
                    g[(row, col)] = e.kind.apply_i32(g[(row, col)]);
                    hit += 1;
                }
            }
        }
        self.injected += hit as u64;
        hit
    }

    /// Claims the next lowered ISA program and returns the command-slot
    /// faults scheduled for it as `(slot, kind)`. The caller applies
    /// them to its command stream (the injector cannot name `accel`'s
    /// `Command` type) and reports hits via [`Injector::note_injected`].
    pub fn isa_faults(&mut self) -> Vec<(usize, FaultKind)> {
        let program = self.programs;
        self.programs += 1;
        self.plan
            .events
            .iter()
            .filter_map(|e| match e.site {
                FaultSite::IsaCommand { program: p, slot } if p == program => Some((slot, e.kind)),
                _ => None,
            })
            .collect()
    }

    /// One serving-path GEMM pass: claims a pass index, applies its
    /// weight-SRAM events as accumulator deltas (the shared weight
    /// matrix is immutable, but `acc[r][c] += x[r][t] · (flip(w[t][c]) −
    /// w[t][c])` is arithmetically identical to having run the GEMM
    /// against the corrupted word), then corrupts accumulator registers.
    /// Returns the number of faults injected.
    pub fn apply_gemm_pass(&mut self, x: &Mat<i8>, w: &Mat<i8>, acc: &mut Mat<i32>) -> usize {
        let pass = self.begin_pass();
        let mut hit = 0;
        for (t, c, kind) in self.weight_events(pass) {
            if t < w.rows() && c < w.cols() {
                let delta = kind.apply_i8(w[(t, c)]) as i32 - w[(t, c)] as i32;
                if delta != 0 {
                    for r in 0..acc.rows() {
                        acc[(r, c)] += x[(r, t)] as i32 * delta;
                    }
                }
                hit += 1;
            }
        }
        self.injected += hit as u64;
        hit + self.corrupt_acc(pass, acc)
    }
}

// ---------------------------------------------------------------------
// Global controller: the serving decode path's process-wide injector,
// checker switch, and detection counters.
// ---------------------------------------------------------------------

static PLAN_ACTIVE: AtomicBool = AtomicBool::new(false);
/// 0 = follow the `ACCEL_ABFT` env var, 1 = forced off, 2 = forced on.
static CHECKER_STATE: AtomicU8 = AtomicU8::new(0);
static CHECKED: AtomicU64 = AtomicU64::new(0);
static INJECTED: AtomicU64 = AtomicU64::new(0);
static DETECTED: AtomicU64 = AtomicU64::new(0);

fn global_injector() -> &'static Mutex<Option<Injector>> {
    static CELL: OnceLock<Mutex<Option<Injector>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

fn env_checker() -> bool {
    // Parsing consolidated in `tensor::envcfg` with the other ACCEL_*
    // variables; the in-process `set_checker` override layers on top.
    tensor::envcfg::abft_env()
}

/// The seed from `ACCEL_FAULT_SEED`, if set to a parseable `u64`.
pub fn env_seed() -> Option<u64> {
    tensor::envcfg::fault_seed()
}

/// Installs `plan` as the process-wide injector (fresh counters) and
/// activates the hooks. Use [`exclusive`] to serialize tests that do
/// this.
pub fn install(plan: FaultPlan) {
    *lock_recovering(global_injector()) = Some(Injector::new(plan));
    PLAN_ACTIVE.store(true, Ordering::SeqCst);
}

/// Removes the process-wide injector.
pub fn clear() {
    *lock_recovering(global_injector()) = None;
    PLAN_ACTIVE.store(false, Ordering::SeqCst);
}

/// True when a process-wide plan is installed.
pub fn plan_active() -> bool {
    PLAN_ACTIVE.load(Ordering::Relaxed)
}

/// True when the ABFT checker should run on the serving path: an
/// explicit [`set_checker`] override, else the `ACCEL_ABFT` env var.
pub fn checker_enabled() -> bool {
    match CHECKER_STATE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => env_checker(),
    }
}

/// Forces the checker on/off (`None` reverts to the env default).
pub fn set_checker(on: Option<bool>) {
    let state = match on {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    };
    CHECKER_STATE.store(state, Ordering::SeqCst);
}

/// The single gate instrumented hot paths test before doing any fault
/// work: true iff a plan is installed or the checker is on. One-two
/// relaxed atomic loads — fault-free production runs pay nothing else.
pub fn hooks_active() -> bool {
    plan_active() || checker_enabled()
}

/// Runs `f` against the process-wide injector, if one is installed.
pub fn with_injector<R>(f: impl FnOnce(&mut Injector) -> R) -> Option<R> {
    if !plan_active() {
        return None;
    }
    lock_recovering(global_injector()).as_mut().map(f)
}

/// Process-wide fault/checker counters (monotonic until
/// [`reset_counters`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultCounters {
    /// ABFT verifications performed.
    pub checked: u64,
    /// Faults injected.
    pub injected: u64,
    /// Checksum mismatches detected.
    pub detected: u64,
}

/// Records `n` checker invocations.
pub fn note_checked(n: u64) {
    CHECKED.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` injected faults.
pub fn note_injected(n: u64) {
    INJECTED.fetch_add(n, Ordering::Relaxed);
}

/// Records `n` detected mismatches.
pub fn note_detected(n: u64) {
    DETECTED.fetch_add(n, Ordering::Relaxed);
}

/// Snapshot of the process-wide counters.
pub fn counters() -> FaultCounters {
    FaultCounters {
        checked: CHECKED.load(Ordering::Relaxed),
        injected: INJECTED.load(Ordering::Relaxed),
        detected: DETECTED.load(Ordering::Relaxed),
    }
}

/// Zeroes the process-wide counters.
pub fn reset_counters() {
    CHECKED.store(0, Ordering::SeqCst);
    INJECTED.store(0, Ordering::SeqCst);
    DETECTED.store(0, Ordering::SeqCst);
}

/// Serializes tests that install process-wide plans or toggle the
/// checker, mirroring the `set_thread_override` idiom elsewhere in the
/// workspace. Hold the returned guard for the duration of the test.
pub fn exclusive() -> MutexGuard<'static, ()> {
    static CELL: OnceLock<Mutex<()>> = OnceLock::new();
    lock_recovering(CELL.get_or_init(|| Mutex::new(())))
}

/// Locks `m`, recovering from poisoning (a panicking fault test must
/// not wedge every later test in the binary).
fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_flip_is_involutive_per_width() {
        let k = FaultKind::BitFlip { bit: 3 };
        assert_eq!(k.apply_i8(k.apply_i8(-77)), -77);
        assert_eq!(k.apply_i32(k.apply_i32(123456)), 123456);
        // Bit 9 on an 8-bit word wraps to bit 1.
        let wide = FaultKind::BitFlip { bit: 9 };
        assert_eq!(wide.apply_i8(0), 2);
    }

    #[test]
    fn stuck_at_pins_the_bit() {
        let k = FaultKind::StuckAt {
            bit: 0,
            value: true,
        };
        assert_eq!(k.apply_i8(4), 5);
        assert_eq!(k.apply_i8(5), 5);
        let k0 = FaultKind::StuckAt {
            bit: 0,
            value: false,
        };
        assert_eq!(k0.apply_i32(5), 4);
    }

    #[test]
    fn multi_bit_flip_masks_to_width() {
        let k = FaultKind::MultiBitFlip { mask: 0x0101 };
        assert_eq!(k.apply_i8(0), 1); // high byte masked off
        assert_eq!(k.apply_i32(0), 0x0101);
    }

    #[test]
    fn seeded_plans_are_reproducible_and_in_space() {
        let space = FaultSpace {
            index_lo: 10,
            index_hi: 20,
            rows: 4,
            cols: 8,
            classes: vec![SiteClass::WeightSram, SiteClass::Accumulator],
        };
        let a = FaultPlan::seeded(42, 16, &space);
        let b = FaultPlan::seeded(42, 16, &space);
        assert_eq!(a, b);
        assert_ne!(a, FaultPlan::seeded(43, 16, &space));
        assert_eq!(a.len(), 16);
        for e in a.events() {
            match e.site {
                FaultSite::WeightSram { pass, row, col }
                | FaultSite::Accumulator { pass, row, col } => {
                    assert!((10..20).contains(&pass));
                    assert!(row < 4 && col < 8);
                }
                other => panic!("class outside space: {other:?}"),
            }
        }
    }

    #[test]
    fn injector_counters_advance_and_events_fire_once_per_index() {
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::Accumulator {
                pass: 1,
                row: 0,
                col: 0,
            },
            kind: FaultKind::BitFlip { bit: 0 },
        }]);
        let mut inj = Injector::new(plan);
        let mut acc = Mat::from_fn(2, 2, |_, _| 0i32);
        let p0 = inj.begin_pass();
        assert_eq!(inj.corrupt_acc(p0, &mut acc), 0);
        let p1 = inj.begin_pass();
        assert_eq!(inj.corrupt_acc(p1, &mut acc), 1);
        assert_eq!(acc[(0, 0)], 1);
        assert_eq!(inj.injected(), 1);
    }

    #[test]
    fn gemm_pass_weight_delta_matches_corrupted_gemm() {
        // apply_gemm_pass on pristine accumulators must equal running
        // the GEMM against a weight matrix corrupted in place.
        let x = Mat::from_fn(3, 4, |r, c| (r * 4 + c) as i8 - 5);
        let w = Mat::from_fn(4, 2, |r, c| (r as i8) * 2 - c as i8);
        let kind = FaultKind::BitFlip { bit: 6 };
        let plan = FaultPlan::from_events(vec![FaultEvent {
            site: FaultSite::WeightSram {
                pass: 0,
                row: 2,
                col: 1,
            },
            kind,
        }]);
        let mut acc = tensor::gemm::matmul_i8(&x, &w).unwrap();
        let mut inj = Injector::new(plan);
        assert_eq!(inj.apply_gemm_pass(&x, &w, &mut acc), 1);
        let mut w_bad = w.clone();
        w_bad[(2, 1)] = kind.apply_i8(w_bad[(2, 1)]);
        assert_eq!(acc, tensor::gemm::matmul_i8(&x, &w_bad).unwrap());
    }

    #[test]
    fn global_install_and_counters_round_trip() {
        let _guard = exclusive();
        reset_counters();
        assert!(with_injector(|_| ()).is_none());
        install(FaultPlan::empty());
        assert!(plan_active() && hooks_active());
        assert_eq!(with_injector(|i| i.begin_pass()), Some(0));
        assert_eq!(with_injector(|i| i.begin_pass()), Some(1));
        note_checked(2);
        note_detected(1);
        assert_eq!(
            counters(),
            FaultCounters {
                checked: 2,
                injected: 0,
                detected: 1
            }
        );
        reset_counters();
        assert_eq!(counters(), FaultCounters::default());
        clear();
        assert!(!plan_active());
    }

    #[test]
    fn checker_override_wins_over_env() {
        let _guard = exclusive();
        set_checker(Some(true));
        assert!(checker_enabled() && hooks_active());
        set_checker(Some(false));
        assert!(!checker_enabled());
        set_checker(None);
    }
}
