//! Algorithm-based fault tolerance (ABFT) checksums for systolic GEMM.
//!
//! The classic Huang–Abraham scheme for a `C = A · B` pass: latch two
//! checksum vectors **at tile load**, while the operands are still
//! pristine, and verify the drained accumulators against them:
//!
//! * `a_colsum[t] = Σ_r A[r][t]` — the column sums of `A` (`eᵀA`);
//! * `b_rowsum[t] = Σ_c B[t][c]` — the row sums of `B` (`B·e`).
//!
//! At drain, for every output row `r` the **row check** demands
//! `Σ_c C[r][c] == Σ_t A[r][t] · b_rowsum[t]`, and for every output
//! column `c` the **column check** demands
//! `Σ_r C[r][c] == Σ_t a_colsum[t] · B_resident[t][c]`.
//!
//! Coverage follows from *when* each side of the comparison reads its
//! operands. `b_rowsum` is latched from the pristine weight tile, so a
//! weight-SRAM word corrupted after load makes the actual row sums drift
//! from the predicted ones — the row check catches weight faults and
//! accumulator faults alike. The column check's prediction is recomputed
//! from the **resident** (possibly corrupted) weight tile, exactly as a
//! hardware checker reading the same SRAM would: both sides see the same
//! corrupted word, so a weight fault *escapes* the column check and only
//! activation-stream and accumulator faults are caught there. The
//! checker is therefore run with both directions and the row direction
//! is the one that carries the weight-fault coverage.
//!
//! All checksum arithmetic is `i64`: the largest magnitude is bounded by
//! `k · 127 · 127 · max(m, n)`, far inside `i64` range for any modeled
//! tile shape, so the checker itself can never overflow and alias a
//! fault.

use tensor::Mat;

/// Checksum vectors latched at tile load from pristine operands.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileChecksums {
    /// `eᵀA`: column sums of the activation tile (`len == k`).
    pub a_colsum: Vec<i64>,
    /// `B·e`: row sums of the weight tile (`len == k`).
    pub b_rowsum: Vec<i64>,
}

/// Latches both checksum vectors for a `C = A · B` pass. Call this
/// *before* any fault is injected so the vectors model registers loaded
/// from pristine SRAM.
pub fn tile_checksums(a: &Mat<i8>, b: &Mat<i8>) -> TileChecksums {
    assert_eq!(a.cols(), b.rows(), "checksum shapes: A is m×k, B is k×n");
    let k = a.cols();
    let mut a_colsum = vec![0i64; k];
    for r in 0..a.rows() {
        for t in 0..k {
            a_colsum[t] += a[(r, t)] as i64;
        }
    }
    let mut b_rowsum = vec![0i64; k];
    for t in 0..k {
        for c in 0..b.cols() {
            b_rowsum[t] += b[(t, c)] as i64;
        }
    }
    TileChecksums { a_colsum, b_rowsum }
}

/// Row sums of a weight matrix (`w` is `k×n`, result has `len == k`) —
/// the `B·e` vector a serving-path linear layer latches once at
/// quantization time and reuses for every decode-step row check.
pub fn weight_rowsum(w: &Mat<i8>) -> Vec<i64> {
    let mut sums = vec![0i64; w.rows()];
    for t in 0..w.rows() {
        for c in 0..w.cols() {
            sums[t] += w[(t, c)] as i64;
        }
    }
    sums
}

/// Outcome of verifying one drained tile.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Verdict {
    /// Output rows whose sum disagrees with the prediction from the
    /// pristine `b_rowsum` (covers weight + accumulator faults).
    pub row_mismatches: usize,
    /// Output columns whose sum disagrees with the prediction from the
    /// resident weight tile (covers activation + accumulator faults).
    pub col_mismatches: usize,
}

impl Verdict {
    /// True when both checksum directions agreed.
    pub fn ok(&self) -> bool {
        self.row_mismatches == 0 && self.col_mismatches == 0
    }
}

/// Verifies a drained `m×n` accumulator tile `out` against checksums
/// latched at load. `a` is the activation stream as fed to the array and
/// `b_resident` is the weight tile **as resident in SRAM at drain time**
/// (i.e. after any injected weight fault) — passing the pristine tile
/// here would overstate the column check's coverage.
pub fn verify(a: &Mat<i8>, b_resident: &Mat<i8>, out: &Mat<i32>, sums: &TileChecksums) -> Verdict {
    let (m, k, n) = (a.rows(), a.cols(), b_resident.cols());
    assert_eq!(out.rows(), m, "output rows");
    assert_eq!(out.cols(), n, "output cols");
    assert_eq!(sums.a_colsum.len(), k, "a_colsum length");
    assert_eq!(sums.b_rowsum.len(), k, "b_rowsum length");

    let mut verdict = Verdict::default();
    for r in 0..m {
        let actual: i64 = (0..n).map(|c| out[(r, c)] as i64).sum();
        let predicted: i64 = (0..k).map(|t| a[(r, t)] as i64 * sums.b_rowsum[t]).sum();
        if actual != predicted {
            verdict.row_mismatches += 1;
        }
    }
    for c in 0..n {
        let actual: i64 = (0..m).map(|r| out[(r, c)] as i64).sum();
        let predicted: i64 = (0..k)
            .map(|t| sums.a_colsum[t] * b_resident[(t, c)] as i64)
            .sum();
        if actual != predicted {
            verdict.col_mismatches += 1;
        }
    }
    verdict
}

/// Row-direction-only check for the serving decode path: verifies the
/// **pre-bias** accumulators of `acc = x · w` against a `weight_rowsum`
/// vector latched at quantization time. Returns the number of
/// mismatching rows. `O(m·k + m·n)` — negligible next to the `O(m·k·n)`
/// GEMM it guards.
pub fn verify_rows(x: &Mat<i8>, w_rowsum: &[i64], acc: &Mat<i32>) -> usize {
    assert_eq!(x.cols(), w_rowsum.len(), "rowsum length");
    assert_eq!(acc.rows(), x.rows(), "accumulator rows");
    let mut mismatches = 0;
    for r in 0..x.rows() {
        let actual: i64 = (0..acc.cols()).map(|c| acc[(r, c)] as i64).sum();
        let predicted: i64 = (0..x.cols()).map(|t| x[(r, t)] as i64 * w_rowsum[t]).sum();
        if actual != predicted {
            mismatches += 1;
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensor::gemm;

    fn rand_mat(rng: &mut StdRng, rows: usize, cols: usize) -> Mat<i8> {
        Mat::from_fn(rows, cols, |_, _| rng.random_range(-128i32..128) as i8)
    }

    #[test]
    fn pristine_gemm_passes_both_checks() {
        let mut rng = StdRng::seed_from_u64(1);
        for &(m, k, n) in &[(1usize, 8usize, 8usize), (4, 16, 8), (7, 3, 5)] {
            let a = rand_mat(&mut rng, m, k);
            let b = rand_mat(&mut rng, k, n);
            let out = gemm::matmul_i8(&a, &b).expect("shapes agree");
            let sums = tile_checksums(&a, &b);
            assert!(verify(&a, &b, &out, &sums).ok());
            assert_eq!(verify_rows(&a, &weight_rowsum(&b), &out), 0);
        }
    }

    #[test]
    fn accumulator_corruption_trips_both_directions() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = rand_mat(&mut rng, 4, 8);
        let b = rand_mat(&mut rng, 8, 6);
        let sums = tile_checksums(&a, &b);
        let mut out = gemm::matmul_i8(&a, &b).expect("shapes agree");
        out[(2, 3)] ^= 1 << 7;
        let v = verify(&a, &b, &out, &sums);
        assert_eq!(v.row_mismatches, 1);
        assert_eq!(v.col_mismatches, 1);
        assert_eq!(verify_rows(&a, &weight_rowsum(&b), &out), 1);
    }

    #[test]
    fn weight_corruption_escapes_column_check_but_not_row_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut a = rand_mat(&mut rng, 4, 8);
        let mut b = rand_mat(&mut rng, 8, 6);
        let t = 5;
        // Make sure the faulted weight row meets a nonzero activation so
        // the product actually changes.
        if (0..a.rows()).all(|r| a[(r, t)] == 0) {
            a[(0, t)] = 1;
        }
        let sums = tile_checksums(&a, &b); // latched pristine
        b[(t, 2)] = b[(t, 2)].wrapping_add(16);
        let out = gemm::matmul_i8(&a, &b).expect("shapes agree");
        let v = verify(&a, &b, &out, &sums);
        assert!(v.row_mismatches > 0, "row check must catch weight faults");
        assert_eq!(
            v.col_mismatches, 0,
            "column check reads the resident tile and must miss weight faults"
        );
    }
}
