//! Property tests for the ABFT checksum coverage claims.
//!
//! * Any single bit flip in a drained accumulator register is caught by
//!   both checksum directions (and by the row-only serving-path check).
//! * Any single bit flip in a weight-SRAM word that meets a nonzero
//!   activation is caught by the row check — and *escapes* the column
//!   check, whose prediction reads the same resident (corrupted) word.
//! * A fault-free tile always verifies clean, for any shape.

use faults::abft::{tile_checksums, verify, verify_rows, weight_rowsum};
use faults::FaultKind;
use proptest::prelude::*;
use tensor::{gemm, Mat};

/// An `rows × cols` i8 matrix built from a proptest-drawn flat vector.
fn mat_strategy(rows: usize, cols: usize, lo: i8, hi: i8) -> impl Strategy<Value = Mat<i8>> {
    collection::vec(lo..=hi, rows * cols)
        .prop_map(move |v| Mat::from_vec(rows, cols, v).expect("shape matches"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pristine_tiles_always_verify_clean(
        (m, k, n) in (1usize..=5, 1usize..=8, 1usize..=6),
        a in mat_strategy(5, 8, -127, 127),
        b in mat_strategy(8, 6, -127, 127),
    ) {
        let a = a.submatrix(0, 0, m, k).expect("in range");
        let b = b.submatrix(0, 0, k, n).expect("in range");
        let out = gemm::matmul_i8(&a, &b).expect("shapes agree");
        let sums = tile_checksums(&a, &b);
        prop_assert!(verify(&a, &b, &out, &sums).ok());
        prop_assert_eq!(verify_rows(&a, &weight_rowsum(&b), &out), 0);
    }

    /// Any single accumulator bit flip — any register, any of the 32
    /// bits — trips the row check, the column check, and the row-only
    /// serving check.
    #[test]
    fn any_single_accumulator_bit_flip_is_detected(
        (m, k, n) in (1usize..=5, 1usize..=8, 1usize..=6),
        a in mat_strategy(5, 8, -127, 127),
        b in mat_strategy(8, 6, -127, 127),
        row_pick in 0usize..1_000_000,
        col_pick in 0usize..1_000_000,
        bit in 0u8..32,
    ) {
        let a = a.submatrix(0, 0, m, k).expect("in range");
        let b = b.submatrix(0, 0, k, n).expect("in range");
        let sums = tile_checksums(&a, &b);
        let mut out = gemm::matmul_i8(&a, &b).expect("shapes agree");
        let (r, c) = (row_pick % m, col_pick % n);
        out[(r, c)] = FaultKind::BitFlip { bit }.apply_i32(out[(r, c)]);
        let v = verify(&a, &b, &out, &sums);
        prop_assert_eq!(v.row_mismatches, 1);
        prop_assert_eq!(v.col_mismatches, 1);
        prop_assert_eq!(verify_rows(&a, &weight_rowsum(&b), &out), 1);
    }

    /// Any single weight-SRAM bit flip whose row meets nonzero
    /// activations is caught by the row check (prediction latched from
    /// the pristine tile) and escapes the column check (prediction read
    /// from the resident tile) — the documented coverage asymmetry.
    #[test]
    fn any_single_weight_bit_flip_is_detected_by_the_row_check(
        (m, k, n) in (1usize..=5, 1usize..=8, 1usize..=6),
        // All-positive activations: every weight row meets nonzero input.
        a in mat_strategy(5, 8, 1, 127),
        b in mat_strategy(8, 6, -127, 127),
        row_pick in 0usize..1_000_000,
        col_pick in 0usize..1_000_000,
        bit in 0u8..8,
    ) {
        let a = a.submatrix(0, 0, m, k).expect("in range");
        let b = b.submatrix(0, 0, k, n).expect("in range");
        let sums = tile_checksums(&a, &b); // latched pristine
        let mut b_resident = b.clone();
        let (t, c) = (row_pick % k, col_pick % n);
        b_resident[(t, c)] = FaultKind::BitFlip { bit }.apply_i8(b_resident[(t, c)]);
        let out = gemm::matmul_i8(&a, &b_resident).expect("shapes agree");
        let v = verify(&a, &b_resident, &out, &sums);
        prop_assert!(v.row_mismatches >= 1, "row check must catch the flip");
        prop_assert_eq!(v.col_mismatches, 0, "column check reads the resident tile");
        prop_assert!(verify_rows(&a, &weight_rowsum(&b), &out) >= 1);
    }
}
