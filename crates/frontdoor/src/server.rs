//! The front door itself: a single-threaded TCP event loop that owns
//! both the sockets and a [`ContinuousBatcher`].
//!
//! One thread runs everything — poll for readiness, accept, read and
//! parse frames, admit through [`crate::admission`], feed the engine,
//! step it, stream tokens back, flush writes, and enforce timeouts.
//! Single-threading is a robustness choice, not a simplification: the
//! engine can never observe a half-parsed frame or a torn admission
//! decision, parsing is total (`Result`, never panics), and sockets
//! simply buffer in the kernel while a step runs. Throughput comes
//! from the engine's batching, not from socket concurrency.
//!
//! Overload and misbehaviour policy, end to end:
//!
//! * **Admission pipeline** — validate (vocabulary, lengths, duplicate
//!   ids) → tenant quota → bounded priority buffer → engine. Every
//!   refusal is a typed [`ServerFrame::Reject`]; nothing is silently
//!   dropped and nothing grows without bound.
//! * **Deadlines** — a request's `deadline_ms` covers its whole wall
//!   time from arrival: time staged in the door is subtracted from the
//!   budget handed to the engine, and requests that expire while
//!   staged are completed with [`FinishReason::Deadline`] and zero
//!   tokens without ever touching a slot or a KV page.
//! * **Slow and dead clients** — a connection whose unflushed output
//!   exceeds its write budget, or that sits idle with no in-flight
//!   work past the idle timeout, is torn down; a mid-stream disconnect
//!   cancels the request in the engine and releases its KV pages.
//! * **Malformed bytes** — frame errors poison only the connection
//!   that sent them (one `Reject{Malformed}`, then close). The engine
//!   thread never sees the bytes.

use crate::admission::{Admission, AdmissionConfig, AdmissionStats, Staged};
use crate::frame::{encode_server, ClientFrame, Decoder, RejectCode, ServerFrame, Submit};
use crate::poll::{Event, Poller};
use serving::{ContinuousBatcher, EngineConfig, FinishReason, Request, ServingError, ServingStats};
use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

use quantized::QuantSeq2Seq;

/// Front-door knobs.
#[derive(Debug, Clone)]
pub struct DoorConfig {
    /// Listen address (`127.0.0.1:0` picks a free port).
    pub addr: String,
    /// Engine configuration.
    pub engine: EngineConfig,
    /// Admission policy (quotas, priority buffer bound).
    pub admission: AdmissionConfig,
    /// Maximum simultaneous connections; later connects are refused at
    /// accept time.
    pub max_conns: usize,
    /// A connection with no in-flight requests and no traffic for this
    /// long is closed (slowloris and abandoned-socket defence).
    pub idle_timeout: Duration,
    /// Maximum unflushed outbound bytes per connection; a client that
    /// cannot keep up with its own token stream past this budget is a
    /// slow reader and is dropped (its requests are cancelled).
    pub write_budget: usize,
    /// Poll timeout when fully idle, in milliseconds.
    pub idle_poll_ms: i32,
}

impl Default for DoorConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".into(),
            engine: EngineConfig::default(),
            admission: AdmissionConfig::default(),
            max_conns: 256,
            idle_timeout: Duration::from_secs(10),
            write_budget: 1 << 20,
            idle_poll_ms: 10,
        }
    }
}

/// Counters the door accumulates over its lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DoorStats {
    /// Connections accepted.
    pub conns_accepted: u64,
    /// Connections refused because `max_conns` were already open.
    pub conns_refused: u64,
    /// Connections closed (any reason, including client hangup).
    pub conns_closed: u64,
    /// Of `conns_closed`, closed for exceeding the write budget.
    pub slow_client_drops: u64,
    /// Of `conns_closed`, closed for idling with no in-flight work.
    pub idle_drops: u64,
    /// Of `conns_closed`, closed after a malformed frame.
    pub malformed_closes: u64,
    /// Client frames parsed.
    pub frames_in: u64,
    /// Server frames queued for sending.
    pub frames_out: u64,
    /// `Reject` frames sent (all codes).
    pub rejects: u64,
    /// `Token` frames sent.
    pub tokens_streamed: u64,
    /// `Done` frames sent.
    pub done_sent: u64,
    /// Cancel frames honoured (staged or in-flight).
    pub cancels: u64,
    /// Requests completed in the door because their deadline expired
    /// while staged (never reached the engine).
    pub expired_staged: u64,
    /// Admission-layer counters.
    pub admission: AdmissionStats,
}

/// Where a live request's replies go.
struct Route {
    token: usize,
    client_id: u64,
    streamed: u32,
}

struct Conn {
    stream: TcpStream,
    decoder: Decoder,
    out: Vec<u8>,
    written: usize,
    last_read: Instant,
    /// client id -> global id, for every request this connection owns.
    open: HashMap<u64, u64>,
    /// Flush what is queued, then close (set after a malformed frame).
    close_after_flush: bool,
}

impl Conn {
    fn new(stream: TcpStream, now: Instant) -> Self {
        Self {
            stream,
            decoder: Decoder::new(),
            out: Vec::new(),
            written: 0,
            last_read: now,
            open: HashMap::new(),
            close_after_flush: false,
        }
    }

    fn queue(&mut self, frame: &ServerFrame) {
        self.out.extend_from_slice(&encode_server(frame));
    }

    fn unflushed(&self) -> usize {
        self.out.len() - self.written
    }
}

/// Why [`FrontDoor::close_conn`] ran, for stats attribution.
enum CloseWhy {
    Hangup,
    Slow,
    Idle,
    Malformed,
}

/// The serving front door. Borrows the model for its lifetime; the
/// engine, sockets, and all buffers live inside.
pub struct FrontDoor<'m> {
    cfg: DoorConfig,
    listener: TcpListener,
    poller: Poller,
    conns: Vec<Option<Conn>>,
    engine: ContinuousBatcher<'m>,
    admission: Admission,
    /// A staged request the engine refused (`QueueFull`); retried
    /// before popping more.
    carry: Option<Staged>,
    routes: HashMap<u64, Route>,
    next_gid: u64,
    src_vocab: usize,
    tgt_vocab: usize,
    max_len: usize,
    events: Vec<Event>,
    /// Lifetime counters.
    pub stats: DoorStats,
}

impl<'m> FrontDoor<'m> {
    /// Binds the listener and builds the engine.
    pub fn new(model: &'m QuantSeq2Seq, cfg: DoorConfig) -> io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let mut poller = Poller::new()?;
        poller.register(listener.as_raw_fd(), 0)?;
        let engine = ContinuousBatcher::new(model, cfg.engine)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        Ok(Self {
            admission: Admission::new(cfg.admission.clone()),
            cfg,
            listener,
            poller,
            conns: Vec::new(),
            engine,
            carry: None,
            routes: HashMap::new(),
            next_gid: 1,
            src_vocab: model.src_vocab(),
            tgt_vocab: model.tgt_vocab(),
            max_len: model.max_len(),
            events: Vec::new(),
            stats: DoorStats::default(),
        })
    }

    /// The bound address (for `127.0.0.1:0` configs).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Engine counters (admissions, sheds, retires, faults).
    pub fn engine_stats(&self) -> ServingStats {
        self.engine.stats()
    }

    /// KV arena bytes currently held by in-flight requests.
    pub fn kv_bytes_in_use(&self) -> usize {
        self.engine.kv_bytes_in_use()
    }

    /// Logical bytes held by the shared-prefix cache.
    pub fn prefix_cache_bytes(&self) -> usize {
        self.engine.prefix_cache_bytes()
    }

    /// True when no request is staged, queued, active, or awaiting its
    /// completion frame.
    pub fn idle(&self) -> bool {
        self.admission.buffered() == 0
            && self.carry.is_none()
            && self.engine.pending_len() == 0
            && self.engine.active_len() == 0
            && self.routes.is_empty()
    }

    /// Runs the event loop until `stop` is set.
    pub fn run(&mut self, stop: &AtomicBool) -> io::Result<()> {
        while !stop.load(Ordering::Relaxed) {
            self.poll_once()?;
        }
        Ok(())
    }

    /// One turn of the event loop: poll, accept, read, admit, step,
    /// stream, flush, reap. Returns after at most
    /// [`DoorConfig::idle_poll_ms`] even when nothing happens.
    pub fn poll_once(&mut self) -> io::Result<()> {
        let busy = !self.idle() || self.conns.iter().flatten().any(|c| c.unflushed() > 0);
        let timeout = if busy { 0 } else { self.cfg.idle_poll_ms };
        self.events.clear();
        let mut events = std::mem::take(&mut self.events);
        self.poller.wait(timeout, &mut events)?;
        for ev in &events {
            if ev.token == 0 {
                self.accept_ready()?;
            } else {
                self.read_conn(ev.token - 1, ev.hangup);
            }
        }
        self.events = events;

        let now = Instant::now();
        self.complete_expired_staged(now);
        self.feed_engine(now);
        if self.engine.active_len() > 0 || self.engine.pending_len() > 0 {
            self.engine.step();
        }
        self.stream_tokens();
        self.complete_finished();
        self.flush_and_reap(now);
        Ok(())
    }

    fn accept_ready(&mut self) -> io::Result<()> {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => {
                    let open = self.conns.iter().flatten().count();
                    if open >= self.cfg.max_conns {
                        self.stats.conns_refused += 1;
                        continue; // stream drops -> refused
                    }
                    stream.set_nonblocking(true)?;
                    let _ = stream.set_nodelay(true);
                    let idx = self
                        .conns
                        .iter()
                        .position(Option::is_none)
                        .unwrap_or_else(|| {
                            self.conns.push(None);
                            self.conns.len() - 1
                        });
                    self.poller.register(stream.as_raw_fd(), idx + 1)?;
                    self.conns[idx] = Some(Conn::new(stream, Instant::now()));
                    self.stats.conns_accepted += 1;
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    fn read_conn(&mut self, idx: usize, hangup: bool) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let mut buf = [0u8; 4096];
        let mut dead = false;
        loop {
            match conn.stream.read(&mut buf) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.last_read = Instant::now();
                    conn.decoder.feed(&buf[..n]);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }
        self.parse_conn(idx);
        if dead || hangup {
            self.close_conn(idx, CloseWhy::Hangup);
        }
    }

    /// Drains every complete frame the connection has buffered. A
    /// malformed frame rejects once, stops parsing (the decoder is
    /// poisoned), and schedules the connection for close.
    fn parse_conn(&mut self, idx: usize) {
        loop {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                return;
            };
            match conn.decoder.next_client() {
                Ok(Some(frame)) => {
                    self.stats.frames_in += 1;
                    match frame {
                        ClientFrame::Submit(s) => self.handle_submit(idx, s),
                        ClientFrame::Cancel { id } => self.handle_cancel(idx, id),
                    }
                }
                Ok(None) => return,
                Err(_) => {
                    self.send(
                        idx,
                        ServerFrame::Reject {
                            id: crate::frame::UNPARSED_ID,
                            code: RejectCode::Malformed,
                        },
                    );
                    self.stats.rejects += 1;
                    self.stats.malformed_closes += 1;
                    if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                        conn.close_after_flush = true;
                    }
                    return;
                }
            }
        }
    }

    fn handle_submit(&mut self, idx: usize, mut submit: Submit) {
        let client_id = submit.id;
        if let Some(code) = self.validate(idx, &submit) {
            self.send(
                idx,
                ServerFrame::Reject {
                    id: client_id,
                    code,
                },
            );
            self.stats.rejects += 1;
            return;
        }
        // Rewrite the per-connection id to a door-global one; the
        // engine requires lifetime-unique ids and clients cannot be
        // trusted to coordinate theirs.
        let gid = self.next_gid;
        self.next_gid += 1;
        submit.id = gid;
        match self.admission.offer(submit, Instant::now()) {
            Ok(accepted) => {
                self.routes.insert(
                    gid,
                    Route {
                        token: idx,
                        client_id,
                        streamed: 0,
                    },
                );
                if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
                    conn.open.insert(client_id, gid);
                }
                if let Some(victim) = accepted.evicted {
                    self.refuse_staged(victim.submit.id, RejectCode::QueueFull);
                }
            }
            Err(code) => {
                self.send(
                    idx,
                    ServerFrame::Reject {
                        id: client_id,
                        code,
                    },
                );
                self.stats.rejects += 1;
            }
        }
        self.stats.admission = self.admission.stats;
    }

    /// Validation that runs before a request can occupy any buffer
    /// space. Returns the rejection code, if any.
    fn validate(&self, idx: usize, s: &Submit) -> Option<RejectCode> {
        let conn = self.conns.get(idx).and_then(Option::as_ref)?;
        if conn.open.contains_key(&s.id) {
            return Some(RejectCode::DuplicateId);
        }
        if s.src.is_empty() || s.src.len() > self.max_len {
            return Some(RejectCode::TooLong);
        }
        // BOS + prompt + generated tokens all occupy target positions.
        if 1 + s.prompt.len() + s.max_new as usize > self.max_len {
            return Some(RejectCode::TooLong);
        }
        if s.src.iter().any(|&t| t as usize >= self.src_vocab)
            || s.prompt.iter().any(|&t| t as usize >= self.tgt_vocab)
        {
            return Some(RejectCode::BadToken);
        }
        None
    }

    fn handle_cancel(&mut self, idx: usize, client_id: u64) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
            return;
        };
        let Some(gid) = conn.open.remove(&client_id) else {
            return; // unknown or already finished: no-op
        };
        self.routes.remove(&gid);
        let dropped = self.admission.remove(gid)
            || self.carry.take_if(|c| c.submit.id == gid).is_some()
            || self.engine.cancel(gid);
        if dropped {
            self.stats.cancels += 1;
        }
        self.stats.admission = self.admission.stats;
    }

    /// Sends a `Reject` to the owner of a staged request that was
    /// evicted, and forgets the request.
    fn refuse_staged(&mut self, gid: u64, code: RejectCode) {
        if let Some(route) = self.routes.remove(&gid) {
            let client_id = route.client_id;
            if let Some(conn) = self.conns.get_mut(route.token).and_then(Option::as_mut) {
                conn.open.remove(&client_id);
            }
            self.send(
                route.token,
                ServerFrame::Reject {
                    id: client_id,
                    code,
                },
            );
            self.stats.rejects += 1;
        }
    }

    /// Completes staged requests whose wall deadline passed while they
    /// waited in the door — `Done{Deadline, 0 tokens}`, never a slot.
    fn complete_expired_staged(&mut self, now: Instant) {
        for staged in self.admission.purge_expired(now) {
            self.stats.expired_staged += 1;
            self.complete(staged.submit.id, FinishReason::Deadline);
        }
    }

    /// Moves staged requests into the engine while it has queue room.
    fn feed_engine(&mut self, now: Instant) {
        let headroom = self.cfg.engine.max_batch.max(1) * 2;
        while self.engine.pending_len() < headroom {
            let Some(staged) = self.carry.take().or_else(|| self.admission.pop()) else {
                break;
            };
            let gid = staged.submit.id;
            // The deadline covers total wall time: subtract what was
            // already spent staged in the door.
            let remaining_ms = if staged.submit.deadline_ms == 0 {
                None
            } else {
                let budget = Duration::from_millis(u64::from(staged.submit.deadline_ms));
                let spent = now.saturating_duration_since(staged.arrived);
                match budget.checked_sub(spent) {
                    Some(left) if !left.is_zero() => Some(left.as_millis() as u64),
                    _ => {
                        self.stats.expired_staged += 1;
                        self.complete(gid, FinishReason::Deadline);
                        continue;
                    }
                }
            };
            let mut req = Request::new(
                gid,
                staged.submit.src.iter().map(|&t| t as usize).collect(),
                staged.submit.max_new as usize,
            )
            .with_prompt(staged.submit.prompt.iter().map(|&t| t as usize).collect());
            req.deadline_ms = remaining_ms;
            match self.engine.submit(req) {
                Ok(()) => {}
                Err(ServingError::QueueFull { .. }) => {
                    self.carry = Some(staged);
                    break;
                }
                Err(_) => {
                    // Unreachable with door-validated requests and
                    // door-allocated ids, but never panic the loop.
                    self.refuse_staged(gid, RejectCode::TooLong);
                }
            }
        }
    }

    /// Forwards every token the engine emitted this step.
    fn stream_tokens(&mut self) {
        for (gid, token) in self.engine.drain_emitted() {
            if let Some(route) = self.routes.get_mut(&gid) {
                route.streamed += 1;
                let frame = ServerFrame::Token {
                    id: route.client_id,
                    token: token as u32,
                };
                let token_idx = route.token;
                self.send(token_idx, frame);
                self.stats.tokens_streamed += 1;
            }
        }
    }

    /// Sends `Done` for every response the engine retired.
    fn complete_finished(&mut self) {
        for resp in self.engine.drain_finished() {
            self.complete(resp.id, resp.finish);
        }
    }

    /// Finishes a request: `Done` frame to its owner, forget the route.
    fn complete(&mut self, gid: u64, reason: FinishReason) {
        if let Some(route) = self.routes.remove(&gid) {
            let client_id = route.client_id;
            if let Some(conn) = self.conns.get_mut(route.token).and_then(Option::as_mut) {
                conn.open.remove(&client_id);
            }
            self.send(
                route.token,
                ServerFrame::Done {
                    id: client_id,
                    reason,
                    n_tokens: route.streamed,
                },
            );
            self.stats.done_sent += 1;
        }
    }

    fn send(&mut self, idx: usize, frame: ServerFrame) {
        if let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            conn.queue(&frame);
            self.stats.frames_out += 1;
        }
    }

    /// Flushes every connection, then applies the write-budget, idle,
    /// and close-after-flush policies.
    fn flush_and_reap(&mut self, now: Instant) {
        for idx in 0..self.conns.len() {
            let Some(conn) = self.conns.get_mut(idx).and_then(Option::as_mut) else {
                continue;
            };
            let mut broken = false;
            while conn.written < conn.out.len() {
                match conn.stream.write(&conn.out[conn.written..]) {
                    Ok(0) => {
                        broken = true;
                        break;
                    }
                    Ok(n) => conn.written += n,
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        broken = true;
                        break;
                    }
                }
            }
            if conn.written > 0 && conn.written * 2 >= conn.out.len() {
                conn.out.drain(..conn.written);
                conn.written = 0;
            }
            if broken {
                self.close_conn(idx, CloseWhy::Hangup);
                continue;
            }
            let conn = self.conns[idx].as_ref().expect("still open");
            if conn.unflushed() > self.cfg.write_budget {
                self.close_conn(idx, CloseWhy::Slow);
            } else if conn.close_after_flush && conn.unflushed() == 0 {
                self.close_conn(idx, CloseWhy::Malformed);
            } else if conn.open.is_empty()
                && conn.unflushed() == 0
                && !conn.close_after_flush
                && now.saturating_duration_since(conn.last_read) > self.cfg.idle_timeout
            {
                self.close_conn(idx, CloseWhy::Idle);
            }
        }
    }

    /// Tears a connection down: cancel everything it owns (releasing
    /// engine slots and KV pages), deregister, drop the socket.
    fn close_conn(&mut self, idx: usize, why: CloseWhy) {
        let Some(conn) = self.conns.get_mut(idx).and_then(Option::take) else {
            return;
        };
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        for (_client_id, gid) in conn.open {
            self.routes.remove(&gid);
            let dropped = self.admission.remove(gid)
                || self.carry.take_if(|c| c.submit.id == gid).is_some()
                || self.engine.cancel(gid);
            if dropped {
                self.stats.cancels += 1;
            }
        }
        self.stats.conns_closed += 1;
        match why {
            CloseWhy::Hangup => {}
            CloseWhy::Slow => self.stats.slow_client_drops += 1,
            CloseWhy::Idle => self.stats.idle_drops += 1,
            CloseWhy::Malformed => {} // counted when the frame failed
        }
        self.stats.admission = self.admission.stats;
    }
}
