//! Chaos scenarios for the front door: hostile and unlucky client
//! behaviours, packaged so tests and CI can hurl them at a live door
//! and assert the invariants that matter — the engine never panics,
//! every request is accounted for (done or typed-rejected), no KV
//! pages leak, and a well-behaved canary keeps decoding bit-identical
//! results throughout.
//!
//! Each scenario is a plain blocking function against the door's
//! address; run them from threads to overlap. They return outcome
//! counters rather than asserting internally so the caller can decide
//! what a pass means for its configuration.

use crate::client::{Client, Completion};
use crate::frame::{RejectCode, ServerFrame, Submit};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io;
use std::net::SocketAddr;
use std::time::Duration;

/// Counters summed over a scenario's requests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Outcome {
    /// Requests that completed (`Done`, any finish reason).
    pub done: u64,
    /// `Reject{QueueFull}` responses.
    pub shed: u64,
    /// `Reject{Quota}` responses.
    pub quota: u64,
    /// `Reject{Malformed}` responses.
    pub malformed: u64,
    /// Other rejects (bad token, too long, duplicate id).
    pub other_reject: u64,
    /// Connections the server closed on us (expected for misbehaving
    /// scenarios).
    pub closed: u64,
}

impl Outcome {
    /// Folds another outcome in.
    pub fn merge(&mut self, o: &Outcome) {
        self.done += o.done;
        self.shed += o.shed;
        self.quota += o.quota;
        self.malformed += o.malformed;
        self.other_reject += o.other_reject;
        self.closed += o.closed;
    }

    fn absorb(&mut self, completion: &Completion) {
        match completion {
            Completion::Done { .. } => self.done += 1,
            Completion::Rejected(RejectCode::QueueFull) => self.shed += 1,
            Completion::Rejected(RejectCode::Quota) => self.quota += 1,
            Completion::Rejected(RejectCode::Malformed) => self.malformed += 1,
            Completion::Rejected(_) => self.other_reject += 1,
        }
    }
}

fn content_tokens(rng: &mut StdRng, n: usize, vocab: u32) -> Vec<u32> {
    (0..n).map(|_| rng.random_range(3..vocab)).collect()
}

/// A well-behaved request: submit, read to completion, return the
/// streamed tokens (or the rejection). The canary in the chaos test
/// compares these tokens against an offline decode to prove hostile
/// traffic never perturbs honest requests.
pub fn canary_request(
    addr: SocketAddr,
    id: u64,
    src: &[u32],
    max_new: u32,
    timeout: Duration,
) -> io::Result<Completion> {
    let mut client = Client::connect(addr)?;
    client.run_request(
        Submit {
            id,
            tenant: 0,
            priority: 0,
            deadline_ms: 0,
            max_new,
            src: src.to_vec(),
            prompt: vec![],
        },
        timeout,
        |_| {},
    )
}

/// Clients that submit a long decode, read one token, and vanish —
/// the mid-stream disconnect that must cancel the slot and release
/// its KV pages.
pub fn disconnect_mid_decode(
    addr: SocketAddr,
    n_clients: usize,
    vocab: u32,
    seed: u64,
) -> io::Result<Outcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Outcome::default();
    for i in 0..n_clients {
        let mut client = Client::connect(addr)?;
        client.submit(Submit {
            id: i as u64,
            tenant: 1,
            priority: 1,
            deadline_ms: 0,
            max_new: 64,
            src: content_tokens(&mut rng, 5, vocab),
            prompt: vec![],
        })?;
        // Wait for the stream to start, then hang up mid-decode.
        match client.recv(Duration::from_secs(10))? {
            Some(ServerFrame::Reject { .. }) => out.shed += 1,
            Some(_) => out.closed += 1, // token arrived; now vanish
            None => {}
        }
        drop(client);
    }
    Ok(out)
}

/// Slowloris: connections that dribble a byte of a valid frame at a
/// time and never finish, plus connections that submit and then stop
/// reading. Both must be bounded by the door's idle timeout and write
/// budget; neither may wedge the engine.
pub fn slowloris(addr: SocketAddr, n_conns: usize, vocab: u32, seed: u64) -> io::Result<Outcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Outcome::default();
    let mut dribblers = Vec::new();
    for i in 0..n_conns {
        let mut client = Client::connect(addr)?;
        let frame = crate::frame::encode_client(&crate::frame::ClientFrame::Submit(Submit {
            id: i as u64,
            tenant: 2,
            priority: 2,
            deadline_ms: 0,
            max_new: 8,
            src: content_tokens(&mut rng, 4, vocab),
            prompt: vec![],
        }));
        // Send only a prefix, one byte at a time, and never the rest.
        let cut = rng.random_range(1..frame.len());
        for b in &frame[..cut] {
            client.send_raw(&[*b])?;
        }
        dribblers.push(client);
    }
    // Hold the half-open connections long enough for the door's idle
    // policy to be the thing that reaps them.
    std::thread::sleep(Duration::from_millis(300));
    for mut client in dribblers {
        // The server should eventually close; either observation is a
        // pass, a hang here would be the failure.
        if client.recv(Duration::from_millis(200)).is_err() {
            out.closed += 1;
        }
    }
    Ok(out)
}

/// Pure garbage: random bytes that must never panic the server. Each
/// connection expects a `Reject{Malformed}` or a close.
pub fn malformed_storm(addr: SocketAddr, n_conns: usize, seed: u64) -> io::Result<Outcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Outcome::default();
    for _ in 0..n_conns {
        let mut client = Client::connect(addr)?;
        let n = rng.random_range(1..200usize);
        let garbage: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u32) as u8).collect();
        client.send_raw(&garbage)?;
        match client.recv(Duration::from_secs(5)) {
            Ok(Some(ServerFrame::Reject {
                code: RejectCode::Malformed,
                ..
            })) => out.malformed += 1,
            Ok(Some(_)) | Ok(None) => {}
            Err(_) => out.closed += 1,
        }
    }
    Ok(out)
}

/// A queue-full storm: one connection fires `n_requests` submissions
/// back-to-back without reading, then collects everything. Every
/// request must be accounted for as done or typed-rejected.
pub fn queue_storm(
    addr: SocketAddr,
    n_requests: usize,
    tenant: u16,
    vocab: u32,
    seed: u64,
) -> io::Result<Outcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = Client::connect(addr)?;
    for i in 0..n_requests {
        client.submit(Submit {
            id: i as u64,
            tenant,
            priority: rng.random_range(0..3u32) as u8,
            deadline_ms: 0,
            max_new: 4,
            src: content_tokens(&mut rng, 4, vocab),
            prompt: vec![],
        })?;
    }
    let mut out = Outcome::default();
    let mut settled = 0usize;
    while settled < n_requests {
        match client.recv(Duration::from_secs(30))? {
            Some(ServerFrame::Done { .. }) => {
                out.done += 1;
                settled += 1;
            }
            Some(ServerFrame::Reject { code, .. }) => {
                out.absorb(&Completion::Rejected(code));
                settled += 1;
            }
            Some(ServerFrame::Token { .. }) => {}
            None => break, // timeout: caller's assertions will catch the shortfall
        }
    }
    Ok(out)
}

/// One tenant burns far past its token-bucket budget as fast as it
/// can; the excess must be refused with `Reject{Quota}` while the
/// requests inside the budget complete.
pub fn quota_exhaustion(
    addr: SocketAddr,
    n_requests: usize,
    tenant: u16,
    vocab: u32,
    seed: u64,
) -> io::Result<Outcome> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client = Client::connect(addr)?;
    let mut out = Outcome::default();
    for i in 0..n_requests {
        let completion = client.run_request(
            Submit {
                id: i as u64,
                tenant,
                priority: 1,
                deadline_ms: 0,
                max_new: 8,
                src: content_tokens(&mut rng, 6, vocab),
                prompt: vec![],
            },
            Duration::from_secs(30),
            |_| {},
        )?;
        out.absorb(&completion);
    }
    Ok(out)
}
