//! Serve a demo model over TCP through the front door.
//!
//! ```text
//! frontdoor [ADDR]            # default 127.0.0.1:7071
//! ```
//!
//! Builds the small paper-shape model used across the workspace's
//! benches (untrained weights — the point is the serving path, not
//! translation quality), binds the door, and runs the event loop until
//! the process is killed. Engine knobs come from the usual `ACCEL_*`
//! environment variables (`ACCEL_MAX_QUEUE`, `ACCEL_PREFIX_CACHE`,
//! `ACCEL_KV_PAGE`, ...).

use frontdoor::{DoorConfig, FrontDoor};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::atomic::AtomicBool;
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

fn main() {
    let addr = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "127.0.0.1:7071".to_string());

    let cfg = ModelConfig {
        name: "Transformer-base-2L-frontdoor".into(),
        d_model: 128,
        d_ff: 512,
        h: 8,
        n_layers: 2,
        vocab: 64,
        max_len: 96,
    };
    eprintln!(
        "building {} (d_model={}, {} layers, vocab={})...",
        cfg.name, cfg.d_model, cfg.n_layers, cfg.vocab
    );
    let mut rng = StdRng::seed_from_u64(0xD00D_5EED);
    let fp32 = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 8);
    let calib = gen.corpus(4, &mut StdRng::seed_from_u64(0xD00D_CA11));
    let model =
        quantized::QuantSeq2Seq::from_trained(&fp32, &calib, quantized::SoftmaxMode::Hardware);

    let door_cfg = DoorConfig {
        addr,
        ..DoorConfig::default()
    };
    let mut door = FrontDoor::new(&model, door_cfg).expect("bind front door");
    eprintln!(
        "front door listening on {} (src_vocab={}, tgt_vocab={}, max_len={})",
        door.local_addr().expect("local addr"),
        cfg.vocab,
        cfg.vocab,
        cfg.max_len,
    );

    // Runs until killed; the door itself never panics on client input.
    static STOP: AtomicBool = AtomicBool::new(false);
    door.run(&STOP).expect("event loop");
}
