//! A thin, hand-rolled readiness abstraction over nonblocking sockets.
//!
//! Per the workspace's offline-deps policy there is no `mio`/`epoll`
//! crate here: on Linux the poller talks to the kernel's `epoll`
//! facility directly through the C ABI `std` already links (the same
//! pattern as `tensor::par`'s `sched_setaffinity` pinning); everywhere
//! else a portable scan fallback reports every registered socket as
//! possibly ready and relies on the nonblocking I/O calls to sort out
//! the truth (`WouldBlock` is cheap).
//!
//! The surface is deliberately tiny — register a fd with a token, wait
//! for readable/hangup events — because the event loop in
//! [`crate::server`] flushes writes opportunistically every turn
//! instead of tracking `EPOLLOUT` interest.

use std::io;
use std::os::fd::RawFd;

/// One readiness event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The token the fd was registered with.
    pub token: usize,
    /// The peer closed or the socket errored — the connection should
    /// be torn down after draining whatever is readable.
    pub hangup: bool,
}

#[cfg(target_os = "linux")]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;

    // The epoll C ABI, declared directly: `std` links libc, so the
    // symbols are always present on Linux. `epoll_event` is packed on
    // x86-64 (kernel UAPI quirk) and naturally aligned elsewhere.
    #[cfg_attr(target_arch = "x86_64", repr(C, packed))]
    #[cfg_attr(not(target_arch = "x86_64"), repr(C))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    #[allow(unsafe_code)]
    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn close(fd: i32) -> i32;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;

    /// Linux: a real `epoll` instance.
    #[derive(Debug)]
    pub struct Poller {
        epfd: RawFd,
    }

    impl Poller {
        #[allow(unsafe_code)]
        pub fn new() -> io::Result<Self> {
            // SAFETY: plain syscall wrapper; no pointers involved.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self { epfd })
        }

        #[allow(unsafe_code)]
        pub fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
            let mut ev = EpollEvent {
                // Level-triggered readable + peer-closed interest; the
                // event loop flushes writes opportunistically, so no
                // EPOLLOUT (it would busy-wake on writable sockets).
                events: EPOLLIN | EPOLLRDHUP,
                data: token as u64,
            };
            // SAFETY: `ev` outlives the call; the kernel copies it.
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        #[allow(unsafe_code)]
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: as in `register`; DEL ignores the event payload
            // (non-null for pre-2.6.9 kernel compatibility).
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        #[allow(unsafe_code)]
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            const CAP: usize = 256;
            let mut events = [EpollEvent { events: 0, data: 0 }; CAP];
            // SAFETY: the buffer is a stack array of CAP entries and
            // the kernel writes at most `maxevents` of them.
            let n = unsafe { epoll_wait(self.epfd, events.as_mut_ptr(), CAP as i32, timeout_ms) };
            if n < 0 {
                let err = io::Error::last_os_error();
                if err.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: treat as an empty wake-up
                }
                return Err(err);
            }
            for e in &events[..n as usize] {
                let bits = e.events;
                out.push(Event {
                    token: e.data as usize,
                    hangup: bits & (EPOLLERR | EPOLLHUP | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for Poller {
        #[allow(unsafe_code)]
        fn drop(&mut self) {
            // SAFETY: closing the fd we own exactly once.
            unsafe { close(self.epfd) };
        }
    }
}

#[cfg(not(target_os = "linux"))]
mod imp {
    use super::Event;
    use std::io;
    use std::os::fd::RawFd;
    use std::time::Duration;

    /// Portable fallback: report every registered fd as possibly
    /// readable after a short sleep; the nonblocking reads discover
    /// the truth. Correct, just not as idle-efficient as epoll.
    #[derive(Debug, Default)]
    pub struct Poller {
        tokens: Vec<(RawFd, usize)>,
    }

    impl Poller {
        pub fn new() -> io::Result<Self> {
            Ok(Self::default())
        }
        pub fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
            self.tokens.push((fd, token));
            Ok(())
        }
        pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
            self.tokens.retain(|&(f, _)| f != fd);
            Ok(())
        }
        pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
            if timeout_ms > 0 {
                std::thread::sleep(Duration::from_millis(timeout_ms.min(5) as u64));
            }
            out.extend(self.tokens.iter().map(|&(_, token)| Event {
                token,
                hangup: false,
            }));
            Ok(())
        }
    }
}

/// The platform poller (`epoll` on Linux, scan fallback elsewhere).
#[derive(Debug)]
pub struct Poller(imp::Poller);

impl Poller {
    /// Creates a poller.
    pub fn new() -> io::Result<Self> {
        imp::Poller::new().map(Self)
    }

    /// Watches `fd` for readability/hangup, reporting it as `token`.
    pub fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        self.0.register(fd, token)
    }

    /// Stops watching `fd`.
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        self.0.deregister(fd)
    }

    /// Waits up to `timeout_ms` (0 = just poll, -1 = block) and appends
    /// ready events to `out`.
    pub fn wait(&mut self, timeout_ms: i32, out: &mut Vec<Event>) -> io::Result<()> {
        self.0.wait(timeout_ms, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;
    use std::net::{TcpListener, TcpStream};
    use std::os::fd::AsRawFd;

    #[test]
    fn readiness_surfaces_connects_and_data() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        listener.set_nonblocking(true).unwrap();
        let addr = listener.local_addr().unwrap();
        let mut poller = Poller::new().unwrap();
        poller.register(listener.as_raw_fd(), 0).unwrap();

        let mut client = TcpStream::connect(addr).unwrap();
        let mut events = Vec::new();
        // The pending connect must wake the listener token.
        for _ in 0..200 {
            poller.wait(10, &mut events).unwrap();
            if events.iter().any(|e| e.token == 0) {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == 0), "accept readiness");

        let (conn, _) = listener.accept().unwrap();
        conn.set_nonblocking(true).unwrap();
        poller.register(conn.as_raw_fd(), 1).unwrap();
        client.write_all(b"ping").unwrap();
        events.clear();
        for _ in 0..200 {
            poller.wait(10, &mut events).unwrap();
            if events.iter().any(|e| e.token == 1) {
                break;
            }
        }
        assert!(events.iter().any(|e| e.token == 1), "data readiness");
        poller.deregister(conn.as_raw_fd()).unwrap();
    }
}
