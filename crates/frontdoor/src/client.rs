//! A small blocking client for the front-door protocol, used by the
//! integration tests, the chaos harness, and the serving benchmark.
//!
//! It is intentionally dumb: one `TcpStream`, one [`Decoder`], and
//! blocking reads with an optional timeout. Concurrency in the bench
//! comes from running many of these, not from making one clever.

use crate::frame::{encode_client, ClientFrame, Decoder, RejectCode, ServerFrame, Submit};
use serving::FinishReason;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

/// How one submitted request ended, as observed on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// The request ran; `tokens` were streamed before `Done`.
    Done {
        /// Why the engine finished it.
        reason: FinishReason,
        /// The streamed tokens, in order.
        tokens: Vec<u32>,
    },
    /// The request was refused at admission.
    Rejected(RejectCode),
}

/// A blocking protocol client.
pub struct Client {
    stream: TcpStream,
    decoder: Decoder,
}

impl Client {
    /// Connects to the door.
    pub fn connect(addr: SocketAddr) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        Ok(Self {
            stream,
            decoder: Decoder::new(),
        })
    }

    /// Sends a `Submit` frame.
    pub fn submit(&mut self, submit: Submit) -> io::Result<()> {
        self.stream
            .write_all(&encode_client(&ClientFrame::Submit(submit)))
    }

    /// Sends a `Cancel` frame.
    pub fn cancel(&mut self, id: u64) -> io::Result<()> {
        self.stream
            .write_all(&encode_client(&ClientFrame::Cancel { id }))
    }

    /// Writes raw bytes (the chaos harness sends garbage this way).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Clones the underlying stream so a dedicated thread can send
    /// while this client keeps receiving (open-loop benchmarking).
    pub fn try_clone_stream(&self) -> io::Result<TcpStream> {
        self.stream.try_clone()
    }

    /// Half-closes the write side, signalling no more requests.
    pub fn shutdown_write(&mut self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Blocks until one server frame arrives, or `timeout` passes
    /// (`Ok(None)`), or the server closes the connection
    /// (`Err(UnexpectedEof)`).
    pub fn recv(&mut self, timeout: Duration) -> io::Result<Option<ServerFrame>> {
        let deadline = Instant::now() + timeout;
        let mut buf = [0u8; 4096];
        loop {
            match self.decoder.next_server() {
                Ok(Some(frame)) => return Ok(Some(frame)),
                Ok(None) => {}
                Err(e) => return Err(io::Error::new(io::ErrorKind::InvalidData, e.to_string())),
            }
            let now = Instant::now();
            if now >= deadline {
                return Ok(None);
            }
            self.stream.set_read_timeout(Some(deadline - now))?;
            match self.stream.read(&mut buf) {
                Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
                Ok(n) => self.decoder.feed(&buf[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Ok(None);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
    }

    /// Submits one request and reads frames until its `Done` or
    /// `Reject` arrives (frames for other ids are passed to `other`).
    pub fn run_request(
        &mut self,
        submit: Submit,
        timeout: Duration,
        mut other: impl FnMut(&ServerFrame),
    ) -> io::Result<Completion> {
        let id = submit.id;
        self.submit(submit)?;
        let deadline = Instant::now() + timeout;
        let mut tokens = Vec::new();
        loop {
            let now = Instant::now();
            if now >= deadline {
                return Err(io::ErrorKind::TimedOut.into());
            }
            match self.recv(deadline - now)? {
                Some(ServerFrame::Token { id: fid, token }) if fid == id => tokens.push(token),
                Some(ServerFrame::Done {
                    id: fid,
                    reason,
                    n_tokens,
                }) if fid == id => {
                    if n_tokens as usize != tokens.len() {
                        return Err(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("torn stream: {} tokens, Done says {n_tokens}", tokens.len()),
                        ));
                    }
                    return Ok(Completion::Done { reason, tokens });
                }
                Some(ServerFrame::Reject { id: fid, code }) if fid == id => {
                    return Ok(Completion::Rejected(code));
                }
                Some(frame) => other(&frame),
                None => return Err(io::ErrorKind::TimedOut.into()),
            }
        }
    }
}
