//! Length-prefixed framed wire protocol.
//!
//! Every frame is a little-endian `u32` payload length followed by the
//! payload; the first payload byte is the frame kind. The decoder is
//! incremental (feed bytes as they arrive, take complete frames) and
//! **total**: any byte sequence either yields frames or a typed
//! [`FrameError`] — it never panics, so a malformed client can at worst
//! get itself disconnected, never take down the engine thread.
//!
//! Client → server:
//!
//! ```text
//! SUBMIT  = 0x01 | id u64 | tenant u16 | priority u8 | deadline_ms u32
//!                | max_new u32 | src_len u16 | prompt_len u16
//!                | src_len × u32 | prompt_len × u32
//! CANCEL  = 0x02 | id u64
//! ```
//!
//! Server → client (tokens stream as they are generated):
//!
//! ```text
//! TOKEN   = 0x01 | id u64 | token u32
//! DONE    = 0x02 | id u64 | reason u8 | n_tokens u32
//! REJECT  = 0x03 | id u64 | code u8
//! ```
//!
//! `deadline_ms == 0` means "no deadline". Request ids are chosen by
//! the client and scoped to its connection; the server maps them to
//! globally unique engine ids internally. A REJECT for a frame whose id
//! could not be parsed carries `id == u64::MAX`.

use serving::FinishReason;

/// Hard ceiling on a frame's payload length. A length prefix above
/// this is a malformed frame (it would otherwise let one client demand
/// an arbitrarily large allocation before sending a single payload
/// byte).
pub const MAX_FRAME_BYTES: usize = 256 * 1024;

/// Sentinel id used in a REJECT when the offending frame's id could
/// not be parsed.
pub const UNPARSED_ID: u64 = u64::MAX;

/// Why a byte stream failed to parse as frames. All variants are
/// connection-fatal: after a framing error the stream offset can no
/// longer be trusted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix exceeds [`MAX_FRAME_BYTES`].
    Oversize {
        /// The declared payload length.
        len: usize,
    },
    /// The payload was empty (no kind byte).
    Empty,
    /// The kind byte is not a known frame kind.
    BadKind(u8),
    /// The payload is shorter than its kind's fixed header.
    Truncated,
    /// The payload length disagrees with the token counts it declares.
    LengthMismatch,
    /// A priority class outside `0..=2`.
    BadPriority(u8),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Oversize { len } => {
                write!(f, "frame length {len} exceeds {MAX_FRAME_BYTES}")
            }
            FrameError::Empty => write!(f, "empty frame payload"),
            FrameError::BadKind(k) => write!(f, "unknown frame kind {k:#x}"),
            FrameError::Truncated => write!(f, "frame payload truncated"),
            FrameError::LengthMismatch => write!(f, "frame length disagrees with token counts"),
            FrameError::BadPriority(p) => write!(f, "priority {p} outside 0..=2"),
        }
    }
}

impl std::error::Error for FrameError {}

/// A request submission as it appears on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Submit {
    /// Client-chosen id, unique among the connection's in-flight
    /// requests.
    pub id: u64,
    /// Tenant the request bills against.
    pub tenant: u16,
    /// Priority class: `0` (interactive) sheds last, `2` (batch) sheds
    /// first.
    pub priority: u8,
    /// Wall-clock deadline in milliseconds from arrival (`0` = none).
    pub deadline_ms: u32,
    /// Generation budget.
    pub max_new: u32,
    /// Source tokens.
    pub src: Vec<u32>,
    /// Target-side prompt tokens.
    pub prompt: Vec<u32>,
}

/// Frames a client sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClientFrame {
    /// Submit a request.
    Submit(Submit),
    /// Cancel an in-flight or queued request by client id. Never
    /// acknowledged — the canonical sender is about to go away.
    Cancel {
        /// The client id to cancel.
        id: u64,
    },
}

/// Why the server refused a submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectCode {
    /// Admission queue full; shed. Retry after backoff.
    QueueFull = 1,
    /// The tenant's token-bucket quota is exhausted.
    Quota = 2,
    /// The frame itself was malformed (also closes the connection).
    Malformed = 3,
    /// A token id outside the model's vocabulary.
    BadToken = 4,
    /// `src`/`prompt`/`max_new` exceed the model's `max_len`, or the
    /// source was empty.
    TooLong = 5,
    /// The client id is already in flight on this connection.
    DuplicateId = 6,
}

impl RejectCode {
    fn from_u8(v: u8) -> Option<Self> {
        Some(match v {
            1 => RejectCode::QueueFull,
            2 => RejectCode::Quota,
            3 => RejectCode::Malformed,
            4 => RejectCode::BadToken,
            5 => RejectCode::TooLong,
            6 => RejectCode::DuplicateId,
            _ => return None,
        })
    }
}

/// Wire encoding of [`FinishReason`].
pub fn reason_to_u8(r: FinishReason) -> u8 {
    match r {
        FinishReason::Eos => 0,
        FinishReason::Budget => 1,
        FinishReason::Deadline => 2,
        FinishReason::Quarantine => 3,
    }
}

/// Inverse of [`reason_to_u8`].
pub fn reason_from_u8(v: u8) -> Option<FinishReason> {
    Some(match v {
        0 => FinishReason::Eos,
        1 => FinishReason::Budget,
        2 => FinishReason::Deadline,
        3 => FinishReason::Quarantine,
        _ => return None,
    })
}

/// Frames the server sends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerFrame {
    /// One generated token, streamed as soon as the engine emits it.
    Token {
        /// The client id it belongs to.
        id: u64,
        /// The token.
        token: u32,
    },
    /// The request finished; `n_tokens` TOKEN frames preceded this.
    Done {
        /// The client id.
        id: u64,
        /// Why it finished.
        reason: FinishReason,
        /// Total tokens streamed for the request (lets the client
        /// detect a torn stream).
        n_tokens: u32,
    },
    /// The request was refused at admission; no TOKEN frames were or
    /// will be sent for it.
    Reject {
        /// The client id ([`UNPARSED_ID`] if it could not be parsed).
        id: u64,
        /// Why.
        code: RejectCode,
    },
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A cursor over a frame payload; every read is bounds-checked.
struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, at: 0 }
    }
    fn u8(&mut self) -> Result<u8, FrameError> {
        let v = *self.buf.get(self.at).ok_or(FrameError::Truncated)?;
        self.at += 1;
        Ok(v)
    }
    fn u16(&mut self) -> Result<u16, FrameError> {
        Ok(u16::from_le_bytes(self.take::<2>()?))
    }
    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.take::<4>()?))
    }
    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.take::<8>()?))
    }
    fn take<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        let end = self.at.checked_add(N).ok_or(FrameError::Truncated)?;
        let s = self.buf.get(self.at..end).ok_or(FrameError::Truncated)?;
        self.at = end;
        Ok(s.try_into().expect("slice of length N"))
    }
    fn u32_vec(&mut self, n: usize) -> Result<Vec<u32>, FrameError> {
        let mut v = Vec::with_capacity(n);
        for _ in 0..n {
            v.push(self.u32()?);
        }
        Ok(v)
    }
    fn done(&self) -> Result<(), FrameError> {
        if self.at == self.buf.len() {
            Ok(())
        } else {
            Err(FrameError::LengthMismatch)
        }
    }
}

fn frame(payload: Vec<u8>) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + payload.len());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Encodes a client frame (length prefix included).
pub fn encode_client(f: &ClientFrame) -> Vec<u8> {
    let mut p = Vec::new();
    match f {
        ClientFrame::Submit(s) => {
            p.push(0x01);
            put_u64(&mut p, s.id);
            put_u16(&mut p, s.tenant);
            p.push(s.priority);
            put_u32(&mut p, s.deadline_ms);
            put_u32(&mut p, s.max_new);
            put_u16(&mut p, s.src.len() as u16);
            put_u16(&mut p, s.prompt.len() as u16);
            for &t in &s.src {
                put_u32(&mut p, t);
            }
            for &t in &s.prompt {
                put_u32(&mut p, t);
            }
        }
        ClientFrame::Cancel { id } => {
            p.push(0x02);
            put_u64(&mut p, *id);
        }
    }
    frame(p)
}

/// Encodes a server frame (length prefix included).
pub fn encode_server(f: &ServerFrame) -> Vec<u8> {
    let mut p = Vec::new();
    match f {
        ServerFrame::Token { id, token } => {
            p.push(0x01);
            put_u64(&mut p, *id);
            put_u32(&mut p, *token);
        }
        ServerFrame::Done {
            id,
            reason,
            n_tokens,
        } => {
            p.push(0x02);
            put_u64(&mut p, *id);
            p.push(reason_to_u8(*reason));
            put_u32(&mut p, *n_tokens);
        }
        ServerFrame::Reject { id, code } => {
            p.push(0x03);
            put_u64(&mut p, *id);
            p.push(*code as u8);
        }
    }
    frame(p)
}

fn decode_client_payload(p: &[u8]) -> Result<ClientFrame, FrameError> {
    let mut c = Cursor::new(p);
    match c.u8().map_err(|_| FrameError::Empty)? {
        0x01 => {
            let id = c.u64()?;
            let tenant = c.u16()?;
            let priority = c.u8()?;
            if priority > 2 {
                return Err(FrameError::BadPriority(priority));
            }
            let deadline_ms = c.u32()?;
            let max_new = c.u32()?;
            let src_len = c.u16()? as usize;
            let prompt_len = c.u16()? as usize;
            let src = c.u32_vec(src_len)?;
            let prompt = c.u32_vec(prompt_len)?;
            c.done()?;
            Ok(ClientFrame::Submit(Submit {
                id,
                tenant,
                priority,
                deadline_ms,
                max_new,
                src,
                prompt,
            }))
        }
        0x02 => {
            let id = c.u64()?;
            c.done()?;
            Ok(ClientFrame::Cancel { id })
        }
        k => Err(FrameError::BadKind(k)),
    }
}

fn decode_server_payload(p: &[u8]) -> Result<ServerFrame, FrameError> {
    let mut c = Cursor::new(p);
    match c.u8().map_err(|_| FrameError::Empty)? {
        0x01 => {
            let id = c.u64()?;
            let token = c.u32()?;
            c.done()?;
            Ok(ServerFrame::Token { id, token })
        }
        0x02 => {
            let id = c.u64()?;
            let reason = reason_from_u8(c.u8()?).ok_or(FrameError::Truncated)?;
            let n_tokens = c.u32()?;
            c.done()?;
            Ok(ServerFrame::Done {
                id,
                reason,
                n_tokens,
            })
        }
        0x03 => {
            let id = c.u64()?;
            let code = RejectCode::from_u8(c.u8()?).ok_or(FrameError::Truncated)?;
            c.done()?;
            Ok(ServerFrame::Reject { id, code })
        }
        k => Err(FrameError::BadKind(k)),
    }
}

/// Incremental frame decoder: feed bytes, take complete frames.
///
/// After the first [`FrameError`] the decoder is poisoned (the stream
/// offset can no longer be trusted) and keeps returning the error.
#[derive(Debug, Default)]
pub struct Decoder {
    buf: Vec<u8>,
    poisoned: Option<FrameError>,
}

impl Decoder {
    /// An empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends raw bytes from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        if self.poisoned.is_none() {
            self.buf.extend_from_slice(bytes);
        }
    }

    /// Bytes buffered but not yet consumed as complete frames.
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Tries to take the next complete frame's payload off the buffer.
    fn next_payload(&mut self) -> Result<Option<Vec<u8>>, FrameError> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().expect("4 bytes")) as usize;
        if len > MAX_FRAME_BYTES {
            let e = FrameError::Oversize { len };
            self.poisoned = Some(e.clone());
            return Err(e);
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let payload = self.buf[4..4 + len].to_vec();
        self.buf.drain(..4 + len);
        Ok(Some(payload))
    }

    fn poison<T>(&mut self, r: Result<T, FrameError>) -> Result<T, FrameError> {
        if let Err(e) = &r {
            self.poisoned = Some(e.clone());
        }
        r
    }

    /// Takes the next complete client frame, `Ok(None)` if more bytes
    /// are needed.
    pub fn next_client(&mut self) -> Result<Option<ClientFrame>, FrameError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(p) => {
                let r = decode_client_payload(&p);
                self.poison(r).map(Some)
            }
        }
    }

    /// Takes the next complete server frame, `Ok(None)` if more bytes
    /// are needed.
    pub fn next_server(&mut self) -> Result<Option<ServerFrame>, FrameError> {
        match self.next_payload()? {
            None => Ok(None),
            Some(p) => {
                let r = decode_server_payload(&p);
                self.poison(r).map(Some)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit() -> ClientFrame {
        ClientFrame::Submit(Submit {
            id: 7,
            tenant: 3,
            priority: 1,
            deadline_ms: 250,
            max_new: 16,
            src: vec![4, 5, 6],
            prompt: vec![9, 10],
        })
    }

    #[test]
    fn client_frames_round_trip() {
        for f in [submit(), ClientFrame::Cancel { id: 42 }] {
            let bytes = encode_client(&f);
            let mut d = Decoder::new();
            d.feed(&bytes);
            assert_eq!(d.next_client().unwrap(), Some(f));
            assert_eq!(d.next_client().unwrap(), None);
            assert_eq!(d.buffered(), 0);
        }
    }

    #[test]
    fn server_frames_round_trip() {
        let frames = [
            ServerFrame::Token { id: 1, token: 99 },
            ServerFrame::Done {
                id: 1,
                reason: FinishReason::Eos,
                n_tokens: 12,
            },
            ServerFrame::Reject {
                id: 2,
                code: RejectCode::QueueFull,
            },
        ];
        let mut bytes = Vec::new();
        for f in &frames {
            bytes.extend(encode_server(f));
        }
        let mut d = Decoder::new();
        // Dribble one byte at a time: the decoder must reassemble.
        let mut got = Vec::new();
        for b in bytes {
            d.feed(&[b]);
            while let Some(f) = d.next_server().unwrap() {
                got.push(f);
            }
        }
        assert_eq!(got, frames);
    }

    #[test]
    fn oversize_length_prefix_is_fatal() {
        let mut d = Decoder::new();
        d.feed(&(u32::MAX).to_le_bytes());
        let e = d.next_client().unwrap_err();
        assert!(matches!(e, FrameError::Oversize { .. }));
        // Poisoned: even well-formed bytes afterwards keep erroring.
        d.feed(&encode_client(&submit()));
        assert!(d.next_client().is_err());
    }

    #[test]
    fn unknown_kind_and_truncation_rejected() {
        let mut d = Decoder::new();
        d.feed(&frame(vec![0x77, 0, 0]));
        assert_eq!(d.next_client().unwrap_err(), FrameError::BadKind(0x77));

        let mut d = Decoder::new();
        d.feed(&frame(vec![0x02, 1, 2])); // CANCEL needs 8 id bytes
        assert_eq!(d.next_client().unwrap_err(), FrameError::Truncated);

        let mut d = Decoder::new();
        d.feed(&frame(Vec::new()));
        assert_eq!(d.next_client().unwrap_err(), FrameError::Empty);
    }

    #[test]
    fn token_count_mismatch_rejected() {
        // A SUBMIT declaring 3 src tokens but carrying 4.
        let ClientFrame::Submit(s) = submit() else {
            unreachable!()
        };
        let mut bytes = encode_client(&ClientFrame::Submit(Submit {
            src: vec![1, 2, 3, 4],
            ..s
        }));
        // Patch src_len back down to 3 (offset: 4 len + 1 kind + 8 id +
        // 2 tenant + 1 prio + 4 deadline + 4 max_new = 24).
        bytes[24] = 3;
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_client().unwrap_err(), FrameError::LengthMismatch);
    }

    #[test]
    fn bad_priority_rejected() {
        let ClientFrame::Submit(s) = submit() else {
            unreachable!()
        };
        let bytes = encode_client(&ClientFrame::Submit(Submit { priority: 9, ..s }));
        let mut d = Decoder::new();
        d.feed(&bytes);
        assert_eq!(d.next_client().unwrap_err(), FrameError::BadPriority(9));
    }

    #[test]
    fn random_garbage_never_panics() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(0xF00D);
        for _ in 0..200 {
            let n = rng.random_range(0..64usize);
            let bytes: Vec<u8> = (0..n).map(|_| rng.random_range(0..=255u32) as u8).collect();
            let mut d = Decoder::new();
            d.feed(&bytes);
            // Either frames, need-more, or a typed error — never a panic.
            while let Ok(Some(_)) = d.next_client() {}
        }
    }
}
