//! Overload-safe multi-tenant TCP front door for the continuous
//! batching engine.
//!
//! The accelerator work in this workspace ends at
//! [`serving::ContinuousBatcher`] — an in-process engine. This crate
//! puts a network in front of it without giving up the properties the
//! rest of the stack works hard for: bounded memory under any offered
//! load, bit-identical decoding no matter how hostile the traffic,
//! and no failure mode in which a client can panic or wedge the
//! engine thread.
//!
//! The pieces, bottom-up:
//!
//! * [`poll`] — a hand-rolled readiness abstraction (real `epoll` on
//!   Linux via the C ABI `std` already links, a scan fallback
//!   elsewhere); the offline-deps policy means no `mio`/`tokio` here.
//! * [`frame`] — the length-prefixed wire protocol and an incremental
//!   decoder whose parsing is total: garbage bytes produce a typed
//!   error, never a panic.
//! * [`admission`] — per-tenant token-bucket quotas, three priority
//!   classes, and a bounded staging buffer that sheds
//!   lowest-priority-first instead of growing.
//! * [`server`] — the single-threaded event loop that owns the
//!   sockets *and* the engine: accept → parse → admit → feed → step →
//!   stream → flush → reap, with wall-clock deadlines, write budgets,
//!   idle timeouts, and disconnect-cancels-request semantics.
//! * [`client`], [`workload`], [`chaos`] — a blocking protocol
//!   client, a seeded open-loop workload generator (Poisson/bursty
//!   arrivals, Zipf lengths, tenant mixes), and the chaos scenarios
//!   the integration tests and CI soak job run against a live door.

#![deny(unsafe_code)] // narrowly re-allowed in `poll` for the epoll FFI
#![warn(missing_docs)]

pub mod admission;
pub mod chaos;
pub mod client;
pub mod frame;
pub mod poll;
pub mod server;
pub mod workload;

pub use admission::{Admission, AdmissionConfig, AdmissionStats, TokenBucket};
pub use client::{Client, Completion};
pub use frame::{ClientFrame, Decoder, FrameError, RejectCode, ServerFrame, Submit};
pub use server::{DoorConfig, DoorStats, FrontDoor};
pub use workload::{Arrival, Timed, Workload, WorkloadConfig};
