//! Deterministic open-loop workload generation for the serving bench
//! and the chaos harness.
//!
//! A [`Workload`] turns a seed plus a [`WorkloadConfig`] into a
//! timestamped request trace: arrival offsets follow a Poisson process
//! (or a bursty variant that clumps the same average rate into
//! back-to-back trains), request lengths follow a Zipf-like rank
//! distribution (most requests short, a heavy tail of long ones), and
//! each request is assigned a tenant and priority class from weighted
//! mixes. Everything is derived from the seed, so a trace replays
//! bit-identically.

use crate::frame::Submit;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transformer::tasks::FIRST_CONTENT;

/// Arrival process shape.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Arrival {
    /// Independent exponential inter-arrival gaps at `rate_per_sec`.
    Poisson {
        /// Mean offered load, requests per second.
        rate_per_sec: f64,
    },
    /// The same mean rate, delivered as trains of `burst` back-to-back
    /// requests separated by correspondingly longer gaps — the
    /// overload-storm shape that exercises shedding.
    Bursty {
        /// Mean offered load, requests per second.
        rate_per_sec: f64,
        /// Requests per train.
        burst: usize,
    },
}

/// Knobs for one generated trace.
#[derive(Debug, Clone)]
pub struct WorkloadConfig {
    /// Arrival process.
    pub arrival: Arrival,
    /// Zipf skew for length ranks (`0.0` = uniform; `~1.0` = classic
    /// heavy tail).
    pub zipf_s: f64,
    /// Source-length range (inclusive).
    pub src_len: (usize, usize),
    /// Prompt-length range (inclusive; `(0, 0)` disables prompts).
    pub prompt_len: (usize, usize),
    /// Generation-budget range (inclusive).
    pub max_new: (u32, u32),
    /// Tenant mix: `(tenant id, weight)`.
    pub tenants: Vec<(u16, f64)>,
    /// Priority-class mix (class 0, 1, 2 weights).
    pub priorities: [f64; 3],
    /// Fraction of requests carrying a wall deadline, and the deadline
    /// range in milliseconds for those that do.
    pub deadline_frac: f64,
    /// Deadline range (ms, inclusive) for deadline-carrying requests.
    pub deadline_ms: (u32, u32),
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        Self {
            arrival: Arrival::Poisson { rate_per_sec: 50.0 },
            zipf_s: 1.0,
            src_len: (3, 8),
            prompt_len: (0, 0),
            max_new: (4, 16),
            tenants: vec![(0, 1.0), (1, 1.0), (2, 1.0)],
            priorities: [0.2, 0.5, 0.3],
            deadline_frac: 0.0,
            deadline_ms: (50, 500),
        }
    }
}

/// One generated request: fire `at_ms` after trace start.
#[derive(Debug, Clone)]
pub struct Timed {
    /// Offset from trace start, milliseconds.
    pub at_ms: u64,
    /// The request (its `id` is the trace index).
    pub submit: Submit,
}

/// Zipf-ish sampler over `0..n`: `P(k) ∝ 1/(k+1)^s`, via an explicit
/// CDF (the ranges here are tiny — request lengths, not vocabularies).
#[derive(Debug, Clone)]
struct ZipfRanks {
    cdf: Vec<f64>,
}

impl ZipfRanks {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf = Vec::with_capacity(n.max(1));
        let mut acc = 0.0;
        for k in 0..n.max(1) {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("non-empty");
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.random_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

fn weighted(rng: &mut StdRng, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random_range(0.0..total.max(f64::MIN_POSITIVE));
    for (i, w) in weights.iter().enumerate() {
        u -= w;
        if u <= 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

/// The generator.
pub struct Workload {
    cfg: WorkloadConfig,
    rng: StdRng,
    src_ranks: ZipfRanks,
    prompt_ranks: ZipfRanks,
    new_ranks: ZipfRanks,
    src_vocab: usize,
    tgt_vocab: usize,
    clock_ms: f64,
    burst_left: usize,
    next_id: u64,
}

impl Workload {
    /// A generator emitting tokens valid for the given vocabularies
    /// (content tokens only — specials are never sampled).
    pub fn new(cfg: WorkloadConfig, src_vocab: usize, tgt_vocab: usize, seed: u64) -> Self {
        assert!(src_vocab > FIRST_CONTENT && tgt_vocab > FIRST_CONTENT);
        let src_ranks = ZipfRanks::new(cfg.src_len.1 - cfg.src_len.0 + 1, cfg.zipf_s);
        let prompt_ranks = ZipfRanks::new(cfg.prompt_len.1 - cfg.prompt_len.0 + 1, cfg.zipf_s);
        let new_ranks = ZipfRanks::new((cfg.max_new.1 - cfg.max_new.0 + 1) as usize, cfg.zipf_s);
        Self {
            cfg,
            rng: StdRng::seed_from_u64(seed),
            src_ranks,
            prompt_ranks,
            new_ranks,
            src_vocab,
            tgt_vocab,
            clock_ms: 0.0,
            burst_left: 0,
            next_id: 0,
        }
    }

    fn tokens(&mut self, n: usize, vocab: usize) -> Vec<u32> {
        (0..n)
            .map(|_| self.rng.random_range(FIRST_CONTENT as u32..vocab as u32))
            .collect()
    }

    fn advance_clock(&mut self) {
        let (rate, burst) = match self.cfg.arrival {
            Arrival::Poisson { rate_per_sec } => (rate_per_sec, 1),
            Arrival::Bursty {
                rate_per_sec,
                burst,
            } => (rate_per_sec, burst.max(1)),
        };
        if self.burst_left > 0 {
            self.burst_left -= 1;
            return; // same instant as the train head
        }
        self.burst_left = burst - 1;
        // Exponential gap between train heads; the mean request rate
        // stays `rate` because each head carries `burst` requests.
        let u: f64 = self.rng.random_range(f64::MIN_POSITIVE..1.0);
        let gap_s = -u.ln() / (rate / burst as f64).max(1e-9);
        self.clock_ms += gap_s * 1000.0;
    }

    /// Generates the next request in the trace.
    pub fn next_request(&mut self) -> Timed {
        self.advance_clock();
        let src_n = self.cfg.src_len.0 + self.src_ranks.sample(&mut self.rng);
        let prompt_n = self.cfg.prompt_len.0 + self.prompt_ranks.sample(&mut self.rng);
        let max_new = self.cfg.max_new.0 + self.new_ranks.sample(&mut self.rng) as u32;
        let tenant_weights: Vec<f64> = self.cfg.tenants.iter().map(|&(_, w)| w).collect();
        let tenant = self.cfg.tenants[weighted(&mut self.rng, &tenant_weights)].0;
        let priority = weighted(&mut self.rng, &self.cfg.priorities) as u8;
        let deadline_ms = if self.cfg.deadline_frac > 0.0
            && self.rng.random_range(0.0..1.0) < self.cfg.deadline_frac
        {
            self.rng
                .random_range(self.cfg.deadline_ms.0..=self.cfg.deadline_ms.1)
        } else {
            0
        };
        let id = self.next_id;
        self.next_id += 1;
        let src_vocab = self.src_vocab;
        let tgt_vocab = self.tgt_vocab;
        Timed {
            at_ms: self.clock_ms as u64,
            submit: Submit {
                id,
                tenant,
                priority,
                deadline_ms,
                max_new,
                src: self.tokens(src_n, src_vocab),
                prompt: self.tokens(prompt_n, tgt_vocab),
            },
        }
    }

    /// Generates a whole trace of `n` requests.
    pub fn trace(&mut self, n: usize) -> Vec<Timed> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> WorkloadConfig {
        WorkloadConfig {
            deadline_frac: 0.5,
            ..WorkloadConfig::default()
        }
    }

    #[test]
    fn traces_replay_bit_identically() {
        let a = Workload::new(cfg(), 64, 64, 7).trace(200);
        let b = Workload::new(cfg(), 64, 64, 7).trace(200);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.at_ms, y.at_ms);
            assert_eq!(x.submit, y.submit);
        }
        let c = Workload::new(cfg(), 64, 64, 8).trace(200);
        assert!(
            a.iter().zip(&c).any(|(x, y)| x.submit != y.submit),
            "different seeds must differ"
        );
    }

    #[test]
    fn requests_respect_bounds_and_vocab() {
        let trace = Workload::new(cfg(), 64, 32, 3).trace(500);
        for t in &trace {
            let s = &t.submit;
            assert!((3..=8).contains(&s.src.len()));
            assert!((4..=16).contains(&s.max_new));
            assert!(s.priority < 3);
            assert!(s.src.iter().all(|&tok| (3..64).contains(&(tok as usize))));
            assert!(s
                .prompt
                .iter()
                .all(|&tok| (3..32).contains(&(tok as usize))));
            if s.deadline_ms != 0 {
                assert!((50..=500).contains(&s.deadline_ms));
            }
        }
        // Ids are the trace order.
        assert!(trace
            .iter()
            .enumerate()
            .all(|(i, t)| t.submit.id == i as u64));
        // Zipf skew: the shortest source length is the mode (expected
        // share at s=1 over 6 ranks is ~0.41).
        let count_len = |n| trace.iter().filter(|t| t.submit.src.len() == n).count();
        let shortest = count_len(3);
        assert!(shortest * 3 > trace.len(), "rank-0 share too small");
        assert!(
            (4..=8).all(|n| count_len(n) < shortest),
            "rank-0 should be the mode"
        );
    }

    #[test]
    fn poisson_mean_rate_is_roughly_honoured() {
        let mut w = Workload::new(
            WorkloadConfig {
                arrival: Arrival::Poisson {
                    rate_per_sec: 100.0,
                },
                ..cfg()
            },
            64,
            64,
            11,
        );
        let trace = w.trace(2000);
        let span_s = trace.last().unwrap().at_ms as f64 / 1000.0;
        let rate = trace.len() as f64 / span_s;
        assert!((60.0..160.0).contains(&rate), "empirical rate {rate:.1}/s");
    }

    #[test]
    fn bursty_clumps_arrivals_at_the_same_rate() {
        let mk = |burst| {
            Workload::new(
                WorkloadConfig {
                    arrival: if burst > 1 {
                        Arrival::Bursty {
                            rate_per_sec: 100.0,
                            burst,
                        }
                    } else {
                        Arrival::Poisson {
                            rate_per_sec: 100.0,
                        }
                    },
                    ..cfg()
                },
                64,
                64,
                5,
            )
            .trace(1000)
        };
        let bursty = mk(8);
        let zero_gaps = bursty
            .windows(2)
            .filter(|w| w[1].at_ms == w[0].at_ms)
            .count();
        assert!(
            zero_gaps >= bursty.len() / 2,
            "trains mean most gaps are zero (got {zero_gaps})"
        );
        let span = |t: &[Timed]| t.last().unwrap().at_ms as f64 / 1000.0;
        let r_bursty = bursty.len() as f64 / span(&bursty);
        assert!(
            (50.0..200.0).contains(&r_bursty),
            "mean rate preserved ({r_bursty:.1}/s)"
        );
    }
}
