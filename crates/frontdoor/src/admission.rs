//! Admission control: per-tenant token-bucket quotas and a bounded,
//! priority-classed staging buffer with shed-lowest-first overflow.
//!
//! The front door stages accepted work here before feeding the engine,
//! so overload policy lives in one place:
//!
//! * **Quotas** — every tenant draws from a token bucket charged by
//!   request weight (source + prompt + requested decode tokens). An
//!   empty bucket rejects with [`RejectCode::Quota`] before the
//!   request can occupy any buffer space.
//! * **Priorities** — three classes, `0` (latency-sensitive) to `2`
//!   (batch). The engine is always fed from the highest class with
//!   work; FIFO within a class.
//! * **Bounded buffer, shed don't grow** — when the buffer is at
//!   capacity, an arriving request either evicts a strictly
//!   lower-priority victim (the victim is shed with
//!   [`RejectCode::QueueFull`]) or is itself rejected. Buffer memory
//!   is therefore O(capacity) no matter the offered load.
//!
//! Time is passed in by the caller (`Instant`), never read from a
//! global clock, so tests can drive refill deterministically.

use crate::frame::{RejectCode, Submit};
use std::collections::{HashMap, VecDeque};
use std::time::{Duration, Instant};

/// Number of priority classes (`0..PRIORITY_CLASSES`).
pub const PRIORITY_CLASSES: usize = 3;

/// A classic token bucket: `level` tokens available, refilled at
/// `refill_per_sec` up to `capacity`.
#[derive(Debug, Clone)]
pub struct TokenBucket {
    capacity: f64,
    refill_per_sec: f64,
    level: f64,
    last: Instant,
}

impl TokenBucket {
    /// A bucket that starts full.
    pub fn new(capacity: f64, refill_per_sec: f64, now: Instant) -> Self {
        Self {
            capacity,
            refill_per_sec,
            level: capacity,
            last: now,
        }
    }

    fn refill(&mut self, now: Instant) {
        let dt = now.saturating_duration_since(self.last).as_secs_f64();
        self.level = (self.level + dt * self.refill_per_sec).min(self.capacity);
        self.last = now;
    }

    /// Charges `cost` tokens if available; returns whether it fit.
    pub fn try_charge(&mut self, cost: f64, now: Instant) -> bool {
        self.refill(now);
        if self.level + 1e-9 >= cost {
            self.level -= cost;
            true
        } else {
            false
        }
    }

    /// Current level after refilling to `now` (for introspection).
    pub fn level(&mut self, now: Instant) -> f64 {
        self.refill(now);
        self.level
    }
}

/// Admission policy knobs.
#[derive(Debug, Clone)]
pub struct AdmissionConfig {
    /// Max requests staged across all priority classes.
    pub max_buffered: usize,
    /// Token-bucket burst capacity granted to each tenant (in request
    /// weight units: source + prompt + requested decode tokens).
    pub bucket_capacity: f64,
    /// Sustained per-tenant rate, weight units per second.
    pub bucket_refill_per_sec: f64,
    /// Per-tenant `(tenant, capacity, refill_per_sec)` overrides for
    /// tenants whose contract differs from the default bucket.
    pub tenant_buckets: Vec<(u16, f64, f64)>,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_buffered: 64,
            bucket_capacity: 4096.0,
            bucket_refill_per_sec: 2048.0,
            tenant_buckets: Vec::new(),
        }
    }
}

/// Counters the door folds into its stats snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdmissionStats {
    /// Requests accepted into the staging buffer.
    pub admitted: u64,
    /// Requests rejected because the tenant bucket was empty.
    pub quota_rejected: u64,
    /// Requests shed because the buffer was full (arrivals bounced or
    /// staged victims evicted by a higher class).
    pub shed: u64,
    /// Of `shed`, how many were already-staged victims evicted to make
    /// room for a higher-priority arrival.
    pub evicted: u64,
}

/// One staged request plus the instant it arrived (for queue-age
/// accounting in the door's deadline purge).
#[derive(Debug, Clone)]
pub struct Staged {
    /// The request as received (with the door-global id).
    pub submit: Submit,
    /// When the door accepted it.
    pub arrived: Instant,
}

/// Outcome of [`Admission::offer`] when the request was accepted.
#[derive(Debug)]
pub struct Accepted {
    /// A lower-priority staged request evicted to make room, if the
    /// buffer was full. The caller owes its client a `QueueFull`
    /// rejection frame.
    pub evicted: Option<Staged>,
}

/// The admission controller.
#[derive(Debug)]
pub struct Admission {
    cfg: AdmissionConfig,
    buckets: HashMap<u16, TokenBucket>,
    classes: [VecDeque<Staged>; PRIORITY_CLASSES],
    buffered: usize,
    /// Lifetime counters.
    pub stats: AdmissionStats,
}

impl Admission {
    /// A controller with the given policy and no tenants yet.
    pub fn new(cfg: AdmissionConfig) -> Self {
        Self {
            cfg,
            buckets: HashMap::new(),
            classes: Default::default(),
            buffered: 0,
            stats: AdmissionStats::default(),
        }
    }

    /// Weight a request charges against its tenant's bucket.
    pub fn cost(s: &Submit) -> f64 {
        (s.src.len() + s.prompt.len() + s.max_new as usize) as f64
    }

    /// Number of requests currently staged.
    pub fn buffered(&self) -> usize {
        self.buffered
    }

    /// Offers a request. `Ok` means it is staged (possibly displacing
    /// `evicted`); `Err` carries the rejection code for the offerer.
    pub fn offer(&mut self, submit: Submit, now: Instant) -> Result<Accepted, RejectCode> {
        let cfg = &self.cfg;
        let bucket = self.buckets.entry(submit.tenant).or_insert_with(|| {
            let (cap, refill) = cfg
                .tenant_buckets
                .iter()
                .find(|&&(t, _, _)| t == submit.tenant)
                .map(|&(_, c, r)| (c, r))
                .unwrap_or((cfg.bucket_capacity, cfg.bucket_refill_per_sec));
            TokenBucket::new(cap, refill, now)
        });
        if !bucket.try_charge(Self::cost(&submit), now) {
            self.stats.quota_rejected += 1;
            return Err(RejectCode::Quota);
        }

        let class = submit.priority as usize;
        let mut evicted = None;
        if self.buffered >= self.cfg.max_buffered {
            // Full: evict the newest request of the lowest class that
            // is strictly below the arrival, else bounce the arrival.
            match (class + 1..PRIORITY_CLASSES)
                .rev()
                .find(|&c| !self.classes[c].is_empty())
            {
                Some(victim_class) => {
                    evicted = self.classes[victim_class].pop_back();
                    self.buffered -= 1;
                    self.stats.shed += 1;
                    self.stats.evicted += 1;
                }
                None => {
                    self.stats.shed += 1;
                    return Err(RejectCode::QueueFull);
                }
            }
        }

        self.classes[class].push_back(Staged {
            submit,
            arrived: now,
        });
        self.buffered += 1;
        self.stats.admitted += 1;
        Ok(Accepted { evicted })
    }

    /// Takes the next request to feed the engine: highest class first,
    /// FIFO within a class.
    pub fn pop(&mut self) -> Option<Staged> {
        for class in &mut self.classes {
            if let Some(staged) = class.pop_front() {
                self.buffered -= 1;
                return Some(staged);
            }
        }
        None
    }

    /// Removes a staged request by id (client cancelled or hung up
    /// before the engine saw it). Returns whether it was present.
    pub fn remove(&mut self, id: u64) -> bool {
        for class in &mut self.classes {
            if let Some(pos) = class.iter().position(|s| s.submit.id == id) {
                class.remove(pos);
                self.buffered -= 1;
                return true;
            }
        }
        false
    }

    /// Drains every staged request whose wall deadline (arrival +
    /// `deadline_ms`) has passed, returning them so the door can send
    /// each client a deadline-expired completion.
    pub fn purge_expired(&mut self, now: Instant) -> Vec<Staged> {
        let mut out = Vec::new();
        for class in &mut self.classes {
            let mut keep = VecDeque::with_capacity(class.len());
            for staged in class.drain(..) {
                let expired = staged.submit.deadline_ms != 0
                    && now.saturating_duration_since(staged.arrived)
                        >= Duration::from_millis(u64::from(staged.submit.deadline_ms));
                if expired {
                    out.push(staged);
                } else {
                    keep.push_back(staged);
                }
            }
            *class = keep;
        }
        self.buffered -= out.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn submit(id: u64, tenant: u16, priority: u8, weight: u32) -> Submit {
        Submit {
            id,
            tenant,
            priority,
            deadline_ms: 0,
            max_new: weight,
            src: vec![],
            prompt: vec![],
        }
    }

    #[test]
    fn bucket_charges_and_refills() {
        let t0 = Instant::now();
        let mut b = TokenBucket::new(100.0, 50.0, t0);
        assert!(b.try_charge(80.0, t0));
        assert!(!b.try_charge(80.0, t0), "only 20 left");
        let t1 = t0 + Duration::from_secs(1);
        assert!(b.try_charge(70.0, t1), "refilled 50 -> 70 available");
        let t2 = t1 + Duration::from_secs(100);
        assert!((b.level(t2) - 100.0).abs() < 1e-6, "capped at capacity");
    }

    #[test]
    fn quota_exhaustion_rejects_before_buffering() {
        let now = Instant::now();
        let mut adm = Admission::new(AdmissionConfig {
            bucket_capacity: 100.0,
            bucket_refill_per_sec: 0.0,
            ..Default::default()
        });
        assert!(adm.offer(submit(1, 7, 1, 60), now).is_ok());
        let err = adm.offer(submit(2, 7, 1, 60), now).unwrap_err();
        assert_eq!(err, RejectCode::Quota);
        // A different tenant has its own bucket.
        assert!(adm.offer(submit(3, 8, 1, 60), now).is_ok());
        assert_eq!(adm.buffered(), 2);
        assert_eq!(adm.stats.quota_rejected, 1);
    }

    #[test]
    fn tenant_bucket_overrides_apply() {
        let now = Instant::now();
        let mut adm = Admission::new(AdmissionConfig {
            bucket_capacity: 1000.0,
            bucket_refill_per_sec: 0.0,
            tenant_buckets: vec![(9, 50.0, 0.0)],
            ..Default::default()
        });
        assert!(adm.offer(submit(1, 9, 1, 40), now).is_ok());
        let err = adm.offer(submit(2, 9, 1, 40), now).unwrap_err();
        assert_eq!(err, RejectCode::Quota, "override capacity exhausted");
        assert!(
            adm.offer(submit(3, 1, 1, 400), now).is_ok(),
            "default bucket"
        );
    }

    #[test]
    fn pop_serves_highest_class_fifo() {
        let now = Instant::now();
        let mut adm = Admission::new(AdmissionConfig::default());
        for (id, prio) in [(1, 2), (2, 0), (3, 1), (4, 0)] {
            adm.offer(submit(id, 0, prio, 1), now).unwrap();
        }
        let order: Vec<u64> = std::iter::from_fn(|| adm.pop().map(|s| s.submit.id)).collect();
        assert_eq!(order, [2, 4, 3, 1]);
    }

    #[test]
    fn full_buffer_evicts_lowest_class_else_bounces() {
        let now = Instant::now();
        let mut adm = Admission::new(AdmissionConfig {
            max_buffered: 2,
            ..Default::default()
        });
        adm.offer(submit(1, 0, 2, 1), now).unwrap();
        adm.offer(submit(2, 0, 1, 1), now).unwrap();
        // Priority-0 arrival evicts the newest strictly-lower victim —
        // the class-2 request, even though class 1 enqueued later.
        let acc = adm.offer(submit(3, 0, 0, 1), now).unwrap();
        assert_eq!(acc.evicted.unwrap().submit.id, 1);
        // Equal-or-higher arrivals cannot evict: class 1 vs {0, 1}.
        let err = adm.offer(submit(4, 0, 1, 1), now).unwrap_err();
        assert_eq!(err, RejectCode::QueueFull);
        assert_eq!(adm.stats.shed, 2);
        assert_eq!(adm.stats.evicted, 1);
        assert_eq!(adm.buffered(), 2);
    }

    #[test]
    fn remove_and_purge_expired() {
        let t0 = Instant::now();
        let mut adm = Admission::new(AdmissionConfig::default());
        let mut s = submit(1, 0, 1, 1);
        s.deadline_ms = 10;
        adm.offer(s, t0).unwrap();
        adm.offer(submit(2, 0, 1, 1), t0).unwrap();
        adm.offer(submit(3, 0, 2, 1), t0).unwrap();
        assert!(adm.remove(3));
        assert!(!adm.remove(3));
        let expired = adm.purge_expired(t0 + Duration::from_millis(50));
        assert_eq!(expired.len(), 1);
        assert_eq!(expired[0].submit.id, 1);
        // Request 2 has no deadline and stays.
        assert_eq!(adm.buffered(), 1);
        assert_eq!(adm.pop().unwrap().submit.id, 2);
    }
}
