//! The chaos gauntlet: hostile clients hammer a live door from
//! several threads at once — mid-decode disconnects, slowloris
//! dribbles, random garbage, queue-full storms, quota burners — while
//! an honest canary keeps decoding. Pass criteria:
//!
//! * the engine thread never panics (a panic fails the join),
//! * the canary's streams stay bit-identical to offline decoding,
//! * every well-formed request settles as `Done` or a typed `Reject`,
//! * afterwards the door is idle and holds zero KV bytes.

use frontdoor::chaos::{self, Outcome};
use frontdoor::{AdmissionConfig, Completion, DoorConfig, FrontDoor};
use quantized::QuantSeq2Seq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serving::EngineConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

fn setup(n: usize) -> (QuantSeq2Seq, Vec<Vec<usize>>, u32) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    cfg.max_len = 96;
    let mut rng = StdRng::seed_from_u64(0xC4A0);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(n, &mut StdRng::seed_from_u64(0xC4A1));
    let srcs = corpus.iter().map(|(s, _)| s.clone()).collect();
    (
        QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware),
        srcs,
        cfg.vocab as u32,
    )
}

#[test]
fn chaos_gauntlet_no_panics_no_leaks_canary_bit_identical() {
    let (q, srcs, vocab) = setup(4);
    let seed: u64 = std::env::var("ACCEL_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xD1CE);

    let cfg = DoorConfig {
        engine: EngineConfig::with_max_batch(4),
        admission: AdmissionConfig {
            max_buffered: 8,
            // Tenant 5 is the quota burner: a tight contract the
            // exhaustion scenario can hit without throttling others.
            tenant_buckets: vec![(5, 60.0, 10.0)],
            ..AdmissionConfig::default()
        },
        idle_timeout: Duration::from_millis(250),
        write_budget: 1 << 16,
        ..DoorConfig::default()
    };

    let mut door = FrontDoor::new(&q, cfg).expect("bind");
    let addr = door.local_addr().expect("addr");
    let stop = AtomicBool::new(false);

    let max_new = 8usize;
    let expected: Vec<Vec<u32>> = srcs
        .iter()
        .map(|s| {
            q.greedy_decode_incremental(s, max_new)
                .iter()
                .map(|&t| t as u32)
                .collect()
        })
        .collect();

    let (door, canary_checked, outcome) = std::thread::scope(|s| {
        let door_handle = s.spawn(|| {
            door.run(&stop).expect("event loop");
            door
        });

        // The hostile crowd, all at once.
        let disconnects =
            s.spawn(move || chaos::disconnect_mid_decode(addr, 8, vocab, seed ^ 1).expect("io"));
        let loris = s.spawn(move || chaos::slowloris(addr, 6, vocab, seed ^ 2).expect("io"));
        let garbage = s.spawn(move || chaos::malformed_storm(addr, 12, seed ^ 3).expect("io"));
        let storm = s.spawn(move || chaos::queue_storm(addr, 48, 1, vocab, seed ^ 4).expect("io"));
        let quota =
            s.spawn(move || chaos::quota_exhaustion(addr, 12, 5, vocab, seed ^ 5).expect("io"));

        // Meanwhile the canary decodes honestly, over and over.
        let srcs_ref = &srcs;
        let expected_ref = &expected;
        let canary = s.spawn(move || {
            let mut checked = 0u64;
            let until = Instant::now() + Duration::from_secs(3);
            let mut i = 0usize;
            while Instant::now() < until {
                let src: Vec<u32> = srcs_ref[i % srcs_ref.len()]
                    .iter()
                    .map(|&t| t as u32)
                    .collect();
                match chaos::canary_request(
                    addr,
                    i as u64,
                    &src,
                    max_new as u32,
                    Duration::from_secs(20),
                )
                .expect("canary io")
                {
                    Completion::Done { tokens, .. } => {
                        assert_eq!(
                            tokens,
                            expected_ref[i % srcs_ref.len()],
                            "canary {i} perturbed by chaos"
                        );
                        checked += 1;
                    }
                    // The canary may legitimately be shed during the
                    // storm; identity only applies to admitted work.
                    Completion::Rejected(code) => {
                        assert_eq!(code, frontdoor::RejectCode::QueueFull, "canary {i}");
                    }
                }
                i += 1;
            }
            checked
        });

        let mut outcome = Outcome::default();
        outcome.merge(&disconnects.join().expect("disconnect thread"));
        outcome.merge(&loris.join().expect("slowloris thread"));
        outcome.merge(&garbage.join().expect("garbage thread"));
        let storm_out = storm.join().expect("storm thread");
        assert_eq!(
            storm_out.done + storm_out.shed,
            48,
            "storm: every request settles exactly once ({storm_out:?})"
        );
        assert!(storm_out.shed > 0, "48 into an 8-deep buffer must shed");
        outcome.merge(&storm_out);
        let quota_out = quota.join().expect("quota thread");
        assert!(
            quota_out.quota > 0,
            "burner must hit its bucket ({quota_out:?})"
        );
        assert!(
            quota_out.done > 0,
            "in-budget requests still complete ({quota_out:?})"
        );
        outcome.merge(&quota_out);
        let canary_checked = canary.join().expect("canary thread");

        // Let the door retire whatever the disconnects left behind,
        // then stop it.
        std::thread::sleep(Duration::from_millis(400));
        stop.store(true, Ordering::Relaxed);
        (
            door_handle.join().expect("door panicked"),
            canary_checked,
            outcome,
        )
    });

    assert!(canary_checked > 0, "canary must complete during chaos");
    assert!(
        outcome.malformed + outcome.closed > 0,
        "garbage must be rejected or disconnected ({outcome:?})"
    );
    assert!(door.idle(), "door drains to idle after the gauntlet");
    assert_eq!(door.kv_bytes_in_use(), 0, "zero leaked KV pages");
    let stats = door.stats;
    assert!(stats.malformed_closes > 0, "{stats:?}");
    assert!(
        stats.cancels > 0,
        "mid-decode disconnects must cancel in-flight work ({stats:?})"
    );
    let engine = door.engine_stats();
    assert!(engine.shed == 0 || stats.admission.shed > 0, "{engine:?}");
}
