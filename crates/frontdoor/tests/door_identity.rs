//! End-to-end identity: requests decoded through the TCP front door
//! must stream byte-for-byte the tokens the model produces offline,
//! and every admission refusal must arrive as its typed reject code.

use frontdoor::{AdmissionConfig, Client, RejectCode};
use frontdoor::{Completion, DoorConfig, FrontDoor, ServerFrame, Submit};
use quantized::QuantSeq2Seq;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serving::{EngineConfig, FinishReason};
use std::collections::HashMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;
use transformer::config::ModelConfig;
use transformer::model::Seq2SeqTransformer;
use transformer::tasks::{Task, TaskGen};

fn setup(n: usize) -> (QuantSeq2Seq, Vec<Vec<usize>>) {
    let mut cfg = ModelConfig::tiny_for_tests();
    cfg.n_layers = 2;
    cfg.max_len = 96;
    let mut rng = StdRng::seed_from_u64(417);
    let model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
    let corpus = gen.corpus(n, &mut StdRng::seed_from_u64(418));
    let srcs = corpus.iter().map(|(s, _)| s.clone()).collect();
    (
        QuantSeq2Seq::from_trained(&model, &corpus, quantized::SoftmaxMode::Hardware),
        srcs,
    )
}

/// Runs `body` against a live door and returns the door afterwards so
/// callers can assert on its final state.
fn with_door<R>(
    model: &QuantSeq2Seq,
    cfg: DoorConfig,
    body: impl FnOnce(SocketAddr) -> R,
) -> (FrontDoor<'_>, R) {
    let mut door = FrontDoor::new(model, cfg).expect("bind");
    let addr = door.local_addr().expect("addr");
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let handle = s.spawn(|| {
            door.run(&stop).expect("event loop");
            door
        });
        let out = body(addr);
        stop.store(true, Ordering::Relaxed);
        (handle.join().expect("door thread"), out)
    })
}

fn as_u32(src: &[usize]) -> Vec<u32> {
    src.iter().map(|&t| t as u32).collect()
}

#[test]
fn tcp_decode_is_bit_identical_to_offline_greedy() {
    let (q, srcs) = setup(6);
    let max_new = 8;
    let (door, ()) = with_door(&q, DoorConfig::default(), |addr| {
        for (i, src) in srcs.iter().enumerate() {
            let mut client = Client::connect(addr).expect("connect");
            let got = client
                .run_request(
                    Submit {
                        id: i as u64,
                        tenant: (i % 3) as u16,
                        priority: (i % 3) as u8,
                        deadline_ms: 0,
                        max_new: max_new as u32,
                        src: as_u32(src),
                        prompt: vec![],
                    },
                    Duration::from_secs(30),
                    |_| {},
                )
                .expect("completion");
            let want = as_u32(&q.greedy_decode_incremental(src, max_new));
            match got {
                Completion::Done { tokens, .. } => assert_eq!(tokens, want, "request {i}"),
                Completion::Rejected(code) => panic!("request {i} rejected: {code:?}"),
            }
        }
    });
    assert!(door.idle(), "door drained");
    assert_eq!(door.kv_bytes_in_use(), 0, "no leaked KV pages");
    assert_eq!(door.stats.done_sent, srcs.len() as u64);
    assert_eq!(door.stats.rejects, 0);
}

#[test]
fn interleaved_streams_on_one_connection_stay_per_request() {
    let (q, srcs) = setup(5);
    let max_new = 8;
    let (door, ()) = with_door(&q, DoorConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for (i, src) in srcs.iter().enumerate() {
            client
                .submit(Submit {
                    id: i as u64,
                    tenant: 0,
                    priority: 1,
                    deadline_ms: 0,
                    max_new: max_new as u32,
                    src: as_u32(src),
                    prompt: vec![],
                })
                .expect("submit");
        }
        let mut streams: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut done = 0;
        while done < srcs.len() {
            match client
                .recv(Duration::from_secs(30))
                .expect("recv")
                .expect("no timeout")
            {
                ServerFrame::Token { id, token } => streams.entry(id).or_default().push(token),
                ServerFrame::Done { id, n_tokens, .. } => {
                    let got = streams.get(&id).cloned().unwrap_or_default();
                    assert_eq!(got.len(), n_tokens as usize, "torn stream for {id}");
                    done += 1;
                }
                ServerFrame::Reject { id, code } => panic!("request {id} rejected: {code:?}"),
            }
        }
        for (i, src) in srcs.iter().enumerate() {
            let want = as_u32(&q.greedy_decode_incremental(src, max_new));
            assert_eq!(streams[&(i as u64)], want, "request {i}");
        }
    });
    assert!(door.idle());
    assert_eq!(door.kv_bytes_in_use(), 0);
}

#[test]
fn invalid_submissions_get_typed_rejects() {
    let (q, srcs) = setup(2);
    let (door, ()) = with_door(&q, DoorConfig::default(), |addr| {
        let mut client = Client::connect(addr).expect("connect");
        let base = Submit {
            id: 1,
            tenant: 0,
            priority: 1,
            deadline_ms: 0,
            max_new: 4,
            src: as_u32(&srcs[0]),
            prompt: vec![],
        };

        // Out-of-vocabulary token.
        let mut bad = base.clone();
        bad.src[0] = 40_000;
        let got = client
            .run_request(bad, Duration::from_secs(10), |_| {})
            .unwrap();
        assert_eq!(got, Completion::Rejected(RejectCode::BadToken));

        // Empty source.
        let mut empty = base.clone();
        empty.id = 2;
        empty.src.clear();
        let got = client
            .run_request(empty, Duration::from_secs(10), |_| {})
            .unwrap();
        assert_eq!(got, Completion::Rejected(RejectCode::TooLong));

        // Budget overflowing max_len.
        let mut long = base.clone();
        long.id = 3;
        long.max_new = 10_000;
        let got = client
            .run_request(long, Duration::from_secs(10), |_| {})
            .unwrap();
        assert_eq!(got, Completion::Rejected(RejectCode::TooLong));

        // Duplicate in-flight client id: submit a long-running request
        // then reuse its id before it finishes.
        let mut a = base.clone();
        a.id = 4;
        a.max_new = 64;
        client.submit(a).unwrap();
        let mut b = base.clone();
        b.id = 4;
        let mut dup_rejected = false;
        client.submit(b).unwrap();
        loop {
            match client
                .recv(Duration::from_secs(30))
                .expect("recv")
                .expect("no timeout")
            {
                ServerFrame::Reject {
                    id: 4,
                    code: RejectCode::DuplicateId,
                } => dup_rejected = true,
                ServerFrame::Done { id: 4, .. } => break,
                _ => {}
            }
        }
        assert!(dup_rejected, "duplicate id must be rejected");
    });
    assert!(door.idle());
    assert_eq!(door.kv_bytes_in_use(), 0);
    assert_eq!(door.stats.rejects, 4);
}

#[test]
fn wall_deadlines_complete_every_request_without_leaks() {
    let (q, srcs) = setup(6);
    let cfg = DoorConfig {
        engine: EngineConfig::with_max_batch(1),
        ..DoorConfig::default()
    };
    let (door, deadline_hits) = with_door(&q, cfg, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for (i, src) in srcs.iter().enumerate() {
            client
                .submit(Submit {
                    id: i as u64,
                    tenant: 0,
                    priority: 1,
                    // Tight wall deadline on a 1-slot engine: the back
                    // of the line cannot possibly finish in time.
                    deadline_ms: 40,
                    max_new: 48,
                    src: as_u32(src),
                    prompt: vec![],
                })
                .expect("submit");
        }
        let mut done = 0;
        let mut deadline_hits = 0;
        while done < srcs.len() {
            match client
                .recv(Duration::from_secs(30))
                .expect("recv")
                .expect("no timeout")
            {
                ServerFrame::Done { reason, .. } => {
                    done += 1;
                    if reason == FinishReason::Deadline {
                        deadline_hits += 1;
                    }
                }
                ServerFrame::Reject { id, code } => panic!("request {id} rejected: {code:?}"),
                ServerFrame::Token { .. } => {}
            }
        }
        deadline_hits
    });
    assert!(deadline_hits > 0, "tight deadlines must cut someone off");
    assert!(door.idle(), "every request settled");
    assert_eq!(door.kv_bytes_in_use(), 0, "deadline paths release KV");
}

#[test]
fn shed_storm_accounts_for_every_request() {
    let (q, srcs) = setup(4);
    let cfg = DoorConfig {
        engine: EngineConfig::with_max_batch(2),
        admission: AdmissionConfig {
            max_buffered: 4,
            ..AdmissionConfig::default()
        },
        ..DoorConfig::default()
    };
    const N: usize = 40;
    let (door, (done, shed)) = with_door(&q, cfg, |addr| {
        let mut client = Client::connect(addr).expect("connect");
        for i in 0..N {
            client
                .submit(Submit {
                    id: i as u64,
                    tenant: 0,
                    priority: (i % 3) as u8,
                    deadline_ms: 0,
                    max_new: 6,
                    src: as_u32(&srcs[i % srcs.len()]),
                    prompt: vec![],
                })
                .expect("submit");
        }
        let (mut done, mut shed) = (0u64, 0u64);
        while done + shed < N as u64 {
            match client
                .recv(Duration::from_secs(30))
                .expect("recv")
                .expect("no timeout")
            {
                ServerFrame::Done { .. } => done += 1,
                ServerFrame::Reject {
                    code: RejectCode::QueueFull,
                    ..
                } => shed += 1,
                ServerFrame::Reject { id, code } => panic!("request {id}: {code:?}"),
                ServerFrame::Token { .. } => {}
            }
        }
        (done, shed)
    });
    assert_eq!(done + shed, N as u64, "every request settled exactly once");
    assert!(shed > 0, "a 40-deep burst into a 4-deep buffer must shed");
    assert!(done > 0, "the buffer's worth of work still completes");
    assert!(door.idle());
    assert_eq!(door.kv_bytes_in_use(), 0);
}
