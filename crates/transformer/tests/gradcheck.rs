//! Whole-model gradient check: finite differences through the *entire*
//! encoder–decoder Transformer (embeddings, both stacks, output
//! projection, cross-entropy), sampled across parameters.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use transformer::config::ModelConfig;
use transformer::loss::cross_entropy;
use transformer::model::Seq2SeqTransformer;
use transformer::opt::HasParams;

fn micro_config() -> ModelConfig {
    ModelConfig {
        name: "gradcheck".into(),
        d_model: 8,
        d_ff: 16,
        h: 2,
        n_layers: 1,
        vocab: 8,
        max_len: 6,
    }
}

fn loss_of(model: &mut Seq2SeqTransformer, src: &[usize], tin: &[usize], tout: &[usize]) -> f32 {
    let logits = model.forward_train(src, tin);
    cross_entropy(&logits, tout, None).0
}

#[test]
fn whole_model_gradients_match_finite_differences() {
    let cfg = micro_config();
    let mut rng = StdRng::seed_from_u64(42);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let src = [3usize, 4, 5];
    let tin = [1usize, 5, 4];
    let tout = [5usize, 4, 3];

    // analytic gradients
    model.zero_grad();
    let logits = model.forward_train(&src, &tin);
    let (_, dlogits) = cross_entropy(&logits, &tout, None);
    model.backward(&dlogits);

    // collect flattened (buffer index, element index, analytic grad)
    let mut analytic: Vec<(usize, usize, f32)> = Vec::new();
    {
        let mut buf_idx = 0usize;
        model.visit_params(&mut |_, p, g| {
            // sample a few elements per buffer, deterministically
            let step = (p.len() / 3).max(1);
            let mut i = buf_idx % step.max(1); // vary the phase per buffer
            while i < p.len() {
                analytic.push((buf_idx, i, g[i]));
                i += step;
            }
            buf_idx += 1;
        });
    }

    // finite differences on each sampled parameter
    let h = 1e-2f32;
    let mut checked = 0usize;
    for &(buf, elem, grad) in analytic.iter() {
        // Skip parameters with negligible gradient signal: the fd noise
        // floor (f32 forward, h = 1e-2) swamps them.
        if grad.abs() < 5e-3 {
            continue;
        }
        let mut fd = 0.0f32;
        for (sign, store) in [(1.0f32, true), (-1.0f32, false)] {
            let mut idx = 0usize;
            model.visit_params(&mut |_, p, _| {
                if idx == buf {
                    p[elem] += sign * h;
                }
                idx += 1;
            });
            let l = loss_of(&mut model, &src, &tin, &tout);
            if store {
                fd = l;
            } else {
                fd = (fd - l) / (2.0 * h);
            }
            // restore
            let mut idx2 = 0usize;
            model.visit_params(&mut |_, p, _| {
                if idx2 == buf {
                    p[elem] -= sign * h;
                }
                idx2 += 1;
            });
        }
        let denom = grad.abs().max(fd.abs()).max(1e-3);
        let rel = (fd - grad).abs() / denom;
        assert!(
            rel < 0.25,
            "buffer {buf} elem {elem}: fd {fd} vs analytic {grad} (rel {rel})"
        );
        checked += 1;
    }
    assert!(checked > 30, "only {checked} parameters had usable signal");
}

#[test]
fn gradient_accumulation_is_additive() {
    let cfg = micro_config();
    let mut rng = StdRng::seed_from_u64(7);
    let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
    let samples: Vec<([usize; 2], [usize; 2], [usize; 2])> = (0..3)
        .map(|_| {
            let a = rng.random_range(3..8);
            let b = rng.random_range(3..8);
            ([a, b], [1, b], [b, 2])
        })
        .collect();

    // accumulate over all three samples
    model.zero_grad();
    for (src, tin, tout) in &samples {
        let logits = model.forward_train(src, tin);
        let (_, d) = cross_entropy(&logits, tout, None);
        model.backward(&d);
    }
    let total = model.grad_norm();

    // the same accumulation restarted per sample must differ
    model.zero_grad();
    let (src, tin, tout) = &samples[0];
    let logits = model.forward_train(src, tin);
    let (_, d) = cross_entropy(&logits, tout, None);
    model.backward(&d);
    let single = model.grad_norm();

    assert!(total > 0.0 && single > 0.0);
    assert_ne!(total, single, "accumulation had no effect");
}
