//! FP32 reference Transformer, after Vaswani et al., *Attention Is All You
//! Need* (2017) — the model the SOCC'20 accelerator targets.
//!
//! This crate is the **accuracy substrate** of the reproduction:
//!
//! * the exact floating-point semantics of the MHA ResBlock and the FFN
//!   ResBlock (Eqs. 1–2 and Fig. 3 of the paper), against which the INT8
//!   datapath and the accelerator simulator are validated;
//! * the Table-I model configurations ([`config`]);
//! * a full encoder–decoder stack with **manual-gradient training**
//!   ([`train`], [`opt`]) so the Section V-A quantization experiment can
//!   be reproduced end-to-end on a synthetic translation task
//!   ([`tasks`]) scored with real corpus BLEU ([`bleu`]).
//!
//! Layers follow a cached forward/backward discipline: `forward` stores
//! what `backward` needs; `backward` consumes it and accumulates parameter
//! gradients in place. Gradient correctness is enforced by
//! finite-difference tests in every layer module.
//!
//! # Example
//!
//! ```
//! use transformer::config::ModelConfig;
//! use transformer::mha::MhaResBlock;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = ModelConfig::tiny_for_tests();
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut block = MhaResBlock::new(&cfg, &mut rng);
//! let x = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
//! let y = block.forward(&x, &x, &x, None);
//! assert_eq!(y.shape(), x.shape());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attention;
pub mod batching;
pub mod bleu;
pub mod checkpoint;
pub mod config;
pub mod decode;
pub mod decoder;
pub mod embedding;
pub mod encoder;
pub mod exec;
pub mod ffn;
pub mod functional;
pub mod incremental;
pub mod layernorm;
pub mod linear;
pub mod loss;
pub mod metrics;
pub mod mha;
pub mod model;
pub mod opt;
pub mod positional;
pub mod tasks;
pub mod train;

pub use config::ModelConfig;
pub use model::Seq2SeqTransformer;
pub use opt::HasParams;
