//! Beam-search decoding — the decoding strategy the Transformer paper
//! (and the IWSLT evaluation the SOCC'20 paper quantizes) actually uses
//! (beam 4, length penalty 0.6 in Vaswani et al.).

use crate::model::Seq2SeqTransformer;

/// One finished or in-flight hypothesis.
#[derive(Debug, Clone, PartialEq)]
pub struct BeamHyp {
    /// Generated tokens (no BOS, no EOS).
    pub tokens: Vec<usize>,
    /// Sum of per-token log-probabilities.
    pub log_prob: f32,
}

impl BeamHyp {
    /// Length-penalised score: `log_prob / lp(len)` with
    /// `lp(n) = ((5 + n) / 6)^alpha` (Wu et al. 2016, as used by
    /// Vaswani et al.).
    pub fn score(&self, alpha: f32) -> f32 {
        let n = self.tokens.len().max(1) as f32;
        self.log_prob / ((5.0 + n) / 6.0).powf(alpha)
    }
}

fn log_softmax(logits: &[f32]) -> Vec<f32> {
    let max = logits.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_z = max + logits.iter().map(|&x| (x - max).exp()).sum::<f32>().ln();
    logits.iter().map(|&x| x - log_z).collect()
}

/// Beam-search decoding.
///
/// Returns the completed hypotheses sorted best-first by the
/// length-penalised score (at most `beam_width` of them; if no beam
/// finishes within `max_len`, the in-flight beams are returned instead).
///
/// # Panics
///
/// Panics if `src` is empty or `beam_width == 0`.
pub fn beam_search(
    model: &mut Seq2SeqTransformer,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
    beam_width: usize,
    length_penalty: f32,
) -> Vec<BeamHyp> {
    assert!(beam_width > 0, "beam width must be positive");
    let memory = model.encode(src);

    // (prefix including BOS, log_prob)
    let mut beams: Vec<(Vec<usize>, f32)> = vec![(vec![bos], 0.0)];
    let mut finished: Vec<BeamHyp> = Vec::new();

    for _ in 0..max_len {
        let mut candidates: Vec<(Vec<usize>, f32)> = Vec::new();
        for (prefix, lp) in &beams {
            let logits = model.decode_step_logits(prefix, &memory);
            let logp = log_softmax(&logits);
            // Expand only the top beam_width tokens of each beam; more
            // cannot survive the global prune.
            let mut idx: Vec<usize> = (0..logp.len()).collect();
            idx.sort_unstable_by(|&a, &b| logp[b].partial_cmp(&logp[a]).expect("finite"));
            for &t in idx.iter().take(beam_width) {
                let mut next = prefix.clone();
                next.push(t);
                candidates.push((next, lp + logp[t]));
            }
        }
        candidates.sort_unstable_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
        beams.clear();
        for (prefix, lp) in candidates {
            if beams.len() >= beam_width {
                break;
            }
            if *prefix.last().expect("non-empty") == eos {
                finished.push(BeamHyp {
                    tokens: prefix[1..prefix.len() - 1].to_vec(),
                    log_prob: lp,
                });
            } else {
                beams.push((prefix, lp));
            }
        }
        if beams.is_empty() || finished.len() >= beam_width {
            break;
        }
    }

    if finished.is_empty() {
        // Nothing terminated: return the live beams as hypotheses.
        finished = beams
            .into_iter()
            .map(|(prefix, lp)| BeamHyp {
                tokens: prefix[1..].to_vec(),
                log_prob: lp,
            })
            .collect();
    }
    finished.sort_by(|a, b| {
        b.score(length_penalty)
            .partial_cmp(&a.score(length_penalty))
            .expect("finite scores")
    });
    finished.truncate(beam_width);
    finished
}

/// Sampling configuration for stochastic decoding.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SamplingConfig {
    /// Softmax temperature (`< 1` sharpens, `> 1` flattens).
    pub temperature: f32,
    /// Keep only the `k` most likely tokens before sampling
    /// (`0` = no truncation).
    pub top_k: usize,
}

impl Default for SamplingConfig {
    fn default() -> Self {
        Self {
            temperature: 1.0,
            top_k: 0,
        }
    }
}

/// Temperature / top-k sampling decode.
///
/// # Panics
///
/// Panics if `src` is empty or `temperature <= 0`.
pub fn sample_decode(
    model: &mut Seq2SeqTransformer,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
    cfg: SamplingConfig,
    rng: &mut impl rand::Rng,
) -> Vec<usize> {
    assert!(cfg.temperature > 0.0, "temperature must be positive");
    let memory = model.encode(src);
    let mut tokens = vec![bos];
    let mut out = Vec::new();
    for _ in 0..max_len {
        let mut logits = model.decode_step_logits(&tokens, &memory);
        for l in &mut logits {
            *l /= cfg.temperature;
        }
        if cfg.top_k > 0 && cfg.top_k < logits.len() {
            let mut sorted: Vec<f32> = logits.clone();
            sorted.sort_unstable_by(|a, b| b.partial_cmp(a).expect("finite"));
            let cutoff = sorted[cfg.top_k - 1];
            for l in &mut logits {
                if *l < cutoff {
                    *l = f32::NEG_INFINITY;
                }
            }
        }
        let probs: Vec<f32> = log_softmax(&logits).iter().map(|&x| x.exp()).collect();
        let mut u: f32 = rng.random_range(0.0..1.0);
        let mut next = probs.len() - 1;
        for (i, &p) in probs.iter().enumerate() {
            if u < p {
                next = i;
                break;
            }
            u -= p;
        }
        if next == eos {
            break;
        }
        out.push(next);
        tokens.push(next);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::tasks::{BOS, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Seq2SeqTransformer {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 1;
        let mut rng = StdRng::seed_from_u64(seed);
        Seq2SeqTransformer::new(&cfg, &mut rng)
    }

    #[test]
    fn log_softmax_normalizes() {
        let lp = log_softmax(&[1.0, 2.0, 3.0]);
        let sum: f32 = lp.iter().map(|&x| x.exp()).sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert!(lp.iter().all(|&x| x <= 0.0));
    }

    #[test]
    fn beam_one_matches_greedy() {
        let mut m = tiny_model(1);
        let src = [3usize, 4, 5];
        let greedy = m.greedy_decode(&src, BOS, EOS, 6);
        let beams = beam_search(&mut m, &src, BOS, EOS, 6, 1, 0.0);
        assert_eq!(beams[0].tokens, greedy);
    }

    #[test]
    fn wider_beams_never_score_worse() {
        let mut m = tiny_model(2);
        let src = [5usize, 6, 7, 8];
        let b1 = beam_search(&mut m, &src, BOS, EOS, 6, 1, 0.0);
        let b4 = beam_search(&mut m, &src, BOS, EOS, 6, 4, 0.0);
        // with alpha = 0 the score is the raw log prob of the best
        // *comparable* hypothesis set; beam 4 explores a superset
        assert!(b4[0].log_prob >= b1[0].log_prob - 1e-4);
        assert!(b4.len() <= 4);
    }

    #[test]
    fn hypotheses_sorted_best_first() {
        let mut m = tiny_model(3);
        let beams = beam_search(&mut m, &[4, 5], BOS, EOS, 5, 3, 0.6);
        for w in beams.windows(2) {
            assert!(w[0].score(0.6) >= w[1].score(0.6));
        }
    }

    #[test]
    fn respects_max_len() {
        let mut m = tiny_model(4);
        let beams = beam_search(&mut m, &[3], BOS, EOS, 3, 2, 0.6);
        assert!(beams.iter().all(|h| h.tokens.len() <= 3));
    }

    #[test]
    fn length_penalty_prefers_longer_at_equal_logprob() {
        let short = BeamHyp {
            tokens: vec![1],
            log_prob: -1.0,
        };
        let long = BeamHyp {
            tokens: vec![1, 2, 3, 4],
            log_prob: -1.0,
        };
        assert!(long.score(0.6) > short.score(0.6));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_beam_rejected() {
        let mut m = tiny_model(5);
        let _ = beam_search(&mut m, &[3], BOS, EOS, 4, 0, 0.6);
    }

    #[test]
    fn near_zero_temperature_approaches_greedy() {
        let mut m = tiny_model(6);
        let src = [3usize, 7, 4];
        let greedy = m.greedy_decode(&src, BOS, EOS, 6);
        let mut rng = StdRng::seed_from_u64(0);
        let cfg = SamplingConfig {
            temperature: 0.01,
            top_k: 0,
        };
        let sampled = sample_decode(&mut m, &src, BOS, EOS, 6, cfg, &mut rng);
        assert_eq!(sampled, greedy);
    }

    #[test]
    fn top_k_one_is_deterministic() {
        let mut m = tiny_model(7);
        let src = [4usize, 5];
        let cfg = SamplingConfig {
            temperature: 5.0,
            top_k: 1,
        };
        let a = sample_decode(
            &mut m,
            &src,
            BOS,
            EOS,
            5,
            cfg,
            &mut StdRng::seed_from_u64(1),
        );
        let b = sample_decode(
            &mut m,
            &src,
            BOS,
            EOS,
            5,
            cfg,
            &mut StdRng::seed_from_u64(99),
        );
        assert_eq!(a, b, "top-1 sampling must ignore the rng");
    }

    #[test]
    fn high_temperature_produces_variety() {
        let mut m = tiny_model(8);
        let src = [3usize, 4, 5, 6];
        let cfg = SamplingConfig {
            temperature: 3.0,
            top_k: 0,
        };
        let outs: std::collections::HashSet<Vec<usize>> = (0..12)
            .map(|s| {
                sample_decode(
                    &mut m,
                    &src,
                    BOS,
                    EOS,
                    6,
                    cfg,
                    &mut StdRng::seed_from_u64(s),
                )
            })
            .collect();
        assert!(outs.len() > 1, "hot sampling produced a single output");
    }

    #[test]
    #[should_panic(expected = "temperature")]
    fn bad_temperature_rejected() {
        let mut m = tiny_model(9);
        let cfg = SamplingConfig {
            temperature: 0.0,
            top_k: 0,
        };
        let _ = sample_decode(
            &mut m,
            &[3],
            BOS,
            EOS,
            4,
            cfg,
            &mut StdRng::seed_from_u64(0),
        );
    }
}
