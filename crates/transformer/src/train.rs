//! Training loop for the synthetic-task model (the substrate of the
//! Section V-A quantization study).

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::bleu::corpus_bleu;
use crate::config::ModelConfig;
use crate::loss::{cross_entropy_smoothed, token_accuracy};
use crate::model::Seq2SeqTransformer;
use crate::opt::{noam_lr, Adam, HasParams};
use crate::tasks::{teacher_forcing, TaskGen, BOS, EOS};

/// Hyper-parameters for a training run.
#[derive(Debug, Clone)]
pub struct TrainSpec {
    /// Number of optimizer steps.
    pub steps: usize,
    /// Sequence pairs accumulated per optimizer step.
    pub batch: usize,
    /// Noam warmup steps.
    pub warmup: u64,
    /// Peak-scale multiplier on the Noam schedule.
    pub lr_scale: f32,
    /// Gradient-norm clip (0 disables).
    pub clip: f32,
    /// Label-smoothing ε (Vaswani et al. use 0.1; 0 disables).
    pub label_smoothing: f32,
    /// RNG seed for data sampling.
    pub seed: u64,
}

impl Default for TrainSpec {
    fn default() -> Self {
        Self {
            steps: 300,
            batch: 8,
            warmup: 60,
            lr_scale: 0.5,
            clip: 1.0,
            label_smoothing: 0.0,
            seed: 0xC0FFEE,
        }
    }
}

/// Outcome of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean loss per optimizer step.
    pub losses: Vec<f32>,
    /// Final-step mean loss.
    pub final_loss: f32,
}

/// Trains with periodic held-out evaluation and early stopping: stops
/// as soon as a validation pass reaches `target_exact_match` (checked
/// every `eval_every` steps on `val` via greedy decoding). Returns the
/// loss curve plus the evaluation history.
///
/// # Panics
///
/// Panics if `eval_every == 0` or `val` is empty.
pub fn train_with_early_stop(
    model: &mut Seq2SeqTransformer,
    gen: &TaskGen,
    spec: &TrainSpec,
    val: &[(Vec<usize>, Vec<usize>)],
    eval_every: usize,
    target_exact_match: f32,
) -> (TrainReport, Vec<(usize, EvalReport)>) {
    assert!(eval_every > 0, "eval_every must be positive");
    assert!(!val.is_empty(), "empty validation corpus");
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut adam = Adam::new(1e-3);
    let d_model = model.config().d_model;
    let mut losses = Vec::with_capacity(spec.steps);
    let mut history = Vec::new();
    for step in 1..=spec.steps {
        adam.set_lr(spec.lr_scale * noam_lr(d_model, step as u64, spec.warmup));
        model.zero_grad();
        let mut step_loss = 0.0f32;
        for _ in 0..spec.batch {
            let (src, tgt) = gen.sample(&mut rng);
            let (src, tgt_in, tgt_out) = teacher_forcing(&src, &tgt);
            let logits = model.forward_train(&src, &tgt_in);
            let (loss, dlogits) =
                cross_entropy_smoothed(&logits, &tgt_out, None, spec.label_smoothing);
            step_loss += loss;
            model.backward(&dlogits);
        }
        model.scale_grads(1.0 / spec.batch as f32);
        if spec.clip > 0.0 {
            let n = model.grad_norm();
            if n > spec.clip {
                model.scale_grads(spec.clip / n);
            }
        }
        adam.step(model);
        losses.push(step_loss / spec.batch as f32);
        if step % eval_every == 0 {
            let report = evaluate(model, val);
            history.push((step, report));
            if report.exact_match >= target_exact_match {
                break;
            }
        }
    }
    let final_loss = losses.last().copied().unwrap_or(f32::NAN);
    (TrainReport { losses, final_loss }, history)
}

/// Trains `model` on `gen`'s task. Returns the per-step loss curve.
pub fn train(model: &mut Seq2SeqTransformer, gen: &TaskGen, spec: &TrainSpec) -> TrainReport {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut adam = Adam::new(1e-3);
    let d_model = model.config().d_model;
    let mut losses = Vec::with_capacity(spec.steps);
    for step in 1..=spec.steps {
        adam.set_lr(spec.lr_scale * noam_lr(d_model, step as u64, spec.warmup));
        model.zero_grad();
        let mut step_loss = 0.0f32;
        for _ in 0..spec.batch {
            let (src, tgt) = gen.sample(&mut rng);
            let (src, tgt_in, tgt_out) = teacher_forcing(&src, &tgt);
            let logits = model.forward_train(&src, &tgt_in);
            let (loss, dlogits) =
                cross_entropy_smoothed(&logits, &tgt_out, None, spec.label_smoothing);
            step_loss += loss;
            model.backward(&dlogits);
        }
        // mean over the batch
        model.scale_grads(1.0 / spec.batch as f32);
        if spec.clip > 0.0 {
            let n = model.grad_norm();
            if n > spec.clip {
                model.scale_grads(spec.clip / n);
            }
        }
        adam.step(model);
        losses.push(step_loss / spec.batch as f32);
    }
    let final_loss = losses.last().copied().unwrap_or(f32::NAN);
    TrainReport { losses, final_loss }
}

/// Evaluation of a model on a held-out corpus.
#[derive(Debug, Clone, Copy)]
pub struct EvalReport {
    /// Corpus BLEU-4 (0–100) of greedy decodes against references.
    pub bleu: f64,
    /// Teacher-forced next-token accuracy.
    pub token_accuracy: f32,
    /// Exact-match rate of greedy decodes.
    pub exact_match: f32,
}

/// Evaluates `model` on `corpus` with greedy decoding and teacher-forced
/// accuracy.
pub fn evaluate(model: &mut Seq2SeqTransformer, corpus: &[(Vec<usize>, Vec<usize>)]) -> EvalReport {
    assert!(!corpus.is_empty(), "empty evaluation corpus");
    let max_len = model.config().max_len;
    let mut hyps = Vec::with_capacity(corpus.len());
    let mut refs = Vec::with_capacity(corpus.len());
    let mut acc_sum = 0.0f32;
    let mut exact = 0usize;
    for (src, tgt) in corpus {
        let hyp = model.greedy_decode(src, BOS, EOS, max_len);
        if hyp == *tgt {
            exact += 1;
        }
        let (s, tin, tout) = teacher_forcing(src, tgt);
        let logits = model.forward_train(&s, &tin);
        acc_sum += token_accuracy(&logits, &tout, None);
        hyps.push(hyp);
        refs.push(tgt.clone());
    }
    EvalReport {
        bleu: corpus_bleu(&hyps, &refs),
        token_accuracy: acc_sum / corpus.len() as f32,
        exact_match: exact as f32 / corpus.len() as f32,
    }
}

/// Builds the standard study model: a small but real Transformer
/// (2 encoder + 2 decoder layers, `d_model = 64`, `h = 4`) that trains to
/// high BLEU on the synthetic tasks within a few hundred steps on a CPU.
pub fn study_config() -> ModelConfig {
    ModelConfig {
        name: "quantization-study".into(),
        d_model: 64,
        d_ff: 256,
        h: 4,
        n_layers: 2,
        vocab: 24,
        max_len: 12,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tasks::Task;

    #[test]
    fn training_reduces_loss_substantially() {
        let mut cfg = study_config();
        cfg.n_layers = 1;
        cfg.d_model = 32;
        cfg.d_ff = 64;
        let mut rng = StdRng::seed_from_u64(1);
        let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Copy, cfg.vocab, 3, 6);
        let spec = TrainSpec {
            steps: 300,
            batch: 4,
            warmup: 60,
            lr_scale: 0.5,
            ..TrainSpec::default()
        };
        let report = train(&mut model, &gen, &spec);
        let early: f32 = report.losses[..5].iter().sum::<f32>() / 5.0;
        let late: f32 = report.losses[report.losses.len() - 5..].iter().sum::<f32>() / 5.0;
        assert!(late < early * 0.5, "loss did not drop: {early} -> {late}");
    }

    #[test]
    fn early_stopping_halts_before_the_step_budget() {
        let mut cfg = study_config();
        cfg.n_layers = 1;
        cfg.d_model = 32;
        cfg.d_ff = 64;
        let mut rng = StdRng::seed_from_u64(9);
        let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Copy, cfg.vocab, 3, 4);
        let val = gen.corpus(6, &mut StdRng::seed_from_u64(10));
        let spec = TrainSpec {
            steps: 2000,
            batch: 4,
            warmup: 40,
            lr_scale: 0.5,
            ..TrainSpec::default()
        };
        // a trivially reachable target: better than zero
        let (report, history) = train_with_early_stop(&mut model, &gen, &spec, &val, 50, 0.01);
        assert!(!history.is_empty());
        assert!(
            report.losses.len() < spec.steps,
            "should stop early, ran {} steps",
            report.losses.len()
        );
        let (step, last) = history.last().unwrap();
        assert_eq!(step % 50, 0);
        assert!(last.exact_match >= 0.01);
    }

    #[test]
    fn evaluate_reports_consistent_metrics() {
        let mut cfg = study_config();
        cfg.n_layers = 1;
        let mut rng = StdRng::seed_from_u64(2);
        let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Copy, cfg.vocab, 3, 5);
        let corpus = gen.corpus(4, &mut StdRng::seed_from_u64(3));
        let report = evaluate(&mut model, &corpus);
        assert!((0.0..=100.0).contains(&report.bleu));
        assert!((0.0..=1.0).contains(&report.token_accuracy));
        assert!((0.0..=1.0).contains(&report.exact_match));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn evaluate_rejects_empty_corpus() {
        let cfg = study_config();
        let mut rng = StdRng::seed_from_u64(4);
        let mut model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let _ = evaluate(&mut model, &[]);
    }
}
