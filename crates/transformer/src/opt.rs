//! Parameter visitation and the Adam optimizer.
//!
//! Layers own their parameters *and* their gradients; [`HasParams`] lets
//! an optimizer walk them in a stable order without any global parameter
//! registry. [`Adam`] implements Kingma & Ba (2015) with the inverse-
//! square-root warmup schedule of Vaswani et al. (2017) available via
//! [`noam_lr`].

/// A layer (or model) exposing `(name, params, grads)` triples in a
/// stable, deterministic order.
///
/// The order must not change between calls: optimizers key their state by
/// visitation index.
pub trait HasParams {
    /// Visits every parameter buffer with its gradient buffer.
    #[allow(clippy::type_complexity)]
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32]));

    /// Sets every gradient to zero.
    fn zero_grad(&mut self) {
        self.visit_params(&mut |_, _, g| g.fill(0.0));
    }

    /// Total number of scalar parameters.
    fn param_count(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |_, p, _| n += p.len());
        n
    }

    /// Global L2 norm of the gradient (for clipping / diagnostics).
    fn grad_norm(&mut self) -> f32 {
        let mut acc = 0.0f64;
        self.visit_params(&mut |_, _, g| {
            acc += g.iter().map(|&x| (x as f64) * (x as f64)).sum::<f64>();
        });
        acc.sqrt() as f32
    }

    /// Scales every gradient by `k` (gradient clipping support).
    fn scale_grads(&mut self, k: f32) {
        self.visit_params(&mut |_, _, g| {
            for v in g.iter_mut() {
                *v *= k;
            }
        });
    }
}

/// Adam optimizer with decoupled per-buffer first/second moments.
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    t: u64,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
}

impl Adam {
    /// Creates an Adam optimizer with the given learning rate and the
    /// Transformer-standard moments `beta1 = 0.9`, `beta2 = 0.98`,
    /// `eps = 1e-9` (Vaswani et al., Section 5.3).
    pub fn new(lr: f32) -> Self {
        Self {
            lr,
            beta1: 0.9,
            beta2: 0.98,
            eps: 1e-9,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        }
    }

    /// Updates the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }

    /// Applies one Adam update to every parameter of `model` using its
    /// accumulated gradients. Gradients are *not* cleared; call
    /// [`HasParams::zero_grad`] before the next accumulation.
    pub fn step(&mut self, model: &mut impl HasParams) {
        self.t += 1;
        let t = self.t as i32;
        let bc1 = 1.0 - self.beta1.powi(t);
        let bc2 = 1.0 - self.beta2.powi(t);
        let (lr, b1, b2, eps) = (self.lr, self.beta1, self.beta2, self.eps);
        let (ms, vs) = (&mut self.m, &mut self.v);
        let mut idx = 0usize;
        model.visit_params(&mut |_, p, g| {
            if ms.len() == idx {
                ms.push(vec![0.0; p.len()]);
                vs.push(vec![0.0; p.len()]);
            }
            let m = &mut ms[idx];
            let v = &mut vs[idx];
            assert_eq!(m.len(), p.len(), "parameter buffer {idx} changed size");
            for i in 0..p.len() {
                m[i] = b1 * m[i] + (1.0 - b1) * g[i];
                v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
                let mhat = m[i] / bc1;
                let vhat = v[i] / bc2;
                p[i] -= lr * mhat / (vhat.sqrt() + eps);
            }
            idx += 1;
        });
    }
}

/// The Noam (inverse-square-root warmup) learning-rate schedule of
/// Vaswani et al. (2017):
/// `lr = d_model^-0.5 * min(step^-0.5, step * warmup^-1.5)`.
pub fn noam_lr(d_model: usize, step: u64, warmup: u64) -> f32 {
    let step = step.max(1) as f32;
    let warmup = warmup.max(1) as f32;
    (d_model as f32).powf(-0.5) * step.powf(-0.5).min(step * warmup.powf(-1.5))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A 1-D quadratic bowl: loss = 0.5 * |p|^2, grad = p.
    struct Bowl {
        p: Vec<f32>,
        g: Vec<f32>,
    }

    impl HasParams for Bowl {
        fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
            f("p", &mut self.p, &mut self.g);
        }
    }

    #[test]
    fn adam_minimizes_quadratic() {
        let mut bowl = Bowl {
            p: vec![5.0, -3.0, 1.0],
            g: vec![0.0; 3],
        };
        let mut adam = Adam::new(0.1);
        for _ in 0..500 {
            bowl.g.copy_from_slice(&bowl.p); // grad of 0.5|p|^2
            adam.step(&mut bowl);
        }
        assert!(bowl.p.iter().all(|&x| x.abs() < 1e-2), "{:?}", bowl.p);
        assert_eq!(adam.steps(), 500);
    }

    #[test]
    fn zero_grad_and_norms() {
        let mut bowl = Bowl {
            p: vec![1.0, 2.0],
            g: vec![3.0, 4.0],
        };
        assert_eq!(bowl.grad_norm(), 5.0);
        assert_eq!(bowl.param_count(), 2);
        bowl.scale_grads(0.5);
        assert_eq!(bowl.g, vec![1.5, 2.0]);
        bowl.zero_grad();
        assert_eq!(bowl.g, vec![0.0, 0.0]);
    }

    #[test]
    fn noam_warms_up_then_decays() {
        let w = 400;
        let early = noam_lr(512, 10, w);
        let peak = noam_lr(512, w, w);
        let late = noam_lr(512, 100 * w, w);
        assert!(early < peak, "{early} < {peak}");
        assert!(late < peak, "{late} < {peak}");
        // continuity at the warmup knee
        let just_before = noam_lr(512, w - 1, w);
        assert!((just_before - peak).abs() / peak < 0.01);
    }

    #[test]
    #[should_panic(expected = "changed size")]
    fn adam_detects_resized_buffers() {
        let mut bowl = Bowl {
            p: vec![1.0],
            g: vec![0.0],
        };
        let mut adam = Adam::new(0.1);
        adam.step(&mut bowl);
        bowl.p = vec![1.0, 2.0];
        bowl.g = vec![0.0, 0.0];
        adam.step(&mut bowl);
    }
}
