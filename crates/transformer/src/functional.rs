//! Stateless reference functions: numerically stable softmax and layer
//! normalization, exactly as defined by Eqs. (4)–(8) of the paper but in
//! FP32. These are the golden references the fixed-point datapath is
//! measured against.

use tensor::Mat;

/// Row-wise numerically stable softmax with an optional boolean mask
/// (`true` = illegal connection, probability forced to zero — Eq. (4)).
///
/// Fully masked rows return all-zero probabilities rather than NaN, which
/// matches the hardware's behaviour when every key position is illegal.
///
/// # Panics
///
/// Panics if `mask` is present with a different shape than `scores`.
pub fn softmax_rows(scores: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
    if let Some(m) = mask {
        assert_eq!(m.shape(), scores.shape(), "mask shape mismatch");
    }
    let (rows, cols) = scores.shape();
    let mut out = Mat::zeros(rows, cols);
    for r in 0..rows {
        let legal = |c: usize| mask.is_none_or(|m| !m[(r, c)]);
        let mut max = f32::NEG_INFINITY;
        for c in 0..cols {
            if legal(c) {
                max = max.max(scores[(r, c)]);
            }
        }
        if max == f32::NEG_INFINITY {
            continue; // fully masked row -> all zeros
        }
        let mut sum = 0.0;
        for c in 0..cols {
            if legal(c) {
                let e = (scores[(r, c)] - max).exp();
                out[(r, c)] = e;
                sum += e;
            }
        }
        for c in 0..cols {
            out[(r, c)] /= sum;
        }
    }
    out
}

/// Backward pass of row-wise softmax: given probabilities `p` (the
/// forward output) and upstream gradient `dp`, returns the gradient with
/// respect to the pre-softmax scores:
/// `ds = p ⊙ (dp − rowsum(dp ⊙ p))`.
pub fn softmax_rows_backward(p: &Mat<f32>, dp: &Mat<f32>) -> Mat<f32> {
    assert_eq!(p.shape(), dp.shape(), "softmax backward shape mismatch");
    let (rows, cols) = p.shape();
    let mut out = Mat::zeros(rows, cols);
    for r in 0..rows {
        let dot: f32 = (0..cols).map(|c| dp[(r, c)] * p[(r, c)]).sum();
        for c in 0..cols {
            out[(r, c)] = p[(r, c)] * (dp[(r, c)] - dot);
        }
    }
    out
}

// The layer-normalization core now lives in `tensor::norm` so the FP32
// reference, the trainable module and the INT8 calibration replay all
// share one routine; re-exported here to keep the historical paths.
pub use tensor::norm::{layernorm_rows, LAYERNORM_EPS};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn softmax_rows_sum_to_one() {
        let s = Mat::from_fn(3, 5, |r, c| (r * c) as f32 * 0.3 - 1.0);
        let p = softmax_rows(&s, None);
        for r in 0..3 {
            let sum: f32 = p.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let s = Mat::from_fn(2, 4, |r, c| (r + c) as f32);
        let shifted = s.map(|&x| x + 100.0);
        let p1 = softmax_rows(&s, None);
        let p2 = softmax_rows(&shifted, None);
        for (a, b) in p1.as_slice().iter().zip(p2.as_slice()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn softmax_handles_extreme_values_without_nan() {
        let s = Mat::from_vec(1, 3, vec![1e30f32, -1e30, 0.0]).unwrap();
        let p = softmax_rows(&s, None);
        assert!(p.as_slice().iter().all(|v| v.is_finite()));
        assert!((p[(0, 0)] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn masked_entries_get_zero_probability() {
        let s = Mat::from_fn(2, 3, |_, c| c as f32);
        let mask = Mat::from_fn(2, 3, |r, c| r == 0 && c == 2);
        let p = softmax_rows(&s, Some(&mask));
        assert_eq!(p[(0, 2)], 0.0);
        let sum0: f32 = p.row(0).iter().sum();
        assert!((sum0 - 1.0).abs() < 1e-6);
        assert!(p[(1, 2)] > 0.0);
    }

    #[test]
    fn fully_masked_row_is_all_zero() {
        let s = Mat::from_fn(1, 3, |_, c| c as f32);
        let mask = Mat::filled(1, 3, true);
        let p = softmax_rows(&s, Some(&mask));
        assert!(p.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let s = Mat::from_vec(2, 3, vec![0.1f32, -0.4, 0.7, 1.0, 0.0, -1.0]).unwrap();
        let dp = Mat::from_vec(2, 3, vec![0.3f32, -0.2, 0.5, 1.0, 2.0, -0.7]).unwrap();
        let p = softmax_rows(&s, None);
        let ds = softmax_rows_backward(&p, &dp);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut sp = s.clone();
                sp[(r, c)] += h;
                let mut sm = s.clone();
                sm[(r, c)] -= h;
                let pp = softmax_rows(&sp, None);
                let pm = softmax_rows(&sm, None);
                // directional derivative of <p, dp>
                let fd: f32 = pp
                    .as_slice()
                    .iter()
                    .zip(pm.as_slice())
                    .zip(dp.as_slice())
                    .map(|((a, b), g)| (a - b) / (2.0 * h) * g)
                    .sum();
                assert!(
                    (fd - ds[(r, c)]).abs() < 1e-3,
                    "({r},{c}): fd {fd} vs analytic {}",
                    ds[(r, c)]
                );
            }
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let x = Mat::from_fn(2, 8, |r, c| (r * 8 + c) as f32);
        let gamma = vec![1.0f32; 8];
        let beta = vec![0.0f32; 8];
        let y = layernorm_rows(&x, &gamma, &beta, LAYERNORM_EPS);
        for r in 0..2 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 8.0;
            let var: f32 = y
                .row(r)
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f32>()
                / 8.0;
            assert!(mean.abs() < 1e-5);
            assert!((var - 1.0).abs() < 1e-3);
        }
    }

    #[test]
    fn layernorm_applies_affine() {
        let x = Mat::from_fn(1, 4, |_, c| c as f32);
        let y = layernorm_rows(&x, &[2.0; 4], &[1.0; 4], LAYERNORM_EPS);
        let base = layernorm_rows(&x, &[1.0; 4], &[0.0; 4], LAYERNORM_EPS);
        for c in 0..4 {
            assert!((y[(0, c)] - (2.0 * base[(0, c)] + 1.0)).abs() < 1e-5);
        }
    }

    #[test]
    fn layernorm_constant_row_is_beta() {
        let x = Mat::filled(1, 4, 3.0f32);
        let y = layernorm_rows(&x, &[1.5; 4], &[0.25; 4], LAYERNORM_EPS);
        for c in 0..4 {
            assert!((y[(0, c)] - 0.25).abs() < 1e-3);
        }
    }
}
