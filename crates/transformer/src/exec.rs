//! FP32 executors for the ResBlock operator graphs.
//!
//! [`FloatExec`] interprets a graph node-by-node with the reference FP32
//! primitives — it is what [`crate::mha::MhaResBlock::forward_inference`],
//! [`crate::mha::MultiHeadAttention::forward_inference`] and
//! [`crate::ffn::FfnResBlock::forward_inference`] run through.
//! [`RowExec`] executes the cached-KV graph for incremental decoding,
//! where every session attends over its own cache length; it fuses the
//! per-head group into a per-row kernel and fans rows out across threads.
//!
//! Both are **bit-identical** to the hand-rolled loops they replaced:
//! they call the same primitives (`gemm`, `ops`, `softmax_rows`,
//! `layernorm_rows`) in the same order, and the GEMM kernels never
//! reorder a row's accumulation.

use graph::{Env, ExecStats, Executor, Graph, GraphKind, Node, Op, PlanStep, WeightId};
use tensor::{gemm, ops, Mat};

use crate::attention::attention_forward;
use crate::ffn::FfnResBlock;
use crate::functional::softmax_rows;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::mha::{MhaResBlock, MultiHeadAttention};

fn weight_index(id: WeightId) -> usize {
    match id {
        WeightId::Wq => 0,
        WeightId::Wk => 1,
        WeightId::Wv => 2,
        WeightId::Wo => 3,
        WeightId::W1 => 4,
        WeightId::W2 => 5,
    }
}

/// FP32 graph interpreter over a ResBlock's parameters.
///
/// Binds borrowed [`Linear`] layers to [`WeightId`] slots plus an
/// optional [`LayerNorm`]; [`Executor::run`] then walks the plan
/// sequentially, evaluating each node with the reference primitives.
#[derive(Debug)]
pub struct FloatExec<'a> {
    weights: [Option<&'a Linear>; 6],
    ln: Option<&'a LayerNorm>,
    stats: ExecStats,
}

impl<'a> FloatExec<'a> {
    /// Executor over a full MHA ResBlock (all four projections + LayerNorm).
    pub fn mha_res(block: &'a MhaResBlock) -> Self {
        let mut e = Self::mha(block.mha());
        e.ln = Some(block.layernorm());
        e
    }

    /// Executor over a bare attention block (no LayerNorm bound; graphs
    /// must be truncated before any `LayerNorm` node).
    pub fn mha(mha: &'a MultiHeadAttention) -> Self {
        let (wq, wk, wv, wo) = mha.projections();
        Self {
            weights: [Some(wq), Some(wk), Some(wv), Some(wo), None, None],
            ln: None,
            stats: ExecStats::default(),
        }
    }

    /// Executor over an FFN ResBlock (both sublayers + LayerNorm).
    pub fn ffn_res(block: &'a FfnResBlock) -> Self {
        let (lin1, lin2) = block.sublayers();
        Self {
            weights: [None, None, None, None, Some(lin1), Some(lin2)],
            ln: Some(block.layernorm()),
            stats: ExecStats::default(),
        }
    }

    fn weight(&self, id: WeightId) -> &'a Linear {
        self.weights[weight_index(id)].unwrap_or_else(|| panic!("no {id:?} bound to this executor"))
    }

    fn eval(
        &self,
        graph: &Graph,
        node: &Node,
        step: &PlanStep,
        env: &Env<Mat<f32>>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let input = |i: usize| env.value(step.inputs[i]);
        match node.op {
            Op::Linear(id) => self.weight(id).forward_inference(input(0)),
            Op::SplitHeads => {
                let d_k = graph.cfg.d_k();
                let c0 = node.head.expect("SplitHeads outside a head group") * d_k;
                let x = input(0);
                x.submatrix(0, c0, x.rows(), d_k).expect("head panel")
            }
            Op::HeadMatmul { transpose_rhs } => {
                let (a, b) = (input(0), input(1));
                if transpose_rhs {
                    gemm::matmul_nt(a, b).expect("head shapes")
                } else {
                    gemm::matmul(a, b).expect("head shapes")
                }
            }
            Op::ScaledMaskedSoftmax => {
                let scale = 1.0 / (graph.cfg.d_k() as f32).sqrt();
                let scores = ops::scale(input(0), scale);
                let masked = match mask {
                    Some(m) => ops::mask_scores(&scores, m).expect("mask shape"),
                    None => scores,
                };
                softmax_rows(&masked, None)
            }
            Op::Concat => {
                let panels: Vec<Mat<f32>> =
                    step.inputs.iter().map(|&s| env.value(s).clone()).collect();
                Mat::hconcat(&panels).expect("heads share row count")
            }
            Op::Relu => ops::relu(input(0)),
            Op::Add => ops::add(input(0), input(1)).expect("residual shape invariant"),
            Op::LinearRelu(id) => self.weight(id).forward_inference_relu(input(0)),
            Op::LinearAdd(id) => self.weight(id).forward_inference_add(input(0), input(1)),
            Op::LayerNorm => self
                .ln
                .expect("no layernorm bound to this executor")
                .forward_inference(input(0)),
        }
    }
}

impl Executor for FloatExec<'_> {
    type Value = Mat<f32>;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, Mat<f32>)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<Mat<f32>> {
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        for step in &plan.steps {
            let node = &graph.nodes[step.node];
            let out = self.eval(graph, node, step, &env, mask);
            if matches!(node.op, Op::LinearRelu(_) | Op::LinearAdd(_)) {
                // The elided producer output has the fused node's shape.
                let bytes = out.rows() * out.cols() * std::mem::size_of::<f32>();
                self.stats.ops_fused += 1;
                self.stats.intermediates_elided_bytes += bytes;
                graph::tally::note_fused(1, bytes);
            }
            env.set(step.output, out);
            self.stats.nodes += 1;
        }
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

/// Value domain of [`RowExec`]: either a stack of active rows (one per
/// session) or the per-session projected K/V caches those rows attend
/// over.
#[derive(Debug)]
pub enum RowVal<'a> {
    /// A `b × d_model` matrix of per-session rows.
    Rows(Mat<f32>),
    /// One borrowed cache matrix per session (lengths may differ).
    Caches(Vec<&'a Mat<f32>>),
}

impl RowVal<'_> {
    /// Unwraps the row-stack variant.
    ///
    /// # Panics
    ///
    /// Panics if this value holds caches.
    pub fn into_rows(self) -> Mat<f32> {
        match self {
            RowVal::Rows(m) => m,
            RowVal::Caches(_) => panic!("expected a row tensor, found per-session caches"),
        }
    }
}

/// Cached-KV executor for the [`GraphKind::MhaCached`] graph: each of
/// the `b` input rows attends over its own session's key/value cache.
///
/// The per-head group is fused into one per-row kernel (the caches have
/// different lengths, so heads cannot be batched across sessions); rows
/// fan out across threads via [`tensor::par::par_map`] when `b > 1` and
/// run inline when `b == 1` (the single-token decode hot path). Row `r`
/// of the output is bit-identical to running the executor on row `r`
/// alone, for any batch composition.
#[derive(Debug)]
pub struct RowExec<'a> {
    block: &'a MhaResBlock,
    stats: ExecStats,
}

impl<'a> RowExec<'a> {
    /// Executor over one MHA ResBlock's parameters.
    pub fn new(block: &'a MhaResBlock) -> Self {
        Self {
            block,
            stats: ExecStats::default(),
        }
    }
}

impl<'a> Executor for RowExec<'a> {
    type Value = RowVal<'a>;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, RowVal<'a>)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<RowVal<'a>> {
        assert_eq!(
            graph.kind,
            GraphKind::MhaCached,
            "RowExec executes the cached-KV MHA graph only"
        );
        debug_assert!(
            mask.is_none(),
            "cached decoding is causal by construction; no run-time mask"
        );
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        let x = match env.take("x") {
            RowVal::Rows(m) => m,
            RowVal::Caches(_) => panic!("input \"x\" must be a row tensor"),
        };
        let (keys, vals) = match (env.take("keys"), env.take("vals")) {
            (RowVal::Caches(k), RowVal::Caches(v)) => (k, v),
            _ => panic!("inputs \"keys\"/\"vals\" must be per-session caches"),
        };
        assert_eq!(x.rows(), keys.len(), "one key cache per row");
        assert_eq!(x.rows(), vals.len(), "one value cache per row");

        let mha = self.block.mha();
        let (wq, _, _, wo) = mha.projections();
        let h = mha.heads();
        debug_assert_eq!(h, graph.cfg.h, "executor/graph head count mismatch");
        let d_k = wq.d_in() / h;
        let scale = 1.0 / (d_k as f32).sqrt();
        let q = wq.forward_inference(&x);
        let attend = |r: usize| -> Mat<f32> {
            let (keys, vals) = (keys[r], vals[r]);
            let mut heads = Vec::with_capacity(h);
            for i in 0..h {
                let c0 = i * d_k;
                let qi = q.submatrix(r, c0, 1, d_k).expect("head panel");
                let ki = keys.submatrix(0, c0, keys.rows(), d_k).expect("head panel");
                let vi = vals.submatrix(0, c0, vals.rows(), d_k).expect("head panel");
                let (out, _) = attention_forward(&qi, &ki, &vi, None, scale);
                heads.push(out);
            }
            Mat::hconcat(&heads).expect("heads share rows")
        };
        let att_rows: Vec<Mat<f32>> = if x.rows() == 1 {
            vec![attend(0)]
        } else {
            let rows: Vec<usize> = (0..x.rows()).collect();
            tensor::par::par_map(&rows, |&r| attend(r))
        };
        let concat = Mat::vconcat(&att_rows).expect("rows share width");
        let res = if tensor::envcfg::fuse_enabled() {
            let bytes = concat.rows() * wo.d_out() * std::mem::size_of::<f32>();
            self.stats.ops_fused += 1;
            self.stats.intermediates_elided_bytes += bytes;
            graph::tally::note_fused(1, bytes);
            wo.forward_inference_add(&concat, &x)
        } else {
            let sub = wo.forward_inference(&concat);
            ops::add(&x, &sub).expect("residual shape")
        };
        let y = self.block.layernorm().forward_inference(&res);
        self.stats.nodes += graph.nodes.len();
        let out_slot = env.slot("y");
        env.set(out_slot, RowVal::Rows(y));
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use graph::{ffn_graph, mha_cached_graph, mha_graph, GraphConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gcfg(cfg: &ModelConfig) -> GraphConfig {
        GraphConfig {
            d_model: cfg.d_model,
            d_ff: cfg.d_ff,
            h: cfg.h,
        }
    }

    /// Frozen copy of the pre-refactor `MhaResBlock::forward_inference`
    /// loop — the golden reference the graph path must reproduce bit for
    /// bit.
    fn mha_res_reference(
        block: &MhaResBlock,
        xq: &Mat<f32>,
        xkv: &Mat<f32>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let mha = block.mha();
        let (wq, wk, wv, wo) = mha.projections();
        let h = mha.heads();
        let d_k = wq.d_in() / h;
        let q = wq.forward_inference(xq);
        let k = wk.forward_inference(xkv);
        let v = wv.forward_inference(xkv);
        let scale = 1.0 / (d_k as f32).sqrt();
        let mut heads = Vec::with_capacity(h);
        for i in 0..h {
            let c0 = i * d_k;
            let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
            let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
            let vi = v.submatrix(0, c0, v.rows(), d_k).unwrap();
            let (out, _) = attention_forward(&qi, &ki, &vi, mask, scale);
            heads.push(out);
        }
        let concat = Mat::hconcat(&heads).unwrap();
        let sub = wo.forward_inference(&concat);
        let res = ops::add(xq, &sub).unwrap();
        block.layernorm().forward_inference(&res)
    }

    #[test]
    fn float_exec_matches_reference_bitwise() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(11);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
        let want = mha_res_reference(&block, &x, &x, None);
        let got = block.forward_inference(&x, &x, &x, None);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn float_exec_matches_reference_with_mask() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(12);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let mask = Mat::from_fn(4, 4, |r, c| c > r);
        let want = mha_res_reference(&block, &x, &x, Some(&mask));
        let got = block.forward_inference(&x, &x, &x, Some(&mask));
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn truncated_graph_yields_pre_residual_attention() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(13);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 3, cfg.d_model, 1.0);
        let attn = block.mha().forward_inference(&x, &x, &x, None);
        let full = block.forward_inference(&x, &x, &x, None);
        let res = ops::add(&x, &attn).unwrap();
        let want = block.layernorm().forward_inference(&res);
        assert_eq!(full.as_slice(), want.as_slice());
    }

    #[test]
    fn ffn_exec_matches_reference_bitwise() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(14);
        let block = FfnResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
        // frozen pre-refactor loop
        let (lin1, lin2) = block.sublayers();
        let pre = lin1.forward_inference(&x);
        let hidden = ops::relu(&pre);
        let sub = lin2.forward_inference(&hidden);
        let res = ops::add(&x, &sub).unwrap();
        let want = block.layernorm().forward_inference(&res);
        let got = block.forward_inference(&x);
        assert_eq!(got.as_slice(), want.as_slice());
    }

    #[test]
    fn exec_reports_node_counts() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(15);
        let block = FfnResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, cfg.d_model, 1.0);
        let g = ffn_graph(&gcfg(&cfg));
        let mut exec = FloatExec::ffn_res(&block);
        let mut env = exec.run(&g, vec![("x", x)], None);
        let _ = env.take("y");
        assert_eq!(exec.stats().nodes, g.nodes.len());
        assert_eq!(exec.stats().cycles, None);
    }

    #[test]
    fn row_exec_single_row_matches_full_graph() {
        // One row attending over a cache equals the full MHA graph on the
        // same data when the cache holds the projected K/V of the whole
        // prefix and the query is the last row.
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(16);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let (_, wk, wv, _) = block.mha().projections();
        let keys = wk.forward_inference(&x);
        let vals = wv.forward_inference(&x);
        let last = x.submatrix(3, 0, 1, cfg.d_model).unwrap();

        let g = mha_cached_graph(&gcfg(&cfg));
        let mut exec = RowExec::new(&block);
        let mut env = exec.run(
            &g,
            vec![
                ("x", RowVal::Rows(last.clone())),
                ("keys", RowVal::Caches(vec![&keys])),
                ("vals", RowVal::Caches(vec![&vals])),
            ],
            None,
        );
        let got = env.take("y").into_rows();

        // Full graph on the whole prefix; causal row 3 sees all 4 keys.
        let full = block.forward_inference(&x, &x, &x, None);
        for c in 0..cfg.d_model {
            assert_eq!(got[(0, c)], full[(3, c)]);
        }
    }

    #[test]
    fn row_exec_batch_rows_are_independent() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(17);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 3, cfg.d_model, 1.0);
        let caches: Vec<(Mat<f32>, Mat<f32>)> = (0..3)
            .map(|i| {
                let m = tensor::init::normal(&mut rng, 2 + i, cfg.d_model, 1.0);
                let (_, wk, wv, _) = block.mha().projections();
                (wk.forward_inference(&m), wv.forward_inference(&m))
            })
            .collect();
        let g = mha_cached_graph(&gcfg(&cfg));

        let mut batched = RowExec::new(&block);
        let mut env = batched.run(
            &g,
            vec![
                ("x", RowVal::Rows(x.clone())),
                (
                    "keys",
                    RowVal::Caches(caches.iter().map(|c| &c.0).collect()),
                ),
                (
                    "vals",
                    RowVal::Caches(caches.iter().map(|c| &c.1).collect()),
                ),
            ],
            None,
        );
        let got = env.take("y").into_rows();

        for (r, cache) in caches.iter().enumerate() {
            let row = x.submatrix(r, 0, 1, cfg.d_model).unwrap();
            let mut single = RowExec::new(&block);
            let mut env = single.run(
                &g,
                vec![
                    ("x", RowVal::Rows(row)),
                    ("keys", RowVal::Caches(vec![&cache.0])),
                    ("vals", RowVal::Caches(vec![&cache.1])),
                ],
                None,
            );
            let want = env.take("y").into_rows();
            assert_eq!(got.row(r), want.row(0), "row {r}");
        }
    }

    #[test]
    #[should_panic(expected = "no layernorm bound")]
    fn bare_attention_executor_rejects_layernorm_nodes() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(18);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, cfg.d_model, 1.0);
        let g = mha_graph(&gcfg(&cfg));
        let mut exec = FloatExec::mha(block.mha());
        let _ = exec.run(
            &g,
            vec![("x_q", x.clone()), ("x_k", x.clone()), ("x_v", x)],
            None,
        );
    }
}
