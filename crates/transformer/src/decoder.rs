//! Decoder layer and decoder stack (right half of Fig. 1): masked
//! self-attention, encoder–decoder cross-attention, and the FFN ResBlock.

use rand::Rng;
use tensor::{ops, Mat};

use crate::config::ModelConfig;
use crate::ffn::FfnResBlock;
use crate::mha::MhaResBlock;
use crate::opt::HasParams;

/// One decoder layer: causal self-attention, cross-attention over the
/// encoder memory, then the FFN ResBlock.
#[derive(Debug, Clone)]
pub struct DecoderLayer {
    self_mha: MhaResBlock,
    cross_mha: MhaResBlock,
    ffn: FfnResBlock,
}

impl DecoderLayer {
    /// Creates a layer with parameter names scoped by `name`.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        Self {
            self_mha: MhaResBlock::with_name(&format!("{name}.self"), cfg, rng),
            cross_mha: MhaResBlock::with_name(&format!("{name}.cross"), cfg, rng),
            ffn: FfnResBlock::with_name(&format!("{name}.ffn"), cfg, rng),
        }
    }

    /// Borrows the three ResBlocks `(self_mha, cross_mha, ffn)`.
    pub fn blocks(&self) -> (&MhaResBlock, &MhaResBlock, &FfnResBlock) {
        (&self.self_mha, &self.cross_mha, &self.ffn)
    }

    /// Forward pass. `x: [s_tgt, d_model]` decoder stream, `memory:
    /// [s_src, d_model]` encoder output, `self_mask` the causal mask.
    pub fn forward(
        &mut self,
        x: &Mat<f32>,
        memory: &Mat<f32>,
        self_mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let a = self.self_mha.forward(x, x, x, self_mask);
        let b = self.cross_mha.forward(&a, memory, memory, None);
        self.ffn.forward(&b)
    }

    /// Backward pass: returns `(dx, dmemory)`.
    pub fn backward(&mut self, dy: &Mat<f32>) -> (Mat<f32>, Mat<f32>) {
        let db = self.ffn.backward(dy);
        let (da, dmem_k, dmem_v) = self.cross_mha.backward(&db);
        let dmemory = ops::add(&dmem_k, &dmem_v).expect("shape invariant");
        let (dq, dk, dv) = self.self_mha.backward(&da);
        let dx = ops::add(&ops::add(&dq, &dk).expect("shape"), &dv).expect("shape");
        (dx, dmemory)
    }
}

impl HasParams for DecoderLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.self_mha.visit_params(f);
        self.cross_mha.visit_params(f);
        self.ffn.visit_params(f);
    }
}

/// A stack of `n_layers` identical decoder layers.
#[derive(Debug, Clone)]
pub struct Decoder {
    layers: Vec<DecoderLayer>,
}

impl Decoder {
    /// Creates the stack described by `cfg`.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|i| DecoderLayer::new(&format!("dec{i}"), cfg, rng))
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of the layer stack (used for weight export/quantization).
    pub fn layers(&self) -> &[DecoderLayer] {
        &self.layers
    }

    /// Forward through all layers.
    pub fn forward(
        &mut self,
        x: &Mat<f32>,
        memory: &Mat<f32>,
        self_mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, memory, self_mask);
        }
        h
    }

    /// Backward through all layers: returns `(dx, dmemory)` where
    /// `dmemory` accumulates every layer's cross-attention contribution.
    pub fn backward(&mut self, dy: &Mat<f32>) -> (Mat<f32>, Mat<f32>) {
        let mut d = dy.clone();
        let mut dmem_total: Option<Mat<f32>> = None;
        for layer in self.layers.iter_mut().rev() {
            let (dx, dmem) = layer.backward(&d);
            d = dx;
            dmem_total = Some(match dmem_total {
                Some(acc) => ops::add(&acc, &dmem).expect("shape invariant"),
                None => dmem,
            });
        }
        (d, dmem_total.expect("decoder has at least one layer"))
    }
}

impl HasParams for Decoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn decoder_shapes() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(1);
        let mut dec = Decoder::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
        let mem = tensor::init::normal(&mut rng, 7, cfg.d_model, 1.0);
        let mask = ops::causal_mask(5);
        let y = dec.forward(&x, &mem, Some(&mask));
        assert_eq!(y.shape(), (5, cfg.d_model));
    }

    #[test]
    fn backward_produces_both_gradients() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(2);
        let mut dec = Decoder::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let mem = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let _ = dec.forward(&x, &mem, Some(&ops::causal_mask(4)));
        let dy = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let (dx, dmem) = dec.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        assert_eq!(dmem.shape(), mem.shape());
        assert!(
            tensor::ops::fro_norm(&dmem) > 0.0,
            "memory must get gradient"
        );
    }

    #[test]
    fn causal_decoding_is_prefix_stable() {
        // With a causal mask, position t's output must not depend on
        // positions > t: running the decoder on a prefix must give the
        // same prefix outputs.
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(3);
        let mut dec = Decoder::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let mem = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let full = dec.forward(&x, &mem, Some(&ops::causal_mask(6)));
        let prefix_x = x.submatrix(0, 0, 3, cfg.d_model).unwrap();
        let prefix = dec.forward(&prefix_x, &mem, Some(&ops::causal_mask(3)));
        for r in 0..3 {
            for c in 0..cfg.d_model {
                assert!(
                    (full[(r, c)] - prefix[(r, c)]).abs() < 1e-4,
                    "prefix mismatch at ({r},{c})"
                );
            }
        }
    }
}
