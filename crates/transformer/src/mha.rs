//! Multi-head attention and the MHA ResBlock (Fig. 2 of the paper).
//!
//! Projections are stored as full `d_model x d_model` matrices; each
//! head uses a 64-column panel, exactly the layout the accelerator's
//! partitioning scheme (Fig. 4) exploits.

use graph::Executor;
use rand::Rng;
use tensor::{ops, Mat};

use crate::attention::{attention_backward, attention_forward, AttentionCache};
use crate::config::ModelConfig;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::opt::HasParams;

/// Multi-head attention: `h` scaled dot-product heads over 64-wide
/// projections, concatenated and linearly combined (`W_G` in the paper's
/// notation, `W^O` in Vaswani et al.).
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    wq: Linear,
    wk: Linear,
    wv: Linear,
    wo: Linear,
    h: usize,
    d_k: usize,
    head_caches: Vec<AttentionCache>,
}

impl MultiHeadAttention {
    /// Creates an MHA block for the given configuration.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        let d = cfg.d_model;
        Self {
            wq: Linear::new(format!("{name}.wq"), d, d, rng),
            wk: Linear::new(format!("{name}.wk"), d, d, rng),
            wv: Linear::new(format!("{name}.wv"), d, d, rng),
            wo: Linear::new(format!("{name}.wo"), d, d, rng),
            h: cfg.h,
            d_k: cfg.d_k(),
            head_caches: Vec::new(),
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.h
    }

    /// Borrow of the four projection layers `(W_Q, W_K, W_V, W_G)` — used
    /// by the quantized model to import trained weights.
    pub fn projections(&self) -> (&Linear, &Linear, &Linear, &Linear) {
        (&self.wq, &self.wk, &self.wv, &self.wo)
    }

    /// Forward pass. `xq: [s_q, d_model]`, `xk`/`xv`: `[s_v, d_model]`
    /// (always equal tensors in the Transformer, see Fig. 1); optional
    /// mask is `[s_q, s_v]`.
    ///
    /// # Panics
    ///
    /// Panics if widths differ from `d_model`.
    pub fn forward(
        &mut self,
        xq: &Mat<f32>,
        xk: &Mat<f32>,
        xv: &Mat<f32>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let q = self.wq.forward(xq);
        let k = self.wk.forward(xk);
        let v = self.wv.forward(xv);
        let scale = 1.0 / (self.d_k as f32).sqrt();
        self.head_caches.clear();
        let mut heads = Vec::with_capacity(self.h);
        for i in 0..self.h {
            let c0 = i * self.d_k;
            let qi = q.submatrix(0, c0, q.rows(), self.d_k).expect("head panel");
            let ki = k.submatrix(0, c0, k.rows(), self.d_k).expect("head panel");
            let vi = v.submatrix(0, c0, v.rows(), self.d_k).expect("head panel");
            let (out, cache) = attention_forward(&qi, &ki, &vi, mask, scale);
            heads.push(out);
            self.head_caches.push(cache);
        }
        let concat = Mat::hconcat(&heads).expect("heads share row count");
        self.wo.forward(&concat)
    }

    /// Inference-only forward (no gradient caches touched). Runs the
    /// [`graph::mha_graph`] dataflow truncated at the pre-residual
    /// attention output, interpreted by [`crate::exec::FloatExec`].
    pub fn forward_inference(
        &self,
        xq: &Mat<f32>,
        xk: &Mat<f32>,
        xv: &Mat<f32>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let g = graph::mha_graph(&self.graph_config()).truncated("attn_out");
        let mut exec = crate::exec::FloatExec::mha(self);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", xq.clone()),
                ("x_k", xk.clone()),
                ("x_v", xv.clone()),
            ],
            mask,
        );
        env.take("attn_out")
    }

    /// The graph-shape parameters of this block (`d_ff` is not an MHA
    /// concern and is left zero).
    pub fn graph_config(&self) -> graph::GraphConfig {
        graph::GraphConfig {
            d_model: self.wq.d_in(),
            d_ff: 0,
            h: self.h,
        }
    }

    /// Backward pass: returns `(dxq, dxk, dxv)`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Mat<f32>) -> (Mat<f32>, Mat<f32>, Mat<f32>) {
        assert!(
            !self.head_caches.is_empty(),
            "mha backward called without forward"
        );
        let dconcat = self.wo.backward(dy);
        let mut dqs = Vec::with_capacity(self.h);
        let mut dks = Vec::with_capacity(self.h);
        let mut dvs = Vec::with_capacity(self.h);
        for (i, cache) in self.head_caches.drain(..).enumerate() {
            let c0 = i * self.d_k;
            let dhead = dconcat
                .submatrix(0, c0, dconcat.rows(), self.d_k)
                .expect("head panel");
            let (dq, dk, dv) = attention_backward(&cache, &dhead);
            dqs.push(dq);
            dks.push(dk);
            dvs.push(dv);
        }
        let dq = Mat::hconcat(&dqs).expect("heads share row count");
        let dk = Mat::hconcat(&dks).expect("heads share row count");
        let dv = Mat::hconcat(&dvs).expect("heads share row count");
        (
            self.wq.backward(&dq),
            self.wk.backward(&dk),
            self.wv.backward(&dv),
        )
    }
}

impl HasParams for MultiHeadAttention {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }
}

/// The MHA **ResBlock**: `LayerNorm(x_q + MHA(x_q, x_k, x_v))` — one of
/// the two layer types the accelerator implements (Algorithm 1, lines
/// 1–13).
#[derive(Debug, Clone)]
pub struct MhaResBlock {
    /// The wrapped attention block.
    mha: MultiHeadAttention,
    ln: LayerNorm,
}

impl MhaResBlock {
    /// Creates a ResBlock for the given configuration.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        Self::with_name("mha_res", cfg, rng)
    }

    /// Creates a named ResBlock (names scope optimizer state).
    pub fn with_name(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        Self {
            mha: MultiHeadAttention::new(name, cfg, rng),
            ln: LayerNorm::new(format!("{name}.ln"), cfg.d_model),
        }
    }

    /// Borrow of the inner attention block.
    pub fn mha(&self) -> &MultiHeadAttention {
        &self.mha
    }

    /// Borrow of the inner layer norm.
    pub fn layernorm(&self) -> &LayerNorm {
        &self.ln
    }

    /// Forward: `LayerNorm(x_q + MHA(x_q, x_k, x_v, mask))`.
    pub fn forward(
        &mut self,
        xq: &Mat<f32>,
        xk: &Mat<f32>,
        xv: &Mat<f32>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let sub = self.mha.forward(xq, xk, xv, mask);
        let res = ops::add(xq, &sub).expect("residual shape invariant");
        self.ln.forward(&res)
    }

    /// Inference-only forward (no gradient caches touched). Runs the
    /// full [`graph::mha_graph`] dataflow — projections, heads, concat,
    /// output projection, residual and LayerNorm — through
    /// [`crate::exec::FloatExec`].
    pub fn forward_inference(
        &self,
        xq: &Mat<f32>,
        xk: &Mat<f32>,
        xv: &Mat<f32>,
        mask: Option<&Mat<bool>>,
    ) -> Mat<f32> {
        let g = graph::fuse_if(
            graph::mha_graph(&self.mha.graph_config()),
            tensor::envcfg::fuse_enabled(),
        );
        let mut exec = crate::exec::FloatExec::mha_res(self);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", xq.clone()),
                ("x_k", xk.clone()),
                ("x_v", xv.clone()),
            ],
            mask,
        );
        env.take("y")
    }

    /// Backward: returns `(dxq, dxk, dxv)` with the residual path folded
    /// into `dxq`.
    pub fn backward(&mut self, dy: &Mat<f32>) -> (Mat<f32>, Mat<f32>, Mat<f32>) {
        let dres = self.ln.backward(dy);
        let (dxq_mha, dxk, dxv) = self.mha.backward(&dres);
        let dxq = ops::add(&dres, &dxq_mha).expect("residual shape invariant");
        (dxq, dxk, dxv)
    }
}

impl HasParams for MhaResBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.mha.visit_params(f);
        self.ln.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny() -> ModelConfig {
        ModelConfig::tiny_for_tests()
    }

    #[test]
    fn forward_shapes() {
        let cfg = tiny();
        let mut rng = StdRng::seed_from_u64(1);
        let mut mha = MultiHeadAttention::new("t", &cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let y = mha.forward(&x, &x, &x, None);
        assert_eq!(y.shape(), (6, cfg.d_model));
    }

    #[test]
    fn cross_attention_shapes() {
        let cfg = tiny();
        let mut rng = StdRng::seed_from_u64(2);
        let mut mha = MultiHeadAttention::new("t", &cfg, &mut rng);
        let xq = tensor::init::normal(&mut rng, 3, cfg.d_model, 1.0);
        let xkv = tensor::init::normal(&mut rng, 7, cfg.d_model, 1.0);
        let y = mha.forward(&xq, &xkv, &xkv, None);
        assert_eq!(y.shape(), (3, cfg.d_model));
    }

    #[test]
    fn param_count_matches_four_projections() {
        let cfg = tiny();
        let mut rng = StdRng::seed_from_u64(3);
        let mut mha = MultiHeadAttention::new("t", &cfg, &mut rng);
        let d = cfg.d_model;
        assert_eq!(mha.param_count(), 4 * (d * d + d));
    }

    #[test]
    fn resblock_normalizes_output_rows() {
        let cfg = tiny();
        let mut rng = StdRng::seed_from_u64(4);
        let mut blk = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
        let y = blk.forward(&x, &x, &x, None);
        for r in 0..5 {
            let n = cfg.d_model as f32;
            let mean: f32 = y.row(r).iter().sum::<f32>() / n;
            assert!(mean.abs() < 1e-4, "row {r} mean {mean}");
        }
    }

    #[test]
    fn mha_gradients_match_finite_differences() {
        let cfg = ModelConfig {
            name: "micro".into(),
            d_model: 8,
            d_ff: 16,
            h: 2,
            n_layers: 1,
            vocab: 8,
            max_len: 4,
        };
        let mut rng = StdRng::seed_from_u64(5);
        let mut blk = MhaResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 3, 8, 1.0);
        let dy = tensor::init::normal(&mut rng, 3, 8, 1.0);

        let _ = blk.forward(&x, &x, &x, None);
        let (dxq, dxk, dxv) = blk.backward(&dy);
        // self-attention: total dx = dxq + dxk + dxv
        let dx = ops::add(&ops::add(&dxq, &dxk).unwrap(), &dxv).unwrap();

        let mut blk2 = blk.clone();
        let loss = |b: &mut MhaResBlock, x: &Mat<f32>| -> f32 {
            b.forward(x, x, x, None)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let h = 1e-3f32;
        for r in 0..3 {
            for c in 0..8 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let fd = (loss(&mut blk2, &xp) - loss(&mut blk2, &xm)) / (2.0 * h);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-2,
                    "dx({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let cfg = tiny();
        let mut rng = StdRng::seed_from_u64(6);
        let mut mha = MultiHeadAttention::new("t", &cfg, &mut rng);
        let _ = mha.backward(&Mat::zeros(1, cfg.d_model));
    }
}
