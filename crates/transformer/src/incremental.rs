//! KV-cached incremental decoding.
//!
//! [`crate::model::Seq2SeqTransformer::greedy_decode`] recomputes the
//! whole target prefix every step — O(L²) layer work per sentence. This
//! module keeps the projected self-attention keys/values of every
//! decoder layer (and the cross-attention K/V, which never change) in a
//! session cache, so each step runs the decoder on exactly one new row.
//! Results are equivalent to full recomputation (causal masking makes
//! position `t` independent of positions `> t`); tests assert agreement.

use graph::{Executor, Graph, GraphConfig};
use tensor::Mat;

use crate::exec::{RowExec, RowVal};
use crate::mha::MhaResBlock;
use crate::model::Seq2SeqTransformer;

/// Per-layer cache: projected self-attention K/V so far, and the fixed
/// cross-attention K/V from the encoder memory.
#[derive(Debug, Clone)]
struct LayerCache {
    self_k: Mat<f32>,
    self_v: Mat<f32>,
    cross_k: Mat<f32>,
    cross_v: Mat<f32>,
}

/// A decoding session over one source sentence.
#[derive(Debug, Clone)]
pub struct IncrementalSession {
    layers: Vec<LayerCache>,
    pos: usize,
}

/// The cached-KV graph for this model's decoder blocks, built once per
/// step and shared by the self- and cross-attention ResBlocks (same
/// shape parameters).
fn cached_graph(model: &Seq2SeqTransformer) -> Graph {
    graph::mha_cached_graph(&GraphConfig {
        d_model: model.config().d_model,
        d_ff: 0,
        h: model.config().h,
    })
}

/// Applies a full MHA ResBlock to a stack of rows, one per session, by
/// running the cached-KV graph through [`RowExec`]: the `W_Q` and `W_O`
/// projections run once over all rows; the per-session attention
/// (different cache lengths) fans out across threads. The GEMM kernels
/// never reorder a row's accumulation, so row `r` is bit-identical to a
/// single-row run on row `r` alone.
fn resblock_rows(
    g: &Graph,
    block: &MhaResBlock,
    x: &Mat<f32>,
    kvs: &[(&Mat<f32>, &Mat<f32>)],
) -> Mat<f32> {
    debug_assert_eq!(x.rows(), kvs.len());
    let mut exec = RowExec::new(block);
    let mut env = exec.run(
        g,
        vec![
            ("x", RowVal::Rows(x.clone())),
            ("keys", RowVal::Caches(kvs.iter().map(|kv| kv.0).collect())),
            ("vals", RowVal::Caches(kvs.iter().map(|kv| kv.1).collect())),
        ],
        None,
    );
    env.take("y").into_rows()
}

impl IncrementalSession {
    /// Encodes `src` and prepares per-layer caches.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn new(model: &Seq2SeqTransformer, src: &[usize]) -> Self {
        assert!(!src.is_empty(), "source must be non-empty");
        let src_x = model.src_embedding().forward_inference(src);
        let memory = model.encoder().forward_inference(&src_x, None);
        let d_model = model.config().d_model;
        let max_len = model.config().max_len;
        let layers = model
            .decoder()
            .layers()
            .iter()
            .map(|layer| {
                let (_, cross, _) = layer.blocks();
                let (_, wk, wv, _) = cross.mha().projections();
                // Reserve the whole decode horizon up front so the
                // per-token push_row never reallocates mid-sequence.
                let mut self_k = Mat::zeros(0, d_model);
                self_k.reserve_rows(max_len);
                let mut self_v = Mat::zeros(0, d_model);
                self_v.reserve_rows(max_len);
                LayerCache {
                    self_k,
                    self_v,
                    cross_k: wk.forward_inference(&memory),
                    cross_v: wv.forward_inference(&memory),
                }
            })
            .collect();
        Self { layers, pos: 0 }
    }

    /// Number of target tokens consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Feeds one target token (at the next position) and returns the
    /// next-token vocabulary logits.
    ///
    /// # Panics
    ///
    /// Panics if the token is out of vocabulary.
    pub fn step(&mut self, model: &Seq2SeqTransformer, token: usize) -> Vec<f32> {
        let g = cached_graph(model);
        let emb = model.tgt_embedding().embed_at(token, self.pos);
        let mut x = Mat::from_vec(1, emb.len(), emb).expect("row");
        for (layer, cache) in model.decoder().layers().iter().zip(&mut self.layers) {
            let (self_blk, cross_blk, ffn_blk) = layer.blocks();
            // Append this position's projected self-attention K/V.
            let (_, wk, wv, _) = self_blk.mha().projections();
            let k_new = wk.forward_inference(&x);
            let v_new = wv.forward_inference(&x);
            cache.self_k.push_row(k_new.row(0));
            cache.self_v.push_row(v_new.row(0));
            // Causal self-attention over the cache (past + current only).
            let a = resblock_rows(&g, self_blk, &x, &[(&cache.self_k, &cache.self_v)]);
            // Cross-attention over the fixed encoder K/V.
            let b = resblock_rows(&g, cross_blk, &a, &[(&cache.cross_k, &cache.cross_v)]);
            // Position-wise FFN on the single row.
            x = ffn_blk.forward_inference(&b);
        }
        self.pos += 1;
        // Route through forward_inference so the output projection's
        // prepacked weights are reused across steps.
        let logits = model.output_projection().forward_inference(&x);
        logits.row(0).to_vec()
    }
}

/// Advances several sessions by one token each, batching the GEMMs: the
/// active rows are stacked into one `b × d_model` matrix, and each
/// layer's projections, FFN sublayers and the output projection run once
/// over all rows. Row `r`'s logits are bit-identical to
/// [`IncrementalSession::step`] on session `r` alone (the GEMM kernels
/// never reorder a row's accumulation), for any batch composition.
/// Sessions may sit at different positions.
///
/// # Panics
///
/// Panics if `sessions` is empty or its length differs from `tokens`'.
pub fn step_batch(
    model: &Seq2SeqTransformer,
    sessions: &mut [&mut IncrementalSession],
    tokens: &[usize],
) -> Vec<Vec<f32>> {
    assert_eq!(sessions.len(), tokens.len(), "one token per session");
    assert!(!sessions.is_empty(), "empty step batch");
    let g = cached_graph(model);
    let b = sessions.len();
    let d_model = model.config().d_model;
    let mut x = Mat::zeros(b, d_model);
    for (r, (session, &token)) in sessions.iter().zip(tokens).enumerate() {
        x.row_mut(r)
            .copy_from_slice(&model.tgt_embedding().embed_at(token, session.pos));
    }
    for (l, layer) in model.decoder().layers().iter().enumerate() {
        let (self_blk, cross_blk, ffn_blk) = layer.blocks();
        let (_, wk, wv, _) = self_blk.mha().projections();
        let k_new = wk.forward_inference(&x);
        let v_new = wv.forward_inference(&x);
        for (r, session) in sessions.iter_mut().enumerate() {
            session.layers[l].self_k.push_row(k_new.row(r));
            session.layers[l].self_v.push_row(v_new.row(r));
        }
        let self_kvs: Vec<(&Mat<f32>, &Mat<f32>)> = sessions
            .iter()
            .map(|s| (&s.layers[l].self_k, &s.layers[l].self_v))
            .collect();
        let a = resblock_rows(&g, self_blk, &x, &self_kvs);
        let cross_kvs: Vec<(&Mat<f32>, &Mat<f32>)> = sessions
            .iter()
            .map(|s| (&s.layers[l].cross_k, &s.layers[l].cross_v))
            .collect();
        let bm = resblock_rows(&g, cross_blk, &a, &cross_kvs);
        x = ffn_blk.forward_inference(&bm);
    }
    for session in sessions.iter_mut() {
        session.pos += 1;
    }
    let logits = model.output_projection().forward_inference(&x);
    (0..b).map(|r| logits.row(r).to_vec()).collect()
}

/// Greedy decoding through the KV cache — output-equivalent to
/// [`Seq2SeqTransformer::greedy_decode`] but O(L) layer passes instead
/// of O(L²).
pub fn greedy_decode_incremental(
    model: &Seq2SeqTransformer,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
) -> Vec<usize> {
    let mut session = IncrementalSession::new(model, src);
    let mut out = Vec::new();
    let mut token = bos;
    for _ in 0..max_len {
        let logits = session.step(model, token);
        let next = tensor::ops::argmax(&logits);
        if next == eos {
            break;
        }
        out.push(next);
        token = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::tasks::{BOS, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Seq2SeqTransformer {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(seed);
        Seq2SeqTransformer::new(&cfg, &mut rng)
    }

    #[test]
    fn incremental_logits_match_full_recompute() {
        let mut m = model(1);
        let src = [3usize, 7, 4, 9];
        let prefix = [1usize, 5, 8, 6];
        // full recompute: teacher-forced logits of the last position
        let memory_logits = m.forward_train(&src, &prefix);
        let want = memory_logits.row(prefix.len() - 1).to_vec();
        // incremental
        let mut session = IncrementalSession::new(&m, &src);
        let mut got = Vec::new();
        for &t in &prefix {
            got = session.step(&m, t);
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn incremental_greedy_equals_full_greedy() {
        for seed in [2u64, 3, 4] {
            let mut m = model(seed);
            let src = [4usize, 5, 6, 7, 8];
            let full = m.greedy_decode(&src, BOS, EOS, 8);
            let inc = greedy_decode_incremental(&m, &src, BOS, EOS, 8);
            assert_eq!(full, inc, "seed {seed}");
        }
    }

    #[test]
    fn batched_step_is_bit_identical_to_single_steps() {
        let m = model(8);
        let srcs: [&[usize]; 3] = [&[3, 7, 4], &[5, 6], &[9, 2, 4, 6]];
        let mut singles: Vec<IncrementalSession> = srcs
            .iter()
            .map(|s| IncrementalSession::new(&m, s))
            .collect();
        let mut batched: Vec<IncrementalSession> = srcs
            .iter()
            .map(|s| IncrementalSession::new(&m, s))
            .collect();
        // Desynchronize: advance the first session one extra step.
        let a = singles[0].step(&m, BOS);
        let got = step_batch(&m, &mut [&mut batched[0]], &[BOS]);
        assert_eq!(a, got[0], "single-session batch must match step()");
        for tokens in [[1usize, 5, 8], [2, 6, 4]] {
            let want: Vec<Vec<f32>> = singles
                .iter_mut()
                .zip(&tokens)
                .map(|(s, &t)| s.step(&m, t))
                .collect();
            let mut refs: Vec<&mut IncrementalSession> = batched.iter_mut().collect();
            let got = step_batch(&m, &mut refs, &tokens);
            assert_eq!(want, got, "batched logits must be bit-identical");
        }
    }

    #[test]
    #[should_panic(expected = "one token per session")]
    fn batched_step_rejects_length_mismatch() {
        let m = model(9);
        let mut s = IncrementalSession::new(&m, &[3, 4]);
        let _ = step_batch(&m, &mut [&mut s], &[BOS, BOS]);
    }

    #[test]
    fn session_tracks_position() {
        let m = model(5);
        let mut s = IncrementalSession::new(&m, &[3, 4]);
        assert_eq!(s.pos(), 0);
        let _ = s.step(&m, BOS);
        let _ = s.step(&m, 5);
        assert_eq!(s.pos(), 2);
    }

    #[test]
    fn cross_kv_is_precomputed_once() {
        let m = model(6);
        let s = IncrementalSession::new(&m, &[3, 4, 5]);
        for cache in &s.layers {
            assert_eq!(cache.cross_k.rows(), 3);
            assert_eq!(cache.self_k.rows(), 0);
        }
    }

    #[test]
    fn kv_caches_reserve_decode_horizon() {
        let m = model(10);
        let max_len = m.config().max_len;
        let s = IncrementalSession::new(&m, &[3, 4, 5]);
        for cache in &s.layers {
            assert!(cache.self_k.row_capacity() >= max_len);
            assert!(cache.self_v.row_capacity() >= max_len);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_source_rejected() {
        let m = model(7);
        let _ = IncrementalSession::new(&m, &[]);
    }
}
