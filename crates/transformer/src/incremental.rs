//! KV-cached incremental decoding over a paged KV arena.
//!
//! [`crate::model::Seq2SeqTransformer::greedy_decode`] recomputes the
//! whole target prefix every step — O(L²) layer work per sentence. This
//! module keeps the projected self-attention keys/values of every
//! decoder layer (and the cross-attention K/V, which never change) in a
//! session cache, so each step runs the decoder on exactly one new row.
//! Results are equivalent to full recomputation (causal masking makes
//! position `t` independent of positions `> t`); tests assert agreement.
//!
//! Self-attention K/V live in an [`FpKvArena`] — shared fixed-size-page
//! pools ([`tensor::kvpool`]) with free-list recycling, allocated on
//! demand instead of the old `max_len`-row preallocation. The arena has
//! two storage modes ([`PagedKvMode`]):
//!
//! * **`Fp32`** — pages hold the f32 rows verbatim. Gathering a cache
//!   back out reproduces the exact bytes a flat `Mat` held, so this mode
//!   is **bit-identical** to the pre-paging decode path (gated by the
//!   same bit-identity tests).
//! * **`Int8`** — pages hold INT8 codes plus a per-row scale
//!   (symmetric max-abs quantization via [`fixedmath::QuantParams`]),
//!   cutting resident KV bytes ~4×. Dequantization is lossy; tests pin
//!   an SQNR floor and bounded decode drift rather than bit-identity.
//!
//! Sessions hold only block tables; call
//! [`IncrementalSession::release`] (or drop the arena) to recycle pages.

use fixedmath::quant::QuantParams;
use graph::{Executor, Graph, GraphConfig};
use tensor::kvpool::{page_rows_from_env, KvPool, KvSeq, DEFAULT_PAGE_ROWS};
use tensor::Mat;

use crate::exec::{RowExec, RowVal};
use crate::mha::MhaResBlock;
use crate::model::Seq2SeqTransformer;

/// How an [`FpKvArena`] stores cached K/V rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PagedKvMode {
    /// Pages hold f32 rows verbatim — bit-identical to flat caches.
    Fp32,
    /// Pages hold INT8 codes + a per-row f32 scale (~4× smaller,
    /// lossy within a pinned SQNR budget).
    Int8,
}

/// A sequence's handle inside one [`FpKvArena`] side: the data block
/// table plus (Int8 mode only) the parallel per-row scale table.
#[derive(Debug, Default)]
struct PagedKv {
    data: KvSeq,
    scale: KvSeq,
}

/// One side (K or V) of the arena: an f32 page pool for `Fp32` mode,
/// or an i8 code pool plus a 1-column f32 scale pool for `Int8` mode.
/// Pools allocate nothing until rows are pushed, so the unused mode's
/// pools cost zero bytes.
#[derive(Debug)]
struct PagedStore {
    mode: PagedKvMode,
    f: KvPool<f32>,
    q: KvPool<i8>,
    s: KvPool<f32>,
}

impl PagedStore {
    fn new(d_model: usize, page_rows: usize, mode: PagedKvMode) -> Self {
        Self {
            mode,
            f: KvPool::new(page_rows, d_model),
            q: KvPool::new(page_rows, d_model),
            s: KvPool::new(page_rows, 1),
        }
    }

    fn push(&mut self, kv: &mut PagedKv, row: &[f32]) {
        match self.mode {
            PagedKvMode::Fp32 => self.f.push_row(&mut kv.data, row),
            PagedKvMode::Int8 => {
                let max_abs = row.iter().fold(0.0f32, |m, &v| m.max(v.abs()));
                let qp = QuantParams::from_max_abs(max_abs);
                let codes: Vec<i8> = row.iter().map(|&v| qp.quantize(v)).collect();
                self.q.push_row(&mut kv.data, &codes);
                self.s.push_row(&mut kv.scale, &[qp.scale()]);
            }
        }
    }

    /// Materializes the cached rows as a dense f32 matrix: an exact
    /// gather in `Fp32` mode, `code × scale` dequantization in `Int8`.
    fn to_mat(&self, kv: &PagedKv) -> Mat<f32> {
        match self.mode {
            PagedKvMode::Fp32 => self.f.to_mat(&kv.data),
            PagedKvMode::Int8 => {
                let rows = kv.data.rows();
                let mut out = Mat::zeros(rows, self.q.cols());
                for r in 0..rows {
                    let scale = self.s.row(&kv.scale, r)[0];
                    for (o, &c) in out.row_mut(r).iter_mut().zip(self.q.row(&kv.data, r)) {
                        *o = c as f32 * scale;
                    }
                }
                out
            }
        }
    }

    fn truncate(&mut self, kv: &mut PagedKv, rows: usize) {
        match self.mode {
            PagedKvMode::Fp32 => self.f.truncate(&mut kv.data, rows),
            PagedKvMode::Int8 => {
                self.q.truncate(&mut kv.data, rows);
                self.s.truncate(&mut kv.scale, rows);
            }
        }
    }

    /// Forks a handle: full pages are shared (refcount bump), the
    /// partial tail page is copied; divergent pushes copy-on-write.
    fn fork(&mut self, kv: &PagedKv) -> PagedKv {
        match self.mode {
            PagedKvMode::Fp32 => PagedKv {
                data: self.f.fork(&kv.data),
                scale: KvSeq::new(),
            },
            PagedKvMode::Int8 => PagedKv {
                data: self.q.fork(&kv.data),
                scale: self.s.fork(&kv.scale),
            },
        }
    }

    fn release(&mut self, kv: &mut PagedKv) {
        self.truncate(kv, 0);
    }

    fn bytes_in_use(&self) -> usize {
        self.f.bytes_in_use() + self.q.bytes_in_use() + self.s.bytes_in_use()
    }
}

/// The FP32 model's paged KV arena: shared page pools for every
/// session's and layer's self-attention K/V. Create one per engine (or
/// rely on [`greedy_decode_incremental`]'s private arena) and pass it
/// to every session call. Page height defaults to
/// [`DEFAULT_PAGE_ROWS`], overridable via `ACCEL_KV_PAGE`.
#[derive(Debug)]
pub struct FpKvArena {
    k: PagedStore,
    v: PagedStore,
}

impl FpKvArena {
    /// A bit-identical `Fp32`-mode arena for caches `d_model` wide.
    pub fn new(d_model: usize) -> Self {
        Self::with_mode(d_model, PagedKvMode::Fp32)
    }

    /// An arena with an explicit storage mode.
    pub fn with_mode(d_model: usize, mode: PagedKvMode) -> Self {
        Self::with_page_rows(d_model, mode, page_rows_from_env(DEFAULT_PAGE_ROWS))
    }

    /// An arena with an explicit page height (tests pin this so their
    /// page-boundary assertions hold under any `ACCEL_KV_PAGE`).
    pub fn with_page_rows(d_model: usize, mode: PagedKvMode, page_rows: usize) -> Self {
        Self {
            k: PagedStore::new(d_model, page_rows, mode),
            v: PagedStore::new(d_model, page_rows, mode),
        }
    }

    /// An `Fp32`-mode arena sized for `model`'s decoder caches.
    pub fn for_model(model: &Seq2SeqTransformer) -> Self {
        Self::new(model.config().d_model)
    }

    /// The storage mode.
    pub fn mode(&self) -> PagedKvMode {
        self.k.mode
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.k.f.page_rows()
    }

    /// Bytes resident in pages held by live sessions (whole pages, K
    /// and V, codes and scales).
    pub fn kv_bytes_in_use(&self) -> usize {
        self.k.bytes_in_use() + self.v.bytes_in_use()
    }
}

/// Per-layer cache: paged projected self-attention K/V so far, and the
/// fixed cross-attention K/V from the encoder memory (exact-size flat
/// matrices — their length is the source length, known up front).
#[derive(Debug)]
struct LayerCache {
    self_k: PagedKv,
    self_v: PagedKv,
    cross_k: Mat<f32>,
    cross_v: Mat<f32>,
}

/// A decoding session over one source sentence. Self-attention K/V are
/// block tables into the [`FpKvArena`] the session was started with;
/// every session method must be given that same arena.
#[derive(Debug)]
pub struct IncrementalSession {
    layers: Vec<LayerCache>,
    pos: usize,
}

/// The cached-KV graph for this model's decoder blocks, built once per
/// step and shared by the self- and cross-attention ResBlocks (same
/// shape parameters).
fn cached_graph(model: &Seq2SeqTransformer) -> Graph {
    graph::mha_cached_graph(&GraphConfig {
        d_model: model.config().d_model,
        d_ff: 0,
        h: model.config().h,
    })
}

/// Applies a full MHA ResBlock to a stack of rows, one per session, by
/// running the cached-KV graph through [`RowExec`]: the `W_Q` and `W_O`
/// projections run once over all rows; the per-session attention
/// (different cache lengths) fans out across threads. The GEMM kernels
/// never reorder a row's accumulation, so row `r` is bit-identical to a
/// single-row run on row `r` alone.
fn resblock_rows(
    g: &Graph,
    block: &MhaResBlock,
    x: &Mat<f32>,
    kvs: &[(&Mat<f32>, &Mat<f32>)],
) -> Mat<f32> {
    debug_assert_eq!(x.rows(), kvs.len());
    let mut exec = RowExec::new(block);
    let mut env = exec.run(
        g,
        vec![
            ("x", RowVal::Rows(x.clone())),
            ("keys", RowVal::Caches(kvs.iter().map(|kv| kv.0).collect())),
            ("vals", RowVal::Caches(kvs.iter().map(|kv| kv.1).collect())),
        ],
        None,
    );
    env.take("y").into_rows()
}

impl IncrementalSession {
    /// Encodes `src` and prepares per-layer caches in `arena`. A fresh
    /// session holds no KV pages; they are allocated on demand as
    /// tokens are consumed.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn new(model: &Seq2SeqTransformer, arena: &mut FpKvArena, src: &[usize]) -> Self {
        assert!(!src.is_empty(), "source must be non-empty");
        assert_eq!(
            arena.k.f.cols(),
            model.config().d_model,
            "arena width does not match the model's d_model"
        );
        let src_x = model.src_embedding().forward_inference(src);
        let memory = model.encoder().forward_inference(&src_x, None);
        let layers = model
            .decoder()
            .layers()
            .iter()
            .map(|layer| {
                let (_, cross, _) = layer.blocks();
                let (_, wk, wv, _) = cross.mha().projections();
                LayerCache {
                    self_k: PagedKv::default(),
                    self_v: PagedKv::default(),
                    cross_k: wk.forward_inference(&memory),
                    cross_v: wv.forward_inference(&memory),
                }
            })
            .collect();
        Self { layers, pos: 0 }
    }

    /// Number of target tokens consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Returns every KV page this session holds to the arena's free
    /// list (copy-free). The session is back to a fresh state.
    pub fn release(&mut self, arena: &mut FpKvArena) {
        self.pos = 0;
        for cache in &mut self.layers {
            arena.k.release(&mut cache.self_k);
            arena.v.release(&mut cache.self_v);
        }
    }

    /// Rewinds the session by `rows` steps, dropping the newest cached
    /// K/V rows from every layer (pages recycle only when their last
    /// reference is dropped — rolling back into a page shared with a
    /// fork never mutates it).
    ///
    /// # Panics
    ///
    /// Panics if the session has consumed fewer than `rows` tokens.
    pub fn rollback_rows(&mut self, arena: &mut FpKvArena, rows: usize) {
        assert!(
            self.pos >= rows,
            "rollback of {rows} rows on a session at pos {}",
            self.pos
        );
        self.pos -= rows;
        for cache in &mut self.layers {
            arena.k.truncate(&mut cache.self_k, self.pos);
            arena.v.truncate(&mut cache.self_v, self.pos);
        }
    }

    /// Forks this session: the child sees the same consumed prefix at
    /// the same position, sharing every full KV page with the parent
    /// (only partial tail pages are copied) and cloning the fixed
    /// cross-attention K/V. Parent and child advance independently;
    /// divergent pushes copy-on-write.
    pub fn fork(&self, arena: &mut FpKvArena) -> IncrementalSession {
        IncrementalSession {
            layers: self
                .layers
                .iter()
                .map(|c| LayerCache {
                    self_k: arena.k.fork(&c.self_k),
                    self_v: arena.v.fork(&c.self_v),
                    cross_k: c.cross_k.clone(),
                    cross_v: c.cross_v.clone(),
                })
                .collect(),
            pos: self.pos,
        }
    }

    /// Feeds one target token (at the next position) and returns the
    /// next-token vocabulary logits.
    ///
    /// # Panics
    ///
    /// Panics if the token is out of vocabulary.
    pub fn step(
        &mut self,
        model: &Seq2SeqTransformer,
        arena: &mut FpKvArena,
        token: usize,
    ) -> Vec<f32> {
        let g = cached_graph(model);
        let emb = model.tgt_embedding().embed_at(token, self.pos);
        let mut x = Mat::from_vec(1, emb.len(), emb).expect("row");
        for (layer, cache) in model.decoder().layers().iter().zip(&mut self.layers) {
            let (self_blk, cross_blk, ffn_blk) = layer.blocks();
            // Append this position's projected self-attention K/V.
            let (_, wk, wv, _) = self_blk.mha().projections();
            let k_new = wk.forward_inference(&x);
            let v_new = wv.forward_inference(&x);
            arena.k.push(&mut cache.self_k, k_new.row(0));
            arena.v.push(&mut cache.self_v, v_new.row(0));
            // Causal self-attention over the cache (past + current only).
            let sk = arena.k.to_mat(&cache.self_k);
            let sv = arena.v.to_mat(&cache.self_v);
            let a = resblock_rows(&g, self_blk, &x, &[(&sk, &sv)]);
            // Cross-attention over the fixed encoder K/V.
            let b = resblock_rows(&g, cross_blk, &a, &[(&cache.cross_k, &cache.cross_v)]);
            // Position-wise FFN on the single row.
            x = ffn_blk.forward_inference(&b);
        }
        self.pos += 1;
        // Route through forward_inference so the output projection's
        // prepacked weights are reused across steps.
        let logits = model.output_projection().forward_inference(&x);
        logits.row(0).to_vec()
    }
}

/// Advances several sessions by one token each, batching the GEMMs: the
/// active rows are stacked into one `b × d_model` matrix, and each
/// layer's projections, FFN sublayers and the output projection run once
/// over all rows. Row `r`'s logits are bit-identical to
/// [`IncrementalSession::step`] on session `r` alone (the GEMM kernels
/// never reorder a row's accumulation), for any batch composition.
/// Sessions may sit at different positions.
///
/// # Panics
///
/// Panics if `sessions` is empty or its length differs from `tokens`'.
pub fn step_batch(
    model: &Seq2SeqTransformer,
    arena: &mut FpKvArena,
    sessions: &mut [&mut IncrementalSession],
    tokens: &[usize],
) -> Vec<Vec<f32>> {
    assert_eq!(sessions.len(), tokens.len(), "one token per session");
    assert!(!sessions.is_empty(), "empty step batch");
    let g = cached_graph(model);
    let b = sessions.len();
    let d_model = model.config().d_model;
    let mut x = Mat::zeros(b, d_model);
    for (r, (session, &token)) in sessions.iter().zip(tokens).enumerate() {
        x.row_mut(r)
            .copy_from_slice(&model.tgt_embedding().embed_at(token, session.pos));
    }
    for (l, layer) in model.decoder().layers().iter().enumerate() {
        let (self_blk, cross_blk, ffn_blk) = layer.blocks();
        let (_, wk, wv, _) = self_blk.mha().projections();
        let k_new = wk.forward_inference(&x);
        let v_new = wv.forward_inference(&x);
        for (r, session) in sessions.iter_mut().enumerate() {
            arena.k.push(&mut session.layers[l].self_k, k_new.row(r));
            arena.v.push(&mut session.layers[l].self_v, v_new.row(r));
        }
        let self_mats: Vec<(Mat<f32>, Mat<f32>)> = sessions
            .iter()
            .map(|s| {
                (
                    arena.k.to_mat(&s.layers[l].self_k),
                    arena.v.to_mat(&s.layers[l].self_v),
                )
            })
            .collect();
        let self_kvs: Vec<(&Mat<f32>, &Mat<f32>)> =
            self_mats.iter().map(|kv| (&kv.0, &kv.1)).collect();
        let a = resblock_rows(&g, self_blk, &x, &self_kvs);
        let cross_kvs: Vec<(&Mat<f32>, &Mat<f32>)> = sessions
            .iter()
            .map(|s| (&s.layers[l].cross_k, &s.layers[l].cross_v))
            .collect();
        let bm = resblock_rows(&g, cross_blk, &a, &cross_kvs);
        x = ffn_blk.forward_inference(&bm);
    }
    for session in sessions.iter_mut() {
        session.pos += 1;
    }
    let logits = model.output_projection().forward_inference(&x);
    (0..b).map(|r| logits.row(r).to_vec()).collect()
}

/// Greedy decoding through the KV cache — output-equivalent to
/// [`Seq2SeqTransformer::greedy_decode`] but O(L) layer passes instead
/// of O(L²). Uses a private `Fp32`-mode (bit-identical) arena.
pub fn greedy_decode_incremental(
    model: &Seq2SeqTransformer,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
) -> Vec<usize> {
    greedy_decode_incremental_paged(model, src, bos, eos, max_len, PagedKvMode::Fp32)
}

/// Greedy decoding through a paged KV cache in an explicit storage
/// mode — the entry point the INT8-page accuracy harness drives.
pub fn greedy_decode_incremental_paged(
    model: &Seq2SeqTransformer,
    src: &[usize],
    bos: usize,
    eos: usize,
    max_len: usize,
    mode: PagedKvMode,
) -> Vec<usize> {
    let mut arena = FpKvArena::with_mode(model.config().d_model, mode);
    let mut session = IncrementalSession::new(model, &mut arena, src);
    let mut out = Vec::new();
    let mut token = bos;
    for _ in 0..max_len {
        let logits = session.step(model, &mut arena, token);
        let next = tensor::ops::argmax(&logits);
        if next == eos {
            break;
        }
        out.push(next);
        token = next;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::tasks::{BOS, EOS};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model(seed: u64) -> Seq2SeqTransformer {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(seed);
        Seq2SeqTransformer::new(&cfg, &mut rng)
    }

    #[test]
    fn incremental_logits_match_full_recompute() {
        let mut m = model(1);
        let src = [3usize, 7, 4, 9];
        let prefix = [1usize, 5, 8, 6];
        // full recompute: teacher-forced logits of the last position
        let memory_logits = m.forward_train(&src, &prefix);
        let want = memory_logits.row(prefix.len() - 1).to_vec();
        // incremental
        let mut arena = FpKvArena::for_model(&m);
        let mut session = IncrementalSession::new(&m, &mut arena, &src);
        let mut got = Vec::new();
        for &t in &prefix {
            got = session.step(&m, &mut arena, t);
        }
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(&want) {
            assert!((g - w).abs() < 1e-4, "{g} vs {w}");
        }
    }

    #[test]
    fn incremental_greedy_equals_full_greedy() {
        for seed in [2u64, 3, 4] {
            let mut m = model(seed);
            let src = [4usize, 5, 6, 7, 8];
            let full = m.greedy_decode(&src, BOS, EOS, 8);
            let inc = greedy_decode_incremental(&m, &src, BOS, EOS, 8);
            assert_eq!(full, inc, "seed {seed}");
        }
    }

    #[test]
    fn fp32_pages_are_bit_identical_to_flat_caches() {
        // The paged Fp32 store must reproduce the exact bytes a flat
        // cache held: step logits across page boundaries must equal a
        // flat-cache reference computed by hand.
        let m = model(11);
        let src = [3usize, 7, 4];
        let prefix = [1usize, 5, 8, 6, 2, 9, 4, 3]; // crosses 3-row pages
        let mut arena = FpKvArena::with_page_rows(m.config().d_model, PagedKvMode::Fp32, 3);
        let mut session = IncrementalSession::new(&m, &mut arena, &src);
        // Flat reference: rebuild the caches as plain matrices.
        let mut flat_arena = FpKvArena::with_page_rows(m.config().d_model, PagedKvMode::Fp32, 64);
        let mut flat = IncrementalSession::new(&m, &mut flat_arena, &src);
        for &t in &prefix {
            let got = session.step(&m, &mut arena, t);
            let want = flat.step(&m, &mut flat_arena, t);
            let same = got
                .iter()
                .zip(&want)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same, "paged Fp32 logits must be bit-identical");
        }
    }

    #[test]
    fn int8_pages_hold_sqnr_and_shrink_kv() {
        // Int8 pages must cut resident KV bytes ~4x and reconstruct K/V
        // within a pinned SQNR floor (symmetric per-row max-abs int8
        // quantization comfortably clears 20 dB on generic rows).
        let m = model(12);
        let d_model = m.config().d_model;
        let src = [3usize, 7, 4, 9];
        let prefix = [1usize, 5, 8, 6, 2, 9];
        let mut fa = FpKvArena::with_page_rows(d_model, PagedKvMode::Fp32, 4);
        let mut qa = FpKvArena::with_page_rows(d_model, PagedKvMode::Int8, 4);
        let mut fs = IncrementalSession::new(&m, &mut fa, &src);
        let mut qs = IncrementalSession::new(&m, &mut qa, &src);
        for &t in &prefix {
            let _ = fs.step(&m, &mut fa, t);
            let _ = qs.step(&m, &mut qa, t);
        }
        // ~4x: i8 codes + 4-byte/row scale vs 4-byte/element rows.
        let ratio = fa.kv_bytes_in_use() as f64 / qa.kv_bytes_in_use() as f64;
        assert!(
            ratio > 3.5,
            "Int8 pages must shrink KV ~4x, got {ratio:.2}x"
        );
        // SQNR of the reconstructed K cache vs the exact one.
        for l in 0..fs.layers.len() {
            let exact = fa.k.to_mat(&fs.layers[l].self_k);
            let recon = qa.k.to_mat(&qs.layers[l].self_k);
            let (mut sig, mut err) = (0.0f64, 0.0f64);
            for (e, r) in exact.as_slice().iter().zip(recon.as_slice()) {
                sig += (*e as f64).powi(2);
                err += (*e as f64 - *r as f64).powi(2);
            }
            let sqnr_db = 10.0 * (sig / err.max(1e-30)).log10();
            assert!(sqnr_db > 20.0, "layer {l} K SQNR {sqnr_db:.1} dB < 20 dB");
        }
    }

    #[test]
    fn int8_mode_decodes_close_to_fp32() {
        // Int8 paged decode is lossy but must stay within a pinned drift
        // budget: on tiny random models the greedy decodes agree on a
        // clear majority of prompts (bit-identity is not expected).
        let mut agree = 0usize;
        let mut total = 0usize;
        for seed in [2u64, 3, 4, 5, 6] {
            let m = model(seed);
            let src = [4usize, 5, 6, 7, 8];
            let fp = greedy_decode_incremental_paged(&m, &src, BOS, EOS, 8, PagedKvMode::Fp32);
            let q8 = greedy_decode_incremental_paged(&m, &src, BOS, EOS, 8, PagedKvMode::Int8);
            total += 1;
            if fp == q8 {
                agree += 1;
            }
        }
        assert!(
            agree * 2 > total,
            "Int8 paged decodes diverged on {agree}/{total} prompts"
        );
    }

    #[test]
    fn batched_step_is_bit_identical_to_single_steps() {
        let m = model(8);
        let srcs: [&[usize]; 3] = [&[3, 7, 4], &[5, 6], &[9, 2, 4, 6]];
        let mut arena_s = FpKvArena::for_model(&m);
        let mut arena_b = FpKvArena::for_model(&m);
        let mut singles: Vec<IncrementalSession> = srcs
            .iter()
            .map(|s| IncrementalSession::new(&m, &mut arena_s, s))
            .collect();
        let mut batched: Vec<IncrementalSession> = srcs
            .iter()
            .map(|s| IncrementalSession::new(&m, &mut arena_b, s))
            .collect();
        // Desynchronize: advance the first session one extra step.
        let a = singles[0].step(&m, &mut arena_s, BOS);
        let got = step_batch(&m, &mut arena_b, &mut [&mut batched[0]], &[BOS]);
        assert_eq!(a, got[0], "single-session batch must match step()");
        for tokens in [[1usize, 5, 8], [2, 6, 4]] {
            let want: Vec<Vec<f32>> = singles
                .iter_mut()
                .zip(&tokens)
                .map(|(s, &t)| s.step(&m, &mut arena_s, t))
                .collect();
            let mut refs: Vec<&mut IncrementalSession> = batched.iter_mut().collect();
            let got = step_batch(&m, &mut arena_b, &mut refs, &tokens);
            assert_eq!(want, got, "batched logits must be bit-identical");
        }
    }

    #[test]
    #[should_panic(expected = "one token per session")]
    fn batched_step_rejects_length_mismatch() {
        let m = model(9);
        let mut arena = FpKvArena::for_model(&m);
        let mut s = IncrementalSession::new(&m, &mut arena, &[3, 4]);
        let _ = step_batch(&m, &mut arena, &mut [&mut s], &[BOS, BOS]);
    }

    #[test]
    fn session_tracks_position() {
        let m = model(5);
        let mut arena = FpKvArena::for_model(&m);
        let mut s = IncrementalSession::new(&m, &mut arena, &[3, 4]);
        assert_eq!(s.pos(), 0);
        let _ = s.step(&m, &mut arena, BOS);
        let _ = s.step(&m, &mut arena, 5);
        assert_eq!(s.pos(), 2);
    }

    #[test]
    fn cross_kv_is_precomputed_once() {
        let m = model(6);
        let mut arena = FpKvArena::for_model(&m);
        let s = IncrementalSession::new(&m, &mut arena, &[3, 4, 5]);
        for cache in &s.layers {
            assert_eq!(cache.cross_k.rows(), 3);
            assert_eq!(cache.self_k.data.rows(), 0);
        }
    }

    #[test]
    fn kv_pages_allocate_on_demand_and_release() {
        // The old path reserved max_len rows per layer up front; a fresh
        // session must now hold zero pages, grow on demand, and return
        // everything to the free list on release.
        let m = model(10);
        let d_model = m.config().d_model;
        let mut arena = FpKvArena::with_page_rows(d_model, PagedKvMode::Fp32, 4);
        let mut s = IncrementalSession::new(&m, &mut arena, &[3, 4, 5]);
        assert_eq!(arena.kv_bytes_in_use(), 0);
        let _ = s.step(&m, &mut arena, BOS);
        let one_page = 4 * d_model * std::mem::size_of::<f32>();
        assert_eq!(arena.kv_bytes_in_use(), 2 * 2 * one_page); // layers × {K,V}
        s.release(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
    }

    #[test]
    fn forked_session_steps_bit_identically_in_both_modes() {
        // Fork after a prefix that leaves a partial tail page, then
        // diverge parent and child: each continuation must be
        // bit-identical to an independent cold session fed the same
        // tokens (Fp32), or byte-identical on the stored codes (Int8 —
        // the pages are forked, so the codes are literally the same).
        for mode in [PagedKvMode::Fp32, PagedKvMode::Int8] {
            let m = model(13);
            let src = [3usize, 7, 4];
            let prefix = [1usize, 5, 8, 6, 2]; // 5 rows on 4-row pages
            let d_model = m.config().d_model;
            let mut arena = FpKvArena::with_page_rows(d_model, mode, 4);
            let mut s = IncrementalSession::new(&m, &mut arena, &src);
            for &t in &prefix {
                let _ = s.step(&m, &mut arena, t);
            }
            let mut f = s.fork(&mut arena);
            assert_eq!(f.pos(), s.pos());
            let mut arena_ref = FpKvArena::with_page_rows(d_model, mode, 4);
            let mut r = IncrementalSession::new(&m, &mut arena_ref, &src);
            for &t in &prefix {
                let _ = r.step(&m, &mut arena_ref, t);
            }
            let got = f.step(&m, &mut arena, 9);
            let want = r.step(&m, &mut arena_ref, 9);
            let same = got
                .iter()
                .zip(&want)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same, "forked continuation diverged ({mode:?})");
            // The parent takes a different token; the fork's write must
            // not have leaked into its shared prefix pages.
            let mut arena_ref2 = FpKvArena::with_page_rows(d_model, mode, 4);
            let mut r2 = IncrementalSession::new(&m, &mut arena_ref2, &src);
            for &t in &prefix {
                let _ = r2.step(&m, &mut arena_ref2, t);
            }
            let got_p = s.step(&m, &mut arena, 2);
            let want_p = r2.step(&m, &mut arena_ref2, 2);
            let same_p = got_p
                .iter()
                .zip(&want_p)
                .all(|(g, w)| g.to_bits() == w.to_bits());
            assert!(same_p, "parent perturbed by fork ({mode:?})");
            // Roll the fork back across the shared boundary and replay.
            f.rollback_rows(&mut arena, 2);
            let _ = f.step(&m, &mut arena, 9);
            f.release(&mut arena);
            s.release(&mut arena);
            assert_eq!(arena.kv_bytes_in_use(), 0);
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_source_rejected() {
        let m = model(7);
        let mut arena = FpKvArena::new(32);
        let _ = IncrementalSession::new(&m, &mut arena, &[]);
    }
}
