//! Fully connected layer `y = x W + b` with cached-activation backward.

use std::sync::OnceLock;

use rand::Rng;
use tensor::prepack::{self, PackedF32};
use tensor::{gemm, ops, Mat};

use crate::opt::HasParams;

/// A linear (dense) layer with weight `W: [in, out]` and bias
/// `b: [out]`, holding its own gradients and forward cache.
///
/// Inference forwards run against a lazily built **prepacked** copy of
/// `W` (the GEMM microkernel's tile layout, built on first use and
/// cached), so repeated decode steps never re-pack the weights. The
/// cache is invalidated whenever the optimiser mutates the parameters
/// through [`HasParams::visit_params`]; results are bit-identical with
/// or without it.
#[derive(Debug)]
pub struct Linear {
    name: String,
    w: Mat<f32>,
    b: Vec<f32>,
    grad_w: Mat<f32>,
    grad_b: Vec<f32>,
    cache_x: Option<Mat<f32>>,
    packed: OnceLock<PackedF32>,
}

impl Clone for Linear {
    fn clone(&self) -> Self {
        // The packed cache is derived state; let the clone rebuild it on
        // demand instead of copying the tiles.
        Self {
            name: self.name.clone(),
            w: self.w.clone(),
            b: self.b.clone(),
            grad_w: self.grad_w.clone(),
            grad_b: self.grad_b.clone(),
            cache_x: self.cache_x.clone(),
            packed: OnceLock::new(),
        }
    }
}

impl Linear {
    /// Creates a Xavier-initialised layer mapping `d_in -> d_out`.
    pub fn new(name: impl Into<String>, d_in: usize, d_out: usize, rng: &mut impl Rng) -> Self {
        Self {
            name: name.into(),
            w: tensor::init::xavier(rng, d_in, d_out),
            b: vec![0.0; d_out],
            grad_w: Mat::zeros(d_in, d_out),
            grad_b: vec![0.0; d_out],
            cache_x: None,
            packed: OnceLock::new(),
        }
    }

    /// Creates a layer from explicit weights (for tests and for loading
    /// trained parameters into the quantized model).
    ///
    /// # Panics
    ///
    /// Panics if `b.len() != w.cols()`.
    pub fn from_parts(name: impl Into<String>, w: Mat<f32>, b: Vec<f32>) -> Self {
        assert_eq!(b.len(), w.cols(), "bias length must match output width");
        let shape = w.shape();
        Self {
            name: name.into(),
            w,
            b,
            grad_w: Mat::zeros(shape.0, shape.1),
            grad_b: vec![0.0; shape.1],
            cache_x: None,
            packed: OnceLock::new(),
        }
    }

    /// Input width.
    pub fn d_in(&self) -> usize {
        self.w.rows()
    }

    /// Output width.
    pub fn d_out(&self) -> usize {
        self.w.cols()
    }

    /// Borrow of the weight matrix.
    pub fn weight(&self) -> &Mat<f32> {
        &self.w
    }

    /// Borrow of the bias vector.
    pub fn bias(&self) -> &[f32] {
        &self.b
    }

    /// Forward pass, caching the input for [`Linear::backward`].
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.d_in()`.
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        let y = self.forward_inference(x);
        self.cache_x = Some(x.clone());
        y
    }

    /// Forward pass without caching (inference only).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.d_in()`.
    pub fn forward_inference(&self, x: &Mat<f32>) -> Mat<f32> {
        let packed = self.packed.get_or_init(|| PackedF32::from_f32(&self.w));
        let xw = prepack::matmul_prepacked(x, packed).expect("linear: input width mismatch");
        ops::add_row_bias(&xw, &self.b).expect("bias length invariant")
    }

    /// Fused `Linear → ReLU` inference: `max(0, x W + b)` with bias and
    /// activation applied in the GEMM's drain while each output row is
    /// cache-hot — no pre-activation tensor, no second pass.
    /// Bit-identical to `relu(forward_inference(x))` (same accumulators,
    /// same per-element `+ b` then `max`).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.d_in()`.
    pub fn forward_inference_relu(&self, x: &Mat<f32>) -> Mat<f32> {
        let packed = self.packed.get_or_init(|| PackedF32::from_f32(&self.w));
        prepack::matmul_prepacked_fused(x, packed, |_r, row| {
            for (v, b) in row.iter_mut().zip(&self.b) {
                *v = (*v + b).max(0.0);
            }
        })
        .expect("linear: input width mismatch")
    }

    /// Fused `Linear → residual Add` inference:
    /// `residual + (x W + b)` with bias and residual applied in the
    /// GEMM's drain — no sublayer-output tensor, no second pass.
    /// Bit-identical to `add(residual, forward_inference(x))` (per
    /// element: `+ b` first, then the residual, matching the unfused op
    /// order).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.d_in()` or `residual`'s shape differs
    /// from the output shape.
    pub fn forward_inference_add(&self, x: &Mat<f32>, residual: &Mat<f32>) -> Mat<f32> {
        assert_eq!(
            residual.shape(),
            (x.rows(), self.d_out()),
            "residual shape must match the linear output"
        );
        let packed = self.packed.get_or_init(|| PackedF32::from_f32(&self.w));
        prepack::matmul_prepacked_fused(x, packed, |r, row| {
            for ((v, b), res) in row.iter_mut().zip(&self.b).zip(residual.row(r)) {
                *v = res + (*v + b);
            }
        })
        .expect("linear: input width mismatch")
    }

    /// Backward pass: accumulates `dW`, `db` and returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`, or if `dy` has the wrong shape.
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let x = self
            .cache_x
            .take()
            .expect("linear backward called without forward");
        assert_eq!(dy.shape(), (x.rows(), self.d_out()), "dy shape mismatch");
        // dW += X^T dY
        let dw = gemm::matmul(&x.transposed(), dy).expect("shapes checked");
        self.grad_w = ops::add(&self.grad_w, &dw).expect("grad shape invariant");
        // db += column sums of dY
        for r in 0..dy.rows() {
            for (gb, v) in self.grad_b.iter_mut().zip(dy.row(r)) {
                *gb += v;
            }
        }
        // dX = dY W^T
        gemm::matmul_nt(dy, &self.w).expect("shapes checked")
    }
}

impl HasParams for Linear {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        // The visitor gets mutable access to the weights (optimiser
        // steps), so the prepacked copy may go stale — drop it and let
        // the next inference forward rebuild it.
        self.packed.take();
        let wname = format!("{}.w", self.name);
        f(&wname, self.w.as_mut_slice(), self.grad_w.as_mut_slice());
        let bname = format!("{}.b", self.name);
        f(&bname, &mut self.b, &mut self.grad_b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fd_check_linear(seed: u64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut lin = Linear::new("t", 4, 3, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, 4, 1.0);
        let dy = tensor::init::normal(&mut rng, 2, 3, 1.0);

        let _ = lin.forward(&x);
        let dx = lin.backward(&dy);

        // loss = <y, dy>; finite differences on x
        let h = 1e-3f32;
        let loss = |l: &Linear, x: &Mat<f32>| -> f32 {
            l.forward_inference(x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        for r in 0..2 {
            for c in 0..4 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let fd = (loss(&lin, &xp) - loss(&lin, &xm)) / (2.0 * h);
                assert!(
                    (fd - dx[(r, c)]).abs() < 2e-2,
                    "dx({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
        // finite differences on W
        let mut lin2 = lin.clone();
        for r in 0..4 {
            for c in 0..3 {
                let mut wp = lin.weight().clone();
                wp[(r, c)] += h;
                let mut wm = lin.weight().clone();
                wm[(r, c)] -= h;
                let lp = Linear::from_parts("t", wp, lin.bias().to_vec());
                let lm = Linear::from_parts("t", wm, lin.bias().to_vec());
                let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
                let mut analytic = 0.0;
                lin2.visit_params(&mut |n, _, g| {
                    if n.ends_with(".w") {
                        analytic = g[r * 3 + c];
                    }
                });
                assert!(
                    (fd - analytic).abs() < 2e-2,
                    "dw({r},{c}): fd {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        fd_check_linear(1);
        fd_check_linear(2);
    }

    #[test]
    fn forward_applies_bias() {
        let w = Mat::from_vec(2, 2, vec![1.0f32, 0.0, 0.0, 1.0]).unwrap();
        let mut lin = Linear::from_parts("id", w, vec![1.0, -1.0]);
        let x = Mat::from_vec(1, 2, vec![3.0f32, 4.0]).unwrap();
        let y = lin.forward(&x);
        assert_eq!(y.as_slice(), &[4.0, 3.0]);
    }

    #[test]
    fn bias_grad_sums_rows() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut lin = Linear::new("t", 3, 2, &mut rng);
        let x = tensor::init::normal(&mut rng, 4, 3, 1.0);
        let dy = Mat::filled(4, 2, 1.0f32);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        lin.visit_params(&mut |n, _, g| {
            if n.ends_with(".b") {
                assert_eq!(g, &[4.0, 4.0]);
            }
        });
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let dy = Mat::zeros(1, 2);
        let _ = lin.backward(&dy);
    }

    #[test]
    fn packed_cache_invalidated_by_param_mutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut lin = Linear::new("t", 6, 5, &mut rng);
        let x = tensor::init::normal(&mut rng, 3, 6, 1.0);
        let before = lin.forward_inference(&x); // builds the packed cache
        lin.visit_params(&mut |n, w, _| {
            if n.ends_with(".w") {
                for v in w {
                    *v += 0.25;
                }
            }
        });
        let fresh = Linear::from_parts("t", lin.weight().clone(), lin.bias().to_vec());
        let got = lin.forward_inference(&x);
        let want = fresh.forward_inference(&x);
        assert_ne!(got, before, "mutation must change the output");
        assert!(
            got.as_slice()
                .iter()
                .zip(want.as_slice())
                .all(|(g, w)| g.to_bits() == w.to_bits()),
            "stale packed weights used after visit_params"
        );
    }

    #[test]
    fn zero_grad_resets_accumulation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut lin = Linear::new("t", 2, 2, &mut rng);
        let x = tensor::init::normal(&mut rng, 1, 2, 1.0);
        let dy = tensor::init::normal(&mut rng, 1, 2, 1.0);
        let _ = lin.forward(&x);
        let _ = lin.backward(&dy);
        assert!(lin.grad_norm() > 0.0);
        lin.zero_grad();
        assert_eq!(lin.grad_norm(), 0.0);
    }
}
