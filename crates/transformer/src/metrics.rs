//! Additional sequence-evaluation metrics beyond BLEU: token edit
//! distance (Levenshtein) and the word-error-rate convention built on
//! it.

/// Levenshtein distance between two token sequences (insertions,
/// deletions, substitutions all cost 1). `O(|a|·|b|)` time, `O(|b|)`
/// space.
pub fn edit_distance(a: &[usize], b: &[usize]) -> usize {
    if a.is_empty() {
        return b.len();
    }
    if b.is_empty() {
        return a.len();
    }
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut curr = vec![0usize; b.len() + 1];
    for (i, &ta) in a.iter().enumerate() {
        curr[0] = i + 1;
        for (j, &tb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ta != tb);
            curr[j + 1] = sub.min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[b.len()]
}

/// Token error rate over a corpus: `Σ edit_distance / Σ |reference|`
/// (the WER convention; can exceed 1.0 for pathological hypotheses).
///
/// # Panics
///
/// Panics if corpora lengths differ, the corpus is empty, or every
/// reference is empty.
pub fn token_error_rate(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(hypotheses.len(), references.len(), "corpus length mismatch");
    assert!(!hypotheses.is_empty(), "empty corpus");
    let mut edits = 0usize;
    let mut ref_len = 0usize;
    for (h, r) in hypotheses.iter().zip(references) {
        edits += edit_distance(h, r);
        ref_len += r.len();
    }
    assert!(ref_len > 0, "references are all empty");
    edits as f64 / ref_len as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_sequences_have_zero_distance() {
        assert_eq!(edit_distance(&[1, 2, 3], &[1, 2, 3]), 0);
        assert_eq!(edit_distance(&[], &[]), 0);
    }

    #[test]
    fn textbook_cases() {
        // kitten -> sitting (as token ids)
        let kitten = [10, 8, 19, 19, 4, 13];
        let sitting = [18, 8, 19, 19, 8, 13, 6];
        assert_eq!(edit_distance(&kitten, &sitting), 3);
        assert_eq!(edit_distance(&[1], &[]), 1);
        assert_eq!(edit_distance(&[], &[1, 2]), 2);
        assert_eq!(edit_distance(&[1, 2, 3], &[3, 2, 1]), 2);
    }

    #[test]
    fn distance_is_symmetric_and_triangle() {
        let a = [1usize, 5, 2, 8];
        let b = [1usize, 2, 8, 9];
        let c = [5usize, 5, 5];
        assert_eq!(edit_distance(&a, &b), edit_distance(&b, &a));
        assert!(edit_distance(&a, &c) <= edit_distance(&a, &b) + edit_distance(&b, &c));
    }

    #[test]
    fn distance_bounded_by_longer_length() {
        let a = [1usize, 2, 3, 4, 5];
        let b = [9usize, 9];
        assert!(edit_distance(&a, &b) <= a.len().max(b.len()));
        assert!(edit_distance(&a, &b) >= a.len().abs_diff(b.len()));
    }

    #[test]
    fn ter_perfect_is_zero_and_scales() {
        let refs = vec![vec![1, 2, 3], vec![4, 5]];
        assert_eq!(token_error_rate(&refs, &refs), 0.0);
        let hyps = vec![vec![1, 2, 9], vec![4, 5]];
        assert!((token_error_rate(&hyps, &refs) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn ter_rejects_mismatched_corpora() {
        let _ = token_error_rate(&[vec![1]], &[vec![1], vec![2]]);
    }
}
