//! Token-level cross-entropy loss with fused softmax backward.

use tensor::Mat;

/// Mean cross-entropy over a sequence of logit rows and target token ids,
/// returning `(loss, dlogits)` where `dlogits` is the gradient of the
/// *mean* loss.
///
/// Uses a numerically stable log-softmax; positions whose target is
/// `ignore` (e.g. padding) contribute neither loss nor gradient.
///
/// # Panics
///
/// Panics if `targets.len() != logits.rows()` or a target id is out of
/// range (and not `ignore`).
pub fn cross_entropy(
    logits: &Mat<f32>,
    targets: &[usize],
    ignore: Option<usize>,
) -> (f32, Mat<f32>) {
    assert_eq!(targets.len(), logits.rows(), "one target per logit row");
    let (rows, cols) = logits.shape();
    let mut dlogits = Mat::zeros(rows, cols);
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for r in 0..rows {
        let t = targets[r];
        if Some(t) == ignore {
            continue;
        }
        assert!(t < cols, "target {t} out of range ({cols})");
        counted += 1;
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = row.iter().map(|&x| (x - max).exp()).sum();
        let log_z = max + sum_exp.ln();
        loss += (log_z - row[t]) as f64;
        for c in 0..cols {
            let p = (row[c] - log_z).exp();
            dlogits[(r, c)] = p;
        }
        dlogits[(r, t)] -= 1.0;
    }
    if counted == 0 {
        return (0.0, dlogits);
    }
    let inv = 1.0 / counted as f32;
    dlogits.apply(|v| *v *= inv);
    ((loss / counted as f64) as f32, dlogits)
}

/// Label-smoothed cross-entropy (Szegedy et al. 2016; Vaswani et al.
/// use ε = 0.1): the target distribution is
/// `(1 − ε)·onehot + ε/V·uniform`. With `smoothing = 0` this reduces to
/// [`cross_entropy`] exactly.
///
/// # Panics
///
/// Panics on mismatched shapes, out-of-range targets, or
/// `smoothing ∉ [0, 1)`.
pub fn cross_entropy_smoothed(
    logits: &Mat<f32>,
    targets: &[usize],
    ignore: Option<usize>,
    smoothing: f32,
) -> (f32, Mat<f32>) {
    assert!(
        (0.0..1.0).contains(&smoothing),
        "smoothing must be in [0, 1)"
    );
    assert_eq!(targets.len(), logits.rows(), "one target per logit row");
    if smoothing == 0.0 {
        return cross_entropy(logits, targets, ignore);
    }
    let (rows, cols) = logits.shape();
    let uniform = smoothing / cols as f32;
    let confident = 1.0 - smoothing;
    let mut dlogits = Mat::zeros(rows, cols);
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for r in 0..rows {
        let t = targets[r];
        if Some(t) == ignore {
            continue;
        }
        assert!(t < cols, "target {t} out of range ({cols})");
        counted += 1;
        let row = logits.row(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let sum_exp: f32 = row.iter().map(|&x| (x - max).exp()).sum();
        let log_z = max + sum_exp.ln();
        // loss = -Σ q_c log p_c = log Z - Σ q_c x_c
        let mut qx = 0.0f32;
        for c in 0..cols {
            let q = uniform + if c == t { confident } else { 0.0 };
            qx += q * row[c];
            dlogits[(r, c)] = (row[c] - log_z).exp() - q;
        }
        loss += (log_z - qx) as f64;
    }
    if counted == 0 {
        return (0.0, dlogits);
    }
    let inv = 1.0 / counted as f32;
    dlogits.apply(|v| *v *= inv);
    ((loss / counted as f64) as f32, dlogits)
}

/// Fraction of positions where the argmax of the logits equals the
/// target (ignoring `ignore` positions). Returns 1.0 for an empty batch.
pub fn token_accuracy(logits: &Mat<f32>, targets: &[usize], ignore: Option<usize>) -> f32 {
    assert_eq!(targets.len(), logits.rows(), "one target per logit row");
    let mut hit = 0usize;
    let mut total = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if Some(t) == ignore {
            continue;
        }
        total += 1;
        let row = logits.row(r);
        let argmax = row
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite logits"))
            .map(|(i, _)| i)
            .expect("non-empty row");
        if argmax == t {
            hit += 1;
        }
    }
    if total == 0 {
        1.0
    } else {
        hit as f32 / total as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_prediction_has_low_loss() {
        let mut logits = Mat::zeros(2, 4);
        logits[(0, 1)] = 20.0;
        logits[(1, 3)] = 20.0;
        let (loss, _) = cross_entropy(&logits, &[1, 3], None);
        assert!(loss < 1e-3, "loss {loss}");
        assert_eq!(token_accuracy(&logits, &[1, 3], None), 1.0);
    }

    #[test]
    fn uniform_prediction_loss_is_log_vocab() {
        let logits = Mat::zeros(1, 8);
        let (loss, _) = cross_entropy(&logits, &[5], None);
        assert!((loss - (8f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let logits = Mat::from_vec(2, 3, vec![0.5f32, -1.0, 2.0, 0.0, 0.3, -0.7]).unwrap();
        let targets = [2usize, 0];
        let (_, d) = cross_entropy(&logits, &targets, None);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp[(r, c)] += h;
                let mut lm = logits.clone();
                lm[(r, c)] -= h;
                let (fp, _) = cross_entropy(&lp, &targets, None);
                let (fm, _) = cross_entropy(&lm, &targets, None);
                let fd = (fp - fm) / (2.0 * h);
                assert!(
                    (fd - d[(r, c)]).abs() < 1e-3,
                    "({r},{c}): {fd} vs {}",
                    d[(r, c)]
                );
            }
        }
    }

    #[test]
    fn ignored_positions_contribute_nothing() {
        let mut logits = Mat::zeros(2, 4);
        logits[(0, 1)] = 10.0;
        let (loss_all, _) = cross_entropy(&logits, &[1, 0], None);
        let (loss_ign, d) = cross_entropy(&logits, &[1, 0], Some(0));
        assert!(loss_ign < loss_all);
        assert!(d.row(1).iter().all(|&x| x == 0.0));
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let logits = Mat::from_fn(3, 5, |r, c| (r * c) as f32 * 0.2);
        let (_, d) = cross_entropy(&logits, &[0, 2, 4], None);
        for r in 0..3 {
            let s: f32 = d.row(r).iter().sum();
            assert!(s.abs() < 1e-6, "row {r} sums to {s}");
        }
    }

    #[test]
    fn smoothed_with_zero_equals_plain() {
        let logits = Mat::from_fn(2, 4, |r, c| (r * c) as f32 * 0.3 - 0.5);
        let t = [1usize, 3];
        let (l0, d0) = cross_entropy(&logits, &t, None);
        let (ls, ds) = cross_entropy_smoothed(&logits, &t, None, 0.0);
        assert_eq!(l0, ls);
        assert_eq!(d0, ds);
    }

    #[test]
    fn smoothed_gradient_matches_finite_differences() {
        let logits = Mat::from_vec(2, 3, vec![0.4f32, -0.9, 1.3, 0.2, 0.1, -0.6]).unwrap();
        let targets = [0usize, 2];
        let eps = 0.1;
        let (_, d) = cross_entropy_smoothed(&logits, &targets, None, eps);
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..3 {
                let mut lp = logits.clone();
                lp[(r, c)] += h;
                let mut lm = logits.clone();
                lm[(r, c)] -= h;
                let (fp, _) = cross_entropy_smoothed(&lp, &targets, None, eps);
                let (fm, _) = cross_entropy_smoothed(&lm, &targets, None, eps);
                let fd = (fp - fm) / (2.0 * h);
                assert!(
                    (fd - d[(r, c)]).abs() < 1e-3,
                    "({r},{c}): {fd} vs {}",
                    d[(r, c)]
                );
            }
        }
    }

    #[test]
    fn smoothing_raises_loss_on_perfect_predictions() {
        let mut logits = Mat::zeros(1, 4);
        logits[(0, 2)] = 30.0;
        let (plain, _) = cross_entropy(&logits, &[2], None);
        let (smooth, _) = cross_entropy_smoothed(&logits, &[2], None, 0.1);
        assert!(smooth > plain, "{smooth} vs {plain}");
    }

    #[test]
    #[should_panic(expected = "smoothing")]
    fn invalid_smoothing_rejected() {
        let logits = Mat::zeros(1, 2);
        let _ = cross_entropy_smoothed(&logits, &[0], None, 1.0);
    }

    #[test]
    fn empty_after_ignore_is_safe() {
        let logits = Mat::zeros(2, 3);
        let (loss, d) = cross_entropy(&logits, &[1, 1], Some(1));
        assert_eq!(loss, 0.0);
        assert!(d.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(token_accuracy(&logits, &[1, 1], Some(1)), 1.0);
    }
}
