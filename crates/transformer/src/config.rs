//! Model hyper-parameter configurations, including the paper's Table I.
//!
//! Table I observes the structural pattern the partitioning method relies
//! on: `d_model = 64 h` and `d_ff = 4 d_model = 256 h` for every standard
//! Transformer/BERT variant.

use serde::{Deserialize, Serialize};

/// Hyper-parameters of a Transformer model.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Human-readable name (e.g. `"Transformer-base"`).
    pub name: String,
    /// Embedding / residual-stream width (`d_model`).
    pub d_model: usize,
    /// Hidden width of the position-wise FFN (`d_ff`).
    pub d_ff: usize,
    /// Number of attention heads (`h`).
    pub h: usize,
    /// Number of encoder layers (and decoder layers for seq2seq models).
    pub n_layers: usize,
    /// Vocabulary size (used by the trainable model; irrelevant to the
    /// ResBlock hardware).
    pub vocab: usize,
    /// Maximum sequence length `s` the model (and the accelerator's
    /// systolic array) is provisioned for.
    pub max_len: usize,
}

impl ModelConfig {
    /// Per-head key/query/value width `d_k = d_model / h`.
    ///
    /// Equal to 64 in every Table-I configuration.
    pub fn d_k(&self) -> usize {
        self.d_model / self.h
    }

    /// Validates the structural constraints the paper's partitioning
    /// assumes: `h` divides `d_model`.
    ///
    /// # Panics
    ///
    /// Panics if `d_model % h != 0` or any dimension is zero.
    pub fn validate(&self) {
        assert!(
            self.h > 0 && self.d_model > 0 && self.d_ff > 0,
            "dimensions must be positive"
        );
        assert_eq!(
            self.d_model % self.h,
            0,
            "d_model {} must be divisible by h {}",
            self.d_model,
            self.h
        );
    }

    /// Transformer base model (Table I row 1): `d_model=512, d_ff=2048, h=8`.
    pub fn transformer_base() -> Self {
        Self {
            name: "Transformer-base".into(),
            d_model: 512,
            d_ff: 2048,
            h: 8,
            n_layers: 6,
            vocab: 32_000,
            max_len: 64,
        }
    }

    /// Transformer big model (Table I row 2): `d_model=1024, d_ff=4096, h=16`.
    pub fn transformer_big() -> Self {
        Self {
            name: "Transformer-big".into(),
            d_model: 1024,
            d_ff: 4096,
            h: 16,
            n_layers: 6,
            vocab: 32_000,
            max_len: 64,
        }
    }

    /// BERT-base (Table I row 3): `d_model=768, d_ff=3072, h=12`.
    pub fn bert_base() -> Self {
        Self {
            name: "BERT-base".into(),
            d_model: 768,
            d_ff: 3072,
            h: 12,
            n_layers: 12,
            vocab: 30_522,
            max_len: 64,
        }
    }

    /// BERT-large (Table I row 4): `d_model=1024, d_ff=4096, h=16`.
    pub fn bert_large() -> Self {
        Self {
            name: "BERT-large".into(),
            d_model: 1024,
            d_ff: 4096,
            h: 16,
            n_layers: 24,
            vocab: 30_522,
            max_len: 64,
        }
    }

    /// All four Table-I configurations, in table order.
    pub fn table1() -> Vec<Self> {
        vec![
            Self::transformer_base(),
            Self::transformer_big(),
            Self::bert_base(),
            Self::bert_large(),
        ]
    }

    /// A deliberately tiny configuration for unit tests and the trainable
    /// synthetic-task model: `d_model=32, d_ff=64, h=4`.
    pub fn tiny_for_tests() -> Self {
        Self {
            name: "tiny".into(),
            d_model: 32,
            d_ff: 64,
            h: 4,
            n_layers: 2,
            vocab: 32,
            max_len: 16,
        }
    }

    /// Whether the config follows the Table-I pattern `d_model = 64 h`
    /// (the property that makes every weight panel exactly 64 columns).
    pub fn follows_64h_pattern(&self) -> bool {
        self.d_model == 64 * self.h && self.d_ff == 4 * self.d_model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let t = ModelConfig::table1();
        let rows: Vec<(usize, usize, usize)> = t.iter().map(|c| (c.d_model, c.d_ff, c.h)).collect();
        assert_eq!(
            rows,
            vec![
                (512, 2048, 8),
                (1024, 4096, 16),
                (768, 3072, 12),
                (1024, 4096, 16)
            ]
        );
    }

    #[test]
    fn every_table1_config_has_dk_64_and_64h_pattern() {
        for c in ModelConfig::table1() {
            c.validate();
            assert_eq!(c.d_k(), 64, "{}", c.name);
            assert!(c.follows_64h_pattern(), "{}", c.name);
        }
    }

    #[test]
    fn tiny_config_is_valid_but_not_64h() {
        let c = ModelConfig::tiny_for_tests();
        c.validate();
        assert_eq!(c.d_k(), 8);
        assert!(!c.follows_64h_pattern());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn validate_rejects_indivisible_heads() {
        ModelConfig {
            name: "bad".into(),
            d_model: 100,
            d_ff: 400,
            h: 3,
            n_layers: 1,
            vocab: 10,
            max_len: 8,
        }
        .validate();
    }

    #[test]
    fn serde_impls_exist() {
        fn assert_both<T: serde::Serialize + serde::Deserialize>() {}
        assert_both::<ModelConfig>();
    }
}
