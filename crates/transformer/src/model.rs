//! The full sequence-to-sequence Transformer (Fig. 1): embeddings,
//! encoder stack, decoder stack and the output projection, with training
//! support.

use rand::Rng;
use tensor::{ops, Mat};

use crate::config::ModelConfig;
use crate::decoder::Decoder;
use crate::embedding::Embedding;
use crate::encoder::Encoder;
use crate::linear::Linear;
use crate::opt::HasParams;

/// An encoder–decoder Transformer for sequence-to-sequence tasks.
#[derive(Debug, Clone)]
pub struct Seq2SeqTransformer {
    cfg: ModelConfig,
    src_emb: Embedding,
    tgt_emb: Embedding,
    encoder: Encoder,
    decoder: Decoder,
    out_proj: Linear,
}

impl Seq2SeqTransformer {
    /// Creates a randomly initialised model for `cfg`.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        Self {
            cfg: cfg.clone(),
            src_emb: Embedding::new("src_emb", cfg.vocab, cfg.d_model, rng),
            tgt_emb: Embedding::new("tgt_emb", cfg.vocab, cfg.d_model, rng),
            encoder: Encoder::new(cfg, rng),
            decoder: Decoder::new(cfg, rng),
            out_proj: Linear::new("out_proj", cfg.d_model, cfg.vocab, rng),
        }
    }

    /// The model configuration.
    pub fn config(&self) -> &ModelConfig {
        &self.cfg
    }

    /// Borrow of the encoder stack (the quantized model imports its
    /// weights from here).
    pub fn encoder(&self) -> &Encoder {
        &self.encoder
    }

    /// Borrow of the decoder stack.
    pub fn decoder(&self) -> &Decoder {
        &self.decoder
    }

    /// Borrow of the source embedding.
    pub fn src_embedding(&self) -> &Embedding {
        &self.src_emb
    }

    /// Borrow of the target embedding.
    pub fn tgt_embedding(&self) -> &Embedding {
        &self.tgt_emb
    }

    /// Borrow of the output projection.
    pub fn output_projection(&self) -> &Linear {
        &self.out_proj
    }

    /// Teacher-forced forward: embeds `src` and `tgt_in`, runs the stacks
    /// and returns per-position vocabulary logits `[s_tgt, vocab]`.
    ///
    /// # Panics
    ///
    /// Panics if either sequence is empty or contains out-of-vocabulary
    /// ids.
    pub fn forward_train(&mut self, src: &[usize], tgt_in: &[usize]) -> Mat<f32> {
        assert!(
            !src.is_empty() && !tgt_in.is_empty(),
            "sequences must be non-empty"
        );
        let src_x = self.src_emb.forward(src);
        let memory = self.encoder.forward(&src_x, None);
        let tgt_x = self.tgt_emb.forward(tgt_in);
        let mask = ops::causal_mask(tgt_in.len());
        let dec = self.decoder.forward(&tgt_x, &memory, Some(&mask));
        self.out_proj.forward(&dec)
    }

    /// Backward from `dlogits` (as returned by
    /// [`crate::loss::cross_entropy`]), accumulating every parameter
    /// gradient.
    pub fn backward(&mut self, dlogits: &Mat<f32>) {
        let ddec = self.out_proj.backward(dlogits);
        let (dtgt_x, dmemory) = self.decoder.backward(&ddec);
        self.tgt_emb.backward(&dtgt_x);
        let dsrc_x = self.encoder.backward(&dmemory);
        self.src_emb.backward(&dsrc_x);
    }

    /// Runs the encoder over a source sequence, returning the memory
    /// for subsequent [`Seq2SeqTransformer::decode_step_logits`] calls.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn encode(&mut self, src: &[usize]) -> Mat<f32> {
        assert!(!src.is_empty(), "source must be non-empty");
        let src_x = self.src_emb.forward_inference(src);
        self.encoder.forward(&src_x, None)
    }

    /// Runs the decoder over `prefix` (starting with BOS) against an
    /// encoder `memory` and returns the vocabulary logits of the *last*
    /// position — the next-token distribution.
    ///
    /// # Panics
    ///
    /// Panics if `prefix` is empty.
    pub fn decode_step_logits(&mut self, prefix: &[usize], memory: &Mat<f32>) -> Vec<f32> {
        assert!(!prefix.is_empty(), "prefix must be non-empty");
        let tgt_x = self.tgt_emb.forward_inference(prefix);
        let mask = ops::causal_mask(prefix.len());
        let dec = self.decoder.forward(&tgt_x, memory, Some(&mask));
        let last = dec
            .submatrix(dec.rows() - 1, 0, 1, self.cfg.d_model)
            .expect("last row");
        self.out_proj.forward_inference(&last).row(0).to_vec()
    }

    /// Greedy autoregressive decoding: starts from `bos`, stops at `eos`
    /// or after `max_len` generated tokens. Returns the generated ids
    /// (without `bos`, without the terminating `eos`).
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn greedy_decode(
        &mut self,
        src: &[usize],
        bos: usize,
        eos: usize,
        max_len: usize,
    ) -> Vec<usize> {
        let memory = self.encode(src);
        let mut tokens = vec![bos];
        let mut out = Vec::new();
        for _ in 0..max_len {
            let logits = self.decode_step_logits(&tokens, &memory);
            let next = ops::argmax(&logits);
            if next == eos {
                break;
            }
            out.push(next);
            tokens.push(next);
        }
        out
    }
}

impl HasParams for Seq2SeqTransformer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.src_emb.visit_params(f);
        self.tgt_emb.visit_params(f);
        self.encoder.visit_params(f);
        self.decoder.visit_params(f);
        self.out_proj.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::cross_entropy;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_model(seed: u64) -> Seq2SeqTransformer {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 1;
        let mut rng = StdRng::seed_from_u64(seed);
        Seq2SeqTransformer::new(&cfg, &mut rng)
    }

    #[test]
    fn forward_produces_vocab_logits() {
        let mut m = tiny_model(1);
        let logits = m.forward_train(&[3, 4, 5], &[1, 3, 4]);
        assert_eq!(logits.shape(), (3, m.config().vocab));
        assert!(logits.as_slice().iter().all(|x| x.is_finite()));
    }

    #[test]
    fn backward_fills_all_gradients() {
        let mut m = tiny_model(2);
        let logits = m.forward_train(&[3, 4], &[1, 3]);
        let (_, d) = cross_entropy(&logits, &[3, 2], None);
        m.backward(&d);
        assert!(m.grad_norm() > 0.0);
    }

    #[test]
    fn one_training_step_reduces_loss() {
        use crate::opt::Adam;
        let mut m = tiny_model(3);
        let src = [3usize, 4, 5, 6];
        let tgt_in = [1usize, 6, 5, 4];
        let tgt_out = [6usize, 5, 4, 2];
        let logits = m.forward_train(&src, &tgt_in);
        let (loss0, d) = cross_entropy(&logits, &tgt_out, None);
        m.backward(&d);
        let mut adam = Adam::new(1e-2);
        adam.step(&mut m);
        m.zero_grad();
        let logits = m.forward_train(&src, &tgt_in);
        let (loss1, _) = cross_entropy(&logits, &tgt_out, None);
        assert!(loss1 < loss0, "loss did not decrease: {loss0} -> {loss1}");
    }

    #[test]
    fn greedy_decode_terminates_and_respects_max_len() {
        let mut m = tiny_model(4);
        let out = m.greedy_decode(&[3, 4, 5], 1, 2, 6);
        assert!(out.len() <= 6);
        assert!(out.iter().all(|&t| t < m.config().vocab));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_source_rejected() {
        let mut m = tiny_model(5);
        let _ = m.forward_train(&[], &[1]);
    }
}
