//! Token embedding with sinusoidal positional encoding (Vaswani et al.,
//! Section 3.4–3.5). Outside the accelerator's scope ("other components
//! beside the stacks ... have not been taken into account by this work"),
//! but required to train the quantization-study model.

use rand::Rng;
use tensor::Mat;

use crate::opt::HasParams;

/// Sinusoidal positional encoding matrix `[s, d_model]`:
/// `PE(pos, 2i) = sin(pos / 10000^(2i/d))`, `PE(pos, 2i+1) = cos(...)`.
pub fn sinusoidal_pos_encoding(s: usize, d_model: usize) -> Mat<f32> {
    Mat::from_fn(s, d_model, |pos, j| {
        let i = (j / 2) as f32;
        let angle = pos as f32 / (10_000f32).powf(2.0 * i / d_model as f32);
        if j % 2 == 0 {
            angle.sin()
        } else {
            angle.cos()
        }
    })
}

/// Learned token embedding table with `sqrt(d_model)` scaling and
/// additive positional encoding.
#[derive(Debug, Clone)]
pub struct Embedding {
    name: String,
    table: Mat<f32>,
    grad: Mat<f32>,
    cache_tokens: Option<Vec<usize>>,
}

impl Embedding {
    /// Creates an embedding for `vocab` tokens of width `d_model`.
    pub fn new(name: impl Into<String>, vocab: usize, d_model: usize, rng: &mut impl Rng) -> Self {
        Self {
            name: name.into(),
            table: tensor::init::normal(rng, vocab, d_model, 1.0 / (d_model as f32).sqrt()),
            grad: Mat::zeros(vocab, d_model),
            cache_tokens: None,
        }
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.rows()
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.table.cols()
    }

    /// Borrow of the raw embedding table.
    pub fn table(&self) -> &Mat<f32> {
        &self.table
    }

    /// Embeds a token sequence: `emb[t] * sqrt(d_model) + PE`, caching the
    /// tokens for [`Embedding::backward`].
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary.
    pub fn forward(&mut self, tokens: &[usize]) -> Mat<f32> {
        let out = self.forward_inference(tokens);
        self.cache_tokens = Some(tokens.to_vec());
        out
    }

    /// Inference-only forward (no cache).
    ///
    /// # Panics
    ///
    /// Panics if any token id is out of vocabulary.
    pub fn forward_inference(&self, tokens: &[usize]) -> Mat<f32> {
        let d = self.d_model();
        let scale = (d as f32).sqrt();
        let pe = sinusoidal_pos_encoding(tokens.len(), d);
        Mat::from_fn(tokens.len(), d, |r, c| {
            let t = tokens[r];
            assert!(
                t < self.vocab(),
                "token {t} out of vocabulary ({})",
                self.vocab()
            );
            self.table[(t, c)] * scale + pe[(r, c)]
        })
    }

    /// Embeds a single token at absolute position `pos` (for
    /// incremental decoding, where the sinusoidal encoding must match
    /// the token's true position, not index 0).
    ///
    /// # Panics
    ///
    /// Panics if the token id is out of vocabulary.
    pub fn embed_at(&self, token: usize, pos: usize) -> Vec<f32> {
        assert!(
            token < self.vocab(),
            "token {token} out of vocabulary ({})",
            self.vocab()
        );
        let d = self.d_model();
        let scale = (d as f32).sqrt();
        (0..d)
            .map(|j| {
                let i = (j / 2) as f32;
                let angle = pos as f32 / (10_000f32).powf(2.0 * i / d as f32);
                let pe = if j % 2 == 0 { angle.sin() } else { angle.cos() };
                self.table[(token, j)] * scale + pe
            })
            .collect()
    }

    /// Backward: scatters `dy` rows into the embedding-table gradient.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, dy: &Mat<f32>) {
        let tokens = self
            .cache_tokens
            .take()
            .expect("embedding backward called without forward");
        assert_eq!(
            dy.shape(),
            (tokens.len(), self.d_model()),
            "dy shape mismatch"
        );
        let scale = (self.d_model() as f32).sqrt();
        for (r, &t) in tokens.iter().enumerate() {
            for (g, v) in self.grad.row_mut(t).iter_mut().zip(dy.row(r)) {
                *g += v * scale;
            }
        }
    }
}

impl HasParams for Embedding {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let n = format!("{}.table", self.name);
        f(&n, self.table.as_mut_slice(), self.grad.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn pos_encoding_first_row_is_alternating_zero_one() {
        let pe = sinusoidal_pos_encoding(4, 6);
        for j in 0..6 {
            let want = if j % 2 == 0 { 0.0 } else { 1.0 };
            assert!((pe[(0, j)] - want).abs() < 1e-6, "pe(0,{j})");
        }
    }

    #[test]
    fn pos_encoding_values_bounded() {
        let pe = sinusoidal_pos_encoding(64, 32);
        assert!(pe.as_slice().iter().all(|&x| (-1.0..=1.0).contains(&x)));
    }

    #[test]
    fn pos_encoding_rows_distinct() {
        let pe = sinusoidal_pos_encoding(16, 8);
        for r in 1..16 {
            assert_ne!(pe.row(0), pe.row(r), "row {r} equals row 0");
        }
    }

    #[test]
    fn forward_uses_table_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut emb = Embedding::new("e", 10, 4, &mut rng);
        let x = emb.forward(&[3, 3, 7]);
        assert_eq!(x.shape(), (3, 4));
        // same token at different positions differs only by PE
        let pe = sinusoidal_pos_encoding(3, 4);
        for c in 0..4 {
            let diff = (x[(0, c)] - pe[(0, c)]) - (x[(1, c)] - pe[(1, c)]);
            assert!(diff.abs() < 1e-5);
        }
    }

    #[test]
    #[should_panic(expected = "out of vocabulary")]
    fn forward_rejects_oov() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut emb = Embedding::new("e", 4, 4, &mut rng);
        let _ = emb.forward(&[4]);
    }

    #[test]
    fn backward_scatters_scaled_gradient() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut emb = Embedding::new("e", 5, 2, &mut rng);
        let _ = emb.forward(&[1, 1, 4]);
        let dy = Mat::filled(3, 2, 1.0f32);
        emb.backward(&dy);
        let scale = 2f32.sqrt();
        emb.visit_params(&mut |_, _, g| {
            // token 1 hit twice, token 4 once, others zero
            assert!((g[2] - 2.0 * scale).abs() < 1e-5);
            assert!((g[4 * 2] - scale).abs() < 1e-5);
            assert_eq!(g[0], 0.0);
        });
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut emb = Embedding::new("e", 4, 2, &mut rng);
        emb.backward(&Mat::zeros(1, 2));
    }
}
