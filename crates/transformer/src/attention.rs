//! Scaled dot-product attention (Eq. (1) of the paper) with an explicit
//! forward cache for manual backpropagation.

use tensor::{gemm, ops, Mat};

use crate::functional::{softmax_rows, softmax_rows_backward};

/// Everything the backward pass needs from an attention forward pass.
#[derive(Debug, Clone)]
pub struct AttentionCache {
    q: Mat<f32>,
    k: Mat<f32>,
    v: Mat<f32>,
    probs: Mat<f32>,
    scale: f32,
}

impl AttentionCache {
    /// The attention probability matrix (post-softmax), mostly useful for
    /// inspection and tests.
    pub fn probs(&self) -> &Mat<f32> {
        &self.probs
    }
}

/// Computes `softmax(mask(Q K^T * scale)) V`.
///
/// `q: [s_q, d_k]`, `k: [s_v, d_k]`, `v: [s_v, d_k]`; the optional mask is
/// `[s_q, s_v]` with `true` marking illegal connections. Returns the
/// `[s_q, d_k]` context and the cache for [`attention_backward`].
///
/// # Panics
///
/// Panics if shapes are inconsistent.
pub fn attention_forward(
    q: &Mat<f32>,
    k: &Mat<f32>,
    v: &Mat<f32>,
    mask: Option<&Mat<bool>>,
    scale: f32,
) -> (Mat<f32>, AttentionCache) {
    assert_eq!(q.cols(), k.cols(), "q/k width mismatch");
    assert_eq!(k.rows(), v.rows(), "k/v length mismatch");
    let scores = ops::scale(&gemm::matmul_nt(q, k).expect("shapes checked"), scale);
    let masked = match mask {
        Some(m) => ops::mask_scores(&scores, m).expect("mask shape mismatch"),
        None => scores,
    };
    let probs = softmax_rows(&masked, None);
    let out = gemm::matmul(&probs, v).expect("shapes checked");
    let cache = AttentionCache {
        q: q.clone(),
        k: k.clone(),
        v: v.clone(),
        probs,
        scale,
    };
    (out, cache)
}

/// Backward pass of [`attention_forward`]: returns `(dQ, dK, dV)`.
///
/// # Panics
///
/// Panics if `dout` does not match the forward output shape.
pub fn attention_backward(
    cache: &AttentionCache,
    dout: &Mat<f32>,
) -> (Mat<f32>, Mat<f32>, Mat<f32>) {
    let AttentionCache {
        q,
        k,
        v,
        probs,
        scale,
    } = cache;
    assert_eq!(dout.shape(), (q.rows(), v.cols()), "dout shape mismatch");
    // out = P V
    let dprobs = gemm::matmul_nt(dout, v).expect("shapes checked");
    let dv = gemm::matmul(&probs.transposed(), dout).expect("shapes checked");
    // P = softmax(S); masked entries have P = 0 so dS is 0 there too.
    let dscores = softmax_rows_backward(probs, &dprobs);
    let dscores = ops::scale(&dscores, *scale);
    // S = Q K^T
    let dq = gemm::matmul(&dscores, k).expect("shapes checked");
    let dk = gemm::matmul(&dscores.transposed(), q).expect("shapes checked");
    (dq, dk, dv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn output_is_convex_combination_of_values() {
        let mut rng = StdRng::seed_from_u64(1);
        let q = tensor::init::normal(&mut rng, 3, 4, 1.0);
        let k = tensor::init::normal(&mut rng, 5, 4, 1.0);
        let v = tensor::init::normal(&mut rng, 5, 4, 1.0);
        let (out, cache) = attention_forward(&q, &k, &v, None, 0.5);
        assert_eq!(out.shape(), (3, 4));
        // each probability row sums to 1
        for r in 0..3 {
            let s: f32 = cache.probs().row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        // outputs bounded by value extremes
        let vmax = v.as_slice().iter().cloned().fold(f32::MIN, f32::max);
        let vmin = v.as_slice().iter().cloned().fold(f32::MAX, f32::min);
        assert!(out
            .as_slice()
            .iter()
            .all(|&x| x <= vmax + 1e-5 && x >= vmin - 1e-5));
    }

    #[test]
    fn causal_mask_zeroes_future_attention() {
        let mut rng = StdRng::seed_from_u64(2);
        let q = tensor::init::normal(&mut rng, 4, 2, 1.0);
        let k = tensor::init::normal(&mut rng, 4, 2, 1.0);
        let v = tensor::init::normal(&mut rng, 4, 2, 1.0);
        let mask = ops::causal_mask(4);
        let (_, cache) = attention_forward(&q, &k, &v, Some(&mask), 1.0);
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert_eq!(cache.probs()[(i, j)], 0.0, "future prob ({i},{j}) nonzero");
            }
        }
    }

    #[test]
    fn uniform_scores_average_values() {
        // With q = 0, all scores are equal -> output = mean of values.
        let q = Mat::zeros(1, 2);
        let k = Mat::from_fn(4, 2, |r, c| (r + c) as f32);
        let v = Mat::from_fn(4, 2, |r, _| r as f32);
        let (out, _) = attention_forward(&q, &k, &v, None, 1.0);
        assert!((out[(0, 0)] - 1.5).abs() < 1e-6);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let q = tensor::init::normal(&mut rng, 3, 2, 1.0);
        let k = tensor::init::normal(&mut rng, 4, 2, 1.0);
        let v = tensor::init::normal(&mut rng, 4, 2, 1.0);
        let dout = tensor::init::normal(&mut rng, 3, 2, 1.0);
        let scale = 1.0 / (2.0f32).sqrt();
        let mask = ops::causal_mask(4).submatrix(0, 0, 3, 4).unwrap();

        let (_, cache) = attention_forward(&q, &k, &v, Some(&mask), scale);
        let (dq, dk, dv) = attention_backward(&cache, &dout);

        let loss = |q: &Mat<f32>, k: &Mat<f32>, v: &Mat<f32>| -> f32 {
            let (o, _) = attention_forward(q, k, v, Some(&mask), scale);
            o.as_slice()
                .iter()
                .zip(dout.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let h = 1e-3f32;
        let grids: [(&Mat<f32>, &Mat<f32>, &str); 3] =
            [(&q, &dq, "q"), (&k, &dk, "k"), (&v, &dv, "v")];
        for (mat, grad, name) in grids {
            for r in 0..mat.rows() {
                for c in 0..mat.cols() {
                    let mut p = mat.clone();
                    p[(r, c)] += h;
                    let mut m = mat.clone();
                    m[(r, c)] -= h;
                    let (lp, lm) = match name {
                        "q" => (loss(&p, &k, &v), loss(&m, &k, &v)),
                        "k" => (loss(&q, &p, &v), loss(&q, &m, &v)),
                        _ => (loss(&q, &k, &p), loss(&q, &k, &m)),
                    };
                    let fd = (lp - lm) / (2.0 * h);
                    assert!(
                        (fd - grad[(r, c)]).abs() < 2e-2,
                        "d{name}({r},{c}): fd {fd} vs {}",
                        grad[(r, c)]
                    );
                }
            }
        }
    }
}
