//! The position-wise feed-forward ResBlock (Eq. (2) of the paper):
//! `LayerNorm(x + ReLU(x W1 + b1) W2 + b2)`.

use graph::Executor;
use rand::Rng;
use tensor::{ops, Mat};

use crate::config::ModelConfig;
use crate::layernorm::LayerNorm;
use crate::linear::Linear;
use crate::opt::HasParams;

/// The FFN ResBlock — the second layer type the accelerator implements
/// (Algorithm 1, lines 14–22).
#[derive(Debug, Clone)]
pub struct FfnResBlock {
    lin1: Linear,
    lin2: Linear,
    ln: LayerNorm,
    cache_pre_relu: Option<Mat<f32>>,
}

impl FfnResBlock {
    /// Creates a ResBlock for the given configuration.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        Self::with_name("ffn_res", cfg, rng)
    }

    /// Creates a named ResBlock (names scope optimizer state).
    pub fn with_name(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        cfg.validate();
        Self {
            lin1: Linear::new(format!("{name}.lin1"), cfg.d_model, cfg.d_ff, rng),
            lin2: Linear::new(format!("{name}.lin2"), cfg.d_ff, cfg.d_model, rng),
            ln: LayerNorm::new(format!("{name}.ln"), cfg.d_model),
            cache_pre_relu: None,
        }
    }

    /// Borrows the two linear sublayers `(W1/b1, W2/b2)` — used by the
    /// quantized model to import trained weights.
    pub fn sublayers(&self) -> (&Linear, &Linear) {
        (&self.lin1, &self.lin2)
    }

    /// Borrow of the inner layer norm.
    pub fn layernorm(&self) -> &LayerNorm {
        &self.ln
    }

    /// Forward: `LayerNorm(x + ReLU(x W1 + b1) W2 + b2)`.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_model`.
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        let pre = self.lin1.forward(x);
        let hidden = ops::relu(&pre);
        self.cache_pre_relu = Some(pre);
        let sub = self.lin2.forward(&hidden);
        let res = ops::add(x, &sub).expect("residual shape invariant");
        self.ln.forward(&res)
    }

    /// Inference-only forward (no gradient caches touched). Runs the
    /// [`graph::ffn_graph`] dataflow through
    /// [`crate::exec::FloatExec`].
    pub fn forward_inference(&self, x: &Mat<f32>) -> Mat<f32> {
        let g = graph::fuse_if(
            graph::ffn_graph(&self.graph_config()),
            tensor::envcfg::fuse_enabled(),
        );
        let mut exec = crate::exec::FloatExec::ffn_res(self);
        let mut env = exec.run(&g, vec![("x", x.clone())], None);
        env.take("y")
    }

    /// The graph-shape parameters of this block (`h` is not an FFN
    /// concern and is left at one).
    pub fn graph_config(&self) -> graph::GraphConfig {
        graph::GraphConfig {
            d_model: self.lin1.d_in(),
            d_ff: self.lin1.d_out(),
            h: 1,
        }
    }

    /// Backward: returns `dX` (residual path included).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward`.
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let pre = self
            .cache_pre_relu
            .take()
            .expect("ffn backward called without forward");
        let dres = self.ln.backward(dy);
        let dhidden = self.lin2.backward(&dres);
        let dpre = ops::hadamard(&dhidden, &ops::relu_grad_mask(&pre)).expect("shape invariant");
        let dx_ffn = self.lin1.backward(&dpre);
        ops::add(&dres, &dx_ffn).expect("residual shape invariant")
    }
}

impl HasParams for FfnResBlock {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.lin1.visit_params(f);
        self.lin2.visit_params(f);
        self.ln.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape_and_normalization() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(1);
        let mut blk = FfnResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 5, cfg.d_model, 1.0);
        let y = blk.forward(&x);
        assert_eq!(y.shape(), (5, cfg.d_model));
        for r in 0..5 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / cfg.d_model as f32;
            assert!(mean.abs() < 1e-4);
        }
    }

    #[test]
    fn param_count_matches_formula() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(2);
        let mut blk = FfnResBlock::new(&cfg, &mut rng);
        let (d, f) = (cfg.d_model, cfg.d_ff);
        // W1 + b1 + W2 + b2 + gamma + beta
        assert_eq!(blk.param_count(), d * f + f + f * d + d + 2 * d);
    }

    #[test]
    fn gradients_match_finite_differences() {
        let cfg = ModelConfig {
            name: "micro".into(),
            d_model: 6,
            d_ff: 12,
            h: 2,
            n_layers: 1,
            vocab: 8,
            max_len: 4,
        };
        let mut rng = StdRng::seed_from_u64(3);
        let mut blk = FfnResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 3, 6, 1.0);
        let dy = tensor::init::normal(&mut rng, 3, 6, 1.0);

        let _ = blk.forward(&x);
        let dx = blk.backward(&dy);

        let mut blk2 = blk.clone();
        let loss = |b: &mut FfnResBlock, x: &Mat<f32>| -> f32 {
            b.forward(x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, g)| a * g)
                .sum()
        };
        let h = 1e-3f32;
        for r in 0..3 {
            for c in 0..6 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let fd = (loss(&mut blk2, &xp) - loss(&mut blk2, &xm)) / (2.0 * h);
                assert!(
                    (fd - dx[(r, c)]).abs() < 5e-2,
                    "dx({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(4);
        let mut blk = FfnResBlock::new(&cfg, &mut rng);
        let _ = blk.backward(&Mat::zeros(1, cfg.d_model));
    }

    #[test]
    fn relu_cache_consumed_each_pass() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(5);
        let mut blk = FfnResBlock::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, cfg.d_model, 1.0);
        let dy = Mat::filled(2, cfg.d_model, 1.0f32);
        let _ = blk.forward(&x);
        let _ = blk.backward(&dy);
        // second forward/backward works fine (cache re-populated)
        let _ = blk.forward(&x);
        let _ = blk.backward(&dy);
    }
}
