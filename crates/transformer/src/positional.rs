//! Learned positional embeddings — the positional scheme of the BERT
//! rows of Table I (Devlin et al. 2019), as an alternative to the
//! sinusoidal encoding of [`crate::embedding`].

use rand::Rng;
use tensor::Mat;

use crate::opt::HasParams;

/// A trainable `[max_len, d_model]` position table, added to the token
/// embeddings.
#[derive(Debug, Clone)]
pub struct LearnedPositional {
    name: String,
    table: Mat<f32>,
    grad: Mat<f32>,
    cache_len: Option<usize>,
}

impl LearnedPositional {
    /// Creates a table for positions `0..max_len`.
    pub fn new(
        name: impl Into<String>,
        max_len: usize,
        d_model: usize,
        rng: &mut impl Rng,
    ) -> Self {
        Self {
            name: name.into(),
            table: tensor::init::normal(rng, max_len, d_model, 0.02),
            grad: Mat::zeros(max_len, d_model),
            cache_len: None,
        }
    }

    /// Maximum supported position.
    pub fn max_len(&self) -> usize {
        self.table.rows()
    }

    /// Embedding width.
    pub fn d_model(&self) -> usize {
        self.table.cols()
    }

    /// Adds position rows `0..x.rows()` to `x`, caching for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x` is longer than the table or has a different width.
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        let out = self.forward_inference(x);
        self.cache_len = Some(x.rows());
        out
    }

    /// Inference-only forward.
    ///
    /// # Panics
    ///
    /// Panics if `x` is longer than the table or has a different width.
    pub fn forward_inference(&self, x: &Mat<f32>) -> Mat<f32> {
        assert!(
            x.rows() <= self.max_len(),
            "sequence length {} exceeds the position table ({})",
            x.rows(),
            self.max_len()
        );
        assert_eq!(x.cols(), self.d_model(), "width mismatch");
        Mat::from_fn(x.rows(), x.cols(), |r, c| x[(r, c)] + self.table[(r, c)])
    }

    /// Backward: accumulates the position-table gradient and passes the
    /// upstream gradient through unchanged (additive op).
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched shape.
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let len = self.cache_len.take().expect("backward without forward");
        assert_eq!(dy.shape(), (len, self.d_model()), "dy shape mismatch");
        for r in 0..len {
            for (g, v) in self.grad.row_mut(r).iter_mut().zip(dy.row(r)) {
                *g += v;
            }
        }
        dy.clone()
    }
}

impl HasParams for LearnedPositional {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let n = format!("{}.pos", self.name);
        f(&n, self.table.as_mut_slice(), self.grad.as_mut_slice());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_adds_position_rows() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pos = LearnedPositional::new("p", 8, 4, &mut rng);
        let x = Mat::zeros(3, 4);
        let y = pos.forward(&x);
        for r in 0..3 {
            for c in 0..4 {
                assert_eq!(y[(r, c)], pos.table[(r, c)]);
            }
        }
    }

    #[test]
    fn distinct_positions_get_distinct_offsets() {
        let mut rng = StdRng::seed_from_u64(2);
        let pos = LearnedPositional::new("p", 8, 8, &mut rng);
        let x = Mat::zeros(8, 8);
        let y = pos.forward_inference(&x);
        for r in 1..8 {
            assert_ne!(y.row(0), y.row(r));
        }
    }

    #[test]
    fn backward_accumulates_only_used_rows() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut pos = LearnedPositional::new("p", 6, 2, &mut rng);
        let x = Mat::zeros(2, 2);
        let _ = pos.forward(&x);
        let dy = Mat::filled(2, 2, 1.5f32);
        let dx = pos.backward(&dy);
        assert_eq!(dx, dy, "additive op passes gradient through");
        pos.visit_params(&mut |_, _, g| {
            assert_eq!(&g[..4], &[1.5, 1.5, 1.5, 1.5]);
            assert!(g[4..].iter().all(|&v| v == 0.0), "unused rows untouched");
        });
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut pos = LearnedPositional::new("p", 4, 3, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, 3, 1.0);
        let dy = tensor::init::normal(&mut rng, 2, 3, 1.0);
        let _ = pos.forward(&x);
        let _ = pos.backward(&dy);
        let h = 1e-3f32;
        let loss = |p: &LearnedPositional| -> f32 {
            p.forward_inference(&x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let mut grads = Vec::new();
        pos.visit_params(&mut |_, _, g| grads = g.to_vec());
        for r in 0..2 {
            for c in 0..3 {
                let mut pp = pos.clone();
                pp.table[(r, c)] += h;
                let mut pm = pos.clone();
                pm.table[(r, c)] -= h;
                let fd = (loss(&pp) - loss(&pm)) / (2.0 * h);
                let analytic = grads[r * 3 + c];
                assert!(
                    (fd - analytic).abs() < 1e-2,
                    "({r},{c}): {fd} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn trains_to_separate_positions() {
        // A toy objective: make position 0's first feature large and
        // position 1's negative. SGD through HasParams must drive them
        // apart — learned positions are genuinely trainable.
        use crate::opt::Adam;
        let mut rng = StdRng::seed_from_u64(5);
        let mut pos = LearnedPositional::new("p", 2, 2, &mut rng);
        let mut adam = Adam::new(0.05);
        for _ in 0..100 {
            pos.zero_grad();
            let x = Mat::zeros(2, 2);
            let y = pos.forward(&x);
            // loss = -(y[0,0] - y[1,0]); gradient is constant
            let mut dy = Mat::zeros(2, 2);
            dy[(0, 0)] = -1.0;
            dy[(1, 0)] = 1.0;
            let _ = pos.backward(&dy);
            adam.step(&mut pos);
            drop(y);
        }
        assert!(pos.table[(0, 0)] > 1.0);
        assert!(pos.table[(1, 0)] < -1.0);
    }

    #[test]
    #[should_panic(expected = "exceeds the position table")]
    fn overlong_sequence_rejected() {
        let mut rng = StdRng::seed_from_u64(6);
        let pos = LearnedPositional::new("p", 2, 2, &mut rng);
        let _ = pos.forward_inference(&Mat::zeros(3, 2));
    }
}
