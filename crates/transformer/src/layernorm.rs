//! Trainable layer normalization with cached-activation backward.

use tensor::Mat;

use crate::functional::{layernorm_rows, LAYERNORM_EPS};
use crate::opt::HasParams;

/// Layer normalization with learnable `gamma`/`beta` over the last
/// dimension (Eq. (6) of the paper; Ba et al. 2016).
#[derive(Debug, Clone)]
pub struct LayerNorm {
    name: String,
    gamma: Vec<f32>,
    beta: Vec<f32>,
    grad_gamma: Vec<f32>,
    grad_beta: Vec<f32>,
    eps: f32,
    /// Cached (x_hat, rstd) per forward call.
    cache: Option<(Mat<f32>, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a LayerNorm over `dim` features with `gamma = 1`,
    /// `beta = 0` and the paper's `eps = 1e-8`.
    pub fn new(name: impl Into<String>, dim: usize) -> Self {
        Self {
            name: name.into(),
            gamma: vec![1.0; dim],
            beta: vec![0.0; dim],
            grad_gamma: vec![0.0; dim],
            grad_beta: vec![0.0; dim],
            eps: LAYERNORM_EPS,
            cache: None,
        }
    }

    /// Creates a LayerNorm from explicit affine parameters.
    ///
    /// # Panics
    ///
    /// Panics if `gamma.len() != beta.len()`.
    pub fn from_parts(name: impl Into<String>, gamma: Vec<f32>, beta: Vec<f32>) -> Self {
        assert_eq!(gamma.len(), beta.len(), "gamma/beta length mismatch");
        let dim = gamma.len();
        Self {
            name: name.into(),
            gamma,
            beta,
            grad_gamma: vec![0.0; dim],
            grad_beta: vec![0.0; dim],
            eps: LAYERNORM_EPS,
            cache: None,
        }
    }

    /// Feature dimension.
    pub fn dim(&self) -> usize {
        self.gamma.len()
    }

    /// Borrow of `gamma`.
    pub fn gamma(&self) -> &[f32] {
        &self.gamma
    }

    /// Borrow of `beta`.
    pub fn beta(&self) -> &[f32] {
        &self.beta
    }

    /// Forward pass, caching normalised activations for backward.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != self.dim()`.
    pub fn forward(&mut self, x: &Mat<f32>) -> Mat<f32> {
        assert_eq!(x.cols(), self.dim(), "layernorm width mismatch");
        let (out, xhat, rstds) =
            tensor::norm::layernorm_rows_stats(x, &self.gamma, &self.beta, self.eps);
        self.cache = Some((xhat, rstds));
        out
    }

    /// Inference-only forward (no cache).
    pub fn forward_inference(&self, x: &Mat<f32>) -> Mat<f32> {
        layernorm_rows(x, &self.gamma, &self.beta, self.eps)
    }

    /// Backward pass: accumulates `dgamma`, `dbeta` and returns `dX`.
    ///
    /// # Panics
    ///
    /// Panics if called before `forward` or with a mismatched `dy` shape.
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let (xhat, rstds) = self
            .cache
            .take()
            .expect("layernorm backward called without forward");
        assert_eq!(dy.shape(), xhat.shape(), "dy shape mismatch");
        let (rows, cols) = xhat.shape();
        let n = cols as f32;
        let mut dx = Mat::zeros(rows, cols);
        for r in 0..rows {
            let mut sum_dxhat = 0.0f32;
            let mut sum_dxhat_xhat = 0.0f32;
            let mut dxhat = vec![0.0f32; cols];
            for c in 0..cols {
                let d = dy[(r, c)];
                self.grad_gamma[c] += d * xhat[(r, c)];
                self.grad_beta[c] += d;
                let dxh = d * self.gamma[c];
                dxhat[c] = dxh;
                sum_dxhat += dxh;
                sum_dxhat_xhat += dxh * xhat[(r, c)];
            }
            let rstd = rstds[r];
            for c in 0..cols {
                dx[(r, c)] = rstd / n * (n * dxhat[c] - sum_dxhat - xhat[(r, c)] * sum_dxhat_xhat);
            }
        }
        dx
    }
}

impl HasParams for LayerNorm {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        let g = format!("{}.gamma", self.name);
        f(&g, &mut self.gamma, &mut self.grad_gamma);
        let b = format!("{}.beta", self.name);
        f(&b, &mut self.beta, &mut self.grad_beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_matches_functional_reference() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut ln =
            LayerNorm::from_parts("t", vec![1.0, 2.0, 0.5, -1.0], vec![0.1, -0.2, 0.0, 0.3]);
        let x = tensor::init::normal(&mut rng, 3, 4, 2.0);
        let got = ln.forward(&x);
        let want = layernorm_rows(&x, ln.gamma(), ln.beta(), LAYERNORM_EPS);
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < 1e-5);
        }
    }

    #[test]
    fn gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut ln = LayerNorm::new("t", 5);
        // non-trivial affine parameters
        for (i, g) in ln.gamma.iter_mut().enumerate() {
            *g = 1.0 + 0.1 * i as f32;
        }
        let x = tensor::init::normal(&mut rng, 2, 5, 1.5);
        let dy = tensor::init::normal(&mut rng, 2, 5, 1.0);

        let _ = ln.forward(&x);
        let dx = ln.backward(&dy);

        let loss = |ln: &LayerNorm, x: &Mat<f32>| -> f32 {
            ln.forward_inference(x)
                .as_slice()
                .iter()
                .zip(dy.as_slice())
                .map(|(a, b)| a * b)
                .sum()
        };
        let h = 1e-3f32;
        for r in 0..2 {
            for c in 0..5 {
                let mut xp = x.clone();
                xp[(r, c)] += h;
                let mut xm = x.clone();
                xm[(r, c)] -= h;
                let fd = (loss(&ln, &xp) - loss(&ln, &xm)) / (2.0 * h);
                assert!(
                    (fd - dx[(r, c)]).abs() < 2e-2,
                    "dx({r},{c}): fd {fd} vs {}",
                    dx[(r, c)]
                );
            }
        }
        // gamma gradient check
        for c in 0..5 {
            let mut lp = ln.clone();
            lp.gamma[c] += h;
            let mut lm = ln.clone();
            lm.gamma[c] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!(
                (fd - ln.grad_gamma[c]).abs() < 2e-2,
                "dgamma({c}): fd {fd} vs {}",
                ln.grad_gamma[c]
            );
        }
        // beta gradient check
        for c in 0..5 {
            let mut lp = ln.clone();
            lp.beta[c] += h;
            let mut lm = ln.clone();
            lm.beta[c] -= h;
            let fd = (loss(&lp, &x) - loss(&lm, &x)) / (2.0 * h);
            assert!(
                (fd - ln.grad_beta[c]).abs() < 2e-2,
                "dbeta({c}): fd {fd} vs {}",
                ln.grad_beta[c]
            );
        }
    }

    #[test]
    fn default_params_are_identity_affine() {
        let ln = LayerNorm::new("t", 3);
        assert_eq!(ln.gamma(), &[1.0, 1.0, 1.0]);
        assert_eq!(ln.beta(), &[0.0, 0.0, 0.0]);
        assert_eq!(ln.dim(), 3);
    }

    #[test]
    #[should_panic(expected = "without forward")]
    fn backward_requires_forward() {
        let mut ln = LayerNorm::new("t", 2);
        let _ = ln.backward(&Mat::zeros(1, 2));
    }
}
