//! Parameter snapshots: save and restore every trainable buffer of a
//! model through its [`HasParams`] visitation, so a trained model can be
//! persisted (e.g. as JSON via serde) and reloaded by the experiment
//! harness without retraining.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::opt::HasParams;

/// A named snapshot of every parameter buffer, in visitation order.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StateDict {
    entries: Vec<(String, Vec<f32>)>,
}

impl StateDict {
    /// Number of buffers.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the snapshot holds no buffers.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.entries.iter().map(|(_, v)| v.len()).sum()
    }

    /// Buffer names in order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.entries.iter().map(|(n, _)| n.as_str())
    }
}

/// Error restoring a [`StateDict`] into a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LoadStateError {
    /// The snapshot has a different number of buffers than the model.
    BufferCountMismatch {
        /// Buffers in the snapshot.
        expected: usize,
        /// Buffers the model visited.
        got: usize,
    },
    /// A buffer's name differs (model structure changed).
    NameMismatch {
        /// Buffer index.
        index: usize,
        /// Name in the snapshot.
        expected: String,
        /// Name in the model.
        got: String,
    },
    /// A buffer's length differs (model dimensions changed).
    SizeMismatch {
        /// Buffer name.
        name: String,
        /// Length in the snapshot.
        expected: usize,
        /// Length in the model.
        got: usize,
    },
}

impl fmt::Display for LoadStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadStateError::BufferCountMismatch { expected, got } => {
                write!(f, "state dict has {expected} buffers, model has {got}")
            }
            LoadStateError::NameMismatch {
                index,
                expected,
                got,
            } => {
                write!(
                    f,
                    "buffer {index} name mismatch: state '{expected}' vs model '{got}'"
                )
            }
            LoadStateError::SizeMismatch {
                name,
                expected,
                got,
            } => {
                write!(
                    f,
                    "buffer '{name}' size mismatch: state {expected} vs model {got}"
                )
            }
        }
    }
}

impl Error for LoadStateError {}

/// Snapshots every parameter buffer of `model`.
pub fn state_dict(model: &mut impl HasParams) -> StateDict {
    let mut entries = Vec::new();
    model.visit_params(&mut |name, p, _| {
        entries.push((name.to_string(), p.to_vec()));
    });
    StateDict { entries }
}

/// Restores a snapshot into `model`, verifying structure first.
///
/// # Errors
///
/// Returns [`LoadStateError`] when buffer counts, names or sizes differ;
/// the model is left unmodified in that case.
pub fn load_state_dict(model: &mut impl HasParams, sd: &StateDict) -> Result<(), LoadStateError> {
    // validation pass
    let mut names: Vec<(String, usize)> = Vec::new();
    model.visit_params(&mut |name, p, _| names.push((name.to_string(), p.len())));
    if names.len() != sd.entries.len() {
        return Err(LoadStateError::BufferCountMismatch {
            expected: sd.entries.len(),
            got: names.len(),
        });
    }
    for (i, ((mname, mlen), (sname, sval))) in names.iter().zip(&sd.entries).enumerate() {
        if mname != sname {
            return Err(LoadStateError::NameMismatch {
                index: i,
                expected: sname.clone(),
                got: mname.clone(),
            });
        }
        if *mlen != sval.len() {
            return Err(LoadStateError::SizeMismatch {
                name: sname.clone(),
                expected: sval.len(),
                got: *mlen,
            });
        }
    }
    // write pass
    let mut idx = 0usize;
    model.visit_params(&mut |_, p, _| {
        p.copy_from_slice(&sd.entries[idx].1);
        idx += 1;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ModelConfig;
    use crate::model::Seq2SeqTransformer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny(seed: u64) -> Seq2SeqTransformer {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 1;
        Seq2SeqTransformer::new(&cfg, &mut StdRng::seed_from_u64(seed))
    }

    #[test]
    fn roundtrip_preserves_outputs() {
        let mut a = tiny(1);
        let mut b = tiny(2); // different init
        let src = [3usize, 4, 5];
        let tin = [1usize, 5, 4];
        let out_a = a.forward_train(&src, &tin);
        let out_b_before = b.forward_train(&src, &tin);
        assert_ne!(out_a, out_b_before);

        let sd = state_dict(&mut a);
        load_state_dict(&mut b, &sd).unwrap();
        let out_b_after = b.forward_train(&src, &tin);
        assert_eq!(out_a, out_b_after, "restored model must match exactly");
    }

    #[test]
    fn snapshot_counts_match_model() {
        let mut m = tiny(3);
        let sd = state_dict(&mut m);
        assert!(!sd.is_empty());
        assert_eq!(sd.param_count(), m.param_count());
        assert!(sd.names().all(|n| !n.is_empty()));
    }

    #[test]
    fn wrong_shape_model_is_rejected_untouched() {
        let mut small = tiny(4);
        let mut big_cfg = ModelConfig::tiny_for_tests();
        big_cfg.n_layers = 2;
        let mut big = Seq2SeqTransformer::new(&big_cfg, &mut StdRng::seed_from_u64(5));
        let sd = state_dict(&mut big);
        let before = state_dict(&mut small);
        let err = load_state_dict(&mut small, &sd).unwrap_err();
        assert!(
            matches!(err, LoadStateError::BufferCountMismatch { .. }),
            "{err}"
        );
        assert_eq!(state_dict(&mut small), before, "model must be untouched");
    }

    #[test]
    fn size_mismatch_detected() {
        let mut m = tiny(6);
        let mut sd = state_dict(&mut m);
        sd.entries[0].1.push(0.0);
        let err = load_state_dict(&mut m, &sd).unwrap_err();
        assert!(matches!(err, LoadStateError::SizeMismatch { .. }), "{err}");
        assert!(err.to_string().contains("size mismatch"));
    }

    #[test]
    fn name_mismatch_detected() {
        let mut m = tiny(7);
        let mut sd = state_dict(&mut m);
        sd.entries[1].0 = "bogus".into();
        let err = load_state_dict(&mut m, &sd).unwrap_err();
        assert!(matches!(err, LoadStateError::NameMismatch { .. }), "{err}");
    }
}
