//! Variable-length batching: pad token sequences to a common length
//! (the accelerator's array height `s`) and build the key-padding masks
//! that keep attention away from the padding — how a deployment feeds
//! ragged sentences to a fixed `s × 64` array.

use tensor::{ops, Mat};

use crate::tasks::PAD;

/// A padded batch: token matrix rows plus per-sequence valid lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedBatch {
    /// Token ids, one padded sequence per row (`PAD`-filled).
    pub tokens: Vec<Vec<usize>>,
    /// Real length of each sequence.
    pub lengths: Vec<usize>,
    /// The common padded length.
    pub padded_len: usize,
}

impl PaddedBatch {
    /// Pads `seqs` to `max(len)` (or to `min_len`, whichever is larger).
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty or contains an empty sequence.
    pub fn new(seqs: &[Vec<usize>], min_len: usize) -> Self {
        assert!(!seqs.is_empty(), "empty batch");
        assert!(
            seqs.iter().all(|s| !s.is_empty()),
            "empty sequence in batch"
        );
        let padded_len = seqs
            .iter()
            .map(|s| s.len())
            .max()
            .expect("non-empty")
            .max(min_len);
        let tokens = seqs
            .iter()
            .map(|s| {
                let mut row = s.clone();
                row.resize(padded_len, PAD);
                row
            })
            .collect();
        Self {
            tokens,
            lengths: seqs.iter().map(|s| s.len()).collect(),
            padded_len,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the batch holds no sequences (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The self-attention key-padding mask for sequence `i`:
    /// `[padded_len, padded_len]`, `true` marks illegal (padding) keys.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn self_attention_mask(&self, i: usize) -> Mat<bool> {
        let valid = self.lengths[i];
        let flags: Vec<bool> = (0..self.padded_len).map(|p| p < valid).collect();
        ops::padding_mask(self.padded_len, &flags)
    }

    /// Strips the padding back off sequence `i`'s output rows.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out` has fewer rows than the
    /// sequence's real length.
    pub fn unpad(&self, i: usize, out: &Mat<f32>) -> Mat<f32> {
        let valid = self.lengths[i];
        assert!(out.rows() >= valid, "output shorter than the sequence");
        out.submatrix(0, 0, valid, out.cols()).expect("in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> PaddedBatch {
        PaddedBatch::new(&[vec![3, 4, 5], vec![6, 7], vec![8, 9, 10, 11]], 0)
    }

    #[test]
    fn pads_to_the_longest_sequence() {
        let b = batch();
        assert_eq!(b.padded_len, 4);
        assert_eq!(b.tokens[0], vec![3, 4, 5, PAD]);
        assert_eq!(b.tokens[1], vec![6, 7, PAD, PAD]);
        assert_eq!(b.tokens[2], vec![8, 9, 10, 11]);
        assert_eq!(b.lengths, vec![3, 2, 4]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn min_len_forces_array_height() {
        let b = PaddedBatch::new(&[vec![3, 4]], 8);
        assert_eq!(b.padded_len, 8);
        assert_eq!(b.tokens[0].len(), 8);
    }

    #[test]
    fn masks_block_padding_keys_only() {
        let b = batch();
        let m = b.self_attention_mask(1); // valid = 2 of 4
        for q in 0..4 {
            assert!(!m[(q, 0)]);
            assert!(!m[(q, 1)]);
            assert!(m[(q, 2)]);
            assert!(m[(q, 3)]);
        }
        // fully valid sequence: nothing masked
        let m = b.self_attention_mask(2);
        assert!(m.as_slice().iter().all(|&x| !x));
    }

    #[test]
    fn unpad_recovers_the_valid_rows() {
        let b = batch();
        let out = Mat::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let u = b.unpad(1, &out);
        assert_eq!(u.shape(), (2, 2));
        assert_eq!(u[(1, 1)], 3.0);
    }

    #[test]
    fn padded_batch_runs_through_a_quantized_block_equivalently() {
        // End-to-end: a padded+masked FP32 MHA forward agrees with the
        // unpadded forward on the valid rows (the library-level version
        // of tests/padding_masks.rs).
        use crate::config::ModelConfig;
        use crate::mha::MhaResBlock;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x_full = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let valid = 4;
        let x_short = x_full.submatrix(0, 0, valid, cfg.d_model).unwrap();
        let want = block.forward_inference(&x_short, &x_short, &x_short, None);

        let b = PaddedBatch::new(&[vec![3; valid]], 6);
        let mask = b.self_attention_mask(0);
        let x_padded = x_short.padded(6, cfg.d_model);
        let got = block.forward_inference(&x_padded, &x_padded, &x_padded, Some(&mask));
        for r in 0..valid {
            for c in 0..cfg.d_model {
                assert!((got[(r, c)] - want[(r, c)]).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = PaddedBatch::new(&[], 0);
    }
}
