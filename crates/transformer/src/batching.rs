//! Variable-length batching: pad token sequences to a common length
//! (the accelerator's array height `s`) and build the key-padding masks
//! that keep attention away from the padding — how a deployment feeds
//! ragged sentences to a fixed `s × 64` array.

use tensor::{ops, Mat};

use crate::tasks::PAD;

/// One length bucket produced by [`PaddedBatch::buckets`]: a padded
/// batch of similar-length sequences plus the positions they came from
/// in the original slice.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bucket {
    /// Index of each bucket member in the original `seqs` slice, in
    /// ascending length order (ties in input order).
    pub indices: Vec<usize>,
    /// The members, padded to the bucket's longest sequence.
    pub batch: PaddedBatch,
}

impl Bucket {
    /// Padded rows wasted by this bucket:
    /// `Σ (padded_len − len_i)` over its members.
    pub fn waste(&self) -> usize {
        self.batch
            .lengths
            .iter()
            .map(|&l| self.batch.padded_len - l)
            .sum()
    }
}

/// A padded batch: token matrix rows plus per-sequence valid lengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PaddedBatch {
    /// Token ids, one padded sequence per row (`PAD`-filled).
    pub tokens: Vec<Vec<usize>>,
    /// Real length of each sequence.
    pub lengths: Vec<usize>,
    /// The common padded length.
    pub padded_len: usize,
}

impl PaddedBatch {
    /// Pads `seqs` to `max(len)` (or to `min_len`, whichever is larger).
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty or contains an empty sequence.
    pub fn new(seqs: &[Vec<usize>], min_len: usize) -> Self {
        assert!(!seqs.is_empty(), "empty batch");
        assert!(
            seqs.iter().all(|s| !s.is_empty()),
            "empty sequence in batch"
        );
        let padded_len = seqs
            .iter()
            .map(|s| s.len())
            .max()
            .expect("non-empty")
            .max(min_len);
        let tokens = seqs
            .iter()
            .map(|s| {
                let mut row = s.clone();
                row.resize(padded_len, PAD);
                row
            })
            .collect();
        Self {
            tokens,
            lengths: seqs.iter().map(|s| s.len()).collect(),
            padded_len,
        }
    }

    /// Splits `seqs` into length-sorted buckets, greedily growing each
    /// bucket while its total padding waste (padded rows that carry no
    /// real tokens) stays at most `max_waste`. With `max_waste = 0` every
    /// bucket holds sequences of exactly one length; a huge `max_waste`
    /// reproduces a single [`PaddedBatch::new`] over everything. Every
    /// input index appears in exactly one bucket.
    ///
    /// Ragged traffic padded naively wastes array rows on every padded
    /// position; bucketing bounds that waste per admitted batch, which is
    /// how the serving layer keeps the `s × 64` array busy with real
    /// rows.
    ///
    /// # Panics
    ///
    /// Panics if `seqs` is empty or contains an empty sequence.
    pub fn buckets(seqs: &[Vec<usize>], max_waste: usize) -> Vec<Bucket> {
        assert!(!seqs.is_empty(), "empty batch");
        assert!(
            seqs.iter().all(|s| !s.is_empty()),
            "empty sequence in batch"
        );
        let mut order: Vec<usize> = (0..seqs.len()).collect();
        order.sort_by_key(|&i| seqs[i].len());
        let mut out = Vec::new();
        let mut members: Vec<usize> = Vec::new();
        let mut len_sum = 0usize;
        for &i in &order {
            let len = seqs[i].len();
            // Sorted ascending: `len` is the candidate bucket's padded
            // length, so its waste is `len * |members| - Σ lengths`.
            let waste = len * members.len() - len_sum;
            if !members.is_empty() && waste > max_waste {
                out.push(Self::close_bucket(seqs, std::mem::take(&mut members)));
                len_sum = 0;
            }
            members.push(i);
            len_sum += len;
        }
        out.push(Self::close_bucket(seqs, members));
        out
    }

    fn close_bucket(seqs: &[Vec<usize>], indices: Vec<usize>) -> Bucket {
        let picked: Vec<Vec<usize>> = indices.iter().map(|&i| seqs[i].clone()).collect();
        Bucket {
            batch: PaddedBatch::new(&picked, 0),
            indices,
        }
    }

    /// Number of sequences.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// True when the batch holds no sequences (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The self-attention key-padding mask for sequence `i`:
    /// `[padded_len, padded_len]`, `true` marks illegal (padding) keys.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn self_attention_mask(&self, i: usize) -> Mat<bool> {
        let valid = self.lengths[i];
        let flags: Vec<bool> = (0..self.padded_len).map(|p| p < valid).collect();
        ops::padding_mask(self.padded_len, &flags)
    }

    /// Strips the padding back off sequence `i`'s output rows.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `out` has fewer rows than the
    /// sequence's real length.
    pub fn unpad(&self, i: usize, out: &Mat<f32>) -> Mat<f32> {
        let valid = self.lengths[i];
        assert!(out.rows() >= valid, "output shorter than the sequence");
        out.submatrix(0, 0, valid, out.cols()).expect("in range")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn batch() -> PaddedBatch {
        PaddedBatch::new(&[vec![3, 4, 5], vec![6, 7], vec![8, 9, 10, 11]], 0)
    }

    #[test]
    fn pads_to_the_longest_sequence() {
        let b = batch();
        assert_eq!(b.padded_len, 4);
        assert_eq!(b.tokens[0], vec![3, 4, 5, PAD]);
        assert_eq!(b.tokens[1], vec![6, 7, PAD, PAD]);
        assert_eq!(b.tokens[2], vec![8, 9, 10, 11]);
        assert_eq!(b.lengths, vec![3, 2, 4]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }

    #[test]
    fn min_len_forces_array_height() {
        let b = PaddedBatch::new(&[vec![3, 4]], 8);
        assert_eq!(b.padded_len, 8);
        assert_eq!(b.tokens[0].len(), 8);
    }

    #[test]
    fn masks_block_padding_keys_only() {
        let b = batch();
        let m = b.self_attention_mask(1); // valid = 2 of 4
        for q in 0..4 {
            assert!(!m[(q, 0)]);
            assert!(!m[(q, 1)]);
            assert!(m[(q, 2)]);
            assert!(m[(q, 3)]);
        }
        // fully valid sequence: nothing masked
        let m = b.self_attention_mask(2);
        assert!(m.as_slice().iter().all(|&x| !x));
    }

    #[test]
    fn unpad_recovers_the_valid_rows() {
        let b = batch();
        let out = Mat::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let u = b.unpad(1, &out);
        assert_eq!(u.shape(), (2, 2));
        assert_eq!(u[(1, 1)], 3.0);
    }

    #[test]
    fn padded_batch_runs_through_a_quantized_block_equivalently() {
        // End-to-end: a padded+masked FP32 MHA forward agrees with the
        // unpadded forward on the valid rows (the library-level version
        // of tests/padding_masks.rs).
        use crate::config::ModelConfig;
        use crate::mha::MhaResBlock;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let x_full = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let valid = 4;
        let x_short = x_full.submatrix(0, 0, valid, cfg.d_model).unwrap();
        let want = block.forward_inference(&x_short, &x_short, &x_short, None);

        let b = PaddedBatch::new(&[vec![3; valid]], 6);
        let mask = b.self_attention_mask(0);
        let x_padded = x_short.padded(6, cfg.d_model);
        let got = block.forward_inference(&x_padded, &x_padded, &x_padded, Some(&mask));
        for r in 0..valid {
            for c in 0..cfg.d_model {
                assert!((got[(r, c)] - want[(r, c)]).abs() < 1e-4);
            }
        }
    }

    #[test]
    #[should_panic(expected = "empty batch")]
    fn empty_batch_rejected() {
        let _ = PaddedBatch::new(&[], 0);
    }

    /// A pathological mix: a pile of tiny sequences plus one huge one.
    fn ragged() -> Vec<Vec<usize>> {
        let mut seqs: Vec<Vec<usize>> = (0..6).map(|i| vec![3 + i; 2]).collect();
        seqs.push(vec![7; 40]); // the outlier
        seqs.push(vec![8; 3]);
        seqs
    }

    #[test]
    fn buckets_cover_every_index_exactly_once() {
        let seqs = ragged();
        for max_waste in [0usize, 1, 4, 1000] {
            let buckets = PaddedBatch::buckets(&seqs, max_waste);
            let mut seen: Vec<usize> = buckets.iter().flat_map(|b| b.indices.clone()).collect();
            seen.sort_unstable();
            assert_eq!(seen, (0..seqs.len()).collect::<Vec<_>>(), "{max_waste}");
            for b in &buckets {
                assert_eq!(b.indices.len(), b.batch.len());
                for (&i, &l) in b.indices.iter().zip(&b.batch.lengths) {
                    assert_eq!(seqs[i].len(), l, "length bookkeeping");
                }
            }
        }
    }

    #[test]
    fn buckets_respect_the_waste_bound() {
        let seqs = ragged();
        for max_waste in [0usize, 1, 4, 10] {
            for b in PaddedBatch::buckets(&seqs, max_waste) {
                assert!(
                    b.waste() <= max_waste,
                    "bucket wastes {} > {max_waste}",
                    b.waste()
                );
            }
        }
    }

    #[test]
    fn bucketing_beats_naive_padding_on_pathological_mixes() {
        // Naively padding the ragged mix to the outlier's length wastes
        // 38 rows per 2-token sequence; the bucketed waste must be far
        // smaller (and zero at max_waste = 0).
        let seqs = ragged();
        let naive = PaddedBatch::new(&seqs, 0);
        let naive_waste: usize = naive.lengths.iter().map(|&l| naive.padded_len - l).sum();
        let tight: usize = PaddedBatch::buckets(&seqs, 0)
            .iter()
            .map(Bucket::waste)
            .sum();
        assert_eq!(tight, 0, "equal-length buckets waste nothing");
        assert!(naive_waste > 200, "mix is pathological: {naive_waste}");
        // An infinite budget degenerates to the naive single batch.
        let loose = PaddedBatch::buckets(&seqs, usize::MAX);
        assert_eq!(loose.len(), 1);
        assert_eq!(loose[0].batch.padded_len, naive.padded_len);
    }

    #[test]
    fn buckets_sort_by_length_with_stable_ties() {
        let seqs = vec![vec![1; 3], vec![2; 2], vec![3; 3], vec![4; 2]];
        let buckets = PaddedBatch::buckets(&seqs, 0);
        assert_eq!(buckets.len(), 2);
        assert_eq!(buckets[0].indices, vec![1, 3]); // the 2-length pair, input order
        assert_eq!(buckets[1].indices, vec![0, 2]);
    }
}
