//! Encoder layer and encoder stack (left half of Fig. 1).

use rand::Rng;
use tensor::Mat;

use crate::config::ModelConfig;
use crate::ffn::FfnResBlock;
use crate::mha::MhaResBlock;
use crate::opt::HasParams;

/// One encoder layer: self-attention MHA ResBlock followed by an FFN
/// ResBlock.
#[derive(Debug, Clone)]
pub struct EncoderLayer {
    mha: MhaResBlock,
    ffn: FfnResBlock,
}

impl EncoderLayer {
    /// Creates a layer with parameter names scoped by `name`.
    pub fn new(name: &str, cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        Self {
            mha: MhaResBlock::with_name(&format!("{name}.mha"), cfg, rng),
            ffn: FfnResBlock::with_name(&format!("{name}.ffn"), cfg, rng),
        }
    }

    /// Borrows the two ResBlocks `(mha, ffn)`.
    pub fn blocks(&self) -> (&MhaResBlock, &FfnResBlock) {
        (&self.mha, &self.ffn)
    }

    /// Forward pass with an optional self-attention mask.
    pub fn forward(&mut self, x: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
        let a = self.mha.forward(x, x, x, mask);
        self.ffn.forward(&a)
    }

    /// Backward pass.
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let da = self.ffn.backward(dy);
        let (dq, dk, dv) = self.mha.backward(&da);
        // self-attention: x feeds q, k and v
        let dx = tensor::ops::add(&dq, &dk).expect("shape invariant");
        tensor::ops::add(&dx, &dv).expect("shape invariant")
    }
}

impl HasParams for EncoderLayer {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        self.mha.visit_params(f);
        self.ffn.visit_params(f);
    }
}

/// A stack of `n_layers` identical encoder layers.
#[derive(Debug, Clone)]
pub struct Encoder {
    layers: Vec<EncoderLayer>,
}

impl Encoder {
    /// Creates the stack described by `cfg`.
    pub fn new(cfg: &ModelConfig, rng: &mut impl Rng) -> Self {
        let layers = (0..cfg.n_layers)
            .map(|i| EncoderLayer::new(&format!("enc{i}"), cfg, rng))
            .collect();
        Self { layers }
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of the layer stack (used for weight export/quantization).
    pub fn layers(&self) -> &[EncoderLayer] {
        &self.layers
    }

    /// Forward through all layers.
    pub fn forward(&mut self, x: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
        let mut h = x.clone();
        for layer in &mut self.layers {
            h = layer.forward(&h, mask);
        }
        h
    }

    /// Inference-only forward through all layers.
    pub fn forward_inference(&self, x: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
        let mut h = x.clone();
        for layer in &self.layers {
            let (mha, ffn) = layer.blocks();
            let a = mha.forward_inference(&h, &h, &h, mask);
            h = ffn.forward_inference(&a);
        }
        h
    }

    /// Backward through all layers (reverse order).
    pub fn backward(&mut self, dy: &Mat<f32>) -> Mat<f32> {
        let mut d = dy.clone();
        for layer in self.layers.iter_mut().rev() {
            d = layer.backward(&d);
        }
        d
    }
}

impl HasParams for Encoder {
    fn visit_params(&mut self, f: &mut dyn FnMut(&str, &mut [f32], &mut [f32])) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stack_preserves_shape() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(1);
        let mut enc = Encoder::new(&cfg, &mut rng);
        assert_eq!(enc.n_layers(), cfg.n_layers);
        let x = tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0);
        let y = enc.forward(&x, None);
        assert_eq!(y.shape(), x.shape());
    }

    #[test]
    fn backward_returns_input_shaped_grad() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(2);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let x = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let _ = enc.forward(&x, None);
        let dy = tensor::init::normal(&mut rng, 4, cfg.d_model, 1.0);
        let dx = enc.backward(&dy);
        assert_eq!(dx.shape(), x.shape());
        assert!(enc.grad_norm() > 0.0);
    }

    #[test]
    fn layers_have_distinct_parameters() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(3);
        let mut enc = Encoder::new(&cfg, &mut rng);
        let mut names = Vec::new();
        enc.visit_params(&mut |n, _, _| names.push(n.to_string()));
        let unique: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "duplicate parameter names");
    }
}
