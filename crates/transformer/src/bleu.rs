//! Corpus-level BLEU (Papineni et al. 2002), the metric of the paper's
//! Section V-A quantization study (IWSLT'16 de-en, BLEU 23.88 in FP32).
//!
//! Standard BLEU-4: modified n-gram precision with corpus-level counts,
//! geometric mean over n = 1..=4, and the brevity penalty.

use std::collections::HashMap;

/// Counts clipped n-gram matches between `hyp` and `ref_` for a given n.
fn ngram_counts(tokens: &[usize], n: usize) -> HashMap<&[usize], usize> {
    let mut map: HashMap<&[usize], usize> = HashMap::new();
    if tokens.len() >= n {
        for w in tokens.windows(n) {
            *map.entry(w).or_insert(0) += 1;
        }
    }
    map
}

/// Corpus BLEU-4 in percent (0–100) over parallel hypothesis/reference
/// lists.
///
/// Follows the smoothed convention that an n-gram order with zero
/// denominator (all hypotheses shorter than `n`) is skipped rather than
/// zeroing the whole score; a zero *numerator* still zeroes the score,
/// as in the reference implementation.
///
/// # Panics
///
/// Panics if the two corpora have different lengths or are empty.
///
/// # Example
///
/// ```
/// use transformer::bleu::corpus_bleu;
/// let refs = vec![vec![1, 2, 3, 4, 5]];
/// assert_eq!(corpus_bleu(&refs, &refs), 100.0);
/// assert!(corpus_bleu(&[vec![1, 2, 9, 9, 9]], &refs) < 100.0);
/// ```
pub fn corpus_bleu(hypotheses: &[Vec<usize>], references: &[Vec<usize>]) -> f64 {
    assert_eq!(
        hypotheses.len(),
        references.len(),
        "hypothesis/reference count mismatch"
    );
    assert!(!hypotheses.is_empty(), "empty corpus");
    let mut hyp_len = 0usize;
    let mut ref_len = 0usize;
    let mut matches = [0usize; 4];
    let mut totals = [0usize; 4];
    for (hyp, r) in hypotheses.iter().zip(references) {
        hyp_len += hyp.len();
        ref_len += r.len();
        for n in 1..=4 {
            let hyp_grams = ngram_counts(hyp, n);
            let ref_grams = ngram_counts(r, n);
            for (gram, &count) in &hyp_grams {
                let clip = ref_grams.get(gram).copied().unwrap_or(0);
                matches[n - 1] += count.min(clip);
            }
            totals[n - 1] += hyp.len().saturating_sub(n - 1);
        }
    }
    if hyp_len == 0 {
        return 0.0;
    }
    let mut log_precision_sum = 0.0f64;
    let mut orders = 0usize;
    for n in 0..4 {
        if totals[n] == 0 {
            continue; // order not applicable to this corpus
        }
        if matches[n] == 0 {
            return 0.0;
        }
        log_precision_sum += (matches[n] as f64 / totals[n] as f64).ln();
        orders += 1;
    }
    if orders == 0 {
        return 0.0;
    }
    let geo_mean = (log_precision_sum / orders as f64).exp();
    let bp = if hyp_len > ref_len {
        1.0
    } else {
        (1.0 - ref_len as f64 / hyp_len as f64).exp()
    };
    100.0 * bp * geo_mean
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_corpus_scores_100() {
        let c = vec![vec![1, 2, 3, 4, 5], vec![6, 7, 8, 9]];
        let bleu = corpus_bleu(&c, &c);
        assert!((bleu - 100.0).abs() < 1e-9, "{bleu}");
    }

    #[test]
    fn disjoint_corpus_scores_0() {
        let hyp = vec![vec![1, 2, 3, 4]];
        let r = vec![vec![5, 6, 7, 8]];
        assert_eq!(corpus_bleu(&hyp, &r), 0.0);
    }

    #[test]
    fn partial_overlap_scores_between() {
        // shares 4-grams with the reference but diverges at the end
        let hyp = vec![vec![1, 2, 3, 4, 5, 9]];
        let r = vec![vec![1, 2, 3, 4, 5, 6]];
        let bleu = corpus_bleu(&hyp, &r);
        assert!(bleu > 0.0 && bleu < 100.0, "{bleu}");
    }

    #[test]
    fn brevity_penalty_punishes_short_hypotheses() {
        let full = vec![vec![1, 2, 3, 4, 5, 6, 7, 8]];
        let short_hyp = vec![vec![1, 2, 3, 4, 5]];
        let b_full = corpus_bleu(&full, &full);
        let b_short = corpus_bleu(&short_hyp, &full);
        assert!(b_short < b_full, "{b_short} vs {b_full}");
    }

    #[test]
    fn repeated_ngrams_are_clipped() {
        // "the the the the" against "the cat": precision of "the" clipped
        // to 1 occurrence.
        let hyp = vec![vec![1, 1, 1, 1]];
        let r = vec![vec![1, 2]];
        let bleu = corpus_bleu(&hyp, &r);
        assert_eq!(bleu, 0.0, "no bigram match -> 0 with our convention");
        // unigram precision alone would have been 1/4 clipped
    }

    #[test]
    fn short_sequences_skip_inapplicable_orders() {
        // length-2 sequences have no trigrams/4-grams; identical pairs
        // should still score 100.
        let c = vec![vec![1, 2], vec![3, 4]];
        let bleu = corpus_bleu(&c, &c);
        assert!((bleu - 100.0).abs() < 1e-9, "{bleu}");
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn mismatched_corpora_rejected() {
        let _ = corpus_bleu(&[vec![1]], &[]);
    }

    #[test]
    fn order_sensitivity() {
        let r = vec![vec![1, 2, 3, 4, 5, 6]];
        let inorder = vec![vec![1, 2, 3, 4, 5, 6]];
        let shuffled = vec![vec![6, 4, 2, 1, 3, 5]];
        assert!(corpus_bleu(&inorder, &r) > corpus_bleu(&shuffled, &r));
    }
}
