//! Synthetic sequence-to-sequence tasks standing in for the IWSLT'16
//! German–English corpus of Section V-A (which is not redistributable
//! here). Each task is a deterministic function of the source sequence,
//! so a small Transformer can learn it to near-perfect BLEU, and
//! quantization-induced degradation is cleanly measurable.

use rand::Rng;

/// Padding token id.
pub const PAD: usize = 0;
/// Beginning-of-sequence token id.
pub const BOS: usize = 1;
/// End-of-sequence token id.
pub const EOS: usize = 2;
/// First content token id (`3..vocab` are content tokens).
pub const FIRST_CONTENT: usize = 3;

/// A synthetic translation task: maps a source token sequence to a
/// target token sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Task {
    /// Target equals source (identity "translation").
    Copy,
    /// Target is the source reversed — requires position-dependent
    /// attention, the canonical attention stress test.
    Reverse,
    /// Target is the source sorted ascending by token id — requires
    /// content-dependent global attention.
    Sort,
    /// A miniature "translation grammar": the source is a sequence of
    /// SVO clauses `(subject, verb, object)`; the target renders each
    /// clause in SOV order with every token mapped to a disjoint target
    /// vocabulary half. Combines local reordering with lexical mapping —
    /// the closest synthetic stand-in for the paper's de→en task.
    Grammar,
}

impl Task {
    /// Human-readable task name.
    pub fn name(&self) -> &'static str {
        match self {
            Task::Copy => "copy",
            Task::Reverse => "reverse",
            Task::Sort => "sort",
            Task::Grammar => "grammar",
        }
    }

    /// Grammar-task clause width (subject, verb, object).
    pub const CLAUSE: usize = 3;

    /// Applies the task's ground-truth function to a source sequence.
    pub fn apply(&self, src: &[usize]) -> Vec<usize> {
        match self {
            Task::Copy => src.to_vec(),
            Task::Reverse => src.iter().rev().copied().collect(),
            Task::Sort => {
                let mut v = src.to_vec();
                v.sort_unstable();
                v
            }
            Task::Grammar => {
                // Per clause: SVO -> SOV (the German subordinate-clause
                // word order, rendered deterministically). Trailing
                // partial clauses pass through unchanged.
                let mut out = Vec::with_capacity(src.len());
                for clause in src.chunks(Self::CLAUSE) {
                    match clause {
                        [s_tok, v_tok, o_tok] => {
                            out.push(*s_tok);
                            out.push(*o_tok);
                            out.push(*v_tok);
                        }
                        rest => out.extend_from_slice(rest),
                    }
                }
                out
            }
        }
    }
}

/// Generator for corpora of a [`Task`].
#[derive(Debug, Clone)]
pub struct TaskGen {
    task: Task,
    vocab: usize,
    min_len: usize,
    max_len: usize,
}

impl TaskGen {
    /// Creates a generator producing sequences of content tokens drawn
    /// from `[FIRST_CONTENT, vocab)` with lengths in `[min_len, max_len]`.
    ///
    /// # Panics
    ///
    /// Panics if `vocab <= FIRST_CONTENT`, `min_len == 0` or
    /// `min_len > max_len`.
    pub fn new(task: Task, vocab: usize, min_len: usize, max_len: usize) -> Self {
        assert!(
            vocab > FIRST_CONTENT,
            "vocab must exceed the special tokens"
        );
        assert!(min_len >= 1 && min_len <= max_len, "bad length range");
        Self {
            task,
            vocab,
            min_len,
            max_len,
        }
    }

    /// The wrapped task.
    pub fn task(&self) -> Task {
        self.task
    }

    /// Samples one `(src, tgt)` pair. Grammar-task lengths are rounded
    /// up to whole clauses.
    pub fn sample(&self, rng: &mut impl Rng) -> (Vec<usize>, Vec<usize>) {
        let mut len = rng.random_range(self.min_len..=self.max_len);
        if self.task == Task::Grammar {
            len = len.div_ceil(Task::CLAUSE) * Task::CLAUSE;
        }
        let src: Vec<usize> = (0..len)
            .map(|_| rng.random_range(FIRST_CONTENT..self.vocab))
            .collect();
        let tgt = self.task.apply(&src);
        (src, tgt)
    }

    /// Samples a corpus of `n` pairs.
    pub fn corpus(&self, n: usize, rng: &mut impl Rng) -> Vec<(Vec<usize>, Vec<usize>)> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

/// Builds the teacher-forcing triple for a pair: `(src, tgt_in, tgt_out)`
/// with `tgt_in = BOS ++ tgt` and `tgt_out = tgt ++ EOS`.
pub fn teacher_forcing(src: &[usize], tgt: &[usize]) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
    let mut tgt_in = Vec::with_capacity(tgt.len() + 1);
    tgt_in.push(BOS);
    tgt_in.extend_from_slice(tgt);
    let mut tgt_out = Vec::with_capacity(tgt.len() + 1);
    tgt_out.extend_from_slice(tgt);
    tgt_out.push(EOS);
    (src.to_vec(), tgt_in, tgt_out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn reverse_is_involution() {
        let src = vec![3, 9, 4, 7];
        assert_eq!(Task::Reverse.apply(&Task::Reverse.apply(&src)), src);
    }

    #[test]
    fn sort_is_idempotent_and_sorted() {
        let src = vec![9, 3, 7, 3];
        let once = Task::Sort.apply(&src);
        assert_eq!(Task::Sort.apply(&once), once);
        assert!(once.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn copy_is_identity() {
        let src = vec![5, 5, 8];
        assert_eq!(Task::Copy.apply(&src), src);
    }

    #[test]
    fn samples_respect_vocab_and_length() {
        let g = TaskGen::new(Task::Reverse, 16, 4, 8);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..50 {
            let (src, tgt) = g.sample(&mut rng);
            assert!(src.len() >= 4 && src.len() <= 8);
            assert_eq!(src.len(), tgt.len());
            assert!(src.iter().all(|&t| (FIRST_CONTENT..16).contains(&t)));
            assert_eq!(tgt, Task::Reverse.apply(&src));
        }
    }

    #[test]
    fn corpus_is_seed_deterministic() {
        let g = TaskGen::new(Task::Sort, 20, 3, 6);
        let a = g.corpus(10, &mut StdRng::seed_from_u64(7));
        let b = g.corpus(10, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn grammar_reorders_clauses() {
        // (S V O)(S V O) -> (S O V)(S O V)
        let src = vec![10, 11, 12, 20, 21, 22];
        assert_eq!(Task::Grammar.apply(&src), vec![10, 12, 11, 20, 22, 21]);
        // trailing partial clause passes through
        let src = vec![10, 11, 12, 30, 31];
        assert_eq!(Task::Grammar.apply(&src), vec![10, 12, 11, 30, 31]);
    }

    #[test]
    fn grammar_lengths_are_whole_clauses() {
        let g = TaskGen::new(Task::Grammar, 20, 4, 10);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..30 {
            let (src, tgt) = g.sample(&mut rng);
            assert_eq!(src.len() % Task::CLAUSE, 0, "len {}", src.len());
            assert_eq!(src.len(), tgt.len());
        }
    }

    #[test]
    fn grammar_is_an_involution_on_clauses() {
        let src = vec![3, 4, 5, 6, 7, 8, 9, 10, 11];
        assert_eq!(Task::Grammar.apply(&Task::Grammar.apply(&src)), src);
    }

    #[test]
    fn teacher_forcing_frames_sequences() {
        let (src, tin, tout) = teacher_forcing(&[4, 5], &[5, 4]);
        assert_eq!(src, vec![4, 5]);
        assert_eq!(tin, vec![BOS, 5, 4]);
        assert_eq!(tout, vec![5, 4, EOS]);
    }

    #[test]
    #[should_panic(expected = "vocab")]
    fn tiny_vocab_rejected() {
        let _ = TaskGen::new(Task::Copy, 3, 1, 2);
    }
}
