//! The [`Executor`] trait and the value environment graphs run in.

use tensor::Mat;

use crate::graph::Graph;

/// Counters an executor reports after a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Total graph nodes interpreted (or lowered) so far.
    pub nodes: usize,
    /// Accumulated accelerator cycles, for executors that model timing
    /// (`None` for pure software backends).
    pub cycles: Option<u64>,
    /// Datapath/program-store corruptions the executor's checkers
    /// detected (always zero for executors without a checker seam).
    pub faults_detected: usize,
    /// Resident KV-cache bytes the most recent run attended over
    /// (across the sessions in the batch; zero for executors that do
    /// not consume KV caches). With paged caches this counts whole
    /// resident pages — and a page shared between sessions (prefix-
    /// cache forks) exactly **once** — so it is the number the serving
    /// layer's memory budget actually pays, not the sum of per-session
    /// logical bytes.
    pub kv_bytes_in_use: usize,
    /// Fused nodes executed so far ([`crate::Op::LinearRelu`] /
    /// [`crate::Op::LinearAdd`] interpretations, plus the hand-fused
    /// drains of the row executors). Zero when fusion is disabled.
    pub ops_fused: usize,
    /// Bytes of intermediate tensors that fusion did **not** materialize
    /// — for each fused node, the size of the producer output the
    /// unfused graph would have written (at the executor's element
    /// width). A direct read on how much memory traffic the drain-path
    /// fusion removed.
    pub intermediates_elided_bytes: usize,
}

/// Named tensor values produced by a graph run. Slot order matches the
/// graph's [`ExecPlan`](crate::ExecPlan): inputs first, then node
/// outputs.
#[derive(Debug)]
pub struct Env<V> {
    names: Vec<String>,
    values: Vec<Option<V>>,
}

impl<V> Env<V> {
    /// Builds an environment with one empty slot per name.
    pub fn new(names: Vec<String>) -> Self {
        let values = names.iter().map(|_| None).collect();
        Env { names, values }
    }

    /// Slot index of `name`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no tensor with that name.
    pub fn slot(&self, name: &str) -> usize {
        self.names
            .iter()
            .position(|n| n == name)
            .unwrap_or_else(|| panic!("no tensor named {name:?} in this graph"))
    }

    /// Stores a value into a slot, replacing any previous value.
    pub fn set(&mut self, slot: usize, value: V) {
        self.values[slot] = Some(value);
    }

    /// Borrows the value in a slot.
    ///
    /// # Panics
    ///
    /// Panics if the slot was never filled (or was already taken).
    pub fn value(&self, slot: usize) -> &V {
        self.values[slot]
            .as_ref()
            .unwrap_or_else(|| panic!("tensor {:?} was not computed", self.names[slot]))
    }

    /// Borrows a value by name, if present.
    pub fn get(&self, name: &str) -> Option<&V> {
        let slot = self.names.iter().position(|n| n == name)?;
        self.values[slot].as_ref()
    }

    /// Removes and returns the value named `name`.
    ///
    /// # Panics
    ///
    /// Panics if the graph never produced that tensor or it was already
    /// taken.
    pub fn take(&mut self, name: &str) -> V {
        let slot = self.slot(name);
        self.values[slot]
            .take()
            .unwrap_or_else(|| panic!("tensor {name:?} was not computed (or already taken)"))
    }
}

/// A backend that can run a ResBlock graph.
///
/// Implementations interpret the same dataflow with their own value
/// representation (`FP32` matrices, INT8 code matrices, cached-KV row
/// views, or accelerator command streams) and must be **bit-identical**
/// to the hand-rolled forward path they replaced.
pub trait Executor {
    /// The tensor representation this backend computes with.
    type Value;

    /// Runs `graph`, binding `inputs` by name, and returns the filled
    /// environment. `mask` is the optional run-time attention mask
    /// consumed by `ScaledMaskedSoftmax` nodes (ignored by the FFN
    /// graph).
    ///
    /// # Panics
    ///
    /// Panics if a named input is missing, or the graph contains a node
    /// this executor has no parameters for (e.g. a `LayerNorm` node on
    /// an executor built from a bare attention module).
    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, Self::Value)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<Self::Value>;

    /// Counters accumulated across `run` calls.
    fn stats(&self) -> ExecStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_set_get_take() {
        let mut env: Env<i32> = Env::new(vec!["a".into(), "b".into()]);
        env.set(0, 7);
        assert_eq!(*env.value(0), 7);
        assert_eq!(env.get("a"), Some(&7));
        assert_eq!(env.get("b"), None);
        assert_eq!(env.take("a"), 7);
        assert_eq!(env.get("a"), None);
    }

    #[test]
    #[should_panic(expected = "was not computed")]
    fn taking_missing_value_panics() {
        let mut env: Env<i32> = Env::new(vec!["a".into()]);
        let _ = env.take("a");
    }

    #[test]
    #[should_panic(expected = "no tensor named")]
    fn unknown_name_panics() {
        let env: Env<i32> = Env::new(vec!["a".into()]);
        let _ = env.slot("ghost");
    }
}
