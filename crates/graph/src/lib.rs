//! Operator-graph IR for the paper's two ResBlocks, plus the pluggable
//! [`Executor`] layer that every forward path in the workspace runs
//! through.
//!
//! The paper's core claim is that **one** shared `s × 64` systolic array
//! executes both the MHA and FFN ResBlocks under a single Algorithm-1
//! schedule. This crate makes that "one dataflow, many backends" idea
//! first-class in software: the ResBlock dataflow is written down once
//! as a small graph of named-tensor operators ([`mha_graph`],
//! [`ffn_graph`], [`mha_cached_graph`]), and each backend — FP32
//! reference, INT8 datapath, KV-cached row decoding, and the
//! accelerator's command stream — is an [`Executor`] that interprets or
//! lowers the same graph:
//!
//! | Executor | Crate | Interprets the graph as |
//! |---|---|---|
//! | `FloatExec` | `transformer` | FP32 reference ops |
//! | `QuantExec` | `quantized` | bit-exact INT8/fixed-point ops |
//! | `RowExec` / `QuantRowExec` | `transformer` / `quantized` | cached-KV multi-row decode |
//! | `AccelExec` | `accel` | `isa::Command` streams + cycle counts |
//!
//! The non-negotiable invariant is **bit-identity**: every executor
//! produces exactly the bits its hand-rolled predecessor produced, so
//! the graph refactor can never silently change a decode, a BLEU score
//! or a cycle count. Differential tests in each crate (and at the
//! workspace root) enforce this.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod exec;
pub mod fuse;
mod graph;
mod op;
pub mod tally;

pub use exec::{Env, ExecStats, Executor};
pub use fuse::{fuse, fuse_if};
pub use graph::{
    ffn_graph, mha_cached_graph, mha_graph, ExecPlan, Graph, GraphConfig, GraphKind, Node, PlanStep,
};
pub use op::{Op, WeightId};
pub use tally::{fusion_tally, FusionTally};
