//! The ResBlock graphs: nodes over named tensors, builders, and the
//! slot-resolved execution plan.

use crate::op::{Op, WeightId};

/// The shape parameters a graph is built from — the subset of the model
/// configuration the two ResBlocks care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GraphConfig {
    /// Model width (`d_model`).
    pub d_model: usize,
    /// FFN hidden width (`d_ff`); unused by the MHA graphs.
    pub d_ff: usize,
    /// Number of attention heads; unused by the FFN graph.
    pub h: usize,
}

impl GraphConfig {
    /// Per-head width `d_model / h`.
    ///
    /// # Panics
    ///
    /// Panics if `h` is zero or does not divide `d_model`.
    pub fn d_k(&self) -> usize {
        assert!(self.h > 0, "h must be positive");
        assert_eq!(self.d_model % self.h, 0, "h must divide d_model");
        self.d_model / self.h
    }
}

/// Which ResBlock dataflow a graph encodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphKind {
    /// The full MHA ResBlock: project K/V from an input, Fig. 3a.
    Mha,
    /// The MHA ResBlock against **already projected** per-row K/V caches
    /// (the incremental-decode dataflow; K/V projections happen outside
    /// the graph when the cached rows are appended).
    MhaCached,
    /// The position-wise FFN ResBlock, Fig. 3b.
    Ffn,
}

/// One node: an operator applied to named inputs, producing one named
/// output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    /// The operator.
    pub op: Op,
    /// Head index for nodes inside a per-head group (`None` for the
    /// shared pre/post sections). Executors may fan head groups out
    /// across threads; nodes of one head are contiguous and heads appear
    /// in ascending order.
    pub head: Option<usize>,
    /// Names of the tensors this node consumes.
    pub inputs: Vec<String>,
    /// Name of the tensor this node produces (unique per graph).
    pub output: String,
}

/// A ResBlock dataflow: graph inputs, nodes in executable order, and the
/// designated output tensor.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// Which ResBlock this graph encodes.
    pub kind: GraphKind,
    /// Shape parameters the graph was built for.
    pub cfg: GraphConfig,
    /// Names of the tensors the caller must bind.
    pub inputs: Vec<String>,
    /// Nodes in dependency order (node `i` only reads graph inputs and
    /// outputs of nodes `< i`).
    pub nodes: Vec<Node>,
    /// Name of the graph's final output tensor.
    pub output: String,
}

impl Graph {
    /// Checks the dataflow invariants: single assignment, every input
    /// defined before use, the declared output produced by some node,
    /// and per-head groups contiguous in ascending head order.
    ///
    /// Builder-produced graphs always validate; this is for hand-built
    /// or truncated graphs.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violated invariant.
    pub fn validate(&self) {
        let mut defined: Vec<&str> = self.inputs.iter().map(String::as_str).collect();
        let mut last_head: Option<usize> = None;
        let mut heads_done = false;
        for node in &self.nodes {
            for input in &node.inputs {
                assert!(
                    defined.iter().any(|d| d == input),
                    "node output {:?} reads undefined tensor {input:?}",
                    node.output
                );
            }
            assert!(
                !defined.iter().any(|d| *d == node.output),
                "tensor {:?} assigned twice",
                node.output
            );
            defined.push(&node.output);
            match (node.head, last_head) {
                (Some(h), None) => {
                    assert!(!heads_done, "head groups must be contiguous");
                    assert_eq!(h, 0, "head groups must start at head 0");
                    last_head = Some(h);
                }
                (Some(h), Some(prev)) => {
                    assert!(
                        h == prev || h == prev + 1,
                        "head groups must be contiguous and ascending"
                    );
                    last_head = Some(h);
                }
                (None, Some(_)) => {
                    heads_done = true;
                    last_head = None;
                }
                (None, None) => {}
            }
        }
        assert!(
            defined.iter().any(|d| *d == self.output),
            "declared output {:?} is never produced",
            self.output
        );
    }

    /// A copy of this graph cut short at the node producing `output`
    /// (inclusive). Used e.g. to evaluate the pre-residual attention
    /// output without running the residual add and LayerNorm.
    ///
    /// # Panics
    ///
    /// Panics if no node produces `output`.
    pub fn truncated(&self, output: &str) -> Graph {
        let end = self
            .nodes
            .iter()
            .position(|n| n.output == output)
            .unwrap_or_else(|| panic!("no node produces {output:?}"));
        Graph {
            kind: self.kind,
            cfg: self.cfg,
            inputs: self.inputs.clone(),
            nodes: self.nodes[..=end].to_vec(),
            output: output.to_string(),
        }
    }

    /// Resolves tensor names to dense value slots: one slot per graph
    /// input and per node output, in that order. Executors walk
    /// [`ExecPlan::steps`] and index slots instead of comparing strings
    /// per node.
    ///
    /// # Panics
    ///
    /// Panics if the graph does not [`Graph::validate`].
    pub fn plan(&self) -> ExecPlan {
        self.validate();
        let mut slot_names: Vec<String> = self.inputs.clone();
        slot_names.extend(self.nodes.iter().map(|n| n.output.clone()));
        let slot_of = |name: &str, upto: usize| -> usize {
            slot_names[..upto]
                .iter()
                .position(|n| n == name)
                .expect("validated graph resolves every name")
        };
        let n_inputs = self.inputs.len();
        let steps = self
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| PlanStep {
                node: i,
                inputs: node
                    .inputs
                    .iter()
                    .map(|name| slot_of(name, n_inputs + i))
                    .collect(),
                output: n_inputs + i,
            })
            .collect();
        let output_slot = slot_of(&self.output, slot_names.len());
        ExecPlan {
            slot_names,
            steps,
            output_slot,
        }
    }
}

/// One executable step of an [`ExecPlan`]: which node to run and which
/// value slots it reads and writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanStep {
    /// Index into [`Graph::nodes`].
    pub node: usize,
    /// Slot indices of the node's inputs (same order as
    /// [`Node::inputs`]).
    pub inputs: Vec<usize>,
    /// Slot index the node's output is stored into.
    pub output: usize,
}

/// A name-resolved execution order for one graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecPlan {
    /// Slot index → tensor name (graph inputs first, then node outputs).
    pub slot_names: Vec<String>,
    /// Steps in graph-node order.
    pub steps: Vec<PlanStep>,
    /// Slot holding the graph's declared output.
    pub output_slot: usize,
}

/// Appends the per-head node group for head `i`, reading the named
/// query/key/value sources. The node order inside a group mirrors
/// Algorithm 1 lines 3–7 (`ProjectQ`, `ProjectK`, score tiles, softmax,
/// `ProjectV`, context), which is exactly what the ISA lowering relies
/// on.
fn push_head_group(nodes: &mut Vec<Node>, i: usize, q_src: &str, k_src: &str, v_src: &str) {
    let head = Some(i);
    nodes.push(Node {
        op: Op::SplitHeads,
        head,
        inputs: vec![q_src.into()],
        output: format!("q.{i}"),
    });
    nodes.push(Node {
        op: Op::SplitHeads,
        head,
        inputs: vec![k_src.into()],
        output: format!("k.{i}"),
    });
    nodes.push(Node {
        op: Op::HeadMatmul {
            transpose_rhs: true,
        },
        head,
        inputs: vec![format!("q.{i}"), format!("k.{i}")],
        output: format!("scores.{i}"),
    });
    nodes.push(Node {
        op: Op::ScaledMaskedSoftmax,
        head,
        inputs: vec![format!("scores.{i}")],
        output: format!("probs.{i}"),
    });
    nodes.push(Node {
        op: Op::SplitHeads,
        head,
        inputs: vec![v_src.into()],
        output: format!("v.{i}"),
    });
    nodes.push(Node {
        op: Op::HeadMatmul {
            transpose_rhs: false,
        },
        head,
        inputs: vec![format!("probs.{i}"), format!("v.{i}")],
        output: format!("p.{i}"),
    });
}

/// Appends the shared MHA tail: concat, output projection, residual add
/// (residual input first, matching the reference implementations), and
/// LayerNorm producing `"y"`.
fn push_mha_tail(nodes: &mut Vec<Node>, h: usize, residual: &str) {
    nodes.push(Node {
        op: Op::Concat,
        head: None,
        inputs: (0..h).map(|i| format!("p.{i}")).collect(),
        output: "p".into(),
    });
    nodes.push(Node {
        op: Op::Linear(WeightId::Wo),
        head: None,
        inputs: vec!["p".into()],
        output: "attn_out".into(),
    });
    nodes.push(Node {
        op: Op::Add,
        head: None,
        inputs: vec![residual.into(), "attn_out".into()],
        output: "g".into(),
    });
    nodes.push(Node {
        op: Op::LayerNorm,
        head: None,
        inputs: vec!["g".into()],
        output: "y".into(),
    });
}

/// The full MHA ResBlock graph (Fig. 3a / Algorithm 1 lines 1–13):
/// inputs `x_q`, `x_k`, `x_v`; output `y = LayerNorm(x_q + MHA(...))`.
/// In the Transformer `x_k` and `x_v` are always the same tensor
/// (Fig. 1); they are distinct graph inputs so the key and value
/// projections have explicit sources.
///
/// # Panics
///
/// Panics if `cfg.h` is zero or does not divide `cfg.d_model`.
pub fn mha_graph(cfg: &GraphConfig) -> Graph {
    let _ = cfg.d_k();
    let mut nodes = Vec::new();
    nodes.push(Node {
        op: Op::Linear(WeightId::Wq),
        head: None,
        inputs: vec!["x_q".into()],
        output: "q".into(),
    });
    nodes.push(Node {
        op: Op::Linear(WeightId::Wk),
        head: None,
        inputs: vec!["x_k".into()],
        output: "k".into(),
    });
    nodes.push(Node {
        op: Op::Linear(WeightId::Wv),
        head: None,
        inputs: vec!["x_v".into()],
        output: "v".into(),
    });
    for i in 0..cfg.h {
        push_head_group(&mut nodes, i, "q", "k", "v");
    }
    push_mha_tail(&mut nodes, cfg.h, "x_q");
    let g = Graph {
        kind: GraphKind::Mha,
        cfg: *cfg,
        inputs: vec!["x_q".into(), "x_k".into(), "x_v".into()],
        nodes,
        output: "y".into(),
    };
    g.validate();
    g
}

/// The cached-KV MHA ResBlock graph used by incremental decoding:
/// inputs `x` (one active row per session), `keys`/`vals` (per-row
/// projected caches); output `y`. The K/V projections are *not* part of
/// this graph — cache rows are projected once when appended, which is
/// the entire point of KV caching.
///
/// # Panics
///
/// Panics if `cfg.h` is zero or does not divide `cfg.d_model`.
pub fn mha_cached_graph(cfg: &GraphConfig) -> Graph {
    let _ = cfg.d_k();
    let mut nodes = vec![Node {
        op: Op::Linear(WeightId::Wq),
        head: None,
        inputs: vec!["x".into()],
        output: "q".into(),
    }];
    for i in 0..cfg.h {
        push_head_group(&mut nodes, i, "q", "keys", "vals");
    }
    push_mha_tail(&mut nodes, cfg.h, "x");
    let g = Graph {
        kind: GraphKind::MhaCached,
        cfg: *cfg,
        inputs: vec!["x".into(), "keys".into(), "vals".into()],
        nodes,
        output: "y".into(),
    };
    g.validate();
    g
}

/// The FFN ResBlock graph (Fig. 3b / Algorithm 1 lines 14–22): input
/// `x`; output `y = LayerNorm(x + ReLU(x W1 + b1) W2 + b2)`.
///
/// # Panics
///
/// Panics if `cfg.d_ff` is zero.
pub fn ffn_graph(cfg: &GraphConfig) -> Graph {
    assert!(cfg.d_ff > 0, "d_ff must be positive");
    let nodes = vec![
        Node {
            op: Op::Linear(WeightId::W1),
            head: None,
            inputs: vec!["x".into()],
            output: "pre".into(),
        },
        Node {
            op: Op::Relu,
            head: None,
            inputs: vec!["pre".into()],
            output: "hidden".into(),
        },
        Node {
            op: Op::Linear(WeightId::W2),
            head: None,
            inputs: vec!["hidden".into()],
            output: "ffn_out".into(),
        },
        Node {
            op: Op::Add,
            head: None,
            inputs: vec!["x".into(), "ffn_out".into()],
            output: "g".into(),
        },
        Node {
            op: Op::LayerNorm,
            head: None,
            inputs: vec!["g".into()],
            output: "y".into(),
        },
    ];
    let g = Graph {
        kind: GraphKind::Ffn,
        cfg: *cfg,
        inputs: vec!["x".into()],
        nodes,
        output: "y".into(),
    };
    g.validate();
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> GraphConfig {
        GraphConfig {
            d_model: 128,
            d_ff: 512,
            h: 2,
        }
    }

    #[test]
    fn mha_graph_validates_and_plans() {
        let g = mha_graph(&cfg());
        // 3 projections + 6 per head + concat/wo/add/ln
        assert_eq!(g.nodes.len(), 3 + 6 * 2 + 4);
        let plan = g.plan();
        assert_eq!(plan.steps.len(), g.nodes.len());
        assert_eq!(plan.slot_names[plan.output_slot], "y");
    }

    #[test]
    fn cached_graph_has_no_kv_projections() {
        let g = mha_cached_graph(&cfg());
        let projections = g
            .nodes
            .iter()
            .filter(|n| matches!(n.op, Op::Linear(WeightId::Wk | WeightId::Wv)))
            .count();
        assert_eq!(projections, 0);
        assert_eq!(g.nodes.len(), 1 + 6 * 2 + 4);
    }

    #[test]
    fn ffn_graph_shape() {
        let g = ffn_graph(&cfg());
        assert_eq!(g.nodes.len(), 5);
        assert_eq!(g.output, "y");
        assert!(matches!(g.nodes[0].op, Op::Linear(WeightId::W1)));
    }

    #[test]
    fn head_groups_are_contiguous_and_ordered() {
        let g = mha_graph(&cfg());
        let heads: Vec<Option<usize>> = g.nodes.iter().map(|n| n.head).collect();
        let first = heads.iter().position(|h| h.is_some()).unwrap();
        let last = heads.iter().rposition(|h| h.is_some()).unwrap();
        assert!(heads[..first].iter().all(|h| h.is_none()));
        assert!(heads[last + 1..].iter().all(|h| h.is_none()));
        let mut prev = 0usize;
        for h in heads[first..=last].iter().map(|h| h.unwrap()) {
            assert!(h == prev || h == prev + 1);
            prev = h;
        }
        assert_eq!(prev, cfg().h - 1);
    }

    #[test]
    fn truncated_graph_ends_at_requested_tensor() {
        let g = mha_graph(&cfg()).truncated("attn_out");
        assert_eq!(g.output, "attn_out");
        assert_eq!(g.nodes.last().unwrap().op, Op::Linear(WeightId::Wo));
        g.validate();
        let plan = g.plan();
        assert_eq!(plan.slot_names[plan.output_slot], "attn_out");
    }

    #[test]
    #[should_panic(expected = "never produced")]
    fn missing_output_rejected() {
        let mut g = ffn_graph(&cfg());
        g.output = "nonsense".into();
        g.validate();
    }

    #[test]
    #[should_panic(expected = "undefined tensor")]
    fn undefined_input_rejected() {
        let mut g = ffn_graph(&cfg());
        g.nodes[0].inputs[0] = "ghost".into();
        g.validate();
    }

    #[test]
    #[should_panic(expected = "assigned twice")]
    fn double_assignment_rejected() {
        let mut g = ffn_graph(&cfg());
        let out = g.nodes[0].output.clone();
        g.nodes[1].output = out;
        g.validate();
    }

    #[test]
    #[should_panic(expected = "no node produces")]
    fn truncating_at_unknown_tensor_panics() {
        let _ = ffn_graph(&cfg()).truncated("ghost");
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_head_split_rejected() {
        let _ = mha_graph(&GraphConfig {
            d_model: 100,
            d_ff: 0,
            h: 3,
        });
    }
}
