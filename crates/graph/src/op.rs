//! The operator vocabulary of the ResBlock graphs.

/// Identifies one of the six weight matrices a ResBlock owns. Executors
/// resolve a [`WeightId`] to their own parameter representation (FP32
/// `Linear`, INT8 `QLinear`, or a weight-memory panel on the
/// accelerator).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WeightId {
    /// MHA query projection `W_Q`.
    Wq,
    /// MHA key projection `W_K`.
    Wk,
    /// MHA value projection `W_V`.
    Wv,
    /// MHA output projection (`W_G` in the paper, `W^O` in Vaswani et
    /// al.).
    Wo,
    /// FFN first sublayer `W_1`.
    W1,
    /// FFN second sublayer `W_2`.
    W2,
}

/// One operator over named tensors.
///
/// Operators carry **dataflow** semantics only; every numeric detail
/// (FP32 vs INT8, requantization points, drain fusion) belongs to the
/// executor interpreting the node. Two conventions executors share:
///
/// * the *context* matmul (`HeadMatmul` with `transpose_rhs == false`)
///   is where the INT8 backends requantize the accumulator into `P`
///   codes — hardware does this in the systolic array's output drain
///   (Algorithm 1 line 7), so the graph has no separate requantize node;
/// * `Relu` and `Add` are *fused* ops on the accelerator (the ReLU block
///   and residual adders of Fig. 5 live on the drain path), so the ISA
///   lowering emits no commands for them.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Affine projection `y = x W + b` with the named weight.
    Linear(WeightId),
    /// The 64-column panel of the node's head (`head * d_k ..
    /// head * d_k + d_k`) — the Fig. 4 partitioning step that turns a
    /// full-width tensor into one head's view.
    SplitHeads,
    /// Per-head matmul: scores (`Q_i K_iᵀ`, `transpose_rhs == true`) or
    /// context (`probs × V_i`, `transpose_rhs == false`).
    HeadMatmul {
        /// When `true` the right operand is used transposed (`A Bᵀ`).
        transpose_rhs: bool,
    },
    /// Scale by `1/sqrt(d_k)`, apply the optional run-time mask, and
    /// softmax each row (Eq. (4); the hardware softmax module folds all
    /// three into one streaming pass).
    ScaledMaskedSoftmax,
    /// Reassemble per-head panels into a full-width tensor, in head
    /// order.
    Concat,
    /// Elementwise `max(0, x)`.
    Relu,
    /// Elementwise residual addition.
    Add,
    /// Row-wise layer normalization (Eq. (6)).
    LayerNorm,
    /// Fused `Linear` → `Relu` (produced by [`crate::fuse::fuse`], never
    /// by the builders): `y = max(0, x W + b)` with the ReLU applied in
    /// the GEMM drain while the accumulators are still hot — the
    /// pre-activation tensor of the unfused pair is never materialized.
    /// Bit-identical to running `Linear` then `Relu`.
    LinearRelu(WeightId),
    /// Fused `Linear` → residual `Add` (produced by [`crate::fuse::fuse`]):
    /// inputs `[linear_input, residual]`, `y = residual + (x W + b)` with
    /// the residual added in the GEMM drain — the sublayer-output tensor
    /// of the unfused pair is never materialized. Bit-identical to
    /// running `Linear` then `Add`.
    LinearAdd(WeightId),
}
