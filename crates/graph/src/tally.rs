//! Process-wide fusion tallies.
//!
//! Each [`crate::Executor`] reports per-run fusion counters in its
//! [`crate::ExecStats`], but the serving engine's decode path builds a
//! fresh short-lived executor per ResBlock pass, so those per-run stats
//! are gone before the engine can read them. Executors therefore also
//! add their fused-op counts to these monotonic process-wide counters
//! (relaxed atomics — same pattern as the `faults` crate's tallies),
//! and the engine records the per-step delta in its own stats.

use std::sync::atomic::{AtomicU64, Ordering};

static OPS_FUSED: AtomicU64 = AtomicU64::new(0);
static ELIDED_BYTES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the process-wide fusion counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionTally {
    /// Fused nodes executed since process start.
    pub ops_fused: u64,
    /// Bytes of intermediate tensors fusion never materialized.
    pub intermediates_elided_bytes: u64,
}

impl FusionTally {
    /// Counter-wise difference `self - earlier` (saturating, so a
    /// stale snapshot can never produce a wrap-around).
    pub fn since(&self, earlier: &FusionTally) -> FusionTally {
        FusionTally {
            ops_fused: self.ops_fused.saturating_sub(earlier.ops_fused),
            intermediates_elided_bytes: self
                .intermediates_elided_bytes
                .saturating_sub(earlier.intermediates_elided_bytes),
        }
    }
}

/// Adds `ops` fused nodes and `bytes` elided intermediate bytes to the
/// process-wide tally. Executors call this alongside their per-run
/// [`crate::ExecStats`] bumps; zero adds are skipped.
pub fn note_fused(ops: usize, bytes: usize) {
    if ops == 0 {
        return;
    }
    OPS_FUSED.fetch_add(ops as u64, Ordering::Relaxed);
    ELIDED_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
}

/// Reads the current process-wide tally.
pub fn fusion_tally() -> FusionTally {
    FusionTally {
        ops_fused: OPS_FUSED.load(Ordering::Relaxed),
        intermediates_elided_bytes: ELIDED_BYTES.load(Ordering::Relaxed),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tally_accumulates_and_since_is_saturating() {
        let t0 = fusion_tally();
        note_fused(2, 1024);
        note_fused(0, 999); // zero ops: skipped entirely
        let t1 = fusion_tally();
        let d = t1.since(&t0);
        assert_eq!(d.ops_fused, 2);
        assert_eq!(d.intermediates_elided_bytes, 1024);
        assert_eq!(t0.since(&t1).ops_fused, 0, "saturates, never wraps");
    }
}
