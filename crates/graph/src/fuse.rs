//! Graph-rewrite operator fusion.
//!
//! The paper's accelerator never spills intermediates between the GEMM
//! and its trailing elementwise ops: ReLU and the residual adders live
//! on the systolic array's drain path (Fig. 5), so `x W + b`, the
//! activation, and the residual addition are one streaming pass. The
//! software executors, in contrast, used to materialize a full tensor
//! between every [`Op`]. This pass closes that gap **once, on the
//! graph**, so every executor — FP32 interpreter, INT8 interpreter, the
//! decode hot paths, and the accelerator lowering — inherits the same
//! rewrite instead of hand-fusing per backend.
//!
//! # Pattern table
//!
//! | pattern                          | rewrite                        | elided tensor        |
//! |----------------------------------|--------------------------------|----------------------|
//! | `Linear(w)` → `Relu`             | [`Op::LinearRelu`]`(w)`        | the pre-activation   |
//! | `Linear(w)` → `Add` (either arm) | [`Op::LinearAdd`]`(w)`         | the sublayer output  |
//!
//! In the builder graphs this fuses `W1`→ReLU (eliding `"pre"`),
//! `Wo`→Add (eliding `"attn_out"`), and `W2`→Add (eliding `"ffn_out"`)
//! — two-plus intermediate tensors per ResBlock, three per decoder
//! layer pass.
//!
//! The third fusion family from the plan — dequant→requant pairs on
//! adjacent INT8 edges — needs no rewrite here: the quantizer already
//! arranges the residual edges in a **shared scale** (`Wo` requantizes
//! into the query-input domain, `W2` into the FFN-input domain), so the
//! dequant→requant composition on those edges is the *identity* rescale
//! and the executors' integer residual add is the already-elided form.
//! The `fixedmath` property suite pins that identity bit-for-bit; a
//! non-identity rescale composition would double-round and is therefore
//! **not** a legal fusion.
//!
//! # Legality rules
//!
//! A `Linear` producer is fused into its consumer only when:
//!
//! 1. the producer's output has **exactly one consumer** (the candidate
//!    node) — otherwise the intermediate is observable;
//! 2. the producer's output is **not the graph's declared output**
//!    (truncated graphs expose intermediates on purpose);
//! 3. both nodes sit **outside the per-head groups** (`head == None`),
//!    so head-group contiguity is untouched.
//!
//! The fused node keeps the *consumer's* output name, so downstream
//! references ("hidden", "g") and executor taps keep resolving; only
//! the producer's name disappears. Fused and unfused graphs are
//! **bit-identical** under every executor (the differential suite
//! `tests/fusion_identity.rs` pins all five), so fusion is enabled by
//! default with `ACCEL_NO_FUSE=1` as the escape hatch — gating happens
//! at the block-level call sites via `tensor::envcfg::fuse_enabled`,
//! and [`fuse_if`] returns the input graph byte-for-byte when disabled.

use crate::graph::{Graph, Node};
use crate::op::Op;
use std::collections::HashMap;

/// Applies the fusion rewrite and returns the fused graph. Graphs with
/// no matching pattern come back equal to the input. The result always
/// [`Graph::validate`]s.
pub fn fuse(g: &Graph) -> Graph {
    // Use counts per tensor name; the declared output gets an extra use
    // so it can never be elided (legality rule 2).
    let mut uses: HashMap<&str, usize> = HashMap::new();
    for node in &g.nodes {
        for input in &node.inputs {
            *uses.entry(input.as_str()).or_insert(0) += 1;
        }
    }
    *uses.entry(g.output.as_str()).or_insert(0) += 1;
    // Producer index per tensor name (node outputs only; graph inputs
    // have no producer and therefore never fuse).
    let producer: HashMap<&str, usize> = g
        .nodes
        .iter()
        .enumerate()
        .map(|(i, n)| (n.output.as_str(), i))
        .collect();

    // A producer index is fusable into a consumer when it is a
    // head-less Linear whose output feeds exactly that consumer.
    let fusable_linear = |name: &str| -> Option<usize> {
        let &i = producer.get(name)?;
        let p = &g.nodes[i];
        match p.op {
            Op::Linear(_) if p.head.is_none() && uses[name] == 1 => Some(i),
            _ => None,
        }
    };

    let mut drop = vec![false; g.nodes.len()];
    let mut rewritten: Vec<Node> = Vec::with_capacity(g.nodes.len());
    for node in &g.nodes {
        let replacement = match node.op {
            Op::Relu if node.head.is_none() && node.inputs.len() == 1 => {
                fusable_linear(&node.inputs[0]).map(|i| {
                    drop[i] = true;
                    let Op::Linear(w) = g.nodes[i].op else {
                        unreachable!("fusable_linear only returns Linear producers")
                    };
                    Node {
                        op: Op::LinearRelu(w),
                        head: None,
                        inputs: g.nodes[i].inputs.clone(),
                        output: node.output.clone(),
                    }
                })
            }
            Op::Add if node.head.is_none() && node.inputs.len() == 2 => {
                // The builders put the sublayer in arm 1 and the
                // residual in arm 0; try that orientation first so the
                // rewrite is deterministic when both arms would match.
                [1usize, 0]
                    .into_iter()
                    .find_map(|arm| fusable_linear(&node.inputs[arm]).map(|i| (arm, i)))
                    .map(|(arm, i)| {
                        drop[i] = true;
                        let Op::Linear(w) = g.nodes[i].op else {
                            unreachable!("fusable_linear only returns Linear producers")
                        };
                        Node {
                            op: Op::LinearAdd(w),
                            head: None,
                            inputs: vec![
                                g.nodes[i].inputs[0].clone(),
                                node.inputs[1 - arm].clone(),
                            ],
                            output: node.output.clone(),
                        }
                    })
            }
            _ => None,
        };
        rewritten.push(replacement.unwrap_or_else(|| node.clone()));
    }

    let nodes: Vec<Node> = rewritten
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !drop[*i])
        .map(|(_, n)| n)
        .collect();
    let fused = Graph {
        kind: g.kind,
        cfg: g.cfg,
        inputs: g.inputs.clone(),
        nodes,
        output: g.output.clone(),
    };
    fused.validate();
    fused
}

/// [`fuse`] gated on a flag: the fused graph when `enabled`, the input
/// graph **byte-for-byte** otherwise (the `ACCEL_NO_FUSE=1` escape
/// hatch). Callers pass `tensor::envcfg::fuse_enabled()`.
pub fn fuse_if(g: Graph, enabled: bool) -> Graph {
    if enabled {
        fuse(&g)
    } else {
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{ffn_graph, mha_cached_graph, mha_graph, GraphConfig};
    use crate::op::WeightId;

    fn cfg() -> GraphConfig {
        GraphConfig {
            d_model: 128,
            d_ff: 512,
            h: 2,
        }
    }

    #[test]
    fn ffn_fuses_relu_and_residual() {
        let g = fuse(&ffn_graph(&cfg()));
        let ops: Vec<Op> = g.nodes.iter().map(|n| n.op).collect();
        assert_eq!(
            ops,
            vec![
                Op::LinearRelu(WeightId::W1),
                Op::LinearAdd(WeightId::W2),
                Op::LayerNorm
            ]
        );
        // Downstream names survive; the elided intermediates are gone.
        assert_eq!(g.nodes[0].output, "hidden");
        assert_eq!(g.nodes[1].output, "g");
        assert_eq!(g.nodes[1].inputs, vec!["hidden".to_string(), "x".into()]);
        assert!(g.nodes.iter().all(|n| n.output != "pre"));
        assert!(g.nodes.iter().all(|n| n.output != "ffn_out"));
    }

    #[test]
    fn mha_fuses_output_projection_into_residual() {
        for g in [mha_graph(&cfg()), mha_cached_graph(&cfg())] {
            let residual = g.inputs[0].clone();
            let fused = fuse(&g);
            assert_eq!(fused.nodes.len(), g.nodes.len() - 1);
            let wo = fused
                .nodes
                .iter()
                .find(|n| n.op == Op::LinearAdd(WeightId::Wo))
                .expect("Wo fused into the residual add");
            assert_eq!(wo.inputs, vec!["p".to_string(), residual]);
            assert_eq!(wo.output, "g");
            assert!(fused.nodes.iter().all(|n| n.output != "attn_out"));
            // Q/K/V projections feed SplitHeads, not Relu/Add: untouched.
            assert!(fused.nodes.iter().any(|n| n.op == Op::Linear(WeightId::Wq)));
        }
    }

    #[test]
    fn truncated_output_is_never_elided() {
        // "attn_out" is the declared output of the truncated graph, so
        // the Wo Linear must survive even though the Add is gone with it.
        let g = mha_graph(&cfg()).truncated("attn_out");
        let fused = fuse(&g);
        assert!(fused
            .nodes
            .iter()
            .any(|n| n.op == Op::Linear(WeightId::Wo) && n.output == "attn_out"));
    }

    #[test]
    fn multi_consumer_linear_is_not_fused() {
        // Give the FFN's pre-activation a second consumer; fusing W1
        // would then erase an observable tensor.
        let mut g = ffn_graph(&cfg());
        let ln = g.nodes.len() - 1;
        g.nodes[ln].inputs.push("pre".into());
        let fused = fuse(&g);
        assert!(fused.nodes.iter().any(|n| n.op == Op::Linear(WeightId::W1)));
        assert!(fused
            .nodes
            .iter()
            .all(|n| n.op != Op::LinearRelu(WeightId::W1)));
        // The W2 → Add pair is still independently fusable.
        assert!(fused
            .nodes
            .iter()
            .any(|n| n.op == Op::LinearAdd(WeightId::W2)));
    }

    #[test]
    fn fuse_is_idempotent_and_fuse_if_is_an_escape_hatch() {
        let g = ffn_graph(&cfg());
        let once = fuse(&g);
        assert_eq!(fuse(&once), once);
        assert_eq!(fuse_if(g.clone(), false), g);
        assert_eq!(fuse_if(g.clone(), true), once);
    }

    #[test]
    fn fused_graphs_plan() {
        for g in [
            fuse(&mha_graph(&cfg())),
            fuse(&mha_cached_graph(&cfg())),
            fuse(&ffn_graph(&cfg())),
        ] {
            let plan = g.plan();
            assert_eq!(plan.steps.len(), g.nodes.len());
            assert_eq!(plan.slot_names[plan.output_slot], "y");
        }
    }
}
