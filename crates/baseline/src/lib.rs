//! Comparison baselines for Table III.
//!
//! * [`gpu`] — a calibrated latency model of the paper's GPU baseline
//!   (Transformer base on an NVIDIA V100 through PyTorch, batch 1,
//!   `s = 64`). At batch 1 the GPU is *framework/launch-overhead
//!   dominated*: the kernel-heavy MHA ResBlock pays ~21 per-op
//!   overheads while the GEMM-heavy FFN pays only ~6 — which is exactly
//!   why the paper measures a 14.6× speed-up on MHA but only 3.4× on
//!   FFN. The model makes that mechanism explicit and is calibrated to
//!   reproduce the two published latencies.
//! * [`cpu`] — a measured (not modelled) single-thread CPU execution of
//!   the FP32 reference blocks, as a sanity floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cpu;
pub mod gpu;

pub use gpu::GpuModel;
