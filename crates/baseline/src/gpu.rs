//! Calibrated V100/PyTorch latency model.
//!
//! The paper measures its GPU baseline with the reference PyTorch
//! implementation (`jadore801120/attention-is-all-you-need-pytorch`) on
//! an NVIDIA V100 at batch 1, `s = 64`:
//!
//! | layer | GPU latency |
//! |---|---|
//! | MHA ResBlock | 1557.8 µs |
//! | FFN ResBlock | 713.4 µs |
//!
//! We model each ResBlock as its framework **operator trace** — every
//! PyTorch op dispatched (linear, view, transpose, masked_fill,
//! softmax, dropout, …) — with
//!
//! `latency = n_ops · overhead + FLOPs / (peak · batch1_efficiency)`.
//!
//! Solving the two published latencies for the two free constants gives
//! `overhead = 66.18 µs` per op and `efficiency = 5.41 %` of the V100's
//! 15.7 TFLOP/s FP32 peak — both squarely in the plausible range for
//! 2018-era PyTorch at batch 1. The model then *reproduces Table III by
//! construction at the calibration point* and extrapolates the
//! overhead-vs-compute crossover to other sequence lengths and model
//! sizes.

use serde::Serialize;
use transformer::config::ModelConfig;

/// One dispatched framework operation.
#[derive(Debug, Clone, Serialize)]
pub struct GpuOp {
    /// Operation name (mirrors the PyTorch trace).
    pub name: String,
    /// Floating-point operations executed on the device (2 × MACs for
    /// GEMMs; elementwise ops are counted but compute-negligible).
    pub flops: u64,
}

/// An operator trace of one layer.
#[derive(Debug, Clone, Serialize)]
pub struct OpTrace {
    /// Layer name.
    pub layer: String,
    /// Dispatched operations in execution order.
    pub ops: Vec<GpuOp>,
}

impl OpTrace {
    /// Number of dispatched operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total device FLOPs.
    pub fn total_flops(&self) -> u64 {
        self.ops.iter().map(|o| o.flops).sum()
    }
}

fn op(name: &str, flops: u64) -> GpuOp {
    GpuOp {
        name: name.into(),
        flops,
    }
}

/// The operator trace of the MHA ResBlock in the reference PyTorch
/// implementation (21 dispatched ops at batch 1).
pub fn mha_trace(cfg: &ModelConfig, s: usize) -> OpTrace {
    let (s64, h, dm, dk) = (s as u64, cfg.h as u64, cfg.d_model as u64, cfg.d_k() as u64);
    let proj = 2 * s64 * dm * dm; // full d_model x d_model linear
    let elem = s64 * dm; // elementwise over the activations
    let scores = 2 * s64 * s64 * dk * h;
    let ops = vec![
        op("linear_q", proj),
        op("linear_k", proj),
        op("linear_v", proj),
        op("view_q", 0),
        op("view_k", 0),
        op("view_v", 0),
        op("transpose_q", 0),
        op("transpose_k", 0),
        op("transpose_v", 0),
        op("div_sqrt_dk", s64 * s64 * h),
        op("bmm_qk", scores),
        op("masked_fill", s64 * s64 * h),
        op("softmax", 5 * s64 * s64 * h),
        op("dropout", s64 * s64 * h),
        op("bmm_av", scores),
        op("transpose_out", 0),
        op("reshape_concat", 0),
        op("linear_fc", proj),
        op("dropout_fc", elem),
        op("residual_add", elem),
        op("layer_norm", 8 * elem),
    ];
    OpTrace {
        layer: "MHA ResBlock".into(),
        ops,
    }
}

/// The operator trace of the FFN ResBlock (6 dispatched ops).
pub fn ffn_trace(cfg: &ModelConfig, s: usize) -> OpTrace {
    let (s64, dm, df) = (s as u64, cfg.d_model as u64, cfg.d_ff as u64);
    let elem = s64 * dm;
    let ops = vec![
        op("linear_w1", 2 * s64 * dm * df),
        op("relu", s64 * df),
        op("linear_w2", 2 * s64 * df * dm),
        op("dropout", elem),
        op("residual_add", elem),
        op("layer_norm", 8 * elem),
    ];
    OpTrace {
        layer: "FFN ResBlock".into(),
        ops,
    }
}

/// The calibrated GPU latency model.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct GpuModel {
    /// Framework dispatch + launch overhead per operation (µs).
    pub per_op_overhead_us: f64,
    /// Device peak FP32 throughput (FLOP/s).
    pub peak_flops: f64,
    /// Achieved fraction of peak at batch 1 (tiny GEMMs).
    pub batch1_efficiency: f64,
}

impl GpuModel {
    /// The V100/PyTorch baseline, calibrated to the paper's two
    /// published latencies (see module docs for the derivation).
    pub fn v100_pytorch() -> Self {
        Self {
            per_op_overhead_us: 66.179,
            peak_flops: 15.7e12,
            batch1_efficiency: 0.054_052,
        }
    }

    /// Predicted latency of an operator trace, in microseconds.
    pub fn latency_us(&self, trace: &OpTrace) -> f64 {
        let overhead = trace.op_count() as f64 * self.per_op_overhead_us;
        let compute = trace.total_flops() as f64 / (self.peak_flops * self.batch1_efficiency) * 1e6;
        overhead + compute
    }

    /// Fraction of the predicted latency spent in framework overhead.
    pub fn overhead_fraction(&self, trace: &OpTrace) -> f64 {
        let total = self.latency_us(trace);
        trace.op_count() as f64 * self.per_op_overhead_us / total
    }

    /// Modelled GEMM efficiency at batch size `b`: tiny GEMMs gain
    /// near-linearly from batching until the device saturates around
    /// 60% of peak (a typical fp32 GEMM ceiling). **Assumption, not a
    /// measurement** — used only for the qualitative batch-crossover
    /// extension (the paper's comparison is strictly batch 1).
    pub fn efficiency_at_batch(&self, batch: usize) -> f64 {
        (self.batch1_efficiency * (batch as f64).powf(0.85)).min(0.60)
    }

    /// Predicted per-sentence latency at batch size `b`: overhead is
    /// paid once per op regardless of batch, compute scales with batch
    /// but amortises over the `b` sentences.
    ///
    /// # Panics
    ///
    /// Panics if `batch == 0`.
    pub fn latency_us_per_sentence(&self, trace: &OpTrace, batch: usize) -> f64 {
        assert!(batch > 0, "batch must be positive");
        let overhead = trace.op_count() as f64 * self.per_op_overhead_us;
        let compute = trace.total_flops() as f64 * batch as f64
            / (self.peak_flops * self.efficiency_at_batch(batch))
            * 1e6;
        (overhead + compute) / batch as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ModelConfig {
        ModelConfig::transformer_base()
    }

    #[test]
    fn calibration_reproduces_table3_gpu_latencies() {
        let m = GpuModel::v100_pytorch();
        let mha = m.latency_us(&mha_trace(&base(), 64));
        let ffn = m.latency_us(&ffn_trace(&base(), 64));
        assert!((mha - 1557.8).abs() < 2.0, "MHA {mha}");
        assert!((ffn - 713.4).abs() < 2.0, "FFN {ffn}");
    }

    #[test]
    fn mha_is_overhead_dominated_ffn_less_so() {
        let m = GpuModel::v100_pytorch();
        let mha_frac = m.overhead_fraction(&mha_trace(&base(), 64));
        let ffn_frac = m.overhead_fraction(&ffn_trace(&base(), 64));
        assert!(mha_frac > 0.85, "MHA overhead fraction {mha_frac}");
        assert!(ffn_frac < 0.60, "FFN overhead fraction {ffn_frac}");
    }

    #[test]
    fn op_counts_match_reference_implementation() {
        assert_eq!(mha_trace(&base(), 64).op_count(), 21);
        assert_eq!(ffn_trace(&base(), 64).op_count(), 6);
    }

    #[test]
    fn gemm_flops_match_analysis_crate() {
        let t = mha_trace(&base(), 64);
        let macs = accel::analysis::mha_macs(&base(), 64);
        let gemm_flops: u64 = t
            .ops
            .iter()
            .filter(|o| o.name.starts_with("linear") || o.name.starts_with("bmm"))
            .map(|o| o.flops)
            .sum();
        assert_eq!(gemm_flops, 2 * macs.total());
        let t = ffn_trace(&base(), 64);
        let gemm_flops: u64 = t
            .ops
            .iter()
            .filter(|o| o.name.starts_with("linear"))
            .map(|o| o.flops)
            .sum();
        assert_eq!(gemm_flops, 2 * accel::analysis::ffn_macs(&base(), 64));
    }

    #[test]
    fn compute_term_grows_with_sequence_length() {
        let m = GpuModel::v100_pytorch();
        let short = m.latency_us(&ffn_trace(&base(), 16));
        let long = m.latency_us(&ffn_trace(&base(), 512));
        assert!(long > short * 3.0, "{short} -> {long}");
        // overhead fraction falls as compute grows
        assert!(
            m.overhead_fraction(&ffn_trace(&base(), 512))
                < m.overhead_fraction(&ffn_trace(&base(), 16))
        );
    }

    #[test]
    fn batch_one_batched_model_degenerates_to_calibration() {
        let m = GpuModel::v100_pytorch();
        let t = mha_trace(&base(), 64);
        assert!((m.latency_us_per_sentence(&t, 1) - m.latency_us(&t)).abs() < 1e-9);
    }

    #[test]
    fn batching_amortises_overhead() {
        let m = GpuModel::v100_pytorch();
        let t = mha_trace(&base(), 64);
        let b1 = m.latency_us_per_sentence(&t, 1);
        let b64 = m.latency_us_per_sentence(&t, 64);
        assert!(
            b64 < b1 / 10.0,
            "batch 64 should crush per-sentence cost: {b64} vs {b1}"
        );
        // efficiency saturates
        assert!(m.efficiency_at_batch(4096) <= 0.60);
        assert!(m.efficiency_at_batch(2) > m.efficiency_at_batch(1));
    }

    #[test]
    fn bigger_models_shift_toward_compute() {
        let m = GpuModel::v100_pytorch();
        let big = ModelConfig::transformer_big();
        assert!(
            m.overhead_fraction(&mha_trace(&big, 64))
                < m.overhead_fraction(&mha_trace(&base(), 64))
        );
    }
}
