//! Measured CPU baseline: wall-clock timing of the FP32 reference
//! ResBlocks on the host. Unlike [`crate::gpu`], nothing here is
//! modelled — this is an actual execution, useful as a floor in the
//! comparison tables and as the workload for Criterion benches.

use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;
use transformer::config::ModelConfig;
use transformer::ffn::FfnResBlock;
use transformer::mha::MhaResBlock;

/// A measured latency sample.
#[derive(Debug, Clone, Copy)]
pub struct CpuMeasurement {
    /// Best-of-N wall time.
    pub best: Duration,
    /// Mean wall time.
    pub mean: Duration,
    /// Number of timed iterations.
    pub iters: u32,
}

fn measure(mut f: impl FnMut(), iters: u32) -> CpuMeasurement {
    assert!(iters > 0, "need at least one iteration");
    // warm-up
    f();
    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let t0 = Instant::now();
        f();
        let dt = t0.elapsed();
        best = best.min(dt);
        total += dt;
    }
    CpuMeasurement {
        best,
        mean: total / iters,
        iters,
    }
}

/// Measures the FP32 MHA ResBlock at sequence length `s`.
pub fn measure_mha(cfg: &ModelConfig, s: usize, iters: u32) -> CpuMeasurement {
    let mut rng = StdRng::seed_from_u64(0x6A11);
    let mut block = MhaResBlock::new(cfg, &mut rng);
    let x = tensor::init::normal(&mut rng, s, cfg.d_model, 1.0);
    measure(
        move || {
            std::hint::black_box(block.forward(&x, &x, &x, None));
        },
        iters,
    )
}

/// Measures the FP32 FFN ResBlock at sequence length `s`.
pub fn measure_ffn(cfg: &ModelConfig, s: usize, iters: u32) -> CpuMeasurement {
    let mut rng = StdRng::seed_from_u64(0xFF17);
    let mut block = FfnResBlock::new(cfg, &mut rng);
    let x = tensor::init::normal(&mut rng, s, cfg.d_model, 1.0);
    measure(
        move || {
            std::hint::black_box(block.forward(&x));
        },
        iters,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurements_are_positive_and_ordered() {
        let cfg = ModelConfig::tiny_for_tests();
        let m = measure_mha(&cfg, 8, 3);
        assert!(m.best > Duration::ZERO);
        assert!(m.mean >= m.best);
        assert_eq!(m.iters, 3);
    }

    #[test]
    fn ffn_measurement_works() {
        let cfg = ModelConfig::tiny_for_tests();
        let m = measure_ffn(&cfg, 8, 3);
        assert!(m.best > Duration::ZERO);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_iters_rejected() {
        let _ = measure(|| {}, 0);
    }
}
