//! Property-based tests of the INT8 datapath: ordering, invariance and
//! error-bound contracts of the hardware softmax and LayerNorm.

use fixedmath::quant::QuantParams;
use proptest::prelude::*;
use quantized::layernorm::HwLayerNorm;
use quantized::softmax::{scaled_masked_softmax, SoftmaxMode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tensor::Mat;

fn random_acc(seed: u64, rows: usize, cols: usize, mag: i32) -> Mat<i32> {
    let mut rng = StdRng::seed_from_u64(seed);
    Mat::from_fn(rows, cols, |_, _| rng.random_range(-mag..=mag))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn softmax_preserves_score_ordering_within_rows(
        s in 2usize..24,
        seed in 0u64..1000,
    ) {
        // Higher score -> probability code at least as large (monotone
        // pipeline: requant, exp, shared max/ln per row are monotone).
        let d = random_acc(seed, s, s, 90_000);
        let p = scaled_masked_softmax(&d, 6e-5, 64, None, SoftmaxMode::Hardware);
        for r in 0..s {
            for a in 0..s {
                for b in 0..s {
                    if d[(r, a)] > d[(r, b)] {
                        prop_assert!(
                            p[(r, a)] >= p[(r, b)],
                            "row {r}: score {} > {} but prob {} < {}",
                            d[(r, a)], d[(r, b)], p[(r, a)], p[(r, b)]
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn softmax_row_shift_invariance(s in 2usize..16, seed in 0u64..500, shift in 1i32..30_000) {
        // Adding a constant to every score accumulator of a row must not
        // change the output by more than 1 code (the log-sum-exp trick's
        // whole point). Exact invariance is broken only by the fx
        // requantization of the shifted inputs.
        let d = random_acc(seed, s, s, 60_000);
        let shifted = d.map(|&x| x + shift);
        let p0 = scaled_masked_softmax(&d, 5e-5, 64, None, SoftmaxMode::Hardware);
        let p1 = scaled_masked_softmax(&shifted, 5e-5, 64, None, SoftmaxMode::Hardware);
        for (a, b) in p0.as_slice().iter().zip(p1.as_slice()) {
            prop_assert!((*a as i32 - *b as i32).abs() <= 1, "{a} vs {b}");
        }
    }

    #[test]
    fn softmax_mask_only_removes_probability(s in 2usize..16, seed in 0u64..500) {
        // Masking a column cannot *decrease* the other columns' codes
        // by more than the approximation jitter.
        let d = random_acc(seed, s, s, 60_000);
        let mask = Mat::from_fn(s, s, |_, j| j == 0);
        let p_full = scaled_masked_softmax(&d, 5e-5, 64, None, SoftmaxMode::Hardware);
        let p_masked = scaled_masked_softmax(&d, 5e-5, 64, Some(&mask), SoftmaxMode::Hardware);
        for r in 0..s {
            prop_assert_eq!(p_masked[(r, 0)], 0);
            for c in 1..s {
                prop_assert!(
                    p_masked[(r, c)] as i32 >= p_full[(r, c)] as i32 - 2,
                    "({r},{c}): masked {} << full {}",
                    p_masked[(r, c)], p_full[(r, c)]
                );
            }
        }
    }

    #[test]
    fn layernorm_output_rows_are_normalized(
        d_pow in 3u32..7,
        seed in 0u64..1000,
    ) {
        let d = 1usize << d_pow;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Mat::from_fn(4, d, |_, _| rng.random_range(-220..220i32));
        let out_scale = QuantParams::new(1.0 / 40.0);
        let ln = HwLayerNorm::from_f32(
            &vec![1.0f32; d],
            &vec![0.0f32; d],
            QuantParams::new(0.02),
            out_scale,
        );
        let y = ln.forward(&g);
        for r in 0..4 {
            let vals: Vec<f64> = y.row(r).iter().map(|&c| c as f64 / 40.0).collect();
            let mean: f64 = vals.iter().sum::<f64>() / d as f64;
            let var: f64 = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / d as f64;
            prop_assert!(mean.abs() < 0.1, "row {r} mean {mean}");
            // variance ~1 within fixed-point error (unless the row was
            // nearly constant, where saturation effects dominate)
            let spread = g.row(r).iter().max().unwrap() - g.row(r).iter().min().unwrap();
            if spread > 20 {
                prop_assert!((var - 1.0).abs() < 0.2, "row {r} var {var}");
            }
        }
    }

    #[test]
    fn layernorm_is_shift_invariant_in_codes(
        seed in 0u64..1000,
        shift in -60i32..60,
    ) {
        let d = 32usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Mat::from_fn(2, d, |_, _| rng.random_range(-120..120i32));
        let g_shifted = g.map(|&x| x + shift);
        let ln = HwLayerNorm::from_f32(
            &vec![1.2f32; d],
            &vec![0.1f32; d],
            QuantParams::new(0.02),
            QuantParams::new(0.03),
        );
        let a = ln.forward(&g);
        let b = ln.forward(&g_shifted);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            prop_assert!((*x as i32 - *y as i32).abs() <= 1, "{x} vs {y}");
        }
    }

    #[test]
    fn layernorm_gamma_scaling_scales_output(seed in 0u64..500) {
        let d = 16usize;
        let mut rng = StdRng::seed_from_u64(seed);
        let g = Mat::from_fn(1, d, |_, _| rng.random_range(-100..100i32));
        let in_s = QuantParams::new(0.02);
        let out_s = QuantParams::new(0.05);
        let ln1 = HwLayerNorm::from_f32(&vec![1.0f32; d], &vec![0.0f32; d], in_s, out_s);
        let ln2 = HwLayerNorm::from_f32(&vec![2.0f32; d], &vec![0.0f32; d], in_s, out_s);
        let y1 = ln1.forward(&g);
        let y2 = ln2.forward(&g);
        for (a, b) in y1.as_slice().iter().zip(y2.as_slice()) {
            let doubled = (2 * *a as i32).clamp(-127, 127);
            prop_assert!((doubled - *b as i32).abs() <= 2, "{a}*2 vs {b}");
        }
    }
}
