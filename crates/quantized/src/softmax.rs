//! The scaled masked-softmax module (Eq. (4), Fig. 6).
//!
//! The hardware pipeline has four stages per output column:
//!
//! 1. scale the score by `1/sqrt(d_k)` (a `>> 3` when `d_k = 64`) and
//!    track the per-row maximum as columns stream in;
//! 2. EXP unit on `x - max`, accumulating the row sum;
//! 3. LN unit on the sum (the log-sum-exp trick of Eq. (5), which
//!    removes the divider);
//! 4. EXP unit on `x - max - ln(sum)`, producing the probability.
//!
//! Masked entries (`M(i,j) = 1`) are excluded from the maximum and the
//! sum and output exactly zero.

use fixedmath::explog::{exp_unit, ln_unit};
use fixedmath::fx::{FRAC, ONE};
use fixedmath::quant::{QuantParams, Requantizer};
use fixedmath::sat::sat_i8;
use tensor::Mat;

/// Which softmax implementation a quantized block uses — the two steps
/// of the paper's Section V-A quantization study.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SoftmaxMode {
    /// INT8 datapath everywhere, but softmax internals in FP32
    /// (quantization step one; BLEU 23.48 in the paper).
    Fp32,
    /// The shift-add hardware pipeline of Fig. 6 (quantization step two;
    /// BLEU 23.57 in the paper).
    Hardware,
}

/// The fixed scale of softmax probability codes: `1/127` (probabilities
/// in `[0, 1]` map to codes `0..=127`).
pub fn prob_scale() -> QuantParams {
    QuantParams::new(1.0 / 127.0)
}

/// Scaled masked-softmax over score *accumulators*.
///
/// `d_acc` holds raw `i32` accumulators of `Q_i K_i^T` with real scale
/// `d_scale` (= `s_q * s_k`); `d_k` is the head width (64 in every
/// Table-I config, making the scale stage the paper's `>> 3`; other
/// widths fold `1/sqrt(d_k)` into the input requantizer). Returns
/// probability codes with scale [`prob_scale`].
///
/// # Panics
///
/// Panics if the mask shape differs from `d_acc` or `d_k == 0`.
///
/// # Example
///
/// ```
/// use quantized::softmax::{scaled_masked_softmax, SoftmaxMode};
/// let d = tensor::Mat::from_vec(1, 2, vec![50_000i32, 0]).unwrap();
/// let p = scaled_masked_softmax(&d, 1e-3, 64, None, SoftmaxMode::Hardware);
/// assert!(p[(0, 0)] > p[(0, 1)]); // higher score, higher probability
/// ```
pub fn scaled_masked_softmax(
    d_acc: &Mat<i32>,
    d_scale: f32,
    d_k: usize,
    mask: Option<&Mat<bool>>,
    mode: SoftmaxMode,
) -> Mat<i8> {
    assert!(d_k > 0, "d_k must be positive");
    if let Some(m) = mask {
        assert_eq!(m.shape(), d_acc.shape(), "mask shape mismatch");
    }
    match mode {
        SoftmaxMode::Hardware => hw_softmax(d_acc, d_scale, d_k, mask),
        SoftmaxMode::Fp32 => fp32_softmax(d_acc, d_scale, d_k, mask),
    }
}

fn hw_softmax(d_acc: &Mat<i32>, d_scale: f32, d_k: usize, mask: Option<&Mat<bool>>) -> Mat<i8> {
    let (rows, cols) = d_acc.shape();
    // Stage 0: accumulator -> Q.12 fixed point, with 1/sqrt(d_k) folded
    // in. For d_k = 64 this ratio is exactly d_scale * 2^12 / 8, i.e. the
    // paper's ">> 3" after scale alignment.
    let ratio = d_scale as f64 / (d_k as f64).sqrt() * (1i64 << FRAC) as f64;
    let to_fx = Requantizer::from_ratio(ratio);
    let mut out = Mat::zeros(rows, cols);
    // Masked columns carry a sentinel so low that every later stage
    // treats them as probability zero without re-consulting the mask:
    // `exp_unit` underflows to exactly 0, so they add nothing to the sum
    // and quantize to the exact-zero code the mask contract requires.
    // (i64::MIN / 4 leaves headroom for the `- max - ln_sum` arithmetic.)
    const MASKED: i64 = i64::MIN / 4;
    let mut x_fx = vec![0i64; cols];
    let mut d32 = vec![0i32; cols];
    for r in 0..rows {
        // Stage 1: fixed-point conversion and running maximum over legal
        // columns.
        let mut max_fx = MASKED;
        match mask {
            None => {
                for (slot, &acc) in x_fx.iter_mut().zip(d_acc.row(r)) {
                    let v = to_fx.apply(acc);
                    *slot = v;
                    max_fx = max_fx.max(v);
                }
            }
            Some(m) => {
                for ((slot, &acc), &dead) in x_fx.iter_mut().zip(d_acc.row(r)).zip(m.row(r)) {
                    let v = if dead { MASKED } else { to_fx.apply(acc) };
                    *slot = v;
                    max_fx = max_fx.max(v);
                }
            }
        }
        if max_fx == MASKED {
            continue; // fully masked row -> zeros
        }
        // The EXP unit underflows to exactly 0 for anything at or below
        // -31 * ONE, so clamping to this floor (instead of i32::MIN)
        // changes no output while keeping the unit's internal shift-adds
        // far from i32 overflow for the sentinel values.
        const EXP_FLOOR: i64 = -(1 << 26);
        const EXP_FLOOR32: i32 = -(1 << 26);
        // Stage 2: EXP and sum (masked sentinels underflow to +0). The
        // clamp narrows each argument into i32 range so the EXP sweep
        // auto-vectorises; the clamped arguments are kept for stage 4.
        let mut sum = 0i64;
        for (d, &v) in d32.iter_mut().zip(&x_fx) {
            let c = (v - max_fx).clamp(EXP_FLOOR, 0) as i32;
            *d = c;
            sum += i64::from(exp_unit(c));
        }
        // Stage 3: LN of the sum (sum >= exp(0) = ONE > 0 always).
        let ln_sum = ln_unit(sum.clamp(1, i32::MAX as i64) as i32);
        // Stage 4: final EXP and INT8 quantization (multiply by 127;
        // e <= ONE keeps `e * 127 + ONE/2` far inside i32, so the whole
        // stage runs in i32). Re-clamping the stage-2 value is exact:
        // `(v - max - ln).clamp(F, 0)` equals
        // `((v - max).clamp(F, 0) - ln).clamp(F, 0)` because `ln >= 0`
        // and anything below the floor stays pinned at the floor either
        // way.
        for (o, &d) in out.row_mut(r).iter_mut().zip(&d32) {
            let e = exp_unit((d - ln_sum).max(EXP_FLOOR32));
            *o = sat_i8((e * 127 + (ONE / 2)) >> FRAC);
        }
    }
    out
}

fn fp32_softmax(d_acc: &Mat<i32>, d_scale: f32, d_k: usize, mask: Option<&Mat<bool>>) -> Mat<i8> {
    let (rows, cols) = d_acc.shape();
    let scale = d_scale / (d_k as f32).sqrt();
    let scores = d_acc.map(|&a| a as f32 * scale);
    let probs = transformer::functional::softmax_rows(&scores, mask);
    Mat::from_fn(rows, cols, |r, c| {
        sat_i8((probs[(r, c)] * 127.0).round() as i32)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_acc(rng: &mut impl Rng, rows: usize, cols: usize, mag: i32) -> Mat<i32> {
        Mat::from_fn(rows, cols, |_, _| rng.random_range(-mag..=mag))
    }

    #[test]
    fn rows_sum_to_roughly_127() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = random_acc(&mut rng, 8, 16, 40_000);
        let p = scaled_masked_softmax(&d, 1e-4, 64, None, SoftmaxMode::Hardware);
        for r in 0..8 {
            let sum: i32 = p.row(r).iter().map(|&x| x as i32).sum();
            // the approximate exp/ln pipeline does not renormalise, so the
            // sum wanders around 127 by the approximation error (~8%)
            assert!((108..=146).contains(&sum), "row {r} sums to {sum}");
        }
    }

    #[test]
    fn hardware_close_to_fp32_probabilities() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = random_acc(&mut rng, 16, 16, 60_000);
        let scale = 5e-5;
        let hw = scaled_masked_softmax(&d, scale, 64, None, SoftmaxMode::Hardware);
        let sw = scaled_masked_softmax(&d, scale, 64, None, SoftmaxMode::Fp32);
        let mut max_diff = 0i32;
        for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
            max_diff = max_diff.max((*a as i32 - *b as i32).abs());
        }
        // within ~10 codes of 127 (= 8% absolute probability error)
        assert!(max_diff <= 10, "max code diff {max_diff}");
    }

    #[test]
    fn masked_entries_are_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = random_acc(&mut rng, 6, 6, 50_000);
        let mask = tensor::ops::causal_mask(6);
        for mode in [SoftmaxMode::Hardware, SoftmaxMode::Fp32] {
            let p = scaled_masked_softmax(&d, 1e-4, 64, Some(&mask), mode);
            for i in 0..6 {
                for j in (i + 1)..6 {
                    assert_eq!(p[(i, j)], 0, "mode {mode:?} leak at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn fully_masked_row_is_zero() {
        let d = Mat::filled(2, 3, 1000i32);
        let mask = Mat::from_fn(2, 3, |r, _| r == 0);
        let p = scaled_masked_softmax(&d, 1e-3, 64, Some(&mask), SoftmaxMode::Hardware);
        assert!(p.row(0).iter().all(|&x| x == 0));
        assert!(p.row(1).iter().any(|&x| x > 0));
    }

    #[test]
    fn dominant_score_wins() {
        let mut d = Mat::filled(1, 8, 0i32);
        d[(0, 3)] = 1_000_000;
        let p = scaled_masked_softmax(&d, 1e-4, 64, None, SoftmaxMode::Hardware);
        assert!(p[(0, 3)] >= 120, "dominant prob {}", p[(0, 3)]);
        for c in 0..8 {
            if c != 3 {
                assert!(p[(0, c)] <= 2);
            }
        }
    }

    #[test]
    fn uniform_scores_give_uniform_probs() {
        let d = Mat::filled(1, 4, 12_345i32);
        let p = scaled_masked_softmax(&d, 1e-4, 64, None, SoftmaxMode::Hardware);
        let first = p[(0, 0)];
        assert!(p.row(0).iter().all(|&x| (x - first).abs() <= 1));
        // ~127/4 = 32
        assert!((28..=36).contains(&(first as i32)), "uniform prob {first}");
    }

    #[test]
    fn non_power_of_two_dk_supported() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = random_acc(&mut rng, 4, 4, 30_000);
        let hw = scaled_masked_softmax(&d, 1e-4, 8, None, SoftmaxMode::Hardware);
        let sw = scaled_masked_softmax(&d, 1e-4, 8, None, SoftmaxMode::Fp32);
        for (a, b) in hw.as_slice().iter().zip(sw.as_slice()) {
            assert!((*a as i32 - *b as i32).abs() <= 10);
        }
    }

    #[test]
    fn output_codes_are_nonnegative() {
        let mut rng = StdRng::seed_from_u64(5);
        let d = random_acc(&mut rng, 8, 8, 80_000);
        let p = scaled_masked_softmax(&d, 1e-4, 64, None, SoftmaxMode::Hardware);
        assert!(p.as_slice().iter().all(|&x| x >= 0));
    }
}
