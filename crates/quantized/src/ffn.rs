//! The quantized FFN ResBlock — the INT8 dataflow of Fig. 3b /
//! Algorithm 1 lines 14–22.

use fixedmath::quant::QuantParams;
use graph::Executor;
use tensor::norm::{layernorm_rows, LAYERNORM_EPS};
use tensor::{ops, Mat};
use transformer::ffn::FfnResBlock;

use crate::calib::{linear_f32, FfnScales};
use crate::layernorm::HwLayerNorm;
use crate::qlinear::{QLinear, QuantScheme};

/// Quantized position-wise feed-forward ResBlock.
#[derive(Debug, Clone)]
pub struct QuantFfnResBlock {
    lin1: QLinear,
    lin2: QLinear,
    ln: HwLayerNorm,
}

impl QuantFfnResBlock {
    /// Calibrates and quantizes an FP32 [`FfnResBlock`].
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty.
    pub fn from_f32(block: &FfnResBlock, calib: &[Mat<f32>]) -> Self {
        Self::from_f32_calibrated(block, calib, crate::calib::CalibrationRule::MaxAbs)
    }

    /// Calibrates with an explicit activation-calibration rule.
    ///
    /// # Panics
    ///
    /// Panics if `calib` is empty.
    pub fn from_f32_calibrated(
        block: &FfnResBlock,
        calib: &[Mat<f32>],
        rule: crate::calib::CalibrationRule,
    ) -> Self {
        assert!(!calib.is_empty(), "empty calibration set");
        let (l1, l2) = block.sublayers();
        let mut obs_x = rule.observer();
        let mut obs_hidden = rule.observer();
        let mut obs_out = rule.observer();
        for x in calib {
            obs_x.observe(x);
            let hidden = ops::relu(&linear_f32(l1, x));
            obs_hidden.observe(&hidden);
            let g = ops::add(&linear_f32(l2, &hidden), x).expect("residual shape");
            let lnp = block.layernorm();
            let out = layernorm_rows(&g, lnp.gamma(), lnp.beta(), LAYERNORM_EPS);
            obs_out.observe(&out);
        }
        let scales = FfnScales {
            x: rule.resolve(&obs_x),
            hidden: rule.resolve(&obs_hidden),
            out: rule.resolve(&obs_out),
        };
        Self::from_f32_with_scales(block, scales)
    }

    /// Quantizes with explicit activation scales.
    pub fn from_f32_with_scales(block: &FfnResBlock, scales: FfnScales) -> Self {
        Self::from_f32_with_scales_scheme(block, scales, QuantScheme::PerTensor)
    }

    /// Quantizes with explicit scales and a chosen weight-quantization
    /// granularity (the per-tensor vs per-channel ablation).
    pub fn from_f32_with_scales_scheme(
        block: &FfnResBlock,
        scales: FfnScales,
        scheme: QuantScheme,
    ) -> Self {
        let (l1, l2) = block.sublayers();
        let lin1 = QLinear::from_f32_scheme(l1, scales.x, scales.hidden, scheme);
        // W2 output requantized straight into the residual (x) domain.
        let lin2 = QLinear::from_f32_scheme(l2, scales.hidden, scales.x, scheme);
        let lnp = block.layernorm();
        let ln = HwLayerNorm::from_f32(lnp.gamma(), lnp.beta(), scales.x, scales.out);
        Self { lin1, lin2, ln }
    }

    /// The two quantized linear sublayers `(W1, W2)`.
    pub fn sublayers(&self) -> (&QLinear, &QLinear) {
        (&self.lin1, &self.lin2)
    }

    /// The quantized LayerNorm module.
    pub fn layernorm(&self) -> &HwLayerNorm {
        &self.ln
    }

    /// Quantizes an FP32 input into block input codes.
    pub fn quantize_input(&self, x: &Mat<f32>) -> Mat<i8> {
        self.lin1.quantize_input(x)
    }

    /// Dequantizes block output codes.
    pub fn dequantize_output(&self, y: &Mat<i8>) -> Mat<f32> {
        self.ln.dequantize_output(y)
    }

    /// Scale of the block's output codes.
    pub fn out_scale(&self) -> QuantParams {
        self.ln.out_scale()
    }

    /// Runs the block on INT8 codes. Returns `(output codes, hidden
    /// codes)`; the post-ReLU hidden matrix is the `P` the accelerator
    /// stores between the two Algorithm-1 loops.
    pub fn forward(&self, x: &Mat<i8>) -> (Mat<i8>, Mat<i8>) {
        // Runs the [`graph::ffn_graph`] dataflow through
        // [`crate::exec::QuantExec`]. ReLU on symmetric INT8 codes is a
        // plain max(0, ·), fused into the output of the bias adders
        // (Fig. 5's ReLU block).
        let g = graph::fuse_if(
            graph::ffn_graph(&self.graph_config()),
            tensor::envcfg::fuse_enabled(),
        );
        let mut exec = crate::exec::QuantExec::ffn(self);
        let mut env = exec.run(&g, vec![("x", crate::exec::QVal::I8(x.clone()))], None);
        let hidden = env.take("hidden").into_i8();
        (env.take("y").into_i8(), hidden)
    }

    /// The graph-shape parameters of this block (`h` is not an FFN
    /// concern and is left at one).
    pub fn graph_config(&self) -> graph::GraphConfig {
        graph::GraphConfig {
            d_model: self.lin1.weight_q().rows(),
            d_ff: self.lin1.weight_q().cols(),
            h: 1,
        }
    }

    /// Convenience wrapper: quantize FP32 input, run, dequantize.
    pub fn forward_f32(&self, x: &Mat<f32>) -> Mat<f32> {
        let (codes, _) = self.forward(&self.quantize_input(x));
        self.dequantize_output(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;

    fn setup() -> (FfnResBlock, QuantFfnResBlock, Vec<Mat<f32>>) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(7);
        let block = FfnResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..6)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        let qblock = QuantFfnResBlock::from_f32(&block, &calib);
        (block, qblock, calib)
    }

    #[test]
    fn quantized_tracks_fp32_block() {
        let (mut block, qblock, calib) = setup();
        let x = &calib[0];
        let want = block.forward(x);
        let got = qblock.forward_f32(x);
        let err: f32 = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max);
        assert!(err < 0.15, "max abs error {err}");
    }

    #[test]
    fn hidden_codes_are_nonnegative_after_relu() {
        let (_, qblock, calib) = setup();
        let xq = qblock.quantize_input(&calib[1]);
        let (_, hidden) = qblock.forward(&xq);
        assert!(hidden.as_slice().iter().all(|&v| v >= 0));
    }

    #[test]
    fn forward_is_deterministic() {
        let (_, qblock, calib) = setup();
        let xq = qblock.quantize_input(&calib[2]);
        assert_eq!(qblock.forward(&xq), qblock.forward(&xq));
    }

    #[test]
    fn single_row_input_works() {
        let (_, qblock, calib) = setup();
        let row = calib[0].submatrix(0, 0, 1, calib[0].cols()).unwrap();
        let y = qblock.forward_f32(&row);
        assert_eq!(y.shape(), (1, calib[0].cols()));
    }

    #[test]
    #[should_panic(expected = "empty calibration")]
    fn empty_calibration_rejected() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(2);
        let block = FfnResBlock::new(&cfg, &mut rng);
        let _ = QuantFfnResBlock::from_f32(&block, &[]);
    }
}
