//! Quantized linear sublayer: INT8 GEMM + `i32` bias + requantization —
//! the operation the systolic array and its `s` bias adders perform.
//!
//! Two weight-quantization granularities are supported:
//!
//! * [`QuantScheme::PerTensor`] — one scale for the whole matrix; this
//!   is what the paper (following Bhandare et al. 2019) uses and what
//!   every block defaults to;
//! * [`QuantScheme::PerChannel`] — one scale per output column. In
//!   hardware this costs one extra requantizer constant per column of
//!   the drain path (the `s` adders already exist), and it measurably
//!   tightens the quantization error — quantified by the
//!   `quant_scheme` experiment binary.

use fixedmath::quant::{QuantParams, Requantizer};
use fixedmath::sat::sat_i8;
use serde::{Deserialize, Serialize};
use tensor::prepack::{self, PackedI8};
use tensor::Mat;
use transformer::linear::Linear;

use faults::abft;

/// Weight-quantization granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum QuantScheme {
    /// One scale per weight matrix (the paper's scheme).
    PerTensor,
    /// One scale per output column.
    PerChannel,
}

/// A quantized linear layer `y = requant(x_q W_q + b_q)`.
///
/// The quantized weights are frozen at construction, so the matrix is
/// also **prepacked** once into the GEMM microkernel's tile layout
/// (`w_packed`) — the software analogue of the paper's weights staying
/// resident beside the systolic array; every forward call streams only
/// the activations.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QLinear {
    w_q: Mat<i8>,
    w_packed: PackedI8,
    /// ABFT row-sum checksum of `w_q` (`B·e`), latched once at
    /// quantization time from the pristine weights — the reference every
    /// decode-step row check verifies against.
    w_rowsum: Vec<i64>,
    bias_q: Vec<i32>,
    in_scale: QuantParams,
    w_scales: Vec<QuantParams>,
    out_scale: QuantParams,
    requants: Vec<Requantizer>,
    scheme: QuantScheme,
}

impl QLinear {
    /// Quantizes an FP32 [`Linear`] with the paper's per-tensor scheme,
    /// given the input activation scale and the desired output
    /// activation scale.
    pub fn from_f32(lin: &Linear, in_scale: QuantParams, out_scale: QuantParams) -> Self {
        Self::from_f32_scheme(lin, in_scale, out_scale, QuantScheme::PerTensor)
    }

    /// Quantizes with an explicit granularity.
    pub fn from_f32_scheme(
        lin: &Linear,
        in_scale: QuantParams,
        out_scale: QuantParams,
        scheme: QuantScheme,
    ) -> Self {
        let w = lin.weight();
        let (d_in, d_out) = w.shape();
        let w_scales: Vec<QuantParams> = match scheme {
            QuantScheme::PerTensor => {
                vec![QuantParams::from_max_abs(tensor::ops::max_abs(w))]
            }
            QuantScheme::PerChannel => (0..d_out)
                .map(|c| {
                    let col_max = (0..d_in).fold(0.0f32, |m, r| m.max(w[(r, c)].abs()));
                    QuantParams::from_max_abs(col_max)
                })
                .collect(),
        };
        let scale_of = |c: usize| w_scales[if w_scales.len() == 1 { 0 } else { c }];
        let w_q = Mat::from_fn(d_in, d_out, |r, c| scale_of(c).quantize(w[(r, c)]));
        let bias_q = lin
            .bias()
            .iter()
            .enumerate()
            .map(|(c, &b)| in_scale.quantize_bias(&scale_of(c), b))
            .collect();
        let requants = w_scales
            .iter()
            .map(|ws| {
                Requantizer::from_ratio(
                    in_scale.scale() as f64 * ws.scale() as f64 / out_scale.scale() as f64,
                )
            })
            .collect();
        let w_packed = PackedI8::from_i8(&w_q);
        let w_rowsum = abft::weight_rowsum(&w_q);
        Self {
            w_q,
            w_packed,
            w_rowsum,
            bias_q,
            in_scale,
            w_scales,
            out_scale,
            requants,
            scheme,
        }
    }

    /// The weight-quantization granularity.
    pub fn scheme(&self) -> QuantScheme {
        self.scheme
    }

    /// Input activation scale.
    pub fn in_scale(&self) -> QuantParams {
        self.in_scale
    }

    /// Weight scale of output column `c`.
    pub fn w_scale_of(&self, c: usize) -> QuantParams {
        self.w_scales[if self.w_scales.len() == 1 { 0 } else { c }]
    }

    /// Weight scale (per-tensor scheme only).
    ///
    /// # Panics
    ///
    /// Panics under [`QuantScheme::PerChannel`], where no single scale
    /// exists.
    pub fn w_scale(&self) -> QuantParams {
        assert_eq!(
            self.scheme,
            QuantScheme::PerTensor,
            "per-channel layers have one scale per column; use w_scale_of"
        );
        self.w_scales[0]
    }

    /// Output activation scale.
    pub fn out_scale(&self) -> QuantParams {
        self.out_scale
    }

    /// Borrow of the quantized weight matrix (`[d_in, d_out]`).
    pub fn weight_q(&self) -> &Mat<i8> {
        &self.w_q
    }

    /// Borrow of the accumulator-domain bias.
    pub fn bias_q(&self) -> &[i32] {
        &self.bias_q
    }

    /// Raw accumulator output `x_q W_q + b_q` (`i32`, scale
    /// `in_scale * w_scale_of(col)`). This is what the systolic array
    /// hands to the bias adders.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward_acc(&self, x: &Mat<i8>) -> Mat<i32> {
        let mut acc =
            prepack::matmul_i8_prepacked(x, &self.w_packed).expect("qlinear width mismatch");
        // Zero-cost when off: one relaxed atomic load guards the whole
        // fault/checker seam, and the checker never modifies `acc`.
        if faults::hooks_active() {
            self.fault_hook(x, &mut acc);
        }
        for r in 0..acc.rows() {
            for (v, b) in acc.row_mut(r).iter_mut().zip(&self.bias_q) {
                *v += b;
            }
        }
        acc
    }

    /// The serving path's fault seam, on the **pre-bias** accumulators:
    /// apply this GEMM pass's scheduled faults (weight-SRAM events as
    /// accumulator deltas — arithmetically identical to streaming the
    /// corrupted word — then accumulator upsets), then run the ABFT row
    /// check against the rowsum latched at quantization time. Counters
    /// go to the process-wide [`faults::counters`] tallies the serving
    /// layer watches.
    #[cold]
    fn fault_hook(&self, x: &Mat<i8>, acc: &mut Mat<i32>) {
        let injected =
            faults::with_injector(|inj| inj.apply_gemm_pass(x, &self.w_q, acc)).unwrap_or(0);
        if injected > 0 {
            faults::note_injected(injected as u64);
        }
        if faults::checker_enabled() {
            faults::note_checked(1);
            let bad_rows = abft::verify_rows(x, &self.w_rowsum, acc);
            if bad_rows > 0 {
                faults::note_detected(bad_rows as u64);
            }
        }
    }

    /// The ABFT row-sum checksum latched at quantization time.
    pub fn w_rowsum(&self) -> &[i64] {
        &self.w_rowsum
    }

    /// Full quantized forward: accumulate, then requantize to
    /// `out_scale` INT8 codes.
    pub fn forward(&self, x: &Mat<i8>) -> Mat<i8> {
        let acc = self.forward_acc(x);
        let (rows, cols) = acc.shape();
        let mut out = Mat::zeros(rows, cols);
        // Hoist the per-tensor/per-channel branch out of the element loop
        // so the requantizer multiply vectorises over each row.
        if self.requants.len() == 1 {
            let rq = self.requants[0];
            for r in 0..rows {
                for (o, &a) in out.row_mut(r).iter_mut().zip(acc.row(r)) {
                    *o = rq.apply_sat_i8(a);
                }
            }
        } else {
            for r in 0..rows {
                let dst = out.row_mut(r);
                for ((o, &a), rq) in dst.iter_mut().zip(acc.row(r)).zip(&self.requants) {
                    *o = rq.apply_sat_i8(a);
                }
            }
        }
        out
    }

    /// Fused `Linear → ReLU`: bias, requantization and the activation
    /// all run in the GEMM's drain while each accumulator row is still
    /// in registers — the INT8 pre-activation tensor is never
    /// materialized. Bit-identical to `forward(x)` followed by
    /// `max(0)` on every code.
    ///
    /// Falls back to the unfused pair when fault hooks are active: the
    /// ABFT row check needs the full pre-bias accumulator tensor, which
    /// the fused drain never forms.
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in`.
    pub fn forward_relu(&self, x: &Mat<i8>) -> Mat<i8> {
        if faults::hooks_active() {
            return self.forward(x).map(|&v| v.max(0));
        }
        prepack::matmul_i8_prepacked_fused(x, &self.w_packed, |_r, acc, out: &mut [i8]| {
            if self.requants.len() == 1 {
                let rq = self.requants[0];
                for ((o, &a), &b) in out.iter_mut().zip(acc).zip(&self.bias_q) {
                    *o = rq.apply_sat_i8(a + b).max(0);
                }
            } else {
                let cols = out
                    .iter_mut()
                    .zip(acc)
                    .zip(&self.bias_q)
                    .zip(&self.requants);
                for (((o, &a), &b), rq) in cols {
                    *o = rq.apply_sat_i8(a + b).max(0);
                }
            }
        })
        .expect("qlinear width mismatch")
    }

    /// Fused `Linear → residual Add`: bias, requantization and the
    /// widening residual addition run in the GEMM's drain — the
    /// sublayer's INT8 output codes are never materialized. Operands
    /// must share a scale (the quantizer arranges the residual edges
    /// that way, so the dequant→requant pair between them composes to
    /// the identity rescale). Bit-identical to
    /// [`residual_add_i8`]`(&self.forward(x), residual)`.
    ///
    /// Falls back to the unfused pair when fault hooks are active (see
    /// [`QLinear::forward_relu`]).
    ///
    /// # Panics
    ///
    /// Panics if `x.cols() != d_in` or `residual`'s shape differs from
    /// the output shape.
    pub fn forward_add(&self, x: &Mat<i8>, residual: &Mat<i8>) -> Mat<i32> {
        assert_eq!(
            residual.shape(),
            (x.rows(), self.bias_q.len()),
            "residual shape must match the linear output"
        );
        if faults::hooks_active() {
            return residual_add_i8(&self.forward(x), residual);
        }
        prepack::matmul_i8_prepacked_fused(x, &self.w_packed, |r, acc, out: &mut [i32]| {
            let res = residual.row(r);
            if self.requants.len() == 1 {
                let rq = self.requants[0];
                for (((o, &a), &b), &rv) in out.iter_mut().zip(acc).zip(&self.bias_q).zip(res) {
                    *o = rq.apply_sat_i8(a + b) as i32 + rv as i32;
                }
            } else {
                let cols = out
                    .iter_mut()
                    .zip(acc)
                    .zip(&self.bias_q)
                    .zip(&self.requants)
                    .zip(res);
                for ((((o, &a), &b), rq), &rv) in cols {
                    *o = rq.apply_sat_i8(a + b) as i32 + rv as i32;
                }
            }
        })
        .expect("qlinear width mismatch")
    }

    /// Requantizes an accumulator drained from output column `col`.
    pub fn requantize_col(&self, col: usize, acc: i32) -> i8 {
        let r = &self.requants[if self.requants.len() == 1 { 0 } else { col }];
        r.apply_sat_i8(acc)
    }

    /// Requantizes with the per-tensor multiplier.
    ///
    /// # Panics
    ///
    /// Panics under [`QuantScheme::PerChannel`] — use
    /// [`QLinear::requantize_col`].
    pub fn requantize(&self, acc: i32) -> i8 {
        assert_eq!(
            self.scheme,
            QuantScheme::PerTensor,
            "per-channel layers need the column index; use requantize_col"
        );
        self.requants[0].apply_sat_i8(acc)
    }

    /// Quantizes an FP32 activation into this layer's input codes.
    pub fn quantize_input(&self, x: &Mat<f32>) -> Mat<i8> {
        x.map(|&v| self.in_scale.quantize(v))
    }

    /// Dequantizes output codes back to FP32.
    pub fn dequantize_output(&self, y: &Mat<i8>) -> Mat<f32> {
        y.map(|&v| self.out_scale.dequantize(v))
    }
}

/// Saturating INT8 residual add in the shared scale domain: the paper's
/// "another `s` adders ... to add the residual". Operands must already be
/// in the same scale.
pub fn residual_add_i8(a: &Mat<i8>, b: &Mat<i8>) -> Mat<i32> {
    assert_eq!(a.shape(), b.shape(), "residual shape mismatch");
    Mat::from_fn(a.rows(), a.cols(), |r, c| {
        a[(r, c)] as i32 + b[(r, c)] as i32
    })
}

/// Clamps an `i32` code matrix to INT8 (used when a residual sum must
/// re-enter an INT8 datapath).
pub fn saturate_codes(m: &Mat<i32>) -> Mat<i8> {
    m.map(|&v| sat_i8(v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make_layer(
        seed: u64,
        d_in: usize,
        d_out: usize,
        scheme: QuantScheme,
    ) -> (Linear, QLinear, Mat<f32>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let lin = Linear::new("t", d_in, d_out, &mut rng);
        let x = tensor::init::normal(&mut rng, 6, d_in, 1.0);
        let y = crate::calib::linear_f32(&lin, &x);
        let in_scale = QuantParams::from_max_abs(tensor::ops::max_abs(&x));
        let out_scale = QuantParams::from_max_abs(tensor::ops::max_abs(&y));
        let q = QLinear::from_f32_scheme(&lin, in_scale, out_scale, scheme);
        (lin, q, x)
    }

    #[test]
    fn quantized_forward_tracks_fp32() {
        let (lin, q, x) = make_layer(1, 16, 12, QuantScheme::PerTensor);
        let want = crate::calib::linear_f32(&lin, &x);
        let got_codes = q.forward(&q.quantize_input(&x));
        let got = q.dequantize_output(&got_codes);
        // INT8 error budget: a couple of output quantization steps.
        let tol = 4.0 * q.out_scale().scale();
        for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((g - w).abs() < tol, "{g} vs {w} (tol {tol})");
        }
    }

    #[test]
    fn forward_equals_acc_plus_requant() {
        let (_, q, x) = make_layer(2, 8, 8, QuantScheme::PerTensor);
        let xq = q.quantize_input(&x);
        let acc = q.forward_acc(&xq);
        let direct = q.forward(&xq);
        let via_requant = Mat::from_fn(acc.rows(), acc.cols(), |r, c| q.requantize(acc[(r, c)]));
        assert_eq!(direct, via_requant);
    }

    #[test]
    fn bias_lands_in_accumulator_domain() {
        let w = Mat::zeros(2, 2);
        let lin = Linear::from_parts("t", w, vec![1.0, -0.5]);
        let in_scale = QuantParams::new(0.1);
        let out_scale = QuantParams::new(0.01);
        let q = QLinear::from_f32(&lin, in_scale, out_scale);
        let x = Mat::zeros(1, 2);
        let y = q.forward(&x);
        // zero weights: output is requantized bias: 1.0 -> 100, -0.5 -> -50
        assert_eq!(y.as_slice(), &[100, -50]);
    }

    #[test]
    fn residual_add_saturates_via_helper() {
        let a = Mat::from_vec(1, 2, vec![100i8, -100]).unwrap();
        let b = Mat::from_vec(1, 2, vec![100i8, -100]).unwrap();
        let sum = residual_add_i8(&a, &b);
        assert_eq!(sum.as_slice(), &[200, -200]);
        let sat = saturate_codes(&sum);
        assert_eq!(sat.as_slice(), &[127, -127]);
    }

    #[test]
    fn weight_extremes_map_to_127() {
        let mut rng = StdRng::seed_from_u64(3);
        let lin = Linear::new("t", 4, 4, &mut rng);
        let q = QLinear::from_f32(&lin, QuantParams::new(0.1), QuantParams::new(0.1));
        let wmax = q
            .weight_q()
            .as_slice()
            .iter()
            .map(|&x| (x as i32).abs())
            .max()
            .unwrap();
        assert_eq!(wmax, 127);
    }

    #[test]
    fn per_channel_every_column_reaches_127() {
        let (_, q, _) = make_layer(4, 24, 10, QuantScheme::PerChannel);
        for c in 0..10 {
            let col_max = (0..24)
                .map(|r| (q.weight_q()[(r, c)] as i32).abs())
                .max()
                .unwrap();
            assert_eq!(col_max, 127, "column {c} underuses the code range");
        }
    }

    #[test]
    fn per_channel_error_not_worse_than_per_tensor() {
        // With a deliberately skewed matrix (one huge column), per-tensor
        // quantization crushes the small columns; per-channel must do
        // strictly better.
        let mut rng = StdRng::seed_from_u64(5);
        let mut w = tensor::init::normal(&mut rng, 16, 8, 0.05);
        for r in 0..16 {
            w[(r, 0)] *= 100.0; // dominant column
        }
        let lin = Linear::from_parts("t", w, vec![0.0; 8]);
        let x = tensor::init::normal(&mut rng, 4, 16, 1.0);
        let want = crate::calib::linear_f32(&lin, &x);
        let in_scale = QuantParams::from_max_abs(tensor::ops::max_abs(&x));
        let out_scale = QuantParams::from_max_abs(tensor::ops::max_abs(&want));
        let err = |scheme| {
            let q = QLinear::from_f32_scheme(&lin, in_scale, out_scale, scheme);
            let got = q.dequantize_output(&q.forward(&q.quantize_input(&x)));
            tensor::ops::mse(&got, &want).unwrap()
        };
        let pt = err(QuantScheme::PerTensor);
        let pc = err(QuantScheme::PerChannel);
        assert!(pc < pt * 0.5, "per-channel {pc} vs per-tensor {pt}");
    }

    #[test]
    #[should_panic(expected = "per-channel")]
    fn per_tensor_accessors_guarded() {
        let (_, q, _) = make_layer(6, 8, 8, QuantScheme::PerChannel);
        let _ = q.requantize(100);
    }

    #[test]
    fn scheme_is_reported() {
        let (_, q, _) = make_layer(7, 8, 8, QuantScheme::PerChannel);
        assert_eq!(q.scheme(), QuantScheme::PerChannel);
        let _ = q.w_scale_of(3);
    }
}
