//! Bit-accurate INT8 datapath of the SOCC'20 accelerator.
//!
//! This crate computes *exactly* what the synthesized hardware computes:
//! symmetric INT8 GEMMs with `i32` accumulation and fixed-point
//! requantization ([`qlinear`]), the multiplier-free scaled
//! masked-softmax of Fig. 6 ([`softmax`]), and the LayerNorm pipeline of
//! Fig. 8 with the `var = E[G²] − E[G]²` reformulation of Eq. (9)
//! ([`layernorm`]). The cycle-level simulator in the `accel` crate reuses
//! these functions verbatim, so timing and numerics can never diverge.
//!
//! The quantization flow follows the paper's Section V-A two-step recipe:
//!
//! 1. quantize every trainable matrix and activation matrix of Fig. 3
//!    with INT8 while keeping the softmax internals in FP32
//!    ([`SoftmaxMode::Fp32`]);
//! 2. replace the softmax with the shift-add hardware pipeline
//!    ([`SoftmaxMode::Hardware`]).
//!
//! # Example
//!
//! ```
//! use quantized::{QuantMhaResBlock, SoftmaxMode};
//! use transformer::{config::ModelConfig, mha::MhaResBlock};
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! let cfg = ModelConfig::tiny_for_tests();
//! let mut rng = StdRng::seed_from_u64(0);
//! let block = MhaResBlock::new(&cfg, &mut rng);
//! let calib: Vec<_> = (0..4)
//!     .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
//!     .collect();
//! let qblock = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
//! let x = &calib[0];
//! let xq = qblock.quantize_input_q(x);
//! let (y_codes, _) = qblock.forward(&xq, &xq, None);
//! assert_eq!(y_codes.shape(), (8, cfg.d_model));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
pub mod exec;
pub mod ffn;
pub mod incremental;
pub mod layernorm;
pub mod mha;
pub mod model;
pub mod qlinear;
pub mod softmax;
pub mod sqnr;

pub use exec::{QRowVal, QVal, QuantExec, QuantRowExec};
pub use ffn::QuantFfnResBlock;
pub use mha::QuantMhaResBlock;
pub use model::QuantSeq2Seq;
pub use qlinear::{QLinear, QuantScheme};
pub use softmax::SoftmaxMode;
