//! The LayerNorm module (Fig. 8) with the Eq. (9) variance
//! reformulation: `var = E[G ⊙ G] − E[G]²`, computed from two running
//! sums that accumulate *while the systolic array is still producing G*
//! (the step-one/step-two latency optimisation of Fig. 7).

use fixedmath::fx::{to_fx, FRAC};
use fixedmath::quant::QuantParams;
use fixedmath::rsqrt::{rsqrt_fx, OUT_FRAC};
use fixedmath::sat::{rounding_shr, sat_i8};
use serde::{Deserialize, Serialize};
use tensor::Mat;

/// Running row statistics: the two accumulators (`Σ G` and `Σ G ⊙ G`)
/// that Fig. 7's optimisation keeps attached to the module input.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RowStats {
    /// `Σ G(i, k)` over the row.
    pub sum: i64,
    /// `Σ G(i, k)^2` over the row.
    pub sum_sq: i64,
    /// Number of elements accumulated.
    pub n: usize,
}

impl RowStats {
    /// Accumulates one element (one cycle of streaming input).
    pub fn push(&mut self, g: i32) {
        self.sum += g as i64;
        self.sum_sq += g as i64 * g as i64;
        self.n += 1;
    }

    /// Mean in `Q.12` fixed point (round-to-nearest constant division —
    /// one fixed-point multiply in hardware).
    pub fn mean_fx(&self) -> i64 {
        assert!(self.n > 0, "empty row");
        let n = self.n as i64;
        let num = self.sum << FRAC;
        if num >= 0 {
            (num + n / 2) / n
        } else {
            -((-num + n / 2) / n)
        }
    }

    /// Variance in `Q.12` fixed point via Eq. (9):
    /// `var = E[G²] − E[G]²` (never negative up to rounding; clamped).
    pub fn var_fx(&self) -> i64 {
        assert!(self.n > 0, "empty row");
        let n = self.n as i64;
        let mean = self.mean_fx();
        let e2 = ((self.sum_sq << FRAC) + n / 2) / n;
        let mean_sq = rounding_shr(mean * mean, FRAC);
        (e2 - mean_sq).max(0)
    }
}

/// Bit-exact LayerNorm over INT8-domain codes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HwLayerNorm {
    gamma_fx: Vec<i32>,
    beta_fx: Vec<i32>,
    eps_fx: i64,
    in_scale: QuantParams,
    out_scale: QuantParams,
}

impl HwLayerNorm {
    /// Builds the module from FP32 affine parameters.
    ///
    /// `in_scale` is the scale of the incoming `G` codes (the residual
    /// domain); `out_scale` the scale of the INT8 output. `gamma / s_out`
    /// and `beta / s_out` are pre-folded into fixed-point constants, as
    /// hardware would bake them into the γ/β BRAM.
    ///
    /// # Panics
    ///
    /// Panics if `gamma.len() != beta.len()`.
    pub fn from_f32(
        gamma: &[f32],
        beta: &[f32],
        in_scale: QuantParams,
        out_scale: QuantParams,
    ) -> Self {
        assert_eq!(gamma.len(), beta.len(), "gamma/beta length mismatch");
        let s_out = out_scale.scale();
        let gamma_fx = gamma.iter().map(|&g| to_fx(g / s_out, FRAC)).collect();
        let beta_fx = beta.iter().map(|&b| to_fx(b / s_out, FRAC)).collect();
        // ε lives in the code² domain: ε / s_in²; at least one LSB so the
        // rsqrt ROM never sees zero.
        let s_in = in_scale.scale() as f64;
        let eps_fx = ((tensor::norm::LAYERNORM_EPS as f64 / (s_in * s_in)) * (1i64 << FRAC) as f64)
            .round()
            .max(1.0) as i64;
        Self {
            gamma_fx,
            beta_fx,
            eps_fx,
            in_scale,
            out_scale,
        }
    }

    /// Feature width.
    pub fn dim(&self) -> usize {
        self.gamma_fx.len()
    }

    /// Output scale of the produced codes.
    pub fn out_scale(&self) -> QuantParams {
        self.out_scale
    }

    /// Input (residual-domain) scale.
    pub fn in_scale(&self) -> QuantParams {
        self.in_scale
    }

    /// Row statistics of `g` — what the inline accumulators hold when
    /// the last element arrives.
    pub fn row_stats(&self, g_row: &[i32]) -> RowStats {
        let mut st = RowStats::default();
        for &v in g_row {
            st.push(v);
        }
        st
    }

    /// Normalizes one row given its (already accumulated) statistics.
    pub fn normalize_row(&self, g_row: &[i32], stats: &RowStats) -> Vec<i8> {
        assert_eq!(g_row.len(), self.dim(), "row width mismatch");
        assert_eq!(stats.n, g_row.len(), "stats cover a different row length");
        let mean = stats.mean_fx();
        let var = stats.var_fx() + self.eps_fx;
        let r = rsqrt_fx(var); // Q.24
        g_row
            .iter()
            .zip(self.gamma_fx.iter().zip(&self.beta_fx))
            .map(|(&g, (&gam, &bet))| {
                let diff = ((g as i64) << FRAC) - mean; // Q.12
                let norm = rounding_shr(diff * r, OUT_FRAC); // Q.12, ~N(0,1)
                let out_fx = rounding_shr(norm * gam as i64, FRAC) + bet as i64;
                sat_i8(rounding_shr(out_fx, FRAC).clamp(i32::MIN as i64, i32::MAX as i64) as i32)
            })
            .collect()
    }

    /// Full forward: `G` codes (`i32`, residual domain) to INT8 output
    /// codes.
    ///
    /// # Panics
    ///
    /// Panics if `g.cols() != self.dim()`.
    pub fn forward(&self, g: &Mat<i32>) -> Mat<i8> {
        assert_eq!(g.cols(), self.dim(), "layernorm width mismatch");
        let mut out = Mat::zeros(g.rows(), g.cols());
        for r in 0..g.rows() {
            let stats = self.row_stats(g.row(r));
            let row = self.normalize_row(g.row(r), &stats);
            out.row_mut(r).copy_from_slice(&row);
        }
        out
    }

    /// Dequantizes output codes.
    pub fn dequantize_output(&self, y: &Mat<i8>) -> Mat<f32> {
        y.map(|&v| self.out_scale.dequantize(v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use tensor::norm::{layernorm_rows, LAYERNORM_EPS};

    fn reference(g_codes: &Mat<i32>, in_scale: f32, gamma: &[f32], beta: &[f32]) -> Mat<f32> {
        let g_real = g_codes.map(|&c| c as f32 * in_scale);
        layernorm_rows(&g_real, gamma, beta, LAYERNORM_EPS)
    }

    #[test]
    fn matches_fp32_layernorm_within_budget() {
        let mut rng = StdRng::seed_from_u64(1);
        let d = 32;
        let gamma: Vec<f32> = (0..d).map(|_| rng.random_range(0.5..1.5f32)).collect();
        let beta: Vec<f32> = (0..d).map(|_| rng.random_range(-0.3..0.3f32)).collect();
        let in_scale = QuantParams::new(0.02);
        let g = Mat::from_fn(4, d, |_, _| rng.random_range(-200..200i32));
        let want = reference(&g, 0.02, &gamma, &beta);
        let out_scale = QuantParams::from_max_abs(tensor::ops::max_abs(&want));
        let ln = HwLayerNorm::from_f32(&gamma, &beta, in_scale, out_scale);
        let got = ln.dequantize_output(&ln.forward(&g));
        // ~3% of the output range: rsqrt LUT (1%) + Q.12 rounding + INT8.
        let tol = 3.2 * out_scale.scale().max(0.02);
        for (gv, wv) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((gv - wv).abs() < tol, "{gv} vs {wv} (tol {tol})");
        }
    }

    #[test]
    fn row_stats_match_direct_computation() {
        let row = [3i32, -7, 12, 0, 5];
        let ln = HwLayerNorm::from_f32(
            &[1.0; 5],
            &[0.0; 5],
            QuantParams::new(0.1),
            QuantParams::new(0.05),
        );
        let st = ln.row_stats(&row);
        assert_eq!(st.sum, 13);
        assert_eq!(st.sum_sq, 9 + 49 + 144 + 25);
        assert_eq!(st.n, 5);
        // mean = 2.6 -> Q.12 ~ 10650
        assert!((st.mean_fx() - (2.6 * 4096.0) as i64).abs() <= 2);
    }

    #[test]
    fn eq9_variance_equals_two_pass_variance() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..20 {
            let n = rng.random_range(4..64usize);
            let row: Vec<i32> = (0..n).map(|_| rng.random_range(-127..=127)).collect();
            let mut st = RowStats::default();
            for &v in &row {
                st.push(v);
            }
            let mean = row.iter().map(|&x| x as f64).sum::<f64>() / n as f64;
            let var = row
                .iter()
                .map(|&x| (x as f64 - mean) * (x as f64 - mean))
                .sum::<f64>()
                / n as f64;
            let got = st.var_fx() as f64 / 4096.0;
            assert!(
                (got - var).abs() < 0.51 + var * 1e-3,
                "n={n}: {got} vs {var}"
            );
        }
    }

    #[test]
    fn streaming_accumulation_matches_batch_forward() {
        // Fig. 7's whole point: the accumulators consume G column by
        // column as the systolic array drains it. Feeding elements one
        // at a time must give exactly the batch result.
        let mut rng = StdRng::seed_from_u64(5);
        let d = 16usize;
        let ln = HwLayerNorm::from_f32(
            &vec![1.1f32; d],
            &vec![-0.1f32; d],
            QuantParams::new(0.03),
            QuantParams::new(0.02),
        );
        let g = Mat::from_fn(3, d, |_, _| rng.random_range(-150..150i32));
        let batch = ln.forward(&g);
        for r in 0..3 {
            // stream: one element per "cycle"
            let mut st = RowStats::default();
            for &v in g.row(r) {
                st.push(v);
            }
            let row = ln.normalize_row(g.row(r), &st);
            assert_eq!(row.as_slice(), batch.row(r), "row {r}");
        }
    }

    #[test]
    fn constant_row_outputs_beta() {
        let ln = HwLayerNorm::from_f32(
            &[1.0; 8],
            &[0.5; 8],
            QuantParams::new(0.05),
            QuantParams::new(0.01),
        );
        let g = Mat::filled(1, 8, 64i32);
        let y = ln.forward(&g);
        // normalized value ~0 -> output = beta/s_out = 50
        for &v in y.row(0) {
            assert!((v as i32 - 50).abs() <= 1, "{v}");
        }
    }

    #[test]
    fn saturates_rather_than_wraps() {
        let ln = HwLayerNorm::from_f32(
            &[100.0; 4],
            &[0.0; 4],
            QuantParams::new(0.05),
            QuantParams::new(0.01),
        );
        let g = Mat::from_vec(1, 4, vec![127i32, -127, 127, -127]).unwrap();
        let y = ln.forward(&g);
        assert!(y.as_slice().iter().all(|&v| v == 127 || v == -127));
    }

    #[test]
    #[should_panic(expected = "width mismatch")]
    fn rejects_wrong_width() {
        let ln = HwLayerNorm::from_f32(
            &[1.0; 4],
            &[0.0; 4],
            QuantParams::new(0.1),
            QuantParams::new(0.1),
        );
        let _ = ln.forward(&Mat::zeros(1, 5));
    }
}
