//! The quantized MHA ResBlock — the INT8 dataflow of Fig. 3a /
//! Algorithm 1 lines 1–13, bit-exact with the accelerator.

use fixedmath::quant::{QuantParams, Requantizer};
use graph::Executor;
use tensor::norm::{layernorm_rows, LAYERNORM_EPS};
use tensor::{gemm, ops, Mat};
use transformer::functional::softmax_rows;
use transformer::mha::MhaResBlock;

use crate::calib::{linear_f32, MhaScales};
use crate::layernorm::HwLayerNorm;
use crate::qlinear::{QLinear, QuantScheme};
use crate::softmax::{prob_scale, SoftmaxMode};

/// Quantized multi-head-attention ResBlock.
#[derive(Debug, Clone)]
pub struct QuantMhaResBlock {
    wq: QLinear,
    wk: QLinear,
    wv: QLinear,
    wo: QLinear,
    ln: HwLayerNorm,
    h: usize,
    d_k: usize,
    d_scale: f32,
    p_requant: Requantizer,
    p_scale: QuantParams,
    mode: SoftmaxMode,
}

impl QuantMhaResBlock {
    /// Calibrates and quantizes an FP32 [`MhaResBlock`] using unmasked
    /// attention over the calibration inputs (`calib_q[i]` attends over
    /// `calib_kv[i]`).
    ///
    /// # Panics
    ///
    /// Panics if the calibration sets are empty or of different lengths.
    pub fn from_f32(
        block: &MhaResBlock,
        calib_q: &[Mat<f32>],
        calib_kv: &[Mat<f32>],
        mode: SoftmaxMode,
    ) -> Self {
        Self::from_f32_with_mask(block, calib_q, calib_kv, mode, |_, _| None)
    }

    /// Like [`QuantMhaResBlock::from_f32_with_mask`] with an explicit
    /// activation-calibration rule (the max-abs vs percentile ablation).
    ///
    /// # Panics
    ///
    /// Panics if the calibration sets are empty or of different lengths.
    pub fn from_f32_calibrated(
        block: &MhaResBlock,
        calib_q: &[Mat<f32>],
        calib_kv: &[Mat<f32>],
        mode: SoftmaxMode,
        rule: crate::calib::CalibrationRule,
        mask_fn: impl Fn(usize, usize) -> Option<Mat<bool>>,
    ) -> Self {
        let scales = Self::calibrate(block, calib_q, calib_kv, rule, mask_fn);
        Self::from_f32_with_scales(block, scales, mode)
    }

    /// Calibrates with a mask builder `mask_fn(s_q, s_kv)` (e.g. the
    /// causal mask for decoder self-attention).
    ///
    /// # Panics
    ///
    /// Panics if the calibration sets are empty or of different lengths.
    pub fn from_f32_with_mask(
        block: &MhaResBlock,
        calib_q: &[Mat<f32>],
        calib_kv: &[Mat<f32>],
        mode: SoftmaxMode,
        mask_fn: impl Fn(usize, usize) -> Option<Mat<bool>>,
    ) -> Self {
        let rule = crate::calib::CalibrationRule::MaxAbs;
        let scales = Self::calibrate(block, calib_q, calib_kv, rule, mask_fn);
        Self::from_f32_with_scales(block, scales, mode)
    }

    /// Replays the Fig. 3a dataflow in FP32 and resolves activation
    /// scales with `rule`.
    fn calibrate(
        block: &MhaResBlock,
        calib_q: &[Mat<f32>],
        calib_kv: &[Mat<f32>],
        rule: crate::calib::CalibrationRule,
        mask_fn: impl Fn(usize, usize) -> Option<Mat<bool>>,
    ) -> MhaScales {
        assert!(!calib_q.is_empty(), "empty calibration set");
        assert_eq!(
            calib_q.len(),
            calib_kv.len(),
            "calibration set length mismatch"
        );
        let (wq_f, wk_f, wv_f, wo_f) = block.mha().projections();
        let h = block.mha().heads();
        let d_model = wq_f.d_in();
        let d_k = d_model / h;
        let scale = 1.0 / (d_k as f32).sqrt();

        // FP32 replay of the Fig. 3a dataflow to observe activations.
        let mut obs_xq = rule.observer();
        let mut obs_xkv = rule.observer();
        let mut obs_q = rule.observer();
        let mut obs_k = rule.observer();
        let mut obs_v = rule.observer();
        let mut obs_p = rule.observer();
        let mut obs_out = rule.observer();
        for (xq, xkv) in calib_q.iter().zip(calib_kv) {
            obs_xq.observe(xq);
            obs_xkv.observe(xkv);
            let q = linear_f32(wq_f, xq);
            let k = linear_f32(wk_f, xkv);
            let v = linear_f32(wv_f, xkv);
            obs_q.observe(&q);
            obs_k.observe(&k);
            obs_v.observe(&v);
            let mask = mask_fn(xq.rows(), xkv.rows());
            let mut heads = Vec::with_capacity(h);
            for i in 0..h {
                let c0 = i * d_k;
                let qi = q.submatrix(0, c0, q.rows(), d_k).expect("panel");
                let ki = k.submatrix(0, c0, k.rows(), d_k).expect("panel");
                let vi = v.submatrix(0, c0, v.rows(), d_k).expect("panel");
                let scores = ops::scale(&gemm::matmul_nt(&qi, &ki).expect("shapes"), scale);
                let masked = match &mask {
                    Some(m) => ops::mask_scores(&scores, m).expect("mask shape"),
                    None => scores,
                };
                let probs = softmax_rows(&masked, None);
                heads.push(gemm::matmul(&probs, &vi).expect("shapes"));
            }
            let p = Mat::hconcat(&heads).expect("heads share rows");
            obs_p.observe(&p);
            let g = ops::add(&linear_f32(wo_f, &p), xq).expect("residual shape");
            let ln = block.layernorm();
            let out = layernorm_rows(&g, ln.gamma(), ln.beta(), LAYERNORM_EPS);
            obs_out.observe(&out);
        }
        MhaScales {
            x_q: rule.resolve(&obs_xq),
            x_kv: rule.resolve(&obs_xkv),
            q: rule.resolve(&obs_q),
            k: rule.resolve(&obs_k),
            v: rule.resolve(&obs_v),
            p: rule.resolve(&obs_p),
            out: rule.resolve(&obs_out),
        }
    }

    /// Quantizes with explicit, externally chosen activation scales.
    pub fn from_f32_with_scales(block: &MhaResBlock, scales: MhaScales, mode: SoftmaxMode) -> Self {
        Self::from_f32_with_scales_scheme(block, scales, mode, QuantScheme::PerTensor)
    }

    /// Quantizes with explicit scales and a chosen weight-quantization
    /// granularity (the per-tensor vs per-channel ablation).
    pub fn from_f32_with_scales_scheme(
        block: &MhaResBlock,
        scales: MhaScales,
        mode: SoftmaxMode,
        scheme: QuantScheme,
    ) -> Self {
        let (wq_f, wk_f, wv_f, wo_f) = block.mha().projections();
        let h = block.mha().heads();
        let d_k = wq_f.d_in() / h;
        let wq = QLinear::from_f32_scheme(wq_f, scales.x_q, scales.q, scheme);
        let wk = QLinear::from_f32_scheme(wk_f, scales.x_kv, scales.k, scheme);
        let wv = QLinear::from_f32_scheme(wv_f, scales.x_kv, scales.v, scheme);
        // W_G output is requantized straight into the residual (x_q)
        // domain so the residual add is a plain integer add.
        let wo = QLinear::from_f32_scheme(wo_f, scales.p, scales.x_q, scheme);
        let ln_f = block.layernorm();
        let ln = HwLayerNorm::from_f32(ln_f.gamma(), ln_f.beta(), scales.x_q, scales.out);
        let d_scale = scales.q.scale() * scales.k.scale();
        let p_ratio =
            prob_scale().scale() as f64 * scales.v.scale() as f64 / scales.p.scale() as f64;
        Self {
            wq,
            wk,
            wv,
            wo,
            ln,
            h,
            d_k,
            d_scale,
            p_requant: Requantizer::from_ratio(p_ratio),
            p_scale: scales.p,
            mode,
        }
    }

    /// Number of heads.
    pub fn heads(&self) -> usize {
        self.h
    }

    /// Per-head width.
    pub fn d_k(&self) -> usize {
        self.d_k
    }

    /// The softmax implementation in use.
    pub fn softmax_mode(&self) -> SoftmaxMode {
        self.mode
    }

    /// Switches the softmax implementation (the step-1 → step-2 toggle
    /// of the quantization study).
    pub fn set_softmax_mode(&mut self, mode: SoftmaxMode) {
        self.mode = mode;
    }

    /// The four quantized projections `(W_Q, W_K, W_V, W_G)`.
    pub fn projections(&self) -> (&QLinear, &QLinear, &QLinear, &QLinear) {
        (&self.wq, &self.wk, &self.wv, &self.wo)
    }

    /// The quantized LayerNorm module.
    pub fn layernorm(&self) -> &HwLayerNorm {
        &self.ln
    }

    /// Scale of the concatenated head-output matrix `P`.
    pub fn p_scale(&self) -> QuantParams {
        self.p_scale
    }

    /// Real scale of the `Q_i K_i^T` score accumulators
    /// (`s_q * s_k`) — what the softmax module's input stage folds in.
    pub fn d_scale(&self) -> f32 {
        self.d_scale
    }

    /// Requantizes an attention-output accumulator (`probs × V_i`) into
    /// a `P` code — the per-column requantization behind the systolic
    /// array's drain during Algorithm 1 line 7.
    pub fn requantize_p(&self, acc: i32) -> i8 {
        self.p_requant.apply_sat_i8(acc)
    }

    /// Quantizes a query-side FP32 input into block input codes.
    pub fn quantize_input_q(&self, x: &Mat<f32>) -> Mat<i8> {
        self.wq.quantize_input(x)
    }

    /// Quantizes a key/value-side FP32 input into block input codes.
    pub fn quantize_input_kv(&self, x: &Mat<f32>) -> Mat<i8> {
        self.wk.quantize_input(x)
    }

    /// Dequantizes block output codes.
    pub fn dequantize_output(&self, y: &Mat<i8>) -> Mat<f32> {
        self.ln.dequantize_output(y)
    }

    /// Scale of the block's output codes.
    pub fn out_scale(&self) -> QuantParams {
        self.ln.out_scale()
    }

    /// Runs the block on INT8 codes. Returns `(output codes, P codes)`;
    /// the concatenated `P` matrix is exposed because the accelerator's
    /// scheduler stores it in the data memory between the two Algorithm-1
    /// loops.
    ///
    /// # Panics
    ///
    /// Panics if widths differ from `d_model` or the mask shape is wrong.
    pub fn forward(
        &self,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> (Mat<i8>, Mat<i8>) {
        // Runs the [`graph::mha_graph`] dataflow through
        // [`crate::exec::QuantExec`]: Algorithm 1's first loop fans out
        // per head across threads, the second loop (W_G, residual,
        // LayerNorm) runs in plan order.
        let g = graph::fuse_if(
            graph::mha_graph(&self.graph_config()),
            tensor::envcfg::fuse_enabled(),
        );
        let mut exec = crate::exec::QuantExec::mha(self);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", crate::exec::QVal::I8(xq.clone())),
                ("x_k", crate::exec::QVal::I8(xkv.clone())),
                ("x_v", crate::exec::QVal::I8(xkv.clone())),
            ],
            mask,
        );
        let p = env.take("p").into_i8();
        (env.take("y").into_i8(), p)
    }

    /// The graph-shape parameters of this block (`d_ff` is not an MHA
    /// concern and is left at zero).
    pub fn graph_config(&self) -> graph::GraphConfig {
        graph::GraphConfig {
            d_model: self.h * self.d_k,
            d_ff: 0,
            h: self.h,
        }
    }

    /// Convenience wrapper: quantize FP32 inputs, run, dequantize.
    pub fn forward_f32(&self, xq: &Mat<f32>, xkv: &Mat<f32>, mask: Option<&Mat<bool>>) -> Mat<f32> {
        let (codes, _) = self.forward(
            &self.quantize_input_q(xq),
            &self.quantize_input_kv(xkv),
            mask,
        );
        self.dequantize_output(&codes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;

    fn setup(mode: SoftmaxMode) -> (MhaResBlock, QuantMhaResBlock, Vec<Mat<f32>>) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(42);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..6)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        let qblock = QuantMhaResBlock::from_f32(&block, &calib, &calib, mode);
        (block, qblock, calib)
    }

    fn max_err(a: &Mat<f32>, b: &Mat<f32>) -> f32 {
        a.as_slice()
            .iter()
            .zip(b.as_slice())
            .map(|(x, y)| (x - y).abs())
            .fold(0.0, f32::max)
    }

    #[test]
    fn quantized_tracks_fp32_block() {
        let (block, qblock, calib) = setup(SoftmaxMode::Fp32);
        let mut block = block;
        let x = &calib[0];
        let want = block.forward(x, x, x, None);
        let got = qblock.forward_f32(x, x, None);
        let err = max_err(&got, &want);
        // LayerNorm output is O(1); INT8+fixed-point error budget ~0.15.
        assert!(err < 0.15, "max abs error {err}");
    }

    #[test]
    fn hardware_softmax_changes_little() {
        let (_, q_sw, calib) = setup(SoftmaxMode::Fp32);
        let (_, q_hw, _) = setup(SoftmaxMode::Hardware);
        let x = &calib[1];
        let a = q_sw.forward_f32(x, x, None);
        let b = q_hw.forward_f32(x, x, None);
        let err = max_err(&a, &b);
        assert!(err < 0.25, "softmax swap shifted outputs by {err}");
        assert!(err > 0.0, "hardware softmax should differ at all");
    }

    #[test]
    fn forward_is_deterministic() {
        let (_, qblock, calib) = setup(SoftmaxMode::Hardware);
        let xq = qblock.quantize_input_q(&calib[2]);
        let (a, pa) = qblock.forward(&xq, &xq, None);
        let (b, pb) = qblock.forward(&xq, &xq, None);
        assert_eq!(a, b);
        assert_eq!(pa, pb);
    }

    #[test]
    fn masked_forward_respects_causality() {
        let (block, qblock, calib) = setup(SoftmaxMode::Hardware);
        let mut block = block;
        let x = &calib[3];
        let s = x.rows();
        let mask = ops::causal_mask(s);
        let want = block.forward(x, x, x, Some(&mask));
        let got = qblock.forward_f32(x, x, Some(&mask));
        assert!(max_err(&got, &want) < 0.3);
    }

    #[test]
    fn cross_attention_with_different_lengths() {
        let (_, qblock, calib) = setup(SoftmaxMode::Hardware);
        let xq = calib[0].submatrix(0, 0, 3, calib[0].cols()).unwrap();
        let y = qblock.forward_f32(&xq, &calib[1], None);
        assert_eq!(y.shape(), (3, calib[0].cols()));
    }

    #[test]
    fn mode_toggle_switches_implementation() {
        let (_, mut qblock, calib) = setup(SoftmaxMode::Fp32);
        let xq = qblock.quantize_input_q(&calib[4]);
        let (a, _) = qblock.forward(&xq, &xq, None);
        qblock.set_softmax_mode(SoftmaxMode::Hardware);
        assert_eq!(qblock.softmax_mode(), SoftmaxMode::Hardware);
        let (b, _) = qblock.forward(&xq, &xq, None);
        assert_ne!(a, b, "switching softmax must change some codes");
    }

    #[test]
    fn percentile_calibration_builds_valid_blocks() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(55);
        let mut block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 8, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32_calibrated(
            &block,
            &calib,
            &calib,
            SoftmaxMode::Hardware,
            crate::calib::CalibrationRule::Percentile(0.999),
            |_, _| None,
        );
        let x = &calib[0];
        let want = block.forward(x, x, x, None);
        let got = q.forward_f32(x, x, None);
        let err = want
            .as_slice()
            .iter()
            .zip(got.as_slice())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        // still accurate; at 99.9% on normal-ish data, close to max-abs
        assert!(err < 0.35, "percentile-calibrated error {err}");
    }

    #[test]
    #[should_panic(expected = "empty calibration")]
    fn empty_calibration_rejected() {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(1);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let _ = QuantMhaResBlock::from_f32(&block, &[], &[], SoftmaxMode::Fp32);
    }
}
