//! Post-training calibration: choose per-tensor activation scales by
//! observing FP32 max-abs values over a calibration set, replaying the
//! paper's Fig. 3 dataflow.

use fixedmath::quant::QuantParams;
use tensor::{gemm, ops, Mat};
use transformer::linear::Linear;

/// Running observer for one activation tensor: tracks the max-abs (the
/// paper's calibration rule) and, optionally, the full magnitude sample
/// for percentile clipping — the standard PTQ refinement that trades a
/// little saturation for a finer step when the distribution has heavy
/// tails.
#[derive(Debug, Clone, Default)]
pub struct Observer {
    max_abs: f32,
    samples: Vec<f32>,
    keep_samples: bool,
}

impl Observer {
    /// Creates a max-abs-only observer (the paper's scheme).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an observer that also records magnitudes so
    /// [`Observer::quant_params_percentile`] is available.
    pub fn with_samples() -> Self {
        Self {
            keep_samples: true,
            ..Self::default()
        }
    }

    /// Folds a matrix into the observation.
    pub fn observe(&mut self, m: &Mat<f32>) {
        self.max_abs = self.max_abs.max(ops::max_abs(m));
        if self.keep_samples {
            self.samples.extend(m.as_slice().iter().map(|v| v.abs()));
        }
    }

    /// The observed maximum magnitude.
    pub fn max_abs(&self) -> f32 {
        self.max_abs
    }

    /// Converts the observation into symmetric INT8 parameters
    /// (max-abs rule).
    pub fn quant_params(&self) -> QuantParams {
        QuantParams::from_max_abs(self.max_abs)
    }

    /// Percentile-clipped parameters: the scale maps the `pct`-quantile
    /// magnitude (e.g. 0.999) to 127, saturating the tail.
    ///
    /// # Panics
    ///
    /// Panics if the observer was not created with
    /// [`Observer::with_samples`], no data was observed, or
    /// `pct ∉ (0, 1]`.
    pub fn quant_params_percentile(&self, pct: f64) -> QuantParams {
        assert!(self.keep_samples, "observer was created without samples");
        assert!(!self.samples.is_empty(), "nothing observed");
        assert!(pct > 0.0 && pct <= 1.0, "percentile must be in (0, 1]");
        let mut mags = self.samples.clone();
        mags.sort_by(|a, b| a.partial_cmp(b).expect("finite magnitudes"));
        let idx = ((mags.len() as f64 * pct).ceil() as usize).clamp(1, mags.len()) - 1;
        QuantParams::from_max_abs(mags[idx])
    }
}

/// How activation scales are chosen from observations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CalibrationRule {
    /// Map the observed maximum magnitude to 127 (the paper's rule).
    MaxAbs,
    /// Map the given magnitude quantile (e.g. 0.999) to 127, saturating
    /// the tail — finer bulk resolution on heavy-tailed activations.
    Percentile(f64),
}

impl CalibrationRule {
    /// Builds the observer this rule needs.
    pub fn observer(&self) -> Observer {
        match self {
            CalibrationRule::MaxAbs => Observer::new(),
            CalibrationRule::Percentile(_) => Observer::with_samples(),
        }
    }

    /// Resolves an observation into quantization parameters.
    pub fn resolve(&self, o: &Observer) -> QuantParams {
        match self {
            CalibrationRule::MaxAbs => o.quant_params(),
            CalibrationRule::Percentile(p) => o.quant_params_percentile(*p),
        }
    }
}

/// FP32 replay of one linear sublayer: `x W + b`.
pub fn linear_f32(lin: &Linear, x: &Mat<f32>) -> Mat<f32> {
    let xw = gemm::matmul(x, lin.weight()).expect("calibration shape mismatch");
    ops::add_row_bias(&xw, lin.bias()).expect("bias length invariant")
}

/// Activation scales of a quantized MHA ResBlock (one scale per tensor of
/// Fig. 3a).
#[derive(Debug, Clone, Copy)]
pub struct MhaScales {
    /// Scale of the block input on the query side (`Q` in Fig. 3a).
    pub x_q: QuantParams,
    /// Scale of the block input on the key/value side (`K = V`).
    pub x_kv: QuantParams,
    /// Scale of the `Q W_Q + bias` projections.
    pub q: QuantParams,
    /// Scale of the `K W_K + bias` projections.
    pub k: QuantParams,
    /// Scale of the `V W_V + bias` projections.
    pub v: QuantParams,
    /// Scale of the concatenated head outputs (`P` matrix).
    pub p: QuantParams,
    /// Scale of the LayerNorm output (the block output).
    pub out: QuantParams,
}

/// Activation scales of a quantized FFN ResBlock (Fig. 3b).
#[derive(Debug, Clone, Copy)]
pub struct FfnScales {
    /// Scale of the block input (`X`).
    pub x: QuantParams,
    /// Scale of the ReLU output (`P` matrix).
    pub hidden: QuantParams,
    /// Scale of the LayerNorm output.
    pub out: QuantParams,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn observer_tracks_running_max() {
        let mut o = Observer::new();
        o.observe(&Mat::from_vec(1, 2, vec![1.0f32, -3.0]).unwrap());
        o.observe(&Mat::from_vec(1, 2, vec![2.0f32, 0.5]).unwrap());
        assert_eq!(o.max_abs(), 3.0);
        assert_eq!(o.quant_params().quantize(3.0), 127);
    }

    #[test]
    fn linear_replay_matches_layer_forward() {
        let mut rng = StdRng::seed_from_u64(1);
        let lin = Linear::new("t", 4, 3, &mut rng);
        let x = tensor::init::normal(&mut rng, 2, 4, 1.0);
        let want = lin.forward_inference(&x);
        let got = linear_f32(&lin, &x);
        assert_eq!(got, want);
    }

    #[test]
    fn empty_observer_degenerates_to_unit_scale() {
        let o = Observer::new();
        assert_eq!(o.quant_params().scale(), 1.0);
    }

    #[test]
    fn percentile_clips_the_tail() {
        let mut o = Observer::with_samples();
        // 99 small values and one huge outlier
        let m = Mat::from_fn(10, 10, |r, c| if r == 0 && c == 0 { 100.0 } else { 1.0 });
        o.observe(&m);
        let full = o.quant_params();
        let clipped = o.quant_params_percentile(0.99);
        assert_eq!(full.quantize(100.0), 127);
        // clipped scale resolves the bulk ~100x finer
        assert!(clipped.scale() < full.scale() / 50.0);
        assert_eq!(clipped.quantize(100.0), 127, "outlier saturates");
    }

    #[test]
    fn percentile_one_equals_max_abs() {
        let mut o = Observer::with_samples();
        let mut rng = StdRng::seed_from_u64(2);
        o.observe(&tensor::init::normal(&mut rng, 8, 8, 1.0));
        let a = o.quant_params_percentile(1.0);
        let b = o.quant_params();
        assert!((a.scale() - b.scale()).abs() < 1e-9);
    }

    #[test]
    fn percentile_trades_tail_error_for_bulk_resolution() {
        // The clipping trade-off, measured honestly: against a tensor
        // with a single 100x outlier, percentile calibration makes the
        // *typical* (median) reconstruction error ~100x smaller while
        // the outlier saturates. (On squared-error metrics like SQNR the
        // outlier dominates and max-abs wins — which is why the paper's
        // plain max-abs rule is a defensible default.)
        let mut rng = StdRng::seed_from_u64(3);
        let mut x = tensor::init::normal(&mut rng, 10, 10, 1.0);
        x[(0, 0)] = 100.0;
        let mut o = Observer::with_samples();
        o.observe(&x);
        let median_err = |q: QuantParams| {
            let mut errs: Vec<f32> = x
                .as_slice()
                .iter()
                .map(|&v| (q.dequantize(q.quantize(v)) - v).abs())
                .collect();
            errs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            errs[errs.len() / 2]
        };
        let full = median_err(o.quant_params());
        let clipped = median_err(o.quant_params_percentile(0.98));
        assert!(
            clipped < full / 20.0,
            "clipped median {clipped} vs max-abs median {full}"
        );
    }

    #[test]
    fn rule_dispatch_matches_direct_calls() {
        let mut rng = StdRng::seed_from_u64(4);
        let m = tensor::init::normal(&mut rng, 8, 8, 1.0);
        let rule = CalibrationRule::MaxAbs;
        let mut o = rule.observer();
        o.observe(&m);
        assert_eq!(rule.resolve(&o).scale(), o.quant_params().scale());
        let rule = CalibrationRule::Percentile(0.9);
        let mut o = rule.observer();
        o.observe(&m);
        assert_eq!(
            rule.resolve(&o).scale(),
            o.quant_params_percentile(0.9).scale()
        );
    }

    #[test]
    #[should_panic(expected = "without samples")]
    fn percentile_requires_samples() {
        let mut o = Observer::new();
        o.observe(&Mat::filled(1, 1, 1.0f32));
        let _ = o.quant_params_percentile(0.99);
    }
}
