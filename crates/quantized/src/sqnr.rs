//! Signal-to-quantization-noise analysis: the standard PTQ diagnostic
//! for locating which tensor in a datapath loses the accuracy.

use tensor::Mat;

/// Signal-to-quantization-noise ratio in dB between a reference tensor
/// and its reconstruction: `10·log10(Σ ref² / Σ (ref − approx)²)`.
///
/// Returns `f64::INFINITY` for an exact reconstruction.
///
/// # Panics
///
/// Panics if shapes differ or the reference is all-zero with a nonzero
/// approximation (SQNR undefined).
pub fn sqnr_db(reference: &Mat<f32>, approx: &Mat<f32>) -> f64 {
    assert_eq!(reference.shape(), approx.shape(), "sqnr shape mismatch");
    let mut signal = 0.0f64;
    let mut noise = 0.0f64;
    for (r, a) in reference.as_slice().iter().zip(approx.as_slice()) {
        signal += (*r as f64) * (*r as f64);
        noise += (*r as f64 - *a as f64) * (*r as f64 - *a as f64);
    }
    if noise == 0.0 {
        return f64::INFINITY;
    }
    assert!(signal > 0.0, "SQNR undefined for a zero reference signal");
    10.0 * (signal / noise).log10()
}

/// The theoretical SQNR of an ideal uniform `bits`-bit quantizer driven
/// at full scale: `6.02·bits + 1.76` dB. Symmetric INT8 tops out around
/// 49.9 dB; real tensors (non-uniform distributions, headroom for the
/// max-abs calibration) land well below.
pub fn ideal_uniform_sqnr_db(bits: u32) -> f64 {
    6.02 * bits as f64 + 1.76
}

/// One named SQNR measurement.
#[derive(Debug, Clone, serde::Serialize)]
pub struct SqnrReport {
    /// Tensor name.
    pub name: String,
    /// Measured SQNR (dB).
    pub sqnr_db: f64,
}

/// Measures SQNR for a set of named `(reference, approx)` pairs, sorted
/// worst-first — the top entries are where the datapath loses accuracy.
pub fn rank_worst(pairs: &[(String, &Mat<f32>, &Mat<f32>)]) -> Vec<SqnrReport> {
    let mut out: Vec<SqnrReport> = pairs
        .iter()
        .map(|(name, r, a)| SqnrReport {
            name: name.clone(),
            sqnr_db: sqnr_db(r, a),
        })
        .collect();
    out.sort_by(|a, b| a.sqnr_db.partial_cmp(&b.sqnr_db).expect("finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fixedmath::quant::QuantParams;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn exact_reconstruction_is_infinite() {
        let m = Mat::from_fn(3, 3, |r, c| (r * c) as f32 + 1.0);
        assert_eq!(sqnr_db(&m, &m), f64::INFINITY);
    }

    #[test]
    fn int8_quantization_lands_near_theory_for_uniform_input() {
        // Uniformly distributed full-scale input: measured SQNR should be
        // within a few dB of the 49.9 dB ideal.
        let mut rng = StdRng::seed_from_u64(1);
        let x = tensor::init::uniform(&mut rng, 64, 64, -1.0, 1.0);
        let q = QuantParams::from_max_abs(1.0);
        let approx = x.map(|&v| q.dequantize(q.quantize(v)));
        let db = sqnr_db(&x, &approx);
        let ideal = ideal_uniform_sqnr_db(8);
        assert!(
            (db - ideal).abs() < 3.0,
            "measured {db:.1} dB vs ideal {ideal:.1} dB"
        );
    }

    #[test]
    fn gaussian_input_loses_headroom() {
        // Normal data calibrated by max-abs wastes codes on the tails:
        // SQNR drops well below the uniform ideal but stays "INT8-good"
        // (> 30 dB).
        let mut rng = StdRng::seed_from_u64(2);
        let x = tensor::init::normal(&mut rng, 64, 64, 1.0);
        let q = QuantParams::from_max_abs(tensor::ops::max_abs(&x));
        let approx = x.map(|&v| q.dequantize(q.quantize(v)));
        let db = sqnr_db(&x, &approx);
        assert!(db > 30.0 && db < ideal_uniform_sqnr_db(8), "{db}");
    }

    #[test]
    fn ranking_puts_the_noisiest_first() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = tensor::init::normal(&mut rng, 16, 16, 1.0);
        let fine = QuantParams::from_max_abs(tensor::ops::max_abs(&x));
        let coarse = QuantParams::new(fine.scale() * 16.0);
        let a_fine = x.map(|&v| fine.dequantize(fine.quantize(v)));
        let a_coarse = x.map(|&v| coarse.dequantize(coarse.quantize(v)));
        let ranked = rank_worst(&[
            ("fine".into(), &x, &a_fine),
            ("coarse".into(), &x, &a_coarse),
        ]);
        assert_eq!(ranked[0].name, "coarse");
        assert!(ranked[0].sqnr_db < ranked[1].sqnr_db);
    }

    #[test]
    fn ideal_formula() {
        assert!((ideal_uniform_sqnr_db(8) - 49.92).abs() < 0.01);
        assert!((ideal_uniform_sqnr_db(16) - 98.08).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn shape_mismatch_rejected() {
        let a = Mat::<f32>::zeros(2, 2);
        let b = Mat::<f32>::zeros(2, 3);
        let _ = sqnr_db(&a, &b);
    }
}
