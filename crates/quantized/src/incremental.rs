//! KV-cached incremental decoding for the quantized model, over a
//! shared **paged** KV arena.
//!
//! Mirrors `transformer::incremental` in the INT8 domain: the projected
//! self-attention K/V *codes* of every decoder layer are cached, and the
//! fixed cross-attention K/V codes are computed once per source
//! sentence. Every integer operation per row is identical to the full
//! recompute (the datapath is row-independent), so decodes are
//! **bit-identical** to [`QuantSeq2Seq::greedy_decode`] — asserted by
//! tests — while doing O(L) layer passes instead of O(L²).
//!
//! Self-attention K/V live in a [`KvArena`] — two shared
//! [`tensor::kvpool::KvPool`]s of fixed-size pages with free-list
//! recycling. A session holds only block tables ([`KvSeq`]); pages are
//! allocated on demand as tokens are consumed (no `max_len`
//! preallocation) and returned copy-free when the session is
//! [released](QuantIncrementalSession::release). Since the pages store
//! exactly the same i8 codes a flat cache held, paging is lossless:
//! every decode remains bit-identical. Cross-attention K/V are exact-size
//! flat matrices (their length is the source length, known up front).
//!
//! Sessions can also advance **together**: [`QuantSeq2Seq::step_sessions`]
//! stacks one active row per session and runs each layer's projections,
//! output matmul and FFN as single multi-row GEMMs (one `matmul_i8` per
//! weight matrix per step instead of one per request). The GEMM kernels
//! never reorder a row's accumulation, so every batched row is
//! bit-identical to the single-session path for any batch composition —
//! the property the `serving` crate's continuous batcher is built on.
//! [`QuantSeq2Seq::prefill_sessions`] extends the same argument to
//! multi-row **chunks**: a prompt of length L is consumed in fixed-size
//! chunks (one GEMM per weight matrix per chunk instead of L sequential
//! steps), with the executor's intra-chunk causal mask keeping the
//! result bit-identical to token-at-a-time ingestion.

use graph::{Executor, Graph};
use tensor::kvpool::{page_rows_from_env, KvPool, KvSeq, DEFAULT_PAGE_ROWS};
use tensor::Mat;
use transformer::tasks::{BOS, EOS};

use crate::exec::{CacheRef, QRowVal, QuantRowExec};
use crate::mha::QuantMhaResBlock;
use crate::model::QuantSeq2Seq;

/// The shared paged store for projected self-attention K/V codes: one
/// page pool for keys, one for values, serving every session and every
/// decoder layer (all caches are `d_model` wide). Create one per
/// serving engine (or one per decode for the convenience entry points)
/// and pass it to every session call.
///
/// Page height defaults to [`DEFAULT_PAGE_ROWS`] and is overridable via
/// the `ACCEL_KV_PAGE` environment variable (read at construction).
#[derive(Debug)]
pub struct KvArena {
    pub(crate) k: KvPool<i8>,
    pub(crate) v: KvPool<i8>,
}

impl KvArena {
    /// An arena for caches `d_model` columns wide, with the page height
    /// taken from `ACCEL_KV_PAGE` (default [`DEFAULT_PAGE_ROWS`]).
    pub fn new(d_model: usize) -> Self {
        Self::with_page_rows(d_model, page_rows_from_env(DEFAULT_PAGE_ROWS))
    }

    /// An arena sized for `model`'s decoder caches.
    pub fn for_model(model: &QuantSeq2Seq) -> Self {
        Self::new(model.tgt_embedding().d_model())
    }

    /// An arena with an explicit page height (tests pin this so their
    /// page-boundary assertions hold under any `ACCEL_KV_PAGE`).
    pub fn with_page_rows(d_model: usize, page_rows: usize) -> Self {
        Self {
            k: KvPool::new(page_rows, d_model),
            v: KvPool::new(page_rows, d_model),
        }
    }

    /// Rows per page.
    pub fn page_rows(&self) -> usize {
        self.k.page_rows()
    }

    /// Bytes resident in pages currently held by live sessions (whole
    /// pages, K and V pools together) — the serving memory budget's
    /// denominator.
    pub fn kv_bytes_in_use(&self) -> usize {
        self.k.bytes_in_use() + self.v.bytes_in_use()
    }

    /// High-water bytes ever allocated (live + free-listed pages).
    pub fn kv_bytes_allocated(&self) -> usize {
        self.k.bytes_allocated() + self.v.bytes_allocated()
    }

    /// Pages held by live sessions across both pools.
    pub fn pages_in_use(&self) -> usize {
        self.k.pages_in_use() + self.v.pages_in_use()
    }

    /// The key-code pool (for building [`CacheRef`]s in tests/benches).
    pub fn key_pool(&self) -> &KvPool<i8> {
        &self.k
    }

    /// The value-code pool.
    pub fn val_pool(&self) -> &KvPool<i8> {
        &self.v
    }
}

#[derive(Debug)]
struct QLayerCache {
    self_k: KvSeq,
    self_v: KvSeq,
    cross_k: Mat<i8>,
    cross_v: Mat<i8>,
}

/// An INT8 decoding session over one source sentence. Self-attention
/// K/V are block tables into the [`KvArena`] the session was started
/// with; every session method must be given that same arena. Call
/// [`release`](Self::release) when done to return the pages (dropping
/// the session without releasing leaks its pages until the arena is
/// dropped).
#[derive(Debug)]
pub struct QuantIncrementalSession {
    memory_rows: usize,
    layers: Vec<QLayerCache>,
    pos: usize,
    /// Scratch row for the concatenated head outputs `P` — allocated
    /// once per session and fully overwritten by every ResBlock pass, so
    /// the per-token hot loop never allocates head panels.
    p_buf: Mat<i8>,
}

/// The cached-KV operator graph shared by every decoder MHA ResBlock
/// (all layers have the same `d_model`/`h`, so one graph serves all).
fn cached_graph(block: &QuantMhaResBlock) -> Graph {
    graph::mha_cached_graph(&block.graph_config())
}

/// One cached-attention ResBlock applied to a single row of codes,
/// through [`QuantRowExec`]'s zero-allocation scratch path. `p_buf`
/// (1 × d_model) receives the concatenated requantized head outputs;
/// every column is written, so its previous contents are irrelevant.
fn resblock_row(
    g: &Graph,
    block: &QuantMhaResBlock,
    x_row: &Mat<i8>,
    keys: CacheRef<'_>,
    vals: CacheRef<'_>,
    p_buf: &mut Mat<i8>,
) -> Mat<i8> {
    let mut exec = QuantRowExec::with_scratch(block, p_buf);
    let mut env = exec.run(
        g,
        vec![
            ("x", QRowVal::Codes(x_row.clone())),
            ("keys", QRowVal::Caches(vec![keys])),
            ("vals", QRowVal::Caches(vec![vals])),
        ],
        None,
    );
    env.take("y").into_codes()
}

/// One cached-attention ResBlock applied to per-session multi-row
/// chunks through [`QuantRowExec::prefill`]. `groups[i]` consecutive
/// rows of `x` belong to session `i` and attend over cache `i`; with
/// `causal` set the executor masks each row's intra-chunk future, so
/// the chunk is bit-identical to feeding its rows one step at a time.
fn resblock_chunks(
    g: &Graph,
    block: &QuantMhaResBlock,
    x: &Mat<i8>,
    groups: &[usize],
    keys: Vec<CacheRef<'_>>,
    vals: Vec<CacheRef<'_>>,
    causal: bool,
) -> Mat<i8> {
    let mut exec = QuantRowExec::prefill(block, groups, causal);
    let mut env = exec.run(
        g,
        vec![
            ("x", QRowVal::Codes(x.clone())),
            ("keys", QRowVal::Caches(keys)),
            ("vals", QRowVal::Caches(vals)),
        ],
        None,
    );
    env.take("y").into_codes()
}

impl QuantSeq2Seq {
    /// Opens an incremental decoding session in `arena`: encodes `src`
    /// and precomputes each decoder layer's cross-attention K/V codes.
    /// Self-attention KV pages are allocated on demand as tokens are
    /// consumed — a fresh session holds no pages.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn start_session(&self, arena: &mut KvArena, src: &[usize]) -> QuantIncrementalSession {
        assert!(!src.is_empty(), "source must be non-empty");
        let memory = self.encode(src);
        let d_model = memory.cols();
        assert_eq!(
            arena.k.cols(),
            d_model,
            "arena width does not match the model's d_model"
        );
        let layers = self
            .decoder_layers()
            .iter()
            .map(|layer| {
                let (_, wk, wv, _) = layer.cross_mha.projections();
                QLayerCache {
                    self_k: KvSeq::new(),
                    self_v: KvSeq::new(),
                    cross_k: wk.forward(&memory),
                    cross_v: wv.forward(&memory),
                }
            })
            .collect();
        QuantIncrementalSession {
            memory_rows: memory.rows(),
            layers,
            pos: 0,
            p_buf: Mat::zeros(1, d_model),
        }
    }

    /// Feeds one target token and returns the next-token logits (FP32,
    /// from the output projection). Bit-identical to the full-prefix
    /// decode at the same position.
    pub fn step_session(
        &self,
        arena: &mut KvArena,
        session: &mut QuantIncrementalSession,
        token: usize,
    ) -> Vec<f32> {
        let emb = self.tgt_embedding().embed_at(token, session.pos);
        let emb_row = Mat::from_vec(1, emb.len(), emb).expect("row");
        let mut x = self.decoder_layers()[0].self_mha.quantize_input_q(&emb_row);
        let g = cached_graph(&self.decoder_layers()[0].self_mha);
        let QuantIncrementalSession { layers, p_buf, .. } = session;
        for (layer, cache) in self.decoder_layers().iter().zip(layers.iter_mut()) {
            // Extend the projected self-attention cache with this row.
            let (_, wk, wv, _) = layer.self_mha.projections();
            let k_new = wk.forward(&x);
            let v_new = wv.forward(&x);
            arena.k.push_row(&mut cache.self_k, k_new.row(0));
            arena.v.push_row(&mut cache.self_v, v_new.row(0));
            let a = resblock_row(
                &g,
                &layer.self_mha,
                &x,
                CacheRef::paged(&arena.k, &cache.self_k),
                CacheRef::paged(&arena.v, &cache.self_v),
                p_buf,
            );
            let b = resblock_row(
                &g,
                &layer.cross_mha,
                &a,
                CacheRef::flat(&cache.cross_k),
                CacheRef::flat(&cache.cross_v),
                p_buf,
            );
            let (c, _) = layer.ffn.forward(&b);
            x = c;
        }
        session.pos += 1;
        let last_ffn = &self.decoder_layers().last().expect("nonempty decoder").ffn;
        let x_f32 = last_ffn.dequantize_output(&x);
        self.output_projection_logits(&x_f32)
    }

    /// Advances several sessions by one token each, batching the GEMMs:
    /// the active rows are stacked into one `b × d_model` matrix and each
    /// layer's `W_K`/`W_V`/`W_Q`/`W_G` projections, FFN sublayers and the
    /// final output projection run **once** over all rows, while the
    /// per-session attention (whose cache lengths differ) fans out across
    /// threads. Row `r`'s logits are bit-identical to
    /// [`QuantSeq2Seq::step_session`] on session `r` alone — the GEMM
    /// kernels never reorder a row's accumulation — so continuous
    /// batching cannot change any decode.
    ///
    /// Sessions may sit at different positions; each token is embedded at
    /// its own session's position.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty or its length differs from
    /// `tokens`'.
    pub fn step_sessions(
        &self,
        arena: &mut KvArena,
        sessions: &mut [&mut QuantIncrementalSession],
        tokens: &[usize],
    ) -> Vec<Vec<f32>> {
        assert_eq!(sessions.len(), tokens.len(), "one token per session");
        let chunks: Vec<&[usize]> = tokens.chunks(1).collect();
        self.prefill_sessions(arena, sessions, &chunks)
    }

    /// Consumes a multi-token **chunk** per session in one pass — the
    /// chunked-prefill step. Chunk rows are stacked across sessions into
    /// one matrix, so each layer's projections, output matmul and FFN
    /// run as a single GEMM over `sum(chunk lengths)` rows; per-session
    /// attention (with the executor's intra-chunk causal mask) fans out
    /// across threads. Returns each session's **last-row** logits — the
    /// next-token distribution after its chunk — bit-identical to
    /// feeding the same tokens one [`step_session`] at a time (masked
    /// softmax columns produce exactly-zero probability codes, which
    /// contribute nothing to the context GEMM).
    ///
    /// Chunks may have different lengths; a length-1 chunk is exactly a
    /// decode step, so prefill chunks and decode steps can share one
    /// batched call.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty, lengths differ, or any chunk is
    /// empty.
    ///
    /// [`step_session`]: QuantSeq2Seq::step_session
    pub fn prefill_sessions(
        &self,
        arena: &mut KvArena,
        sessions: &mut [&mut QuantIncrementalSession],
        chunks: &[&[usize]],
    ) -> Vec<Vec<f32>> {
        assert_eq!(sessions.len(), chunks.len(), "one chunk per session");
        assert!(!sessions.is_empty(), "empty step batch");
        assert!(
            chunks.iter().all(|c| !c.is_empty()),
            "prefill chunks must be non-empty"
        );
        let b = sessions.len();
        let d_model = self.tgt_embedding().d_model();
        let total: usize = chunks.iter().map(|c| c.len()).sum();
        let groups: Vec<usize> = chunks.iter().map(|c| c.len()).collect();
        let mut emb = Mat::zeros(total, d_model);
        let mut r = 0;
        for (session, chunk) in sessions.iter().zip(chunks) {
            for (j, &token) in chunk.iter().enumerate() {
                emb.row_mut(r)
                    .copy_from_slice(&self.tgt_embedding().embed_at(token, session.pos + j));
                r += 1;
            }
        }
        let mut x = self.decoder_layers()[0].self_mha.quantize_input_q(&emb);
        let g = cached_graph(&self.decoder_layers()[0].self_mha);
        for (l, layer) in self.decoder_layers().iter().enumerate() {
            // Extend every session's projected self-attention cache with
            // its chunk's rows of this step's batched K/V projections.
            let (_, wk, wv, _) = layer.self_mha.projections();
            let k_new = wk.forward(&x);
            let v_new = wv.forward(&x);
            let mut r0 = 0;
            for (session, chunk) in sessions.iter_mut().zip(chunks) {
                let cache = &mut session.layers[l];
                for j in 0..chunk.len() {
                    arena.k.push_row(&mut cache.self_k, k_new.row(r0 + j));
                    arena.v.push_row(&mut cache.self_v, v_new.row(r0 + j));
                }
                r0 += chunk.len();
            }
            let a = resblock_chunks(
                &g,
                &layer.self_mha,
                &x,
                &groups,
                sessions
                    .iter()
                    .map(|s| CacheRef::paged(&arena.k, &s.layers[l].self_k))
                    .collect(),
                sessions
                    .iter()
                    .map(|s| CacheRef::paged(&arena.v, &s.layers[l].self_v))
                    .collect(),
                true,
            );
            let bm = resblock_chunks(
                &g,
                &layer.cross_mha,
                &a,
                &groups,
                sessions
                    .iter()
                    .map(|s| CacheRef::flat(&s.layers[l].cross_k))
                    .collect(),
                sessions
                    .iter()
                    .map(|s| CacheRef::flat(&s.layers[l].cross_v))
                    .collect(),
                false,
            );
            let (c, _) = layer.ffn.forward(&bm);
            x = c;
        }
        for (session, chunk) in sessions.iter_mut().zip(chunks) {
            session.pos += chunk.len();
        }
        // Only each session's last chunk row carries next-token logits;
        // gather those b rows and project once.
        let last_ffn = &self.decoder_layers().last().expect("nonempty decoder").ffn;
        let mut last = Mat::zeros(b, d_model);
        let mut r0 = 0;
        for (i, chunk) in chunks.iter().enumerate() {
            r0 += chunk.len();
            last.row_mut(i).copy_from_slice(x.row(r0 - 1));
        }
        let last_f32 = last_ffn.dequantize_output(&last);
        let logits = self.output_projection_rows(&last_f32);
        (0..b).map(|i| logits.row(i).to_vec()).collect()
    }

    /// Greedy decoding through the INT8 KV cache (private arena; pages
    /// are reclaimed when it drops).
    pub fn greedy_decode_incremental(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let mut arena = KvArena::for_model(self);
        let mut session = self.start_session(&mut arena, src);
        let mut out = Vec::new();
        let mut token = BOS;
        for _ in 0..max_len {
            let logits = self.step_session(&mut arena, &mut session, token);
            let next = tensor::ops::argmax(&logits);
            if next == EOS {
                break;
            }
            out.push(next);
            token = next;
        }
        out
    }

    /// Sequential (token-at-a-time) reference for prompted decoding:
    /// feeds `BOS` then every prompt token through single-row steps,
    /// then greedily generates up to `max_new` tokens. Returns only the
    /// generated tokens. The chunked-prefill serving path must match
    /// this bit for bit — it is the differential test's golden path and
    /// the throughput bench's "token-at-a-time prompt ingestion"
    /// baseline.
    pub fn greedy_decode_with_prompt(
        &self,
        src: &[usize],
        prompt: &[usize],
        max_new: usize,
    ) -> Vec<usize> {
        let mut arena = KvArena::for_model(self);
        let mut session = self.start_session(&mut arena, src);
        let mut logits = self.step_session(&mut arena, &mut session, BOS);
        for &t in prompt {
            logits = self.step_session(&mut arena, &mut session, t);
        }
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = tensor::ops::argmax(&logits);
            if next == EOS {
                break;
            }
            out.push(next);
            logits = self.step_session(&mut arena, &mut session, next);
        }
        out
    }
}

impl QuantIncrementalSession {
    /// Target tokens consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Encoder memory length this session attends over.
    pub fn memory_rows(&self) -> usize {
        self.memory_rows
    }

    /// Bytes of paged KV storage resident for this session (whole
    /// pages, K and V, all layers).
    pub fn resident_kv_bytes(&self, arena: &KvArena) -> usize {
        self.layers
            .iter()
            .map(|c| {
                (arena.k.resident_rows(&c.self_k) + arena.v.resident_rows(&c.self_v))
                    * arena.k.cols()
            })
            .sum()
    }

    /// Rewinds the session by one step: drops the newest row from every
    /// layer's projected self-attention K/V cache and decrements `pos`.
    ///
    /// The caches hold *inputs* to the datapath (the projected codes of
    /// tokens already consumed), so after a rollback the next
    /// `step_session` with the same token is bit-identical to the first
    /// attempt — the recovery primitive the serving layer's
    /// retry-on-detected-fault path is built on. Truncation crosses page
    /// boundaries: a page emptied by the rollback goes back to the
    /// arena's free list.
    ///
    /// # Panics
    ///
    /// Panics if the session has not consumed any tokens yet.
    pub fn rollback_step(&mut self, arena: &mut KvArena) {
        self.rollback_rows(arena, 1);
    }

    /// Rewinds the session by `rows` steps — the chunk-sized rollback a
    /// faulted prefill step needs (a chunk is replayed whole, exactly
    /// like a faulted decode row).
    ///
    /// # Panics
    ///
    /// Panics if the session has consumed fewer than `rows` tokens.
    pub fn rollback_rows(&mut self, arena: &mut KvArena, rows: usize) {
        assert!(rows > 0, "rollback of zero rows");
        assert!(
            self.pos >= rows,
            "rollback_step on a fresh session (pos {} < rows {rows})",
            self.pos
        );
        self.pos -= rows;
        for cache in &mut self.layers {
            arena.k.truncate(&mut cache.self_k, self.pos);
            arena.v.truncate(&mut cache.self_v, self.pos);
        }
    }

    /// Returns every KV page this session holds to the arena's free
    /// list (copy-free). The session is back to a fresh state
    /// (`pos == 0`) but remains usable.
    pub fn release(&mut self, arena: &mut KvArena) {
        self.pos = 0;
        for cache in &mut self.layers {
            arena.k.release(&mut cache.self_k);
            arena.v.release(&mut cache.self_v);
        }
    }

    /// Forks this session: the child sees the same consumed prefix at
    /// the same position, **sharing** every full KV page with the
    /// parent (refcount bump — near-zero copy; only partially-filled
    /// tail pages are duplicated) and cloning the per-source cross-
    /// attention K/V. Parent and child then advance, roll back, and
    /// release fully independently — divergent pushes copy-on-write, so
    /// neither can perturb the other's bits. This is the primitive the
    /// serving layer's shared-prefix cache hits fork on admission.
    pub fn fork(&self, arena: &mut KvArena) -> QuantIncrementalSession {
        QuantIncrementalSession {
            memory_rows: self.memory_rows,
            layers: self
                .layers
                .iter()
                .map(|c| QLayerCache {
                    self_k: arena.k.fork(&c.self_k),
                    self_v: arena.v.fork(&c.self_v),
                    cross_k: c.cross_k.clone(),
                    cross_v: c.cross_v.clone(),
                })
                .collect(),
            pos: self.pos,
            p_buf: Mat::zeros(1, self.p_buf.cols()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    #[allow(clippy::type_complexity)]
    fn setup() -> (QuantSeq2Seq, Vec<(Vec<usize>, Vec<usize>)>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(21);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(5, &mut StdRng::seed_from_u64(22));
        (
            QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware),
            corpus,
        )
    }

    #[test]
    fn incremental_decode_is_bit_identical_to_full() {
        let (q, corpus) = setup();
        for (src, _) in &corpus {
            let full = q.greedy_decode(src, BOS, EOS, 8);
            let inc = q.greedy_decode_incremental(src, 8);
            assert_eq!(full, inc, "src {src:?}");
        }
    }

    #[test]
    fn step_logits_match_teacher_forced_last_row() {
        let (q, corpus) = setup();
        let (src, tgt) = &corpus[0];
        let mut tin = vec![BOS];
        tin.extend_from_slice(tgt);
        let full = q.forward_logits(src, &tin);
        let mut arena = KvArena::for_model(&q);
        let mut session = q.start_session(&mut arena, src);
        let mut got = Vec::new();
        for &t in &tin {
            got = q.step_session(&mut arena, &mut session, t);
        }
        let want = full.row(tin.len() - 1);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g, w, "logits must be bit-identical");
        }
    }

    #[test]
    fn session_bookkeeping() {
        let (q, corpus) = setup();
        let (src, _) = &corpus[1];
        let mut arena = KvArena::for_model(&q);
        let mut s = q.start_session(&mut arena, src);
        assert_eq!(s.pos(), 0);
        assert_eq!(s.memory_rows(), src.len());
        let _ = q.step_session(&mut arena, &mut s, BOS);
        assert_eq!(s.pos(), 1);
    }

    #[test]
    fn kv_pages_allocate_on_demand_and_release() {
        // The old path reserved max_len rows per layer up front; the
        // paged arena must hold zero pages for a fresh session, grow one
        // page per pool per layer on the first step, and return
        // everything on release.
        let (q, corpus) = setup();
        let d_model = q.tgt_embedding().d_model();
        let mut arena = KvArena::with_page_rows(d_model, 4);
        let mut s = q.start_session(&mut arena, &corpus[0].0);
        assert_eq!(arena.kv_bytes_in_use(), 0);
        assert_eq!(s.resident_kv_bytes(&arena), 0);
        let _ = q.step_session(&mut arena, &mut s, BOS);
        let n_layers = 2;
        let one_page = 4 * d_model;
        assert_eq!(arena.kv_bytes_in_use(), n_layers * 2 * one_page);
        // Steps 2..4 fit in the same pages; step 5 opens new ones.
        for t in 0..3 {
            let _ = q.step_session(&mut arena, &mut s, 3 + t);
        }
        assert_eq!(arena.kv_bytes_in_use(), n_layers * 2 * one_page);
        let _ = q.step_session(&mut arena, &mut s, 5);
        assert_eq!(arena.kv_bytes_in_use(), 2 * n_layers * 2 * one_page);
        assert_eq!(s.resident_kv_bytes(&arena), arena.kv_bytes_in_use());
        s.release(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
        // A new session reuses the freed pages without fresh allocation.
        let allocated = arena.kv_bytes_allocated();
        let mut s2 = q.start_session(&mut arena, &corpus[1].0);
        for t in 0..5 {
            let _ = q.step_session(&mut arena, &mut s2, 3 + t);
        }
        assert_eq!(arena.kv_bytes_allocated(), allocated);
    }

    #[test]
    fn batched_step_is_bit_identical_to_single_steps() {
        // Advance the same sources once through step_session and once
        // through step_sessions (all together): every logit must match
        // bit for bit, even with sessions at different positions.
        let (q, corpus) = setup();
        let srcs: Vec<&Vec<usize>> = corpus.iter().map(|(s, _)| s).collect();
        let mut arena_s = KvArena::for_model(&q);
        let mut arena_b = KvArena::for_model(&q);
        let mut singles: Vec<QuantIncrementalSession> = srcs
            .iter()
            .map(|s| q.start_session(&mut arena_s, s))
            .collect();
        let mut batched: Vec<QuantIncrementalSession> = srcs
            .iter()
            .map(|s| q.start_session(&mut arena_b, s))
            .collect();
        // Desynchronize positions: pre-step a prefix of the sessions.
        for (i, (single, batch)) in singles.iter_mut().zip(&mut batched).enumerate().take(2) {
            let tok = 3 + i;
            let a = q.step_session(&mut arena_s, single, tok);
            let b = q.step_sessions(&mut arena_b, &mut [batch], &[tok]);
            assert_eq!(a, b[0]);
        }
        let tokens: Vec<usize> = (0..srcs.len()).map(|i| BOS + i % 3).collect();
        let want: Vec<Vec<f32>> = singles
            .iter_mut()
            .zip(&tokens)
            .map(|(s, &t)| q.step_session(&mut arena_s, s, t))
            .collect();
        let mut refs: Vec<&mut QuantIncrementalSession> = batched.iter_mut().collect();
        let got = q.step_sessions(&mut arena_b, &mut refs, &tokens);
        assert_eq!(want, got);
        for (s, b) in singles.iter().zip(&batched) {
            assert_eq!(s.pos(), b.pos());
            for (lc_s, lc_b) in s.layers.iter().zip(&b.layers) {
                assert_eq!(
                    arena_s.k.to_mat(&lc_s.self_k),
                    arena_b.k.to_mat(&lc_b.self_k)
                );
                assert_eq!(
                    arena_s.v.to_mat(&lc_s.self_v),
                    arena_b.v.to_mat(&lc_b.self_v)
                );
            }
        }
    }

    #[test]
    fn chunked_prefill_is_bit_identical_to_sequential_steps() {
        // The same prompt consumed in one chunk, in page-straddling
        // chunks, and token-at-a-time must leave bit-identical caches
        // and produce bit-identical next-token logits.
        let (q, corpus) = setup();
        let (src, tgt) = &corpus[0];
        let mut prompt = vec![BOS];
        prompt.extend_from_slice(tgt);
        prompt.extend(corpus[1].1.iter().copied());
        let d_model = q.tgt_embedding().d_model();

        // Sequential reference (page height 3 forces mid-chunk page
        // boundaries for every split below).
        let mut arena_ref = KvArena::with_page_rows(d_model, 3);
        let mut s_ref = q.start_session(&mut arena_ref, src);
        let mut want = Vec::new();
        for &t in &prompt {
            want = q.step_session(&mut arena_ref, &mut s_ref, t);
        }

        for split in [prompt.len(), 1, 3, 5] {
            let mut arena = KvArena::with_page_rows(d_model, 3);
            let mut s = q.start_session(&mut arena, src);
            let mut got = Vec::new();
            for chunk in prompt.chunks(split) {
                got = q
                    .prefill_sessions(&mut arena, &mut [&mut s], &[chunk])
                    .remove(0);
            }
            assert_eq!(want, got, "chunk size {split}");
            assert_eq!(s.pos(), s_ref.pos());
            for (lc, lc_ref) in s.layers.iter().zip(&s_ref.layers) {
                assert_eq!(
                    arena.k.to_mat(&lc.self_k),
                    arena_ref.k.to_mat(&lc_ref.self_k),
                    "chunk size {split}"
                );
            }
        }
    }

    #[test]
    fn mixed_prefill_and_decode_chunks_are_bit_identical() {
        // One call carrying a 4-row prefill chunk for one session and a
        // 1-row decode step for another must match the two advanced
        // separately.
        let (q, corpus) = setup();
        let chunk: Vec<usize> = vec![BOS, 3, 4, 5];
        let mut arena = KvArena::for_model(&q);
        let mut a = q.start_session(&mut arena, &corpus[0].0);
        let mut b = q.start_session(&mut arena, &corpus[1].0);
        let _ = q.step_session(&mut arena, &mut b, BOS);

        let mut arena2 = KvArena::for_model(&q);
        let mut a2 = q.start_session(&mut arena2, &corpus[0].0);
        let mut b2 = q.start_session(&mut arena2, &corpus[1].0);
        let _ = q.step_session(&mut arena2, &mut b2, BOS);

        let want_a = q.prefill_sessions(&mut arena, &mut [&mut a], &[&chunk]);
        let want_b = q.step_session(&mut arena, &mut b, 7);
        let got = q.prefill_sessions(&mut arena2, &mut [&mut a2, &mut b2], &[&chunk, &[7usize]]);
        assert_eq!(got[0], want_a[0]);
        assert_eq!(got[1], want_b);
    }

    #[test]
    fn prompted_decode_matches_chunked_prefill_continuation() {
        let (q, corpus) = setup();
        let (src, tgt) = &corpus[2];
        let want = q.greedy_decode_with_prompt(src, tgt, 6);
        // Chunked path: prefill [BOS] + prompt in one chunk, then decode.
        let mut arena = KvArena::for_model(&q);
        let mut s = q.start_session(&mut arena, src);
        let mut chunk = vec![BOS];
        chunk.extend_from_slice(tgt);
        let mut logits = q
            .prefill_sessions(&mut arena, &mut [&mut s], &[&chunk])
            .remove(0);
        let mut got = Vec::new();
        for _ in 0..6 {
            let next = tensor::ops::argmax(&logits);
            if next == EOS {
                break;
            }
            got.push(next);
            logits = q.step_session(&mut arena, &mut s, next);
        }
        assert_eq!(want, got);
    }

    #[test]
    fn rollback_then_restep_is_bit_identical() {
        let (q, corpus) = setup();
        let (src, _) = &corpus[0];
        let mut arena = KvArena::for_model(&q);
        let mut s = q.start_session(&mut arena, src);
        let first = q.step_session(&mut arena, &mut s, BOS);
        let second = q.step_session(&mut arena, &mut s, 4);
        // Rewind the second step and replay it: logits and caches must
        // come back bit-identical.
        s.rollback_step(&mut arena);
        assert_eq!(s.pos(), 1);
        let replay = q.step_session(&mut arena, &mut s, 4);
        assert_eq!(second, replay);
        // Rewind everything and replay both steps.
        s.rollback_step(&mut arena);
        s.rollback_step(&mut arena);
        assert_eq!(s.pos(), 0);
        for cache in &s.layers {
            assert_eq!(cache.self_k.rows(), 0);
            assert_eq!(cache.self_v.rows(), 0);
        }
        assert_eq!(first, q.step_session(&mut arena, &mut s, BOS));
        assert_eq!(second, q.step_session(&mut arena, &mut s, 4));
    }

    #[test]
    fn chunk_rollback_across_page_boundary_is_bit_identical() {
        // Consume a chunk that straddles a page boundary, roll the whole
        // chunk back (pages must return to the free list), and replay:
        // the logits must be bit-identical to the first attempt.
        let (q, corpus) = setup();
        let d_model = q.tgt_embedding().d_model();
        let mut arena = KvArena::with_page_rows(d_model, 4);
        let mut s = q.start_session(&mut arena, &corpus[0].0);
        let warm: Vec<usize> = vec![BOS, 3];
        let _ = q.prefill_sessions(&mut arena, &mut [&mut s], &[&warm]);
        let chunk: Vec<usize> = vec![4, 5, 6, 7]; // rows 2..6: straddles page 0/1
        let first = q.prefill_sessions(&mut arena, &mut [&mut s], &[&chunk]);
        let pages_after = arena.pages_in_use();
        s.rollback_rows(&mut arena, chunk.len());
        assert_eq!(s.pos(), 2);
        assert!(arena.pages_in_use() < pages_after, "rollback frees pages");
        let replay = q.prefill_sessions(&mut arena, &mut [&mut s], &[&chunk]);
        assert_eq!(first, replay);
        assert_eq!(arena.pages_in_use(), pages_after);
    }

    #[test]
    fn forked_session_decodes_bit_identically_and_shares_pages() {
        // Fork a session at a page-aligned position: zero extra KV
        // bytes, and the fork's continued decode is bit-identical to an
        // independent cold session fed the same tokens — while the
        // parent's own continuation stays undisturbed.
        let (q, corpus) = setup();
        let (src, _) = &corpus[0];
        let d_model = q.tgt_embedding().d_model();
        let chunk: Vec<usize> = vec![BOS, 3, 4, 5, 6, 7, 3, 4]; // 2 pages of 4
        let mut arena = KvArena::with_page_rows(d_model, 4);
        let mut s = q.start_session(&mut arena, src);
        let _ = q.prefill_sessions(&mut arena, &mut [&mut s], &[&chunk]);
        let bytes_before = arena.kv_bytes_in_use();
        let mut f = s.fork(&mut arena);
        assert_eq!(f.pos(), s.pos());
        assert_eq!(
            arena.kv_bytes_in_use(),
            bytes_before,
            "page-aligned fork must not copy KV"
        );
        // Cold reference for the fork's continuation.
        let mut arena_ref = KvArena::with_page_rows(d_model, 4);
        let mut r = q.start_session(&mut arena_ref, src);
        let _ = q.prefill_sessions(&mut arena_ref, &mut [&mut r], &[&chunk]);
        // Diverge: fork takes token 5, parent takes token 6.
        let got_f = q.step_session(&mut arena, &mut f, 5);
        let want_f = q.step_session(&mut arena_ref, &mut r, 5);
        assert_eq!(want_f, got_f, "forked decode diverged from cold start");
        let mut arena_ref2 = KvArena::with_page_rows(d_model, 4);
        let mut r2 = q.start_session(&mut arena_ref2, src);
        let _ = q.prefill_sessions(&mut arena_ref2, &mut [&mut r2], &[&chunk]);
        let got_p = q.step_session(&mut arena, &mut s, 6);
        let want_p = q.step_session(&mut arena_ref2, &mut r2, 6);
        assert_eq!(want_p, got_p, "parent decode perturbed by fork");
        // Independent teardown releases every page.
        f.release(&mut arena);
        s.release(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
    }

    #[test]
    fn fork_then_truncate_gives_page_aligned_prefix_sharing() {
        // The prefix-cache insertion path: fork a live session, roll
        // the fork back to a page boundary, keep it as the cached
        // snapshot. The snapshot must hold only shared pages (zero
        // extra bytes) and replaying from it must be bit-identical.
        let (q, corpus) = setup();
        let (src, _) = &corpus[0];
        let d_model = q.tgt_embedding().d_model();
        let mut arena = KvArena::with_page_rows(d_model, 4);
        let mut s = q.start_session(&mut arena, src);
        let chunk: Vec<usize> = vec![BOS, 3, 4, 5, 6, 7]; // 6 rows: page + tail
        let _ = q.prefill_sessions(&mut arena, &mut [&mut s], &[&chunk]);
        let bytes_live = arena.kv_bytes_in_use();
        let mut snap = s.fork(&mut arena);
        snap.rollback_rows(&mut arena, 2); // back to the page boundary
        assert_eq!(snap.pos(), 4);
        assert_eq!(
            arena.kv_bytes_in_use(),
            bytes_live,
            "aligned snapshot must cost zero extra pages"
        );
        // A hit: fork the snapshot and replay the suffix on it.
        let mut hit = snap.fork(&mut arena);
        let mut logits = Vec::new();
        for &t in &chunk[4..] {
            logits = q.step_session(&mut arena, &mut hit, t);
        }
        // Cold reference.
        let mut arena_ref = KvArena::with_page_rows(d_model, 4);
        let mut r = q.start_session(&mut arena_ref, src);
        let mut want = Vec::new();
        for &t in &chunk {
            want = q.step_session(&mut arena_ref, &mut r, t);
        }
        assert_eq!(want, logits, "replay from shared snapshot diverged");
        hit.release(&mut arena);
        snap.release(&mut arena);
        s.release(&mut arena);
        assert_eq!(arena.kv_bytes_in_use(), 0);
    }

    #[test]
    #[should_panic(expected = "rollback_step on a fresh session")]
    fn rollback_on_fresh_session_panics() {
        let (q, corpus) = setup();
        let mut arena = KvArena::for_model(&q);
        let mut s = q.start_session(&mut arena, &corpus[0].0);
        s.rollback_step(&mut arena);
    }

    #[test]
    #[should_panic(expected = "one token per session")]
    fn batched_step_rejects_length_mismatch() {
        let (q, corpus) = setup();
        let mut arena = KvArena::for_model(&q);
        let mut s = q.start_session(&mut arena, &corpus[0].0);
        let _ = q.step_sessions(&mut arena, &mut [&mut s], &[BOS, BOS]);
    }

    #[test]
    fn works_in_fp32_softmax_mode_too() {
        let (mut q, corpus) = setup();
        q.set_softmax_mode(SoftmaxMode::Fp32);
        let (src, _) = &corpus[2];
        assert_eq!(
            q.greedy_decode(src, BOS, EOS, 8),
            q.greedy_decode_incremental(src, 8)
        );
    }
}
