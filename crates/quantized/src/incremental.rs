//! KV-cached incremental decoding for the quantized model.
//!
//! Mirrors `transformer::incremental` in the INT8 domain: the projected
//! self-attention K/V *codes* of every decoder layer are cached, and the
//! fixed cross-attention K/V codes are computed once per source
//! sentence. Every integer operation per row is identical to the full
//! recompute (the datapath is row-independent), so decodes are
//! **bit-identical** to [`QuantSeq2Seq::greedy_decode`] — asserted by
//! tests — while doing O(L) layer passes instead of O(L²).

use tensor::{gemm, Mat};
use transformer::tasks::{BOS, EOS};

use crate::mha::QuantMhaResBlock;
use crate::model::QuantSeq2Seq;
use crate::qlinear::residual_add_i8;
use crate::softmax::scaled_masked_softmax;

#[derive(Debug, Clone)]
struct QLayerCache {
    self_k: Mat<i8>,
    self_v: Mat<i8>,
    cross_k: Mat<i8>,
    cross_v: Mat<i8>,
}

/// An INT8 decoding session over one source sentence.
#[derive(Debug, Clone)]
pub struct QuantIncrementalSession {
    memory_rows: usize,
    layers: Vec<QLayerCache>,
    pos: usize,
}

/// One cached-attention ResBlock applied to a single row of codes.
fn resblock_row(
    block: &QuantMhaResBlock,
    x_row: &Mat<i8>,
    keys: &Mat<i8>,
    vals: &Mat<i8>,
) -> Mat<i8> {
    let (wq, _, _, wo) = block.projections();
    let d_k = block.d_k();
    let q = wq.forward(x_row);
    let mut p_panels = Vec::with_capacity(block.heads());
    for i in 0..block.heads() {
        let c0 = i * d_k;
        let qi = q.submatrix(0, c0, 1, d_k).expect("head panel");
        let ki = keys.submatrix(0, c0, keys.rows(), d_k).expect("head panel");
        let vi = vals.submatrix(0, c0, vals.rows(), d_k).expect("head panel");
        let d_acc = gemm::matmul_i8_nt(&qi, &ki).expect("shapes");
        let probs = scaled_masked_softmax(&d_acc, block.d_scale(), d_k, None, block.softmax_mode());
        let p_acc = gemm::matmul_i8(&probs, &vi).expect("shapes");
        p_panels.push(p_acc.map(|&a| block.requantize_p(a)));
    }
    let p = Mat::hconcat(&p_panels).expect("heads share rows");
    let g_matmul = wo.forward(&p);
    let g = residual_add_i8(&g_matmul, x_row);
    block.layernorm().forward(&g)
}

impl QuantSeq2Seq {
    /// Opens an incremental decoding session: encodes `src` and
    /// precomputes each decoder layer's cross-attention K/V codes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn start_session(&self, src: &[usize]) -> QuantIncrementalSession {
        assert!(!src.is_empty(), "source must be non-empty");
        let memory = self.encode(src);
        let d_model = memory.cols();
        let layers = self
            .decoder_layers()
            .iter()
            .map(|layer| {
                let (_, wk, wv, _) = layer.cross_mha.projections();
                QLayerCache {
                    self_k: Mat::zeros(0, d_model),
                    self_v: Mat::zeros(0, d_model),
                    cross_k: wk.forward(&memory),
                    cross_v: wv.forward(&memory),
                }
            })
            .collect();
        QuantIncrementalSession {
            memory_rows: memory.rows(),
            layers,
            pos: 0,
        }
    }

    /// Feeds one target token and returns the next-token logits (FP32,
    /// from the output projection). Bit-identical to the full-prefix
    /// decode at the same position.
    pub fn step_session(&self, session: &mut QuantIncrementalSession, token: usize) -> Vec<f32> {
        let emb = self.tgt_embedding().embed_at(token, session.pos);
        let emb_row = Mat::from_vec(1, emb.len(), emb).expect("row");
        let mut x = self.decoder_layers()[0].self_mha.quantize_input_q(&emb_row);
        for (layer, cache) in self.decoder_layers().iter().zip(&mut session.layers) {
            // Extend the projected self-attention cache with this row.
            let (_, wk, wv, _) = layer.self_mha.projections();
            let k_new = wk.forward(&x);
            let v_new = wv.forward(&x);
            cache.self_k = Mat::vconcat(&[cache.self_k.clone(), k_new]).expect("widths");
            cache.self_v = Mat::vconcat(&[cache.self_v.clone(), v_new]).expect("widths");
            let a = resblock_row(&layer.self_mha, &x, &cache.self_k, &cache.self_v);
            let b = resblock_row(&layer.cross_mha, &a, &cache.cross_k, &cache.cross_v);
            let (c, _) = layer.ffn.forward(&b);
            x = c;
        }
        session.pos += 1;
        let last_ffn = &self.decoder_layers().last().expect("nonempty decoder").ffn;
        let x_f32 = last_ffn.dequantize_output(&x);
        self.output_projection_logits(&x_f32)
    }

    /// Greedy decoding through the INT8 KV cache.
    pub fn greedy_decode_incremental(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let mut session = self.start_session(src);
        let mut out = Vec::new();
        let mut token = BOS;
        for _ in 0..max_len {
            let logits = self.step_session(&mut session, token);
            let next = tensor::ops::argmax(&logits);
            if next == EOS {
                break;
            }
            out.push(next);
            token = next;
        }
        out
    }
}

impl QuantIncrementalSession {
    /// Target tokens consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Encoder memory length this session attends over.
    pub fn memory_rows(&self) -> usize {
        self.memory_rows
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    #[allow(clippy::type_complexity)]
    fn setup() -> (QuantSeq2Seq, Vec<(Vec<usize>, Vec<usize>)>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(21);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(5, &mut StdRng::seed_from_u64(22));
        (
            QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware),
            corpus,
        )
    }

    #[test]
    fn incremental_decode_is_bit_identical_to_full() {
        let (q, corpus) = setup();
        for (src, _) in &corpus {
            let full = q.greedy_decode(src, BOS, EOS, 8);
            let inc = q.greedy_decode_incremental(src, 8);
            assert_eq!(full, inc, "src {src:?}");
        }
    }

    #[test]
    fn step_logits_match_teacher_forced_last_row() {
        let (q, corpus) = setup();
        let (src, tgt) = &corpus[0];
        let mut tin = vec![BOS];
        tin.extend_from_slice(tgt);
        let full = q.forward_logits(src, &tin);
        let mut session = q.start_session(src);
        let mut got = Vec::new();
        for &t in &tin {
            got = q.step_session(&mut session, t);
        }
        let want = full.row(tin.len() - 1);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g, w, "logits must be bit-identical");
        }
    }

    #[test]
    fn session_bookkeeping() {
        let (q, corpus) = setup();
        let (src, _) = &corpus[1];
        let mut s = q.start_session(src);
        assert_eq!(s.pos(), 0);
        assert_eq!(s.memory_rows(), src.len());
        let _ = q.step_session(&mut s, BOS);
        assert_eq!(s.pos(), 1);
    }

    #[test]
    fn works_in_fp32_softmax_mode_too() {
        let (mut q, corpus) = setup();
        q.set_softmax_mode(SoftmaxMode::Fp32);
        let (src, _) = &corpus[2];
        assert_eq!(
            q.greedy_decode(src, BOS, EOS, 8),
            q.greedy_decode_incremental(src, 8)
        );
    }
}
