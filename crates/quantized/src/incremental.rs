//! KV-cached incremental decoding for the quantized model.
//!
//! Mirrors `transformer::incremental` in the INT8 domain: the projected
//! self-attention K/V *codes* of every decoder layer are cached, and the
//! fixed cross-attention K/V codes are computed once per source
//! sentence. Every integer operation per row is identical to the full
//! recompute (the datapath is row-independent), so decodes are
//! **bit-identical** to [`QuantSeq2Seq::greedy_decode`] — asserted by
//! tests — while doing O(L) layer passes instead of O(L²).
//!
//! Sessions can also advance **together**: [`QuantSeq2Seq::step_sessions`]
//! stacks one active row per session and runs each layer's projections,
//! output matmul and FFN as single multi-row GEMMs (one `matmul_i8` per
//! weight matrix per step instead of one per request). The GEMM kernels
//! never reorder a row's accumulation, so every batched row is
//! bit-identical to the single-session path for any batch composition —
//! the property the `serving` crate's continuous batcher is built on.

use graph::{Executor, Graph};
use tensor::Mat;
use transformer::tasks::{BOS, EOS};

use crate::exec::{QRowVal, QuantRowExec};
use crate::mha::QuantMhaResBlock;
use crate::model::QuantSeq2Seq;

#[derive(Debug, Clone)]
struct QLayerCache {
    self_k: Mat<i8>,
    self_v: Mat<i8>,
    cross_k: Mat<i8>,
    cross_v: Mat<i8>,
}

/// An INT8 decoding session over one source sentence.
#[derive(Debug, Clone)]
pub struct QuantIncrementalSession {
    memory_rows: usize,
    layers: Vec<QLayerCache>,
    pos: usize,
    /// Scratch row for the concatenated head outputs `P` — allocated
    /// once per session and fully overwritten by every ResBlock pass, so
    /// the per-token hot loop never allocates head panels.
    p_buf: Mat<i8>,
}

/// The cached-KV operator graph shared by every decoder MHA ResBlock
/// (all layers have the same `d_model`/`h`, so one graph serves all).
fn cached_graph(block: &QuantMhaResBlock) -> Graph {
    graph::mha_cached_graph(&block.graph_config())
}

/// One cached-attention ResBlock applied to a single row of codes,
/// through [`QuantRowExec`]'s zero-allocation scratch path. `p_buf`
/// (1 × d_model) receives the concatenated requantized head outputs;
/// every column is written, so its previous contents are irrelevant.
fn resblock_row(
    g: &Graph,
    block: &QuantMhaResBlock,
    x_row: &Mat<i8>,
    keys: &Mat<i8>,
    vals: &Mat<i8>,
    p_buf: &mut Mat<i8>,
) -> Mat<i8> {
    let mut exec = QuantRowExec::with_scratch(block, p_buf);
    let mut env = exec.run(
        g,
        vec![
            ("x", QRowVal::Codes(x_row.clone())),
            ("keys", QRowVal::Caches(vec![keys])),
            ("vals", QRowVal::Caches(vec![vals])),
        ],
        None,
    );
    env.take("y").into_codes()
}

/// One cached-attention ResBlock applied to a stack of rows, one row per
/// session, through [`QuantRowExec`]'s batched path: the `W_Q` and `W_G`
/// matmuls run once over all rows; the per-head attention (whose K/V
/// lengths differ per session) fans out across threads per row. Row `r`
/// of the result is bit-identical to [`resblock_row`] on row `r` alone
/// (integer GEMMs are row-independent).
fn resblock_rows(
    g: &Graph,
    block: &QuantMhaResBlock,
    x: &Mat<i8>,
    kvs: &[(&Mat<i8>, &Mat<i8>)],
) -> Mat<i8> {
    let mut exec = QuantRowExec::new(block);
    let mut env = exec.run(
        g,
        vec![
            ("x", QRowVal::Codes(x.clone())),
            ("keys", QRowVal::Caches(kvs.iter().map(|kv| kv.0).collect())),
            ("vals", QRowVal::Caches(kvs.iter().map(|kv| kv.1).collect())),
        ],
        None,
    );
    env.take("y").into_codes()
}

impl QuantSeq2Seq {
    /// Opens an incremental decoding session: encodes `src` and
    /// precomputes each decoder layer's cross-attention K/V codes.
    ///
    /// # Panics
    ///
    /// Panics if `src` is empty.
    pub fn start_session(&self, src: &[usize]) -> QuantIncrementalSession {
        assert!(!src.is_empty(), "source must be non-empty");
        let memory = self.encode(src);
        let d_model = memory.cols();
        let max_len = self.max_len();
        let layers = self
            .decoder_layers()
            .iter()
            .map(|layer| {
                let (_, wk, wv, _) = layer.cross_mha.projections();
                // Reserve the whole decode horizon up front so the
                // per-token push_row never reallocates mid-sequence.
                let mut self_k = Mat::zeros(0, d_model);
                self_k.reserve_rows(max_len);
                let mut self_v = Mat::zeros(0, d_model);
                self_v.reserve_rows(max_len);
                QLayerCache {
                    self_k,
                    self_v,
                    cross_k: wk.forward(&memory),
                    cross_v: wv.forward(&memory),
                }
            })
            .collect();
        QuantIncrementalSession {
            memory_rows: memory.rows(),
            layers,
            pos: 0,
            p_buf: Mat::zeros(1, d_model),
        }
    }

    /// Feeds one target token and returns the next-token logits (FP32,
    /// from the output projection). Bit-identical to the full-prefix
    /// decode at the same position.
    pub fn step_session(&self, session: &mut QuantIncrementalSession, token: usize) -> Vec<f32> {
        let emb = self.tgt_embedding().embed_at(token, session.pos);
        let emb_row = Mat::from_vec(1, emb.len(), emb).expect("row");
        let mut x = self.decoder_layers()[0].self_mha.quantize_input_q(&emb_row);
        let g = cached_graph(&self.decoder_layers()[0].self_mha);
        for (layer, cache) in self.decoder_layers().iter().zip(&mut session.layers) {
            // Extend the projected self-attention cache with this row.
            let (_, wk, wv, _) = layer.self_mha.projections();
            let k_new = wk.forward(&x);
            let v_new = wv.forward(&x);
            cache.self_k.push_row(k_new.row(0));
            cache.self_v.push_row(v_new.row(0));
            let a = resblock_row(
                &g,
                &layer.self_mha,
                &x,
                &cache.self_k,
                &cache.self_v,
                &mut session.p_buf,
            );
            let b = resblock_row(
                &g,
                &layer.cross_mha,
                &a,
                &cache.cross_k,
                &cache.cross_v,
                &mut session.p_buf,
            );
            let (c, _) = layer.ffn.forward(&b);
            x = c;
        }
        session.pos += 1;
        let last_ffn = &self.decoder_layers().last().expect("nonempty decoder").ffn;
        let x_f32 = last_ffn.dequantize_output(&x);
        self.output_projection_logits(&x_f32)
    }

    /// Advances several sessions by one token each, batching the GEMMs:
    /// the active rows are stacked into one `b × d_model` matrix and each
    /// layer's `W_K`/`W_V`/`W_Q`/`W_G` projections, FFN sublayers and the
    /// final output projection run **once** over all rows, while the
    /// per-session attention (whose cache lengths differ) fans out across
    /// threads. Row `r`'s logits are bit-identical to
    /// [`QuantSeq2Seq::step_session`] on session `r` alone — the GEMM
    /// kernels never reorder a row's accumulation — so continuous
    /// batching cannot change any decode.
    ///
    /// Sessions may sit at different positions; each token is embedded at
    /// its own session's position.
    ///
    /// # Panics
    ///
    /// Panics if `sessions` is empty or its length differs from
    /// `tokens`'.
    pub fn step_sessions(
        &self,
        sessions: &mut [&mut QuantIncrementalSession],
        tokens: &[usize],
    ) -> Vec<Vec<f32>> {
        assert_eq!(sessions.len(), tokens.len(), "one token per session");
        assert!(!sessions.is_empty(), "empty step batch");
        let b = sessions.len();
        let d_model = self.tgt_embedding().d_model();
        let mut emb = Mat::zeros(b, d_model);
        for (r, (session, &token)) in sessions.iter().zip(tokens).enumerate() {
            emb.row_mut(r)
                .copy_from_slice(&self.tgt_embedding().embed_at(token, session.pos));
        }
        let mut x = self.decoder_layers()[0].self_mha.quantize_input_q(&emb);
        let g = cached_graph(&self.decoder_layers()[0].self_mha);
        for (l, layer) in self.decoder_layers().iter().enumerate() {
            // Extend every session's projected self-attention cache with
            // its row of this step's batched K/V projections.
            let (_, wk, wv, _) = layer.self_mha.projections();
            let k_new = wk.forward(&x);
            let v_new = wv.forward(&x);
            for (r, session) in sessions.iter_mut().enumerate() {
                session.layers[l].self_k.push_row(k_new.row(r));
                session.layers[l].self_v.push_row(v_new.row(r));
            }
            let self_kvs: Vec<(&Mat<i8>, &Mat<i8>)> = sessions
                .iter()
                .map(|s| (&s.layers[l].self_k, &s.layers[l].self_v))
                .collect();
            let a = resblock_rows(&g, &layer.self_mha, &x, &self_kvs);
            let cross_kvs: Vec<(&Mat<i8>, &Mat<i8>)> = sessions
                .iter()
                .map(|s| (&s.layers[l].cross_k, &s.layers[l].cross_v))
                .collect();
            let bm = resblock_rows(&g, &layer.cross_mha, &a, &cross_kvs);
            let (c, _) = layer.ffn.forward(&bm);
            x = c;
        }
        for session in sessions.iter_mut() {
            session.pos += 1;
        }
        let last_ffn = &self.decoder_layers().last().expect("nonempty decoder").ffn;
        let x_f32 = last_ffn.dequantize_output(&x);
        let logits = self.output_projection_rows(&x_f32);
        (0..b).map(|r| logits.row(r).to_vec()).collect()
    }

    /// Greedy decoding through the INT8 KV cache.
    pub fn greedy_decode_incremental(&self, src: &[usize], max_len: usize) -> Vec<usize> {
        let mut session = self.start_session(src);
        let mut out = Vec::new();
        let mut token = BOS;
        for _ in 0..max_len {
            let logits = self.step_session(&mut session, token);
            let next = tensor::ops::argmax(&logits);
            if next == EOS {
                break;
            }
            out.push(next);
            token = next;
        }
        out
    }
}

impl QuantIncrementalSession {
    /// Target tokens consumed so far.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Encoder memory length this session attends over.
    pub fn memory_rows(&self) -> usize {
        self.memory_rows
    }

    /// Rewinds the session by one step: drops the newest row from every
    /// layer's projected self-attention K/V cache and decrements `pos`.
    ///
    /// The caches hold *inputs* to the datapath (the projected codes of
    /// tokens already consumed), so after a rollback the next
    /// `step_session` with the same token is bit-identical to the first
    /// attempt — the recovery primitive the serving layer's
    /// retry-on-detected-fault path is built on.
    ///
    /// # Panics
    ///
    /// Panics if the session has not consumed any tokens yet.
    pub fn rollback_step(&mut self) {
        assert!(self.pos > 0, "rollback_step on a fresh session");
        self.pos -= 1;
        for cache in &mut self.layers {
            cache.self_k.truncate_rows(self.pos);
            cache.self_v.truncate_rows(self.pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::SoftmaxMode;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::model::Seq2SeqTransformer;
    use transformer::tasks::{Task, TaskGen};

    #[allow(clippy::type_complexity)]
    fn setup() -> (QuantSeq2Seq, Vec<(Vec<usize>, Vec<usize>)>) {
        let mut cfg = ModelConfig::tiny_for_tests();
        cfg.n_layers = 2;
        let mut rng = StdRng::seed_from_u64(21);
        let model = Seq2SeqTransformer::new(&cfg, &mut rng);
        let gen = TaskGen::new(Task::Reverse, cfg.vocab, 3, 7);
        let corpus = gen.corpus(5, &mut StdRng::seed_from_u64(22));
        (
            QuantSeq2Seq::from_trained(&model, &corpus, SoftmaxMode::Hardware),
            corpus,
        )
    }

    #[test]
    fn incremental_decode_is_bit_identical_to_full() {
        let (q, corpus) = setup();
        for (src, _) in &corpus {
            let full = q.greedy_decode(src, BOS, EOS, 8);
            let inc = q.greedy_decode_incremental(src, 8);
            assert_eq!(full, inc, "src {src:?}");
        }
    }

    #[test]
    fn step_logits_match_teacher_forced_last_row() {
        let (q, corpus) = setup();
        let (src, tgt) = &corpus[0];
        let mut tin = vec![BOS];
        tin.extend_from_slice(tgt);
        let full = q.forward_logits(src, &tin);
        let mut session = q.start_session(src);
        let mut got = Vec::new();
        for &t in &tin {
            got = q.step_session(&mut session, t);
        }
        let want = full.row(tin.len() - 1);
        assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want) {
            assert_eq!(g, w, "logits must be bit-identical");
        }
    }

    #[test]
    fn session_bookkeeping() {
        let (q, corpus) = setup();
        let (src, _) = &corpus[1];
        let mut s = q.start_session(src);
        assert_eq!(s.pos(), 0);
        assert_eq!(s.memory_rows(), src.len());
        let _ = q.step_session(&mut s, BOS);
        assert_eq!(s.pos(), 1);
    }

    #[test]
    fn kv_caches_reserve_decode_horizon() {
        let (q, corpus) = setup();
        let s = q.start_session(&corpus[0].0);
        for cache in &s.layers {
            assert!(cache.self_k.row_capacity() >= q.max_len());
            assert!(cache.self_v.row_capacity() >= q.max_len());
        }
    }

    #[test]
    fn batched_step_is_bit_identical_to_single_steps() {
        // Advance the same sources once through step_session and once
        // through step_sessions (all together): every logit must match
        // bit for bit, even with sessions at different positions.
        let (q, corpus) = setup();
        let srcs: Vec<&Vec<usize>> = corpus.iter().map(|(s, _)| s).collect();
        let mut singles: Vec<QuantIncrementalSession> =
            srcs.iter().map(|s| q.start_session(s)).collect();
        let mut batched: Vec<QuantIncrementalSession> =
            srcs.iter().map(|s| q.start_session(s)).collect();
        // Desynchronize positions: pre-step a prefix of the sessions.
        for (i, (single, batch)) in singles.iter_mut().zip(&mut batched).enumerate().take(2) {
            let tok = 3 + i;
            let a = q.step_session(single, tok);
            let b = q.step_sessions(&mut [batch], &[tok]);
            assert_eq!(a, b[0]);
        }
        let tokens: Vec<usize> = (0..srcs.len()).map(|i| BOS + i % 3).collect();
        let want: Vec<Vec<f32>> = singles
            .iter_mut()
            .zip(&tokens)
            .map(|(s, &t)| q.step_session(s, t))
            .collect();
        let mut refs: Vec<&mut QuantIncrementalSession> = batched.iter_mut().collect();
        let got = q.step_sessions(&mut refs, &tokens);
        assert_eq!(want, got);
        for (s, b) in singles.iter().zip(&batched) {
            assert_eq!(s.pos(), b.pos());
            for (lc_s, lc_b) in s.layers.iter().zip(&b.layers) {
                assert_eq!(lc_s.self_k, lc_b.self_k);
                assert_eq!(lc_s.self_v, lc_b.self_v);
            }
        }
    }

    #[test]
    fn rollback_then_restep_is_bit_identical() {
        let (q, corpus) = setup();
        let (src, _) = &corpus[0];
        let mut s = q.start_session(src);
        let first = q.step_session(&mut s, BOS);
        let second = q.step_session(&mut s, 4);
        // Rewind the second step and replay it: logits and caches must
        // come back bit-identical.
        s.rollback_step();
        assert_eq!(s.pos(), 1);
        let replay = q.step_session(&mut s, 4);
        assert_eq!(second, replay);
        // Rewind everything and replay both steps.
        s.rollback_step();
        s.rollback_step();
        assert_eq!(s.pos(), 0);
        for cache in &s.layers {
            assert_eq!(cache.self_k.rows(), 0);
            assert_eq!(cache.self_v.rows(), 0);
        }
        assert_eq!(first, q.step_session(&mut s, BOS));
        assert_eq!(second, q.step_session(&mut s, 4));
    }

    #[test]
    #[should_panic(expected = "rollback_step on a fresh session")]
    fn rollback_on_fresh_session_panics() {
        let (q, corpus) = setup();
        let mut s = q.start_session(&corpus[0].0);
        s.rollback_step();
    }

    #[test]
    #[should_panic(expected = "one token per session")]
    fn batched_step_rejects_length_mismatch() {
        let (q, corpus) = setup();
        let mut s = q.start_session(&corpus[0].0);
        let _ = q.step_sessions(&mut [&mut s], &[BOS, BOS]);
    }

    #[test]
    fn works_in_fp32_softmax_mode_too() {
        let (mut q, corpus) = setup();
        q.set_softmax_mode(SoftmaxMode::Fp32);
        let (src, _) = &corpus[2];
        assert_eq!(
            q.greedy_decode(src, BOS, EOS, 8),
            q.greedy_decode_incremental(src, 8)
        );
    }
}
