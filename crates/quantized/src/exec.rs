//! INT8 executors for the ResBlock operator graphs.
//!
//! [`QuantExec`] interprets a graph with the bit-accurate INT8
//! primitives — it is what [`QuantMhaResBlock::forward`] and
//! [`QuantFfnResBlock::forward`] run through. Per-head groups fan out
//! across threads exactly as the hand-rolled loop did; the datapath is
//! bit-exact integer arithmetic and panels are merged in head order, so
//! the result is identical for any thread count.
//!
//! [`QuantRowExec`] executes the cached-KV graph for incremental INT8
//! decoding. In the single-row hot path it writes the requantized head
//! outputs straight into a caller-provided scratch row (the session's
//! `p_buf`), so the per-token loop never allocates head panels. Caches
//! are consumed through [`CacheRef`], which reads either a flat code
//! matrix or a paged [`tensor::kvpool`] sequence — bit-identically,
//! since both hand the GEMM the same per-head panel bytes. For chunked
//! prefill the executor also accepts per-session row *groups*
//! ([`QuantRowExec::prefill`]): each session contributes a chunk of
//! consecutive rows that attend over its cache under an intra-chunk
//! causal mask, which the masked softmax turns into exactly-zero
//! probability codes — so a chunked prefill is bit-identical to feeding
//! the same rows one step at a time.

use graph::{Env, ExecStats, Executor, Graph, GraphKind, Node, Op, PlanStep, WeightId};
use tensor::kvpool::{KvPool, KvSeq};
use tensor::{gemm, Mat};

use crate::ffn::QuantFfnResBlock;
use crate::mha::QuantMhaResBlock;
use crate::qlinear::{residual_add_i8, QLinear};
use crate::softmax::scaled_masked_softmax;

/// Value domain of [`QuantExec`]: INT8 code matrices on the wires,
/// INT32 accumulators between a GEMM (or residual adder) and the module
/// that consumes it.
#[derive(Debug, Clone, PartialEq)]
pub enum QVal {
    /// INT8 codes.
    I8(Mat<i8>),
    /// INT32 accumulators.
    I32(Mat<i32>),
}

impl QVal {
    /// Unwraps the INT8 variant.
    ///
    /// # Panics
    ///
    /// Panics if this value holds accumulators.
    pub fn into_i8(self) -> Mat<i8> {
        match self {
            QVal::I8(m) => m,
            QVal::I32(_) => panic!("expected i8 codes, found i32 accumulators"),
        }
    }

    fn as_i8(&self) -> &Mat<i8> {
        match self {
            QVal::I8(m) => m,
            QVal::I32(_) => panic!("expected i8 codes, found i32 accumulators"),
        }
    }

    fn as_i32(&self) -> &Mat<i32> {
        match self {
            QVal::I32(m) => m,
            QVal::I8(_) => panic!("expected i32 accumulators, found i8 codes"),
        }
    }
}

/// Slot lookup that layers a head group's not-yet-merged outputs over
/// the shared environment, so steps inside a group can read their own
/// group's earlier results while other groups run concurrently.
struct Scope<'e> {
    env: &'e Env<QVal>,
    local: &'e [(usize, QVal)],
}

impl Scope<'_> {
    fn value(&self, slot: usize) -> &QVal {
        self.local
            .iter()
            .rev()
            .find(|(s, _)| *s == slot)
            .map(|(_, v)| v)
            .unwrap_or_else(|| self.env.value(slot))
    }
}

/// Which quantized ResBlock a [`QuantExec`] draws parameters from.
#[derive(Debug, Clone, Copy)]
enum QuantBlock<'a> {
    Mha(&'a QuantMhaResBlock),
    Ffn(&'a QuantFfnResBlock),
}

/// INT8 graph interpreter over a quantized ResBlock's parameters.
#[derive(Debug)]
pub struct QuantExec<'a> {
    block: QuantBlock<'a>,
    stats: ExecStats,
}

impl<'a> QuantExec<'a> {
    /// Executor over a quantized MHA ResBlock.
    pub fn mha(block: &'a QuantMhaResBlock) -> Self {
        Self {
            block: QuantBlock::Mha(block),
            stats: ExecStats::default(),
        }
    }

    /// Executor over a quantized FFN ResBlock.
    pub fn ffn(block: &'a QuantFfnResBlock) -> Self {
        Self {
            block: QuantBlock::Ffn(block),
            stats: ExecStats::default(),
        }
    }

    fn weight(&self, id: WeightId) -> &'a QLinear {
        match (self.block, id) {
            (QuantBlock::Mha(b), WeightId::Wq) => b.projections().0,
            (QuantBlock::Mha(b), WeightId::Wk) => b.projections().1,
            (QuantBlock::Mha(b), WeightId::Wv) => b.projections().2,
            (QuantBlock::Mha(b), WeightId::Wo) => b.projections().3,
            (QuantBlock::Ffn(b), WeightId::W1) => b.sublayers().0,
            (QuantBlock::Ffn(b), WeightId::W2) => b.sublayers().1,
            (_, id) => panic!("no {id:?} bound to this executor"),
        }
    }

    fn eval(
        &self,
        node: &Node,
        step: &PlanStep,
        scope: &Scope<'_>,
        mask: Option<&Mat<bool>>,
    ) -> QVal {
        let input = |i: usize| scope.value(step.inputs[i]);
        match node.op {
            Op::Linear(id) => QVal::I8(self.weight(id).forward(input(0).as_i8())),
            Op::SplitHeads => {
                let (d_k, head) = match self.block {
                    QuantBlock::Mha(b) => (b.d_k(), node.head.expect("head group")),
                    QuantBlock::Ffn(_) => panic!("SplitHeads in an FFN graph"),
                };
                let x = input(0).as_i8();
                QVal::I8(
                    x.submatrix(0, head * d_k, x.rows(), d_k)
                        .expect("head panel"),
                )
            }
            Op::HeadMatmul {
                transpose_rhs: true,
            } => QVal::I32(
                gemm::matmul_i8_nt(input(0).as_i8(), input(1).as_i8()).expect("head shapes"),
            ),
            Op::HeadMatmul {
                transpose_rhs: false,
            } => {
                // Context matmul: the accumulators are requantized into P
                // codes in the systolic array's output drain (Algorithm 1
                // line 7), so this node produces codes, not accumulators.
                let block = match self.block {
                    QuantBlock::Mha(b) => b,
                    QuantBlock::Ffn(_) => panic!("HeadMatmul in an FFN graph"),
                };
                let p_acc =
                    gemm::matmul_i8(input(0).as_i8(), input(1).as_i8()).expect("head shapes");
                QVal::I8(p_acc.map(|&a| block.requantize_p(a)))
            }
            Op::ScaledMaskedSoftmax => {
                let block = match self.block {
                    QuantBlock::Mha(b) => b,
                    QuantBlock::Ffn(_) => panic!("softmax in an FFN graph"),
                };
                QVal::I8(scaled_masked_softmax(
                    input(0).as_i32(),
                    block.d_scale(),
                    block.d_k(),
                    mask,
                    block.softmax_mode(),
                ))
            }
            Op::Concat => {
                let panels: Vec<Mat<i8>> = step
                    .inputs
                    .iter()
                    .map(|&s| scope.value(s).as_i8().clone())
                    .collect();
                QVal::I8(Mat::hconcat(&panels).expect("heads share rows"))
            }
            Op::Relu => QVal::I8(input(0).as_i8().map(|&v| v.max(0))),
            // Residual add on codes widens to i32 accumulators; argument
            // order (sublayer, residual) mirrors the pre-refactor calls —
            // integer addition is exact and symmetric either way.
            Op::Add => QVal::I32(residual_add_i8(input(1).as_i8(), input(0).as_i8())),
            Op::LinearRelu(id) => QVal::I8(self.weight(id).forward_relu(input(0).as_i8())),
            Op::LinearAdd(id) => QVal::I32(
                self.weight(id)
                    .forward_add(input(0).as_i8(), input(1).as_i8()),
            ),
            Op::LayerNorm => {
                let ln = match self.block {
                    QuantBlock::Mha(b) => b.layernorm(),
                    QuantBlock::Ffn(b) => b.layernorm(),
                };
                QVal::I8(ln.forward(input(0).as_i32()))
            }
        }
    }

    /// Bumps the fusion counters when `node` is a fused op: one fused
    /// node, and the elided INT8 producer output (same shape as the
    /// fused output, one byte per code).
    fn note_fused(&mut self, node: &Node, out: &QVal) {
        if matches!(node.op, Op::LinearRelu(_) | Op::LinearAdd(_)) {
            let (r, c) = match out {
                QVal::I8(m) => m.shape(),
                QVal::I32(m) => m.shape(),
            };
            self.stats.ops_fused += 1;
            self.stats.intermediates_elided_bytes += r * c;
            graph::tally::note_fused(1, r * c);
        }
    }
}

impl Executor for QuantExec<'_> {
    type Value = QVal;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, QVal)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<QVal> {
        let detected0 = faults::hooks_active().then(|| faults::counters().detected);
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        // Split the plan into the pre-head prefix, the contiguous per-head
        // region, and the post-head suffix (the graph validator guarantees
        // this shape). Heads fan out across threads — Algorithm 1's first
        // loop — everything else runs in plan order.
        let is_head = |s: usize| graph.nodes[plan.steps[s].node].head.is_some();
        let pre_end = (0..plan.steps.len())
            .find(|&s| is_head(s))
            .unwrap_or(plan.steps.len());
        let post_start = (pre_end..plan.steps.len())
            .find(|&s| !is_head(s))
            .unwrap_or(plan.steps.len());
        for step in &plan.steps[..pre_end] {
            let scope = Scope {
                env: &env,
                local: &[],
            };
            let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
            self.note_fused(&graph.nodes[step.node], &out);
            env.set(step.output, out);
        }
        if pre_end < post_start {
            let mut head_groups: Vec<Vec<usize>> = Vec::new();
            for s in pre_end..post_start {
                let h = graph.nodes[plan.steps[s].node].head.expect("head region");
                if h >= head_groups.len() {
                    head_groups.push(Vec::new());
                }
                head_groups[h].push(s);
            }
            let computed = tensor::par::par_map(&head_groups, |group| {
                let mut local: Vec<(usize, QVal)> = Vec::with_capacity(group.len());
                for &s in group {
                    let step = &plan.steps[s];
                    let scope = Scope {
                        env: &env,
                        local: &local,
                    };
                    let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
                    local.push((step.output, out));
                }
                local
            });
            for (slot, value) in computed.into_iter().flatten() {
                env.set(slot, value);
            }
        }
        for step in &plan.steps[post_start..] {
            let scope = Scope {
                env: &env,
                local: &[],
            };
            let out = self.eval(&graph.nodes[step.node], step, &scope, mask);
            self.note_fused(&graph.nodes[step.node], &out);
            env.set(step.output, out);
        }
        self.stats.nodes += plan.steps.len();
        if let Some(d0) = detected0 {
            self.stats.faults_detected += faults::counters().detected.saturating_sub(d0) as usize;
        }
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

/// A borrowed projected-K/V code cache: either a flat matrix or a
/// paged sequence inside a shared [`KvPool`]. Both expose the same
/// rows in the same order, so every consumer is bit-identical across
/// the two storage layouts.
#[derive(Debug, Clone, Copy)]
pub enum CacheRef<'a> {
    /// A flat `rows × d_model` code matrix.
    Flat(&'a Mat<i8>),
    /// A paged sequence (block table) inside a shared pool.
    Paged {
        /// The pool holding the pages.
        pool: &'a KvPool<i8>,
        /// The sequence's block table.
        seq: &'a KvSeq,
    },
}

impl<'a> CacheRef<'a> {
    /// Wraps a flat code matrix.
    pub fn flat(m: &'a Mat<i8>) -> Self {
        CacheRef::Flat(m)
    }

    /// Wraps a paged sequence.
    pub fn paged(pool: &'a KvPool<i8>, seq: &'a KvSeq) -> Self {
        CacheRef::Paged { pool, seq }
    }

    /// Logical cache rows (the decode position).
    pub fn rows(&self) -> usize {
        match self {
            CacheRef::Flat(m) => m.rows(),
            CacheRef::Paged { seq, .. } => seq.rows(),
        }
    }

    /// Copies the head panel (columns `c0 .. c0 + width`, all rows) into
    /// a dense matrix. One copy either way: `Mat::submatrix` for flat
    /// storage, [`KvPool::gather_panel`] for paged.
    pub fn panel(&self, c0: usize, width: usize) -> Mat<i8> {
        match self {
            CacheRef::Flat(m) => m.submatrix(0, c0, m.rows(), width).expect("head panel"),
            CacheRef::Paged { pool, seq } => pool.gather_panel(seq, c0, width),
        }
    }

    /// Borrows logical row `r` (all `d_model` columns) — zero-copy for
    /// both layouts, the access pattern of the fused decode-attention
    /// drain.
    pub fn row(&self, r: usize) -> &'a [i8] {
        match self {
            CacheRef::Flat(m) => m.row(r),
            CacheRef::Paged { pool, seq } => pool.row(seq, r),
        }
    }

    /// Bytes of storage resident for this cache — logical rows for flat
    /// matrices, whole pages for paged sequences (what the memory
    /// budget actually pays). Per-sequence view: a page shared with a
    /// forked sibling is charged to **each** holder here; use
    /// [`CacheRef::distinct_resident_bytes`] for the global number.
    pub fn resident_bytes(&self) -> usize {
        match self {
            CacheRef::Flat(m) => m.rows() * m.cols(),
            CacheRef::Paged { pool, seq } => pool.resident_rows(seq) * pool.cols(),
        }
    }

    /// Total resident bytes across `caches`, counting every shared page
    /// **once**: paged caches dedupe on `(pool, page)` identity, so N
    /// prefix-sharing forks of one sequence cost ~1× its pages, not N×.
    /// Flat caches (cross-attention K/V, one per session) sum directly.
    /// This is what a global memory-budget stat must report; summing
    /// [`CacheRef::resident_bytes`] double-counts shared pages.
    pub fn distinct_resident_bytes<'b>(caches: impl IntoIterator<Item = CacheRef<'b>>) -> usize {
        let mut seen: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
        let mut bytes = 0usize;
        for c in caches {
            match c {
                CacheRef::Flat(m) => bytes += m.rows() * m.cols(),
                CacheRef::Paged { pool, seq } => {
                    let pid = pool as *const KvPool<i8> as usize;
                    let page_bytes = pool.page_rows() * pool.cols();
                    for &p in seq.page_ids() {
                        if seen.insert((pid, p)) {
                            bytes += page_bytes;
                        }
                    }
                }
            }
        }
        bytes
    }
}

/// Value domain of [`QuantRowExec`]: INT8 row stacks or per-session
/// borrowed code caches.
#[derive(Debug)]
pub enum QRowVal<'a> {
    /// A `b × d_model` matrix of per-session code rows.
    Codes(Mat<i8>),
    /// One borrowed projected-K/V cache per session.
    Caches(Vec<CacheRef<'a>>),
}

impl QRowVal<'_> {
    /// Unwraps the code-rows variant.
    ///
    /// # Panics
    ///
    /// Panics if this value holds caches.
    pub fn into_codes(self) -> Mat<i8> {
        match self {
            QRowVal::Codes(m) => m,
            QRowVal::Caches(_) => panic!("expected code rows, found per-session caches"),
        }
    }
}

/// Cached-KV INT8 executor for the [`GraphKind::MhaCached`] graph.
///
/// Each of the `b` input rows attends over its own session's key/value
/// code cache. With a scratch row attached ([`QuantRowExec::with_scratch`])
/// and `b == 1`, the requantized head outputs are written directly into
/// the scratch's column panels — the zero-allocation single-token decode
/// hot path. Multi-row batches fan rows out across threads; row `r` is
/// bit-identical to a single-row run on row `r` alone (integer GEMMs are
/// row-independent).
#[derive(Debug)]
pub struct QuantRowExec<'a> {
    block: &'a QuantMhaResBlock,
    scratch: Option<&'a mut Mat<i8>>,
    groups: Option<&'a [usize]>,
    causal: bool,
    stats: ExecStats,
}

impl<'a> QuantRowExec<'a> {
    /// Executor over one quantized MHA ResBlock.
    pub fn new(block: &'a QuantMhaResBlock) -> Self {
        Self {
            block,
            scratch: None,
            groups: None,
            causal: true,
            stats: ExecStats::default(),
        }
    }

    /// Attaches a `1 × d_model` scratch row that single-row runs write
    /// the concatenated `P` codes into (every column is overwritten, so
    /// its previous contents are irrelevant).
    pub fn with_scratch(block: &'a QuantMhaResBlock, scratch: &'a mut Mat<i8>) -> Self {
        Self {
            block,
            scratch: Some(scratch),
            groups: None,
            causal: true,
            stats: ExecStats::default(),
        }
    }

    /// Chunked-prefill executor: the `b` input rows are partitioned into
    /// per-session groups (`groups[i]` consecutive rows for session `i`,
    /// summing to `b`), each attending over its own session's cache.
    ///
    /// With `causal = true` (self-attention), row `j` of a group whose
    /// cache holds `L` rows — the chunk's own K/V having already been
    /// appended — attends positions `0 ..= L - rows + j`: an intra-chunk
    /// causal tail mask, so the group is bit-identical to feeding its
    /// rows one decode step at a time. With `causal = false`
    /// (cross-attention) every row attends the whole cache.
    pub fn prefill(block: &'a QuantMhaResBlock, groups: &'a [usize], causal: bool) -> Self {
        Self {
            block,
            scratch: None,
            groups: Some(groups),
            causal,
            stats: ExecStats::default(),
        }
    }
}

/// Whether the fused decode-attention drain may run: fusion enabled and
/// no fault hooks installed. The fault injector numbers and probes the
/// per-head GEMM passes, so with hooks live the per-head path (whose
/// pass sequence the seeded campaigns calibrate against) must be taken —
/// the same fallback seam the fused `QLinear` forwards use. Both paths
/// are bit-identical, so this only affects speed.
fn attention_fusible() -> bool {
    tensor::envcfg::fuse_enabled() && !faults::hooks_active()
}

/// Computes row `r`'s concatenated requantized head outputs into `out`
/// (one full `d_model` row) — the SplitHeads → score → softmax →
/// context → requantize section of the cached graph.
fn head_section(
    block: &QuantMhaResBlock,
    q: &Mat<i8>,
    r: usize,
    keys: &CacheRef<'_>,
    vals: &CacheRef<'_>,
    out: &mut [i8],
) {
    if attention_fusible() {
        head_section_fused(block, q, r, keys, vals, out);
        return;
    }
    let d_k = block.d_k();
    for i in 0..block.heads() {
        let c0 = i * d_k;
        let qi = q.submatrix(r, c0, 1, d_k).expect("head panel");
        let ki = keys.panel(c0, d_k);
        let vi = vals.panel(c0, d_k);
        let d_acc = gemm::matmul_i8_nt(&qi, &ki).expect("shapes");
        let probs = scaled_masked_softmax(&d_acc, block.d_scale(), d_k, None, block.softmax_mode());
        let p_acc = gemm::matmul_i8(&probs, &vi).expect("shapes");
        for (slot, &a) in out[c0..c0 + d_k].iter_mut().zip(p_acc.row(0)) {
            *slot = block.requantize_p(a);
        }
    }
}

/// The fused single-row attention drain: score, softmax, and `P·V` for
/// **all** heads in one streaming pass over the cache rows, with no
/// per-head K/V panel gathers and no per-head GEMV dispatch.
///
/// Bit-identity with [`head_section`]'s per-head GEMM path:
///
/// * **Scores** — [`tensor::simd::head_dots_i8`] accumulates each
///   head's `q · k_t` in ascending-`j` order, exactly the inner product
///   `matmul_i8_nt` computes; integer sums are order-independent.
/// * **Softmax** — one `heads × ctx` call instead of `heads` separate
///   `1 × ctx` calls. Both softmax modes process rows independently
///   (per-row max, sum, and normalisation), so batching rows cannot
///   change any bit.
/// * **`P·V`** — [`tensor::simd::scaled_add_i8`] folds cache row `t`
///   into the head accumulators in ascending-`t` order, the same `k`
///   order as `matmul_i8(probs, vi)`; again exact integer adds.
/// * **Requantize** — the identical per-element [`QuantMhaResBlock::requantize_p`].
fn head_section_fused(
    block: &QuantMhaResBlock,
    q: &Mat<i8>,
    r: usize,
    keys: &CacheRef<'_>,
    vals: &CacheRef<'_>,
    out: &mut [i8],
) {
    let d_k = block.d_k();
    let h = block.heads();
    let d = h * d_k;
    let ctx = keys.rows();
    let qrow = &q.row(r)[..d];
    let mut scores = Mat::zeros(h, ctx);
    let mut col = vec![0i32; h];
    for t in 0..ctx {
        tensor::simd::head_dots_i8(qrow, &keys.row(t)[..d], d_k, &mut col);
        for (i, &s) in col.iter().enumerate() {
            scores[(i, t)] = s;
        }
    }
    let probs = scaled_masked_softmax(&scores, block.d_scale(), d_k, None, block.softmax_mode());
    let mut acc = vec![0i32; d];
    for t in 0..ctx {
        let vrow = &vals.row(t)[..d];
        for i in 0..h {
            let c0 = i * d_k;
            tensor::simd::scaled_add_i8(&mut acc[c0..c0 + d_k], &vrow[c0..c0 + d_k], probs[(i, t)]);
        }
    }
    for (slot, &a) in out[..d].iter_mut().zip(&acc) {
        *slot = block.requantize_p(a);
    }
}

/// The multi-row head section for one session's prefill chunk: rows
/// `r0 .. r0 + rows` of `q` attend over the session's cache, with the
/// intra-chunk causal tail masked when `causal` is set. Masked columns
/// are excluded from the softmax max/sum and emit exactly-zero
/// probability codes, contributing nothing to the `P·V` GEMM — which is
/// what makes the chunked result bit-identical to `rows` sequential
/// single-row steps.
fn head_section_chunk(
    block: &QuantMhaResBlock,
    q: &Mat<i8>,
    r0: usize,
    rows: usize,
    keys: &CacheRef<'_>,
    vals: &CacheRef<'_>,
    causal: bool,
) -> Mat<i8> {
    let d_k = block.d_k();
    let ctx = keys.rows();
    // A one-row chunk (the decode steady state: every session advances
    // one token per engine step) has no intra-chunk mask and is exactly
    // the single-row section — take the fused drain when it is legal.
    if rows == 1 && attention_fusible() {
        let mut out = Mat::zeros(1, block.heads() * d_k);
        head_section_fused(block, q, r0, keys, vals, &mut out.row_mut(0)[..]);
        return out;
    }
    // Row j of the chunk may see cache positions 0 ..= ctx - rows + j;
    // later columns are the chunk's own future rows.
    let mask = (causal && rows > 1).then(|| Mat::from_fn(rows, ctx, |j, t| t > ctx - rows + j));
    let mut out = Mat::zeros(rows, block.heads() * d_k);
    for i in 0..block.heads() {
        let c0 = i * d_k;
        let qi = q.submatrix(r0, c0, rows, d_k).expect("head panel");
        let ki = keys.panel(c0, d_k);
        let vi = vals.panel(c0, d_k);
        let d_acc = gemm::matmul_i8_nt(&qi, &ki).expect("shapes");
        let probs = scaled_masked_softmax(
            &d_acc,
            block.d_scale(),
            d_k,
            mask.as_ref(),
            block.softmax_mode(),
        );
        let p_acc = gemm::matmul_i8(&probs, &vi).expect("shapes");
        for j in 0..rows {
            for (slot, &a) in out.row_mut(j)[c0..c0 + d_k].iter_mut().zip(p_acc.row(j)) {
                *slot = block.requantize_p(a);
            }
        }
    }
    out
}

impl<'a> Executor for QuantRowExec<'a> {
    type Value = QRowVal<'a>;

    fn run(
        &mut self,
        graph: &Graph,
        inputs: Vec<(&str, QRowVal<'a>)>,
        mask: Option<&Mat<bool>>,
    ) -> Env<QRowVal<'a>> {
        assert_eq!(
            graph.kind,
            GraphKind::MhaCached,
            "QuantRowExec executes the cached-KV MHA graph only"
        );
        let detected0 = faults::hooks_active().then(|| faults::counters().detected);
        debug_assert!(
            mask.is_none(),
            "cached decoding is causal by construction; no run-time mask"
        );
        let plan = graph.plan();
        let mut env = Env::new(plan.slot_names.clone());
        for (name, value) in inputs {
            let slot = env.slot(name);
            env.set(slot, value);
        }
        let x = match env.take("x") {
            QRowVal::Codes(m) => m,
            QRowVal::Caches(_) => panic!("input \"x\" must be code rows"),
        };
        let (keys, vals) = match (env.take("keys"), env.take("vals")) {
            (QRowVal::Caches(k), QRowVal::Caches(v)) => (k, v),
            _ => panic!("inputs \"keys\"/\"vals\" must be per-session caches"),
        };
        match self.groups {
            Some(groups) => {
                assert_eq!(groups.len(), keys.len(), "one key cache per group");
                assert_eq!(groups.len(), vals.len(), "one value cache per group");
                assert_eq!(
                    groups.iter().sum::<usize>(),
                    x.rows(),
                    "group sizes must sum to the input rows"
                );
            }
            None => {
                assert_eq!(x.rows(), keys.len(), "one key cache per row");
                assert_eq!(x.rows(), vals.len(), "one value cache per row");
            }
        }
        // Shared-once accounting: prefix-cache forks alias pages across
        // sessions, and a shared page must hit the budget stat once.
        self.stats.kv_bytes_in_use =
            CacheRef::distinct_resident_bytes(keys.iter().chain(vals.iter()).copied());

        let block = self.block;
        let causal = self.causal;
        let (wq, _, _, wo) = block.projections();
        let q = wq.forward(&x);
        // The Wo projection and the residual add fuse into one drain
        // (the fused-graph `LinearAdd(Wo)` rewrite, applied here by
        // hand since this executor never walks the tail nodes); the
        // projection's INT8 output codes are never materialized.
        let mut fused_ops = 0usize;
        let mut elided_bytes = 0usize;
        // The fused decode-attention drain never materialises the
        // per-head K/V panels — `2 * ctx * d_model` bytes per fused row.
        // It fires for every single-row section (and one-row prefill
        // chunks); multi-row chunks keep the masked per-head GEMMs.
        if attention_fusible() {
            match self.groups {
                Some(groups) => {
                    for (i, &rows) in groups.iter().enumerate() {
                        if rows == 1 {
                            fused_ops += 1;
                            elided_bytes += 2 * keys[i].rows() * x.cols();
                        }
                    }
                }
                None => {
                    for k in &keys {
                        fused_ops += 1;
                        elided_bytes += 2 * k.rows() * x.cols();
                    }
                }
            }
        }
        let mut project_add = |p: &Mat<i8>| -> Mat<i32> {
            if tensor::envcfg::fuse_enabled() {
                fused_ops += 1;
                elided_bytes += p.rows() * x.cols();
                wo.forward_add(p, &x)
            } else {
                residual_add_i8(&wo.forward(p), &x)
            }
        };
        let g = if let Some(groups) = self.groups {
            // Chunked prefill: fan per-session chunks out across threads;
            // each chunk is a contiguous row group attending its own cache.
            let offsets: Vec<usize> = groups
                .iter()
                .scan(0usize, |acc, &g| {
                    let r0 = *acc;
                    *acc += g;
                    Some(r0)
                })
                .collect();
            let idx: Vec<usize> = (0..groups.len()).collect();
            let chunks = tensor::par::par_map(&idx, |&i| {
                head_section_chunk(block, &q, offsets[i], groups[i], &keys[i], &vals[i], causal)
            });
            let mut p = Mat::zeros(x.rows(), x.cols());
            for (i, chunk) in chunks.iter().enumerate() {
                for j in 0..chunk.rows() {
                    p.row_mut(offsets[i] + j).copy_from_slice(chunk.row(j));
                }
            }
            project_add(&p)
        } else if x.rows() == 1 {
            if let Some(p_buf) = self.scratch.as_deref_mut() {
                head_section(block, &q, 0, &keys[0], &vals[0], &mut p_buf.row_mut(0)[..]);
                project_add(p_buf)
            } else {
                let mut p = Mat::zeros(1, x.cols());
                head_section(block, &q, 0, &keys[0], &vals[0], &mut p.row_mut(0)[..]);
                project_add(&p)
            }
        } else {
            let rows: Vec<usize> = (0..x.rows()).collect();
            let p_rows = tensor::par::par_map(&rows, |&r| {
                let mut p_row = vec![0i8; x.cols()];
                head_section(block, &q, r, &keys[r], &vals[r], &mut p_row);
                p_row
            });
            let mut p = Mat::zeros(x.rows(), x.cols());
            for (r, row) in p_rows.iter().enumerate() {
                p.row_mut(r).copy_from_slice(row);
            }
            project_add(&p)
        };
        self.stats.ops_fused += fused_ops;
        self.stats.intermediates_elided_bytes += elided_bytes;
        graph::tally::note_fused(fused_ops, elided_bytes);
        let y = block.layernorm().forward(&g);
        self.stats.nodes += graph.nodes.len();
        if let Some(d0) = detected0 {
            self.stats.faults_detected += faults::counters().detected.saturating_sub(d0) as usize;
        }
        let out_slot = env.slot("y");
        env.set(out_slot, QRowVal::Codes(y));
        env
    }

    fn stats(&self) -> ExecStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::softmax::SoftmaxMode;
    use graph::{mha_cached_graph, mha_graph};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use transformer::config::ModelConfig;
    use transformer::mha::MhaResBlock;

    fn setup() -> (QuantMhaResBlock, Vec<Mat<f32>>, ModelConfig) {
        let cfg = ModelConfig::tiny_for_tests();
        let mut rng = StdRng::seed_from_u64(33);
        let block = MhaResBlock::new(&cfg, &mut rng);
        let calib: Vec<Mat<f32>> = (0..4)
            .map(|_| tensor::init::normal(&mut rng, 6, cfg.d_model, 1.0))
            .collect();
        let q = QuantMhaResBlock::from_f32(&block, &calib, &calib, SoftmaxMode::Hardware);
        (q, calib, cfg)
    }

    /// Frozen copy of the pre-refactor `QuantMhaResBlock::forward` —
    /// the golden reference the graph path must reproduce bit for bit.
    fn mha_reference(
        block: &QuantMhaResBlock,
        xq: &Mat<i8>,
        xkv: &Mat<i8>,
        mask: Option<&Mat<bool>>,
    ) -> (Mat<i8>, Mat<i8>) {
        let (wq, wk, wv, wo) = block.projections();
        let d_k = block.d_k();
        let q = wq.forward(xq);
        let k = wk.forward(xkv);
        let v = wv.forward(xkv);
        let mut panels = Vec::with_capacity(block.heads());
        for i in 0..block.heads() {
            let c0 = i * d_k;
            let qi = q.submatrix(0, c0, q.rows(), d_k).unwrap();
            let ki = k.submatrix(0, c0, k.rows(), d_k).unwrap();
            let vi = v.submatrix(0, c0, v.rows(), d_k).unwrap();
            let d_acc = gemm::matmul_i8_nt(&qi, &ki).unwrap();
            let probs =
                scaled_masked_softmax(&d_acc, block.d_scale(), d_k, mask, block.softmax_mode());
            let p_acc = gemm::matmul_i8(&probs, &vi).unwrap();
            panels.push(p_acc.map(|&a| block.requantize_p(a)));
        }
        let p = Mat::hconcat(&panels).unwrap();
        let g = residual_add_i8(&wo.forward(&p), xq);
        (block.layernorm().forward(&g), p)
    }

    #[test]
    fn quant_exec_matches_reference_bitwise() {
        let (q, calib, _) = setup();
        let xq = q.quantize_input_q(&calib[0]);
        let (want_y, want_p) = mha_reference(&q, &xq, &xq, None);
        let (got_y, got_p) = q.forward(&xq, &xq, None);
        assert_eq!(got_y, want_y);
        assert_eq!(got_p, want_p);
    }

    #[test]
    fn quant_exec_matches_reference_with_mask() {
        let (q, calib, _) = setup();
        let xq = q.quantize_input_q(&calib[1]);
        let mask = tensor::ops::causal_mask(xq.rows());
        let (want_y, want_p) = mha_reference(&q, &xq, &xq, Some(&mask));
        let (got_y, got_p) = q.forward(&xq, &xq, Some(&mask));
        assert_eq!(got_y, want_y);
        assert_eq!(got_p, want_p);
    }

    #[test]
    fn quant_exec_exposes_intermediates() {
        let (q, calib, cfg) = setup();
        let xq = q.quantize_input_q(&calib[2]);
        let g = mha_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut exec = QuantExec::mha(&q);
        let mut env = exec.run(
            &g,
            vec![
                ("x_q", QVal::I8(xq.clone())),
                ("x_k", QVal::I8(xq.clone())),
                ("x_v", QVal::I8(xq.clone())),
            ],
            None,
        );
        assert_eq!(exec.stats().nodes, g.nodes.len());
        let p = env.take("p").into_i8();
        assert_eq!(p.shape(), xq.shape());
        // per-head probs survive in the environment too
        assert!(env.get("probs.0").is_some());
    }

    #[test]
    fn row_exec_scratch_and_alloc_paths_agree() {
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[0]);
        let keys = wk.forward(&xq);
        let vals = wv.forward(&xq);
        let row = xq.submatrix(2, 0, 1, cfg.d_model).unwrap();
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let run = |scratch: Option<&mut Mat<i8>>| -> Mat<i8> {
            let mut exec = match scratch {
                Some(s) => QuantRowExec::with_scratch(&q, s),
                None => QuantRowExec::new(&q),
            };
            let mut env = exec.run(
                &g,
                vec![
                    ("x", QRowVal::Codes(row.clone())),
                    ("keys", QRowVal::Caches(vec![CacheRef::flat(&keys)])),
                    ("vals", QRowVal::Caches(vec![CacheRef::flat(&vals)])),
                ],
                None,
            );
            env.take("y").into_codes()
        };
        let mut p_buf = Mat::zeros(1, cfg.d_model);
        let with_scratch = run(Some(&mut p_buf));
        let without = run(None);
        assert_eq!(with_scratch, without);
        // scratch received the concatenated P codes
        assert!(p_buf.as_slice().iter().any(|&v| v != 0));
    }

    #[test]
    fn row_exec_batch_rows_match_single_rows() {
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[3]);
        let caches: Vec<(Mat<i8>, Mat<i8>)> = (0..3)
            .map(|i| {
                let m = xq.submatrix(0, 0, 2 + i, cfg.d_model).unwrap();
                (wk.forward(&m), wv.forward(&m))
            })
            .collect();
        let x = xq.submatrix(0, 0, 3, cfg.d_model).unwrap();
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut batched = QuantRowExec::new(&q);
        let mut env = batched.run(
            &g,
            vec![
                ("x", QRowVal::Codes(x.clone())),
                (
                    "keys",
                    QRowVal::Caches(caches.iter().map(|c| CacheRef::flat(&c.0)).collect()),
                ),
                (
                    "vals",
                    QRowVal::Caches(caches.iter().map(|c| CacheRef::flat(&c.1)).collect()),
                ),
            ],
            None,
        );
        let got = env.take("y").into_codes();
        for (r, cache) in caches.iter().enumerate() {
            let row = x.submatrix(r, 0, 1, cfg.d_model).unwrap();
            let mut single = QuantRowExec::new(&q);
            let mut env = single.run(
                &g,
                vec![
                    ("x", QRowVal::Codes(row)),
                    ("keys", QRowVal::Caches(vec![CacheRef::flat(&cache.0)])),
                    ("vals", QRowVal::Caches(vec![CacheRef::flat(&cache.1)])),
                ],
                None,
            );
            let want = env.take("y").into_codes();
            assert_eq!(got.row(r), want.row(0), "row {r}");
        }
    }

    #[test]
    fn paged_caches_are_bit_identical_to_flat() {
        // The same K/V rows served flat and served through a tiny-page
        // pool must produce identical outputs — single-row, batched, and
        // chunked-prefill paths alike.
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[0]);
        let keys = wk.forward(&xq);
        let vals = wv.forward(&xq);
        let mut pool_k = KvPool::<i8>::new(2, cfg.d_model);
        let mut pool_v = KvPool::<i8>::new(2, cfg.d_model);
        let mut seq_k = KvSeq::new();
        let mut seq_v = KvSeq::new();
        for r in 0..keys.rows() {
            pool_k.push_row(&mut seq_k, keys.row(r));
            pool_v.push_row(&mut seq_v, vals.row(r));
        }
        let paged_k = CacheRef::paged(&pool_k, &seq_k);
        assert_eq!(paged_k.rows(), keys.rows());
        assert!(paged_k.resident_bytes() >= CacheRef::flat(&keys).resident_bytes());
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let run = |keys: CacheRef<'_>, vals: CacheRef<'_>, rows: Mat<i8>, chunk: bool| {
            let groups = [rows.rows()];
            let mut exec = if chunk {
                QuantRowExec::prefill(&q, &groups, true)
            } else {
                QuantRowExec::new(&q)
            };
            let mut env = exec.run(
                &g,
                vec![
                    ("x", QRowVal::Codes(rows)),
                    ("keys", QRowVal::Caches(vec![keys])),
                    ("vals", QRowVal::Caches(vec![vals])),
                ],
                None,
            );
            (env.take("y").into_codes(), exec.stats().kv_bytes_in_use)
        };
        let row = xq.submatrix(xq.rows() - 1, 0, 1, cfg.d_model).unwrap();
        let (flat_y, flat_kv) = run(
            CacheRef::flat(&keys),
            CacheRef::flat(&vals),
            row.clone(),
            false,
        );
        let (paged_y, paged_kv) = run(
            CacheRef::paged(&pool_k, &seq_k),
            CacheRef::paged(&pool_v, &seq_v),
            row,
            false,
        );
        assert_eq!(flat_y, paged_y);
        assert!(paged_kv >= flat_kv, "paged stat counts whole pages");
        // Chunked prefill over the last 3 rows (the caches already hold
        // them): flat and paged storage must agree bit for bit.
        let tail = xq.submatrix(xq.rows() - 3, 0, 3, cfg.d_model).unwrap();
        let (flat_c, _) = run(
            CacheRef::flat(&keys),
            CacheRef::flat(&vals),
            tail.clone(),
            true,
        );
        let (paged_c, _) = run(
            CacheRef::paged(&pool_k, &seq_k),
            CacheRef::paged(&pool_v, &seq_v),
            tail,
            true,
        );
        assert_eq!(flat_c, paged_c);
    }

    #[test]
    fn shared_pages_are_counted_once_in_kv_stat() {
        // Two sessions whose caches are prefix-cache forks of the same
        // pages must not double-charge those pages in the executor's
        // kv_bytes_in_use stat — while each session's own
        // resident_bytes view stays per-sequence.
        let (q, calib, cfg) = setup();
        let (_, wk, wv, _) = q.projections();
        let xq = q.quantize_input_q(&calib[0]);
        let keys = wk.forward(&xq);
        let vals = wv.forward(&xq);
        let mut pool_k = KvPool::<i8>::new(2, cfg.d_model);
        let mut pool_v = KvPool::<i8>::new(2, cfg.d_model);
        let mut seq_k = KvSeq::new();
        let mut seq_v = KvSeq::new();
        for r in 0..4 {
            // page-aligned: forks share everything
            pool_k.push_row(&mut seq_k, keys.row(r));
            pool_v.push_row(&mut seq_v, vals.row(r));
        }
        let fork_k = pool_k.fork(&seq_k);
        let fork_v = pool_v.fork(&seq_v);
        // Per-sequence view: the fork pays the same logical bytes.
        assert_eq!(
            CacheRef::paged(&pool_k, &fork_k).resident_bytes(),
            CacheRef::paged(&pool_k, &seq_k).resident_bytes()
        );
        let solo = CacheRef::distinct_resident_bytes([
            CacheRef::paged(&pool_k, &seq_k),
            CacheRef::paged(&pool_v, &seq_v),
        ]);
        let naive: usize = [
            CacheRef::paged(&pool_k, &seq_k),
            CacheRef::paged(&pool_k, &fork_k),
            CacheRef::paged(&pool_v, &seq_v),
            CacheRef::paged(&pool_v, &fork_v),
        ]
        .iter()
        .map(|c| c.resident_bytes())
        .sum();
        assert_eq!(naive, 2 * solo, "per-sequence sums double-count");
        // The executor's stat must report the deduped number.
        let g = mha_cached_graph(&graph::GraphConfig {
            d_model: cfg.d_model,
            d_ff: 0,
            h: cfg.h,
        });
        let mut x = Mat::zeros(2, cfg.d_model);
        x.row_mut(0).copy_from_slice(xq.row(3));
        x.row_mut(1).copy_from_slice(xq.row(3));
        let mut exec = QuantRowExec::new(&q);
        let _ = exec.run(
            &g,
            vec![
                ("x", QRowVal::Codes(x)),
                (
                    "keys",
                    QRowVal::Caches(vec![
                        CacheRef::paged(&pool_k, &seq_k),
                        CacheRef::paged(&pool_k, &fork_k),
                    ]),
                ),
                (
                    "vals",
                    QRowVal::Caches(vec![
                        CacheRef::paged(&pool_v, &seq_v),
                        CacheRef::paged(&pool_v, &fork_v),
                    ]),
                ),
            ],
            None,
        );
        assert_eq!(
            exec.stats().kv_bytes_in_use,
            solo,
            "shared pages must hit the stat once"
        );
    }
}
